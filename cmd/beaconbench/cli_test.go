package main

import (
	"io"
	"strings"
	"testing"
)

func TestParseCLIValid(t *testing.T) {
	cases := []struct {
		name  string
		args  []string
		check func(t *testing.T, c *cliConfig)
	}{
		{"defaults", nil, func(t *testing.T, c *cliConfig) {
			if c.exp != "all" || c.list || c.jsonOut || c.traceOut != "" {
				t.Errorf("defaults wrong: %+v", c)
			}
			if c.opts.Quick || c.opts.Check || c.opts.Workers != 0 {
				t.Errorf("default options wrong: %+v", c.opts)
			}
		}},
		{"one-experiment", []string{"-exp", "fig14", "-quick"}, func(t *testing.T, c *cliConfig) {
			if c.exp != "fig14" || !c.opts.Quick {
				t.Errorf("got %q quick=%v", c.exp, c.opts.Quick)
			}
		}},
		{"check-and-parallel", []string{"-check", "-parallel", "8"}, func(t *testing.T, c *cliConfig) {
			if !c.opts.Check || c.opts.Workers != 8 {
				t.Errorf("options = %+v", c.opts)
			}
		}},
		{"scale-overrides", []string{"-nodes", "2000", "-batches", "4"}, func(t *testing.T, c *cliConfig) {
			if c.opts.ScaleNodes != 2000 || c.opts.Batches != 4 {
				t.Errorf("options = %+v", c.opts)
			}
		}},
		{"list-skips-exp-validation", []string{"-list", "-exp", "nonsense"}, func(t *testing.T, c *cliConfig) {
			if !c.list {
				t.Errorf("-list not parsed")
			}
		}},
		{"trace", []string{"-trace", "t.json", "-trace-platform", "BG-1", "-trace-dataset", "reddit"}, func(t *testing.T, c *cliConfig) {
			if c.traceOut != "t.json" || c.tracePlt != "BG-1" || c.traceDS != "reddit" {
				t.Errorf("trace fields = %q %q %q", c.traceOut, c.tracePlt, c.traceDS)
			}
		}},
		{"drive-capacity", []string{"-drive", "http://x:1", "-drive-capacity", "-drive-qps", "25",
			"-drive-arrival", "mmpp", "-drive-seed", "9"}, func(t *testing.T, c *cliConfig) {
			if !c.driveCap || c.driveQPS != 25 || c.driveArr != "mmpp" || c.driveSd != 9 {
				t.Errorf("capacity drive fields = %+v", c)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := parseCLI(tc.args, io.Discard)
			if err != nil {
				t.Fatalf("parseCLI(%v): %v", tc.args, err)
			}
			tc.check(t, c)
		})
	}
}

func TestParseCLIErrors(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantMsg string
	}{
		{"unknown-flag", []string{"-bogus"}, "-bogus"},
		{"positional-args", []string{"stray"}, "unexpected arguments"},
		{"unknown-experiment", []string{"-exp", "fig99"}, "fig99"},
		{"negative-nodes", []string{"-nodes", "-1"}, "-nodes"},
		{"negative-batches", []string{"-batches", "-1"}, "-batches"},
		{"negative-parallel", []string{"-parallel", "-4"}, "-parallel"},
		{"bad-trace-platform", []string{"-trace", "t.json", "-trace-platform", "BG-9"}, "BG-9"},
		{"capacity-without-drive", []string{"-drive-capacity"}, "-drive"},
		{"capacity-bad-qps", []string{"-drive", "http://x:1", "-drive-capacity", "-drive-qps", "0"}, "-drive-qps"},
		{"capacity-bad-arrival", []string{"-drive", "http://x:1", "-drive-capacity", "-drive-arrival", "weibull"}, "weibull"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf strings.Builder
			_, err := parseCLI(tc.args, &buf)
			if err == nil {
				t.Fatalf("parseCLI(%v) accepted", tc.args)
			}
			if !strings.Contains(buf.String(), tc.wantMsg) {
				t.Errorf("stderr %q does not mention %q", buf.String(), tc.wantMsg)
			}
		})
	}
}

func TestParseCLIHelp(t *testing.T) {
	var buf strings.Builder
	_, err := parseCLI([]string{"-h"}, &buf)
	if err == nil {
		t.Fatal("-h returned no error")
	}
	if !strings.Contains(buf.String(), "-exp") || !strings.Contains(buf.String(), "-check") {
		t.Errorf("usage output missing flags:\n%s", buf.String())
	}
}
