// Command beaconbench regenerates the paper's evaluation: every table
// and figure of Section VII, printed as formatted text reports.
//
// Usage:
//
//	beaconbench -exp all            # everything, paper order
//	beaconbench -exp fig14          # one experiment
//	beaconbench -exp fig18 -quick   # shrunken sweep for a fast look
//	beaconbench -exp all -parallel 8 # fan simulations over 8 workers
//	beaconbench -exp all -quick -check # verify run invariants everywhere
//	beaconbench -exp fig18 -full-resim # bypass all caches; resimulate from scratch
//	beaconbench -list               # available experiment ids
//	beaconbench -trace out.json -trace-platform BG-2   # request trace
//	beaconbench -drive http://localhost:8080 -drive-requests 100   # live availability drill
//	beaconbench -drive http://localhost:8080 -drive-capacity -drive-qps 40   # live open-loop capacity sweep
//
// Simulations fan out across -parallel workers (default: all CPU
// cores); output is byte-identical for any worker count, including
// -parallel 1 (fully sequential).
//
// With -check, every simulation runs under the invariant checker
// (internal/invariant) and a broken conservation or sanity law fails
// the run with the violated invariant's name. Results are identical to
// an unchecked run — checking only observes.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"beacongnn/internal/core"
)

func main() {
	c, err := parseCLI(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		os.Exit(2) // parseCLI already reported the error
	}

	if c.list {
		for _, e := range core.AllExperiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if c.drive != "" {
		if c.driveCap {
			err = runDriveCapacity(c.drive, driveCapacityConfig{
				qps:      c.driveQPS,
				arrival:  c.driveArr,
				seed:     c.driveSd,
				requests: c.driveN,
				inflight: c.driveC,
			}, os.Stdout)
		} else {
			err = runDrive(c.drive, c.driveN, c.driveC, os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
		return
	}
	o := c.opts
	if c.traceOut != "" {
		f, err := os.Create(c.traceOut)
		if err == nil {
			_, err = core.RunTrace(o, c.tracePlt, c.traceDS, f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("request trace of %s on %s -> %s (open in https://ui.perfetto.dev)\n", c.tracePlt, c.traceDS, c.traceOut)
		return
	}
	if c.jsonOut {
		if c.exp == "sched" {
			rep, err := core.BuildSchedReport(o)
			if err == nil {
				err = rep.WriteJSON(os.Stdout)
			}
			if err != nil {
				fatal(err)
			}
			return
		}
		if c.exp == "capacity" {
			rep, _, err := core.BuildCapacityReport(o)
			if err == nil {
				err = rep.WriteJSON(os.Stdout)
			}
			if err != nil {
				fatal(err)
			}
			return
		}
		if c.exp == "cluster" {
			rep, err := core.BuildClusterReport(o)
			if err == nil {
				err = rep.WriteJSON(os.Stdout)
			}
			if err != nil {
				fatal(err)
			}
			return
		}
		rep, err := core.BuildReport(o)
		if err == nil {
			err = rep.WriteJSON(os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
		return
	}
	if c.exp == "all" {
		err = core.RunAll(o, os.Stdout)
	} else {
		var e core.Experiment
		e, err = core.ByID(c.exp)
		if err == nil {
			fmt.Printf("===== %s — %s =====\n", e.ID, e.Title)
			err = e.Run(o, os.Stdout)
		}
	}
	if err != nil {
		fatal(err)
	}
	if o.Check {
		fmt.Println("\ninvariants: all checks passed")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "beaconbench:", err)
	os.Exit(1)
}
