// Command beaconbench regenerates the paper's evaluation: every table
// and figure of Section VII, printed as formatted text reports.
//
// Usage:
//
//	beaconbench -exp all            # everything, paper order
//	beaconbench -exp fig14          # one experiment
//	beaconbench -exp fig18 -quick   # shrunken sweep for a fast look
//	beaconbench -exp all -parallel 8 # fan simulations over 8 workers
//	beaconbench -list               # available experiment ids
//	beaconbench -trace out.json -trace-platform BG-2   # request trace
//
// Simulations fan out across -parallel workers (default: all CPU
// cores); output is byte-identical for any worker count, including
// -parallel 1 (fully sequential).
package main

import (
	"flag"
	"fmt"
	"os"

	"beacongnn/internal/core"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (or 'all')")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		quick    = flag.Bool("quick", false, "reduced scales and sweeps")
		nodes    = flag.Int("nodes", 0, "materialized nodes per dataset (0 = default)")
		batches  = flag.Int("batches", 0, "mini-batches per simulation (0 = default)")
		jsonOut  = flag.Bool("json", false, "emit the numeric series as JSON instead of text")
		parallel = flag.Int("parallel", 0, "concurrent simulations (0 = all CPU cores, 1 = sequential)")
		traceOut = flag.String("trace", "", "write a Chrome trace_event JSON request trace to this file and exit")
		tracePlt = flag.String("trace-platform", "BG-2", "platform to trace with -trace")
		traceDS  = flag.String("trace-dataset", "amazon", "dataset to trace with -trace")
	)
	flag.Parse()

	if *list {
		for _, e := range core.AllExperiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	o := &core.Options{Quick: *quick, ScaleNodes: *nodes, Batches: *batches, Workers: *parallel}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			_, err = core.RunTrace(o, *tracePlt, *traceDS, f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "beaconbench:", err)
			os.Exit(1)
		}
		fmt.Printf("request trace of %s on %s -> %s (open in https://ui.perfetto.dev)\n", *tracePlt, *traceDS, *traceOut)
		return
	}
	if *jsonOut {
		rep, err := core.BuildReport(o)
		if err == nil {
			err = rep.WriteJSON(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "beaconbench:", err)
			os.Exit(1)
		}
		return
	}
	var err error
	if *exp == "all" {
		err = core.RunAll(o, os.Stdout)
	} else {
		var e core.Experiment
		e, err = core.ByID(*exp)
		if err == nil {
			fmt.Printf("===== %s — %s =====\n", e.ID, e.Title)
			err = e.Run(o, os.Stdout)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "beaconbench:", err)
		os.Exit(1)
	}
}
