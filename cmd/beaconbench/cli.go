package main

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"beacongnn/internal/config"
	"beacongnn/internal/core"
	"beacongnn/internal/loadgen"
	"beacongnn/internal/platform"
)

// cliConfig is the fully parsed and validated beaconbench command line.
type cliConfig struct {
	exp      string
	list     bool
	jsonOut  bool
	traceOut string
	tracePlt string
	traceDS  string
	drive    string
	driveN   int
	driveC   int
	driveCap bool
	driveQPS float64
	driveArr string
	driveSd  uint64
	opts     *core.Options
}

// parseCLI parses and validates the command line. All error reporting
// happens here (the flag package prints parse errors and usage to
// stderr itself; validation failures are printed once) so main can
// exit on any non-nil error without re-printing. flag.ErrHelp is
// returned as-is for a clean -h exit.
func parseCLI(args []string, stderr io.Writer) (*cliConfig, error) {
	fs := flag.NewFlagSet("beaconbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "all", "experiment id (or 'all')")
		list     = fs.Bool("list", false, "list experiment ids and exit")
		quick    = fs.Bool("quick", false, "reduced scales and sweeps")
		nodes    = fs.Int("nodes", 0, "materialized nodes per dataset (0 = default)")
		batches  = fs.Int("batches", 0, "mini-batches per simulation (0 = default)")
		jsonOut  = fs.Bool("json", false, "emit the numeric series as JSON instead of text")
		parallel = fs.Int("parallel", 0, "concurrent simulations (0 = all CPU cores, 1 = sequential)")
		check    = fs.Bool("check", false, "verify run invariants on every simulation; fail with a named diagnostic")
		fullSim  = fs.Bool("full-resim", false, "disable result memoization and stage reuse; resimulate everything from scratch")
		traceOut = fs.String("trace", "", "write a Chrome trace_event JSON request trace to this file and exit")
		tracePlt = fs.String("trace-platform", "BG-2", "platform to trace with -trace")
		traceDS  = fs.String("trace-dataset", "amazon", "dataset to trace with -trace")
		sched    = fs.String("sched", "", "flash scheduling policy for every simulation: fifo, sjf, edf, totalfit (default fifo)")
		drive    = fs.String("drive", "", "drive a live beaconserved at this base URL and report availability")
		driveN   = fs.Int("drive-requests", 60, "requests to issue with -drive")
		driveC   = fs.Int("drive-concurrency", 4, "concurrent clients with -drive")
		driveCap = fs.Bool("drive-capacity", false, "with -drive: open-loop capacity sweep (coordinated-omission-safe) instead of the closed-loop drill")
		driveQPS = fs.Float64("drive-qps", 50, "peak offered rate for -drive-capacity; the sweep walks half rate then full rate")
		driveArr = fs.String("drive-arrival", "poisson", "arrival process for -drive-capacity: poisson, mmpp, diurnal, uniform")
		driveSd  = fs.Uint64("drive-seed", 1, "schedule seed for -drive-capacity")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	fail := func(format string, a ...any) (*cliConfig, error) {
		err := fmt.Errorf(format, a...)
		fmt.Fprintln(stderr, "beaconbench:", err)
		return nil, err
	}
	if fs.NArg() > 0 {
		return fail("unexpected arguments %q (flags only)", fs.Args())
	}
	if *nodes < 0 {
		return fail("-nodes must be non-negative (0 = default), got %d", *nodes)
	}
	if *batches < 0 {
		return fail("-batches must be non-negative (0 = default), got %d", *batches)
	}
	if *parallel < 0 {
		return fail("-parallel must be non-negative (0 = all CPU cores), got %d", *parallel)
	}
	if *drive != "" && (*driveN <= 0 || *driveC <= 0) {
		return fail("-drive-requests and -drive-concurrency must be positive")
	}
	if *driveCap {
		if *drive == "" {
			return fail("-drive-capacity requires -drive <base URL>")
		}
		if *driveQPS <= 0 {
			return fail("-drive-qps must be positive, got %g", *driveQPS)
		}
		switch *driveArr {
		case loadgen.ArrivalPoisson, loadgen.ArrivalMMPP, loadgen.ArrivalDiurnal, loadgen.ArrivalUniform:
		default:
			return fail("-drive-arrival: unknown arrival process %q", *driveArr)
		}
	}
	if !*list && *drive == "" && *exp != "all" {
		if _, err := core.ByID(*exp); err != nil {
			return fail("%v", err)
		}
	}
	if *traceOut != "" {
		if _, err := platform.ByName(*tracePlt); err != nil {
			return fail("-trace-platform: %v", err)
		}
	}
	var cfg config.Config
	if *sched != "" {
		cfg = config.Default()
		cfg.Sched.Policy = strings.ToLower(strings.TrimSpace(*sched))
		if err := cfg.Sched.Validate(); err != nil {
			return fail("-sched: %v", err)
		}
	}
	return &cliConfig{
		exp:      *exp,
		list:     *list,
		jsonOut:  *jsonOut,
		traceOut: *traceOut,
		tracePlt: *tracePlt,
		traceDS:  *traceDS,
		drive:    *drive,
		driveN:   *driveN,
		driveC:   *driveC,
		driveCap: *driveCap,
		driveQPS: *driveQPS,
		driveArr: *driveArr,
		driveSd:  *driveSd,
		opts: &core.Options{
			Cfg:        cfg,
			Quick:      *quick,
			ScaleNodes: *nodes,
			Batches:    *batches,
			Workers:    *parallel,
			Check:      *check,
			FullResim:  *fullSim,
		},
	}, nil
}
