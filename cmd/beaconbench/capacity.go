package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"beacongnn/internal/loadgen"
	"beacongnn/internal/sim"
)

// driveCapacityConfig parameterizes the live open-loop sweep.
type driveCapacityConfig struct {
	qps      float64 // peak offered rate; the sweep walks {qps/2, qps}
	arrival  string  // loadgen arrival kind
	seed     uint64
	requests int // per step
	inflight int // client send slots
}

// httpBackend posts one scheduled request to a live beaconserved,
// classifying the response the same way runDrive does. The query class
// becomes the simulation seed, so Zipf-hot classes exercise the daemon's
// memo fast path exactly like the virtual beaconserved model.
type httpBackend struct {
	url    string
	client *http.Client
}

func (b *httpBackend) Do(req loadgen.Request) loadgen.Outcome {
	body := map[string]any{
		"platform": "BG-2",
		"dataset":  "amazon",
		"nodes":    2000,
		"batches":  2,
	}
	if req.Class > 0 {
		body["seed"] = uint64(req.Class)
	}
	enc, _ := json.Marshal(body)
	resp, err := b.client.Post(b.url+"/v1/simulate", "application/json", bytes.NewReader(enc))
	if err != nil {
		return loadgen.OutcomeFailed
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		return loadgen.OutcomeOK
	case resp.StatusCode == http.StatusTooManyRequests ||
		resp.StatusCode == http.StatusServiceUnavailable:
		return loadgen.OutcomeShed
	default:
		return loadgen.OutcomeFailed
	}
}

// arrivalSpec builds the swept arrival process at the given rate.
func arrivalSpec(kind string, rate float64) loadgen.Spec {
	spec := loadgen.Spec{Kind: kind, Rate: rate}
	switch kind {
	case loadgen.ArrivalMMPP:
		spec.Burst = 1.7
		spec.Dwell = 2 * sim.Second
	case loadgen.ArrivalDiurnal:
		spec.Amp = 0.6
	}
	return spec
}

// runDriveCapacity is the live counterpart of -exp capacity: a seeded
// open-loop schedule replayed in wall-clock time against a running
// beaconserved, reporting coordinated-omission-safe intended-start tails
// next to the naive send-time tails and the detected knee. Like -drive,
// wall-clock numbers vary run to run; the virtual sweep is the
// deterministic record, this is the drill.
func runDriveCapacity(base string, cfg driveCapacityConfig, w io.Writer) error {
	base = strings.TrimRight(base, "/")
	backend := &httpBackend{url: base, client: &http.Client{Timeout: 5 * time.Minute}}

	fractions := []float64{0.5, 1.0}
	fmt.Fprintf(w, "open-loop capacity drive of %s: %s arrivals, %d requests/step, %d send slots, seed %d\n",
		base, cfg.arrival, cfg.requests, cfg.inflight, cfg.seed)
	fmt.Fprintf(w, "  %10s %9s %5s %5s %5s %10s %10s %12s %6s\n",
		"offered", "goodput", "ok", "shed", "fail", "p50", "p99", "naive p99", "late")
	var steps []loadgen.StepResult
	for i, f := range fractions {
		rate := cfg.qps * f
		sched, err := loadgen.Build(loadgen.ScheduleSpec{
			Seed:     cfg.seed + uint64(i),
			Arrival:  arrivalSpec(cfg.arrival, rate),
			Requests: cfg.requests,
			Classes:  8,
			Skew:     1.0,
		})
		if err != nil {
			return err
		}
		res, err := loadgen.RunLive(sched, backend, loadgen.LiveConfig{MaxInflight: cfg.inflight})
		if err != nil {
			return err
		}
		res.OfferedQPS = rate // grid-defined, like the virtual sweep
		steps = append(steps, res.StepResult)
		fmt.Fprintf(w, "  %8.1f/s %7.1f/s %5d %5d %5d %10v %10v %12v %6d\n",
			res.OfferedQPS, res.GoodputQPS, res.OK, res.Shed, res.Failed,
			sim.Time(res.P50Ns), sim.Time(res.P99Ns), sim.Time(res.NaiveP99Ns), res.LateSends)
	}
	knee, saturated := loadgen.Knee(steps, loadgen.DefaultKneeRule())
	switch {
	case knee < 0:
		fmt.Fprintf(w, "  knee: below the sweep (lightest step already violates the SLO rule)\n")
	case saturated:
		fmt.Fprintf(w, "  knee: %.1f qps — feed this to beaconserved -capacity-qps\n", steps[knee].OfferedQPS)
	default:
		fmt.Fprintf(w, "  knee: >= %.1f qps (sweep never saturated; lower bound for -capacity-qps)\n", steps[knee].OfferedQPS)
	}
	for _, s := range steps {
		if s.Failed > 0 {
			return fmt.Errorf("%d request(s) hard-failed", s.Failed)
		}
	}
	return nil
}
