package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// runDrive is the live counterpart of -exp chaos: it fires requests at
// a running beaconserved (typically one started with -chaos-* flags)
// and reports what clients actually experienced — availability,
// degraded serves, shed load, and latency tails. Unlike the virtual
// sweep this measures wall clock against a real daemon, so numbers
// vary run to run; the virtual sweep is the deterministic record, this
// is the drill.
func runDrive(base string, requests, clients int, w io.Writer) error {
	base = strings.TrimRight(base, "/")
	type sample struct {
		class string // ok, degraded, shed, failed
		lat   time.Duration
	}
	// Cycle a handful of seeds within one (platform, dataset) family:
	// repeats exercise the memo while fresh seeds keep the engine (and
	// any armed chaos hooks) busy, and a single family means an open
	// breaker is observable as degraded serves, not hidden by others.
	body := func(i int) []byte {
		req := map[string]any{
			"platform": "BG-2",
			"dataset":  "amazon",
			"nodes":    2000,
			"batches":  2,
		}
		if seed := uint64(i % 8); seed > 0 {
			req["seed"] = seed
		}
		b, _ := json.Marshal(req)
		return b
	}

	samples := make([]sample, requests)
	var wg sync.WaitGroup
	next := make(chan int)
	client := &http.Client{Timeout: 5 * time.Minute}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/simulate", "application/json", bytes.NewReader(body(i)))
				s := sample{lat: time.Since(t0)}
				if err != nil {
					s.class = "failed"
				} else {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					s.lat = time.Since(t0)
					switch {
					case resp.StatusCode == http.StatusOK && resp.Header.Get("X-Degraded") == "true":
						s.class = "degraded"
					case resp.StatusCode == http.StatusOK:
						s.class = "ok"
					case resp.StatusCode == http.StatusTooManyRequests ||
						resp.StatusCode == http.StatusServiceUnavailable:
						s.class = "shed"
					default:
						s.class = "failed"
					}
				}
				samples[i] = s
			}
		}()
	}
	t0 := time.Now()
	for i := 0; i < requests; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(t0)

	counts := map[string]int{}
	var lats []time.Duration
	for _, s := range samples {
		counts[s.class]++
		if s.class == "ok" || s.class == "degraded" {
			lats = append(lats, s.lat)
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	avail := float64(counts["ok"]+counts["degraded"]) / float64(requests)
	fmt.Fprintf(w, "drove %s: %d requests, %d clients, %v elapsed\n", base, requests, clients, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  ok %d  degraded %d  shed %d  failed %d\n",
		counts["ok"], counts["degraded"], counts["shed"], counts["failed"])
	fmt.Fprintf(w, "  availability %.2f%%  goodput %.1f/s  served p50 %v  p99 %v\n",
		100*avail, float64(counts["ok"])/elapsed.Seconds(),
		q(0.5).Round(time.Microsecond), q(0.99).Round(time.Microsecond))
	if counts["failed"] > 0 {
		return fmt.Errorf("%d request(s) hard-failed", counts["failed"])
	}
	return nil
}
