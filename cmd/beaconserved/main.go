// Command beaconserved serves platform simulations and paper
// experiments over HTTP: the simulation-as-a-service front end of this
// repository. Where beaconsim and beaconbench are one-shot batch tools,
// beaconserved is a long-lived daemon with a bounded worker pool, an
// LRU result cache, admission control, per-request deadlines, and a
// Prometheus metrics endpoint.
//
// Usage:
//
//	beaconserved                              # listen on :8080
//	beaconserved -addr 127.0.0.1:9090 -workers 8 -queue-depth 32
//	beaconserved -pprof                       # expose /debug/pprof/
//
// Endpoints:
//
//	POST /v1/simulate     run (or fetch from cache) one simulation
//	POST /v1/experiment   reproduce one paper table/figure
//	GET  /v1/experiments  list experiment ids
//	GET  /healthz         liveness + drain state
//	GET  /metrics         Prometheus text exposition
//
// On SIGTERM/SIGINT the daemon drains: /healthz flips to 503, new work
// is refused, in-flight requests finish (bounded by -drain-timeout),
// and the process exits 0 on a clean drain, 1 otherwise.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"beacongnn/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("beaconserved", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "concurrent simulations (0 = all CPU cores)")
		queueDepth   = fs.Int("queue-depth", 0, "admitted request cap before 429 shedding (0 = 4x workers)")
		cacheResults = fs.Int("cache-results", 0, "LRU cap on memoized simulation results (0 = 512)")
		cacheInsts   = fs.Int("cache-instances", 0, "LRU cap on materialized dataset instances (0 = 8)")
		timeout      = fs.Duration("timeout", 0, "default per-request deadline (0 = 120s)")
		maxTimeout   = fs.Duration("max-timeout", 0, "ceiling on client-requested deadlines (0 = 10m)")
		maxNodes     = fs.Int("max-nodes", 0, "largest materialized graph a request may ask for (0 = 200000)")
		check        = fs.Bool("check", false, "verify run invariants on every simulation")
		pprofOn      = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	logger := log.New(os.Stderr, "beaconserved: ", log.LstdFlags)

	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		CacheResults:   *cacheResults,
		CacheInstances: *cacheInsts,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxNodes:       *maxNodes,
		Check:          *check,
		EnablePprof:    *pprofOn,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		logger.Printf("listen failed: %v", err)
		return 1
	case <-ctx.Done():
	}

	logger.Printf("signal received; draining (timeout %v)", *drainTimeout)
	srv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("drain incomplete: %v", err)
		return 1
	}
	runs, hits := srv.Engine().Stats()
	logger.Printf("drained cleanly (%d simulations run, %d memo hits); bye", runs, hits)
	return 0
}
