// Command beaconserved serves platform simulations and paper
// experiments over HTTP: the simulation-as-a-service front end of this
// repository. Where beaconsim and beaconbench are one-shot batch tools,
// beaconserved is a long-lived daemon with a bounded worker pool, an
// LRU result cache, admission control, per-request deadlines, and a
// Prometheus metrics endpoint.
//
// Usage:
//
//	beaconserved                              # listen on :8080
//	beaconserved -addr 127.0.0.1:9090 -workers 8 -queue-depth 32
//	beaconserved -pprof                       # expose /debug/pprof/
//	beaconserved -hedge-after 2s -breaker-threshold 5   # tune resilience
//	beaconserved -chaos-engine-fail-rate 0.3 -chaos-seed 7  # armed fault injection
//	beaconserved -cluster 3                   # 3 in-process replicas, consistent-hash routed
//
// Requests are served through a resilience stack: transient engine
// faults retry under a token budget with jittered exponential backoff,
// stalled simulations can race a hedged duplicate, and a per-
// (platform, dataset) circuit breaker sheds to degraded mode — stale
// last-known-good results marked with X-Degraded/Warning headers —
// instead of failing. The -chaos-* flags arm the deterministic fault
// injector (internal/chaos) for drills; all injection is off by
// default and costs nothing when disabled.
//
// Endpoints:
//
//	POST /v1/simulate     run (or fetch from cache) one simulation
//	POST /v1/experiment   reproduce one paper table/figure
//	GET  /v1/experiments  list experiment ids
//	GET  /healthz         liveness + drain state
//	GET  /metrics         Prometheus text exposition
//
// With -cluster N the daemon runs N in-process replicas — each with its
// own engine, caches, and resilience stack — behind a consistent-hash
// router with cache-aware placement (a given request body always lands
// on the same replica). Dead replicas are routed around via per-replica
// circuit breakers, and three router-level endpoints appear:
//
//	GET  /v1/replicas              replica states
//	POST /v1/replicas/{id}/kill    simulate replica failure
//	POST /v1/replicas/{id}/recover restore a killed replica
//
// On SIGTERM/SIGINT the daemon drains: /healthz flips to 503, new work
// is refused, in-flight requests finish (bounded by -drain-timeout),
// and the process exits 0 on a clean drain, 1 otherwise.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"beacongnn/internal/chaos"
	"beacongnn/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("beaconserved", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		clusterN     = fs.Int("cluster", 0, "run N in-process replicas behind consistent-hash request routing (0/1 = single server)")
		workers      = fs.Int("workers", 0, "concurrent simulations (0 = all CPU cores)")
		queueDepth   = fs.Int("queue-depth", 0, "admitted request cap before 429 shedding (0 = 4x workers)")
		cacheResults = fs.Int("cache-results", 0, "LRU cap on memoized simulation results (0 = 512)")
		cacheInsts   = fs.Int("cache-instances", 0, "LRU cap on materialized dataset instances (0 = 8)")
		timeout      = fs.Duration("timeout", 0, "default per-request deadline (0 = 120s)")
		maxTimeout   = fs.Duration("max-timeout", 0, "ceiling on client-requested deadlines (0 = 10m)")
		maxNodes     = fs.Int("max-nodes", 0, "largest materialized graph a request may ask for (0 = 200000)")
		check        = fs.Bool("check", false, "verify run invariants on every simulation")
		pprofOn      = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "hard drain deadline: in-flight requests past it are cancelled")

		maxAttempts  = fs.Int("max-attempts", 0, "tries per request against transient faults incl. the first (0 = 3)")
		retryBudget  = fs.Float64("retry-budget", 0, "retry-budget earn ratio (0 = 0.2, negative disables retries)")
		retryBackoff = fs.Duration("retry-backoff", 0, "exponential retry backoff base (0 = 50ms)")
		retryBackMax = fs.Duration("retry-backoff-max", 0, "retry backoff ceiling (0 = 2s)")
		hedgeAfter   = fs.Duration("hedge-after", 0, "launch a duplicate simulation after this stall (0 = hedging off)")
		brkThreshold = fs.Int("breaker-threshold", 0, "consecutive failures tripping a family's circuit breaker (0 = 5)")
		brkCooldown  = fs.Duration("breaker-cooldown", 0, "breaker open dwell before a half-open probe (0 = 10s)")
		staleCap     = fs.Int("stale-cap", 0, "LRU cap on last-known-good results for degraded mode (0 = 64)")
		retryCeiling = fs.Duration("retry-after-ceiling", 0, "cap on the Retry-After estimate sent to shed clients (0 = 60s)")
		capacityQPS  = fs.Float64("capacity-qps", 0, "measured capacity knee (knee_qps from beaconbench -exp capacity -json); sustained load above it sheds by rate (0 = disabled)")

		chaosSeed       = fs.Uint64("chaos-seed", 0, "chaos injection schedule seed")
		chaosFailRate   = fs.Float64("chaos-engine-fail-rate", 0, "P(simulation run fails transiently)")
		chaosFailAfter  = fs.Uint64("chaos-engine-fail-after", 0, "grace period: first N runs are immune to engine faults")
		chaosStallRate  = fs.Float64("chaos-engine-stall-rate", 0, "P(simulation run stalls holding its worker slot)")
		chaosStall      = fs.Duration("chaos-engine-stall", 0, "injected engine stall duration (0 = 50ms)")
		chaosEvictRate  = fs.Float64("chaos-evict-rate", 0, "P(simulation run triggers a memo eviction storm)")
		chaosEvictBurst = fs.Int("chaos-evict-burst", 0, "memo entries dropped per eviction storm (0 = 4)")
		chaosDropRate   = fs.Float64("chaos-http-drop-rate", 0, "P(request refused with 503 before handling)")
		chaosLatRate    = fs.Float64("chaos-http-latency-rate", 0, "P(request delayed before handling)")
		chaosLatency    = fs.Duration("chaos-http-latency", 0, "injected HTTP delay (0 = 100ms)")
		chaosTruncRate  = fs.Float64("chaos-http-trunc-rate", 0, "P(response body truncated mid-stream)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	logger := log.New(os.Stderr, "beaconserved: ", log.LstdFlags)

	ccfg := chaos.Config{
		Seed:            *chaosSeed,
		EngineFailRate:  *chaosFailRate,
		EngineFailAfter: *chaosFailAfter,
		EngineStallRate: *chaosStallRate,
		EngineStall:     *chaosStall,
		EvictRate:       *chaosEvictRate,
		EvictBurst:      *chaosEvictBurst,
		HTTPDropRate:    *chaosDropRate,
		HTTPLatencyRate: *chaosLatRate,
		HTTPLatency:     *chaosLatency,
		HTTPTruncRate:   *chaosTruncRate,
	}
	ccfg.Enabled = ccfg.EngineFailRate > 0 || ccfg.EngineStallRate > 0 ||
		ccfg.EvictRate > 0 || ccfg.HTTPDropRate > 0 || ccfg.HTTPLatencyRate > 0 ||
		ccfg.HTTPTruncRate > 0
	if err := ccfg.Validate(); err != nil {
		logger.Print(err)
		return 2
	}
	if ccfg.Enabled {
		logger.Printf("CHAOS INJECTION ARMED (seed %d) — this daemon will fault on purpose", ccfg.Seed)
	}

	scfg := serve.Config{
		Workers:           *workers,
		QueueDepth:        *queueDepth,
		CacheResults:      *cacheResults,
		CacheInstances:    *cacheInsts,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		MaxNodes:          *maxNodes,
		Check:             *check,
		EnablePprof:       *pprofOn,
		MaxAttempts:       *maxAttempts,
		RetryBudgetRatio:  *retryBudget,
		RetryBackoffBase:  *retryBackoff,
		RetryBackoffMax:   *retryBackMax,
		HedgeAfter:        *hedgeAfter,
		BreakerThreshold:  *brkThreshold,
		BreakerCooldown:   *brkCooldown,
		StaleCap:          *staleCap,
		RetryAfterCeiling: *retryCeiling,
		CapacityQPS:       *capacityQPS,
		DrainTimeout:      *drainTimeout,
		Chaos:             ccfg,
	}
	var (
		handler        http.Handler
		beginDrain     func()
		cancelInflight func() int
		engineStats    func() (uint64, uint64)
	)
	if *clusterN > 1 {
		cl := serve.NewCluster(*clusterN, scfg)
		handler, beginDrain, cancelInflight, engineStats = cl, cl.BeginDrain, cl.CancelInflight, cl.Stats
		logger.Printf("cluster mode: %d replicas behind consistent-hash routing", *clusterN)
	} else {
		srv := serve.New(scfg)
		handler, beginDrain, cancelInflight = srv, srv.BeginDrain, srv.CancelInflight
		engineStats = func() (uint64, uint64) { return srv.Engine().Stats() }
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		logger.Printf("listen failed: %v", err)
		return 1
	case <-ctx.Done():
	}

	logger.Printf("signal received; draining (hard deadline %v)", *drainTimeout)
	beginDrain()
	// Hard drain deadline: past it, stragglers are cancelled through
	// their per-request contexts (aborting simulation kernels mid-run)
	// rather than holding shutdown hostage. The Shutdown context gets a
	// short grace on top so cancelled handlers can still write their
	// error responses and the drain counts as clean.
	deadline := time.AfterFunc(*drainTimeout, func() {
		if n := cancelInflight(); n > 0 {
			logger.Printf("drain deadline reached; cancelled %d in-flight request(s)", n)
		}
	})
	defer deadline.Stop()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout+5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("drain incomplete: %v", err)
		return 1
	}
	runs, hits := engineStats()
	logger.Printf("drained cleanly (%d simulations run, %d memo hits); bye", runs, hits)
	return 0
}
