// Command benchgate is the CI benchmark-regression gate: it parses
// `go test -bench` output (with -count=N for medians), compares median
// ns/op and allocs/op against the checked-in BENCH_BASELINE.json, and
// exits non-zero when any gated benchmark regresses past the baseline's
// documented tolerances.
//
// Usage:
//
//	go test -run='^$' -bench=... -benchmem -count=5 ./... | tee bench.out
//	benchgate -baseline BENCH_BASELINE.json bench.out      # gate
//	benchgate -baseline BENCH_BASELINE.json -update bench.out  # re-baseline
//
// Policy (also documented in the baseline file itself):
//
//   - ns/op is gated with a deliberately loose tolerance (default 50 %)
//     because CI machines differ from the machine that recorded the
//     baseline; the gate catches step-change regressions (an O(n) loop
//     becoming O(n²), a lost fast path), not single-digit noise.
//   - allocs/op is gated tightly (default 5 % + 1) because allocation
//     counts are deterministic: any growth is a real code change.
//   - A gated benchmark missing from the measurement fails the gate —
//     a renamed or deleted benchmark must update the baseline in the
//     same PR, never silently drop out of coverage.
//
// When a regression is intentional, run with -update and commit the new
// BENCH_BASELINE.json in the same PR, explaining the change.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the BENCH_BASELINE.json schema.
type Baseline struct {
	Comment         string                `json:"comment"`
	NsTolerance     float64               `json:"ns_tolerance"`     // fractional, e.g. 0.5 = +50 %
	AllocsTolerance float64               `json:"allocs_tolerance"` // fractional, e.g. 0.05 = +5 % (+1 abs)
	Benchmarks      map[string]*Baseline1 `json:"benchmarks"`
}

// Baseline1 is one gated benchmark's recorded medians.
type Baseline1 struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// sample is one parsed benchmark line.
type sample struct {
	ns     float64
	allocs float64
	hasAll bool
}

// benchLine matches `BenchmarkName-8   120  98765 ns/op  12 B/op  3 allocs/op`
// (benchmem fields optional, extra custom metrics ignored).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9]+) allocs/op)?`)

// parse reads go-test bench output, keying each benchmark as
// "<pkg> <name>" using the `pkg:` section headers, so same-named
// benchmarks in different packages never collide.
func parse(r io.Reader) (map[string][]sample, error) {
	out := make(map[string][]sample)
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		s := sample{ns: ns}
		if m[3] != "" {
			allocs, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %v", line, err)
			}
			s.allocs = allocs
			s.hasAll = true
		}
		key := pkg + " " + m[1]
		out[key] = append(out[key], s)
	}
	return out, sc.Err()
}

// median of a float slice (mean of the middle pair for even lengths).
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// medians collapses samples to per-benchmark medians.
func medians(samples map[string][]sample) map[string]Baseline1 {
	out := make(map[string]Baseline1, len(samples))
	for key, ss := range samples {
		ns := make([]float64, 0, len(ss))
		allocs := make([]float64, 0, len(ss))
		for _, s := range ss {
			ns = append(ns, s.ns)
			if s.hasAll {
				allocs = append(allocs, s.allocs)
			}
		}
		m := Baseline1{NsPerOp: median(ns)}
		if len(allocs) > 0 {
			m.AllocsPerOp = median(allocs)
		}
		out[key] = m
	}
	return out
}

// gate compares measurements against the baseline and returns the list
// of failures (empty = pass) plus a human-readable report of every
// gated benchmark.
func gate(b *Baseline, measured map[string]Baseline1) (failures []string, report string) {
	nsTol := b.NsTolerance
	if nsTol <= 0 {
		nsTol = 0.5
	}
	allocsTol := b.AllocsTolerance
	if allocsTol <= 0 {
		allocsTol = 0.05
	}
	keys := make([]string, 0, len(b.Benchmarks))
	for k := range b.Benchmarks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var rep strings.Builder
	fmt.Fprintf(&rep, "%-60s %14s %14s %12s %12s\n", "benchmark", "base ns/op", "ns/op", "base allocs", "allocs")
	for _, key := range keys {
		base := b.Benchmarks[key]
		got, ok := measured[key]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: gated benchmark missing from measurement (renamed? update BENCH_BASELINE.json)", key))
			continue
		}
		fmt.Fprintf(&rep, "%-60s %14.1f %14.1f %12.1f %12.1f\n", key, base.NsPerOp, got.NsPerOp, base.AllocsPerOp, got.AllocsPerOp)
		if limit := base.NsPerOp * (1 + nsTol); got.NsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: ns/op %.1f exceeds baseline %.1f by more than %.0f%% (limit %.1f)",
				key, got.NsPerOp, base.NsPerOp, nsTol*100, limit))
		}
		if limit := base.AllocsPerOp*(1+allocsTol) + 1; got.AllocsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: allocs/op %.1f exceeds baseline %.1f (+%.0f%% +1 limit %.1f)",
				key, got.AllocsPerOp, base.AllocsPerOp, allocsTol*100, limit))
		}
	}
	return failures, rep.String()
}

// pctDelta formats a relative change benchstat-style ("+3.21%", "~" when
// the base is zero).
func pctDelta(old, new float64) string {
	if old == 0 {
		return "~"
	}
	return fmt.Sprintf("%+.2f%%", (new-old)/old*100)
}

// overheadSection reports the cost of enabled tracing explicitly: the
// ServerTraced − Server delta in ns/op and allocs/op from this
// measurement. Tracing must stay a hook-dispatch cost, not an
// allocation source — a growing allocs delta here means span records
// stopped being reused.
func overheadSection(measured map[string]Baseline1) string {
	const (
		baseKey   = "beacongnn/internal/sim BenchmarkServer"
		tracedKey = "beacongnn/internal/sim BenchmarkServerTraced"
	)
	base, okB := measured[baseKey]
	traced, okT := measured[tracedKey]
	if !okB || !okT {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "tracing overhead (BenchmarkServerTraced vs BenchmarkServer):\n")
	fmt.Fprintf(&b, "  ns/op:     %.1f -> %.1f  (%+.1f, %s)\n",
		base.NsPerOp, traced.NsPerOp, traced.NsPerOp-base.NsPerOp, pctDelta(base.NsPerOp, traced.NsPerOp))
	fmt.Fprintf(&b, "  allocs/op: %.0f -> %.0f  (%+.0f)\n",
		base.AllocsPerOp, traced.AllocsPerOp, traced.AllocsPerOp-base.AllocsPerOp)
	return b.String()
}

// benchstatSection renders the gated set as a benchstat-style
// comparison: old = the checked-in baseline, new = this measurement,
// one table for time and one for allocations.
func benchstatSection(b *Baseline, measured map[string]Baseline1) string {
	keys := make([]string, 0, len(b.Benchmarks))
	for k := range b.Benchmarks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var rep strings.Builder
	fmt.Fprintf(&rep, "%-60s %14s %14s %10s\n", "name", "old ns/op", "new ns/op", "delta")
	for _, key := range keys {
		got, ok := measured[key]
		if !ok {
			continue
		}
		base := b.Benchmarks[key]
		fmt.Fprintf(&rep, "%-60s %14.1f %14.1f %10s\n", key, base.NsPerOp, got.NsPerOp, pctDelta(base.NsPerOp, got.NsPerOp))
	}
	fmt.Fprintf(&rep, "\n%-60s %14s %14s %10s\n", "name", "old allocs/op", "new allocs/op", "delta")
	for _, key := range keys {
		got, ok := measured[key]
		if !ok {
			continue
		}
		base := b.Benchmarks[key]
		fmt.Fprintf(&rep, "%-60s %14.1f %14.1f %10s\n", key, base.AllocsPerOp, got.AllocsPerOp, pctDelta(base.AllocsPerOp, got.AllocsPerOp))
	}
	return rep.String()
}

// fullReport assembles the bench_report.txt artifact: the gate table,
// the explicit tracing-overhead delta, the benchstat-style old-vs-new
// comparison, and the verdict.
func fullReport(b *Baseline, measured map[string]Baseline1, gateTable string, failures []string) string {
	var rep strings.Builder
	rep.WriteString(gateTable)
	rep.WriteString("\n")
	if s := overheadSection(measured); s != "" {
		rep.WriteString(s)
		rep.WriteString("\n")
	}
	rep.WriteString("baseline (old) vs this run (new):\n")
	rep.WriteString(benchstatSection(b, measured))
	rep.WriteString("\n")
	if len(failures) == 0 {
		fmt.Fprintf(&rep, "verdict: PASS (%d benchmarks within tolerance)\n", len(b.Benchmarks))
	} else {
		fmt.Fprintf(&rep, "verdict: FAIL (%d regressions)\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(&rep, "  FAIL %s\n", f)
		}
	}
	return rep.String()
}

// update rewrites the baseline's gated entries from the measurement,
// keeping tolerances and the gated set unchanged. A gated benchmark
// missing from the measurement is an error.
func update(b *Baseline, measured map[string]Baseline1) error {
	for key := range b.Benchmarks {
		got, ok := measured[key]
		if !ok {
			return fmt.Errorf("%s: gated benchmark missing from measurement", key)
		}
		b.Benchmarks[key] = &Baseline1{NsPerOp: got.NsPerOp, AllocsPerOp: got.AllocsPerOp}
	}
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baselinePath = fs.String("baseline", "BENCH_BASELINE.json", "baseline file to gate against")
		doUpdate     = fs.Bool("update", false, "rewrite the baseline's medians from this measurement instead of gating")
		reportPath   = fs.String("report", "", "also write a full report (gate table, tracing overhead, benchstat-style old-vs-new) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 2
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(stderr, "benchgate: %s: %v\n", *baselinePath, err)
		return 2
	}
	samples := make(map[string][]sample)
	readInto := func(r io.Reader) error {
		part, err := parse(r)
		if err != nil {
			return err
		}
		for k, v := range part {
			samples[k] = append(samples[k], v...)
		}
		return nil
	}
	if fs.NArg() == 0 {
		err = readInto(stdin)
	} else {
		for _, path := range fs.Args() {
			f, ferr := os.Open(path)
			if ferr != nil {
				err = ferr
				break
			}
			err = readInto(f)
			f.Close()
			if err != nil {
				break
			}
		}
	}
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 2
	}
	measured := medians(samples)

	if *doUpdate {
		if err := update(&base, measured); err != nil {
			fmt.Fprintln(stderr, "benchgate:", err)
			return 2
		}
		out, err := json.MarshalIndent(&base, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "benchgate:", err)
			return 2
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "benchgate:", err)
			return 2
		}
		fmt.Fprintf(stdout, "benchgate: baseline %s updated (%d benchmarks)\n", *baselinePath, len(base.Benchmarks))
		return 0
	}

	failures, report := gate(&base, measured)
	if *reportPath != "" {
		if err := os.WriteFile(*reportPath, []byte(fullReport(&base, measured, report, failures)), 0o644); err != nil {
			fmt.Fprintln(stderr, "benchgate:", err)
			return 2
		}
	}
	fmt.Fprint(stdout, report)
	if len(failures) > 0 {
		fmt.Fprintf(stderr, "benchgate: %d regression(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintln(stderr, "  FAIL", f)
		}
		fmt.Fprintln(stderr, "If intentional, re-baseline with: make bench-baseline (and commit BENCH_BASELINE.json)")
		return 1
	}
	fmt.Fprintf(stdout, "benchgate: %d benchmarks within tolerance\n", len(base.Benchmarks))
	return 0
}
