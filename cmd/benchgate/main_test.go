package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: beacongnn/internal/sim
cpu: Test CPU
BenchmarkEventKernel-8   	  500000	      2000 ns/op	     120 B/op	       5 allocs/op
BenchmarkEventKernel-8   	  500000	      2100 ns/op	     120 B/op	       5 allocs/op
BenchmarkEventKernel-8   	  500000	      1900 ns/op	     120 B/op	       5 allocs/op
BenchmarkEventKernel-8   	  500000	      2050 ns/op	     120 B/op	       5 allocs/op
BenchmarkEventKernel-8   	  500000	      1950 ns/op	     120 B/op	       5 allocs/op
PASS
pkg: beacongnn
BenchmarkRunAllParallel-8   	       2	 900000000 ns/op	 5000000 B/op	   40000 allocs/op
BenchmarkRunAllParallel-8   	       2	 910000000 ns/op	 5000000 B/op	   40000 allocs/op
BenchmarkRunAllParallel-8   	       2	 890000000 ns/op	 5000000 B/op	   40000 allocs/op
PASS
`

func TestParseKeysByPackageAndMedian(t *testing.T) {
	samples, err := parse(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	m := medians(samples)
	kernel, ok := m["beacongnn/internal/sim BenchmarkEventKernel"]
	if !ok {
		t.Fatalf("kernel benchmark not keyed by package; keys: %v", keys(m))
	}
	if kernel.NsPerOp != 2000 {
		t.Fatalf("median ns/op = %v, want 2000", kernel.NsPerOp)
	}
	if kernel.AllocsPerOp != 5 {
		t.Fatalf("median allocs/op = %v, want 5", kernel.AllocsPerOp)
	}
	runall := m["beacongnn BenchmarkRunAllParallel"]
	if runall.NsPerOp != 900000000 {
		t.Fatalf("RunAll median ns/op = %v", runall.NsPerOp)
	}
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func baselineFor(ns, allocs float64) *Baseline {
	return &Baseline{
		NsTolerance:     0.5,
		AllocsTolerance: 0.05,
		Benchmarks: map[string]*Baseline1{
			"beacongnn/internal/sim BenchmarkEventKernel": {NsPerOp: ns, AllocsPerOp: allocs},
		},
	}
}

func measuredKernel(t *testing.T) map[string]Baseline1 {
	t.Helper()
	samples, err := parse(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	return medians(samples)
}

func TestGatePassesWithinTolerance(t *testing.T) {
	// Baseline 1800 ns, measured 2000: +11 % < 50 % tolerance.
	failures, report := gate(baselineFor(1800, 5), measuredKernel(t))
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	if !strings.Contains(report, "BenchmarkEventKernel") {
		t.Fatalf("report missing the gated benchmark:\n%s", report)
	}
}

func TestGateFailsOnSyntheticNsRegression(t *testing.T) {
	// Seeded regression: baseline says 900 ns, measurement is 2000 —
	// a 2.2× slowdown must trip the 50 % gate.
	failures, _ := gate(baselineFor(900, 5), measuredKernel(t))
	if len(failures) != 1 || !strings.Contains(failures[0], "ns/op") {
		t.Fatalf("failures = %v, want one ns/op regression", failures)
	}
}

func TestGateFailsOnAllocRegression(t *testing.T) {
	// allocs went 3 -> 5: past the 5 % + 1 limit even though ns is fine.
	failures, _ := gate(baselineFor(2000, 3), measuredKernel(t))
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op") {
		t.Fatalf("failures = %v, want one allocs/op regression", failures)
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	b := baselineFor(2000, 5)
	b.Benchmarks["beacongnn BenchmarkRenamedAway"] = &Baseline1{NsPerOp: 1, AllocsPerOp: 1}
	failures, _ := gate(b, measuredKernel(t))
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("failures = %v, want one missing-benchmark failure", failures)
	}
}

func TestRunEndToEndGateAndUpdate(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(benchPath, []byte(benchOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	basePath := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(basePath, []byte(`{
  "ns_tolerance": 0.5,
  "allocs_tolerance": 0.05,
  "benchmarks": {
    "beacongnn/internal/sim BenchmarkEventKernel": {"ns_per_op": 900, "allocs_per_op": 5}
  }
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	// Gate trips on the seeded 900-ns baseline...
	if code := run([]string{"-baseline", basePath, benchPath}, nil, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "regression") {
		t.Fatalf("stderr does not report the regression: %s", errOut.String())
	}
	// ...-update re-baselines it...
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", basePath, "-update", benchPath}, nil, &out, &errOut); code != 0 {
		t.Fatalf("update exit = %d; stderr: %s", code, errOut.String())
	}
	// ...and the same measurement now passes.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", basePath, benchPath}, nil, &out, &errOut); code != 0 {
		t.Fatalf("post-update exit = %d; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "within tolerance") {
		t.Fatalf("stdout: %s", out.String())
	}
}

const serverBenchOutput = `pkg: beacongnn/internal/sim
BenchmarkServer-8         	    2000	    600000 ns/op	     800 B/op	      27 allocs/op
BenchmarkServerTraced-8   	    1800	    650000 ns/op	     810 B/op	      28 allocs/op
PASS
`

func TestReportFileCarriesOverheadAndComparison(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(benchPath, []byte(serverBenchOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	basePath := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(basePath, []byte(`{
  "ns_tolerance": 0.5,
  "allocs_tolerance": 0.05,
  "benchmarks": {
    "beacongnn/internal/sim BenchmarkServer": {"ns_per_op": 620000, "allocs_per_op": 27},
    "beacongnn/internal/sim BenchmarkServerTraced": {"ns_per_op": 660000, "allocs_per_op": 28}
  }
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	reportPath := filepath.Join(dir, "bench_report.txt")
	var out, errOut strings.Builder
	if code := run([]string{"-baseline", basePath, "-report", reportPath, benchPath}, nil, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d; stderr: %s", code, errOut.String())
	}
	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	rep := string(raw)
	for _, want := range []string{
		"tracing overhead (BenchmarkServerTraced vs BenchmarkServer)",
		"allocs/op: 27 -> 28  (+1)",
		"old ns/op",
		"new allocs/op",
		"verdict: PASS",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	// The ns delta must be the measured difference, 600000 -> 650000.
	if !strings.Contains(rep, "600000.0 -> 650000.0") {
		t.Errorf("report does not carry the explicit ns overhead:\n%s", rep)
	}
}
