// Command beacontrace generates, inspects, and replays mini-batch
// target traces, letting the same workload drive different platforms or
// sessions reproducibly.
//
// Usage:
//
//	beacontrace -gen -dataset amazon -batches 16 -skew 1.2 -out q.json
//	beacontrace -inspect -in q.json
//	beacontrace -replay -in q.json -platform BG-2 -dataset amazon
package main

import (
	"flag"
	"fmt"
	"os"

	"beacongnn/internal/config"
	"beacongnn/internal/dataset"
	"beacongnn/internal/platform"
	"beacongnn/internal/trace"
)

func main() {
	var (
		gen     = flag.Bool("gen", false, "generate a trace")
		inspect = flag.Bool("inspect", false, "print a trace's statistics")
		replay  = flag.Bool("replay", false, "replay a trace on a platform")
		ds      = flag.String("dataset", "amazon", "dataset name")
		plat    = flag.String("platform", "BG-2", "platform for -replay")
		nodes   = flag.Int("nodes", 10000, "node domain / materialized scale")
		batches = flag.Int("batches", 8, "batches to generate")
		batch   = flag.Int("batch", 64, "targets per batch")
		skew    = flag.Float64("skew", 0, "Zipf skew (0 = uniform)")
		seed    = flag.Uint64("seed", 0xBEAC0, "generation seed")
		in      = flag.String("in", "", "input trace file")
		out     = flag.String("out", "", "output trace file (default stdout)")
	)
	flag.Parse()

	switch {
	case *gen:
		tr, err := trace.Generate(*ds, *nodes, *batch, *batches, *skew, *seed)
		if err != nil {
			fatal(err)
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := tr.Save(w); err != nil {
			fatal(err)
		}
	case *inspect:
		tr := load(*in)
		total := len(tr.Batches) * tr.BatchSize
		fmt.Printf("dataset    %s\n", tr.Dataset)
		fmt.Printf("shape      %d batches × %d targets (%d total) over %d nodes\n",
			len(tr.Batches), tr.BatchSize, total, tr.Nodes)
		fmt.Printf("skew       %.2f (hot set covering 80%% of draws: %d targets)\n",
			tr.Skew, tr.HotSet(0.8))
	case *replay:
		tr := load(*in)
		kind, err := platform.ByName(*plat)
		if err != nil {
			fatal(err)
		}
		d, err := dataset.ByName(*ds)
		if err != nil {
			fatal(err)
		}
		cfg := config.Default()
		cfg.GNN.BatchSize = tr.BatchSize
		inst, err := dataset.Materialize(d, tr.Nodes, cfg.Flash.PageSize, cfg.Seed)
		if err != nil {
			fatal(err)
		}
		s, err := platform.NewSystem(kind, cfg, inst, 0)
		if err != nil {
			fatal(err)
		}
		s.SetTargetSource(tr.Targets)
		res, err := s.Run(len(tr.Batches))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s replayed %d batches of %s: %.0f targets/s, %.1f dies, p99 command %v\n",
			res.Platform, res.Batches, tr.Dataset, res.Throughput, res.MeanDies, res.CmdP99)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func load(path string) *trace.Trace {
	if path == "" {
		fatal(fmt.Errorf("-in required"))
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := trace.Load(f)
	if err != nil {
		fatal(err)
	}
	return tr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "beacontrace:", err)
	os.Exit(1)
}
