package main

import (
	"io"
	"strings"
	"testing"

	"beacongnn/internal/platform"
	"beacongnn/internal/sim"
)

func TestParseCLIValid(t *testing.T) {
	cases := []struct {
		name  string
		args  []string
		check func(t *testing.T, c *cliConfig)
	}{
		{"defaults", nil, func(t *testing.T, c *cliConfig) {
			if len(c.kinds) != 1 || c.kinds[0] != platform.BG2 {
				t.Errorf("default platform = %v, want [BG-2]", c.kinds)
			}
			if c.dataset.Name != "amazon" || c.nodes != 10000 || c.batches != 6 {
				t.Errorf("defaults wrong: %+v", c)
			}
			if c.check || c.cfg.Fault.Enabled {
				t.Errorf("check/faults default on")
			}
		}},
		{"platform-list", []string{"-platform", "CC,BG-1,BG-2"}, func(t *testing.T, c *cliConfig) {
			want := []platform.Kind{platform.CC, platform.BG1, platform.BG2}
			if len(c.kinds) != 3 || c.kinds[0] != want[0] || c.kinds[1] != want[1] || c.kinds[2] != want[2] {
				t.Errorf("kinds = %v, want %v", c.kinds, want)
			}
		}},
		{"platform-all", []string{"-platform", "all"}, func(t *testing.T, c *cliConfig) {
			if len(c.kinds) != len(platform.All()) {
				t.Errorf("all expands to %d kinds", len(c.kinds))
			}
		}},
		{"check", []string{"-check"}, func(t *testing.T, c *cliConfig) {
			if !c.check {
				t.Errorf("-check not parsed")
			}
		}},
		{"overrides", []string{"-channels", "8", "-dies", "2", "-cores", "6", "-batch", "32", "-read-latency", "20us", "-parallel", "2"}, func(t *testing.T, c *cliConfig) {
			cfg := c.cfg
			if cfg.Flash.Channels != 8 || cfg.Flash.DiesPerChannel != 2 || cfg.Firmware.Cores != 6 || cfg.GNN.BatchSize != 32 {
				t.Errorf("overrides not applied: %+v", cfg)
			}
			if cfg.Flash.ReadLatency != 20*sim.Microsecond {
				t.Errorf("read latency = %v", cfg.Flash.ReadLatency)
			}
			if c.parallel != 2 {
				t.Errorf("parallel = %d", c.parallel)
			}
		}},
		{"fault-flags-enable-model", []string{"-fault-rber", "0.001", "-fault-dead-dies", "3, 7", "-fault-dead-channels", "1"}, func(t *testing.T, c *cliConfig) {
			f := c.cfg.Fault
			if !f.Enabled || f.BaseRBER != 0.001 {
				t.Errorf("fault model not enabled by fault flags: %+v", f)
			}
			if len(f.DeadDies) != 2 || f.DeadDies[0] != 3 || f.DeadDies[1] != 7 || len(f.DeadChannels) != 1 {
				t.Errorf("dead lists = %v / %v", f.DeadDies, f.DeadChannels)
			}
		}},
		{"trace", []string{"-trace", "out.json"}, func(t *testing.T, c *cliConfig) {
			if c.traceOut != "out.json" {
				t.Errorf("traceOut = %q", c.traceOut)
			}
		}},
		{"shards-default-partitioner", []string{"-shards", "4"}, func(t *testing.T, c *cliConfig) {
			if c.shards != 4 || c.partitioner != "hash" {
				t.Errorf("shards/partitioner = %d/%q, want 4/hash", c.shards, c.partitioner)
			}
		}},
		{"shards-locality", []string{"-shards", "2", "-partitioner", " Locality "}, func(t *testing.T, c *cliConfig) {
			if c.shards != 2 || c.partitioner != "locality" {
				t.Errorf("shards/partitioner = %d/%q, want 2/locality", c.shards, c.partitioner)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := parseCLI(tc.args, io.Discard)
			if err != nil {
				t.Fatalf("parseCLI(%v): %v", tc.args, err)
			}
			tc.check(t, c)
		})
	}
}

func TestParseCLIErrors(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantMsg string // substring of the error and of the stderr report
	}{
		{"unknown-flag", []string{"-bogus"}, "-bogus"},
		{"positional-args", []string{"stray"}, "unexpected arguments"},
		{"bad-platform", []string{"-platform", "BG-9"}, "BG-9"},
		{"bad-dataset", []string{"-dataset", "imaginary"}, "imaginary"},
		{"zero-nodes", []string{"-nodes", "0"}, "-nodes"},
		{"negative-nodes", []string{"-nodes", "-5"}, "-nodes"},
		{"zero-batches", []string{"-batches", "0"}, "-batches"},
		{"negative-batch", []string{"-batch", "-1"}, "-batch"},
		{"negative-parallel", []string{"-parallel", "-2"}, "-parallel"},
		{"negative-read-latency", []string{"-read-latency", "-3us"}, "-read-latency"},
		{"negative-channels", []string{"-channels", "-1"}, "-channels"},
		{"negative-rber", []string{"-fault-rber", "-0.1"}, "-fault-rber"},
		{"rber-out-of-range", []string{"-fault-rber", "0.7"}, "out of range"},
		{"bad-dead-dies", []string{"-fault-dead-dies", "3,x"}, "bad index"},
		{"dead-die-out-of-geometry", []string{"-faults", "-fault-dead-dies", "4096"}, "dead die"},
		{"negative-shards", []string{"-shards", "-1"}, "-shards"},
		{"partitioner-without-shards", []string{"-partitioner", "hash"}, "-partitioner requires -shards"},
		{"bad-partitioner", []string{"-shards", "2", "-partitioner", "roundrobin"}, "roundrobin"},
		{"shards-with-trace", []string{"-shards", "2", "-trace", "out.json"}, "-trace is not supported"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf strings.Builder
			_, err := parseCLI(tc.args, &buf)
			if err == nil {
				t.Fatalf("parseCLI(%v) accepted", tc.args)
			}
			if !strings.Contains(buf.String(), tc.wantMsg) {
				t.Errorf("stderr %q does not mention %q", buf.String(), tc.wantMsg)
			}
		})
	}
}

func TestParseCLIHelp(t *testing.T) {
	var buf strings.Builder
	_, err := parseCLI([]string{"-h"}, &buf)
	if err == nil {
		t.Fatal("-h returned no error")
	}
	if !strings.Contains(buf.String(), "-platform") || !strings.Contains(buf.String(), "-check") {
		t.Errorf("usage output missing flags:\n%s", buf.String())
	}
}

func TestParseInts(t *testing.T) {
	if got, err := parseInts(""); err != nil || got != nil {
		t.Errorf("parseInts(\"\") = %v, %v", got, err)
	}
	got, err := parseInts(" 1, 2 ,3")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts("1,,2"); err == nil {
		t.Errorf("empty element accepted")
	}
}
