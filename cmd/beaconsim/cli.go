package main

import (
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"beacongnn/internal/cluster"
	"beacongnn/internal/config"
	"beacongnn/internal/dataset"
	"beacongnn/internal/platform"
	"beacongnn/internal/sim"
)

// cliConfig is the fully parsed and validated beaconsim command line.
type cliConfig struct {
	kinds       []platform.Kind
	dataset     dataset.Desc
	nodes       int
	batches     int
	parallel    int
	traceOut    string
	check       bool
	shards      int
	partitioner string
	cfg         config.Config
}

// parseCLI parses and validates the command line. All error reporting
// happens here (the flag package prints parse errors and usage to
// stderr itself; validation failures are printed once) so main can
// exit on any non-nil error without re-printing. flag.ErrHelp is
// returned as-is for a clean -h exit.
func parseCLI(args []string, stderr io.Writer) (*cliConfig, error) {
	fs := flag.NewFlagSet("beaconsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		plat     = fs.String("platform", "BG-2", "platform(s): CC, SmartSage, GList, BG-1, BG-DG, BG-SP, BG-DGSP, BG-2 — comma-separated, or 'all'")
		ds       = fs.String("dataset", "amazon", "dataset: reddit, amazon, movielens, OGBN, PPI")
		nodes    = fs.Int("nodes", 10000, "materialized graph nodes")
		batches  = fs.Int("batches", 6, "mini-batches to simulate")
		batch    = fs.Int("batch", 0, "mini-batch size (0 = paper default 64)")
		readLat  = fs.Duration("read-latency", 0, "flash read latency override (e.g. 20us; 0 = ULL 3µs)")
		chans    = fs.Int("channels", 0, "flash channel count override")
		dies     = fs.Int("dies", 0, "dies per channel override")
		cores    = fs.Int("cores", 0, "firmware core count override")
		seed     = fs.Uint64("seed", 0, "experiment seed override")
		parallel = fs.Int("parallel", 0, "concurrent simulations for platform lists (0 = all CPU cores)")
		traceOut = fs.String("trace", "", "write a Chrome trace_event JSON request trace to this file")
		check    = fs.Bool("check", false, "verify run invariants (conservation, drain, energy ledger); fail with a named diagnostic")
		sched    = fs.String("sched", "", "flash scheduling policy: fifo, sjf, edf, totalfit (default fifo)")
		shards   = fs.Int("shards", 0, "shard the graph across N simulated BG-2 devices behind a scatter-gather coordinator (0 = single-device platform simulation)")
		partit   = fs.String("partitioner", "", "shard placement policy for -shards: hash, locality (default hash)")

		faults    = fs.Bool("faults", false, "enable the NAND reliability model (fault injection, read-retry, recovery)")
		faultRBER = fs.Float64("fault-rber", 0, "base raw bit error rate override (0 = default)")
		faultPE   = fs.Int("fault-pe", 0, "initial P/E cycle count on every block (wear)")
		deadDies  = fs.String("fault-dead-dies", "", "comma-separated global die indices to inject as failed")
		deadChans = fs.String("fault-dead-channels", "", "comma-separated channel indices to inject as failed")

		stormStart = fs.Duration("fault-storm-start", 0, "uncorrectable-storm window start (simulated time)")
		stormEnd   = fs.Duration("fault-storm-end", 0, "uncorrectable-storm window end (simulated time)")
		stormRBER  = fs.Float64("fault-storm-rber", 0, "additive RBER excursion inside the storm window (enables the fault model)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	fail := func(format string, a ...any) (*cliConfig, error) {
		err := fmt.Errorf(format, a...)
		fmt.Fprintln(stderr, "beaconsim:", err)
		return nil, err
	}
	if fs.NArg() > 0 {
		return fail("unexpected arguments %q (flags only)", fs.Args())
	}
	if *nodes <= 0 {
		return fail("-nodes must be positive, got %d", *nodes)
	}
	if *batches <= 0 {
		return fail("-batches must be positive, got %d", *batches)
	}
	if *batch < 0 {
		return fail("-batch must be non-negative, got %d", *batch)
	}
	if *parallel < 0 {
		return fail("-parallel must be non-negative (0 = all CPU cores), got %d", *parallel)
	}
	if *shards < 0 {
		return fail("-shards must be non-negative (0 = single-device), got %d", *shards)
	}
	part := strings.ToLower(strings.TrimSpace(*partit))
	if part != "" && *shards == 0 {
		return fail("-partitioner requires -shards")
	}
	if *shards > 0 {
		if part == "" {
			part = cluster.PartitionHash
		}
		valid := false
		for _, name := range cluster.PartitionerNames() {
			if part == name {
				valid = true
			}
		}
		if !valid {
			return fail("-partitioner must be one of %v, got %q", cluster.PartitionerNames(), part)
		}
		if *traceOut != "" {
			return fail("-trace is not supported with -shards (the coordinator is not traced)")
		}
	}
	if *readLat < 0 {
		return fail("-read-latency must be non-negative, got %v", *readLat)
	}
	for _, f := range []struct {
		name string
		v    int
	}{{"-channels", *chans}, {"-dies", *dies}, {"-cores", *cores}, {"-fault-pe", *faultPE}} {
		if f.v < 0 {
			return fail("%s must be non-negative, got %d", f.name, f.v)
		}
	}
	if *faultRBER < 0 {
		return fail("-fault-rber must be non-negative, got %g", *faultRBER)
	}
	if *stormRBER < 0 {
		return fail("-fault-storm-rber must be non-negative, got %g", *stormRBER)
	}
	if *stormStart < 0 || *stormEnd < 0 {
		return fail("-fault-storm-start/-end must be non-negative")
	}
	if *stormRBER > 0 && *stormEnd <= *stormStart {
		return fail("-fault-storm-end (%v) must exceed -fault-storm-start (%v)", *stormEnd, *stormStart)
	}

	cfg := config.Default()
	if *batch > 0 {
		cfg.GNN.BatchSize = *batch
	}
	if *readLat > 0 {
		cfg.Flash.ReadLatency = sim.Duration(*readLat)
	}
	if *chans > 0 {
		cfg.Flash.Channels = *chans
	}
	if *dies > 0 {
		cfg.Flash.DiesPerChannel = *dies
	}
	if *cores > 0 {
		cfg.Firmware.Cores = *cores
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *sched != "" {
		cfg.Sched.Policy = strings.ToLower(strings.TrimSpace(*sched))
	}
	if *faults || *faultRBER > 0 || *faultPE > 0 || *deadDies != "" || *deadChans != "" || *stormRBER > 0 {
		cfg.Fault.Enabled = true
		if *faultRBER > 0 {
			cfg.Fault.BaseRBER = *faultRBER
		}
		if *faultPE > 0 {
			cfg.Fault.InitialPECycles = *faultPE
		}
		dd, err := parseInts(*deadDies)
		if err != nil {
			return fail("-fault-dead-dies: %v", err)
		}
		cfg.Fault.DeadDies = dd
		dc, err := parseInts(*deadChans)
		if err != nil {
			return fail("-fault-dead-channels: %v", err)
		}
		cfg.Fault.DeadChannels = dc
		if *stormRBER > 0 {
			cfg.Fault.StormStart = sim.Duration(*stormStart)
			cfg.Fault.StormEnd = sim.Duration(*stormEnd)
			cfg.Fault.StormRBER = *stormRBER
		}
	}
	if err := cfg.Validate(); err != nil {
		return fail("%v", err)
	}

	kinds, err := parsePlatforms(*plat)
	if err != nil {
		return fail("%v", err)
	}
	d, err := dataset.ByName(*ds)
	if err != nil {
		return fail("%v", err)
	}
	return &cliConfig{
		kinds:       kinds,
		dataset:     d,
		nodes:       *nodes,
		batches:     *batches,
		parallel:    *parallel,
		traceOut:    *traceOut,
		check:       *check,
		shards:      *shards,
		partitioner: part,
		cfg:         cfg,
	}, nil
}

// parseInts parses a comma-separated integer list ("" → nil).
func parseInts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad index %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// parsePlatforms expands "all" or a comma-separated platform list.
func parsePlatforms(s string) ([]platform.Kind, error) {
	if strings.EqualFold(s, "all") {
		return platform.All(), nil
	}
	var kinds []platform.Kind
	for _, name := range strings.Split(s, ",") {
		k, err := platform.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, k)
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("beaconsim: no platforms given")
	}
	return kinds, nil
}
