// Command beaconsim runs platform × dataset simulations and prints the
// full measurement report of each: throughput, utilization, latency
// breakdowns, hop timeline, and energy.
//
// Usage:
//
//	beaconsim -platform BG-2 -dataset amazon
//	beaconsim -platform CC -dataset reddit -batches 8 -nodes 20000
//	beaconsim -platform BG-DGSP -dataset OGBN -read-latency 20us
//	beaconsim -platform all -parallel 8       # every platform, 8 workers
//	beaconsim -platform CC,BG-1,BG-2          # a comparison subset
//	beaconsim -platform bg2 -trace out.json   # request trace for Perfetto
//
// With a platform list (comma-separated, or "all"), the simulations fan
// out across -parallel workers (default: all CPU cores) and the reports
// print in list order — identical output for any worker count.
//
// With -trace, every request's wait and service time at every contended
// resource (flash dies, samplers, channels, firmware cores, DRAM port,
// PCIe link, host CPU) is recorded and written as Chrome trace_event
// JSON — open it at https://ui.perfetto.dev or chrome://tracing. Traced
// simulations run sequentially so the trace is deterministic; with
// multiple platforms their resources are namespaced "PLATFORM/...".
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"beacongnn/internal/config"
	"beacongnn/internal/dataset"
	"beacongnn/internal/exp"
	"beacongnn/internal/metrics"
	"beacongnn/internal/platform"
	"beacongnn/internal/sim"
	"beacongnn/internal/trace"
)

func main() {
	var (
		plat     = flag.String("platform", "BG-2", "platform(s): CC, SmartSage, GList, BG-1, BG-DG, BG-SP, BG-DGSP, BG-2 — comma-separated, or 'all'")
		ds       = flag.String("dataset", "amazon", "dataset: reddit, amazon, movielens, OGBN, PPI")
		nodes    = flag.Int("nodes", 10000, "materialized graph nodes")
		batches  = flag.Int("batches", 6, "mini-batches to simulate")
		batch    = flag.Int("batch", 0, "mini-batch size (0 = paper default 64)")
		readLat  = flag.Duration("read-latency", 0, "flash read latency override (e.g. 20us; 0 = ULL 3µs)")
		chans    = flag.Int("channels", 0, "flash channel count override")
		dies     = flag.Int("dies", 0, "dies per channel override")
		cores    = flag.Int("cores", 0, "firmware core count override")
		seed     = flag.Uint64("seed", 0, "experiment seed override")
		parallel = flag.Int("parallel", 0, "concurrent simulations for platform lists (0 = all CPU cores)")
		traceOut = flag.String("trace", "", "write a Chrome trace_event JSON request trace to this file")

		faults    = flag.Bool("faults", false, "enable the NAND reliability model (fault injection, read-retry, recovery)")
		faultRBER = flag.Float64("fault-rber", 0, "base raw bit error rate override (0 = default)")
		faultPE   = flag.Int("fault-pe", 0, "initial P/E cycle count on every block (wear)")
		deadDies  = flag.String("fault-dead-dies", "", "comma-separated global die indices to inject as failed")
		deadChans = flag.String("fault-dead-channels", "", "comma-separated channel indices to inject as failed")
	)
	flag.Parse()

	cfg := config.Default()
	if *batch > 0 {
		cfg.GNN.BatchSize = *batch
	}
	if *readLat > 0 {
		cfg.Flash.ReadLatency = sim.Duration(*readLat)
	}
	if *chans > 0 {
		cfg.Flash.Channels = *chans
	}
	if *dies > 0 {
		cfg.Flash.DiesPerChannel = *dies
	}
	if *cores > 0 {
		cfg.Firmware.Cores = *cores
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *faults || *faultRBER > 0 || *faultPE > 0 || *deadDies != "" || *deadChans != "" {
		cfg.Fault.Enabled = true
		if *faultRBER > 0 {
			cfg.Fault.BaseRBER = *faultRBER
		}
		if *faultPE > 0 {
			cfg.Fault.InitialPECycles = *faultPE
		}
		dd, err := parseInts(*deadDies)
		if err != nil {
			fatal(fmt.Errorf("-fault-dead-dies: %w", err))
		}
		cfg.Fault.DeadDies = dd
		dc, err := parseInts(*deadChans)
		if err != nil {
			fatal(fmt.Errorf("-fault-dead-channels: %w", err))
		}
		cfg.Fault.DeadChannels = dc
		if err := cfg.Validate(); err != nil {
			fatal(err)
		}
	}

	kinds, err := parsePlatforms(*plat)
	if err != nil {
		fatal(err)
	}
	d, err := dataset.ByName(*ds)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("materializing %s at %d nodes...\n", d.Name, *nodes)
	start := time.Now()
	inst, err := dataset.Materialize(d, *nodes, cfg.Flash.PageSize, cfg.Seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("built DirectGraph: %d pages (%d primary, %d secondary), inflation %.1f%% [%v]\n",
		inst.Build.Stats.PrimaryPages+inst.Build.Stats.SecondaryPages,
		inst.Build.Stats.PrimaryPages, inst.Build.Stats.SecondaryPages,
		inst.Build.Stats.InflationRatio()*100, time.Since(start).Round(time.Millisecond))

	eng := exp.New(*parallel)
	start = time.Now()
	var results []*platform.Result
	if *traceOut != "" {
		results, err = runTraced(kinds, cfg, inst, *batches, *traceOut)
	} else {
		results, err = exp.Map(kinds, func(k platform.Kind) (*platform.Result, error) {
			return eng.Simulate(k, cfg, inst, *batches, 1024)
		})
	}
	if err != nil {
		fatal(err)
	}
	wall := time.Since(start).Round(time.Millisecond)
	for _, res := range results {
		report(res, cfg, wall)
	}
	if len(kinds) > 1 && *traceOut == "" {
		fmt.Printf("\n%d simulations in %v wall on %d workers\n", len(kinds), wall, eng.Workers())
	}
}

// runTraced runs the platforms sequentially with a shared request
// recorder attached and writes the combined Chrome trace to path.
func runTraced(kinds []platform.Kind, cfg config.Config, inst *dataset.Instance, batches int, path string) ([]*platform.Result, error) {
	rec := trace.NewRecorder()
	results := make([]*platform.Result, 0, len(kinds))
	for _, k := range kinds {
		s, err := platform.NewSystem(k, cfg, inst, 1024)
		if err != nil {
			return nil, err
		}
		var tr sim.Tracer = rec
		if len(kinds) > 1 {
			tr = rec.WithPrefix(k.String() + "/")
		}
		s.SetTracer(tr)
		res, err := s.Run(batches)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := rec.WriteChrome(f); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	fmt.Printf("\nrequest trace: %d spans -> %s (open in https://ui.perfetto.dev)\n", len(rec.Spans()), path)
	fmt.Print(rec.BreakdownTable())
	return results, nil
}

// parseInts parses a comma-separated integer list ("" → nil).
func parseInts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad index %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// parsePlatforms expands "all" or a comma-separated platform list.
func parsePlatforms(s string) ([]platform.Kind, error) {
	if strings.EqualFold(s, "all") {
		return platform.All(), nil
	}
	var kinds []platform.Kind
	for _, name := range strings.Split(s, ",") {
		k, err := platform.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, k)
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("beaconsim: no platforms given")
	}
	return kinds, nil
}

func report(res *platform.Result, cfg config.Config, wall time.Duration) {
	fmt.Printf("\n%s on %s — %d batches × %d targets in %v simulated (%v wall)\n",
		res.Platform, res.Dataset, res.Batches, cfg.GNN.BatchSize, res.Elapsed, wall)
	fmt.Printf("throughput        %.0f targets/s\n", res.Throughput)
	fmt.Printf("flash reads       %d (%.1f per target), %.1f MB over channels\n",
		res.FlashReads, float64(res.FlashReads)/float64(res.Targets), float64(res.BusBytes)/1e6)
	fmt.Printf("utilization       %.1f/%d dies, %.2f/%d channels (means)\n",
		res.MeanDies, cfg.Flash.TotalDies(), res.MeanChannels, cfg.Flash.Channels)
	fmt.Printf("hop overlap       %.2f\n", res.HopOverlap)
	fmt.Printf("command lifetime  %v mean over %d commands\n", res.CmdLifetime, res.Commands)
	for _, p := range []metrics.Phase{metrics.PhaseWaitBefore, metrics.PhaseFlash, metrics.PhaseWaitAfter, metrics.PhaseChannel} {
		fmt.Printf("  %-18s %v\n", p, res.CmdBreakdown[p])
	}
	if len(res.PhaseLatency) > 0 {
		fmt.Printf("per-phase event latency:\n")
		for _, line := range strings.Split(strings.TrimRight(metrics.PhaseQuantileTable(res.PhaseLatency), "\n"), "\n") {
			fmt.Printf("  %s\n", line)
		}
	}
	fmt.Printf("energy            %.1f mJ total, %.1f W avg, %.0f targets/s/W\n",
		res.EnergyJ*1e3, res.AvgPowerW, res.Efficiency)
	for _, s := range res.EnergyByCmp {
		if s.Fraction >= 0.01 {
			fmt.Printf("  %-14s %5.1f%%\n", s.Component, s.Fraction*100)
		}
	}
	if st := res.Faults; st != nil {
		pct := func(n uint64) float64 {
			if st.Reads == 0 {
				return 0
			}
			return 100 * float64(n) / float64(st.Reads)
		}
		fmt.Printf("reliability       %d senses: %.2f%% clean, %.2f%% retry (%d extra senses), %.2f%% soft-decode, %d uncorrectable\n",
			st.Reads, pct(st.CleanReads), pct(st.RetryReads), st.RetrySenses, pct(st.SoftReads), st.Uncorrectable)
		if st.Uncorrectable > 0 || st.DeadDieReads > 0 || st.ChannelReroutes > 0 {
			fmt.Printf("  recovery        %d degraded reads, %d retired blocks, %d remapped pages, %d relocations\n",
				st.DegradedReads, st.RetiredBlocks, st.RemappedPages, st.Relocations)
			fmt.Printf("  outages         %d dead-die senses, %d channel reroutes\n",
				st.DeadDieReads, st.ChannelReroutes)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "beaconsim:", err)
	os.Exit(1)
}
