// Command beaconsim runs platform × dataset simulations and prints the
// full measurement report of each: throughput, utilization, latency
// breakdowns, hop timeline, and energy.
//
// Usage:
//
//	beaconsim -platform BG-2 -dataset amazon
//	beaconsim -platform CC -dataset reddit -batches 8 -nodes 20000
//	beaconsim -platform BG-DGSP -dataset OGBN -read-latency 20us
//	beaconsim -platform all -parallel 8       # every platform, 8 workers
//	beaconsim -platform CC,BG-1,BG-2          # a comparison subset
//	beaconsim -platform bg2 -trace out.json   # request trace for Perfetto
//	beaconsim -platform all -check            # verify run invariants
//	beaconsim -shards 4 -partitioner locality # scatter-gather over 4 sharded devices
//
// With a platform list (comma-separated, or "all"), the simulations fan
// out across -parallel workers (default: all CPU cores) and the reports
// print in list order — identical output for any worker count.
//
// With -trace, every request's wait and service time at every contended
// resource (flash dies, samplers, channels, firmware cores, DRAM port,
// PCIe link, host CPU) is recorded and written as Chrome trace_event
// JSON — open it at https://ui.perfetto.dev or chrome://tracing. Traced
// simulations run sequentially so the trace is deterministic; with
// multiple platforms their resources are namespaced "PLATFORM/...".
//
// With -check, every simulation runs under the invariant checker
// (internal/invariant): conservation and sanity laws — every requested
// page sensed exactly once modulo retry, queues drained, monotone event
// time, energy ledger balance — are verified at run end, and a
// violation fails the run with the broken invariant's name. Checking
// only observes: reported numbers are identical to an unchecked run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"beacongnn/internal/cluster"
	"beacongnn/internal/config"
	"beacongnn/internal/dataset"
	"beacongnn/internal/exp"
	"beacongnn/internal/invariant"
	"beacongnn/internal/metrics"
	"beacongnn/internal/platform"
	"beacongnn/internal/sim"
	"beacongnn/internal/trace"
)

func main() {
	c, err := parseCLI(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		os.Exit(2) // parseCLI already reported the error
	}

	fmt.Printf("materializing %s at %d nodes...\n", c.dataset.Name, c.nodes)
	start := time.Now()
	inst, err := dataset.Materialize(c.dataset, c.nodes, c.cfg.Flash.PageSize, c.cfg.Seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("built DirectGraph: %d pages (%d primary, %d secondary), inflation %.1f%% [%v]\n",
		inst.Build.Stats.PrimaryPages+inst.Build.Stats.SecondaryPages,
		inst.Build.Stats.PrimaryPages, inst.Build.Stats.SecondaryPages,
		inst.Build.Stats.InflationRatio()*100, time.Since(start).Round(time.Millisecond))

	if c.shards > 0 {
		if err := runCluster(c, inst); err != nil {
			fatal(err)
		}
		return
	}

	eng := exp.New(c.parallel)
	if c.check {
		eng.EnableChecks()
	}
	start = time.Now()
	var results []*platform.Result
	if c.traceOut != "" {
		results, err = runTraced(c.kinds, c.cfg, inst, c.batches, c.traceOut, c.check)
	} else {
		results, err = exp.Map(c.kinds, func(k platform.Kind) (*platform.Result, error) {
			return eng.Simulate(k, c.cfg, inst, c.batches, 1024)
		})
	}
	if err != nil {
		fatal(err)
	}
	wall := time.Since(start).Round(time.Millisecond)
	for _, res := range results {
		report(res, c.cfg, wall)
	}
	if c.check {
		fmt.Printf("\ninvariants: all checks passed on %d simulation(s)\n", len(results))
	}
	if len(c.kinds) > 1 && c.traceOut == "" {
		fmt.Printf("\n%d simulations in %v wall on %d workers\n", len(c.kinds), wall, eng.Workers())
	}
}

// runCluster shards the materialized graph across -shards simulated
// BG-2 devices and runs the scatter-gather coordinator once.
func runCluster(c *cliConfig, inst *dataset.Instance) error {
	start := time.Now()
	res, err := cluster.Run(cluster.Config{
		Shards:      c.shards,
		Partitioner: c.partitioner,
		Cfg:         c.cfg,
		Batches:     c.batches,
	}, inst)
	if err != nil {
		return err
	}
	wall := time.Since(start).Round(time.Millisecond)
	fmt.Printf("\ncluster of %d BG-2 devices (%s placement) on %s — %d batches × %d targets in %v simulated (%v wall)\n",
		res.Shards, res.Partitioner, res.Dataset, res.Batches, c.cfg.GNN.BatchSize, sim.Time(res.ElapsedNs), wall)
	fmt.Printf("throughput        %.0f targets/s\n", res.Throughput)
	fmt.Printf("fetches           %d (%d neighbor samples)\n", res.Fetches, res.Samples)
	fmt.Printf("cross-shard       %.1f%% of sampled children (%.1f%% of edges intra-shard)\n",
		100*res.CrossFrac, 100*res.IntraEdgeFrac)
	fmt.Printf("fabric            %.2f MB in %d messages\n", float64(res.FabricBytes)/1e6, res.FabricMsgs)
	fmt.Printf("read balance      %v page reads per shard (imbalance %.2f)\n", res.ShardReads, res.ReadImbalance)
	if c.check {
		if err := res.Check(); err != nil {
			return err
		}
		fmt.Println("\ninvariants: all checks passed on the cluster run")
	}
	return nil
}

// runTraced runs the platforms sequentially with a shared request
// recorder attached and writes the combined Chrome trace to path.
func runTraced(kinds []platform.Kind, cfg config.Config, inst *dataset.Instance, batches int, path string, check bool) ([]*platform.Result, error) {
	rec := trace.NewRecorder()
	results := make([]*platform.Result, 0, len(kinds))
	for _, k := range kinds {
		s, err := platform.NewSystem(k, cfg, inst, 1024)
		if err != nil {
			return nil, err
		}
		if check {
			s.EnableChecks(invariant.New())
		}
		var tr sim.Tracer = rec
		if len(kinds) > 1 {
			tr = rec.WithPrefix(k.String() + "/")
		}
		s.SetTracer(tr)
		res, err := s.Run(batches)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := rec.WriteChrome(f); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	fmt.Printf("\nrequest trace: %d spans -> %s (open in https://ui.perfetto.dev)\n", len(rec.Spans()), path)
	fmt.Print(rec.BreakdownTable())
	return results, nil
}

func report(res *platform.Result, cfg config.Config, wall time.Duration) {
	fmt.Printf("\n%s on %s — %d batches × %d targets in %v simulated (%v wall)\n",
		res.Platform, res.Dataset, res.Batches, cfg.GNN.BatchSize, res.Elapsed, wall)
	fmt.Printf("throughput        %.0f targets/s\n", res.Throughput)
	fmt.Printf("flash reads       %d (%.1f per target), %.1f MB over channels\n",
		res.FlashReads, float64(res.FlashReads)/float64(res.Targets), float64(res.BusBytes)/1e6)
	fmt.Printf("utilization       %.1f/%d dies, %.2f/%d channels (means)\n",
		res.MeanDies, cfg.Flash.TotalDies(), res.MeanChannels, cfg.Flash.Channels)
	fmt.Printf("hop overlap       %.2f\n", res.HopOverlap)
	fmt.Printf("command lifetime  %v mean over %d commands\n", res.CmdLifetime, res.Commands)
	for _, p := range []metrics.Phase{metrics.PhaseWaitBefore, metrics.PhaseFlash, metrics.PhaseWaitAfter, metrics.PhaseChannel} {
		fmt.Printf("  %-18s %v\n", p, res.CmdBreakdown[p])
	}
	if len(res.PhaseLatency) > 0 {
		fmt.Printf("per-phase event latency:\n")
		for _, line := range strings.Split(strings.TrimRight(metrics.PhaseQuantileTable(res.PhaseLatency), "\n"), "\n") {
			fmt.Printf("  %s\n", line)
		}
	}
	fmt.Printf("energy            %.1f mJ total, %.1f W avg, %.0f targets/s/W\n",
		res.EnergyJ*1e3, res.AvgPowerW, res.Efficiency)
	for _, s := range res.EnergyByCmp {
		if s.Fraction >= 0.01 {
			fmt.Printf("  %-14s %5.1f%%\n", s.Component, s.Fraction*100)
		}
	}
	if st := res.Faults; st != nil {
		pct := func(n uint64) float64 {
			if st.Reads == 0 {
				return 0
			}
			return 100 * float64(n) / float64(st.Reads)
		}
		fmt.Printf("reliability       %d senses: %.2f%% clean, %.2f%% retry (%d extra senses), %.2f%% soft-decode, %d uncorrectable\n",
			st.Reads, pct(st.CleanReads), pct(st.RetryReads), st.RetrySenses, pct(st.SoftReads), st.Uncorrectable)
		if st.Uncorrectable > 0 || st.DeadDieReads > 0 || st.ChannelReroutes > 0 {
			fmt.Printf("  recovery        %d degraded reads, %d retired blocks, %d remapped pages, %d relocations\n",
				st.DegradedReads, st.RetiredBlocks, st.RemappedPages, st.Relocations)
			fmt.Printf("  outages         %d dead-die senses, %d channel reroutes\n",
				st.DeadDieReads, st.ChannelReroutes)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "beaconsim:", err)
	os.Exit(1)
}
