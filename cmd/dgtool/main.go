// Command dgtool builds and inspects DirectGraph layouts: it converts a
// synthetic graph (or a named benchmark dataset) into the DirectGraph
// format, verifies the Section VI-E security invariants, and prints
// layout statistics including the Table IV inflation ratio.
//
// Usage:
//
//	dgtool -dataset OGBN
//	dgtool -nodes 50000 -degree 80 -dim 128 -pagesize 8192
//	dgtool -dataset amazon -node 42        # decode one node's sections
//
// The validate subcommand walks a materialized image, decodes every
// section, and chases every embedded secondary address:
//
//	dgtool validate -dataset amazon
//	dgtool validate -nodes 5000 -corrupt 3 -drop 2   # exercise the error paths
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"beacongnn/internal/dataset"
	"beacongnn/internal/directgraph"
	"beacongnn/internal/graph"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "validate" {
		runValidate(os.Args[2:])
		return
	}
	var (
		ds       = flag.String("dataset", "", "named benchmark dataset (reddit, amazon, movielens, OGBN, PPI)")
		nodes    = flag.Int("nodes", 20000, "nodes for a custom synthetic graph")
		degree   = flag.Float64("degree", 50, "average degree for a custom graph")
		dim      = flag.Int("dim", 64, "feature dimension for a custom graph")
		powerLaw = flag.Float64("powerlaw", 2.0, "degree distribution shape (0 = uniform)")
		pageSize = flag.Int("pagesize", 4096, "flash page size in bytes")
		node     = flag.Int("node", -1, "decode and print this node's sections")
		verify   = flag.Bool("verify", true, "run the Section VI-E security verification")
		seed     = flag.Uint64("seed", 0xBEAC0, "generation seed")
	)
	flag.Parse()

	var inst *dataset.Instance
	var err error
	if *ds != "" {
		var d dataset.Desc
		d, err = dataset.ByName(*ds)
		if err == nil {
			inst, err = dataset.Materialize(d, *nodes, *pageSize, *seed)
		}
	} else {
		d := dataset.Desc{
			Name: "custom", FullNodes: *nodes, AvgDegree: *degree,
			MaxDegree: *nodes - 1, FeatureDim: *dim, PowerLaw: *powerLaw,
		}
		inst, err = dataset.Materialize(d, *nodes, *pageSize, *seed)
	}
	if err != nil {
		fatal(err)
	}
	b := inst.Build
	st := b.Stats
	fmt.Printf("graph         %d nodes, %d edges (avg degree %.1f, max %d), dim %d\n",
		inst.Graph.NumNodes(), inst.Graph.NumEdges(), inst.Graph.AvgDegree(),
		inst.Graph.MaxDegree(), inst.Graph.FeatureDim())
	fmt.Printf("layout        %d B pages, %d section bits (max %d sections/page)\n",
		b.Layout.PageSize, b.Layout.SectionBits(), b.Layout.MaxSectionsPerPage())
	fmt.Printf("pages         %d primary + %d secondary = %d total (%.2f MB)\n",
		st.PrimaryPages, st.SecondaryPages, st.PrimaryPages+st.SecondaryPages,
		float64(st.TotalBytes)/1e6)
	fmt.Printf("occupancy     %.1f%% of page bytes used\n", float64(st.UsedBytes)/float64(st.TotalBytes)*100)
	fmt.Printf("raw size      %.2f MB → inflation %.1f%% (Table IV metric)\n",
		float64(st.RawBytes)/1e6, st.InflationRatio()*100)

	spilled := 0
	for i := range b.Plans {
		if b.Plans[i].SecCount > 0 {
			spilled++
		}
	}
	fmt.Printf("spilled nodes %d of %d use secondary sections\n", spilled, st.Nodes)

	if *verify {
		if err := directgraph.Verify(b); err != nil {
			fatal(fmt.Errorf("security verification FAILED: %w", err))
		}
		fmt.Println("verify        all embedded addresses stay inside allocated blocks ✓")
	}
	if *node >= 0 {
		printNode(inst, graph.NodeID(*node))
	}
}

// runValidate materializes an image (same knobs as the main command) and
// runs the full integrity walk. -corrupt and -drop deterministically
// damage the image first — smashing section headers and deleting pages —
// so the corrupt-section and dangling-address detectors can be exercised
// end to end. Exits non-zero when validation finds problems.
func runValidate(args []string) {
	fs := flag.NewFlagSet("dgtool validate", flag.ExitOnError)
	var (
		ds        = fs.String("dataset", "", "named benchmark dataset (reddit, amazon, movielens, OGBN, PPI)")
		nodes     = fs.Int("nodes", 20000, "nodes for a custom synthetic graph")
		degree    = fs.Float64("degree", 50, "average degree for a custom graph")
		dim       = fs.Int("dim", 64, "feature dimension for a custom graph")
		powerLaw  = fs.Float64("powerlaw", 2.0, "degree distribution shape (0 = uniform)")
		pageSize  = fs.Int("pagesize", 4096, "flash page size in bytes")
		seed      = fs.Uint64("seed", 0xBEAC0, "generation seed")
		corrupt   = fs.Int("corrupt", 0, "smash the section headers of the N lowest-numbered pages")
		drop      = fs.Int("drop", 0, "delete the N highest-numbered pages (dangles addrs into them)")
		maxIssues = fs.Int("max-issues", 10, "issues to print in detail")
	)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	var inst *dataset.Instance
	var err error
	if *ds != "" {
		var d dataset.Desc
		d, err = dataset.ByName(*ds)
		if err == nil {
			inst, err = dataset.Materialize(d, *nodes, *pageSize, *seed)
		}
	} else {
		d := dataset.Desc{
			Name: "custom", FullNodes: *nodes, AvgDegree: *degree,
			MaxDegree: *nodes - 1, FeatureDim: *dim, PowerLaw: *powerLaw,
		}
		inst, err = dataset.Materialize(d, *nodes, *pageSize, *seed)
	}
	if err != nil {
		fatal(err)
	}
	b := inst.Build

	if *corrupt > 0 || *drop > 0 {
		keys := make([]uint32, 0, len(b.Pages))
		for pn := range b.Pages {
			keys = append(keys, pn)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for i := 0; i < *corrupt && i < len(keys); i++ {
			pg := b.Pages[keys[i]]
			for j := 0; j < 4 && j < len(pg); j++ {
				pg[j] = 0xFF
			}
		}
		for i := 0; i < *drop && len(keys)-1-i >= 0; i++ {
			delete(b.Pages, keys[len(keys)-1-i])
		}
		fmt.Printf("injected damage: %d smashed headers, %d dropped pages\n", *corrupt, *drop)
	}

	rep := directgraph.Validate(b)
	fmt.Printf("walked        %d pages, %d sections decoded\n", rep.Pages, rep.Sections)
	fmt.Printf("corrupt       %d sections failed to decode\n", rep.CorruptSections)
	fmt.Printf("dangling      %d secondary addresses point at missing or wrong-type sections\n", rep.DanglingAddrs)
	for i, issue := range rep.Issues {
		if i >= *maxIssues {
			fmt.Printf("  ... and %d more issues\n", len(rep.Issues)-i)
			break
		}
		fmt.Printf("  %s\n", issue)
	}
	if !rep.OK() {
		fmt.Println("validate      FAILED")
		os.Exit(1)
	}
	fmt.Println("validate      image decodes cleanly, every secondary address resolves ✓")
}

func printNode(inst *dataset.Instance, v graph.NodeID) {
	b := inst.Build
	if int(v) >= len(b.Plans) {
		fatal(fmt.Errorf("node %d out of range", v))
	}
	plan := b.Plans[v]
	sec, err := b.ReadSection(plan.Primary)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nnode %d\n", v)
	fmt.Printf("  primary    addr %#x (page %d section %d offset %d), %d B\n",
		uint32(plan.Primary), b.Layout.Page(plan.Primary), b.Layout.Section(plan.Primary),
		plan.PrimaryOffset, plan.PrimarySize)
	fmt.Printf("  degree     %d (%d inline, %d in %d secondary sections)\n",
		sec.NeighborCount, sec.InlineCount, sec.NeighborCount-sec.InlineCount, len(sec.Secondaries))
	fmt.Printf("  feature    %d × FP16\n", len(sec.FeatureBits))
	for i, sa := range sec.Secondaries {
		ss, err := b.ReadSection(sa)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  secondary[%d] addr %#x: entries %d, base index %d\n",
			i, uint32(sa), ss.Count, ss.BaseIndex)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dgtool:", err)
	os.Exit(1)
}
