// Quickstart: build a graph, convert it to DirectGraph inside the
// simulated SSD, run the BeaconGNN-2.0 pipeline, and compute one
// functional GNN embedding — the whole public API in ~40 lines.
package main

import (
	"fmt"
	"log"

	"beacongnn"
)

func main() {
	cfg := beacongnn.DefaultConfig()

	// A custom synthetic graph: 10k nodes, power-law degrees, 64-dim
	// FP16 features. BuildCustomDataset also serializes it into the
	// DirectGraph format (Section IV) on the simulated flash.
	inst, err := beacongnn.BuildCustomDataset("demo", 10_000, 40, 64, 2.0, cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := inst.Build.Stats
	fmt.Printf("DirectGraph: %d pages, %.1f%% inflation over raw\n",
		st.PrimaryPages+st.SecondaryPages, st.InflationRatio()*100)

	// Simulate six mini-batches of GraphSage-style training data
	// preparation + computation on BeaconGNN-2.0 (die-level samplers,
	// out-of-order streaming, hardware command routing).
	res, err := beacongnn.Run(beacongnn.BG2, cfg, inst, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BG-2: %.0f targets/s, %.1f/%d dies busy, hop overlap %.2f\n",
		res.Throughput, res.MeanDies, cfg.Flash.TotalDies(), res.HopOverlap)

	// Compare with the CPU-centric baseline.
	base, err := beacongnn.Run(beacongnn.CC, cfg, inst, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CC:   %.0f targets/s → BG-2 speedup %.1f×, energy efficiency %.1f×\n",
		base.Throughput, res.Throughput/base.Throughput, res.Efficiency/base.Efficiency)

	// The functional layer: sample a 3-hop subgraph (TRNG + modulo, as
	// the on-die samplers do) and run the reference forward pass.
	emb, err := beacongnn.Embed(inst, 7, cfg, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedding of node 7: dim %d, first values %.4f %.4f %.4f\n",
		len(emb), emb[0], emb[1], emb[2])
}
