// Training scenario: the complete story in one program. The functional
// layer trains a GNN (teacher–student, SGD on gradient-checked
// backprop) to show the computation is real, and the timing layer
// simulates what that training costs on the CPU-centric baseline versus
// BeaconGNN-2.0 — with the backward pass included in the accelerator
// workload (GNN.Training).
package main

import (
	"fmt"
	"log"

	"beacongnn"
)

func main() {
	cfg := beacongnn.DefaultConfig()
	inst, err := beacongnn.BuildCustomDataset("citations", 8_000, 25, 64, 2.1, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// --- functional training: the loss actually goes down ---
	// A narrower head keeps the toy task well-conditioned for plain SGD.
	trainCfg := cfg
	trainCfg.GNN.HiddenDim = 16
	losses, err := beacongnn.Train(inst, 800, 0.5, trainCfg, 7)
	if err != nil {
		log.Fatal(err)
	}
	window := func(from, to int) float32 {
		var s float32
		for _, v := range losses[from:to] {
			s += v
		}
		return s / float32(to-from)
	}
	first, last := window(0, 50), window(len(losses)-50, len(losses))
	fmt.Printf("teacher–student training: mean loss %.3e (first 50 steps) → %.3e (last 50, %.1f× lower)\n", first, last, first/last)
	if last < first {
		fmt.Println("the student is learning ✓")
	}

	// --- timing: what training throughput costs, CC vs BG-2 ---
	cfg.GNN.Training = true // backward pass on the accelerator
	fmt.Println("\nsimulated training throughput (backward pass included):")
	for _, p := range []beacongnn.Platform{beacongnn.CC, beacongnn.BG1, beacongnn.BG2} {
		res, err := beacongnn.Run(p, cfg, inst, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s %9.0f targets/s   (%.1f W, %.0f targets/s/W)\n",
			res.Platform, res.Throughput, res.AvgPowerW, res.Efficiency)
	}
	fmt.Println("\ndata preparation dominates GNN training (the paper's premise), so")
	fmt.Println("adding the backward pass barely moves BG-2 — flash, not FLOPs, is the wall.")
}
