// Recommendation-system scenario: the amazon workload (the paper's
// representative large-scale GNN — e-commerce co-purchase graph with
// 200-dim features) evaluated across all eight platforms, reproducing
// the Figure 14 comparison for one dataset and showing where each
// design's bottleneck sits.
package main

import (
	"fmt"
	"log"

	"beacongnn"
)

func main() {
	cfg := beacongnn.DefaultConfig()
	inst, err := beacongnn.BuildDataset("amazon", 12_000, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("amazon co-purchase workload: %d nodes, avg degree %.0f, %d-dim features\n\n",
		inst.Graph.NumNodes(), inst.Graph.AvgDegree(), inst.Graph.FeatureDim())
	fmt.Printf("%-10s %14s %10s %12s %12s %14s\n",
		"platform", "targets/s", "vs CC", "mean dies", "channels", "targets/s/W")

	var base float64
	for _, p := range beacongnn.Platforms() {
		res, err := beacongnn.Run(p, cfg, inst, 6)
		if err != nil {
			log.Fatal(err)
		}
		if p == beacongnn.CC {
			base = res.Throughput
		}
		fmt.Printf("%-10s %14.0f %9.2f× %12.1f %12.2f %14.0f\n",
			res.Platform, res.Throughput, res.Throughput/base,
			res.MeanDies, res.MeanChannels, res.Efficiency)
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  SmartSage offloads sampling, GList offloads features — each fixes half the problem;")
	fmt.Println("  BG-SP's die-level samplers stop wasting channel bandwidth on full pages;")
	fmt.Println("  BG-DGSP's DirectGraph removes the inter-hop barriers;")
	fmt.Println("  BG-2's hardware command routing takes firmware off the backend path entirely.")
}
