// Social-network scenario: the reddit workload (high-degree graph with
// 602-dim features) in two modes. Training mode shows the per-command
// latency anatomy of Figure 17; query mode exercises Section VIII's
// real-time GNN inference — tiny batches where end-to-end latency, not
// throughput, is the metric, and BeaconGNN's single host round trip
// pays off.
package main

import (
	"fmt"
	"log"

	"beacongnn"
)

func main() {
	cfg := beacongnn.DefaultConfig()
	inst, err := beacongnn.BuildDataset("reddit", 8_000, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reddit social graph: %d nodes, avg degree %.0f, %d-dim features\n",
		inst.Graph.NumNodes(), inst.Graph.AvgDegree(), inst.Graph.FeatureDim())

	// --- training mode: command latency anatomy (Fig. 17) ---
	fmt.Println("\ntraining mode — where a flash command's lifetime goes:")
	fmt.Printf("%-10s %14s %12s %14s %12s\n", "platform", "wait_before", "flash", "wait_after", "lifetime")
	for _, p := range []beacongnn.Platform{beacongnn.BG1, beacongnn.BGSP, beacongnn.BG2} {
		res, err := beacongnn.Run(p, cfg, inst, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14v %12v %14v %12v\n", res.Platform,
			res.CmdBreakdown["wait_before_flash"], res.CmdBreakdown["flash"],
			res.CmdBreakdown["wait_after_flash"], res.CmdLifetime)
	}

	// --- query mode: small-batch inference latency (Section VIII) ---
	fmt.Println("\nquery mode — end-to-end latency for small inference batches:")
	fmt.Printf("%-10s", "batch")
	plats := []beacongnn.Platform{beacongnn.CC, beacongnn.BG1, beacongnn.BG2}
	for _, p := range plats {
		fmt.Printf("%14v", p)
	}
	fmt.Println()
	for _, bs := range []int{1, 4, 16} {
		qcfg := cfg
		qcfg.GNN.BatchSize = bs
		fmt.Printf("%-10d", bs)
		for _, p := range plats {
			res, err := beacongnn.Run(p, qcfg, inst, 1)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%14v", res.Elapsed)
		}
		fmt.Println()
	}
	fmt.Println("\nBeaconGNN reduces host-SSD communication to one round per query and")
	fmt.Println("avoids channel congestion, so single-query latency drops sharply (Section VIII).")
}
