// Sensitivity scenario: a custom architecture sweep through the public
// API — what the paper's Figure 18d asks ("do more flash channels keep
// helping?") answered for a user-provided workload rather than the
// paper's datasets. Useful as a template for capacity planning with
// this library.
package main

import (
	"fmt"
	"log"

	"beacongnn"
)

func main() {
	base := beacongnn.DefaultConfig()

	// A knowledge-graph-ish workload: moderate degree, 96-dim features.
	inst, err := beacongnn.BuildCustomDataset("kg", 15_000, 60, 96, 2.1, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sweeping flash channel count for a custom workload (BG-1 vs BG-2):")
	fmt.Printf("%-10s %16s %16s %14s\n", "channels", "BG-1 targets/s", "BG-2 targets/s", "BG-2 dies")

	for _, ch := range []int{4, 8, 16, 32} {
		cfg := base
		cfg.Flash.Channels = ch
		bg1, err := beacongnn.Run(beacongnn.BG1, cfg, inst, 4)
		if err != nil {
			log.Fatal(err)
		}
		bg2, err := beacongnn.Run(beacongnn.BG2, cfg, inst, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %16.0f %16.0f %14.1f\n", ch, bg1.Throughput, bg2.Throughput, bg2.MeanDies)
	}

	fmt.Println("\nBG-1 tracks channel bandwidth (page-granular transfers); BG-2's gains")
	fmt.Println("flatten once the SSD DRAM or die read rate becomes the binding resource —")
	fmt.Println("the crossover the paper reports in Figures 18b/18d.")
}
