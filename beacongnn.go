// Package beacongnn reproduces "BeaconGNN: Large-Scale GNN Acceleration
// with Out-of-Order Streaming In-Storage Computing" (HPCA 2024) as a
// self-contained, stdlib-only Go library.
//
// The package is the public facade over the internal substrates:
//
//   - a discrete-event SSD simulator (flash dies/channels, FTL, firmware
//     cores, DRAM, NVMe/PCIe) with ULL and conventional timing;
//   - the DirectGraph storage format (Section IV) with its Algorithm-1
//     builder, decoder, and security verification;
//   - the multi-level near-data engines (die samplers, channel command
//     router, bus-attached spatial accelerator — Section V);
//   - the eight evaluated GNN platforms (CC, SmartSage, GList, BG-1,
//     BG-DG, BG-SP, BG-DGSP, BG-2) and every experiment of Section VII.
//
// Quickstart:
//
//	cfg := beacongnn.DefaultConfig()
//	inst, _ := beacongnn.BuildDataset("amazon", 10000, cfg)
//	res, _ := beacongnn.Run(beacongnn.BG2, cfg, inst, 6)
//	fmt.Printf("%.0f targets/s\n", res.Throughput)
package beacongnn

import (
	"fmt"
	"io"

	"beacongnn/internal/config"
	"beacongnn/internal/core"
	"beacongnn/internal/dataset"
	"beacongnn/internal/gnn"
	"beacongnn/internal/graph"
	"beacongnn/internal/platform"
	"beacongnn/internal/xrand"
)

// Config is the full platform configuration (re-exported; see
// internal/config for field documentation).
type Config = config.Config

// Result carries every measurement of one simulation run.
type Result = platform.Result

// Platform identifies one of the eight evaluated systems.
type Platform = platform.Kind

// Dataset is a materialized benchmark instance: the synthetic graph plus
// its DirectGraph build.
type Dataset = dataset.Instance

// The evaluated platforms, in Figure 14 order.
const (
	CC        = platform.CC
	SmartSage = platform.SmartSage
	GList     = platform.GList
	BG1       = platform.BG1
	BGDG      = platform.BGDG
	BGSP      = platform.BGSP
	BGDGSP    = platform.BGDGSP
	BG2       = platform.BG2
)

// Platforms returns every platform in Figure 14 order.
func Platforms() []Platform { return platform.All() }

// PlatformByName parses a platform name such as "BG-2".
func PlatformByName(name string) (Platform, error) { return platform.ByName(name) }

// DefaultConfig returns the paper's base configuration (Table II).
func DefaultConfig() Config { return config.Default() }

// TraditionalConfig returns the base configuration with a conventional
// 20 µs-read SSD backend (Section VII-E).
func TraditionalConfig() Config { return config.Traditional() }

// DatasetNames returns the five benchmark datasets in paper order.
func DatasetNames() []string {
	var out []string
	for _, d := range dataset.All() {
		out = append(out, d.Name)
	}
	return out
}

// BuildDataset materializes a named benchmark dataset (reddit, amazon,
// movielens, OGBN, PPI) at the given node scale and converts it to
// DirectGraph. nodes == 0 uses the default simulation scale.
func BuildDataset(name string, nodes int, cfg Config) (*Dataset, error) {
	d, err := dataset.ByName(name)
	if err != nil {
		return nil, err
	}
	return dataset.Materialize(d, nodes, cfg.Flash.PageSize, cfg.Seed)
}

// BuildCustomDataset materializes a synthetic dataset with explicit
// statistics, for workloads beyond the paper's five.
func BuildCustomDataset(name string, nodes int, avgDegree float64, featureDim int, powerLaw float64, cfg Config) (*Dataset, error) {
	d := dataset.Desc{
		Name: name, FullNodes: nodes, AvgDegree: avgDegree,
		MaxDegree: nodes - 1, FeatureDim: featureDim, PowerLaw: powerLaw,
	}
	return dataset.Materialize(d, nodes, cfg.Flash.PageSize, cfg.Seed)
}

// Run simulates numBatches mini-batches of the GNN task on the platform
// and returns the measurements.
func Run(p Platform, cfg Config, inst *Dataset, numBatches int) (*Result, error) {
	return platform.Simulate(p, cfg, inst, numBatches, 1024)
}

// Embed runs the functional GNN pipeline for one target node: a k-hop
// subgraph is sampled with the same TRNG+modulo procedure the die-level
// samplers implement, and the reference GraphSage-style forward pass
// (vector_sum aggregation + perceptron updates, Section II-A) produces
// the target's final embedding. Deterministic for a given seed.
func Embed(inst *Dataset, target int, cfg Config, seed uint64) ([]float32, error) {
	if inst == nil || target < 0 || target >= inst.Graph.NumNodes() {
		return nil, fmt.Errorf("beacongnn: target %d out of range", target)
	}
	model := gnn.Model{
		Hops:      cfg.GNN.Hops,
		Fanout:    cfg.GNN.Fanout,
		InputDim:  inst.Desc.FeatureDim,
		HiddenDim: cfg.GNN.HiddenDim,
	}
	sg, err := graph.SampleSubgraph(inst.Graph, graph.NodeID(target),
		graph.SampleSpec{Hops: model.Hops, Fanout: model.Fanout}, xrand.New(seed))
	if err != nil {
		return nil, err
	}
	return gnn.Forward(inst.Graph, sg, gnn.NewWeights(model, seed))
}

// Train runs a teacher–student functional training loop: a frozen
// "teacher" model (seeded with seed+1) labels each sampled target, and
// the student's weights follow SGD on the squared error. It returns the
// per-step losses, which decrease as the student approximates the
// teacher — an end-to-end correctness demonstration of the GNN compute
// the simulated accelerator executes (gradients are finite-difference
// verified in the test suite).
func Train(inst *Dataset, steps int, lr float32, cfg Config, seed uint64) ([]float32, error) {
	if inst == nil || steps <= 0 || lr <= 0 {
		return nil, fmt.Errorf("beacongnn: Train needs an instance, positive steps and lr")
	}
	model := gnn.Model{
		Hops:      cfg.GNN.Hops,
		Fanout:    cfg.GNN.Fanout,
		InputDim:  inst.Desc.FeatureDim,
		HiddenDim: cfg.GNN.HiddenDim,
	}
	teacher := gnn.NewWeights(model, seed+1)
	student := gnn.NewWeights(model, seed)
	rng := xrand.New(seed + 2)
	spec := graph.SampleSpec{Hops: model.Hops, Fanout: model.Fanout}
	losses := make([]float32, 0, steps)
	for i := 0; i < steps; i++ {
		target := graph.NodeID(rng.Intn(inst.Graph.NumNodes()))
		sg, err := graph.SampleSubgraph(inst.Graph, target, spec, rng)
		if err != nil {
			return nil, err
		}
		label, err := gnn.Forward(inst.Graph, sg, teacher)
		if err != nil {
			return nil, err
		}
		loss, grads, err := gnn.LossAndGradients(inst.Graph, sg, student, label)
		if err != nil {
			return nil, err
		}
		if err := gnn.SGDStep(student, grads, lr); err != nil {
			return nil, err
		}
		losses = append(losses, loss)
	}
	return losses, nil
}

// Experiment identifiers accepted by RunExperiment, in paper order.
func ExperimentIDs() []string {
	var out []string
	for _, e := range core.Experiments() {
		out = append(out, e.ID)
	}
	return out
}

// RunExperiment regenerates one of the paper's tables/figures ("fig14",
// "table4", ..., or "all"), writing a formatted report to w. Quick mode
// shrinks scales and sweeps for fast runs.
func RunExperiment(id string, quick bool, w io.Writer) error {
	o := &core.Options{Quick: quick}
	if id == "all" {
		return core.RunAll(o, w)
	}
	e, err := core.ByID(id)
	if err != nil {
		return err
	}
	return e.Run(o, w)
}
