GO ?= go
FUZZTIME ?= 10s
COVERPROFILE ?= cover.out
BENCHCOUNT ?= 5
BENCHOUT ?= bench.out
BENCHREPORT ?= bench_report.txt
PROFILEDIR ?= profiles

.PHONY: build test race vet bench check cover invariants fuzz-smoke \
	lint bench-run bench-gate bench-baseline smoke smoke-chaos \
	smoke-capacity smoke-cluster profile

build:
	$(GO) build ./...

# -shuffle=on randomizes test and subtest order so hidden inter-test
# dependencies fail loudly; the seed is printed on failure for replay
# with -shuffle=<seed>.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Run every fuzz target briefly — a smoke net over the decoder and wire
# formats (Go runs one fuzz target per invocation, hence the loop).
fuzz-smoke:
	@for t in FuzzFindSection FuzzRelocate FuzzSectionsInPage; do \
		echo "== $$t"; \
		$(GO) test ./internal/directgraph/ -run=NONE -fuzz=$$t -fuzztime=$(FUZZTIME) || exit 1; \
	done
	@for t in FuzzUnmarshalResult FuzzUnmarshalCommand; do \
		echo "== $$t"; \
		$(GO) test ./internal/sampler/ -run=NONE -fuzz=$$t -fuzztime=$(FUZZTIME) || exit 1; \
	done

cover:
	$(GO) test -coverprofile=$(COVERPROFILE) ./...
	$(GO) tool cover -func=$(COVERPROFILE) | tail -1

# Run the full quick evaluation under the invariant checker
# (internal/invariant): every simulation must satisfy the conservation
# and sanity laws or the run fails naming the broken invariant.
invariants:
	$(GO) run ./cmd/beaconbench -exp all -quick -check -parallel 0 > /dev/null
	@echo "invariants: all checks passed"

# Static analysis. go vet always runs; staticcheck and govulncheck run
# only when present on PATH (CI installs them; local machines without
# them still get a useful, non-failing lint pass).
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "== staticcheck"; staticcheck ./... || exit 1; \
	else \
		echo "lint: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo "== govulncheck"; govulncheck ./... || exit 1; \
	else \
		echo "lint: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Record the gated benchmarks (medians over BENCHCOUNT runs) into
# $(BENCHOUT). The gated set lives in BENCH_BASELINE.json; RunAllParallel
# uses -benchtime=1x because one iteration already runs every experiment.
bench-run:
	$(GO) test -run='^$$' -bench='BenchmarkEventKernel|BenchmarkKernelDeep|BenchmarkServer$$|BenchmarkServerSched|BenchmarkServerTraced' \
		-benchmem -benchtime=0.5s -count=$(BENCHCOUNT) ./internal/sim/ | tee $(BENCHOUT)
	$(GO) test -run='^$$' -bench='BenchmarkRequestPath' \
		-benchmem -benchtime=0.5s -count=$(BENCHCOUNT) ./internal/serve/ | tee -a $(BENCHOUT)
	$(GO) test -run='^$$' -bench='BenchmarkCapacityStep' \
		-benchmem -benchtime=0.5s -count=$(BENCHCOUNT) ./internal/loadgen/ | tee -a $(BENCHOUT)
	$(GO) test -run='^$$' -bench='BenchmarkClusterStep|BenchmarkCoordinator' \
		-benchmem -benchtime=0.5s -count=$(BENCHCOUNT) ./internal/cluster/ | tee -a $(BENCHOUT)
	$(GO) test -run='^$$' -bench='BenchmarkRunAllParallel' \
		-benchmem -benchtime=1x -count=$(BENCHCOUNT) . | tee -a $(BENCHOUT)

# Benchmark-regression gate: fail if median ns/op or allocs/op regresses
# past the tolerances documented in BENCH_BASELINE.json. Also writes
# $(BENCHREPORT): the gate table, the explicit tracing-overhead delta
# (BenchmarkServerTraced vs BenchmarkServer), and a benchstat-style
# old-vs-new comparison against the checked-in baseline — CI uploads it
# as a workflow artifact.
bench-gate: bench-run
	$(GO) run ./cmd/benchgate -baseline BENCH_BASELINE.json -report $(BENCHREPORT) $(BENCHOUT)

# Re-record the baseline after an intentional perf change; commit the
# resulting BENCH_BASELINE.json in the same PR.
bench-baseline: bench-run
	$(GO) run ./cmd/benchgate -baseline BENCH_BASELINE.json -update $(BENCHOUT)

# CPU and allocation profiles of the two load-bearing benchmarks: the
# event-loop hot path (BenchmarkServer) and the full evaluation
# (BenchmarkRunAllParallel). Inspect with:
#   go tool pprof -top $(PROFILEDIR)/server.cpu.pprof
#   go tool pprof -top -sample_index=alloc_objects $(PROFILEDIR)/runall.alloc.pprof
profile:
	mkdir -p $(PROFILEDIR)
	$(GO) test -run='^$$' -bench='BenchmarkServer$$' -benchmem -benchtime=2s \
		-cpuprofile=$(PROFILEDIR)/server.cpu.pprof \
		-memprofile=$(PROFILEDIR)/server.alloc.pprof \
		-o $(PROFILEDIR)/sim.test ./internal/sim/
	$(GO) test -run='^$$' -bench='BenchmarkRunAllParallel' -benchmem -benchtime=1x \
		-cpuprofile=$(PROFILEDIR)/runall.cpu.pprof \
		-memprofile=$(PROFILEDIR)/runall.alloc.pprof \
		-o $(PROFILEDIR)/beacongnn.test .
	@echo "profiles written to $(PROFILEDIR)/ (test binaries kept alongside for symbolization)"

# End-to-end beaconserved smoke: build, start, exercise the HTTP API,
# SIGTERM, assert a clean drain. See ci/smoke_beaconserved.sh.
smoke:
	./ci/smoke_beaconserved.sh

# Chaos/resilience smoke: armed fault injection against a live daemon
# must serve degraded 200s (never 5xx) while the breaker is open, and
# the -exp chaos sweep must be byte-identical across -parallel widths.
smoke-chaos:
	./ci/smoke_chaos.sh

# Capacity smoke: the virtual -exp capacity sweep must be byte-identical
# across -parallel widths and carry knees in its JSON; a live daemon
# with -capacity-qps must shed the open-loop driver's excess load with
# 429s (never hard failures) and drain cleanly.
smoke-capacity:
	./ci/smoke_capacity.sh

# Cluster smoke: the -exp cluster scatter-gather sweep must be
# byte-identical across -parallel widths; a live `beaconserved -cluster 3`
# must spread requests over >=2 replicas, ride out a killed replica via
# breaker-guarded consistent-hash failover, restore placement on
# recovery, and drain cleanly.
smoke-cluster:
	./ci/smoke_cluster.sh

# Tier-1 verification: everything CI gates on.
check: build vet test race invariants
