GO ?= go

.PHONY: build test race vet bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Tier-1 verification: everything CI gates on.
check: build vet test race
