GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet bench check fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Run every fuzz target briefly — a smoke net over the decoder and wire
# formats (Go runs one fuzz target per invocation, hence the loop).
fuzz-smoke:
	@for t in FuzzFindSection FuzzRelocate FuzzSectionsInPage; do \
		echo "== $$t"; \
		$(GO) test ./internal/directgraph/ -run=NONE -fuzz=$$t -fuzztime=$(FUZZTIME) || exit 1; \
	done
	@for t in FuzzUnmarshalResult FuzzUnmarshalCommand; do \
		echo "== $$t"; \
		$(GO) test ./internal/sampler/ -run=NONE -fuzz=$$t -fuzztime=$(FUZZTIME) || exit 1; \
	done

# Tier-1 verification: everything CI gates on.
check: build vet test race
