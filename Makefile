GO ?= go
FUZZTIME ?= 10s
COVERPROFILE ?= cover.out

.PHONY: build test race vet bench check cover invariants fuzz-smoke

build:
	$(GO) build ./...

# -shuffle=on randomizes test and subtest order so hidden inter-test
# dependencies fail loudly; the seed is printed on failure for replay
# with -shuffle=<seed>.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Run every fuzz target briefly — a smoke net over the decoder and wire
# formats (Go runs one fuzz target per invocation, hence the loop).
fuzz-smoke:
	@for t in FuzzFindSection FuzzRelocate FuzzSectionsInPage; do \
		echo "== $$t"; \
		$(GO) test ./internal/directgraph/ -run=NONE -fuzz=$$t -fuzztime=$(FUZZTIME) || exit 1; \
	done
	@for t in FuzzUnmarshalResult FuzzUnmarshalCommand; do \
		echo "== $$t"; \
		$(GO) test ./internal/sampler/ -run=NONE -fuzz=$$t -fuzztime=$(FUZZTIME) || exit 1; \
	done

cover:
	$(GO) test -coverprofile=$(COVERPROFILE) ./...
	$(GO) tool cover -func=$(COVERPROFILE) | tail -1

# Run the full quick evaluation under the invariant checker
# (internal/invariant): every simulation must satisfy the conservation
# and sanity laws or the run fails naming the broken invariant.
invariants:
	$(GO) run ./cmd/beaconbench -exp all -quick -check -parallel 0 > /dev/null
	@echo "invariants: all checks passed"

# Tier-1 verification: everything CI gates on.
check: build vet test race invariants
