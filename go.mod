module beacongnn

go 1.22
