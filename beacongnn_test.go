package beacongnn

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	cfg := DefaultConfig()
	inst, err := BuildDataset("amazon", 3000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.GNN.BatchSize = 32
	res, err := Run(BG2, cfg, inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 || res.Platform != "BG-2" {
		t.Fatalf("result = %+v", res)
	}
}

func TestCustomDataset(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GNN.BatchSize = 16
	inst, err := BuildCustomDataset("mygraph", 2000, 12, 64, 2.0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(BG1, cfg, inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset != "mygraph" {
		t.Fatalf("dataset = %s", res.Dataset)
	}
}

func TestPlatformsAndNames(t *testing.T) {
	if len(Platforms()) != 8 {
		t.Fatalf("platforms = %d", len(Platforms()))
	}
	p, err := PlatformByName("BG-DGSP")
	if err != nil || p != BGDGSP {
		t.Fatalf("ByName: %v %v", p, err)
	}
}

func TestDatasetNames(t *testing.T) {
	names := DatasetNames()
	if len(names) != 5 || names[0] != "reddit" {
		t.Fatalf("names = %v", names)
	}
	if _, err := BuildDataset("nope", 100, DefaultConfig()); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 10 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	var sb strings.Builder
	if err := RunExperiment("table2", true, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "16 channels") {
		t.Fatalf("table2 output: %q", sb.String())
	}
	if err := RunExperiment("bogus", true, &sb); err == nil {
		t.Fatal("bogus experiment accepted")
	}
}

func TestTraditionalConfig(t *testing.T) {
	if TraditionalConfig().Flash.ReadLatency <= DefaultConfig().Flash.ReadLatency {
		t.Fatal("traditional config not slower")
	}
}

func TestTrainLossDecreases(t *testing.T) {
	cfg := DefaultConfig()
	inst, err := BuildCustomDataset("t", 2000, 10, 16, 2.0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	losses, err := Train(inst, 300, 0.05, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 300 {
		t.Fatalf("steps = %d", len(losses))
	}
	mean := func(xs []float32) float64 {
		var s float64
		for _, v := range xs {
			s += float64(v)
		}
		return s / float64(len(xs))
	}
	first, last := mean(losses[:50]), mean(losses[250:])
	if last >= first {
		t.Fatalf("training did not learn: %.5f → %.5f", first, last)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, 10, 0.1, DefaultConfig(), 1); err == nil {
		t.Fatal("nil instance accepted")
	}
}
