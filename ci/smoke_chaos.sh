#!/usr/bin/env bash
# Chaos/resilience smoke test: start beaconserved with the fault
# injector armed hard (every simulation after the first fails
# transiently, breaker threshold 1), prime one result, then assert the
# daemon answers from degraded mode — stale 200 + X-Degraded — instead
# of 5xxing while the circuit is open. Also runs the deterministic
# availability sweep (-exp chaos) and the live driver against the
# faulted daemon.
#
# Run from the repo root: ./ci/smoke_chaos.sh
# Needs: go, curl. Uses its own loopback port.
set -euo pipefail

cd "$(dirname "$0")/.."
. ci/lib.sh
smoke_init smoke-chaos

echo "== deterministic availability sweep (-exp chaos)"
go run ./cmd/beaconbench -exp chaos -quick -check >/tmp/smoke_chaos_a.txt
go run ./cmd/beaconbench -exp chaos -quick -check -parallel 8 >/tmp/smoke_chaos_b.txt
cmp -s /tmp/smoke_chaos_a.txt /tmp/smoke_chaos_b.txt \
    || fail "-exp chaos report differs between -parallel defaults and 8"
grep -q "availability under fault" /tmp/smoke_chaos_a.txt || fail "chaos report malformed"

build_daemon
start_daemon 127.0.0.1:18474 -workers 2 -timeout 60s \
    -chaos-seed 7 -chaos-engine-fail-rate 1 -chaos-engine-fail-after 1 \
    -max-attempts 1 -breaker-threshold 1 -breaker-cooldown 5m
grep -q "CHAOS INJECTION ARMED" "$LOG" || fail "daemon did not announce armed chaos"

echo "== prime (grace period lets the first simulation through)"
BODY='{"platform":"BG-2","dataset":"amazon","nodes":2000,"batches":2}'
CODE="$(curl -sS -o /tmp/smoke_chaos1.json -w '%{http_code}' \
    -H 'Content-Type: application/json' -d "$BODY" "http://$ADDR/v1/simulate")"
[[ "$CODE" == "200" ]] || fail "prime returned $CODE: $(cat /tmp/smoke_chaos1.json)"

echo "== degraded mode: faulted family serves stale 200, not a 5xx"
BODY2='{"platform":"BG-2","dataset":"amazon","nodes":2000,"batches":2,"seed":2}'
HDRS="$(curl -sS -D - -o /tmp/smoke_chaos2.json \
    -H 'Content-Type: application/json' -d "$BODY2" "http://$ADDR/v1/simulate")"
echo "$HDRS" | head -1 | grep -q ' 200' || fail "faulted request not a 200: $(echo "$HDRS" | head -1)"
echo "$HDRS" | grep -qi '^X-Degraded: *true' || fail "degraded response missing X-Degraded"
echo "$HDRS" | grep -qi '^Warning: *110' || fail "degraded response missing Warning 110"
grep -q '"degraded": *true' /tmp/smoke_chaos2.json || fail "degraded body not marked"

echo "== open circuit keeps serving degraded 200s"
CODE="$(curl -sS -o /dev/null -w '%{http_code}' \
    -H 'Content-Type: application/json' -d "$BODY2" "http://$ADDR/v1/simulate")"
[[ "$CODE" == "200" ]] || fail "open-circuit request returned $CODE, want degraded 200"

echo "== live driver sees full availability through degraded mode"
go run ./cmd/beaconbench -drive "http://$ADDR" -drive-requests 12 -drive-concurrency 3 \
    >/tmp/smoke_chaos_drive.txt || fail "driver saw hard failures: $(cat /tmp/smoke_chaos_drive.txt)"
grep -q "availability 100.00%" /tmp/smoke_chaos_drive.txt \
    || fail "driver availability below 100%: $(cat /tmp/smoke_chaos_drive.txt)"

echo "== metrics recorded the outage"
METRICS="$(curl -fsS "http://$ADDR/metrics")"
echo "$METRICS" | grep -q 'beaconserved_degraded_total' || fail "missing degraded counter"
echo "$METRICS" | grep -Eq 'beaconserved_breaker_state\{platform="BG-2",dataset="amazon"\} 1' \
    || fail "breaker state gauge not open (1): $(echo "$METRICS" | grep breaker_state)"

term_daemon

echo "smoke-chaos: PASS"
