#!/usr/bin/env bash
# Cluster smoke test: the sharded multi-device serving tier end to end.
# First the deterministic half — the `-exp cluster` scatter-gather sweep
# must be byte-identical across -parallel widths (text and JSON). Then
# the live half — boot `beaconserved -cluster 3`, spread requests across
# replicas and assert at least two distinct replicas served (via the
# per-replica router metrics), kill one replica and verify degraded-
# then-recovered serving through the consistent-hash router, and SIGTERM
# for a clean exit-0 drain.
#
# Run from the repo root: ./ci/smoke_cluster.sh
# Needs: go, curl. Uses its own loopback port.
set -euo pipefail

cd "$(dirname "$0")/.."
. ci/lib.sh
smoke_init smoke-cluster

echo "== deterministic cluster sweep (-exp cluster) is -parallel invariant"
go run ./cmd/beaconbench -exp cluster -quick -check -parallel 1 >/tmp/smoke_cluster_a.txt
go run ./cmd/beaconbench -exp cluster -quick -check -parallel 8 >/tmp/smoke_cluster_b.txt
cmp -s /tmp/smoke_cluster_a.txt /tmp/smoke_cluster_b.txt \
    || fail "-exp cluster report differs between -parallel 1 and 8"
grep -q "cluster scaling" /tmp/smoke_cluster_a.txt || fail "cluster report malformed"
grep -q "failure drill" /tmp/smoke_cluster_a.txt || fail "cluster report missing failure drill"

echo "== JSON cluster report is -parallel invariant and carries the drill"
go run ./cmd/beaconbench -exp cluster -quick -json -parallel 1 >/tmp/smoke_cluster_a.json
go run ./cmd/beaconbench -exp cluster -quick -json -parallel 8 >/tmp/smoke_cluster_b.json
cmp -s /tmp/smoke_cluster_a.json /tmp/smoke_cluster_b.json \
    || fail "-exp cluster JSON differs between -parallel 1 and 8"
grep -q '"scaling"' /tmp/smoke_cluster_a.json || fail "JSON missing scaling grid"
grep -q '"failure"' /tmp/smoke_cluster_a.json || fail "JSON missing failure drill"

build_daemon
start_daemon 127.0.0.1:18476 -cluster 3 -workers 3 -timeout 60s \
    -breaker-threshold 1 -breaker-cooldown 1s
grep -q "cluster mode: 3 replicas" "$LOG" || fail "daemon did not announce cluster mode"

echo "== spread requests across the ring"
body() { printf '{"platform":"BG-2","dataset":"amazon","nodes":2000,"batches":1,"seed":%d}' "$1"; }
for seed in 1 2 3 4 5 6 7 8; do
    CODE="$(curl -sS -o /tmp/smoke_cluster_sim.json -w '%{http_code}' \
        -H 'Content-Type: application/json' -d "$(body "$seed")" "http://$ADDR/v1/simulate")"
    [[ "$CODE" == "200" ]] || fail "simulate seed=$seed returned $CODE: $(cat /tmp/smoke_cluster_sim.json)"
done

echo "== at least two distinct replicas served (per-replica metrics)"
METRICS="$(curl -fsS "http://$ADDR/metrics")"
SERVING="$(echo "$METRICS" | grep '^beaconserved_replica_requests_total' | awk '$2 > 0' | wc -l)"
[[ "$SERVING" -ge 2 ]] \
    || fail "requests hit only $SERVING replica(s): $(echo "$METRICS" | grep replica_requests || true)"

echo "== placement is stable; find the primary for one key"
PRIMARY="$(curl -sS -o /dev/null -D - -H 'Content-Type: application/json' \
    -d "$(body 1)" "http://$ADDR/v1/simulate" | tr -d '\r' | awk -F': ' 'tolower($1)=="x-replica"{print $2}')"
[[ "$PRIMARY" =~ ^[0-9]+$ ]] || fail "no X-Replica header on routed request"

echo "== kill replica $PRIMARY"
CODE="$(curl -sS -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/v1/replicas/$PRIMARY/kill")"
[[ "$CODE" == "200" ]] || fail "kill returned $CODE"

echo "== degraded serving: the key fails over, marked as a fallback"
HDRS="$(curl -sS -o /tmp/smoke_cluster_deg.json -D - -H 'Content-Type: application/json' \
    -d "$(body 1)" "http://$ADDR/v1/simulate" | tr -d '\r')"
echo "$HDRS" | head -1 | grep -q ' 200' || fail "failover request not a 200: $(echo "$HDRS" | head -1)"
FALLBACK="$(echo "$HDRS" | awk -F': ' 'tolower($1)=="x-replica"{print $2}')"
[[ "$FALLBACK" != "$PRIMARY" ]] || fail "request still routed to killed replica $PRIMARY"
echo "$HDRS" | grep -qi '^X-Replica-Fallback: *1' || fail "failover serve not marked X-Replica-Fallback"
HEALTH="$(curl -sS "http://$ADDR/healthz")"
echo "$HEALTH" | grep -q '"status": *"degraded"' || fail "healthz not degraded with a dead replica: $HEALTH"

echo "== recover replica $PRIMARY; serving and placement restore"
CODE="$(curl -sS -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/v1/replicas/$PRIMARY/recover")"
[[ "$CODE" == "200" ]] || fail "recover returned $CODE"
RESTORED="$(curl -sS -o /dev/null -D - -H 'Content-Type: application/json' \
    -d "$(body 1)" "http://$ADDR/v1/simulate" | tr -d '\r' | awk -F': ' 'tolower($1)=="x-replica"{print $2}')"
[[ "$RESTORED" == "$PRIMARY" ]] \
    || fail "recovered replica not restored as primary: got $RESTORED, want $PRIMARY"
HEALTH="$(curl -sS "http://$ADDR/healthz")"
echo "$HEALTH" | grep -q '"status": *"ok"' || fail "healthz not ok after recover: $HEALTH"

term_daemon

echo "smoke-cluster: PASS"
