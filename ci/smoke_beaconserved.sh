#!/usr/bin/env bash
# End-to-end smoke test for beaconserved: build the daemon, start it,
# drive the HTTP API (healthz, simulate twice to prove a cache hit,
# metrics), then SIGTERM it and assert a clean exit 0 drain.
#
# Run from the repo root: ./ci/smoke_beaconserved.sh
# Needs: go, curl. Picks a free loopback port to avoid collisions.
set -euo pipefail

cd "$(dirname "$0")/.."
. ci/lib.sh
smoke_init smoke

build_daemon
start_daemon 127.0.0.1:18473 -workers 2 -timeout 60s

echo "== healthz"
HEALTH="$(curl -fsS "http://$ADDR/healthz")"
echo "$HEALTH" | grep -q '"status": *"ok"' || fail "healthz not ok: $HEALTH"

echo "== simulate (cold)"
BODY='{"platform":"BG-2","dataset":"amazon","nodes":2000,"batches":2}'
CODE="$(curl -sS -o /tmp/smoke_sim1.json -w '%{http_code}' \
    -H 'Content-Type: application/json' -d "$BODY" "http://$ADDR/v1/simulate")"
[[ "$CODE" == "200" ]] || fail "simulate returned $CODE: $(cat /tmp/smoke_sim1.json)"
grep -q '"platform": *"BG-2"' /tmp/smoke_sim1.json || fail "simulate response malformed"
grep -q '"Throughput"' /tmp/smoke_sim1.json || fail "simulate response missing result payload"

echo "== simulate (cache hit)"
HDRS="$(curl -sS -D - -o /tmp/smoke_sim2.json \
    -H 'Content-Type: application/json' -d "$BODY" "http://$ADDR/v1/simulate")"
echo "$HDRS" | grep -qi '^X-Cache: *hit' || fail "repeat request was not a cache hit"
# Determinism: identical config must yield an identical result payload.
cmp -s <(grep -o '"result":.*' /tmp/smoke_sim1.json) \
       <(grep -o '"result":.*' /tmp/smoke_sim2.json) \
    || fail "cached result differs from cold result"

echo "== bad request is a 400, not a 5xx"
CODE="$(curl -sS -o /dev/null -w '%{http_code}' \
    -H 'Content-Type: application/json' -d '{"platform":"nope"}' "http://$ADDR/v1/simulate")"
[[ "$CODE" == "400" ]] || fail "bad platform returned $CODE, want 400"

echo "== metrics"
METRICS="$(curl -fsS "http://$ADDR/metrics")"
echo "$METRICS" | grep -q '^beaconserved_sim_runs_total 1$' || fail "expected exactly 1 sim run in metrics"
echo "$METRICS" | grep -q '^beaconserved_sim_memo_hits_total 1$' || fail "expected exactly 1 memo hit in metrics"
echo "$METRICS" | grep -q 'beaconserved_responses_total{code="200"}' || fail "missing 200 response counter"

term_daemon
grep -q "drained cleanly" "$LOG" || fail "log missing clean-drain line"

echo "smoke: PASS"
