# Shared helpers for the ci/smoke_*.sh scripts: daemon build/boot/wait/
# teardown boilerplate plus a hard global deadline so a wedged daemon can
# never hang CI. Source after `set -euo pipefail` and after cd'ing to the
# repo root:
#
#     cd "$(dirname "$0")/.."
#     . ci/lib.sh
#     smoke_init smoke-foo
#
# Overridable knobs:
#     SMOKE_DEADLINE  hard wall-clock budget for the whole script (default 600s)

SMOKE_DEADLINE="${SMOKE_DEADLINE:-600}"

# smoke_init <name> — set up temp files, traps, and the global watchdog.
# <name> prefixes every failure message (e.g. "smoke-chaos").
smoke_init() {
    SMOKE_NAME="$1"
    LOG="$(mktemp "/tmp/beaconserved.${SMOKE_NAME}.XXXXXX.log")"
    BIN="$(mktemp -d)/beaconserved"
    PID=""
    ADDR=""
    trap smoke_cleanup EXIT
    # Hard global timeout: the watchdog TERMs this script, the TERM trap
    # reports and exits, and the EXIT trap reaps the daemon. Without it a
    # daemon that never comes up (or never drains) would hang the CI job
    # until the runner's own timeout.
    trap 'fail "global ${SMOKE_DEADLINE}s deadline exceeded"' TERM
    # stdio detached so the watchdog (and its sleep child, which outlives
    # the kill in cleanup) can never hold a caller's pipe open past exit.
    ( sleep "$SMOKE_DEADLINE" && kill -TERM "$$" 2>/dev/null ) >/dev/null 2>&1 </dev/null &
    WATCHDOG=$!
}

smoke_cleanup() {
    if [[ -n "${PID:-}" ]] && kill -0 "$PID" 2>/dev/null; then
        kill -9 "$PID" 2>/dev/null || true
    fi
    if [[ -n "${WATCHDOG:-}" ]]; then
        kill "$WATCHDOG" 2>/dev/null || true
    fi
    rm -f "${BIN:-}"
}

fail() {
    echo "${SMOKE_NAME:-smoke}: FAIL: $*" >&2
    if [[ -n "${LOG:-}" && -s "${LOG:-}" ]]; then
        echo "---- daemon log ----" >&2
        cat "$LOG" >&2 || true
    fi
    exit 1
}

build_daemon() {
    echo "== build"
    go build -o "$BIN" ./cmd/beaconserved
}

# start_daemon <addr> [extra daemon flags...] — launch beaconserved on
# <addr> and block until /healthz answers (or fail).
start_daemon() {
    ADDR="$1"
    shift
    echo "== start on $ADDR"
    "$BIN" -addr "$ADDR" "$@" >"$LOG" 2>&1 &
    PID=$!
    wait_healthz
}

# wait_healthz — poll /healthz until the listener is up (~10 s budget).
wait_healthz() {
    for _ in $(seq 1 100); do
        if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
            return 0
        fi
        kill -0 "$PID" 2>/dev/null || fail "daemon exited during startup"
        sleep 0.1
    done
    fail "healthz never came up"
}

# term_daemon — SIGTERM the daemon and assert a clean exit-0 drain.
term_daemon() {
    echo "== SIGTERM drain"
    kill -TERM "$PID"
    local waited=0
    while kill -0 "$PID" 2>/dev/null; do
        sleep 0.1
        waited=$((waited + 1))
        [[ "$waited" -lt 150 ]] || fail "daemon did not exit within 15s of SIGTERM"
    done
    set +e
    wait "$PID"
    local code=$?
    set -e
    PID=""
    [[ "$code" == "0" ]] || fail "daemon exited $code, want 0"
}
