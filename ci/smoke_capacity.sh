#!/usr/bin/env bash
# Capacity smoke test: the open-loop SLO capacity pipeline end to end.
# First the deterministic half — the virtual `-exp capacity` sweep must
# be byte-identical across -parallel widths and its JSON report must
# carry capacity_curves with a knee per curve. Then the live half —
# start beaconserved with a deliberately tiny -capacity-qps knee, run
# the coordinated-omission-safe open-loop driver against it, and assert
# the knee limiter actually sheds (429s show up as shed, not failures)
# while the daemon still drains cleanly on SIGTERM.
#
# Run from the repo root: ./ci/smoke_capacity.sh
# Needs: go, curl. Uses its own loopback port.
set -euo pipefail

cd "$(dirname "$0")/.."
. ci/lib.sh
smoke_init smoke-capacity

echo "== deterministic capacity sweep (-exp capacity)"
go run ./cmd/beaconbench -exp capacity -quick -check -parallel 1 >/tmp/smoke_cap_a.txt
go run ./cmd/beaconbench -exp capacity -quick -check -parallel 8 >/tmp/smoke_cap_b.txt
cmp -s /tmp/smoke_cap_a.txt /tmp/smoke_cap_b.txt \
    || fail "-exp capacity report differs between -parallel 1 and 8"
grep -q "capacity curves" /tmp/smoke_cap_a.txt || fail "capacity report malformed"

echo "== JSON report carries capacity_curves and a knee"
go run ./cmd/beaconbench -exp capacity -quick -json >/tmp/smoke_cap.json
grep -q '"capacity_curves"' /tmp/smoke_cap.json || fail "JSON missing capacity_curves"
grep -q '"knee_qps"' /tmp/smoke_cap.json || fail "JSON missing knee_qps"

build_daemon
start_daemon 127.0.0.1:18475 -workers 2 -timeout 60s -capacity-qps 2

echo "== live open-loop sweep far above the knee sheds instead of failing"
go run ./cmd/beaconbench -drive "http://$ADDR" -drive-capacity \
    -drive-qps 40 -drive-requests 30 -drive-concurrency 8 \
    >/tmp/smoke_cap_drive.txt || fail "capacity driver saw hard failures: $(cat /tmp/smoke_cap_drive.txt)"
grep -q "knee:" /tmp/smoke_cap_drive.txt || fail "driver printed no knee line"

echo "== daemon metrics show knee sheds and the configured knee"
METRICS="$(curl -fsS "http://$ADDR/metrics")"
echo "$METRICS" | grep -q 'beaconserved_capacity_qps 2' \
    || fail "capacity_qps gauge missing: $(echo "$METRICS" | grep capacity || true)"
SHED="$(echo "$METRICS" | grep '^beaconserved_capacity_shed_total' | awk '{print $2}')"
[[ -n "$SHED" && "$SHED" -gt 0 ]] \
    || fail "capacity_shed_total not incremented above the knee: ${SHED:-absent}"

term_daemon

echo "smoke-capacity: PASS"
