package cluster

import (
	"testing"

	"beacongnn/internal/dataset"
	"beacongnn/internal/graph"
)

func testGraph(t testing.TB, nodes int) *graph.Graph {
	t.Helper()
	d, err := dataset.ByName("amazon")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := dataset.Materialize(d, nodes, 4096, 0xBEAC0)
	if err != nil {
		t.Fatal(err)
	}
	return inst.Graph
}

func TestEveryNodeOwnedByExactlyOneShard(t *testing.T) {
	g := testGraph(t, 1500)
	for _, name := range PartitionerNames() {
		for _, n := range []int{1, 2, 3, 8} {
			p, err := NewPartitioner(name, n, g)
			if err != nil {
				t.Fatal(err)
			}
			counts := make([]int, n)
			for v := 0; v < g.NumNodes(); v++ {
				s := p.Owner(graph.NodeID(v))
				if s < 0 || s >= n {
					t.Fatalf("%s/%d: owner(%d) = %d outside [0,%d)", name, n, v, s, n)
				}
				counts[s]++
			}
			total := 0
			for _, c := range counts {
				total += c
			}
			if total != g.NumNodes() {
				t.Fatalf("%s/%d: %d ownerships for %d nodes", name, n, total, g.NumNodes())
			}
		}
	}
}

func TestOwnershipStableUnderRehash(t *testing.T) {
	g := testGraph(t, 1500)
	for _, name := range PartitionerNames() {
		a, err := NewPartitioner(name, 4, g)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewPartitioner(name, 4, g)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumNodes(); v++ {
			if a.Owner(graph.NodeID(v)) != b.Owner(graph.NodeID(v)) {
				t.Fatalf("%s: owner(%d) unstable across re-construction", name, v)
			}
		}
	}
}

// communityGraph generates a seeded graph with real community structure
// (70% of edges inside 64-node id blocks) — the workload shape a
// topology-aware placement policy exists for.
func communityGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.Generate(graph.GenSpec{
		Nodes: 2000, AvgDegree: 20, MaxDegree: 400, FeatureDim: 16,
		PowerLaw: 2.0, Locality: 0.7, Seed: 0xBEAC0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// The locality policy must keep a meaningfully larger fraction of 1-hop
// edges intra-shard than hash placement (which pins it near 1/N), and
// clear an absolute floor on the seeded community graph.
func TestLocalityKeepsNeighborhoodsCoResident(t *testing.T) {
	g := communityGraph(t)
	const n = 4
	const minIntraFrac = 0.45 // hash sits near 1/n = 0.25
	hash, err := NewPartitioner(PartitionHash, n, g)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := NewPartitioner(PartitionLocality, n, g)
	if err != nil {
		t.Fatal(err)
	}
	hf, lf := IntraEdgeFraction(g, hash), IntraEdgeFraction(g, loc)
	if lf <= hf {
		t.Fatalf("locality intra-edge fraction %.3f not above hash %.3f", lf, hf)
	}
	if lf < minIntraFrac {
		t.Fatalf("locality intra-edge fraction %.3f below configured floor %.2f", lf, minIntraFrac)
	}
}

// The balance cap must hold: no shard absorbs more than its fair share
// plus the configured slack.
func TestLocalityRespectsBalanceCap(t *testing.T) {
	g := testGraph(t, 1500)
	const n = 4
	p := NewLocalityPartitioner(g, n)
	load := make([]int, n)
	for v := 0; v < g.NumNodes(); v++ {
		load[p.Owner(graph.NodeID(v))]++
	}
	max := (g.NumNodes()*(100+localitySlackPct))/(100*n) + 1
	for s, l := range load {
		if l > max {
			t.Fatalf("shard %d holds %d nodes, cap is %d", s, l, max)
		}
		if l == 0 {
			t.Fatalf("shard %d owns zero nodes", s)
		}
	}
}

func TestNewPartitionerRejectsUnknown(t *testing.T) {
	g := testGraph(t, 1500)
	if _, err := NewPartitioner("round-robin", 2, g); err == nil {
		t.Fatal("unknown partitioner accepted")
	}
	if _, err := NewPartitioner(PartitionHash, 0, g); err == nil {
		t.Fatal("zero shards accepted")
	}
}
