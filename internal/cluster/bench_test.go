package cluster

import "testing"

// BenchmarkClusterStep prices one small sharded run end to end — the
// unit the -exp cluster sweep multiplies out.
func BenchmarkClusterStep(b *testing.B) {
	inst := testInstance(b)
	c := testConfig(2)
	c.Batches = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(c, inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoordinator stresses the scatter-gather path: more shards,
// locality placement, multiple batches.
func BenchmarkCoordinator(b *testing.B) {
	inst := testInstance(b)
	c := testConfig(4)
	c.Partitioner = PartitionLocality
	c.Batches = 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(c, inst); err != nil {
			b.Fatal(err)
		}
	}
}
