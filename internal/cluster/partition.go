// Package cluster scales the single-device BeaconGNN model out: the
// DirectGraph is partitioned across N simulated BG-2 devices, a
// coordinator scatter-gathers multi-hop GraphSage sampling across them
// over a modelled PCIe/NVMe fabric, and a simulated device failure
// triggers shard re-replication onto survivors with degraded-mode
// serving during the move. One run is one single-threaded sim.Kernel,
// so results are deterministic at any host parallelism.
package cluster

import (
	"fmt"
	"sort"

	"beacongnn/internal/graph"
)

// Partitioner assigns every node to exactly one owning shard. Owner
// must be a pure function of the node id (and the partitioner's own
// construction inputs), so ownership is stable under re-evaluation with
// the same shard count.
type Partitioner interface {
	Name() string
	Shards() int
	Owner(v graph.NodeID) int
}

// Partitioner names accepted by NewPartitioner.
const (
	PartitionHash     = "hash"
	PartitionLocality = "locality"
)

// PartitionerNames lists the pluggable partitioning policies.
func PartitionerNames() []string { return []string{PartitionHash, PartitionLocality} }

// splitmix64 is the SplitMix64 output function: a bijective avalanche
// mix used for hash placement and sampling draws. Pure, so every
// decision derived from it is independent of event ordering.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashPartitioner places node v on shard splitmix64(v) mod N: uniform
// in expectation, oblivious to topology, and trivially stable — the
// same (node, N) always lands on the same shard.
type HashPartitioner struct {
	shards int
}

// NewHashPartitioner returns a hash partitioner over n shards.
func NewHashPartitioner(n int) *HashPartitioner { return &HashPartitioner{shards: n} }

// Name implements Partitioner.
func (p *HashPartitioner) Name() string { return PartitionHash }

// Shards implements Partitioner.
func (p *HashPartitioner) Shards() int { return p.shards }

// Owner implements Partitioner.
func (p *HashPartitioner) Owner(v graph.NodeID) int {
	return int(splitmix64(uint64(uint32(v))) % uint64(p.shards))
}

// LocalityPartitioner keeps high-degree neighborhoods co-resident: it
// walks nodes in descending degree order and pulls each hub's
// still-unassigned neighbors onto the hub's shard, bounded by a
// per-shard balance cap, with everything left over falling back to the
// least-loaded shard. Built once from the topology; Owner is then a
// table lookup, deterministic in (graph, N).
type LocalityPartitioner struct {
	shards int
	owner  []int32
}

// localitySlackPct is how far past perfect balance a shard may grow
// (percent) while absorbing a hub's neighborhood. Small enough that
// read load stays near-uniform, large enough that hot 1-hop
// neighborhoods stay intra-shard.
const localitySlackPct = 15

// NewLocalityPartitioner builds the assignment table for g over n
// shards.
func NewLocalityPartitioner(g *graph.Graph, n int) *LocalityPartitioner {
	nodes := g.NumNodes()
	owner := make([]int32, nodes)
	for i := range owner {
		owner[i] = -1
	}
	load := make([]int, n)
	cap := (nodes*(100+localitySlackPct))/(100*n) + 1

	order := make([]graph.NodeID, nodes)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})

	leastLoaded := func() int {
		best := 0
		for s := 1; s < n; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		return best
	}
	for _, v := range order {
		if owner[v] < 0 {
			s := leastLoaded()
			owner[v] = int32(s)
			load[s]++
		}
		s := int(owner[v])
		if load[s] >= cap {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if owner[u] >= 0 {
				continue
			}
			owner[u] = int32(s)
			load[s]++
			if load[s] >= cap {
				break
			}
		}
	}
	return &LocalityPartitioner{shards: n, owner: owner}
}

// Name implements Partitioner.
func (p *LocalityPartitioner) Name() string { return PartitionLocality }

// Shards implements Partitioner.
func (p *LocalityPartitioner) Shards() int { return p.shards }

// Owner implements Partitioner.
func (p *LocalityPartitioner) Owner(v graph.NodeID) int { return int(p.owner[v]) }

// NewPartitioner constructs the named policy over n shards. The graph
// is only consulted by topology-aware policies.
func NewPartitioner(name string, n int, g *graph.Graph) (Partitioner, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: shard count %d must be positive", n)
	}
	switch name {
	case "", PartitionHash:
		return NewHashPartitioner(n), nil
	case PartitionLocality:
		return NewLocalityPartitioner(g, n), nil
	}
	return nil, fmt.Errorf("cluster: unknown partitioner %q (use one of %v)", name, PartitionerNames())
}

// IntraEdgeFraction returns the fraction of g's edges whose endpoints
// share a shard under p — the partition-quality metric the locality
// policy optimizes and the hash policy pins near 1/N.
func IntraEdgeFraction(g *graph.Graph, p Partitioner) float64 {
	var intra, total int64
	for v := 0; v < g.NumNodes(); v++ {
		o := p.Owner(graph.NodeID(v))
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			total++
			if p.Owner(u) == o {
				intra++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(intra) / float64(total)
}
