package cluster

import (
	"fmt"

	"beacongnn/internal/config"
	"beacongnn/internal/dataset"
	"beacongnn/internal/sim"
)

// Config describes one cluster simulation: N BG-2 devices serving a
// partitioned DirectGraph behind a scatter-gather coordinator.
type Config struct {
	// Shards is the device count (1 = a single BG-2 behind the same
	// coordinator protocol, with zero cross-shard traffic by
	// construction).
	Shards int
	// Partitioner names the placement policy: "hash" (default) or
	// "locality".
	Partitioner string
	// Cfg is the per-device configuration (flash geometry, sampler
	// costs, GNN spec) plus the PCIe link the fabric defaults to.
	Cfg config.Config
	// Batches is how many mini-batches the coordinator drives.
	Batches int
	// Seed drives target selection and sampling draws; every decision
	// is a pure function of (Seed, batch, round, position), so the
	// sampled workload is identical across shard counts and host
	// parallelism.
	Seed uint64

	// FabricBandwidth/FabricLatency size the inter-device fabric ports
	// (0 = the device PCIe link from Cfg).
	FabricBandwidth float64
	FabricLatency   sim.Time

	// Fail enables the failure drill: FailShard is killed at the start
	// of batch FailAfterBatch, ownership of its nodes hands over to the
	// backup shard, and a chunked re-replication stream rebuilds the
	// replica on a survivor while serving continues degraded.
	Fail           bool
	FailShard      int
	FailAfterBatch int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Cfg.Flash.Channels == 0 {
		out.Cfg = config.Default()
	}
	if out.Partitioner == "" {
		out.Partitioner = PartitionHash
	}
	if out.Batches == 0 {
		out.Batches = 6
	}
	if out.Seed == 0 {
		out.Seed = out.Cfg.Seed
	}
	if out.FabricBandwidth == 0 {
		out.FabricBandwidth = out.Cfg.PCIe.Bandwidth
	}
	if out.FabricLatency == 0 {
		out.FabricLatency = out.Cfg.PCIe.Latency
	}
	return out
}

func (c Config) validate() error {
	switch {
	case c.Shards <= 0:
		return fmt.Errorf("cluster: shard count %d must be positive", c.Shards)
	case c.Batches <= 0:
		return fmt.Errorf("cluster: batches %d must be positive", c.Batches)
	case c.FabricBandwidth <= 0:
		return fmt.Errorf("cluster: fabric bandwidth must be positive")
	case c.FabricLatency < 0:
		return fmt.Errorf("cluster: fabric latency must be non-negative")
	case c.Fail && (c.FailShard < 0 || c.FailShard >= c.Shards):
		return fmt.Errorf("cluster: fail shard %d outside [0, %d)", c.FailShard, c.Shards)
	case c.Fail && c.Shards < 2:
		return fmt.Errorf("cluster: a failure drill needs at least 2 shards")
	case c.Fail && (c.FailAfterBatch < 0 || c.FailAfterBatch >= c.Batches):
		return fmt.Errorf("cluster: fail batch %d outside [0, %d)", c.FailAfterBatch, c.Batches)
	}
	return c.Cfg.Validate()
}

// Result is one cluster run's measurement set. All counters are exact
// event counts from the single simulation kernel.
type Result struct {
	Shards      int    `json:"shards"`
	Partitioner string `json:"partitioner"`
	Dataset     string `json:"dataset"`
	Nodes       int    `json:"nodes"`
	Batches     int    `json:"batches"`
	Targets     int    `json:"targets"`

	ElapsedNs  int64   `json:"elapsed_ns"`
	Throughput float64 `json:"throughput"` // targets per second

	// Conservation ledger: Fetches counts frontier entries executed on
	// devices, Samples counts neighbor draws. Every sampled neighbor is
	// fetched exactly once (at the next round) and every target exactly
	// once, so Fetches == Samples + Targets×Batches always.
	Fetches uint64 `json:"fetches"`
	Samples uint64 `json:"samples"`

	// CrossChildren counts sampled neighbors owned by a different shard
	// than their parent; CrossFrac is their fraction of all samples.
	CrossChildren uint64  `json:"cross_children"`
	CrossFrac     float64 `json:"cross_frac"`

	FabricBytes   uint64   `json:"fabric_bytes"`
	FabricMsgs    uint64   `json:"fabric_msgs"`
	ShardReads    []uint64 `json:"shard_reads"`
	ReadImbalance float64  `json:"read_imbalance"`  // max/mean page reads across serving shards
	IntraEdgeFrac float64  `json:"intra_edge_frac"` // partition quality on the full graph

	Failed          bool    `json:"failed,omitempty"`
	FailShard       int     `json:"fail_shard,omitempty"`
	BackupShard     int     `json:"backup_shard,omitempty"`
	DegradedFetches uint64  `json:"degraded_fetches,omitempty"`
	Availability    float64 `json:"availability"` // fraction of fetches served non-degraded
	RebalanceNs     int64   `json:"rebalance_ns,omitempty"`
	MovedBytes      int64   `json:"moved_bytes,omitempty"`

	// OwnershipViolations counts device-side serves of nodes the live
	// ownership table does not assign to that device. Always 0; the
	// counter exists so -check can prove it.
	OwnershipViolations uint64 `json:"ownership_violations"`
}

// Check enforces the run's conservation invariants: every sampled
// neighbor fetched exactly once, no shard serving nodes it doesn't own,
// and a single-shard run generating no cross-shard traffic.
func (r *Result) Check() error {
	switch {
	case r.OwnershipViolations != 0:
		return fmt.Errorf("cluster: %d fetches served by a non-owning shard", r.OwnershipViolations)
	case r.Fetches != r.Samples+uint64(r.Targets)*uint64(r.Batches):
		return fmt.Errorf("cluster: fetch conservation broken: %d fetches != %d samples + %d targets",
			r.Fetches, r.Samples, uint64(r.Targets)*uint64(r.Batches))
	case r.Shards == 1 && r.CrossChildren != 0:
		return fmt.Errorf("cluster: single shard produced %d cross-shard children", r.CrossChildren)
	case r.CrossFrac < 0 || r.CrossFrac > 1:
		return fmt.Errorf("cluster: cross-shard fraction %g outside [0,1]", r.CrossFrac)
	case r.Availability < 0 || r.Availability > 1:
		return fmt.Errorf("cluster: availability %g outside [0,1]", r.Availability)
	case !r.Failed && r.Availability != 1:
		return fmt.Errorf("cluster: availability %g below 1 without a failure drill", r.Availability)
	case r.ElapsedNs <= 0:
		return fmt.Errorf("cluster: non-positive elapsed time %d", r.ElapsedNs)
	}
	return nil
}

// Run simulates the cluster serving inst. The instance only needs its
// topology (Graph) — each device builds a layout-only DirectGraph over
// its shard, so materialized page bytes are never copied per shard.
func Run(c Config, inst *dataset.Instance) (*Result, error) {
	c = c.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	if inst == nil || inst.Graph == nil {
		return nil, fmt.Errorf("cluster: instance with a materialized graph required")
	}
	pt, err := NewPartitioner(c.Partitioner, c.Shards, inst.Graph)
	if err != nil {
		return nil, err
	}
	r, err := newRun(c, inst, pt)
	if err != nil {
		return nil, err
	}
	return r.run()
}
