package cluster

import (
	"fmt"

	"beacongnn/internal/dataset"
	"beacongnn/internal/directgraph"
	"beacongnn/internal/flash"
	"beacongnn/internal/graph"
	"beacongnn/internal/platform"
	"beacongnn/internal/sim"
)

// Wire-format sizes for coordinator↔device messages. Scatter entries
// carry (node id, hop spec, completion tag); gather entries carry the
// sampled neighbor ids or the feature payload.
const (
	scatterEntryBytes = 16
	childEntryBytes   = 4
	// replChunkBytes is the re-replication stream's chunk size: small
	// enough that foreground gathers interleave between chunks on the
	// backup's egress port, large enough to amortize the wire latency.
	replChunkBytes = 256 << 10
)

// run is the live state of one cluster simulation: a single-threaded
// kernel driving N flash backends and a fabric, advanced entirely by
// continuations so one k.Run() covers every batch. The sampled workload
// (targets and neighbor draws) is a pure function of the seed, so the
// event machinery only decides *when* things happen, never *what*.
type run struct {
	cfg  Config
	inst *dataset.Instance
	pt   Partitioner
	part *directgraph.Partitioned

	k       *sim.Kernel
	fab     *sim.Fabric
	devices []*flash.Backend
	coord   int // fabric endpoint index of the coordinator

	owners []int32 // live ownership table (changes on failure handover)
	dead   []bool

	sampleExtra  sim.Time
	featureExtra sim.Time

	res *Result

	// failure drill
	backup   int
	degraded bool // inside the failure→re-replication window
	failAt   sim.Time

	finishAt sim.Time
}

func newRun(c Config, inst *dataset.Instance, pt Partitioner) (*run, error) {
	g := inst.Graph
	degrees := make([]int, g.NumNodes())
	for v := range degrees {
		degrees[v] = g.Degree(graph.NodeID(v))
	}
	layout := directgraph.Layout{PageSize: c.Cfg.Flash.PageSize, FeatureDim: g.FeatureDim()}
	part, err := directgraph.BuildPartitioned(layout, degrees, c.Shards, pt.Owner)
	if err != nil {
		return nil, err
	}
	k := sim.New()
	r := &run{
		cfg:          c,
		inst:         inst,
		pt:           pt,
		part:         part,
		k:            k,
		fab:          sim.NewFabric(k, c.Shards+1, c.FabricBandwidth, c.FabricLatency),
		devices:      make([]*flash.Backend, c.Shards),
		coord:        c.Shards,
		owners:       append([]int32(nil), part.Owner...),
		dead:         make([]bool, c.Shards),
		sampleExtra:  platform.DeviceSampleExtra(c.Cfg, c.Cfg.GNN.Fanout),
		featureExtra: platform.DeviceFeatureExtra(c.Cfg),
		backup:       -1,
	}
	for s := range r.devices {
		b, err := flash.New(k, c.Cfg.Flash, 0)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d backend: %w", s, err)
		}
		r.devices[s] = b
	}
	r.res = &Result{
		Shards:      c.Shards,
		Partitioner: pt.Name(),
		Dataset:     inst.Desc.Name,
		Nodes:       g.NumNodes(),
		Batches:     c.Batches,
		Targets:     c.Cfg.GNN.BatchSize,
	}
	return r, nil
}

// draw derives a deterministic pseudo-random 64-bit value for one
// sampling decision. Keys are position-based — (batch, round, entry,
// draw) — so the workload is identical no matter how many shards serve
// it or how events interleave.
func (r *run) draw(batch, round, entry, j int) uint64 {
	key := uint64(batch)<<48 ^ uint64(round)<<40 ^ uint64(entry)<<8 ^ uint64(j)
	return splitmix64(r.cfg.Seed ^ splitmix64(key))
}

// targets returns batch b's seed nodes.
func (r *run) targets(b int) []graph.NodeID {
	n := uint64(r.inst.Graph.NumNodes())
	out := make([]graph.NodeID, r.cfg.Cfg.GNN.BatchSize)
	for j := range out {
		out[j] = graph.NodeID(r.draw(b, -1, 0, j) % n)
	}
	return out
}

func (r *run) run() (*Result, error) {
	r.k.At(0, func() { r.startBatch(0) })
	r.k.Run()
	return r.finalize()
}

func (r *run) startBatch(b int) {
	if r.cfg.Fail && b == r.cfg.FailAfterBatch && !r.res.Failed {
		r.failShard(r.cfg.FailShard)
	}
	r.startRound(b, 0, r.targets(b))
}

// fetch is one frontier entry as a device sees it: the node plus the
// shard-local pages its round touches (primary + any secondary sections
// the sampled indices land in).
type fetch struct {
	node  graph.NodeID
	pages []uint32
}

// startRound scatters the frontier to its owning shards, lets each
// device stream the reads, and gathers per-shard results. Children for
// the next round are computed synchronously here, in frontier order, so
// the merge is deterministic by construction — the event machinery only
// decides when the round's clock barrier falls.
func (r *run) startRound(b, round int, frontier []graph.NodeID) {
	g := r.inst.Graph
	hops := r.cfg.Cfg.GNN.Hops
	fanout := r.cfg.Cfg.GNN.Fanout
	sampling := round < hops

	// Group the frontier by serving shard, preserving frontier order,
	// draw each entry's children (sampling rounds only), and resolve the
	// shard-local pages each entry's draws touch.
	perShard := make([][]fetch, r.cfg.Shards)
	var next []graph.NodeID
	if sampling {
		next = make([]graph.NodeID, 0, len(frontier)*fanout)
	}
	for i, v := range frontier {
		s := int(r.owners[v])
		home := int(r.part.Owner[v]) // plans live with the original owner
		build := r.part.Shards[home].Build
		plan := &build.Plans[r.part.LocalIndex[v]]
		f := fetch{node: v, pages: []uint32{build.Layout.Page(plan.Primary)}}
		if sampling {
			deg := g.Degree(v)
			if deg > 0 {
				nbrs := g.Neighbors(v)
				for j := 0; j < fanout; j++ {
					idx := int(r.draw(b, round, i, j) % uint64(deg))
					u := nbrs[idx]
					r.res.Samples++
					if r.owners[u] != r.owners[v] {
						r.res.CrossChildren++
					}
					next = append(next, u)
					if idx >= plan.InlineCount {
						sec := plan.SecondaryIndexFor(idx)
						pg := build.Layout.Page(plan.Secondaries[sec])
						if !containsPage(f.pages, pg) {
							f.pages = append(f.pages, pg)
						}
					}
				}
			}
		}
		perShard[s] = append(perShard[s], f)
	}

	pending := 0
	for s := range perShard {
		if len(perShard[s]) > 0 {
			pending++
		}
	}
	roundDone := func() {
		r.k.After(r.cfg.Cfg.Host.HopRoundTrip, func() {
			if sampling {
				r.startRound(b, round+1, next)
			} else {
				r.finishBatch(b)
			}
		})
	}
	if pending == 0 {
		roundDone()
		return
	}
	for s := range perShard {
		entries := perShard[s]
		if len(entries) == 0 {
			continue
		}
		shard := s
		gatherBytes := len(entries) * r.gatherEntryBytes(sampling)
		r.fab.Send(r.coord, shard, len(entries)*scatterEntryBytes, func() {
			r.execute(shard, entries, sampling, func() {
				r.fab.Send(shard, r.coord, gatherBytes, func() {
					pending--
					if pending == 0 {
						roundDone()
					}
				})
			})
		})
	}
}

func (r *run) gatherEntryBytes(sampling bool) int {
	if sampling {
		return r.cfg.Cfg.GNN.Fanout * childEntryBytes
	}
	return directgraph.Layout{PageSize: r.cfg.Cfg.Flash.PageSize, FeatureDim: r.inst.Graph.FeatureDim()}.FeatureBytes()
}

func containsPage(pages []uint32, pg uint32) bool {
	for _, p := range pages {
		if p == pg {
			return true
		}
	}
	return false
}

// execute streams one shard's slice of the round onto its device: every
// entry's pages are issued at once so the device's die queues reorder
// freely (the out-of-order streaming the BG-2 model is built on). done
// fires when the last page read completes.
func (r *run) execute(s int, entries []fetch, sampling bool, done func()) {
	dev := r.devices[s]
	extra := r.featureExtra
	if sampling {
		extra = r.sampleExtra
	}

	pendingReads := 0
	for _, f := range entries {
		if int(r.owners[f.node]) != s {
			r.res.OwnershipViolations++
		}
		r.res.Fetches++
		// A relocated node (original owner dead) is served from the
		// backup's replica; while the re-replication stream is still
		// moving, that serve is degraded.
		if r.degraded && r.dead[r.part.Owner[f.node]] {
			r.res.DegradedFetches++
		}
		for _, pg := range f.pages {
			pendingReads++
			dev.ReadPage(pg, extra, nil, func() {
				pendingReads--
				if pendingReads == 0 {
					done()
				}
			})
		}
	}
	if pendingReads == 0 {
		done()
	}
}

func (r *run) finishBatch(b int) {
	if b+1 < r.cfg.Batches {
		r.startBatch(b + 1)
		return
	}
	r.finishAt = r.k.Now()
}

// failShard marks shard f dead, hands its ownership to the backup, and
// starts the chunked re-replication stream that rebuilds redundancy on
// the next survivor. Serving continues immediately — relocated nodes are
// served from the backup's replica, counted degraded until the move
// completes.
func (r *run) failShard(f int) {
	r.res.Failed = true
	r.res.FailShard = f
	r.dead[f] = true
	r.backup = (f + 1) % r.cfg.Shards
	r.res.BackupShard = r.backup
	r.degraded = true
	r.failAt = r.k.Now()

	// Atomic ownership handover: the backup owns everything the failed
	// shard owned. Local plan indices are unchanged — the replica is a
	// byte-identical copy of the failed shard's layout.
	for v := range r.owners {
		if int(r.owners[v]) == f {
			r.owners[v] = int32(r.backup)
		}
	}

	// Re-replicate the lost shard's footprint from the backup onto the
	// next survivor, chunked so foreground gathers interleave.
	target := (r.backup + 1) % r.cfg.Shards
	for r.dead[target] {
		target = (target + 1) % r.cfg.Shards
	}
	total := r.part.ShardBytes(f)
	r.res.MovedBytes = total
	var sendChunk func(remaining int64)
	sendChunk = func(remaining int64) {
		n := int64(replChunkBytes)
		if n > remaining {
			n = remaining
		}
		r.fab.Send(r.backup, target, int(n), func() {
			if remaining > n {
				sendChunk(remaining - n)
				return
			}
			r.degraded = false
			r.res.RebalanceNs = int64(r.k.Now() - r.failAt)
		})
	}
	if total > 0 {
		sendChunk(total)
	} else {
		r.degraded = false
	}
}

func (r *run) finalize() (*Result, error) {
	res := r.res
	res.ElapsedNs = int64(r.finishAt)
	if res.ElapsedNs > 0 {
		res.Throughput = float64(res.Targets*res.Batches) / (float64(res.ElapsedNs) / 1e9)
	}
	if res.Samples > 0 {
		res.CrossFrac = float64(res.CrossChildren) / float64(res.Samples)
	}
	res.FabricBytes = r.fab.BytesTotal()
	res.FabricMsgs = r.fab.Messages()
	res.ShardReads = make([]uint64, r.cfg.Shards)
	var sum, max uint64
	served := 0
	for s, d := range r.devices {
		res.ShardReads[s] = d.Reads()
		if res.ShardReads[s] > 0 {
			served++
			sum += res.ShardReads[s]
			if res.ShardReads[s] > max {
				max = res.ShardReads[s]
			}
		}
	}
	if served > 0 {
		res.ReadImbalance = float64(max) / (float64(sum) / float64(served))
	}
	res.IntraEdgeFrac = IntraEdgeFraction(r.inst.Graph, r.pt)
	if res.Fetches > 0 {
		res.Availability = 1 - float64(res.DegradedFetches)/float64(res.Fetches)
	} else {
		res.Availability = 1
	}
	return res, nil
}
