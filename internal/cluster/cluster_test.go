package cluster

import (
	"reflect"
	"sync"
	"testing"

	"beacongnn/internal/dataset"
)

var (
	testInstOnce sync.Once
	testInstVal  *dataset.Instance
	testInstErr  error
)

func testInstance(t testing.TB) *dataset.Instance {
	t.Helper()
	testInstOnce.Do(func() {
		var d dataset.Desc
		d, testInstErr = dataset.ByName("amazon")
		if testInstErr != nil {
			return
		}
		testInstVal, testInstErr = dataset.Materialize(d, 1500, 4096, 0xBEAC0)
	})
	if testInstErr != nil {
		t.Fatal(testInstErr)
	}
	return testInstVal
}

func testConfig(shards int) Config {
	return Config{Shards: shards, Batches: 3, Seed: 7}
}

func TestRunDeterministic(t *testing.T) {
	inst := testInstance(t)
	for _, name := range PartitionerNames() {
		c := testConfig(3)
		c.Partitioner = name
		a, err := Run(c, inst)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(c, inst)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: two identical runs diverged:\n%+v\n%+v", name, a, b)
		}
	}
}

func TestRunInvariants(t *testing.T) {
	inst := testInstance(t)
	for _, shards := range []int{1, 2, 4} {
		res, err := Run(testConfig(shards), inst)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Check(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if shards == 1 {
			if res.CrossChildren != 0 {
				t.Fatalf("single shard produced cross-shard children: %d", res.CrossChildren)
			}
		} else if res.CrossChildren == 0 {
			t.Fatalf("shards=%d: expected cross-shard traffic on a hash partition", shards)
		}
		if res.Fetches == 0 || res.Samples == 0 {
			t.Fatalf("shards=%d: empty run: %+v", shards, res)
		}
		if res.FabricBytes == 0 {
			t.Fatalf("shards=%d: coordinator traffic never touched the fabric", shards)
		}
	}
}

// The workload is a pure function of the seed, so the fetch/sample
// ledger must be identical at every shard count — only timing and
// traffic may differ.
func TestWorkloadIdenticalAcrossShardCounts(t *testing.T) {
	inst := testInstance(t)
	base, err := Run(testConfig(1), inst)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4} {
		res, err := Run(testConfig(shards), inst)
		if err != nil {
			t.Fatal(err)
		}
		if res.Fetches != base.Fetches || res.Samples != base.Samples {
			t.Fatalf("shards=%d: ledger moved: fetches %d vs %d, samples %d vs %d",
				shards, res.Fetches, base.Fetches, res.Samples, base.Samples)
		}
	}
}

func TestClusterScalesThroughput(t *testing.T) {
	inst := testInstance(t)
	one, err := Run(testConfig(1), inst)
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(testConfig(4), inst)
	if err != nil {
		t.Fatal(err)
	}
	if four.Throughput <= one.Throughput {
		t.Fatalf("4 shards (%.1f targets/s) not faster than 1 (%.1f targets/s)",
			four.Throughput, one.Throughput)
	}
}

func TestFailureDrillRebalances(t *testing.T) {
	inst := testInstance(t)
	c := testConfig(4)
	c.Batches = 4
	c.Fail = true
	c.FailShard = 1
	c.FailAfterBatch = 1
	res, err := Run(c, inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	if !res.Failed || res.FailShard != 1 || res.BackupShard != 2 {
		t.Fatalf("failure drill not recorded: %+v", res)
	}
	if res.MovedBytes <= 0 {
		t.Fatalf("re-replication moved %d bytes", res.MovedBytes)
	}
	if res.DegradedFetches == 0 {
		t.Fatal("no fetch was served degraded during the move window")
	}
	if res.Availability >= 1 || res.Availability <= 0 {
		t.Fatalf("availability %v outside (0,1) for a failure drill", res.Availability)
	}
	// The dead device serves nothing after the handover batch; its read
	// count must sit below every survivor's.
	for s, reads := range res.ShardReads {
		if s == c.FailShard {
			continue
		}
		if res.ShardReads[c.FailShard] >= reads {
			t.Fatalf("dead shard %d read %d pages, survivor %d only %d",
				c.FailShard, res.ShardReads[c.FailShard], s, reads)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	inst := testInstance(t)
	bad := []Config{
		{Shards: 0},
		{Shards: 2, Partitioner: "nope"},
		{Shards: 2, Fail: true, FailShard: 5},
		{Shards: 1, Fail: true, FailShard: 0},
		{Shards: 2, Fail: true, FailShard: 0, FailAfterBatch: 99},
	}
	for i, c := range bad {
		if _, err := Run(c, inst); err == nil {
			t.Fatalf("config %d accepted: %+v", i, c)
		}
	}
}

// Coordinator hammer for -race: many full cluster runs in flight at
// once, each on its own kernel, all producing identical results.
func TestCoordinatorRaceHammer(t *testing.T) {
	inst := testInstance(t)
	const workers = 8
	c := testConfig(3)
	c.Partitioner = PartitionLocality
	results := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Run(c, inst)
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("concurrent run %d diverged from run 0", i)
		}
	}
}
