// Metamorphic and property-based validation of the simulator, run
// through the invariant checker: every simulation here executes under
// platform.SimulateChecked, so a conservation or sanity violation fails
// the test with the named invariant even when the metamorphic relation
// itself holds.
//
// The relations encode physics the paper relies on rather than golden
// numbers: more hardware never makes a workload slower, injected faults
// never make it faster, and BG-2.0 dominates BG-1.0 (Fig. 14).
// Tolerances are documented at each assertion; they absorb the small
// legitimate reorderings that a geometry change induces in the
// deterministic sampler RNG draw sequence (observed ≤3% — see the dies
// relation), not measurement noise: the simulator is deterministic.
//
// This file lives in package invariant_test because the checks import
// internal/platform, which itself imports internal/invariant.
package invariant_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"beacongnn/internal/config"
	"beacongnn/internal/dataset"
	"beacongnn/internal/exp"
	"beacongnn/internal/platform"
)

// metaNodes/metaBatches bound every metamorphic simulation. 2500 nodes
// × 2 batches keeps a single run under ~100ms while still exercising
// multi-hop fan-out across all dies.
const (
	metaNodes   = 2500
	metaBatches = 2
)

// instCache shares materialized dataset instances across tests; graph
// materialization dominates small-simulation runtime.
var (
	instMu    sync.Mutex
	instCache = map[string]*dataset.Instance{}
)

func materialize(t *testing.T, name string, nodes, pageSize int, seed uint64) *dataset.Instance {
	t.Helper()
	key := fmt.Sprintf("%s/%d/%d/%d", name, nodes, pageSize, seed)
	instMu.Lock()
	defer instMu.Unlock()
	if inst, ok := instCache[key]; ok {
		return inst
	}
	d, err := dataset.ByName(name)
	if err != nil {
		t.Fatalf("dataset %q: %v", name, err)
	}
	inst, err := dataset.Materialize(d, nodes, pageSize, seed)
	if err != nil {
		t.Fatalf("materialize %s: %v", name, err)
	}
	instCache[key] = inst
	return inst
}

// simChecked runs one simulation under the invariant checker and fails
// the test on any violation or setup error.
func simChecked(t *testing.T, kind platform.Kind, cfg config.Config, inst *dataset.Instance) *platform.Result {
	t.Helper()
	res, err := platform.SimulateChecked(kind, cfg, inst, metaBatches, 64)
	if err != nil {
		t.Fatalf("%s (%d ch × %d dies): %v", kind, cfg.Flash.Channels, cfg.Flash.DiesPerChannel, err)
	}
	return res
}

// Adding flash channels must never increase end-to-end latency: the
// workload is fixed, and a wider interconnect only removes contention.
// The relation holds strictly on the current defaults (BG-2: 2.65ms →
// 539µs over 2→16 channels; BG-1: 14.8ms → 2.8ms); CC flattens once it
// is host-bound (equal at 8 and 16 channels), so the assertion is
// non-strict with a 1% slack for RNG-draw reordering.
func TestMetamorphicChannelsNeverSlower(t *testing.T) {
	channels := []int{2, 4, 8, 16}
	if testing.Short() {
		channels = []int{4, 16}
	}
	inst := materialize(t, "amazon", metaNodes, config.Default().Flash.PageSize, config.Default().Seed)
	for _, kind := range []platform.Kind{platform.BG2, platform.BG1, platform.CC} {
		prev := platform.Result{}
		for i, ch := range channels {
			cfg := config.Default()
			cfg.Flash.Channels = ch
			res := simChecked(t, kind, cfg, inst)
			if i > 0 && float64(res.Elapsed) > float64(prev.Elapsed)*1.01 {
				t.Errorf("%s: %d channels ran in %v but %d channels in %v — more channels made it slower",
					kind, channels[i-1], prev.Elapsed, ch, res.Elapsed)
			}
			prev = *res
		}
	}
}

// Adding dies per channel must never meaningfully increase latency.
// Unlike the channel sweep this relation is not strictly monotone:
// changing die count changes page placement and therefore the order of
// sampler RNG draws, which can shift BG-1 by a few percent (observed:
// 2.869ms at 1 die vs 2.953ms at 2 dies, +2.9%). BG-2's router
// dissolves that sensitivity, so it gets a tight 1% slack; BG-1 and CC
// get 5%.
func TestMetamorphicDiesNeverSlower(t *testing.T) {
	dies := []int{1, 2, 4, 8}
	if testing.Short() {
		dies = []int{1, 8}
	}
	inst := materialize(t, "amazon", metaNodes, config.Default().Flash.PageSize, config.Default().Seed)
	for _, tc := range []struct {
		kind  platform.Kind
		slack float64
	}{
		{platform.BG2, 1.01},
		{platform.BG1, 1.05},
		{platform.CC, 1.05},
	} {
		prev := platform.Result{}
		for i, d := range dies {
			cfg := config.Default()
			cfg.Flash.DiesPerChannel = d
			res := simChecked(t, tc.kind, cfg, inst)
			if i > 0 && float64(res.Elapsed) > float64(prev.Elapsed)*tc.slack {
				t.Errorf("%s: %d dies/channel ran in %v but %d in %v — more dies made it >%.0f%% slower",
					tc.kind, dies[i-1], prev.Elapsed, d, res.Elapsed, (tc.slack-1)*100)
			}
			prev = *res
		}
	}
}

// Enabling the NAND fault model must never make a run faster: faults
// only add retry senses, soft-decode core time, and recovery work. The
// relation is strict for the BG platforms (flash time dominates their
// critical path); CC gets a 1% slack because its retries can hide
// under host-side transfer time while still perturbing RNG draw order
// (observed: 8.535ms faulted vs 8.548ms clean, −0.15%).
func TestMetamorphicFaultsNeverFaster(t *testing.T) {
	inst := materialize(t, "amazon", metaNodes, config.Default().Flash.PageSize, config.Default().Seed)
	for _, tc := range []struct {
		kind  platform.Kind
		slack float64 // faulted must be ≥ clean × slack
	}{
		{platform.BG2, 1.0},
		{platform.BG1, 1.0},
		{platform.CC, 0.99},
	} {
		clean := simChecked(t, tc.kind, config.Default(), inst)
		cfg := config.Default()
		cfg.Fault.Enabled = true
		cfg.Fault.BaseRBER = 2e-3
		faulted := simChecked(t, tc.kind, cfg, inst)
		if float64(faulted.Elapsed) < float64(clean.Elapsed)*tc.slack {
			t.Errorf("%s: faulted run %v beat clean run %v — fault injection made it faster",
				tc.kind, faulted.Elapsed, clean.Elapsed)
		}
		if faulted.Faults == nil || faulted.Faults.RetryReads == 0 {
			t.Errorf("%s: fault model produced no retries at RBER 2e-3 — relation tested vacuously", tc.kind)
		}
	}
}

// BG-2.0 must dominate BG-1.0 on every dataset, the paper's headline
// Fig. 14 result. The measured margin is ~5× on amazon; requiring 2×
// leaves room for future parameter recalibration while still failing
// on any regression that inverts the ordering.
func TestMetamorphicBG2DominatesBG1(t *testing.T) {
	datasets := []string{"amazon", "reddit"}
	if testing.Short() {
		datasets = datasets[:1]
	}
	for _, ds := range datasets {
		inst := materialize(t, ds, metaNodes, config.Default().Flash.PageSize, config.Default().Seed)
		bg1 := simChecked(t, platform.BG1, config.Default(), inst)
		bg2 := simChecked(t, platform.BG2, config.Default(), inst)
		if bg2.Throughput < 2*bg1.Throughput {
			t.Errorf("%s: BG-2 %.0f targets/s vs BG-1 %.0f — dominance margin below 2×",
				ds, bg2.Throughput, bg1.Throughput)
		}
	}
}

// Every reported number — energy breakdown ordering included — must be
// identical whether simulations fan out over 1 or 4 workers: -parallel
// changes scheduling of whole simulations, never the arithmetic inside
// one. Both engines run checked, so the comparison also proves checked
// results equal each other across widths.
func TestMetamorphicParallelWidthStable(t *testing.T) {
	inst := materialize(t, "amazon", metaNodes, config.Default().Flash.PageSize, config.Default().Seed)
	kinds := []platform.Kind{platform.CC, platform.BG1, platform.BG2}

	run := func(workers int) []*platform.Result {
		eng := exp.New(workers)
		eng.EnableChecks()
		results, err := exp.Map(kinds, func(k platform.Kind) (*platform.Result, error) {
			return eng.Simulate(k, config.Default(), inst, metaBatches, 64)
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return results
	}
	seq, par := run(1), run(4)
	for i, k := range kinds {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("%s: result differs between -parallel 1 and -parallel 4", k)
		}
		if len(seq[i].EnergyByCmp) == 0 {
			t.Errorf("%s: empty energy breakdown", k)
		}
		for j, sh := range seq[i].EnergyByCmp {
			if sh.Joules < 0 {
				t.Errorf("%s: component %s negative energy %g J", k, sh.Component, sh.Joules)
			}
			if j > 0 && sh.Fraction > seq[i].EnergyByCmp[j-1].Fraction {
				t.Errorf("%s: energy breakdown not sorted by share at %s", k, sh.Component)
			}
		}
	}
}

// Property harness: seeded random configurations across the six
// platforms of the paper's main comparison must all satisfy every
// invariant. The generator stays inside validated ranges (geometry,
// cores, GNN shape, fault model on/off) so any failure is a simulator
// bug, not an invalid config. -short trims the draw count, not the
// platform set.
func TestPropertyRandomConfigs(t *testing.T) {
	kinds := []platform.Kind{
		platform.CC, platform.BG1, platform.BGDG,
		platform.BGSP, platform.BGDGSP, platform.BG2,
	}
	draws := 6
	if testing.Short() {
		draws = 2
	}
	rng := rand.New(rand.NewSource(20260805)) // fixed: failures must reproduce
	pageSize := config.Default().Flash.PageSize
	for d := 0; d < draws; d++ {
		cfg := config.Default()
		cfg.Flash.Channels = []int{2, 4, 8, 16}[rng.Intn(4)]
		cfg.Flash.DiesPerChannel = []int{1, 2, 4, 8}[rng.Intn(4)]
		cfg.Flash.PlanesPerDie = 1 + rng.Intn(2)
		cfg.Firmware.Cores = 1 + rng.Intn(8)
		cfg.GNN.Hops = 2 + rng.Intn(2)
		cfg.GNN.Fanout = 2 + rng.Intn(3)
		cfg.GNN.BatchSize = []int{16, 32, 64}[rng.Intn(3)]
		cfg.Seed = uint64(rng.Int63())
		if rng.Intn(2) == 1 {
			cfg.Fault.Enabled = true
			cfg.Fault.BaseRBER = []float64{5e-4, 2e-3}[rng.Intn(2)]
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("draw %d generated an invalid config: %v", d, err)
		}
		inst := materialize(t, "amazon", 1500, pageSize, config.Default().Seed)
		for _, k := range kinds {
			if _, err := platform.SimulateChecked(k, cfg, inst, metaBatches, 64); err != nil {
				t.Errorf("draw %d (%d ch × %d dies × %d planes, %d cores, hops %d fanout %d batch %d, faults %v): %s: %v",
					d, cfg.Flash.Channels, cfg.Flash.DiesPerChannel, cfg.Flash.PlanesPerDie,
					cfg.Firmware.Cores, cfg.GNN.Hops, cfg.GNN.Fanout, cfg.GNN.BatchSize,
					cfg.Fault.Enabled, k, err)
			}
		}
	}
}
