package invariant

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"beacongnn/internal/config"
	"beacongnn/internal/energy"
	"beacongnn/internal/sim"
)

func energyConfigForTest() config.Energy { return config.Default().Energy }

func violationNames(vs []Violation) []string {
	var out []string
	for _, v := range vs {
		out = append(out, v.Invariant)
	}
	return out
}

func hasViolation(t *testing.T, c *Checker, name string) Violation {
	t.Helper()
	for _, v := range c.Violations() {
		if v.Invariant == name {
			return v
		}
	}
	t.Fatalf("expected a %q violation, got %v", name, violationNames(c.Violations()))
	return Violation{}
}

// A fully consistent run must produce zero violations.
func TestCleanRunHasNoViolations(t *testing.T) {
	c := New()
	c.RegisterResource("res", 0, 2)
	c.RegisterDrain("res", func() (int, int) { return 0, 0 })

	c.KernelStep(0)
	c.KernelStep(5)
	c.KernelStep(5) // equal timestamps are legal (seq breaks ties)
	c.KernelStep(9)

	// Two overlapping spans on a width-2 server, plus a later one.
	c.ServerSpan("res", 0, 0, 0, 4)
	c.ServerSpan("res", 0, 1, 1, 3)
	c.ServerSpan("res", 0, 2, 4, 9)
	// An unregistered resource only gets the ordering check.
	c.ServerSpan("other", 3, 1, 2, 3)

	a, b := 1e-9, 2e-9
	c.EnergyEvent(energy.FlashRead, a)
	c.EnergyEvent(energy.Static, b)
	wantEnergy := a + b // runtime float addition, mirroring the ledger

	c.CountSenseRequest()
	c.CountSenseRequest()
	c.CountRecoverySense()
	if !c.CheckFlashConservation(3) {
		t.Fatalf("consistent sense ledger rejected")
	}

	if vs := c.Finish(10); len(vs) != 0 {
		t.Fatalf("clean run produced violations: %v", vs)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("Err() = %v, want nil", err)
	}
	if got := c.EnergyTotal(); got != wantEnergy {
		t.Fatalf("EnergyTotal() = %g, want %g", got, wantEnergy)
	}
	if c.Steps() != 4 {
		t.Fatalf("Steps() = %d, want 4", c.Steps())
	}
}

// Mutation test: deliberately break the sense-conservation rule and
// require the named diagnostic. This is the acceptance-criteria probe
// that the checker actually detects a broken conservation law rather
// than vacuously passing.
func TestBrokenConservationIsNamed(t *testing.T) {
	c := New()
	for i := 0; i < 5; i++ {
		c.CountSenseRequest()
	}
	// The "device" claims 6 senses for 5 requests and no recovery.
	if c.CheckFlashConservation(6) {
		t.Fatalf("inconsistent sense ledger accepted")
	}
	v := hasViolation(t, c, "flash.conservation")
	if !strings.Contains(v.Detail, "6") || !strings.Contains(v.Detail, "5") {
		t.Fatalf("diagnostic %q does not carry the mismatched counts", v.Detail)
	}
	err := c.Err()
	if err == nil {
		t.Fatalf("Err() = nil for a violated run")
	}
	if !strings.Contains(err.Error(), "flash.conservation") {
		t.Fatalf("error %q does not name the violated invariant", err.Error())
	}
}

func TestMonotoneTimeViolation(t *testing.T) {
	c := New()
	c.KernelStep(10)
	c.KernelStep(9)
	hasViolation(t, c, "kernel.monotone-time")
}

func TestSpanOrderingViolations(t *testing.T) {
	c := New()
	c.ServerSpan("r", 0, 5, 4, 6) // start before arrival
	hasViolation(t, c, "span.ordered")

	c = New()
	c.ServerSpan("r", 0, 1, 2, 1) // end before start
	hasViolation(t, c, "span.ordered")

	c = New()
	c.ServerSpan("r", 0, 0, 0, 15)
	c.Finish(10) // span outlives the run
	hasViolation(t, c, "span.ordered")
}

func TestSpanNestingViolation(t *testing.T) {
	c := New()
	c.RegisterResource("bus", 1, 1)
	c.ServerSpan("bus", 1, 0, 0, 10)
	c.ServerSpan("bus", 1, 0, 5, 8) // overlaps on a width-1 server
	c.Finish(20)
	hasViolation(t, c, "span.nested")

	// Back-to-back spans (end == next start) are legal.
	c = New()
	c.RegisterResource("bus", 1, 1)
	c.ServerSpan("bus", 1, 0, 0, 5)
	c.ServerSpan("bus", 1, 0, 5, 9)
	if vs := c.Finish(20); len(vs) != 0 {
		t.Fatalf("back-to-back spans flagged: %v", vs)
	}
}

func TestUtilizationViolation(t *testing.T) {
	c := New()
	c.RegisterResource("core", 0, 1)
	// 12 time units of service in a 10-unit run on width 1. Keep each
	// span inside [0, elapsed] and non-overlapping is impossible, so
	// both span.nested and server.utilization may fire; require the
	// utilization one specifically.
	c.ServerSpan("core", 0, 0, 0, 7)
	c.ServerSpan("core", 0, 0, 5, 10)
	c.Finish(10)
	hasViolation(t, c, "server.utilization")
}

func TestDrainViolation(t *testing.T) {
	c := New()
	c.RegisterDrain("flash", func() (int, int) { return 0, 3 })
	c.Finish(10)
	v := hasViolation(t, c, "queues.drained")
	if !strings.Contains(v.Detail, "flash") {
		t.Fatalf("drain diagnostic %q does not name the queue", v.Detail)
	}
}

func TestEnergyViolations(t *testing.T) {
	c := New()
	c.EnergyEvent(energy.PCIe, -1e-12)
	hasViolation(t, c, "energy.nonnegative")

	c = New()
	c.EnergyEvent(energy.PCIe, 1.0)
	if c.AssertNear("energy.ledger", 1.5, c.EnergyTotal(), 1e-9, "total") {
		t.Fatalf("mismatched ledger accepted")
	}
	hasViolation(t, c, "energy.ledger")
}

// The energy hook integrates with a real meter: every deposit must land
// in the shadow ledger so Meter.Total() and the checker always agree.
func TestEnergyMeterHookAgrees(t *testing.T) {
	c := New()
	m := energy.NewMeter(energyConfigForTest())
	m.OnAdd = c.EnergyEvent
	m.FlashReadPage()
	m.ChannelBytes(4096)
	m.CoreBusy(3 * sim.Microsecond)
	m.FinishStatic(1 * sim.Millisecond)
	if got, want := c.EnergyTotal(), m.Total(); got != want {
		t.Fatalf("shadow ledger %g != meter total %g", got, want)
	}
	if c.EnergyEvents() != 4 {
		t.Fatalf("EnergyEvents() = %d, want 4", c.EnergyEvents())
	}
}

func TestViolationSuppression(t *testing.T) {
	c := New()
	for i := 0; i < 10; i++ {
		c.KernelStep(sim.Time(10 - i))
	}
	var n int
	for _, v := range c.Violations() {
		if v.Invariant == "kernel.monotone-time" {
			n++
		}
	}
	if n != maxDetailsPerInvariant+1 {
		t.Fatalf("recorded %d violations, want %d detailed + 1 suppression marker", n, maxDetailsPerInvariant)
	}
	last := c.Violations()[len(c.Violations())-1]
	if !strings.Contains(last.Detail, "suppressed") {
		t.Fatalf("missing suppression marker, got %q", last.Detail)
	}
}

func TestAssertNear(t *testing.T) {
	c := New()
	if !c.AssertNear("x", 1000.0000001, 1000, 1e-9, "close") {
		t.Fatalf("relative tolerance not applied for large magnitudes")
	}
	if c.AssertNear("x", 1.1, 1.0, 1e-3, "far") {
		t.Fatalf("out-of-tolerance value accepted")
	}
	if !c.AssertNear("x", 0, 0, 1e-9, "zero") {
		t.Fatalf("exact zero rejected")
	}
}

func TestErrorFormatting(t *testing.T) {
	e := &Error{Violations: []Violation{
		{"a.first", "detail one"},
		{"b.second", "detail two"},
	}}
	msg := e.Error()
	if !strings.Contains(msg, "a.first") || !strings.Contains(msg, "b.second") || !strings.Contains(msg, "1 more") {
		t.Fatalf("unexpected error rendering: %q", msg)
	}
}

func TestTimeHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h timeHeap
	var ref []sim.Time
	for i := 0; i < 500; i++ {
		v := sim.Time(rng.Intn(1000))
		h.push(v)
		ref = append(ref, v)
	}
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	for i, want := range ref {
		if got := h.pop(); got != want {
			t.Fatalf("pop %d = %v, want %v", i, got, want)
		}
	}
}
