// Package invariant is the simulation correctness net: a default-off
// checker that observes a run through the same zero-overhead hooks the
// tracer and energy meter use, and proves at run end that the event
// flow conserved work, time, and energy. The aggregate numbers the
// figure runners print (throughput, utilization, energy breakdowns)
// are only trustworthy if these hold; SimpleSSD makes the same point
// by validating its model against hardware — here the model validates
// itself against its own event stream.
//
// A Checker accumulates observations during a run and is interrogated
// once, at completion. Every violated invariant is reported by NAME
// (e.g. "flash.conservation", "kernel.monotone-time") with a detail
// string, so a failing -check run tells the operator which law broke,
// not just that something did.
//
// Checked invariants:
//
//   - kernel.monotone-time  event timestamps never move backwards
//   - queues.drained        every registered queue empty at completion
//   - span.ordered          each trace span has arrived ≤ start ≤ end
//   - span.nested           per-resource span overlap ≤ server width
//   - server.utilization    per-resource busy time ≤ wall time × width
//   - energy.nonnegative    no per-event charge is negative
//   - energy.ledger         reported total == sum of per-event charges
//   - flash.conservation    senses == requests + recovery re-senses
//
// plus any client assertion made through Assert/AssertNear (the
// platform layer adds result-level checks under "result.*" names).
//
// To add an invariant: either observe state through a new hook method
// and test it in Finish (for properties of the event flow), or call
// Assert from the integration layer (for properties of derived
// results). Keep hooks allocation-free on the hot path — the checker
// may be attached to every simulation of a sweep.
package invariant

import (
	"fmt"
	"sort"
	"strings"

	"beacongnn/internal/energy"
	"beacongnn/internal/sim"
)

// Violation is one broken invariant.
type Violation struct {
	Invariant string // stable name, e.g. "flash.conservation"
	Detail    string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Error wraps the violations of a checked run.
type Error struct {
	Violations []Violation
}

func (e *Error) Error() string {
	if len(e.Violations) == 0 {
		return "invariant: no violations"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "invariant violated: %s", e.Violations[0])
	if n := len(e.Violations) - 1; n > 0 {
		fmt.Fprintf(&b, " (and %d more)", n)
		for _, v := range e.Violations[1:] {
			fmt.Fprintf(&b, "\n  %s", v)
		}
	}
	return b.String()
}

// maxDetailsPerInvariant caps how many violations of the same invariant
// are recorded verbatim; a systematically broken rule would otherwise
// flood the report with one line per event.
const maxDetailsPerInvariant = 3

type resKey struct {
	resource string
	lane     int
}

type span struct{ start, end sim.Time }

type resource struct {
	width   int // 0 = unknown (capacity checks skipped)
	service sim.Time
	spans   []span
	count   uint64
}

// Checker accumulates observations from one simulation run. It
// implements sim.Tracer, and its hook methods are safe to leave
// attached for the whole run; call Finish exactly once afterwards.
// Not safe for concurrent use — attach one Checker per system, like
// the kernel itself.
type Checker struct {
	violations []Violation
	perName    map[string]int

	// kernel clock
	probeSteps uint64
	lastAt     sim.Time
	haveLast   bool

	// trace spans per resource
	resources map[resKey]*resource

	// drain probes, polled in Finish
	drains []drainProbe

	// energy shadow ledger
	energyJ      float64
	energyEvents uint64

	// flash sense ledger
	senseRequested uint64
	senseRecovery  uint64
}

type drainProbe struct {
	name  string
	probe func() (busy, queued int)
}

// New returns an empty checker.
func New() *Checker {
	return &Checker{
		perName:   make(map[string]int),
		resources: make(map[resKey]*resource),
	}
}

// violate records a named violation, keeping at most a few details per
// invariant name (the count is always exact in the summary line).
func (c *Checker) violate(name, format string, args ...any) {
	c.perName[name]++
	if c.perName[name] == maxDetailsPerInvariant+1 {
		c.violations = append(c.violations, Violation{name, "further violations suppressed"})
		return
	}
	if c.perName[name] > maxDetailsPerInvariant {
		return
	}
	c.violations = append(c.violations, Violation{name, fmt.Sprintf(format, args...)})
}

// Assert records a named violation when ok is false and returns ok.
// Integration layers use it for derived-result invariants.
func (c *Checker) Assert(name string, ok bool, format string, args ...any) bool {
	if !ok {
		c.violate(name, format, args...)
	}
	return ok
}

// AssertNear asserts |got−want| ≤ tol·max(1,|want|), a relative
// tolerance for floating-point ledgers.
func (c *Checker) AssertNear(name string, got, want, tol float64, what string) bool {
	bound := tol
	if w := want; w < 0 {
		w = -w
		if w > 1 {
			bound = tol * w
		}
	} else if w > 1 {
		bound = tol * w
	}
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	return c.Assert(name, diff <= bound, "%s: got %v, want %v (tol %v)", what, got, want, bound)
}

// RegisterResource declares a traced resource's service width so Finish
// can check span nesting and total busy time against capacity.
// Resources that produce spans without a registration still get the
// per-span ordering check.
func (c *Checker) RegisterResource(name string, lane, width int) {
	k := resKey{name, lane}
	r := c.resources[k]
	if r == nil {
		r = &resource{}
		c.resources[k] = r
	}
	r.width = width
}

// RegisterDrain adds a completion-time drain probe: at Finish, probe()
// must report zero busy and zero queued work, or "queues.drained" is
// violated with the given name.
func (c *Checker) RegisterDrain(name string, probe func() (busy, queued int)) {
	c.drains = append(c.drains, drainProbe{name, probe})
}

// KernelStep is the kernel probe (install with sim.Kernel.SetProbe):
// it checks that event times never move backwards.
func (c *Checker) KernelStep(at sim.Time) {
	c.probeSteps++
	if c.haveLast && at < c.lastAt {
		c.violate("kernel.monotone-time", "event at %v after event at %v (step %d)", at, c.lastAt, c.probeSteps)
	}
	c.lastAt = at
	c.haveLast = true
}

// ServerSpan implements sim.Tracer: every service span is checked for
// internal ordering and retained for the nesting/utilization checks.
func (c *Checker) ServerSpan(resourceName string, lane int, arrived, start, end sim.Time) {
	if !(arrived <= start && start <= end) {
		c.violate("span.ordered", "%s[%d]: arrived %v, start %v, end %v", resourceName, lane, arrived, start, end)
	}
	if arrived < 0 {
		c.violate("span.ordered", "%s[%d]: negative arrival %v", resourceName, lane, arrived)
	}
	k := resKey{resourceName, lane}
	r := c.resources[k]
	if r == nil {
		r = &resource{}
		c.resources[k] = r
	}
	r.count++
	r.service += end - start
	r.spans = append(r.spans, span{start, end})
}

// EnergyEvent is the meter hook (install with energy.Meter.OnAdd): it
// keeps the shadow ledger the reported total is compared against.
func (c *Checker) EnergyEvent(comp energy.Component, j float64) {
	c.energyEvents++
	if j < 0 {
		c.violate("energy.nonnegative", "%s charged %g J", comp, j)
	}
	c.energyJ += j
}

// EnergyTotal returns the shadow ledger's sum of per-event charges.
func (c *Checker) EnergyTotal() float64 { return c.energyJ }

// EnergyEvents returns how many deposits the ledger observed.
func (c *Checker) EnergyEvents() uint64 { return c.energyEvents }

// CountSenseRequest records one page-read request entering the managed
// sense path (the "requested exactly once" side of flash.conservation).
func (c *Checker) CountSenseRequest() { c.senseRequested++ }

// CountRecoverySense records one extra sense issued by the recovery
// ladder (retry re-sense or degraded final sense) — the "modulo retry"
// allowance of flash.conservation.
func (c *Checker) CountRecoverySense() { c.senseRecovery++ }

// SenseLedger returns (requested, recovery) sense counts.
func (c *Checker) SenseLedger() (requested, recovery uint64) {
	return c.senseRequested, c.senseRecovery
}

// CheckFlashConservation asserts the backend's sense counter equals
// requests plus recovery re-senses: every requested page was sensed
// exactly once, modulo dedup (upstream of the request count) and retry.
func (c *Checker) CheckFlashConservation(backendReads uint64) bool {
	return c.Assert("flash.conservation",
		backendReads == c.senseRequested+c.senseRecovery,
		"backend sensed %d pages, ledger has %d requests + %d recovery senses",
		backendReads, c.senseRequested, c.senseRecovery)
}

// Steps returns how many kernel events the probe observed.
func (c *Checker) Steps() uint64 { return c.probeSteps }

// Finish runs the completion-time checks against the run's elapsed
// simulated time and returns all violations accumulated so far. Call
// it once, after the kernel has drained.
func (c *Checker) Finish(elapsed sim.Time) []Violation {
	for _, d := range c.drains {
		if busy, queued := d.probe(); busy != 0 || queued != 0 {
			c.violate("queues.drained", "%s: %d in service, %d queued at completion", d.name, busy, queued)
		}
	}
	// Deterministic iteration for stable diagnostics.
	keys := make([]resKey, 0, len(c.resources))
	for k := range c.resources {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].resource != keys[j].resource {
			return keys[i].resource < keys[j].resource
		}
		return keys[i].lane < keys[j].lane
	})
	for _, k := range keys {
		r := c.resources[k]
		c.checkResource(k, r, elapsed)
	}
	return c.Violations()
}

func (c *Checker) checkResource(k resKey, r *resource, elapsed sim.Time) {
	if elapsed > 0 {
		for _, s := range r.spans {
			if s.end > elapsed {
				c.violate("span.ordered", "%s[%d]: span ends at %v, after run end %v", k.resource, k.lane, s.end, elapsed)
				break
			}
		}
	}
	if r.width <= 0 {
		return // width unknown: capacity checks don't apply
	}
	if elapsed > 0 && r.service > elapsed*sim.Time(r.width) {
		c.violate("server.utilization", "%s[%d]: %v busy over %v wall × width %d (utilization %.3f)",
			k.resource, k.lane, r.service, elapsed, r.width,
			r.service.Seconds()/(elapsed.Seconds()*float64(r.width)))
	}
	// Sweep the spans in start order, retiring ends through a min-heap,
	// to bound peak overlap by the server width: a width-w server can
	// run at most w requests at once, so any deeper nesting means the
	// trace (or the server) double-booked a slot.
	if len(r.spans) > 1 {
		spans := make([]span, len(r.spans))
		copy(spans, r.spans)
		sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
		ends := make(timeHeap, 0, r.width+1)
		for _, s := range spans {
			for len(ends) > 0 && ends[0] <= s.start {
				ends.pop()
			}
			ends.push(s.end)
			if len(ends) > r.width {
				c.violate("span.nested", "%s[%d]: %d overlapping spans at %v exceed width %d",
					k.resource, k.lane, len(ends), s.start, r.width)
				return
			}
		}
	}
}

// Violations returns a copy of everything recorded so far.
func (c *Checker) Violations() []Violation {
	out := make([]Violation, len(c.violations))
	copy(out, c.violations)
	return out
}

// Err returns nil when every invariant held, or an *Error naming each
// violated invariant.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	return &Error{Violations: c.Violations()}
}

// timeHeap is a minimal min-heap of times for the span sweep.
type timeHeap []sim.Time

func (h *timeHeap) push(t sim.Time) {
	*h = append(*h, t)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p] <= (*h)[i] {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *timeHeap) pop() sim.Time {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && (*h)[l] < (*h)[m] {
			m = l
		}
		if r < n && (*h)[r] < (*h)[m] {
			m = r
		}
		if m == i {
			break
		}
		(*h)[i], (*h)[m] = (*h)[m], (*h)[i]
		i = m
	}
	return top
}
