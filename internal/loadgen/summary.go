package loadgen

import (
	"math"
	"sort"

	"beacongnn/internal/sim"
)

// latSummary computes exact nearest-rank quantiles over raw latency
// samples. Capacity curves can't use the shared metrics.Histogram here:
// its 128 log-1.15 buckets top out near 51ms, and an overloaded open
// queue's intended-start tail routinely reaches seconds — clamping it to
// the last bucket would understate exactly the divergence the sweep
// exists to measure. Step sample counts are bounded by the schedule
// length, so an exact sort is cheap; sorting in place is fine because
// samples are never needed in arrival order again.
func latSummary(samples []sim.Time) (mean, p50, p99, p999, max int64) {
	n := len(samples)
	if n == 0 {
		return 0, 0, 0, 0, 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum sim.Time
	for _, s := range samples {
		sum += s
	}
	at := func(q float64) int64 {
		// Nearest rank ⌈q·n⌉ with the same epsilon snap-down as
		// metrics.Histogram.Quantile (0.07·100 lands a hair above 7).
		rank := int(math.Ceil(q * float64(n) * (1 - 1e-9)))
		if rank < 1 {
			rank = 1
		}
		if rank > n {
			rank = n
		}
		return int64(samples[rank-1])
	}
	return int64(sum / sim.Time(n)), at(0.5), at(0.99), at(0.999), int64(samples[n-1])
}
