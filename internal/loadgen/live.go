package loadgen

import (
	"fmt"
	"sync"
	"time"

	"beacongnn/internal/sim"
)

// Outcome classifies one live request.
type Outcome int

const (
	OutcomeOK     Outcome = iota
	OutcomeShed           // backend refused under admission control (429)
	OutcomeFailed         // transport error or 5xx
)

// LiveBackend executes one request against a real system and blocks
// until it settles. Implementations must be safe for concurrent calls.
type LiveBackend interface {
	Do(req Request) Outcome
}

// LiveFunc adapts a function to LiveBackend.
type LiveFunc func(req Request) Outcome

// Do implements LiveBackend.
func (f LiveFunc) Do(req Request) Outcome { return f(req) }

// LiveConfig bounds the live runner's client-side concurrency. The slot
// pool is a harness limit, not a measurement boundary: when the backend
// stalls and all slots are busy, sends fall behind their intended start
// — exactly the coordinated omission an intended-start clock must not
// hide, which is why RunLive records both clocks.
type LiveConfig struct {
	MaxInflight int      // concurrent in-flight requests (default 64)
	LateBy      sim.Time // send counts as late when delayed past this (default 1ms)
}

// LiveResult extends the curve point with the naive send-time tail the
// open-loop harness exists to correct: NaiveP99Ns measures from when the
// request actually left the client, P99Ns (inherited) from when it was
// scheduled to. Under backend stalls the intended-start tail is strictly
// larger; reporting both makes the omission visible instead of silently
// repaired.
type LiveResult struct {
	StepResult
	NaiveP50Ns int64 `json:"naive_p50_ns"`
	NaiveP99Ns int64 `json:"naive_p99_ns"`
	LateSends  int   `json:"late_sends"`
}

// RunLive replays the schedule against a live backend in wall-clock
// time. Each request is sent as close to its intended start as the slot
// pool allows; latency samples are measured from the intended start
// (coordinated-omission-safe) with the naive send-time tail kept
// alongside for comparison.
func RunLive(sched []Request, b LiveBackend, cfg LiveConfig) (LiveResult, error) {
	if b == nil {
		return LiveResult{}, fmt.Errorf("loadgen: live run needs a backend")
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.LateBy <= 0 {
		cfg.LateBy = sim.Millisecond
	}

	res := LiveResult{StepResult: StepResult{Requests: len(sched)}}
	var (
		intendedLat, naiveLat []sim.Time
		mu                    sync.Mutex
		wg                    sync.WaitGroup
		slots                 = make(chan struct{}, cfg.MaxInflight)
	)
	start := time.Now()
	for i := range sched {
		req := sched[i]
		intended := start.Add(time.Duration(req.At))
		if d := time.Until(intended); d > 0 {
			time.Sleep(d)
		}
		slots <- struct{}{} // blocks when the pool is saturated: the send is now late
		sent := time.Now()
		wg.Add(1)
		go func() {
			defer func() { <-slots; wg.Done() }()
			outcome := b.Do(req)
			end := time.Now()
			mu.Lock()
			defer mu.Unlock()
			if sent.Sub(intended) > time.Duration(cfg.LateBy) {
				res.LateSends++
			}
			switch outcome {
			case OutcomeOK:
				res.OK++
				intendedLat = append(intendedLat, sim.Duration(end.Sub(intended)))
				naiveLat = append(naiveLat, sim.Duration(end.Sub(sent)))
			case OutcomeShed:
				res.Shed++
			default:
				res.Failed++
			}
		}()
	}
	wg.Wait()
	makespan := time.Since(start)

	res.MakespanNs = makespan.Nanoseconds()
	res.MeanNs, res.P50Ns, res.P99Ns, res.P999Ns, res.MaxNs = latSummary(intendedLat)
	_, res.NaiveP50Ns, res.NaiveP99Ns, _, _ = latSummary(naiveLat)
	if makespan > 0 {
		res.GoodputQPS = float64(res.OK) / makespan.Seconds()
	}
	if n := len(sched); n > 0 && sched[n-1].At > 0 {
		res.OfferedQPS = float64(n) / sched[n-1].At.Seconds()
	}
	return res, nil
}
