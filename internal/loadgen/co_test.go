package loadgen

import (
	"testing"
	"time"

	"beacongnn/internal/sim"
)

// TestCoordinatedOmissionVisible is the regression the open-loop harness
// exists for: replay a canned schedule against a backend that stalls
// mid-run with a single client send slot. Requests scheduled during the
// stall cannot leave the client, so their naive send-time latency looks
// healthy while their intended-start latency carries the whole backlog.
// A harness that measured only from send time would hide the stall —
// the intended-start p99 must come out strictly larger.
func TestCoordinatedOmissionVisible(t *testing.T) {
	const (
		gap     = 2 * time.Millisecond
		stall   = 60 * time.Millisecond
		fast    = 200 * time.Microsecond
		nreq    = 40
		stallLo = 5
		stallHi = 8 // requests [5,8) stall
	)
	sched := make([]Request, nreq)
	for i := range sched {
		sched[i] = Request{ID: i, At: sim.Duration(time.Duration(i+1) * gap)}
	}
	backend := LiveFunc(func(req Request) Outcome {
		if req.ID >= stallLo && req.ID < stallHi {
			time.Sleep(stall)
		} else {
			time.Sleep(fast)
		}
		return OutcomeOK
	})
	res, err := RunLive(sched, backend, LiveConfig{MaxInflight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != nreq {
		t.Fatalf("ok = %d, want %d", res.OK, nreq)
	}
	// Three 60ms stalls against 2ms pacing put ~170ms of backlog on the
	// requests queued behind the single slot: the intended-start tail
	// must see it, the naive send-time tail must not (its worst sample
	// is one stall, ~60ms).
	if res.P99Ns <= res.NaiveP99Ns {
		t.Fatalf("intended p99 %dns <= naive p99 %dns: coordinated omission hidden",
			res.P99Ns, res.NaiveP99Ns)
	}
	if res.P99Ns < int64(sim.Duration(2*stall)) {
		t.Fatalf("intended p99 = %dns, want the stall backlog (> %v)", res.P99Ns, 2*stall)
	}
	if res.LateSends == 0 {
		t.Fatal("no late sends recorded despite a saturated send slot")
	}
}

// TestRunLiveOutcomePartition: shed and failed outcomes are tallied
// separately and excluded from the latency stream.
func TestRunLiveOutcomePartition(t *testing.T) {
	sched := make([]Request, 30)
	for i := range sched {
		sched[i] = Request{ID: i, At: sim.Time(i+1) * 100 * sim.Microsecond}
	}
	backend := LiveFunc(func(req Request) Outcome {
		switch req.ID % 3 {
		case 0:
			return OutcomeOK
		case 1:
			return OutcomeShed
		default:
			return OutcomeFailed
		}
	})
	res, err := RunLive(sched, backend, LiveConfig{MaxInflight: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 10 || res.Shed != 10 || res.Failed != 10 {
		t.Fatalf("ok/shed/failed = %d/%d/%d, want 10/10/10", res.OK, res.Shed, res.Failed)
	}
	if res.OK+res.Shed+res.Failed != res.Requests {
		t.Fatal("outcomes don't partition the schedule")
	}
}

func TestRunLiveNilBackend(t *testing.T) {
	if _, err := RunLive(nil, nil, LiveConfig{}); err == nil {
		t.Fatal("nil backend accepted")
	}
}
