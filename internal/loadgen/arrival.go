// Package loadgen is a deterministic open-loop workload generator.
//
// Closed-loop drivers (a fixed pool of callers that wait for each reply
// before sending the next request) silently slow down when the system
// under test slows down, hiding exactly the latency they were meant to
// measure — the coordinated-omission trap. loadgen instead materializes
// the full arrival schedule up front from a seeded PRNG: every request
// has an intended start time fixed before the run, offered load never
// reacts to the backend, and every latency sample is measured from the
// intended start, not from whenever the harness got around to sending.
//
// The same schedule drives two backends behind one interface: the
// simulator directly in virtual time (RunVirtual — exact, byte-identical
// at any parallelism) and a live beaconserved over HTTP (RunLive).
package loadgen

import (
	"fmt"
	"math"

	"beacongnn/internal/sim"
	"beacongnn/internal/xrand"
)

// Arrival process kinds accepted by Spec.Kind.
const (
	ArrivalPoisson = "poisson" // homogeneous Poisson: i.i.d. exponential gaps
	ArrivalMMPP    = "mmpp"    // 2-state Markov-modulated Poisson (bursty, CV > 1)
	ArrivalDiurnal = "diurnal" // sinusoidally modulated Poisson via Lewis thinning
	ArrivalUniform = "uniform" // fixed 1/rate pacing (deterministic, CV = 0)
)

// Spec describes an arrival process. Rate is the long-run offered load
// in requests per second for every kind — MMPP's state rates and the
// diurnal modulation are both constructed to preserve it, so sweeping
// Rate sweeps true offered load regardless of burstiness shape.
type Spec struct {
	Kind string
	Rate float64 // mean arrivals per second; must be > 0

	// Burst sets the MMPP high-state intensity: rateHi = Rate·Burst and
	// rateLo = Rate·(2−Burst) with equal expected dwells, so the time
	// average stays Rate. Must lie in (1, 2); ignored by other kinds.
	Burst float64

	// Dwell is the mean sojourn in each MMPP state (default 250ms).
	Dwell sim.Time

	// Amp is the diurnal modulation depth: λ(t) = Rate·(1 + Amp·sin(2πt/Period)).
	// Must lie in [0, 1]; ignored by other kinds.
	Amp float64

	// Period is the diurnal cycle length (default 10s of virtual time —
	// a compressed "day" so sweeps see whole cycles).
	Period sim.Time
}

const (
	defaultDwell  = 250 * sim.Millisecond
	defaultPeriod = 10 * sim.Second
)

func (s Spec) validate() error {
	if s.Rate <= 0 || math.IsNaN(s.Rate) || math.IsInf(s.Rate, 0) {
		return fmt.Errorf("loadgen: arrival rate %v must be a positive finite qps", s.Rate)
	}
	switch s.Kind {
	case ArrivalPoisson, ArrivalUniform:
	case ArrivalMMPP:
		if s.Burst <= 1 || s.Burst >= 2 {
			return fmt.Errorf("loadgen: mmpp burst %v must lie in (1, 2)", s.Burst)
		}
		if s.Dwell < 0 {
			return fmt.Errorf("loadgen: mmpp dwell %v must be non-negative", s.Dwell)
		}
	case ArrivalDiurnal:
		if s.Amp < 0 || s.Amp > 1 {
			return fmt.Errorf("loadgen: diurnal amplitude %v must lie in [0, 1]", s.Amp)
		}
		if s.Period < 0 {
			return fmt.Errorf("loadgen: diurnal period %v must be non-negative", s.Period)
		}
	default:
		return fmt.Errorf("loadgen: unknown arrival kind %q (want poisson|mmpp|diurnal|uniform)", s.Kind)
	}
	return nil
}

// Process generates a monotone stream of absolute arrival times from a
// Spec and a private PRNG stream. Not safe for concurrent use.
type Process struct {
	spec Spec
	rng  *xrand.Source
	now  sim.Time // time of the last arrival emitted

	// MMPP state: hi is the current phase, switchAt the scheduled
	// transition out of it.
	hi       bool
	switchAt sim.Time
}

// NewProcess validates the spec and returns a generator whose entire
// output is a pure function of (spec, the rng's seed).
func NewProcess(spec Spec, rng *xrand.Source) (*Process, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if spec.Kind == ArrivalMMPP && spec.Dwell == 0 {
		spec.Dwell = defaultDwell
	}
	if spec.Kind == ArrivalDiurnal && spec.Period == 0 {
		spec.Period = defaultPeriod
	}
	p := &Process{spec: spec, rng: rng, hi: true}
	if spec.Kind == ArrivalMMPP {
		p.switchAt = p.expDuration(1 / spec.Dwell.Seconds())
	}
	return p, nil
}

// expDuration draws an Exp(rate) duration, converted to sim.Time with a
// 1ns floor so arrivals always advance the clock.
func (p *Process) expDuration(rate float64) sim.Time {
	u := p.rng.Float64()
	d := sim.Time(-math.Log(1-u) / rate * float64(sim.Second))
	if d < 1 {
		d = 1
	}
	return d
}

// Next returns the next absolute arrival time (strictly increasing).
func (p *Process) Next() sim.Time {
	switch p.spec.Kind {
	case ArrivalUniform:
		gap := sim.Time(float64(sim.Second) / p.spec.Rate)
		if gap < 1 {
			gap = 1
		}
		p.now += gap
	case ArrivalPoisson:
		p.now += p.expDuration(p.spec.Rate)
	case ArrivalMMPP:
		p.now = p.nextMMPP()
	case ArrivalDiurnal:
		p.now = p.nextDiurnal()
	}
	return p.now
}

// nextMMPP races the next candidate arrival in the current phase against
// the scheduled phase switch; crossing a switch discards the candidate
// (the exponential's memorylessness makes a redraw at the new rate
// statistically exact) and schedules the next switch.
func (p *Process) nextMMPP() sim.Time {
	rateHi := p.spec.Rate * p.spec.Burst
	rateLo := p.spec.Rate * (2 - p.spec.Burst)
	t := p.now
	for {
		rate := rateLo
		if p.hi {
			rate = rateHi
		}
		cand := t + p.expDuration(rate)
		if cand < p.switchAt {
			return cand
		}
		t = p.switchAt
		p.hi = !p.hi
		p.switchAt = t + p.expDuration(1/p.spec.Dwell.Seconds())
	}
}

// nextDiurnal draws from the non-homogeneous Poisson process
// λ(t) = Rate·(1 + Amp·sin(2πt/Period)) by Lewis thinning: generate
// candidates at the ceiling rate λmax = Rate·(1+Amp) and accept each
// with probability λ(t)/λmax.
func (p *Process) nextDiurnal() sim.Time {
	lambdaMax := p.spec.Rate * (1 + p.spec.Amp)
	t := p.now
	for {
		t += p.expDuration(lambdaMax)
		phase := 2 * math.Pi * t.Seconds() / p.spec.Period.Seconds()
		lambda := p.spec.Rate * (1 + p.spec.Amp*math.Sin(phase))
		if p.rng.Float64()*lambdaMax < lambda {
			return t
		}
	}
}
