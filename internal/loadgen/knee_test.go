package loadgen

import "testing"

// step builds a synthetic curve point with full goodput unless overridden.
func step(offered, goodput float64, p99 int64) StepResult {
	return StepResult{OfferedQPS: offered, GoodputQPS: goodput, P99Ns: p99}
}

// TestKneeClassicSaturation: an M/M/1-shaped curve — flat tail up to
// capacity, then goodput caps and the tail diverges — recovers the
// saturation point within one sweep step.
func TestKneeClassicSaturation(t *testing.T) {
	steps := []StepResult{
		step(100, 100, 1_000_000),
		step(200, 199, 1_100_000),
		step(300, 298, 1_400_000),
		step(400, 340, 90_000_000), // saturated: goodput 85%, tail 90x
		step(500, 341, 400_000_000),
	}
	knee, sat := Knee(steps, DefaultKneeRule())
	if knee != 2 || !sat {
		t.Fatalf("knee = %d, saturated = %v, want 2/true", knee, sat)
	}
}

// TestKneeTailOnlyViolation: a backend that never sheds keeps goodput
// perfect while its queue diverges — the tail criterion alone must trip.
func TestKneeTailOnlyViolation(t *testing.T) {
	steps := []StepResult{
		step(100, 100, 1_000_000),
		step(200, 200, 2_000_000),
		step(300, 300, 80_000_000), // > 5x base p99
	}
	knee, sat := Knee(steps, DefaultKneeRule())
	if knee != 1 || !sat {
		t.Fatalf("knee = %d, saturated = %v, want 1/true", knee, sat)
	}
}

// TestKneeGoodputOnlyViolation: a shedding backend keeps the tail flat
// while quietly dropping load — the goodput criterion alone must trip.
func TestKneeGoodputOnlyViolation(t *testing.T) {
	steps := []StepResult{
		step(100, 100, 1_000_000),
		step(200, 150, 1_000_000), // shedding 25%, tail flat
	}
	knee, sat := Knee(steps, DefaultKneeRule())
	if knee != 0 || !sat {
		t.Fatalf("knee = %d, saturated = %v, want 0/true", knee, sat)
	}
}

// TestKneeFlatCurveNeverSaturates: a sweep that stays inside capacity
// reports the last step as a lower bound, not a knee.
func TestKneeFlatCurveNeverSaturates(t *testing.T) {
	steps := []StepResult{
		step(100, 100, 1_000_000),
		step(200, 200, 1_050_000),
		step(300, 300, 1_100_000),
	}
	knee, sat := Knee(steps, DefaultKneeRule())
	if knee != 2 || sat {
		t.Fatalf("knee = %d, saturated = %v, want 2/false", knee, sat)
	}
}

// TestKneeDegenerateFirstStep: even the lightest step violating the rule
// means no capacity was demonstrated at all.
func TestKneeDegenerateFirstStep(t *testing.T) {
	steps := []StepResult{
		step(100, 40, 1_000_000),
		step(200, 45, 1_000_000),
	}
	knee, sat := Knee(steps, DefaultKneeRule())
	if knee != -1 || sat {
		t.Fatalf("knee = %d, saturated = %v, want -1/false", knee, sat)
	}
}

// TestKneeNonConsecutiveRecoveryIgnored: a step past the first violation
// that happens to satisfy the rule again (e.g. shedding restored a flat
// tail) is beyond the knee and must not extend it.
func TestKneeNonConsecutiveRecoveryIgnored(t *testing.T) {
	steps := []StepResult{
		step(100, 100, 1_000_000),
		step(200, 100, 1_000_000), // violates: goodput half
		step(300, 295, 1_000_000), // "recovers" — ignored
	}
	knee, sat := Knee(steps, DefaultKneeRule())
	if knee != 0 || !sat {
		t.Fatalf("knee = %d, saturated = %v, want 0/true", knee, sat)
	}
}

// TestKneeEdgeCases: empty sweep, single step, zero base tail, and a
// zeroed rule falling back to defaults — none may panic.
func TestKneeEdgeCases(t *testing.T) {
	if knee, sat := Knee(nil, DefaultKneeRule()); knee != -1 || sat {
		t.Fatalf("empty sweep: %d/%v", knee, sat)
	}
	if knee, sat := Knee([]StepResult{step(100, 100, 1_000_000)}, DefaultKneeRule()); knee != 0 || sat {
		t.Fatalf("single healthy step: %d/%v, want 0/false", knee, sat)
	}
	// All-shed first step has no latency samples: P99 = 0. Only the
	// goodput criterion applies; flat goodput keeps every step.
	zeroTail := []StepResult{step(100, 100, 0), step(200, 200, 0)}
	if knee, sat := Knee(zeroTail, DefaultKneeRule()); knee != 1 || sat {
		t.Fatalf("zero base tail: %d/%v, want 1/false", knee, sat)
	}
	if knee, _ := Knee(zeroTail, KneeRule{}); knee != 1 {
		t.Fatalf("zero rule did not fall back to defaults: %d", knee)
	}
}
