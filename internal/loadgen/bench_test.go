package loadgen

import (
	"testing"

	"beacongnn/internal/sim"
)

// BenchmarkCapacityStep measures one virtual sweep step end to end —
// schedule build plus event-loop replay — the unit the capacity
// experiment runs per (platform, arrival, load) grid point. Gated in
// BENCH_BASELINE.json so the open-loop harness itself stays cheap.
func BenchmarkCapacityStep(b *testing.B) {
	spec := ScheduleSpec{
		Seed:     17,
		Arrival:  Spec{Kind: ArrivalMMPP, Rate: 2000, Burst: 1.6},
		Requests: 2000,
		Classes:  8,
		Skew:     1.0,
	}
	backend := VirtualBackend{
		Workers:  4,
		Service:  []sim.Time{800 * sim.Microsecond, sim.Millisecond, 1200 * sim.Microsecond, 2 * sim.Millisecond, 900 * sim.Microsecond, 1100 * sim.Microsecond, 1500 * sim.Microsecond, 700 * sim.Microsecond},
		CacheCap: 4,
		CacheHit: 100 * sim.Microsecond,
		Queue:    32,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sched, err := Build(spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := RunVirtual(sched, backend); err != nil {
			b.Fatal(err)
		}
	}
}
