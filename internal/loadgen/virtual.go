package loadgen

import (
	"fmt"

	"beacongnn/internal/sim"
)

// VirtualBackend models a serving platform as a W-way service center in
// virtual time: per-class service times (calibrated from memoized real
// simulations by the capacity experiment), an optional LRU result cache
// keyed by class, and an optional admission queue bound. The event loop
// is single-threaded and consumes no randomness, so a run is a pure
// function of (schedule, backend) — byte-identical at any -parallel
// width.
type VirtualBackend struct {
	Workers int        // service-center width (> 0)
	Service []sim.Time // service time per class; len must cover every class

	// CacheCap > 0 enables an LRU result cache over classes: a hit
	// serves in CacheHit instead of the class service time and does not
	// occupy a worker (mirrors beaconserved's memo fast path).
	CacheCap int
	CacheHit sim.Time

	// Queue > 0 sheds arrivals that find that many requests already
	// waiting (mirrors beaconserved's admission depth). 0 = unbounded.
	Queue int

	Tracer sim.Tracer // optional: receives loadgen.backend spans
}

func (b VirtualBackend) validate(sched []Request) error {
	if b.Workers <= 0 {
		return fmt.Errorf("loadgen: virtual backend needs positive worker count, got %d", b.Workers)
	}
	if len(b.Service) == 0 {
		return fmt.Errorf("loadgen: virtual backend needs at least one class service time")
	}
	for _, r := range sched {
		if r.Class < 0 || r.Class >= len(b.Service) {
			return fmt.Errorf("loadgen: request %d class %d outside the %d configured service classes",
				r.ID, r.Class, len(b.Service))
		}
	}
	return nil
}

// lruCache is a tiny ordered-slice LRU over class ids — capacities here
// are small (tens), so O(cap) moves beat pointer-chasing a list.
type lruCache struct {
	cap  int
	keys []int
}

func (c *lruCache) touch(class int) bool {
	for i, k := range c.keys {
		if k == class {
			copy(c.keys[1:i+1], c.keys[:i])
			c.keys[0] = class
			return true
		}
	}
	if len(c.keys) < c.cap {
		c.keys = append(c.keys, 0)
	}
	copy(c.keys[1:], c.keys)
	c.keys[0] = class
	return false
}

// RunVirtual replays the schedule against the backend in virtual time
// and returns the step's measured curve point. Latency is completion
// minus the request's intended start — coordinated-omission-safe by
// construction, since the virtual clock fires every arrival exactly at
// its intended time no matter how far behind the service center is.
func RunVirtual(sched []Request, b VirtualBackend) (StepResult, error) {
	if err := b.validate(sched); err != nil {
		return StepResult{}, err
	}
	k := sim.New()
	srv := sim.NewServer(k, b.Workers)
	if b.Tracer != nil {
		srv.SetTracer(b.Tracer, "loadgen.backend", 0)
	}
	cache := &lruCache{cap: b.CacheCap}

	res := StepResult{Requests: len(sched)}
	lat := make([]sim.Time, 0, len(sched))
	var makespan sim.Time
	for i := range sched {
		req := sched[i] // capture by value: the closure outlives the loop
		k.At(req.At, func() {
			hit := b.CacheCap > 0 && cache.touch(req.Class)
			if hit {
				// Memo fast path: served inline without a worker.
				done := req.At + b.CacheHit
				k.At(done, func() {
					res.OK++
					lat = append(lat, b.CacheHit)
					if done > makespan {
						makespan = done
					}
				})
				return
			}
			if b.Queue > 0 && srv.QueueLen() >= b.Queue {
				res.Shed++
				if req.At > makespan {
					makespan = req.At
				}
				return
			}
			srv.Submit(b.Service[req.Class], func() {
				res.OK++
				lat = append(lat, k.Now()-req.At)
				if k.Now() > makespan {
					makespan = k.Now()
				}
			})
		})
	}
	k.Run()

	res.MakespanNs = int64(makespan)
	res.MeanNs, res.P50Ns, res.P99Ns, res.P999Ns, res.MaxNs = latSummary(lat)
	if makespan > 0 {
		res.GoodputQPS = float64(res.OK) / makespan.Seconds()
	}
	if len(sched) > 0 {
		span := sched[len(sched)-1].At
		if span > 0 {
			res.OfferedQPS = float64(len(sched)) / span.Seconds()
		}
	}
	return res, nil
}
