package loadgen

import (
	"math"
	"testing"

	"beacongnn/internal/sim"
	"beacongnn/internal/xrand"
)

// gapStats draws n arrivals and returns the empirical mean and
// coefficient of variation of the inter-arrival gaps, in seconds.
func gapStats(t *testing.T, spec Spec, seed uint64, n int) (mean, cv float64) {
	t.Helper()
	p, err := NewProcess(spec, xrand.New(seed))
	if err != nil {
		t.Fatalf("NewProcess: %v", err)
	}
	var prev sim.Time
	gaps := make([]float64, n)
	for i := range gaps {
		next := p.Next()
		if next <= prev {
			t.Fatalf("arrival %d not strictly increasing: %v after %v", i, next, prev)
		}
		gaps[i] = (next - prev).Seconds()
		prev = next
	}
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(n)
	var varsum float64
	for _, g := range gaps {
		varsum += (g - mean) * (g - mean)
	}
	return mean, math.Sqrt(varsum/float64(n-1)) / mean
}

// TestPoissonMoments: exponential gaps have mean 1/λ and CV exactly 1.
// 20k samples put the standard error of both well under the 5% bound.
func TestPoissonMoments(t *testing.T) {
	const rate = 1000.0
	mean, cv := gapStats(t, Spec{Kind: ArrivalPoisson, Rate: rate}, 7, 20000)
	if math.Abs(mean*rate-1) > 0.05 {
		t.Fatalf("poisson mean gap = %vs, want ≈%vs", mean, 1/rate)
	}
	if math.Abs(cv-1) > 0.05 {
		t.Fatalf("poisson CV = %v, want ≈1", cv)
	}
}

// TestMMPPMoments: the 2-state construction preserves the long-run rate
// (rateHi·½ + rateLo·½ = Rate) while modulation pushes the gap CV
// strictly above the Poisson baseline of 1 — the defining burstiness
// signature.
func TestMMPPMoments(t *testing.T) {
	const rate = 1000.0
	spec := Spec{Kind: ArrivalMMPP, Rate: rate, Burst: 1.8, Dwell: 100 * sim.Millisecond}
	mean, cv := gapStats(t, spec, 11, 20000)
	if math.Abs(mean*rate-1) > 0.10 {
		t.Fatalf("mmpp mean gap = %vs, want ≈%vs (rate not preserved)", mean, 1/rate)
	}
	if cv < 1.1 {
		t.Fatalf("mmpp CV = %v, want > 1.1 (burstier than Poisson)", cv)
	}
}

// TestDiurnalMeanPreserved: sin averages to zero over whole cycles, so
// thinning at λ(t) = Rate·(1+Amp·sin) keeps the long-run rate at Rate.
func TestDiurnalMeanPreserved(t *testing.T) {
	const rate = 1000.0
	spec := Spec{Kind: ArrivalDiurnal, Rate: rate, Amp: 0.8, Period: 2 * sim.Second}
	mean, cv := gapStats(t, spec, 13, 20000) // 20s ≈ 10 whole periods
	if math.Abs(mean*rate-1) > 0.10 {
		t.Fatalf("diurnal mean gap = %vs, want ≈%vs", mean, 1/rate)
	}
	if cv <= 1.0 {
		t.Fatalf("diurnal CV = %v, want > 1 (modulation adds variance)", cv)
	}
}

// TestUniformExactPacing: deterministic 1/rate gaps, CV 0.
func TestUniformExactPacing(t *testing.T) {
	p, err := NewProcess(Spec{Kind: ArrivalUniform, Rate: 500}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	gap := sim.Time(float64(sim.Second) / 500)
	for i := 1; i <= 10; i++ {
		if got := p.Next(); got != sim.Time(i)*gap {
			t.Fatalf("arrival %d = %v, want %v", i, got, sim.Time(i)*gap)
		}
	}
}

// TestZipfClassSkew: with skew s over C classes the class-k frequency is
// ∝ 1/(k+1)^s, so counts must fall with rank and the hottest class must
// dominate the coldest by roughly C^s.
func TestZipfClassSkew(t *testing.T) {
	sched, err := Build(ScheduleSpec{
		Seed:     21,
		Arrival:  Spec{Kind: ArrivalPoisson, Rate: 1000},
		Requests: 20000,
		Classes:  10,
		Skew:     1.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 10)
	for _, r := range sched {
		counts[r.Class]++
	}
	// Head ranks strictly ordered (tail ranks are noisy at these counts).
	if !(counts[0] > counts[1] && counts[1] > counts[2] && counts[2] > counts[3]) {
		t.Fatalf("head class counts not rank-ordered: %v", counts)
	}
	// Analytic class-0/class-8 ratio is 9^1.1 ≈ 11.2; the bounded
	// inverse-CDF approximation (which also starves the very last rank)
	// and sampling noise motivate a loose two-sided band.
	ratio := float64(counts[0]) / float64(counts[8]+1)
	if ratio < 4 || ratio > 40 {
		t.Fatalf("class 0/8 ratio = %v (counts %v), want within [4, 40] of 9^1.1", ratio, counts)
	}
}

// TestUniformClassSelection: skew 0 spreads classes evenly.
func TestUniformClassSelection(t *testing.T) {
	sched, err := Build(ScheduleSpec{
		Seed:     5,
		Arrival:  Spec{Kind: ArrivalPoisson, Rate: 1000},
		Requests: 10000,
		Classes:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for _, r := range sched {
		counts[r.Class]++
	}
	for c, n := range counts {
		if n < 2200 || n > 2800 {
			t.Fatalf("uniform class %d count = %d, want ≈2500", c, n)
		}
	}
}

// TestScheduleDeterministic: the schedule is a pure function of the
// spec; a different seed diverges.
func TestScheduleDeterministic(t *testing.T) {
	spec := ScheduleSpec{
		Seed:     99,
		Arrival:  Spec{Kind: ArrivalMMPP, Rate: 800, Burst: 1.5},
		Requests: 500,
		Classes:  8,
		Skew:     0.9,
	}
	a, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Build(spec)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same spec diverged at request %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	spec.Seed = 100
	c, _ := Build(spec)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical schedule")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Kind: "weibull", Rate: 100},
		{Kind: ArrivalPoisson, Rate: 0},
		{Kind: ArrivalPoisson, Rate: math.Inf(1)},
		{Kind: ArrivalMMPP, Rate: 100, Burst: 1},
		{Kind: ArrivalMMPP, Rate: 100, Burst: 2.5},
		{Kind: ArrivalDiurnal, Rate: 100, Amp: 1.5},
		{Kind: ArrivalDiurnal, Rate: 100, Amp: -0.1},
	}
	for _, s := range bad {
		if _, err := NewProcess(s, xrand.New(1)); err == nil {
			t.Fatalf("spec %+v accepted", s)
		}
	}
	if _, err := Build(ScheduleSpec{Arrival: Spec{Kind: ArrivalPoisson, Rate: 10}, Requests: 0, Classes: 1}); err == nil {
		t.Fatal("zero request count accepted")
	}
	if _, err := Build(ScheduleSpec{Arrival: Spec{Kind: ArrivalPoisson, Rate: 10}, Requests: 5, Classes: 0}); err == nil {
		t.Fatal("zero class count accepted")
	}
	if _, err := Build(ScheduleSpec{Arrival: Spec{Kind: ArrivalPoisson, Rate: 10}, Requests: 5, Classes: 2, Skew: -1}); err == nil {
		t.Fatal("negative skew accepted")
	}
}
