package loadgen

import (
	"testing"

	"beacongnn/internal/sim"
	"beacongnn/internal/trace"
)

func uniformSchedule(t *testing.T, rate float64, n, classes int) []Request {
	t.Helper()
	sched, err := Build(ScheduleSpec{
		Seed:     42,
		Arrival:  Spec{Kind: ArrivalUniform, Rate: rate},
		Requests: n,
		Classes:  classes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

// TestRunVirtualUnderLoad: offered load well inside capacity completes
// everything with latency pinned at the service time.
func TestRunVirtualUnderLoad(t *testing.T) {
	sched := uniformSchedule(t, 100, 200, 1) // 10ms gaps
	res, err := RunVirtual(sched, VirtualBackend{Workers: 4, Service: []sim.Time{sim.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 200 || res.Shed != 0 {
		t.Fatalf("ok/shed = %d/%d, want 200/0", res.OK, res.Shed)
	}
	// No queueing: every latency is exactly the 1ms service time
	// (bucket-midpoint estimate clamped by exact min/max stays within
	// the ±15% bucket).
	if res.P99Ns < int64(sim.Millisecond) || res.P99Ns > int64(sim.Millisecond)*12/10 {
		t.Fatalf("p99 = %dns, want ≈1ms", res.P99Ns)
	}
	if res.GoodputQPS < 90 || res.GoodputQPS > 110 {
		t.Fatalf("goodput = %v qps, want ≈100", res.GoodputQPS)
	}
}

// TestRunVirtualOverloadTailGrows: past saturation the virtual clock
// keeps firing arrivals on schedule, so the intended-start tail exposes
// the queue growth — the coordinated-omission safety of virtual time.
func TestRunVirtualOverloadTailGrows(t *testing.T) {
	sched := uniformSchedule(t, 1000, 100, 1) // 1ms gaps
	svc := 10 * sim.Millisecond               // 10x oversubscribed on one worker
	res, err := RunVirtual(sched, VirtualBackend{Workers: 1, Service: []sim.Time{svc}})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 100 {
		t.Fatalf("ok = %d, want all served eventually", res.OK)
	}
	// Last request waits ~99 service times behind the backlog; even p50
	// far exceeds one service time. A send-time clock would report ~svc.
	if res.P99Ns < int64(50*svc) {
		t.Fatalf("p99 = %dns: overload tail not visible (CO hidden?)", res.P99Ns)
	}
	if res.GoodputQPS > 150 {
		t.Fatalf("goodput = %v qps, can't exceed 1/service = 100", res.GoodputQPS)
	}
}

// TestRunVirtualQueueBoundSheds: a bounded admission queue sheds the
// overflow instead of queueing it; outcomes partition the schedule.
func TestRunVirtualQueueBoundSheds(t *testing.T) {
	sched := uniformSchedule(t, 1000, 100, 1)
	res, err := RunVirtual(sched, VirtualBackend{
		Workers: 1,
		Service: []sim.Time{10 * sim.Millisecond},
		Queue:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatal("oversubscribed bounded queue shed nothing")
	}
	if res.OK+res.Shed != res.Requests {
		t.Fatalf("outcomes don't partition: ok %d + shed %d != %d", res.OK, res.Shed, res.Requests)
	}
	// Shedding caps the wait at Queue·service.
	if res.P99Ns > int64(6*10*sim.Millisecond) {
		t.Fatalf("p99 = %dns, bounded queue should bound the tail", res.P99Ns)
	}
}

// TestRunVirtualCacheFastPath: with every class resident in the LRU,
// repeat classes serve at the hit latency without occupying workers.
func TestRunVirtualCacheFastPath(t *testing.T) {
	sched := uniformSchedule(t, 100, 50, 1) // one class: 1 miss, 49 hits
	res, err := RunVirtual(sched, VirtualBackend{
		Workers:  1,
		Service:  []sim.Time{5 * sim.Millisecond},
		CacheCap: 1,
		CacheHit: 200 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 50 {
		t.Fatalf("ok = %d", res.OK)
	}
	// 49/50 hits: p50 sits at the hit latency (within its bucket), far
	// below the miss service time.
	if res.P50Ns >= int64(sim.Millisecond) {
		t.Fatalf("p50 = %dns, cache fast path not taken", res.P50Ns)
	}
	if res.MaxNs < int64(5*sim.Millisecond) {
		t.Fatalf("max = %dns, the one miss should pay full service", res.MaxNs)
	}
}

// TestRunVirtualLRUEviction: more classes than capacity keeps evicting,
// so every request misses and pays full service.
func TestRunVirtualLRUEviction(t *testing.T) {
	// Classes alternate 0,1,0,1,... with cap 1 — always evicted.
	sched := make([]Request, 40)
	for i := range sched {
		sched[i] = Request{ID: i, At: sim.Time(i+1) * 10 * sim.Millisecond, Class: i % 2}
	}
	res, err := RunVirtual(sched, VirtualBackend{
		Workers:  2,
		Service:  []sim.Time{sim.Millisecond, sim.Millisecond},
		CacheCap: 1,
		CacheHit: 10 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.P50Ns < int64(sim.Millisecond)*8/10 {
		t.Fatalf("p50 = %dns: alternating classes with cap 1 must always miss", res.P50Ns)
	}
}

// TestRunVirtualDeterministic: identical inputs give identical structs —
// the property the -exp capacity byte-identity golden rests on.
func TestRunVirtualDeterministic(t *testing.T) {
	sched, err := Build(ScheduleSpec{
		Seed:     7,
		Arrival:  Spec{Kind: ArrivalMMPP, Rate: 2000, Burst: 1.6},
		Requests: 1000,
		Classes:  4,
		Skew:     1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := VirtualBackend{
		Workers:  4,
		Service:  []sim.Time{800 * sim.Microsecond, sim.Millisecond, 1200 * sim.Microsecond, 2 * sim.Millisecond},
		CacheCap: 2,
		CacheHit: 100 * sim.Microsecond,
		Queue:    16,
	}
	r1, err := RunVirtual(sched, b)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := RunVirtual(sched, b)
	if r1 != r2 {
		t.Fatalf("virtual runs diverged:\n%+v\n%+v", r1, r2)
	}
}

// TestRunVirtualTracerSpans: the backend reports spans under the
// loadgen.backend resource, mergeable across steps.
func TestRunVirtualTracerSpans(t *testing.T) {
	rec := trace.NewRecorder()
	sched := uniformSchedule(t, 100, 10, 1)
	if _, err := RunVirtual(sched, VirtualBackend{
		Workers: 1,
		Service: []sim.Time{sim.Millisecond},
		Tracer:  rec,
	}); err != nil {
		t.Fatal(err)
	}
	bd := rec.Breakdown()
	if len(bd) != 1 || bd[0].Resource != "loadgen.backend" || bd[0].Count != 10 {
		t.Fatalf("breakdown = %+v", bd)
	}
}

func TestRunVirtualValidation(t *testing.T) {
	sched := []Request{{ID: 0, At: 1, Class: 3}}
	if _, err := RunVirtual(sched, VirtualBackend{Workers: 0, Service: []sim.Time{1}}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := RunVirtual(sched, VirtualBackend{Workers: 1, Service: nil}); err == nil {
		t.Fatal("missing service classes accepted")
	}
	if _, err := RunVirtual(sched, VirtualBackend{Workers: 1, Service: []sim.Time{1}}); err == nil {
		t.Fatal("out-of-range class accepted")
	}
}
