package loadgen

// StepResult is the measured outcome of one load-sweep step: the offered
// rate, how the backend disposed of the requests, and the
// coordinated-omission-safe latency tail (every latency is measured from
// the request's intended start). All durations are raw nanoseconds so
// the JSON encoding is exact and platform-independent.
type StepResult struct {
	OfferedQPS float64 `json:"offered_qps"`
	Requests   int     `json:"requests"`
	OK         int     `json:"ok"`
	Shed       int     `json:"shed"`
	Failed     int     `json:"failed,omitempty"`
	GoodputQPS float64 `json:"goodput_qps"`
	MeanNs     int64   `json:"mean_ns"`
	P50Ns      int64   `json:"p50_ns"`
	P99Ns      int64   `json:"p99_ns"`
	P999Ns     int64   `json:"p999_ns"`
	MaxNs      int64   `json:"max_ns"`
	MakespanNs int64   `json:"makespan_ns"`
}

// KneeRule defines when a sweep step still counts as "inside capacity":
// goodput must stay within GoodputFrac of the offered rate AND the p99
// must stay within TailFactor of the lightest step's p99. The knee is
// where an open queue transitions from flat latency to unbounded growth;
// both signals are needed because a shedding backend can keep latency
// flat while quietly dropping load, and a non-shedding one keeps goodput
// perfect while its queue (and tail) diverge.
type KneeRule struct {
	GoodputFrac float64
	TailFactor  float64
}

// DefaultKneeRule tolerates 3% goodput loss and a 5x tail inflation —
// loose enough to ride out bucket-resolution noise, tight enough that a
// saturated open queue (whose p99 grows with the schedule length, not a
// constant factor) always trips it.
func DefaultKneeRule() KneeRule { return KneeRule{GoodputFrac: 0.97, TailFactor: 5} }

// Knee returns the index of the last sweep step still inside capacity
// under the rule — the highest measured load the platform sustains — and
// whether saturation was actually observed within the sweep. Steps must
// be ordered by increasing offered load. The scan takes the last
// consecutive prefix of satisfying steps (a later step that recovers,
// e.g. by shedding its way back to a flat tail, is past the knee and
// does not count). Returns (-1, false) if even the first step violates
// the rule, and (len-1, false) for a curve that never saturates — the
// knee lies beyond the sweep, so the last index is only a lower bound.
func Knee(steps []StepResult, rule KneeRule) (int, bool) {
	if len(steps) == 0 {
		return -1, false
	}
	if rule.GoodputFrac <= 0 || rule.TailFactor <= 0 {
		rule = DefaultKneeRule()
	}
	baseP99 := steps[0].P99Ns
	knee := -1
	for i, s := range steps {
		if s.GoodputQPS < rule.GoodputFrac*s.OfferedQPS {
			break
		}
		// A zero base (all-shed first step has no latency samples)
		// leaves only the goodput criterion.
		if baseP99 > 0 && float64(s.P99Ns) > rule.TailFactor*float64(baseP99) {
			break
		}
		knee = i
	}
	return knee, knee >= 0 && knee < len(steps)-1
}
