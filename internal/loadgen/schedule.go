package loadgen

import (
	"fmt"

	"beacongnn/internal/sim"
	"beacongnn/internal/xrand"
)

// Request is one scheduled unit of offered load: its intended start time
// (fixed before the run — the open-loop contract) and the query class it
// draws, used for Zipf-skewed config/query-node selection and for
// backend result caching.
type Request struct {
	ID    int
	At    sim.Time // intended start, virtual or wall-relative
	Class int
}

// ScheduleSpec describes a full open-loop schedule: the arrival process,
// how many requests to draw, and how classes are selected. The schedule
// is a pure function of the spec — same spec, same bytes.
type ScheduleSpec struct {
	Seed     uint64
	Arrival  Spec
	Requests int

	// Classes is the number of distinct query classes (> 0). Skew > 0
	// selects them Zipf(Classes, Skew)-distributed (class 0 hottest);
	// Skew == 0 selects uniformly.
	Classes int
	Skew    float64
}

// Build materializes the schedule. Arrival times and class picks come
// from two independent forked streams of one seeded source, so changing
// the request count perturbs neither stream's prefix.
func Build(spec ScheduleSpec) ([]Request, error) {
	if spec.Requests <= 0 {
		return nil, fmt.Errorf("loadgen: schedule needs a positive request count, got %d", spec.Requests)
	}
	if spec.Classes <= 0 {
		return nil, fmt.Errorf("loadgen: schedule needs a positive class count, got %d", spec.Classes)
	}
	if spec.Skew < 0 {
		return nil, fmt.Errorf("loadgen: class skew %v must be non-negative", spec.Skew)
	}
	base := xrand.New(spec.Seed)
	arrivalRng, classRng := base.Fork(), base.Fork()
	proc, err := NewProcess(spec.Arrival, arrivalRng)
	if err != nil {
		return nil, err
	}
	reqs := make([]Request, spec.Requests)
	for i := range reqs {
		class := 0
		if spec.Classes > 1 {
			if spec.Skew > 0 {
				class = classRng.Zipf(spec.Classes, spec.Skew)
			} else {
				class = classRng.Intn(spec.Classes)
			}
		}
		reqs[i] = Request{ID: i, At: proc.Next(), Class: class}
	}
	return reqs, nil
}
