package nvme

import (
	"testing"

	"beacongnn/internal/config"
	"beacongnn/internal/sim"
)

func qp(t *testing.T, depth int) (*sim.Kernel, *QueuePair) {
	t.Helper()
	k := sim.New()
	q, err := New(k, config.Default().PCIe, depth)
	if err != nil {
		t.Fatal(err)
	}
	return k, q
}

func TestSubmitCompleteRoundTrip(t *testing.T) {
	k, q := qp(t, 8)
	var deviceGot Command
	var hostDone sim.Time
	q.Device = func(cmd Command) {
		deviceGot = cmd
		q.Complete(func() { hostDone = k.Now() })
	}
	if err := q.Submit(Command{Opcode: OpDGTargets, Bytes: 512, Tag: 7}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if deviceGot.Opcode != OpDGTargets || deviceGot.Tag != 7 {
		t.Fatalf("device got %+v", deviceGot)
	}
	if hostDone <= 0 {
		t.Fatal("completion never reached host")
	}
	// Two link latencies must have elapsed at minimum.
	if hostDone < 2*config.Default().PCIe.Latency {
		t.Fatalf("round trip %v too fast", hostDone)
	}
	s, c, inflight := q.Stats()
	if s != 1 || c != 1 || inflight != 0 {
		t.Fatalf("stats = %d/%d/%d", s, c, inflight)
	}
}

func TestQueueDepthEnforced(t *testing.T) {
	_, q := qp(t, 2)
	q.Device = func(cmd Command) {} // never completes
	if err := q.Submit(Command{}); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(Command{}); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(Command{}); err == nil {
		t.Fatal("over-depth submit accepted")
	}
}

func TestSubmitWithoutDevice(t *testing.T) {
	_, q := qp(t, 2)
	if err := q.Submit(Command{}); err == nil {
		t.Fatal("submit without device accepted")
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(sim.New(), config.Link{Bandwidth: 0}, 4); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := New(sim.New(), config.Default().PCIe, 0); err == nil {
		t.Fatal("zero depth accepted")
	}
}

func TestPCIeBytesHook(t *testing.T) {
	k, q := qp(t, 4)
	total := 0
	q.OnPCIeBytes = func(n int) { total += n }
	q.Device = func(cmd Command) { q.Complete(nil) }
	if err := q.Submit(Command{}); err != nil {
		t.Fatal(err)
	}
	q.TransferData(1000, nil)
	k.Run()
	if total != 64+16+1000 {
		t.Fatalf("link bytes = %d", total)
	}
}

func TestDataTransferTiming(t *testing.T) {
	k := sim.New()
	q, _ := New(k, config.Link{Bandwidth: 1e9, Latency: 100}, 4)
	var at sim.Time
	q.TransferData(4096, func() { at = k.Now() })
	k.Run()
	if at != 4096+100 {
		t.Fatalf("transfer end = %v", at)
	}
}

func TestOpcodeStrings(t *testing.T) {
	if OpDGFlush.String() != "dg_flush" || Opcode(99).String() == "" {
		t.Fatal("opcode strings broken")
	}
}
