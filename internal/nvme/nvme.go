// Package nvme models the host interface: NVMe queue pairs riding a
// PCIe link. Regular reads/writes and BeaconGNN's customized commands
// (Sections IV, VI-A, VI-D) all flow through here: DirectGraph block
// reservation and flushing, per-mini-batch target submission, and the
// offload commands of the intermediate platforms.
//
// Timing model per command: the host writes a submission-queue entry
// and rings the doorbell (PCIe latency), the device fetches the 64-byte
// SQE (PCIe occupancy), optional data moves over the link, and the
// 16-byte completion returns the same way. Host software-stack cost
// (filesystem + driver) is charged separately by the platform because
// it occupies host CPU, not the link.
package nvme

import (
	"fmt"

	"beacongnn/internal/config"
	"beacongnn/internal/sim"
)

// Opcode identifies an NVMe command. The customized opcodes follow
// Section VI-A's ioctl-exposed manipulation interface.
type Opcode uint8

// Command opcodes.
const (
	OpRead          Opcode = iota // regular block read
	OpWrite                       // regular block write
	OpDGReserve                   // reserve DirectGraph blocks (VI-A)
	OpDGFlush                     // flush converted DirectGraph pages (VI-B)
	OpDGTargets                   // submit a mini-batch's target nodes (VI-D)
	OpOffloadSample               // firmware neighbor sampling (SmartSage/BG-1)
	OpOffloadLookup               // feature lookup + compute (GList)
	OpTaskConfig                  // GNN model parameters and sampling config
)

func (o Opcode) String() string {
	names := [...]string{"read", "write", "dg_reserve", "dg_flush", "dg_targets", "offload_sample", "offload_lookup", "task_config"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("opcode(%d)", uint8(o))
}

// Command is one submission-queue entry.
type Command struct {
	Opcode Opcode
	LPA    uint32 // logical address for regular I/O
	Bytes  int    // payload size moved host→device or device→host
	Tag    uint64 // caller correlation id
}

// Sizes of queue entries on the wire.
const (
	sqeBytes = 64
	cqeBytes = 16
)

// QueuePair is one submission/completion queue pair over a PCIe link.
type QueuePair struct {
	k    *sim.Kernel
	pcie *sim.Pipe

	submitted uint64
	completed uint64
	inFlight  int
	depth     int

	// Device is invoked when the device has fetched a command; it must
	// eventually call Complete.
	Device func(cmd Command)

	// OnPCIeBytes, when set, receives link traffic for energy accounting.
	OnPCIeBytes func(n int)
}

// New returns a queue pair over a link with the given queue depth.
func New(k *sim.Kernel, link config.Link, depth int) (*QueuePair, error) {
	if link.Bandwidth <= 0 {
		return nil, fmt.Errorf("nvme: PCIe bandwidth must be positive")
	}
	if depth <= 0 {
		return nil, fmt.Errorf("nvme: queue depth must be positive")
	}
	return &QueuePair{
		k:     k,
		pcie:  sim.NewPipe(k, link.Bandwidth, link.Latency),
		depth: depth,
	}, nil
}

// PCIe exposes the underlying link for bulk data transfers that bypass
// the queue machinery (e.g. streaming feature pages to the host).
func (q *QueuePair) PCIe() *sim.Pipe { return q.pcie }

// SetTracer attaches a request tracer to the PCIe link.
func (q *QueuePair) SetTracer(t sim.Tracer) { q.pcie.SetTracer(t, "nvme.pcie", 0) }

// TransferData moves n payload bytes over the link.
func (q *QueuePair) TransferData(n int, done func()) {
	if q.OnPCIeBytes != nil {
		q.OnPCIeBytes(n)
	}
	q.pcie.Transfer(n, done)
}

// Submit issues a command: doorbell + SQE fetch over the link, then the
// device handler runs. Returns an error when the queue is full (the
// host must throttle, as a real driver would).
func (q *QueuePair) Submit(cmd Command) error {
	if q.Device == nil {
		return fmt.Errorf("nvme: no device attached")
	}
	if q.inFlight >= q.depth {
		return fmt.Errorf("nvme: queue full (depth %d)", q.depth)
	}
	q.inFlight++
	q.submitted++
	if q.OnPCIeBytes != nil {
		q.OnPCIeBytes(sqeBytes)
	}
	q.pcie.Transfer(sqeBytes, func() {
		q.Device(cmd)
	})
	return nil
}

// Complete finishes a command: CQE back over the link, then the host
// callback.
func (q *QueuePair) Complete(done func()) {
	if q.OnPCIeBytes != nil {
		q.OnPCIeBytes(cqeBytes)
	}
	q.pcie.Transfer(cqeBytes, func() {
		q.completed++
		q.inFlight--
		if done != nil {
			done()
		}
	})
}

// Stats returns (submitted, completed, inFlight).
func (q *QueuePair) Stats() (uint64, uint64, int) {
	return q.submitted, q.completed, q.inFlight
}

// Occupancy reports outstanding work on the host interface: link
// transfers in service or queued, plus queue-pair commands still in
// flight — all zero once a run has drained.
func (q *QueuePair) Occupancy() (busy, queued int) {
	busy, queued = q.pcie.Occupancy()
	return busy, queued + q.inFlight
}
