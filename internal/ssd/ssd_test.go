package ssd

import (
	"testing"

	"beacongnn/internal/config"
	"beacongnn/internal/sim"
)

// tinyCfg returns a deliberately small device: 2×2 dies, 8 blocks/die of
// 4 pages → 128 pages total, so GC triggers quickly.
func tinyCfg() config.Config {
	cfg := config.Default()
	cfg.Flash.Channels = 2
	cfg.Flash.DiesPerChannel = 2
	cfg.Flash.BlocksPerDie = 8
	cfg.Flash.PagesPerBlock = 4
	return cfg
}

func newDevice(t *testing.T) (*sim.Kernel, *Device) {
	t.Helper()
	k := sim.New()
	d, err := New(k, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	return k, d
}

func TestWriteReadRoundTrip(t *testing.T) {
	k, d := newDevice(t)
	var wErr, rErr error
	wrote := false
	d.Write(42, func(err error) {
		wErr = err
		wrote = true
		d.Read(42, func(err error) { rErr = err })
	})
	k.Run()
	if !wrote || wErr != nil || rErr != nil {
		t.Fatalf("write/read failed: %v %v", wErr, rErr)
	}
	if lat := k.Now(); lat < 100*sim.Microsecond {
		t.Fatalf("write+read completed implausibly fast: %v", lat)
	}
}

func TestReadUnmappedFails(t *testing.T) {
	k, d := newDevice(t)
	var got error
	d.Read(7, func(err error) { got = err })
	k.Run()
	if got == nil {
		t.Fatal("unmapped read succeeded")
	}
	_, _, reads, misses := d.Stats()
	if reads != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d", reads, misses)
	}
}

func TestOverwritesTriggerGC(t *testing.T) {
	k, d := newDevice(t)
	// 128 pages; hammer 16 LPAs with 200 writes → many invalid pages →
	// GC must run and the device must not fill up.
	var failed error
	var issue func(n int)
	issue = func(n int) {
		if n >= 200 {
			return
		}
		d.Write(uint32(n%16), func(err error) {
			if err != nil && failed == nil {
				failed = err
			}
			issue(n + 1)
		})
	}
	issue(0)
	k.Run()
	if failed != nil {
		t.Fatalf("write failed mid-stream: %v", failed)
	}
	gcRuns, migrated := d.FTL.GCStats()
	if gcRuns == 0 {
		t.Fatal("GC never ran on a churned device")
	}
	if d.WriteAmplification() < 1 {
		t.Fatalf("write amplification = %v", d.WriteAmplification())
	}
	if migrated == 0 {
		// With only 16 live LPAs out of 128 pages, most victims are
		// fully invalid — but across many GC rounds some migration is
		// expected. Tolerate zero only if WA == 1.
		if d.WriteAmplification() > 1 {
			t.Fatal("WA > 1 but no migrations recorded")
		}
	}
	// All 16 LPAs must still read back.
	okReads := 0
	for l := 0; l < 16; l++ {
		d.Read(uint32(l), func(err error) {
			if err == nil {
				okReads++
			}
		})
	}
	k.Run()
	if okReads != 16 {
		t.Fatalf("only %d/16 LPAs readable after GC", okReads)
	}
	if d.FTL.FreeBlocks() < d.GCThreshold-1 {
		t.Fatalf("free blocks = %d after GC", d.FTL.FreeBlocks())
	}
}

func TestGCSparesDirectGraphBlocks(t *testing.T) {
	// Reserve DirectGraph rows first: regular writes and GC must never
	// touch them (Section VI-E isolation).
	k := sim.New()
	cfg := tinyCfg()
	d, err := New(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, count, err := d.FTL.ReserveForPages(8) // 2 rows = 8 blocks... row=4 blocks
	if err != nil {
		t.Fatal(err)
	}
	var failed error
	var issue func(n int)
	issue = func(n int) {
		if n >= 120 {
			return
		}
		d.Write(uint32(n%10), func(err error) {
			if err != nil && failed == nil {
				failed = err
			}
			issue(n + 1)
		})
	}
	issue(0)
	k.Run()
	if failed != nil {
		t.Fatalf("write failed: %v", failed)
	}
	// No mapped LPA may point into the reserved range.
	for l := uint32(0); l < 10; l++ {
		if ppa, ok := d.FTL.Lookup(l); ok {
			if ppa >= first && ppa < first+count {
				t.Fatalf("LPA %d mapped into reserved page %d", l, ppa)
			}
		}
	}
}

func TestDeviceFullErrors(t *testing.T) {
	// Unique LPAs with no overwrites: once every block is consumed and
	// nothing is invalid, GC has no victim and writes must fail cleanly.
	k, d := newDevice(t)
	var firstErr error
	var issue func(n int)
	issue = func(n int) {
		if n >= 140 { // more than 128 pages
			return
		}
		d.Write(uint32(n), func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			issue(n + 1)
		})
	}
	issue(0)
	k.Run()
	if firstErr == nil {
		t.Fatal("overfilling the device did not error")
	}
}
