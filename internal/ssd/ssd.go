// Package ssd composes the substrate models into the regular-I/O face
// of the BeaconGNN device (Section VI-G's "regular-I/O mode"): NVMe
// block reads and writes through the firmware, a log-structured FTL
// with greedy garbage collection, and the same flash backend the GNN
// engine uses. It demonstrates Section VI-E's isolation promise — the
// standard storage functionality remains intact around the pinned
// DirectGraph blocks.
package ssd

import (
	"fmt"

	"beacongnn/internal/config"
	"beacongnn/internal/dram"
	"beacongnn/internal/firmware"
	"beacongnn/internal/flash"
	"beacongnn/internal/ftl"
	"beacongnn/internal/nvme"
	"beacongnn/internal/sim"
)

// Device is a BeaconGNN SSD in regular-I/O mode.
type Device struct {
	k       *sim.Kernel
	cfg     config.Config
	backend *flash.Backend
	fw      *firmware.Processor
	mem     *dram.DRAM
	qp      *nvme.QueuePair
	FTL     *ftl.FTL

	// GCThreshold is the free-block low-water mark that triggers
	// foreground GC before a write (default 2).
	GCThreshold int

	hostWrites uint64
	flashProgs uint64 // programs incl. GC migrations
	reads      uint64
	readMisses uint64
}

// New builds a device on the kernel.
func New(k *sim.Kernel, cfg config.Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	backend, err := flash.New(k, cfg.Flash, 0)
	if err != nil {
		return nil, err
	}
	fw, err := firmware.NewProcessor(k, cfg.Firmware)
	if err != nil {
		return nil, err
	}
	mem, err := dram.New(k, cfg.DRAM)
	if err != nil {
		return nil, err
	}
	qp, err := nvme.New(k, cfg.PCIe, 256)
	if err != nil {
		return nil, err
	}
	qp.Device = func(nvme.Command) {}
	return &Device{
		k: k, cfg: cfg, backend: backend, fw: fw, mem: mem, qp: qp,
		FTL:         ftl.New(cfg.Flash),
		GCThreshold: 2,
	}, nil
}

// Kernel returns the simulation kernel driving the device.
func (d *Device) Kernel() *sim.Kernel { return d.k }

// Stats reports (hostWrites, flashPrograms, reads, readMisses); flash
// programs exceeding host writes is GC write amplification.
func (d *Device) Stats() (uint64, uint64, uint64, uint64) {
	return d.hostWrites, d.flashProgs, d.reads, d.readMisses
}

// WriteAmplification returns flash programs per host write.
func (d *Device) WriteAmplification() float64 {
	if d.hostWrites == 0 {
		return 0
	}
	return float64(d.flashProgs) / float64(d.hostWrites)
}

// Write stores one logical page: PCIe data-in, firmware processing,
// (foreground GC if space is low), allocation, flash program.
func (d *Device) Write(lpa uint32, done func(err error)) {
	d.hostWrites++
	d.qp.TransferData(d.cfg.Flash.PageSize, func() {
		cost := d.cfg.Firmware.PollCost + d.cfg.Firmware.TranslateCost + d.cfg.Firmware.FlashCmdCost
		d.fw.Do(cost, func() {
			d.maybeGC(func(gcErr error) {
				if gcErr != nil {
					done(gcErr)
					return
				}
				ppa, err := d.FTL.WriteLPA(lpa)
				if err != nil {
					done(err)
					return
				}
				d.mem.Write(d.cfg.Flash.PageSize, func() {
					d.flashProgs++
					d.backend.ProgramPage(ppa, func() { done(nil) })
				})
			})
		})
	})
}

// Read fetches one logical page back to the host; err reports unmapped
// addresses.
func (d *Device) Read(lpa uint32, done func(err error)) {
	d.reads++
	cost := d.cfg.Firmware.PollCost + d.cfg.Firmware.TranslateCost + d.cfg.Firmware.FlashCmdCost
	d.fw.Do(cost, func() {
		ppa, ok := d.FTL.Lookup(lpa)
		if !ok {
			d.readMisses++
			done(fmt.Errorf("ssd: LPA %d not mapped", lpa))
			return
		}
		d.backend.ReadPage(ppa, 0, nil, func() {
			d.backend.Transfer(ppa, d.cfg.Flash.PageSize, func() {
				d.mem.Read(d.cfg.Flash.PageSize, func() {
					d.qp.TransferData(d.cfg.Flash.PageSize, func() { done(nil) })
				})
			})
		})
	})
}

// maybeGC reclaims blocks until the free pool is back above threshold.
func (d *Device) maybeGC(done func(err error)) {
	if !d.FTL.NeedsGC(d.GCThreshold) {
		done(nil)
		return
	}
	v, err := d.FTL.CollectVictim()
	if err != nil {
		done(err)
		return
	}
	if len(v.Valid) >= d.cfg.Flash.PagesPerBlock {
		// Even the best victim is fully valid: reclaiming it frees no
		// space (migration consumes as much as the erase returns). The
		// device is genuinely full of live data.
		done(fmt.Errorf("ssd: device full of valid data (best victim has %d live pages)", len(v.Valid)))
		return
	}
	d.migrate(v, 0, func(err error) {
		if err != nil {
			done(err)
			return
		}
		d.backend.EraseBlock(v.FirstPage, func() {
			d.FTL.CommitVictim(v)
			d.maybeGC(done) // keep going until above threshold
		})
	})
}

// migrate moves the victim's live pages one by one: read old, remap,
// program new.
func (d *Device) migrate(v *ftl.Victim, i int, done func(err error)) {
	if i >= len(v.Valid) {
		done(nil)
		return
	}
	pair := v.Valid[i]
	d.backend.ReadPage(pair.PPA, 0, nil, func() {
		newPPA, err := d.FTL.WriteLPA(pair.LPA)
		if err != nil {
			done(err)
			return
		}
		d.flashProgs++
		d.backend.ProgramPage(newPPA, func() {
			d.migrate(v, i+1, done)
		})
	})
}
