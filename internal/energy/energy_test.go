package energy

import (
	"math"
	"testing"

	"beacongnn/internal/config"
	"beacongnn/internal/sim"
)

func meter() *Meter { return NewMeter(config.Default().Energy) }

func TestDepositors(t *testing.T) {
	m := meter()
	cfg := config.Default().Energy
	m.FlashReadPage()
	m.FlashSampleOp()
	m.ChannelBytes(1000)
	m.RouterCmd()
	m.DRAMBytes(2000)
	m.PCIeBytes(500)
	m.HostDRAMBytes(300)
	m.CoreBusy(sim.Second)
	m.HostBusy(sim.Second / 2)
	m.AccelMACs(1e6, 1e3)

	checks := []struct {
		c    Component
		want float64
	}{
		{FlashRead, cfg.FlashReadPage},
		{FlashSample, cfg.FlashSampleOp},
		{ChannelXfer, 1000 * cfg.ChannelPerByte},
		{Router, cfg.RouterPerCmd},
		{SSDDRAM, 2000 * cfg.DRAMPerByte},
		{PCIe, 500 * cfg.PCIePerByte},
		{HostDRAM, 300 * cfg.HostDRAMPerByte},
		{EmbeddedCore, cfg.CorePerSecond},
		{HostCPU, 0.5 * cfg.HostCPUPerSecond},
		{AccelCompute, 1e6*cfg.AccelPerMAC + 1e3*cfg.AccelSRAMPerByte},
	}
	for _, c := range checks {
		if got := m.Of(c.c); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("%s = %v, want %v", c.c, got, c.want)
		}
	}
}

func TestTotalAndBreakdown(t *testing.T) {
	m := meter()
	m.Add(FlashRead, 3)
	m.Add(PCIe, 1)
	if m.Total() != 4 {
		t.Fatalf("total = %v", m.Total())
	}
	bd := m.Breakdown()
	if bd[0].Component != FlashRead || math.Abs(bd[0].Fraction-0.75) > 1e-12 {
		t.Fatalf("breakdown[0] = %+v", bd[0])
	}
}

func TestGroupFractions(t *testing.T) {
	m := meter()
	m.Add(FlashRead, 2)
	m.Add(ChannelXfer, 2)
	m.Add(SSDDRAM, 3)
	m.Add(PCIe, 3)
	g := m.GroupFractions()
	if math.Abs(g["flash"]-0.2) > 1e-12 || math.Abs(g["transfer"]-0.5) > 1e-12 || math.Abs(g["external"]-0.3) > 1e-12 {
		t.Fatalf("groups = %v", g)
	}
}

func TestStaticAndAvgPower(t *testing.T) {
	m := meter()
	m.FinishStatic(2 * sim.Second)
	want := 2 * config.Default().Energy.StaticWatts
	if math.Abs(m.Of(Static)-want) > 1e-12 {
		t.Fatalf("static = %v, want %v", m.Of(Static), want)
	}
	if math.Abs(m.AvgPower(2*sim.Second)-config.Default().Energy.StaticWatts) > 1e-12 {
		t.Fatalf("avg power = %v", m.AvgPower(2*sim.Second))
	}
	if m.AvgPower(0) != 0 {
		t.Fatal("zero-time power should be 0")
	}
}

func TestStringRenders(t *testing.T) {
	m := meter()
	m.Add(FlashRead, 1)
	if s := m.String(); len(s) == 0 {
		t.Fatal("empty render")
	}
}
