// Package energy accumulates per-component energy during a simulation,
// reproducing the paper's Figure 19 breakdown and efficiency metrics.
// Constants live in config.Energy; this package only does bookkeeping.
package energy

import (
	"fmt"
	"sort"
	"strings"

	"beacongnn/internal/config"
	"beacongnn/internal/sim"
)

// Component identifies an energy bucket. The grouping follows Figure 19:
// flash backend, SSD frontend (DRAM + controller), accelerator compute,
// and external transfer (PCIe + host).
type Component string

// Energy buckets.
const (
	FlashRead    Component = "flash_read"    // page senses
	FlashRetry   Component = "flash_retry"   // extra Vref-shift read-retry senses
	FlashSample  Component = "flash_sample"  // on-die sampler ops
	ChannelXfer  Component = "channel_xfer"  // flash channel bus
	Router       Component = "router"        // channel-level command routing
	SSDDRAM      Component = "ssd_dram"      // SSD-internal DRAM traffic
	EmbeddedCore Component = "embedded_core" // firmware processing
	AccelCompute Component = "accel"         // spatial accelerator / TPU
	PCIe         Component = "pcie"          // external bus transfer
	HostCPU      Component = "host_cpu"      // host-side processing
	HostDRAM     Component = "host_dram"     // host memory traffic
	Static       Component = "static"        // controller + DRAM background
)

// Meter accumulates joules per component.
type Meter struct {
	cfg    config.Energy
	joules map[Component]float64

	// OnAdd, when set, observes every deposit before it lands in a
	// bucket. The invariant checker uses it to keep a shadow ledger and
	// prove the reported total equals the sum of per-event charges. Nil
	// (the default) costs one pointer check per deposit.
	OnAdd func(c Component, j float64)
}

// NewMeter returns a meter using the given constants.
func NewMeter(cfg config.Energy) *Meter {
	return &Meter{cfg: cfg, joules: make(map[Component]float64)}
}

// Add deposits j joules into the component bucket.
func (m *Meter) Add(c Component, j float64) {
	if m.OnAdd != nil {
		m.OnAdd(c, j)
	}
	m.joules[c] += j
}

// Convenience depositors translating events into joules.

// FlashReadPage records one page sense.
func (m *Meter) FlashReadPage() { m.Add(FlashRead, m.cfg.FlashReadPage) }

// FlashRetrySenses records n extra Vref-shift read-retry senses.
func (m *Meter) FlashRetrySenses(n int) { m.Add(FlashRetry, float64(n)*m.cfg.FlashRetrySense) }

// FlashSampleOp records one on-die sampler invocation.
func (m *Meter) FlashSampleOp() { m.Add(FlashSample, m.cfg.FlashSampleOp) }

// ChannelBytes records n bytes on a flash channel bus.
func (m *Meter) ChannelBytes(n int) { m.Add(ChannelXfer, float64(n)*m.cfg.ChannelPerByte) }

// RouterCmd records one routed sampling command.
func (m *Meter) RouterCmd() { m.Add(Router, m.cfg.RouterPerCmd) }

// DRAMBytes records n bytes of SSD DRAM traffic.
func (m *Meter) DRAMBytes(n int) { m.Add(SSDDRAM, float64(n)*m.cfg.DRAMPerByte) }

// PCIeBytes records n bytes over PCIe.
func (m *Meter) PCIeBytes(n int) { m.Add(PCIe, float64(n)*m.cfg.PCIePerByte) }

// HostDRAMBytes records n bytes through host memory.
func (m *Meter) HostDRAMBytes(n int) { m.Add(HostDRAM, float64(n)*m.cfg.HostDRAMPerByte) }

// CoreBusy records t of busy time on one embedded core.
func (m *Meter) CoreBusy(t sim.Time) { m.Add(EmbeddedCore, t.Seconds()*m.cfg.CorePerSecond) }

// HostBusy records t of busy host-CPU time.
func (m *Meter) HostBusy(t sim.Time) { m.Add(HostCPU, t.Seconds()*m.cfg.HostCPUPerSecond) }

// AccelMACs records n multiply-accumulates plus b bytes of SRAM traffic.
func (m *Meter) AccelMACs(n int64, b int64) {
	m.Add(AccelCompute, float64(n)*m.cfg.AccelPerMAC+float64(b)*m.cfg.AccelSRAMPerByte)
}

// FinishStatic charges background power for the elapsed simulated time.
func (m *Meter) FinishStatic(elapsed sim.Time) {
	m.Add(Static, elapsed.Seconds()*m.cfg.StaticWatts)
}

// sortedComponents returns the occupied buckets in lexicographic order.
// Every aggregation below iterates this order, never the map directly:
// float addition is not associative, so summing in Go's randomized map
// order would make totals (and every fraction derived from them) differ
// at the last ulp from run to run.
func (m *Meter) sortedComponents() []Component {
	out := make([]Component, 0, len(m.joules))
	for c := range m.joules {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Total returns the summed energy in joules.
func (m *Meter) Total() float64 {
	t := 0.0
	for _, c := range m.sortedComponents() {
		t += m.joules[c]
	}
	return t
}

// Of returns one bucket's joules.
func (m *Meter) Of(c Component) float64 { return m.joules[c] }

// Breakdown returns components sorted by descending energy.
func (m *Meter) Breakdown() []Share {
	total := m.Total()
	out := make([]Share, 0, len(m.joules))
	for c, j := range m.joules {
		s := Share{Component: c, Joules: j}
		if total > 0 {
			s.Fraction = j / total
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Joules != out[j].Joules {
			return out[i].Joules > out[j].Joules
		}
		return out[i].Component < out[j].Component
	})
	return out
}

// Share is one component's portion of total energy.
type Share struct {
	Component Component
	Joules    float64
	Fraction  float64
}

// GroupFractions aggregates buckets into the paper's Figure 19 groups —
// flash senses, internal page/result movement ("transfer"), controller
// frontend, accelerator compute, and external (PCIe + host) traffic —
// and returns each group's share of total energy.
func (m *Meter) GroupFractions() map[string]float64 {
	groups := map[Component]string{
		FlashRead: "flash", FlashRetry: "flash", FlashSample: "flash",
		ChannelXfer: "transfer", Router: "transfer", SSDDRAM: "transfer",
		EmbeddedCore: "frontend", Static: "frontend",
		AccelCompute: "accel",
		PCIe:         "external", HostCPU: "external", HostDRAM: "external",
	}
	total := m.Total()
	out := map[string]float64{}
	if total == 0 {
		return out
	}
	for _, c := range m.sortedComponents() {
		out[groups[c]] += m.joules[c] / total
	}
	return out
}

// AvgPower returns the mean power over the elapsed time, in watts.
func (m *Meter) AvgPower(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return m.Total() / elapsed.Seconds()
}

// String renders the breakdown for reports.
func (m *Meter) String() string {
	var b strings.Builder
	for _, s := range m.Breakdown() {
		fmt.Fprintf(&b, "%-14s %10.3f mJ  %5.1f%%\n", s.Component, s.Joules*1e3, s.Fraction*100)
	}
	return b.String()
}
