package dataset

import (
	"testing"

	"beacongnn/internal/graph"
)

func TestAllHasFivePaperDatasets(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("got %d datasets, want 5", len(all))
	}
	want := []string{"reddit", "amazon", "movielens", "OGBN", "PPI"}
	for i, n := range want {
		if all[i].Name != n {
			t.Errorf("dataset %d = %s, want %s", i, all[i].Name, n)
		}
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("amazon")
	if err != nil || d.Name != "amazon" {
		t.Fatalf("ByName(amazon) = %+v, %v", d, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRawSizesMatchTableIV(t *testing.T) {
	// The reconstructed node counts must reproduce Table IV's raw GB
	// within 5 %.
	for _, d := range All() {
		gotGB := float64(d.FullNodes) * d.RawBytesPerNode() / 1e9
		ratio := gotGB / d.RawGB
		if ratio < 0.95 || ratio > 1.05 {
			t.Errorf("%s: reconstructed raw %.1f GB vs Table IV %.1f GB", d.Name, gotGB, d.RawGB)
		}
	}
}

func TestOGBNDegreeMatchesPaper(t *testing.T) {
	d, _ := ByName("OGBN")
	if d.AvgDegree != 28 {
		t.Fatalf("OGBN avg degree = %v; §VII-F states 28", d.AvgDegree)
	}
}

func TestMaterializeStatistics(t *testing.T) {
	d, _ := ByName("amazon")
	inst, err := Materialize(d, 5000, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Graph.NumNodes() != 5000 {
		t.Fatalf("nodes = %d", inst.Graph.NumNodes())
	}
	if inst.Graph.FeatureDim() != d.FeatureDim {
		t.Fatalf("dim = %d", inst.Graph.FeatureDim())
	}
	avg := inst.Graph.AvgDegree()
	if avg < d.AvgDegree*0.7 || avg > d.AvgDegree*1.3 {
		t.Fatalf("avg degree %v, want ≈%v", avg, d.AvgDegree)
	}
	if inst.Build == nil || len(inst.Build.Pages) == 0 {
		t.Fatal("no DirectGraph build")
	}
}

func TestMaterializeDefaultScale(t *testing.T) {
	d, _ := ByName("OGBN")
	inst, err := Materialize(d, 0, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Graph.NumNodes() != 20000 {
		t.Fatalf("default scale = %d", inst.Graph.NumNodes())
	}
}

func TestMaterializeAllDatasetsSmall(t *testing.T) {
	for _, d := range All() {
		inst, err := Materialize(d, 2000, 4096, 3)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		// Primary addresses must decode for a few nodes.
		for v := 0; v < 10; v++ {
			if _, err := inst.Build.ReadSection(inst.Build.NodeAddr(graph.NodeID(v))); err != nil {
				t.Fatalf("%s node %d: %v", d.Name, v, err)
			}
		}
	}
}

func TestFullScaleInflationOrdering(t *testing.T) {
	// Table IV: OGBN inflates far more than every other dataset; the
	// others stay modest. This is the shape check; exact values are in
	// EXPERIMENTS.md.
	ratios := map[string]float64{}
	for _, d := range All() {
		s, err := FullScaleInflation(d, 4096, 50_000, 7)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		ratios[d.Name] = s.InflationRatio()
	}
	for name, r := range ratios {
		if name == "OGBN" {
			continue
		}
		if r >= ratios["OGBN"] {
			t.Errorf("%s inflation %.3f ≥ OGBN %.3f; Table IV shape broken", name, r, ratios["OGBN"])
		}
		// Paper reports ≤ 4.1 % for these; our packer lands ≤ ~21 %
		// (see EXPERIMENTS.md for the per-dataset gap discussion).
		if r > 0.25 {
			t.Errorf("%s inflation %.3f, want well below OGBN's ~32%%", name, r)
		}
	}
	if ratios["OGBN"] < 0.25 || ratios["OGBN"] > 0.60 {
		t.Errorf("OGBN inflation %.3f, paper reports 32.3%%", ratios["OGBN"])
	}
}

func TestFullScaleInflationDeterministic(t *testing.T) {
	d, _ := ByName("PPI")
	a, err := FullScaleInflation(d, 4096, 20_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := FullScaleInflation(d, 4096, 20_000, 5)
	if a != b {
		t.Fatal("inflation accounting not deterministic")
	}
}
