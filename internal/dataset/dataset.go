// Package dataset defines the paper's five benchmark workloads (Table
// III) as statistical descriptors plus scaled-down materializations.
//
// The provided paper text contains Table III's caption and Table IV's
// raw sizes but not Table III's cells, so each descriptor below is
// reconstructed from (a) Table IV raw volumes, (b) the paper's
// qualitative statements — reddit and PPI have high-dimensional
// features, movielens and OGBN have short features, OGBN's average
// degree is 28, amazon's degree and feature length are "representative
// of common large-scale GNNs" — and (c) the published statistics of the
// underlying PyG datasets before SmartSage-style scaling. The full-scale
// node counts are chosen so that avgDegree·4 B + featureDim·2 B per node
// reproduces Table IV's raw GB. See DESIGN.md §1.
//
// Simulation behaviour depends on degree distribution, feature size and
// address spread — not on total node count — so timing runs materialize
// a scaled-down instance with identical per-node statistics, while
// Table IV inflation is computed on full-scale degree sequences via the
// layout-only builder.
package dataset

import (
	"fmt"

	"beacongnn/internal/directgraph"
	"beacongnn/internal/graph"
)

// Desc describes one benchmark dataset at full scale.
type Desc struct {
	Name       string
	FullNodes  int     // full-scale node count (reconstructed)
	AvgDegree  float64 // mean out-degree
	MaxDegree  int     // degree cap used when generating
	FeatureDim int     // FP16 feature length
	PowerLaw   float64 // degree-distribution shape (0 = uniform)
	RawGB      float64 // Table IV raw volume, for reporting
}

// RawBytesPerNode returns the raw storage cost of one node: neighbor
// ids (4 B each) plus the FP16 feature vector.
func (d Desc) RawBytesPerNode() float64 { return d.AvgDegree*4 + float64(d.FeatureDim)*2 }

// All returns the five paper datasets in Figure 14 order.
func All() []Desc {
	return []Desc{
		// reddit: high degree, high-dimensional (602) features.
		{Name: "reddit", FullNodes: 76_500_000, AvgDegree: 492, MaxDegree: 20000, FeatureDim: 602, PowerLaw: 2.0, RawGB: 242.6},
		// amazon: "representative" degree and feature length.
		{Name: "amazon", FullNodes: 496_000_000, AvgDegree: 100, MaxDegree: 8000, FeatureDim: 200, PowerLaw: 2.0, RawGB: 397.2},
		// movielens: very high degree (rating bipartite), short features.
		{Name: "movielens", FullNodes: 107_500_000, AvgDegree: 500, MaxDegree: 30000, FeatureDim: 32, PowerLaw: 1.8, RawGB: 221.8},
		// OGBN: low degree 28 (stated in §VII-F), short features; its
		// short sections drive the 32.3 % DirectGraph inflation.
		{Name: "OGBN", FullNodes: 156_000_000, AvgDegree: 28, MaxDegree: 2000, FeatureDim: 40, PowerLaw: 2.2, RawGB: 30.02},
		// PPI: moderate degree, high-dimensional features.
		{Name: "PPI", FullNodes: 32_700_000, AvgDegree: 28, MaxDegree: 2000, FeatureDim: 512, PowerLaw: 2.2, RawGB: 37.1},
	}
}

// ByName returns the named dataset descriptor.
func ByName(name string) (Desc, error) {
	for _, d := range All() {
		if d.Name == name {
			return d, nil
		}
	}
	return Desc{}, fmt.Errorf("dataset: unknown dataset %q", name)
}

// Instance is a materialized, scaled-down dataset ready for simulation:
// the graph plus its DirectGraph build.
type Instance struct {
	Desc  Desc
	Graph *graph.Graph
	Build *directgraph.Build
}

// Materialize generates a scaled instance with the descriptor's per-node
// statistics and converts it to DirectGraph with the given page size.
// nodes == 0 uses a default simulation scale of 20 000 nodes.
func Materialize(d Desc, nodes, pageSize int, seed uint64) (*Instance, error) {
	if nodes == 0 {
		nodes = 20_000
	}
	maxDeg := d.MaxDegree
	if maxDeg >= nodes {
		maxDeg = nodes - 1
	}
	g, err := graph.Generate(graph.GenSpec{
		Nodes:      nodes,
		AvgDegree:  d.AvgDegree,
		MaxDegree:  maxDeg,
		FeatureDim: d.FeatureDim,
		PowerLaw:   d.PowerLaw,
		Seed:       seed,
	})
	if err != nil {
		return nil, fmt.Errorf("dataset %s: %w", d.Name, err)
	}
	b, err := directgraph.BuildGraph(
		directgraph.Layout{PageSize: pageSize, FeatureDim: d.FeatureDim},
		g, &directgraph.SeqAllocator{},
	)
	if err != nil {
		return nil, fmt.Errorf("dataset %s: %w", d.Name, err)
	}
	return &Instance{Desc: d, Graph: g, Build: b}, nil
}

// FullScaleInflation computes Table IV's inflation ratio for the dataset
// by running the layout-only builder over a degree sequence with the
// full-scale distribution. sampleNodes bounds the sequence length (the
// ratio converges quickly; 200k nodes is plenty); 0 uses 200 000.
func FullScaleInflation(d Desc, pageSize, sampleNodes int, seed uint64) (directgraph.Stats, error) {
	if sampleNodes == 0 {
		sampleNodes = 200_000
	}
	n := sampleNodes
	if n > d.FullNodes {
		n = d.FullNodes
	}
	degs, err := graph.DegreeSequence(graph.GenSpec{
		Nodes:     n,
		AvgDegree: d.AvgDegree,
		MaxDegree: d.MaxDegree,
		PowerLaw:  d.PowerLaw,
		Seed:      seed,
	})
	if err != nil {
		return directgraph.Stats{}, err
	}
	b, err := directgraph.BuildLayout(
		directgraph.Layout{PageSize: pageSize, FeatureDim: d.FeatureDim},
		degs, &directgraph.SeqAllocator{},
	)
	if err != nil {
		return directgraph.Stats{}, err
	}
	return b.Stats, nil
}
