package sampler

import (
	"encoding/binary"
	"fmt"

	"beacongnn/internal/directgraph"
)

// Wire encodings of the two customized ONFI commands and the sampling
// result (Section VI-C, Fig. 13). Data rides the existing flash data
// bus, so everything is byte-serialized; the channel-level parser and
// die control logic operate on these frames.
//
//	Global configuration (8 bytes):
//	    [0]   hops
//	    [1]   fanout
//	    [2:4] feature dim (uint16 LE)
//	    [4]   flags (bit 0: disable coalescing — ablation)
//	    [5:8] reserved
//
//	Sampling command (16 bytes = EncodedBytes):
//	    [0:4]   section address
//	    [4]     hop
//	    [5]     flags (bit 0: secondary)
//	    [6:8]   sample count (uint16 LE)
//	    [8:10]  batch id (uint16 LE)
//	    [10:12] target id low bits (uint16 LE)
//	    [12:16] parent node id (uint32 LE)
//
//	Sampling result frame (16-byte header = ResultHeaderBytes):
//	    [0:4]   node id
//	    [4:6]   follow-up command count (uint16 LE)
//	    [6:8]   feature length in FP16 elements (uint16 LE)
//	    [8]     hop
//	    [9]     status (0 = ok)
//	    [10:16] reserved
//	followed by count × 16-byte commands, then the FP16 feature bits.

// MarshalConfig encodes the global GNN configuration command payload.
func MarshalConfig(c Config) ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.Hops > 255 || c.Fanout > 255 || c.FeatureDim > 65535 {
		return nil, fmt.Errorf("sampler: config out of wire range: %+v", c)
	}
	buf := make([]byte, 8)
	buf[0] = byte(c.Hops)
	buf[1] = byte(c.Fanout)
	binary.LittleEndian.PutUint16(buf[2:], uint16(c.FeatureDim))
	if c.NoCoalesce {
		buf[4] |= 1
	}
	return buf, nil
}

// UnmarshalConfig decodes a global configuration payload.
func UnmarshalConfig(buf []byte) (Config, error) {
	if len(buf) != 8 {
		return Config{}, fmt.Errorf("sampler: config frame is %d bytes, want 8", len(buf))
	}
	c := Config{
		Hops:       int(buf[0]),
		Fanout:     int(buf[1]),
		FeatureDim: int(binary.LittleEndian.Uint16(buf[2:])),
		NoCoalesce: buf[4]&1 != 0,
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// MarshalCommand encodes one sampling command. The simulation-only
// Created field is not part of the wire format and is dropped.
func MarshalCommand(c Command) ([]byte, error) {
	switch {
	case c.Hop < 0 || c.Hop > 255:
		return nil, fmt.Errorf("sampler: hop %d out of wire range", c.Hop)
	case c.SampleCount < 0 || c.SampleCount > 65535:
		return nil, fmt.Errorf("sampler: sample count %d out of wire range", c.SampleCount)
	case c.Batch < 0 || c.Batch > 65535:
		return nil, fmt.Errorf("sampler: batch %d out of wire range", c.Batch)
	case c.Target < 0:
		return nil, fmt.Errorf("sampler: negative target %d", c.Target)
	}
	buf := make([]byte, EncodedBytes)
	binary.LittleEndian.PutUint32(buf[0:], uint32(c.Addr))
	buf[4] = byte(c.Hop)
	if c.Secondary {
		buf[5] |= 1
	}
	binary.LittleEndian.PutUint16(buf[6:], uint16(c.SampleCount))
	binary.LittleEndian.PutUint16(buf[8:], uint16(c.Batch))
	binary.LittleEndian.PutUint16(buf[10:], uint16(uint32(c.Target)&0xFFFF))
	binary.LittleEndian.PutUint32(buf[12:], c.ParentNode)
	return buf, nil
}

// UnmarshalCommand decodes one sampling command frame.
func UnmarshalCommand(buf []byte) (Command, error) {
	if len(buf) != EncodedBytes {
		return Command{}, fmt.Errorf("sampler: command frame is %d bytes, want %d", len(buf), EncodedBytes)
	}
	return Command{
		Addr:        directgraph.Addr(binary.LittleEndian.Uint32(buf[0:])),
		Hop:         int(buf[4]),
		Secondary:   buf[5]&1 != 0,
		SampleCount: int(binary.LittleEndian.Uint16(buf[6:])),
		Batch:       int32(binary.LittleEndian.Uint16(buf[8:])),
		Target:      int32(binary.LittleEndian.Uint16(buf[10:])),
		ParentNode:  binary.LittleEndian.Uint32(buf[12:]),
	}, nil
}

// MarshalResult frames a sampling result for the channel bus. Its
// length equals Result.BusBytes(), keeping the timing model and the
// wire format consistent by construction.
func MarshalResult(r *Result) ([]byte, error) {
	if len(r.Commands) > 65535 || len(r.FeatureBits) > 65535 {
		return nil, fmt.Errorf("sampler: result too large for frame header")
	}
	buf := make([]byte, ResultHeaderBytes, r.BusBytes())
	binary.LittleEndian.PutUint32(buf[0:], r.Node)
	binary.LittleEndian.PutUint16(buf[4:], uint16(len(r.Commands)))
	binary.LittleEndian.PutUint16(buf[6:], uint16(len(r.FeatureBits)))
	if r.Hop < 0 || r.Hop > 255 {
		return nil, fmt.Errorf("sampler: result hop %d out of wire range", r.Hop)
	}
	buf[8] = byte(r.Hop)
	for _, c := range r.Commands {
		enc, err := MarshalCommand(c)
		if err != nil {
			return nil, err
		}
		buf = append(buf, enc...)
	}
	for _, fb := range r.FeatureBits {
		var two [2]byte
		binary.LittleEndian.PutUint16(two[:], fb)
		buf = append(buf, two[:]...)
	}
	return buf, nil
}

// UnmarshalResult parses a result frame — the data-stream parser's job
// in the channel router (Section V-B): classify the payload into new
// sampling commands and feature data.
func UnmarshalResult(buf []byte) (*Result, error) {
	if len(buf) < ResultHeaderBytes {
		return nil, fmt.Errorf("sampler: result frame too short (%d)", len(buf))
	}
	r := &Result{
		Node: binary.LittleEndian.Uint32(buf[0:]),
		Hop:  int(buf[8]),
	}
	nCmd := int(binary.LittleEndian.Uint16(buf[4:]))
	nFeat := int(binary.LittleEndian.Uint16(buf[6:]))
	if buf[9] != 0 {
		return nil, fmt.Errorf("sampler: result status %d", buf[9])
	}
	need := ResultHeaderBytes + nCmd*EncodedBytes + nFeat*2
	if len(buf) != need {
		return nil, fmt.Errorf("sampler: result frame is %d bytes, header implies %d", len(buf), need)
	}
	off := ResultHeaderBytes
	for i := 0; i < nCmd; i++ {
		c, err := UnmarshalCommand(buf[off : off+EncodedBytes])
		if err != nil {
			return nil, err
		}
		r.Commands = append(r.Commands, c)
		off += EncodedBytes
	}
	if nFeat > 0 {
		r.FeatureBits = make([]uint16, nFeat)
		for i := range r.FeatureBits {
			r.FeatureBits[i] = binary.LittleEndian.Uint16(buf[off:])
			off += 2
		}
	}
	return r, nil
}
