// Package sampler implements the die-level sampler microarchitecture of
// Section V-A (Figure 11): a section iterator, vector retriever, node
// sampler and command generator that execute inside each flash die's
// control logic, operating on the raw bytes of a DirectGraph page held
// in the die's cache register.
//
// The sampler is functional, not just a timing stub: it decodes real
// page bytes, draws TRNG randomness, and emits the follow-up sampling
// commands that stream through the backend. Commands aimed at the same
// secondary section coalesce into one read (Section V-A), and malformed
// sections abort with an error, which the firmware maps to the security
// behaviour of Section VI-E.
package sampler

import (
	"fmt"

	"beacongnn/internal/directgraph"
	"beacongnn/internal/sim"
	"beacongnn/internal/xrand"
)

// Config mirrors the global GNN configuration command (Fig. 13): the
// per-die registers programmed once before a task starts.
type Config struct {
	Hops       int  // total sampling hops
	Fanout     int  // samples per node per hop
	FeatureDim int  // FP16 feature length
	NoCoalesce bool // ablation: one command per secondary draw
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Hops <= 0 || c.Fanout <= 0 || c.FeatureDim < 0 {
		return fmt.Errorf("sampler: bad config %+v", c)
	}
	return nil
}

// Command is one sampling command (Fig. 13's runtime parameters): which
// section to read, the hop of the node it belongs to, and how many
// neighbors to sample there. Batch/target identifiers ride along so the
// frontend can reconstruct subgraphs.
type Command struct {
	Addr        directgraph.Addr
	Hop         int  // depth of the node being read (target = 0)
	SampleCount int  // coalesced sample draws (secondary sections); 0 = default fanout
	Secondary   bool // true when Addr names a secondary section
	Target      int32
	Batch       int32
	ParentNode  uint32 // graph node id of the sampled node's parent (bookkeeping)

	// Created is simulation instrumentation, not protocol state: the
	// simulated time the command's address became available at the
	// frontend, the start of its Figure-17 lifetime.
	Created sim.Time
}

// EncodedBytes is the on-bus size of one sampling command: 4 B address,
// 2 B hop/flags, 2 B count, 4 B target/batch metadata, 4 B parent.
const EncodedBytes = 16

// ResultHeaderBytes is the fixed framing of a sampling result on the
// channel bus (node id, counts, status).
const ResultHeaderBytes = 16

// Result is what leaves the die after executing one command.
type Result struct {
	Node        uint32           // graph node the section belongs to
	Commands    []Command        // follow-up sampling commands (coalesced)
	FeatureBits []uint16         // retrieved feature vector (primary sections)
	SampledIdx  []int            // raw sampled neighbor indices (diagnostics)
	Addr        directgraph.Addr // echo of the executed command's address
	Hop         int
}

// BusBytes returns the result's channel-bus footprint — the quantity
// that replaces full-page transfer in BG-SP and later designs.
func (r *Result) BusBytes() int {
	return ResultHeaderBytes + len(r.Commands)*EncodedBytes + len(r.FeatureBits)*2
}

// Execute runs one sampling command against a page image, drawing
// randomness from the die's TRNG. The layout must match the DirectGraph
// the page came from.
func Execute(l directgraph.Layout, page []byte, cmd Command, cfg Config, trng *xrand.Source) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Section iterator: walk the page to the addressed section.
	sec, err := directgraph.FindSection(l, page, l.Section(cmd.Addr))
	if err != nil {
		return nil, fmt.Errorf("sampler: %w", err)
	}
	return ExecuteDecoded(l, sec, cmd, cfg, trng)
}

// ExecuteDecoded is Execute with the section-iterator walk already done:
// callers that cache decoded pages (the simulator's per-run section
// cache) pass the section directly. Behaviour is identical to Execute on
// the same section.
func ExecuteDecoded(l directgraph.Layout, sec *directgraph.Section, cmd Command, cfg Config, trng *xrand.Source) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Node: sec.NodeID, Addr: cmd.Addr, Hop: cmd.Hop}
	switch {
	case cmd.Secondary:
		if sec.Type != directgraph.SectionTypeSecondary {
			return nil, fmt.Errorf("sampler: %w: expected secondary at %#x", directgraph.ErrBadSectionType, uint32(cmd.Addr))
		}
		if cmd.SampleCount <= 0 {
			return nil, fmt.Errorf("sampler: secondary command with count %d", cmd.SampleCount)
		}
		// Node sampler, secondary mode: draw only within this section.
		for i := 0; i < cmd.SampleCount; i++ {
			if sec.Count == 0 {
				break
			}
			idx := trng.Intn(sec.Count)
			res.SampledIdx = append(res.SampledIdx, sec.BaseIndex+idx)
			res.Commands = append(res.Commands, Command{
				Addr:       sec.Entries[idx],
				Hop:        cmd.Hop + 1,
				Target:     cmd.Target,
				Batch:      cmd.Batch,
				ParentNode: sec.NodeID,
			})
		}
	default:
		if sec.Type != directgraph.SectionTypePrimary {
			return nil, fmt.Errorf("sampler: %w: expected primary at %#x", directgraph.ErrBadSectionType, uint32(cmd.Addr))
		}
		// Vector retriever: primary sections carry the node's feature.
		res.FeatureBits = sec.FeatureBits
		if cmd.Hop >= cfg.Hops {
			return res, nil // final hop: feature retrieval only
		}
		count := cmd.SampleCount
		if count <= 0 {
			count = cfg.Fanout
		}
		if sec.NeighborCount == 0 {
			return res, nil
		}
		// Node sampler, primary mode: draw over the whole neighbor
		// range; out-of-page indices turn into coalesced secondary
		// commands.
		plan := directgraph.NodePlan{
			InlineCount:  sec.InlineCount,
			FullSecCount: l.SecondaryCapacity(),
		}
		coalesce := make(map[int]int) // secondary section index → draw count
		for i := 0; i < count; i++ {
			idx := trng.Intn(sec.NeighborCount)
			res.SampledIdx = append(res.SampledIdx, idx)
			if idx < sec.InlineCount {
				res.Commands = append(res.Commands, Command{
					Addr:       sec.Inline[idx],
					Hop:        cmd.Hop + 1,
					Target:     cmd.Target,
					Batch:      cmd.Batch,
					ParentNode: sec.NodeID,
				})
				continue
			}
			s := plan.SecondaryIndexFor(idx)
			if s < 0 || s >= len(sec.Secondaries) {
				return nil, fmt.Errorf("sampler: sampled index %d maps to secondary %d of %d", idx, s, len(sec.Secondaries))
			}
			if cfg.NoCoalesce {
				// Ablation path: every draw becomes its own secondary
				// read, exposing the redundant-read cost coalescing
				// avoids.
				res.Commands = append(res.Commands, Command{
					Addr:        sec.Secondaries[s],
					Hop:         cmd.Hop,
					SampleCount: 1,
					Secondary:   true,
					Target:      cmd.Target,
					Batch:       cmd.Batch,
					ParentNode:  sec.NodeID,
				})
				continue
			}
			coalesce[s]++
		}
		// Command generator: one coalesced command per touched secondary.
		// Iterate in section order for determinism.
		for s := 0; s < len(sec.Secondaries); s++ {
			if n := coalesce[s]; n > 0 {
				res.Commands = append(res.Commands, Command{
					Addr:        sec.Secondaries[s],
					Hop:         cmd.Hop, // same node's sampling continues
					SampleCount: n,
					Secondary:   true,
					Target:      cmd.Target,
					Batch:       cmd.Batch,
					ParentNode:  sec.NodeID,
				})
			}
		}
	}
	return res, nil
}
