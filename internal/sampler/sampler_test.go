package sampler

import (
	"testing"

	"beacongnn/internal/directgraph"
	"beacongnn/internal/graph"
	"beacongnn/internal/xrand"
)

func buildFixture(t *testing.T, nodes int, avgDeg float64, dim, pageSize int, seed uint64) (*graph.Graph, *directgraph.Build) {
	t.Helper()
	g, err := graph.Generate(graph.GenSpec{
		Nodes: nodes, AvgDegree: avgDeg, MaxDegree: nodes - 1, FeatureDim: dim, PowerLaw: 2.0, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := directgraph.BuildGraph(directgraph.Layout{PageSize: pageSize, FeatureDim: dim}, g, &directgraph.SeqAllocator{})
	if err != nil {
		t.Fatal(err)
	}
	return g, b
}

func pageOf(b *directgraph.Build, a directgraph.Addr) []byte {
	return b.Pages[b.Layout.Page(a)]
}

func TestExecutePrimarySamples(t *testing.T) {
	g, b := buildFixture(t, 500, 20, 8, 4096, 1)
	cfg := Config{Hops: 3, Fanout: 3, FeatureDim: 8}
	trng := xrand.New(7)
	addr := b.NodeAddr(5)
	res, err := Execute(b.Layout, pageOf(b, addr), Command{Addr: addr, Hop: 0, Target: 5}, cfg, trng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Node != 5 {
		t.Fatalf("node = %d", res.Node)
	}
	if len(res.FeatureBits) != 8 {
		t.Fatalf("feature len = %d", len(res.FeatureBits))
	}
	// Feature must match the graph bit-exactly.
	want := g.FeatureBits(5)
	for i := range want {
		if res.FeatureBits[i] != want[i] {
			t.Fatal("feature bits differ from graph")
		}
	}
	if len(res.Commands) != 3 {
		t.Fatalf("commands = %d, want fanout 3 (all inline for this degree)", len(res.Commands))
	}
	// Every sampled child must be a true neighbor of node 5.
	nbrs := g.Neighbors(5)
	for _, c := range res.Commands {
		if c.Hop != 1 {
			t.Fatalf("child hop = %d", c.Hop)
		}
		sec, err := b.ReadSection(c.Addr)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, nb := range nbrs {
			if uint32(nb) == sec.NodeID {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("sampled node %d is not a neighbor of 5", sec.NodeID)
		}
	}
}

func TestExecuteFinalHopFeatureOnly(t *testing.T) {
	_, b := buildFixture(t, 200, 10, 4, 4096, 2)
	cfg := Config{Hops: 3, Fanout: 3, FeatureDim: 4}
	addr := b.NodeAddr(3)
	res, err := Execute(b.Layout, pageOf(b, addr), Command{Addr: addr, Hop: 3}, cfg, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Commands) != 0 {
		t.Fatalf("final hop emitted %d commands", len(res.Commands))
	}
	if len(res.FeatureBits) != 4 {
		t.Fatal("final hop missing feature")
	}
}

func TestExecuteCoalescesSecondaryDraws(t *testing.T) {
	// Small pages force secondaries; high fanout forces multiple draws
	// into the same secondary, which must coalesce.
	g, b := buildFixture(t, 300, 150, 0, 512, 3)
	var spilled graph.NodeID = -1
	for v := 0; v < g.NumNodes(); v++ {
		if b.Plans[v].SecCount > 0 && b.Plans[v].InlineCount == 0 {
			spilled = graph.NodeID(v)
			break
		}
	}
	if spilled < 0 {
		for v := 0; v < g.NumNodes(); v++ {
			if b.Plans[v].SecCount > 0 {
				spilled = graph.NodeID(v)
				break
			}
		}
	}
	if spilled < 0 {
		t.Fatal("fixture produced no spilled nodes; tighten parameters")
	}
	cfg := Config{Hops: 2, Fanout: 16, FeatureDim: 0}
	addr := b.NodeAddr(spilled)
	res, err := Execute(b.Layout, pageOf(b, addr), Command{Addr: addr, Hop: 0, SampleCount: 16}, cfg, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	secCmds := 0
	coalesced := 0
	for _, c := range res.Commands {
		if c.Secondary {
			secCmds++
			coalesced += c.SampleCount
			if c.Hop != 0 {
				t.Fatalf("secondary command hop = %d, want parent hop 0", c.Hop)
			}
		}
	}
	inline := len(res.Commands) - secCmds
	if inline+coalesced != 16 {
		t.Fatalf("draws accounted: inline %d + coalesced %d != 16", inline, coalesced)
	}
	plan := b.Plans[spilled]
	if secCmds > plan.SecCount {
		t.Fatalf("%d secondary commands for %d sections — coalescing failed", secCmds, plan.SecCount)
	}
	if secCmds == 0 {
		t.Fatal("no secondary draws; fixture too easy")
	}
}

func TestExecuteSecondarySection(t *testing.T) {
	g, b := buildFixture(t, 300, 150, 0, 512, 4)
	var node graph.NodeID = -1
	for v := 0; v < g.NumNodes(); v++ {
		if b.Plans[v].SecCount > 0 {
			node = graph.NodeID(v)
			break
		}
	}
	if node < 0 {
		t.Fatal("no spilled node")
	}
	secAddr := b.Plans[node].Secondaries[0]
	cfg := Config{Hops: 3, Fanout: 3, FeatureDim: 0}
	res, err := Execute(b.Layout, pageOf(b, secAddr),
		Command{Addr: secAddr, Hop: 1, SampleCount: 2, Secondary: true, ParentNode: uint32(node)}, cfg, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Commands) != 2 {
		t.Fatalf("commands = %d, want 2", len(res.Commands))
	}
	nbrs := g.Neighbors(node)
	for _, c := range res.Commands {
		if c.Hop != 2 {
			t.Fatalf("child hop = %d, want 2", c.Hop)
		}
		sec, err := b.ReadSection(c.Addr)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, nb := range nbrs {
			if uint32(nb) == sec.NodeID {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("secondary sampled non-neighbor %d", sec.NodeID)
		}
	}
}

func TestExecuteTypeConfusionErrors(t *testing.T) {
	_, b := buildFixture(t, 100, 10, 4, 4096, 5)
	addr := b.NodeAddr(0)
	cfg := Config{Hops: 2, Fanout: 2, FeatureDim: 4}
	// Primary addressed as secondary must abort (Section VI-E).
	if _, err := Execute(b.Layout, pageOf(b, addr), Command{Addr: addr, Secondary: true, SampleCount: 1}, cfg, xrand.New(1)); err == nil {
		t.Fatal("type confusion accepted")
	}
}

func TestExecuteMissingSectionErrors(t *testing.T) {
	_, b := buildFixture(t, 100, 10, 4, 4096, 6)
	l := b.Layout
	cfg := Config{Hops: 2, Fanout: 2, FeatureDim: 4}
	// An empty (never-written) page has no sections at all.
	empty := make([]byte, l.PageSize)
	if _, err := Execute(l, empty, Command{Addr: l.MakeAddr(0, 0)}, cfg, xrand.New(1)); err == nil {
		t.Fatal("missing section accepted")
	}
}

func TestExecuteZeroDegreeNode(t *testing.T) {
	gb := graph.NewBuilder(2, 2)
	gb.SetFeature(0, []float32{1, 2})
	gb.SetFeature(1, []float32{3, 4})
	g := gb.Build()
	b, err := directgraph.BuildGraph(directgraph.Layout{PageSize: 4096, FeatureDim: 2}, g, &directgraph.SeqAllocator{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Hops: 2, Fanout: 3, FeatureDim: 2}
	addr := b.NodeAddr(0)
	res, err := Execute(b.Layout, pageOf(b, addr), Command{Addr: addr, Hop: 0}, cfg, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Commands) != 0 || len(res.FeatureBits) != 2 {
		t.Fatalf("zero-degree result: %d cmds, %d feature", len(res.Commands), len(res.FeatureBits))
	}
}

func TestSamplingUniformity(t *testing.T) {
	// Sampling a high-degree node many times must cover its neighbor
	// range roughly uniformly (TRNG + modulo).
	g, b := buildFixture(t, 50, 30, 0, 4096, 8)
	var v graph.NodeID
	best := 0
	for i := 0; i < g.NumNodes(); i++ {
		if d := g.Degree(graph.NodeID(i)); d > best {
			best, v = d, graph.NodeID(i)
		}
	}
	cfg := Config{Hops: 2, Fanout: 1, FeatureDim: 0}
	trng := xrand.New(3)
	counts := make(map[int]int)
	const draws = 20000
	addr := b.NodeAddr(v)
	for i := 0; i < draws; i++ {
		res, err := Execute(b.Layout, pageOf(b, addr), Command{Addr: addr, Hop: 0}, cfg, trng)
		if err != nil {
			t.Fatal(err)
		}
		for _, idx := range res.SampledIdx {
			counts[idx]++
		}
	}
	deg := g.Degree(v)
	if len(counts) != deg {
		t.Fatalf("covered %d of %d indices", len(counts), deg)
	}
	expected := float64(draws) / float64(deg)
	for idx, c := range counts {
		if float64(c) < expected*0.6 || float64(c) > expected*1.4 {
			t.Fatalf("index %d drawn %d times, expected ≈%.0f", idx, c, expected)
		}
	}
}

func TestBusBytes(t *testing.T) {
	r := Result{Commands: make([]Command, 3), FeatureBits: make([]uint16, 100)}
	if got := r.BusBytes(); got != 16+3*16+200 {
		t.Fatalf("bus bytes = %d", got)
	}
}

func TestNoCoalesceAblation(t *testing.T) {
	// With coalescing disabled, every out-of-page draw becomes its own
	// secondary command (SampleCount 1 each).
	g, b := buildFixture(t, 300, 150, 0, 512, 3)
	var spilled graph.NodeID = -1
	for v := 0; v < g.NumNodes(); v++ {
		if b.Plans[v].SecCount > 0 {
			spilled = graph.NodeID(v)
			break
		}
	}
	if spilled < 0 {
		t.Fatal("no spilled node in fixture")
	}
	addr := b.NodeAddr(spilled)
	run := func(noCoalesce bool) (secCmds, draws int) {
		cfg := Config{Hops: 2, Fanout: 16, FeatureDim: 0, NoCoalesce: noCoalesce}
		res, err := Execute(b.Layout, pageOf(b, addr), Command{Addr: addr, Hop: 0, SampleCount: 16}, cfg, xrand.New(9))
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.Commands {
			if c.Secondary {
				secCmds++
				draws += c.SampleCount
			}
		}
		return
	}
	cSec, cDraws := run(false)
	nSec, nDraws := run(true)
	if cDraws != nDraws {
		t.Fatalf("draw counts differ: %d vs %d", cDraws, nDraws)
	}
	if nSec != nDraws {
		t.Fatalf("uncoalesced: %d commands for %d draws", nSec, nDraws)
	}
	if cSec >= nSec && nDraws > b.Plans[spilled].SecCount {
		t.Fatalf("coalescing did not reduce commands: %d vs %d", cSec, nSec)
	}
}
