package sampler

import (
	"testing"
	"testing/quick"

	"beacongnn/internal/directgraph"
	"beacongnn/internal/xrand"
)

func TestConfigWireRoundTrip(t *testing.T) {
	c := Config{Hops: 3, Fanout: 3, FeatureDim: 602, NoCoalesce: true}
	buf, err := MarshalConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 8 {
		t.Fatalf("config frame = %d bytes", len(buf))
	}
	got, err := UnmarshalConfig(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("round trip: %+v != %+v", got, c)
	}
}

func TestConfigWireErrors(t *testing.T) {
	if _, err := MarshalConfig(Config{Hops: 300, Fanout: 3, FeatureDim: 4}); err == nil {
		t.Error("oversized hops accepted")
	}
	if _, err := MarshalConfig(Config{}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := UnmarshalConfig(make([]byte, 7)); err == nil {
		t.Error("short frame accepted")
	}
	bad := make([]byte, 8) // hops = 0
	if _, err := UnmarshalConfig(bad); err == nil {
		t.Error("zero-hop frame accepted")
	}
}

func TestCommandWireRoundTripProperty(t *testing.T) {
	f := func(addr uint32, hop uint8, count uint16, batch uint16, target uint16, parent uint32, secondary bool) bool {
		c := Command{
			Addr: directgraph.Addr(addr), Hop: int(hop), SampleCount: int(count),
			Secondary: secondary, Batch: int32(batch), Target: int32(target), ParentNode: parent,
		}
		buf, err := MarshalCommand(c)
		if err != nil {
			return false
		}
		got, err := UnmarshalCommand(buf)
		if err != nil {
			return false
		}
		return got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCommandWireDropsInstrumentation(t *testing.T) {
	c := Command{Addr: 5, Hop: 1, Created: 12345}
	buf, err := MarshalCommand(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCommand(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Created != 0 {
		t.Fatal("Created leaked onto the wire")
	}
}

func TestCommandWireErrors(t *testing.T) {
	if _, err := MarshalCommand(Command{Hop: -1}); err == nil {
		t.Error("negative hop accepted")
	}
	if _, err := MarshalCommand(Command{Batch: 1 << 17}); err == nil {
		t.Error("oversized batch accepted")
	}
	if _, err := UnmarshalCommand(make([]byte, 3)); err == nil {
		t.Error("short command frame accepted")
	}
}

func TestResultWireRoundTrip(t *testing.T) {
	r := &Result{
		Node: 99, Hop: 2,
		Commands: []Command{
			{Addr: 1, Hop: 3, ParentNode: 99},
			{Addr: 2, Hop: 2, Secondary: true, SampleCount: 4, ParentNode: 99},
		},
		FeatureBits: []uint16{1, 2, 3, 0xFFFF},
	}
	buf, err := MarshalResult(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != r.BusBytes() {
		t.Fatalf("frame %d bytes, BusBytes says %d — timing/wire mismatch", len(buf), r.BusBytes())
	}
	got, err := UnmarshalResult(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Node != r.Node || got.Hop != r.Hop || len(got.Commands) != 2 || len(got.FeatureBits) != 4 {
		t.Fatalf("round trip = %+v", got)
	}
	for i := range r.Commands {
		if got.Commands[i] != r.Commands[i] {
			t.Fatalf("command %d mismatch", i)
		}
	}
	for i := range r.FeatureBits {
		if got.FeatureBits[i] != r.FeatureBits[i] {
			t.Fatalf("feature %d mismatch", i)
		}
	}
}

func TestResultWireErrors(t *testing.T) {
	if _, err := UnmarshalResult(make([]byte, 4)); err == nil {
		t.Error("short result accepted")
	}
	// Header claiming more commands than the frame holds.
	r := &Result{Node: 1}
	buf, _ := MarshalResult(r)
	buf[4] = 9
	if _, err := UnmarshalResult(buf); err == nil {
		t.Error("inconsistent header accepted")
	}
	// Non-zero status byte.
	buf2, _ := MarshalResult(r)
	buf2[9] = 1
	if _, err := UnmarshalResult(buf2); err == nil {
		t.Error("error status accepted")
	}
}

func TestExecuteResultIsWireSerializable(t *testing.T) {
	// Every result the functional sampler produces must serialize and
	// parse back identically — the property the channel router relies on.
	_, b := buildFixture(t, 400, 40, 16, 4096, 12)
	cfg := Config{Hops: 3, Fanout: 3, FeatureDim: 16}
	trng := xrand.New(5)
	for v := 0; v < 50; v++ {
		addr := b.NodeAddr(int32(v))
		res, err := Execute(b.Layout, pageOf(b, addr), Command{Addr: addr, Hop: 0, Target: int32(v)}, cfg, trng)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := MarshalResult(res)
		if err != nil {
			t.Fatalf("node %d: %v", v, err)
		}
		got, err := UnmarshalResult(buf)
		if err != nil {
			t.Fatalf("node %d: %v", v, err)
		}
		if len(got.Commands) != len(res.Commands) || len(got.FeatureBits) != len(res.FeatureBits) {
			t.Fatalf("node %d: lossy round trip", v)
		}
	}
}

func FuzzUnmarshalResult(f *testing.F) {
	r := &Result{Node: 7, Commands: []Command{{Addr: 3, Hop: 1}}, FeatureBits: []uint16{9}}
	seed, _ := MarshalResult(r)
	f.Add(seed)
	f.Add([]byte{})
	f.Add(make([]byte, ResultHeaderBytes))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; on success, re-marshaling must reproduce
		// the same frame length.
		got, err := UnmarshalResult(data)
		if err != nil {
			return
		}
		if got.BusBytes() != len(data) {
			t.Fatalf("accepted frame of %d bytes but BusBytes = %d", len(data), got.BusBytes())
		}
	})
}

func FuzzUnmarshalCommand(f *testing.F) {
	c := Command{Addr: 77, Hop: 2, SampleCount: 3}
	seed, _ := MarshalCommand(c)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalCommand(data)
		if err != nil {
			return
		}
		buf, err := MarshalCommand(got)
		if err != nil {
			t.Fatalf("decoded command does not re-encode: %v", err)
		}
		if len(buf) != EncodedBytes {
			t.Fatal("re-encoded length wrong")
		}
	})
}
