package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sources diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced degenerate stream")
	}
}

func TestIntnBoundsProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestUniformity(t *testing.T) {
	// Chi-squared test over 16 buckets; loose bound to stay flake-free.
	r := New(99)
	const buckets, n = 16, 160000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(n) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 dof; p=0.001 critical value ≈ 37.7. Use 60 for slack.
	if chi2 > 60 {
		t.Fatalf("chi-squared = %v, distribution badly non-uniform", chi2)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(5)
	child := parent.Fork()
	// The child's stream must not equal the parent's subsequent stream.
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("fork overlapped parent stream %d times", same)
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ≈0.5", mean)
	}
}

func TestZipfBoundsProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16, sRaw uint8) bool {
		n := int(nRaw%500) + 1
		s := 0.5 + float64(sRaw%30)/10 // 0.5 .. 3.4
		r := New(seed)
		for i := 0; i < 30; i++ {
			v := r.Zipf(n, s)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkewsLow(t *testing.T) {
	r := New(4)
	const n, draws = 1000, 50000
	lowDecile := 0
	for i := 0; i < draws; i++ {
		if r.Zipf(n, 1.2) < n/10 {
			lowDecile++
		}
	}
	// With skew 1.2, far more than 10% of draws hit the first decile.
	if frac := float64(lowDecile) / draws; frac < 0.5 {
		t.Fatalf("first decile got %.2f of draws, want heavy skew", frac)
	}
}

func TestZipfPanicsAndEdges(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Zipf(0, ...) did not panic")
		}
	}()
	r := New(1)
	if r.Zipf(1, 2.0) != 0 {
		t.Error("Zipf(1) must be 0")
	}
	r.Zipf(0, 2.0)
}
