// Package xrand implements the deterministic pseudo-random stream used to
// stand in for BeaconGNN's on-die true random number generator (TRNG).
//
// The paper's die-level sampler draws one random number per neighbor
// sample and reduces it with a modulo operation (Section V-A). For a
// reproducible simulation, each die's TRNG is a splitmix64-seeded
// xoshiro256** generator; the host-side reference sampler consumes the
// same stream, which lets tests verify that in-storage sampling produces
// exactly the subgraphs the reference implementation expects.
package xrand

import "math"

// Source is a xoshiro256** PRNG. The zero value is invalid; use New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded via splitmix64 from the given seed, so any
// seed (including 0) yields a well-mixed state.
func New(seed uint64) *Source {
	var src Source
	src.Seed(seed)
	return &src
}

// Seed resets the generator state from seed.
func (r *Source) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// xoshiro state must not be all zero; splitmix64 cannot produce
	// four zero outputs in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// This is the TRNG-plus-modulo reduction the die sampler performs.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Fork returns a new independent Source derived from this one; streams of
// parent and child do not overlap in practice. Used to give each flash
// die its own TRNG from one experiment seed.
func (r *Source) Fork() *Source { return New(r.Uint64()) }

// Zipf draws from a bounded Zipf distribution over [0, n) with exponent
// s > 0 (larger = more skew toward low indices), via inverse-transform
// on the approximate Zipf CDF F(k) ≈ (k+1)^(1−s)−... implemented with
// the standard rejection-free approximation for s ≠ 1:
//
//	k = ⌊ ((n^(1−s) − 1)·u + 1)^(1/(1−s)) ⌋ − 1-ish
//
// For s == 1 it falls back to the harmonic inverse. Used to model
// skewed (hot-node) GNN query workloads.
func (r *Source) Zipf(n int, s float64) int {
	if n <= 0 {
		panic("xrand: Zipf with non-positive n")
	}
	if n == 1 {
		return 0
	}
	u := r.Float64()
	if u <= 0 {
		u = 1e-12
	}
	var x float64
	if s == 1 {
		// F(k) ∝ ln(k+1): invert ln.
		x = math.Exp(u*math.Log(float64(n))) - 1
	} else {
		one := 1 - s
		x = math.Exp(math.Log(u*(math.Exp(one*math.Log(float64(n)))-1)+1)/one) - 1
	}
	k := int(x)
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	return k
}
