package accel

import (
	"testing"
	"testing/quick"

	"beacongnn/internal/config"
	"beacongnn/internal/sim"
)

func ssdModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(config.Default().SSDAccel)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGEMMValidate(t *testing.T) {
	if err := (GEMM{1, 1, 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (GEMM{0, 1, 1}).Validate(); err == nil {
		t.Fatal("zero M accepted")
	}
}

func TestGEMMAccounting(t *testing.T) {
	g := GEMM{M: 10, K: 20, N: 30}
	if g.MACs() != 6000 {
		t.Fatalf("MACs = %d", g.MACs())
	}
	if g.InputBytes() != 2*(200+600) {
		t.Fatalf("input bytes = %d", g.InputBytes())
	}
	if g.OutputBytes() != 600 {
		t.Fatalf("output bytes = %d", g.OutputBytes())
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(config.Accel{Rows: 0, Cols: 8, VectorLanes: 8, ClockHz: 1e9}); err == nil {
		t.Fatal("zero rows accepted")
	}
}

func TestGEMMCyclesSingleTile(t *testing.T) {
	m := ssdModel(t) // 32×32
	// M=32, N=32, K=64: one tile, 2·32 + 32 + 64 − 2 = 158 cycles.
	if got := m.GEMMCycles(GEMM{M: 32, K: 64, N: 32}); got != 158 {
		t.Fatalf("cycles = %d, want 158", got)
	}
}

func TestGEMMCyclesTiling(t *testing.T) {
	m := ssdModel(t)
	one := m.GEMMCycles(GEMM{M: 32, K: 64, N: 32})
	four := m.GEMMCycles(GEMM{M: 64, K: 64, N: 64}) // 2×2 tiles
	if four != 4*one {
		t.Fatalf("tiled cycles = %d, want %d", four, 4*one)
	}
	// Partial tiles round up.
	partial := m.GEMMCycles(GEMM{M: 33, K: 64, N: 32})
	if partial != 2*one {
		t.Fatalf("partial tile cycles = %d, want %d", partial, 2*one)
	}
}

func TestGEMMTimeScalesWithClock(t *testing.T) {
	slow, _ := New(config.Accel{Rows: 32, Cols: 32, VectorLanes: 32, ClockHz: 1e9})
	fast, _ := New(config.Accel{Rows: 32, Cols: 32, VectorLanes: 32, ClockHz: 2e9})
	g := GEMM{M: 128, K: 128, N: 128}
	if slow.GEMMTime(g) != 2*fast.GEMMTime(g) {
		t.Fatalf("clock scaling broken: %v vs %v", slow.GEMMTime(g), fast.GEMMTime(g))
	}
}

func TestVectorCycles(t *testing.T) {
	m := ssdModel(t) // 128 lanes
	if m.VectorCycles(128) != 1 || m.VectorCycles(129) != 2 || m.VectorCycles(0) != 0 {
		t.Fatal("vector cycle math wrong")
	}
}

func TestUtilizationBounds(t *testing.T) {
	m := ssdModel(t)
	f := func(mm, kk, nn uint8) bool {
		g := GEMM{M: int(mm)%200 + 1, K: int(kk)%200 + 1, N: int(nn)%200 + 1}
		u := m.Utilization(g)
		return u > 0 && u <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBigKImprovesUtilization(t *testing.T) {
	// Output-stationary arrays amortize fill/drain over K.
	m := ssdModel(t)
	small := m.Utilization(GEMM{M: 32, K: 8, N: 32})
	big := m.Utilization(GEMM{M: 32, K: 512, N: 32})
	if big <= small {
		t.Fatalf("utilization did not improve with K: %v vs %v", small, big)
	}
}

func TestWorkloadAggregation(t *testing.T) {
	w := Workload{
		GEMMs:      []GEMM{{M: 8, K: 8, N: 8}, {M: 4, K: 4, N: 4}},
		VectorElem: 1000,
	}
	if w.MACs() != 512+64 {
		t.Fatalf("MACs = %d", w.MACs())
	}
	if w.SRAMBytes() <= 4000 {
		t.Fatalf("SRAM bytes = %d", w.SRAMBytes())
	}
	m := ssdModel(t)
	total := m.Time(w)
	want := m.VectorTime(1000) + m.GEMMTime(w.GEMMs[0]) + m.GEMMTime(w.GEMMs[1])
	if total != want {
		t.Fatalf("workload time = %v, want %v", total, want)
	}
}

func TestTPUFasterThanSSDAccel(t *testing.T) {
	// The discrete accelerator must outrun the SSD-grade one on the
	// same workload (the paper's CC baseline assumption).
	cfg := config.Default()
	ssd, _ := New(cfg.SSDAccel)
	tpu, _ := New(cfg.TPU)
	g := GEMM{M: 2560, K: 128, N: 128}
	if tpu.GEMMTime(g) >= ssd.GEMMTime(g) {
		t.Fatalf("TPU (%v) not faster than SSD accel (%v)", tpu.GEMMTime(g), ssd.GEMMTime(g))
	}
	if ssd.GEMMTime(g) <= 0 || ssd.GEMMTime(g) > sim.Millisecond {
		t.Fatalf("SSD GEMM time implausible: %v", ssd.GEMMTime(g))
	}
}

func TestGEMMTimeWithMemoryFitsEqualsCompute(t *testing.T) {
	m := ssdModel(t)                  // 4 MB SRAM
	g := GEMM{M: 256, K: 128, N: 128} // working set ~160 KB: fits
	// With ample bandwidth, double buffering hides all streaming.
	if m.GEMMTimeWithMemory(g, 200e9) != m.GEMMTime(g) {
		t.Fatal("resident GEMM should not pay memory stalls at high bandwidth")
	}
	// GNN-shaped GEMMs have low arithmetic intensity: at SSD-DRAM
	// bandwidth the stream dominates even without spilling.
	if m.GEMMTimeWithMemory(g, 12.8e9) <= m.GEMMTime(g) {
		t.Fatal("SSD-DRAM-fed GEMM should be stream-bound")
	}
}

func TestGEMMTimeWithMemorySpillAddsTraffic(t *testing.T) {
	// Tiny SRAM forces weight re-fetches; at low DRAM bandwidth the
	// stream dominates compute.
	small, err := New(config.Accel{Rows: 32, Cols: 32, VectorLanes: 32, ClockHz: 1e9, SRAMBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	g := GEMM{M: 1024, K: 256, N: 128}
	slow := small.GEMMTimeWithMemory(g, 1e9)
	if slow <= small.GEMMTime(g) {
		t.Fatalf("spilled GEMM at 1 GB/s not memory-bound: %v vs %v", slow, small.GEMMTime(g))
	}
	// More bandwidth must monotonically reduce (or hold) the time.
	fast := small.GEMMTimeWithMemory(g, 100e9)
	if fast > slow {
		t.Fatal("higher DRAM bandwidth increased time")
	}
}

func TestSpillsDetection(t *testing.T) {
	m := ssdModel(t)
	fits := Workload{GEMMs: []GEMM{{M: 32, K: 32, N: 32}}}
	if m.Spills(fits) {
		t.Fatal("tiny workload reported as spilling")
	}
	big := Workload{GEMMs: []GEMM{{M: 4096, K: 602, N: 128}}} // ~6 MB inputs
	if !m.Spills(big) {
		t.Fatal("oversized workload not detected")
	}
	if m.TimeWithMemory(big, 12.8e9) < m.Time(big) {
		t.Fatal("memory-aware time below pure compute time")
	}
}
