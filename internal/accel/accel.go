// Package accel models the bus-attached spatial accelerator of Section
// V-C (and the discrete TPU-like accelerator of the CPU-centric
// baseline): a 2-D output-stationary systolic array for GEMM-based
// embedding updates plus a 1-D vector array for embedding aggregation,
// fed from an SRAM buffer.
//
// Timing follows ScaleSim-2.0's analytic model: an output-stationary
// R×C array computes one M×K×N GEMM in
//
//	ceil(M/R) · ceil(N/C) · (2R + C + K − 2) cycles,
//
// i.e. per output tile the array fills, streams K partial sums, and
// drains. The vector array processes lanes elements per cycle.
package accel

import (
	"fmt"

	"beacongnn/internal/config"
	"beacongnn/internal/sim"
)

// GEMM is one matrix multiply: (M×K) · (K×N).
type GEMM struct {
	M, K, N int
}

// Validate reports whether all dimensions are positive.
func (g GEMM) Validate() error {
	if g.M <= 0 || g.K <= 0 || g.N <= 0 {
		return fmt.Errorf("accel: GEMM dims must be positive: %+v", g)
	}
	return nil
}

// MACs returns the multiply-accumulate count.
func (g GEMM) MACs() int64 { return int64(g.M) * int64(g.K) * int64(g.N) }

// InputBytes returns the FP16 operand traffic (activations + weights).
func (g GEMM) InputBytes() int64 {
	return 2 * (int64(g.M)*int64(g.K) + int64(g.K)*int64(g.N))
}

// OutputBytes returns the FP16 result traffic.
func (g GEMM) OutputBytes() int64 { return 2 * int64(g.M) * int64(g.N) }

// Model computes timings for one accelerator configuration.
type Model struct {
	cfg config.Accel
}

// New returns a model for the configuration.
func New(cfg config.Accel) (*Model, error) {
	if cfg.Rows <= 0 || cfg.Cols <= 0 || cfg.VectorLanes <= 0 || cfg.ClockHz <= 0 {
		return nil, fmt.Errorf("accel: invalid config %+v", cfg)
	}
	return &Model{cfg: cfg}, nil
}

// Config returns the accelerator configuration.
func (m *Model) Config() config.Accel { return m.cfg }

func (m *Model) cyclesToTime(cycles int64) sim.Time {
	return sim.Time(float64(cycles) / m.cfg.ClockHz * float64(sim.Second))
}

// GEMMCycles returns the output-stationary cycle count for one GEMM.
func (m *Model) GEMMCycles(g GEMM) int64 {
	tilesM := int64((g.M + m.cfg.Rows - 1) / m.cfg.Rows)
	tilesN := int64((g.N + m.cfg.Cols - 1) / m.cfg.Cols)
	perTile := int64(2*m.cfg.Rows + m.cfg.Cols + g.K - 2)
	return tilesM * tilesN * perTile
}

// GEMMTime returns the wall-clock time of one GEMM.
func (m *Model) GEMMTime(g GEMM) sim.Time { return m.cyclesToTime(m.GEMMCycles(g)) }

// VectorCycles returns cycles to stream elems elements through the 1-D
// array (one op per element, e.g. vector_sum accumulation).
func (m *Model) VectorCycles(elems int64) int64 {
	lanes := int64(m.cfg.VectorLanes)
	return (elems + lanes - 1) / lanes
}

// VectorTime returns the wall-clock time of a vector pass.
func (m *Model) VectorTime(elems int64) sim.Time {
	return m.cyclesToTime(m.VectorCycles(elems))
}

// Utilization returns the fraction of peak MACs a GEMM achieves —
// useful for sanity-checking array shapes against layer shapes.
func (m *Model) Utilization(g GEMM) float64 {
	cycles := m.GEMMCycles(g)
	if cycles == 0 {
		return 0
	}
	peak := cycles * int64(m.cfg.Rows) * int64(m.cfg.Cols)
	return float64(g.MACs()) / float64(peak)
}

// Workload aggregates a batch's compute: a list of GEMMs plus vector
// aggregation element counts. Build it once per GNN layer structure.
type Workload struct {
	GEMMs      []GEMM
	VectorElem int64 // total elements streamed through the vector array
}

// MACs returns the workload's multiply-accumulate count.
func (w Workload) MACs() int64 {
	var t int64
	for _, g := range w.GEMMs {
		t += g.MACs()
	}
	return t
}

// SRAMBytes returns total operand + result traffic (vector elements are
// read once and written once per dim... counted as 2 B in + 2 B out).
func (w Workload) SRAMBytes() int64 {
	var t int64
	for _, g := range w.GEMMs {
		t += g.InputBytes() + g.OutputBytes()
	}
	return t + 4*w.VectorElem
}

// Time returns the serial execution time of the workload on the model:
// vector aggregation feeds the systolic update, so phases serialize
// within a layer, but the per-layer GEMMs listed are executed back to
// back (the SRAM buffer double-buffers operands).
func (m *Model) Time(w Workload) sim.Time {
	t := m.VectorTime(w.VectorElem)
	for _, g := range w.GEMMs {
		t += m.GEMMTime(g)
	}
	return t
}

// GEMMTimeWithMemory extends GEMMTime with the SRAM buffer's capacity
// effects: operands stream from DRAM through the buffer, double-
// buffered behind compute. While the working set fits the SRAM, each
// byte moves once and compute hides it; once it spills, the stationary
// weight matrix must be re-fetched for every row of output tiles, and
// whatever streaming compute cannot hide becomes stall time. This is
// the flexibility Section V-C's shared, partition-configurable buffer
// provides — and its limit.
func (m *Model) GEMMTimeWithMemory(g GEMM, dramBW float64) sim.Time {
	compute := m.GEMMCycles(g)
	traffic := g.InputBytes() + g.OutputBytes()
	if traffic > int64(m.cfg.SRAMBytes) {
		tilesM := int64((g.M + m.cfg.Rows - 1) / m.cfg.Rows)
		if tilesM > 1 {
			traffic += (tilesM - 1) * 2 * int64(g.K) * int64(g.N)
		}
	}
	computeT := m.cyclesToTime(compute)
	streamT := sim.Time(float64(traffic) / dramBW * float64(sim.Second))
	if streamT > computeT {
		return streamT
	}
	return computeT
}

// TimeWithMemory is Time using the memory-aware per-GEMM model.
func (m *Model) TimeWithMemory(w Workload, dramBW float64) sim.Time {
	t := m.VectorTime(w.VectorElem)
	for _, g := range w.GEMMs {
		t += m.GEMMTimeWithMemory(g, dramBW)
	}
	return t
}

// Spills reports whether any GEMM of the workload overflows the SRAM.
func (m *Model) Spills(w Workload) bool {
	for _, g := range w.GEMMs {
		if g.InputBytes()+g.OutputBytes() > int64(m.cfg.SRAMBytes) {
			return true
		}
	}
	return false
}
