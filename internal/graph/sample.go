package graph

import (
	"fmt"

	"beacongnn/internal/xrand"
)

// SampleSpec configures GraphSage-style k-hop neighbor sampling: at each
// hop, Fanout neighbors are drawn (with replacement, TRNG + modulo, as
// the die-level sampler does) from each frontier node's neighbor list.
type SampleSpec struct {
	Hops   int // number of sampling hops (paper default: 3)
	Fanout int // samples per node per hop (paper default: 3)
}

// Validate reports whether the spec is usable.
func (s SampleSpec) Validate() error {
	if s.Hops <= 0 || s.Fanout <= 0 {
		return fmt.Errorf("graph: sample spec must have positive hops and fanout, got %+v", s)
	}
	return nil
}

// SubgraphSize returns the node count of a full k-hop sample tree:
// 1 + f + f² + ... + f^k (the paper's 3-hop fanout-3 example yields 40).
func (s SampleSpec) SubgraphSize() int {
	total, layer := 1, 1
	for h := 0; h < s.Hops; h++ {
		layer *= s.Fanout
		total += layer
	}
	return total
}

// Subgraph is a sampled k-hop tree rooted at Target. Nodes are stored
// hop by hop; Parents[i] is the index (into Nodes) of node i's parent,
// with Parents[0] == -1 for the root.
type Subgraph struct {
	Target  NodeID
	Nodes   []NodeID
	Hop     []int8 // hop distance of each node from the target
	Parents []int32
}

// NumNodes returns the number of sampled nodes (including the target).
func (sg *Subgraph) NumNodes() int { return len(sg.Nodes) }

// SampleSubgraph draws a k-hop subgraph for target using the reference
// (host-side) algorithm. Each sampled node draws Fanout neighbors from
// its full neighbor list via rng.Intn(degree) — exactly the TRNG+modulo
// reduction the on-die sampler performs — so a die-level simulation fed
// the same per-node random values produces an identical subgraph.
// Zero-degree nodes contribute no children.
func SampleSubgraph(g *Graph, target NodeID, spec SampleSpec, rng *xrand.Source) (*Subgraph, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if int(target) < 0 || int(target) >= g.NumNodes() {
		return nil, fmt.Errorf("graph: target %d out of range [0,%d)", target, g.NumNodes())
	}
	sg := &Subgraph{
		Target:  target,
		Nodes:   []NodeID{target},
		Hop:     []int8{0},
		Parents: []int32{-1},
	}
	frontier := []int32{0}
	for h := 1; h <= spec.Hops; h++ {
		var next []int32
		for _, pi := range frontier {
			v := sg.Nodes[pi]
			deg := g.Degree(v)
			if deg == 0 {
				continue
			}
			for j := 0; j < spec.Fanout; j++ {
				nb := g.Neighbor(v, rng.Intn(deg))
				idx := int32(len(sg.Nodes))
				sg.Nodes = append(sg.Nodes, nb)
				sg.Hop = append(sg.Hop, int8(h))
				sg.Parents = append(sg.Parents, pi)
				next = append(next, idx)
			}
		}
		frontier = next
	}
	return sg, nil
}

// Validate checks the subgraph's structural invariants against g:
// parent links are acyclic tree edges, hops increase by one along edges,
// and every sampled child is actually a neighbor of its parent.
func (sg *Subgraph) Validate(g *Graph) error {
	if len(sg.Nodes) != len(sg.Hop) || len(sg.Nodes) != len(sg.Parents) {
		return fmt.Errorf("graph: subgraph arrays disagree on length")
	}
	if len(sg.Nodes) == 0 || sg.Parents[0] != -1 || sg.Hop[0] != 0 || sg.Nodes[0] != sg.Target {
		return fmt.Errorf("graph: malformed subgraph root")
	}
	for i := 1; i < len(sg.Nodes); i++ {
		p := sg.Parents[i]
		if p < 0 || int(p) >= i {
			return fmt.Errorf("graph: node %d has invalid parent %d", i, p)
		}
		if sg.Hop[i] != sg.Hop[p]+1 {
			return fmt.Errorf("graph: node %d hop %d, parent hop %d", i, sg.Hop[i], sg.Hop[p])
		}
		parent, child := sg.Nodes[p], sg.Nodes[i]
		found := false
		for _, nb := range g.Neighbors(parent) {
			if nb == child {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("graph: sampled node %d is not a neighbor of %d", child, parent)
		}
	}
	return nil
}
