package graph

import (
	"math"
	"testing"
	"testing/quick"

	"beacongnn/internal/xrand"
)

func TestBuilderRoundTrip(t *testing.T) {
	b := NewBuilder(3, 2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 0)
	b.SetFeature(0, []float32{1, 2})
	b.SetFeature(1, []float32{-1, 0.5})
	b.SetFeature(2, []float32{0, 0})
	g := b.Build()

	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatalf("degrees wrong: %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
	if nb := g.Neighbors(0); nb[0] != 1 || nb[1] != 2 {
		t.Fatalf("neighbors(0) = %v", nb)
	}
	f := g.Feature(1)
	if f[0] != -1 || f[1] != 0.5 {
		t.Fatalf("feature(1) = %v", f)
	}
	if g.AvgDegree() != 1 {
		t.Fatalf("avg degree = %v", g.AvgDegree())
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("max degree = %v", g.MaxDegree())
	}
}

func TestFeaturePanicsOnWrongDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetFeature with wrong dim did not panic")
		}
	}()
	NewBuilder(1, 3).SetFeature(0, []float32{1})
}

func TestFp16RoundTripExact(t *testing.T) {
	// Values exactly representable in FP16 must round-trip.
	for _, v := range []float32{0, 1, -1, 0.5, 2, 1024, -0.25, 65504} {
		if got := Fp16ToFloat32(Float32ToFp16(v)); got != v {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestFp16SpecialValues(t *testing.T) {
	inf := float32(math.Inf(1))
	if Fp16ToFloat32(Float32ToFp16(inf)) != inf {
		t.Error("+inf did not round-trip")
	}
	if Fp16ToFloat32(Float32ToFp16(float32(math.Inf(-1)))) != float32(math.Inf(-1)) {
		t.Error("-inf did not round-trip")
	}
	if !math.IsNaN(float64(Fp16ToFloat32(Float32ToFp16(float32(math.NaN()))))) {
		t.Error("NaN did not survive")
	}
	// Overflow saturates to infinity.
	if Fp16ToFloat32(Float32ToFp16(1e10)) != inf {
		t.Error("overflow did not produce inf")
	}
	// Tiny values underflow to zero.
	if Fp16ToFloat32(Float32ToFp16(1e-20)) != 0 {
		t.Error("underflow did not produce 0")
	}
}

func TestFp16RelativeErrorProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		for i := 0; i < 100; i++ {
			v := float32(r.Float64()*200 - 100)
			got := Fp16ToFloat32(Float32ToFp16(v))
			if v == 0 {
				continue
			}
			rel := math.Abs(float64(got-v) / float64(v))
			if rel > 1.0/1024 { // fp16 has 10 fraction bits → rel err ≤ 2^-11, allow 2×
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFp16SubnormalRoundTrip(t *testing.T) {
	// Smallest positive fp16 subnormal ≈ 5.96e-8.
	const tiny = 5.9604645e-08
	bits := Float32ToFp16(tiny)
	if bits != 1 {
		t.Fatalf("subnormal encoding = %#x, want 0x1", bits)
	}
	if got := Fp16ToFloat32(bits); math.Abs(float64(got-tiny)) > 1e-12 {
		t.Fatalf("subnormal round trip = %v", got)
	}
}

func TestGenerateMatchesSpec(t *testing.T) {
	spec := GenSpec{Nodes: 2000, AvgDegree: 20, FeatureDim: 8, PowerLaw: 2.1, Seed: 7}
	g, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.FeatureDim() != 8 {
		t.Fatalf("dim = %d", g.FeatureDim())
	}
	avg := g.AvgDegree()
	if avg < 15 || avg > 25 {
		t.Fatalf("avg degree = %v, want ≈20", avg)
	}
	// Power-law: max degree should be well above the mean.
	if g.MaxDegree() < 3*int(avg) {
		t.Fatalf("max degree %d not heavy-tailed vs avg %v", g.MaxDegree(), avg)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := GenSpec{Nodes: 500, AvgDegree: 10, FeatureDim: 4, PowerLaw: 2.0, Seed: 3}
	a, _ := Generate(spec)
	b, _ := Generate(spec)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different edge counts")
	}
	for v := 0; v < a.NumNodes(); v++ {
		na, nb := a.Neighbors(NodeID(v)), b.Neighbors(NodeID(v))
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("node %d neighbors differ", v)
			}
		}
	}
}

func TestGenerateUniformDegrees(t *testing.T) {
	g, err := Generate(GenSpec{Nodes: 3000, AvgDegree: 10, FeatureDim: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if avg := g.AvgDegree(); avg < 8 || avg > 12 {
		t.Fatalf("avg degree = %v, want ≈10", avg)
	}
	if g.MaxDegree() > 19 {
		t.Fatalf("uniform max degree = %d, want ≤ 19", g.MaxDegree())
	}
}

func TestGenerateValidation(t *testing.T) {
	cases := []GenSpec{
		{Nodes: 0},
		{Nodes: 10, AvgDegree: -1},
		{Nodes: 10, AvgDegree: 10},
		{Nodes: 10, FeatureDim: -1},
	}
	for _, c := range cases {
		if _, err := Generate(c); err == nil {
			t.Errorf("spec %+v did not error", c)
		}
	}
}

func TestDegreeSequenceRespectsCap(t *testing.T) {
	degs, err := DegreeSequence(GenSpec{Nodes: 1000, AvgDegree: 50, MaxDegree: 80, PowerLaw: 1.8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range degs {
		if d < 1 || d > 80 {
			t.Fatalf("degree %d outside [1,80]", d)
		}
	}
}

func TestSampleSubgraphShape(t *testing.T) {
	g, _ := Generate(GenSpec{Nodes: 1000, AvgDegree: 20, FeatureDim: 4, PowerLaw: 2.0, Seed: 5})
	spec := SampleSpec{Hops: 3, Fanout: 3}
	if spec.SubgraphSize() != 40 {
		t.Fatalf("SubgraphSize = %d, want 40 (paper Section VII-A)", spec.SubgraphSize())
	}
	sg, err := SampleSubgraph(g, 17, spec, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if sg.NumNodes() != 40 {
		t.Fatalf("sampled %d nodes, want 40", sg.NumNodes())
	}
	if err := sg.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestSampleSubgraphZeroDegreeTarget(t *testing.T) {
	b := NewBuilder(2, 1)
	b.SetFeature(0, []float32{0})
	b.SetFeature(1, []float32{0})
	g := b.Build() // no edges at all
	sg, err := SampleSubgraph(g, 0, SampleSpec{Hops: 2, Fanout: 3}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if sg.NumNodes() != 1 {
		t.Fatalf("zero-degree target sampled %d nodes, want 1", sg.NumNodes())
	}
	if err := sg.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestSampleSubgraphErrors(t *testing.T) {
	g, _ := Generate(GenSpec{Nodes: 10, AvgDegree: 2, FeatureDim: 1, Seed: 1})
	if _, err := SampleSubgraph(g, 100, SampleSpec{Hops: 1, Fanout: 1}, xrand.New(1)); err == nil {
		t.Error("out-of-range target did not error")
	}
	if _, err := SampleSubgraph(g, 0, SampleSpec{Hops: 0, Fanout: 1}, xrand.New(1)); err == nil {
		t.Error("zero hops did not error")
	}
}

func TestSampleSubgraphValidProperty(t *testing.T) {
	g, _ := Generate(GenSpec{Nodes: 300, AvgDegree: 8, FeatureDim: 2, PowerLaw: 2.2, Seed: 4})
	f := func(seed uint64, targetRaw uint16) bool {
		target := NodeID(int(targetRaw) % g.NumNodes())
		sg, err := SampleSubgraph(g, target, SampleSpec{Hops: 2, Fanout: 4}, xrand.New(seed))
		if err != nil {
			return false
		}
		return sg.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
