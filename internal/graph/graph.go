// Package graph provides the in-memory graph representation and the
// synthetic generators used to reproduce the paper's workloads.
//
// Graphs are stored in compressed sparse row (CSR) form: one offsets
// array and one flat adjacency array, matching the neighbor-list layout
// that DirectGraph serializes into flash pages. Node features are FP16
// vectors as in the paper; this package stores them as raw 2-byte values
// with float32 conversion helpers.
package graph

import (
	"fmt"
	"math"
)

// NodeID identifies a graph node. The paper represents nodes as INT-32
// scalars; we use int32 for the stored form and int for API convenience.
type NodeID = int32

// Graph is an immutable directed graph in CSR form with per-node FP16
// feature vectors. Undirected graphs are stored with both arc directions.
type Graph struct {
	offsets  []int64  // len = NumNodes()+1
	adj      []NodeID // flat neighbor lists
	features []uint16 // len = NumNodes() * FeatureDim, FP16 bits
	dim      int
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.offsets) - 1 }

// NumEdges returns the number of stored arcs.
func (g *Graph) NumEdges() int64 { return int64(len(g.adj)) }

// FeatureDim returns the per-node feature vector length.
func (g *Graph) FeatureDim() int { return g.dim }

// Degree returns the out-degree of node v.
func (g *Graph) Degree(v NodeID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the neighbor list of v. The returned slice aliases
// the graph's storage and must not be modified.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// Neighbor returns the i-th neighbor of v.
func (g *Graph) Neighbor(v NodeID, i int) NodeID {
	return g.adj[g.offsets[v]+int64(i)]
}

// FeatureBits returns node v's feature vector as raw FP16 bit patterns.
// The returned slice aliases the graph's storage.
func (g *Graph) FeatureBits(v NodeID) []uint16 {
	return g.features[int(v)*g.dim : (int(v)+1)*g.dim]
}

// Feature returns node v's feature vector converted to float32.
func (g *Graph) Feature(v NodeID) []float32 {
	bits := g.FeatureBits(v)
	out := make([]float32, len(bits))
	for i, b := range bits {
		out[i] = Fp16ToFloat32(b)
	}
	return out
}

// AvgDegree returns the mean out-degree.
func (g *Graph) AvgDegree() float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(g.NumNodes())
}

// MaxDegree returns the largest out-degree.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(NodeID(v)); d > max {
			max = d
		}
	}
	return max
}

// Builder incrementally assembles a Graph.
type Builder struct {
	adjLists [][]NodeID
	dim      int
	features []uint16
}

// NewBuilder returns a builder for n nodes with the given feature dim.
func NewBuilder(n, dim int) *Builder {
	return &Builder{
		adjLists: make([][]NodeID, n),
		dim:      dim,
		features: make([]uint16, n*dim),
	}
}

// AddEdge appends dst to src's neighbor list.
func (b *Builder) AddEdge(src, dst NodeID) {
	b.adjLists[src] = append(b.adjLists[src], dst)
}

// SetFeature stores node v's feature vector (length must equal dim).
func (b *Builder) SetFeature(v NodeID, feat []float32) {
	if len(feat) != b.dim {
		panic(fmt.Sprintf("graph: feature length %d != dim %d", len(feat), b.dim))
	}
	base := int(v) * b.dim
	for i, f := range feat {
		b.features[base+i] = Float32ToFp16(f)
	}
}

// Build finalizes the CSR arrays. The builder must not be reused.
func (b *Builder) Build() *Graph {
	n := len(b.adjLists)
	g := &Graph{
		offsets:  make([]int64, n+1),
		dim:      b.dim,
		features: b.features,
	}
	var total int64
	for i, l := range b.adjLists {
		g.offsets[i] = total
		total += int64(len(l))
	}
	g.offsets[n] = total
	g.adj = make([]NodeID, 0, total)
	for _, l := range b.adjLists {
		g.adj = append(g.adj, l...)
	}
	return g
}

// Fp16ToFloat32 converts an IEEE 754 half-precision bit pattern to float32.
func Fp16ToFloat32(h uint16) float32 {
	sign := uint32(h>>15) & 1
	exp := uint32(h>>10) & 0x1f
	frac := uint32(h) & 0x3ff
	var bits uint32
	switch exp {
	case 0:
		if frac == 0 {
			bits = sign << 31 // signed zero
		} else {
			// subnormal: normalize
			e := uint32(127 - 15 + 1)
			for frac&0x400 == 0 {
				frac <<= 1
				e--
			}
			frac &= 0x3ff
			bits = sign<<31 | e<<23 | frac<<13
		}
	case 0x1f:
		bits = sign<<31 | 0xff<<23 | frac<<13 // inf/NaN
	default:
		bits = sign<<31 | (exp-15+127)<<23 | frac<<13
	}
	return math.Float32frombits(bits)
}

// Float32ToFp16 converts a float32 to the nearest IEEE 754 half-precision
// bit pattern (round-to-nearest-even, overflow to infinity).
func Float32ToFp16(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23)&0xff - 127 + 15
	frac := bits & 0x7fffff
	switch {
	case int32(bits>>23)&0xff == 0xff: // inf/NaN
		if frac != 0 {
			return sign | 0x7e00 // NaN
		}
		return sign | 0x7c00
	case exp >= 0x1f:
		return sign | 0x7c00 // overflow → inf
	case exp <= 0:
		if exp < -10 {
			return sign // underflow → zero
		}
		// subnormal
		frac |= 0x800000
		shift := uint32(14 - exp)
		half := frac >> shift
		rem := frac & ((1 << shift) - 1)
		mid := uint32(1) << (shift - 1)
		if rem > mid || (rem == mid && half&1 == 1) {
			half++
		}
		return sign | uint16(half)
	default:
		half := uint16(exp)<<10 | uint16(frac>>13)
		rem := frac & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && half&1 == 1) {
			half++ // may carry into exponent; that is correct rounding
		}
		return sign | half
	}
}
