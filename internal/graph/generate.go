package graph

import (
	"fmt"
	"math"

	"beacongnn/internal/xrand"
)

// GenSpec describes a synthetic graph to generate. The generators target
// the statistics the simulator is sensitive to — node count, degree
// distribution, and feature dimension — matching how the paper scales
// real datasets up following SmartSage's methodology.
type GenSpec struct {
	Nodes      int     // number of nodes
	AvgDegree  float64 // target mean out-degree
	MaxDegree  int     // degree cap (0 = Nodes-1)
	FeatureDim int     // FP16 feature vector length
	PowerLaw   float64 // Pareto shape; 0 = uniform degrees
	// Locality is the fraction of edges wired inside a node's community
	// block (LocalityBlock contiguous ids) instead of uniformly across
	// the graph. 0 keeps the historical uniform wiring bit-for-bit.
	Locality      float64
	LocalityBlock int // community size; 0 = 64
	Seed          uint64
}

// Validate reports whether the spec is usable.
func (s GenSpec) Validate() error {
	switch {
	case s.Nodes <= 0:
		return fmt.Errorf("graph: Nodes must be positive, got %d", s.Nodes)
	case s.AvgDegree < 0:
		return fmt.Errorf("graph: AvgDegree must be non-negative, got %v", s.AvgDegree)
	case s.FeatureDim < 0:
		return fmt.Errorf("graph: FeatureDim must be non-negative, got %d", s.FeatureDim)
	case s.AvgDegree >= float64(s.Nodes):
		return fmt.Errorf("graph: AvgDegree %v >= Nodes %d", s.AvgDegree, s.Nodes)
	case s.Locality < 0 || s.Locality > 1:
		return fmt.Errorf("graph: Locality %v outside [0,1]", s.Locality)
	case s.LocalityBlock < 0:
		return fmt.Errorf("graph: LocalityBlock must be non-negative, got %d", s.LocalityBlock)
	}
	return nil
}

// DegreeSequence draws a degree sequence matching the spec without
// materializing edges. The same routine backs both graph generation and
// the full-scale DirectGraph layout accounting for Table IV, so the two
// always agree on the degree distribution.
func DegreeSequence(spec GenSpec) ([]int, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(spec.Seed)
	maxDeg := spec.MaxDegree
	if maxDeg <= 0 || maxDeg > spec.Nodes-1 {
		maxDeg = spec.Nodes - 1
	}
	degs := make([]int, spec.Nodes)
	if spec.AvgDegree == 0 {
		return degs, nil
	}
	if spec.PowerLaw <= 0 {
		// Uniform in [1, 2*avg-1]: mean = avg.
		hi := int(2*spec.AvgDegree) - 1
		if hi < 1 {
			hi = 1
		}
		for i := range degs {
			d := 1 + rng.Intn(hi)
			if d > maxDeg {
				d = maxDeg
			}
			degs[i] = d
		}
		return degs, nil
	}
	// Pareto(shape=alpha, scale=xm) truncated at maxDeg, then rescaled so
	// the empirical mean matches AvgDegree. Real GNN graphs (reddit,
	// amazon, ...) are heavy-tailed; densification means high average
	// degree with a few very large hubs, which is what stresses secondary
	// sections in DirectGraph.
	alpha := spec.PowerLaw
	xm := spec.AvgDegree * (alpha - 1) / alpha // Pareto mean = xm*a/(a-1)
	if alpha <= 1 {
		xm = spec.AvgDegree / 4
	}
	if xm < 1 {
		xm = 1
	}
	var sum float64
	raw := make([]float64, spec.Nodes)
	for i := range raw {
		u := rng.Float64()
		if u >= 1 {
			u = math.Nextafter(1, 0)
		}
		d := xm / math.Pow(1-u, 1/alpha)
		if d > float64(maxDeg) {
			d = float64(maxDeg)
		}
		raw[i] = d
		sum += d
	}
	scale := spec.AvgDegree * float64(spec.Nodes) / sum
	for i, d := range raw {
		v := int(d*scale + 0.5)
		if v < 1 {
			v = 1
		}
		if v > maxDeg {
			v = maxDeg
		}
		degs[i] = v
	}
	return degs, nil
}

// Generate materializes a synthetic graph from the spec: a degree
// sequence is drawn, then each node's neighbors are chosen uniformly at
// random (a configuration-model-style wiring, adequate because the
// simulator cares about address distribution, not community structure).
// A non-zero Locality mixes in community structure — that fraction of
// edges stays inside the node's LocalityBlock-sized id block — which is
// what topology-aware placement policies exist to exploit. Features are
// filled with small deterministic pseudo-random values.
func Generate(spec GenSpec) (*Graph, error) {
	degs, err := DegreeSequence(spec)
	if err != nil {
		return nil, err
	}
	rng := xrand.New(spec.Seed + 1)
	block := spec.LocalityBlock
	if block <= 0 {
		block = 64
	}
	if block > spec.Nodes {
		block = spec.Nodes
	}
	b := NewBuilder(spec.Nodes, spec.FeatureDim)
	for v, d := range degs {
		for j := 0; j < d; j++ {
			var u int
			if spec.Locality > 0 && rng.Float64() < spec.Locality {
				// Community edge: target within this node's id block.
				start := (v / block) * block
				span := block
				if start+span > spec.Nodes {
					span = spec.Nodes - start
				}
				u = start + rng.Intn(span)
			} else {
				// Uniform target, avoiding trivial self loops where possible.
				u = rng.Intn(spec.Nodes)
			}
			if u == v {
				u = (u + 1) % spec.Nodes
			}
			b.AddEdge(NodeID(v), NodeID(u))
		}
	}
	if spec.FeatureDim > 0 {
		feat := make([]float32, spec.FeatureDim)
		for v := 0; v < spec.Nodes; v++ {
			for i := range feat {
				feat[i] = float32(rng.Float64()*2 - 1)
			}
			b.SetFeature(NodeID(v), feat)
		}
	}
	return b.Build(), nil
}
