package firmware

import (
	"testing"

	"beacongnn/internal/config"
	"beacongnn/internal/sim"
)

func proc(t *testing.T, cores int) (*sim.Kernel, *Processor) {
	t.Helper()
	k := sim.New()
	cfg := config.Default().Firmware
	cfg.Cores = cores
	p, err := NewProcessor(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k, p
}

func TestProcessorValidation(t *testing.T) {
	if _, err := NewProcessor(sim.New(), config.Firmware{Cores: 0}); err == nil {
		t.Fatal("zero cores accepted")
	}
}

func TestCoreContention(t *testing.T) {
	k, p := proc(t, 2)
	var ends []sim.Time
	for i := 0; i < 4; i++ {
		p.Do(10, func() { ends = append(ends, k.Now()) })
	}
	k.Run()
	// 2 cores: pairs finish at 10 and 20.
	if ends[0] != 10 || ends[1] != 10 || ends[2] != 20 || ends[3] != 20 {
		t.Fatalf("ends = %v", ends)
	}
	if p.BusyTime() != 40 {
		t.Fatalf("busy = %v", p.BusyTime())
	}
}

func TestTypedOpsUseConfiguredCosts(t *testing.T) {
	k, p := proc(t, 1)
	cfg := p.Config()
	var at sim.Time
	p.Poll(func() { at = k.Now() })
	k.Run()
	if at != cfg.PollCost {
		t.Fatalf("poll = %v, want %v", at, cfg.PollCost)
	}
	start := k.Now()
	p.SampleNodes(10, func() { at = k.Now() })
	k.Run()
	want := cfg.SampleCostFixed + 10*cfg.SampleCostPerNode
	if at-start != want {
		t.Fatalf("sample = %v, want %v", at-start, want)
	}
}

func TestOnBusyHook(t *testing.T) {
	k, p := proc(t, 1)
	var total sim.Time
	p.OnBusy = func(d sim.Time) { total += d }
	p.Translate(nil)
	p.FlashCmd(nil)
	k.Run()
	if total != p.Config().TranslateCost+p.Config().FlashCmdCost {
		t.Fatalf("hook total = %v", total)
	}
}

func TestEnginePipelinedOverlaps(t *testing.T) {
	k := sim.New()
	e := NewEngine(k, true)
	const prepT, compT = 10, 30
	var finished sim.Time
	prep := func(i int, done func()) { k.After(prepT, done) }
	compute := func(i int, done func()) { k.After(compT, done) }
	e.Run(4, prep, compute, func() { finished = k.Now() })
	k.Run()
	// Pipelined: total = prep + 4×compute (compute dominates).
	want := sim.Time(prepT + 4*compT)
	if finished != want {
		t.Fatalf("pipelined finish = %v, want %v", finished, want)
	}
}

func TestEngineSerialDoesNotOverlap(t *testing.T) {
	k := sim.New()
	e := NewEngine(k, false)
	var finished sim.Time
	prep := func(i int, done func()) { k.After(10, done) }
	compute := func(i int, done func()) { k.After(30, done) }
	e.Run(4, prep, compute, func() { finished = k.Now() })
	k.Run()
	if finished != 4*(10+30) {
		t.Fatalf("serial finish = %v, want 160", finished)
	}
}

func TestEnginePrepBoundPipeline(t *testing.T) {
	// When prep dominates, pipelined total = 4×prep + compute.
	k := sim.New()
	e := NewEngine(k, true)
	var finished sim.Time
	prep := func(i int, done func()) { k.After(50, done) }
	compute := func(i int, done func()) { k.After(10, done) }
	e.Run(4, prep, compute, func() { finished = k.Now() })
	k.Run()
	if finished != 4*50+10 {
		t.Fatalf("prep-bound finish = %v, want 210", finished)
	}
}

func TestEngineComputeOrderPreserved(t *testing.T) {
	// Compute(i) must never start before compute(i−1) finishes even if
	// preps race ahead.
	k := sim.New()
	e := NewEngine(k, true)
	var order []int
	prep := func(i int, done func()) { k.After(1, done) }
	compute := func(i int, done func()) {
		order = append(order, i)
		k.After(100, done)
	}
	e.Run(3, prep, compute, nil)
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("compute order = %v", order)
		}
	}
}

func TestEngineZeroBatches(t *testing.T) {
	k := sim.New()
	called := false
	NewEngine(k, true).Run(0, nil, nil, func() { called = true })
	k.Run()
	if !called {
		t.Fatal("allDone not called for zero batches")
	}
}
