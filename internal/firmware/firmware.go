// Package firmware models the SSD embedded processor: a pool of cores
// executing the flash firmware's control-plane functions (Section
// II-B2) — host I/O polling, FTL translation, flash-I/O scheduling,
// result parsing, and (in BG-1/BG-DG) software neighbor sampling — plus
// the firmware GNN engine of Section VI-D that pipelines data
// preparation with GNN computation across mini-batches.
//
// Every operation occupies a core for a configured cost; core
// contention is exactly what caps BG-SP/BG-DGSP throughput in the
// paper, and what the BG-2 hardware router removes from the path.
package firmware

import (
	"fmt"

	"beacongnn/internal/config"
	"beacongnn/internal/sim"
)

// Processor is the embedded-core pool.
type Processor struct {
	k     *sim.Kernel
	cfg   config.Firmware
	cores *sim.Server
	busy  sim.Time // accumulated core-busy time (all cores)

	// OnBusy, when set, receives per-op core time for energy accounting.
	OnBusy func(t sim.Time)
}

// NewProcessor returns a core pool with cfg.Cores parallel cores.
func NewProcessor(k *sim.Kernel, cfg config.Firmware) (*Processor, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("firmware: cores must be positive, got %d", cfg.Cores)
	}
	return &Processor{k: k, cfg: cfg, cores: sim.NewServer(k, cfg.Cores)}, nil
}

// SetTracer attaches a request tracer to the core pool.
func (p *Processor) SetTracer(t sim.Tracer) { p.cores.SetTracer(t, "firmware.cores", 0) }

// Config returns the firmware configuration.
func (p *Processor) Config() config.Firmware { return p.cfg }

// BusyTime returns total core-busy time accumulated so far.
func (p *Processor) BusyTime() sim.Time { return p.busy }

// QueueLen returns requests waiting for a core.
func (p *Processor) QueueLen() int { return p.cores.QueueLen() }

// Occupancy reports (ops in service, ops queued) on the core pool —
// both zero once a run has drained.
func (p *Processor) Occupancy() (busy, queued int) { return p.cores.Busy(), p.cores.QueueLen() }

// Do occupies one core for cost, then runs done.
func (p *Processor) Do(cost sim.Time, done func()) {
	p.busy += cost
	if p.OnBusy != nil {
		p.OnBusy(cost)
	}
	p.cores.Submit(cost, done)
}

// Poll models the I/O poller picking up or completing one host request.
func (p *Processor) Poll(done func()) { p.Do(p.cfg.PollCost, done) }

// Translate models one FTL LPA→PPA lookup.
func (p *Processor) Translate(done func()) { p.Do(p.cfg.TranslateCost, done) }

// FlashCmd models the flash I/O scheduler handling one flash command:
// request-queue management, DMA configuration, and status polling.
func (p *Processor) FlashCmd(done func()) { p.Do(p.cfg.FlashCmdCost, done) }

// ParseResult models classifying one sampling result landed in DRAM.
func (p *Processor) ParseResult(done func()) { p.Do(p.cfg.ResultParseCost, done) }

// ECCDecode models a firmware soft-decode pass (or other ECC recovery
// work) of the given duration on one embedded core.
func (p *Processor) ECCDecode(cost sim.Time, done func()) { p.Do(cost, done) }

// SampleNodes models firmware-based neighbor sampling of n neighbors
// from one node's list (the SmartSage/BG-1 offload path).
func (p *Processor) SampleNodes(n int, done func()) {
	p.Do(p.cfg.SampleCostFixed+sim.Time(n)*p.cfg.SampleCostPerNode, done)
}

// Engine is the firmware GNN engine (Section VI-D): it schedules
// mini-batches so that data preparation of batch i+1 overlaps GNN
// computation of batch i, keeping the flash backend and the spatial
// accelerator busy simultaneously.
type Engine struct {
	k         *sim.Kernel
	Pipelined bool
}

// NewEngine returns a batch scheduler. Pipelined=false degenerates to
// strict prep→compute→prep ordering (the ablation in bench tests).
func NewEngine(k *sim.Kernel, pipelined bool) *Engine {
	return &Engine{k: k, Pipelined: pipelined}
}

// Run schedules numBatches batches. prep(i, done) must start batch i's
// data preparation and call done on completion; compute likewise. When
// pipelined, prep(i+1) starts as soon as prep(i) finishes (the backend
// is free), while compute(i) additionally waits for compute(i−1)'s
// completion (one accelerator). allDone fires after the last compute.
func (e *Engine) Run(numBatches int, prep, compute func(i int, done func()), allDone func()) {
	if numBatches <= 0 {
		if allDone != nil {
			allDone()
		}
		return
	}
	prepDone := make([]bool, numBatches)
	compDone := make([]bool, numBatches)
	compStarted := make([]bool, numBatches)

	var tryCompute func(i int)

	tryCompute = func(i int) {
		if i >= numBatches || compStarted[i] || !prepDone[i] {
			return
		}
		if i > 0 && !compDone[i-1] {
			return
		}
		compStarted[i] = true
		compute(i, func() {
			compDone[i] = true
			if i == numBatches-1 {
				if allDone != nil {
					allDone()
				}
				return
			}
			tryCompute(i + 1)
		})
	}
	if e.Pipelined {
		var startPrep func(i int)
		startPrep = func(i int) {
			prep(i, func() {
				prepDone[i] = true
				tryCompute(i)
				if i+1 < numBatches {
					startPrep(i + 1)
				}
			})
		}
		startPrep(0)
		return
	}
	// Serial mode: chain prep(i) → compute(i) → prep(i+1).
	var serial func(i int)
	serial = func(i int) {
		prep(i, func() {
			prepDone[i] = true
			compStarted[i] = true
			compute(i, func() {
				compDone[i] = true
				if i+1 < numBatches {
					serial(i + 1)
				} else if allDone != nil {
					allDone()
				}
			})
		})
	}
	serial(0)
}
