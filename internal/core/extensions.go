package core

import (
	"fmt"
	"io"

	"beacongnn/internal/array"
	"beacongnn/internal/exp"
	"beacongnn/internal/platform"
	"beacongnn/internal/sim"
)

// RunExtensions reports the beyond-the-paper studies (DESIGN.md §6):
// design ablations, the Section VIII scale-out array, DirectGraph
// construction throughput (§VI-B), and regular-I/O interference in
// acceleration mode (§VI-G). The studies are independent, so they all
// run concurrently on the experiment engine; results are printed in a
// fixed order once everything has finished.
func RunExtensions(o *Options, w io.Writer) error {
	o.fill()
	eng := o.engine()

	// Configs for the ablations and the skew study. Each is a value
	// copy; nothing below mutates o.Cfg.
	pipeOff := o.Cfg
	pipeOff.Ablation.NoPipeline = true
	coalOn := o.Cfg
	coalOn.GNN.Fanout = 6
	coalOff := coalOn
	coalOff.Ablation.NoCoalesce = true
	zipf := o.Cfg
	zipf.GNN.TargetSkew = 1.4

	var (
		on, off, con, coff, z *platform.Result
		sweep                 []*array.Result
		cons                  *platform.ConstructionResult
		ioStats               *platform.RegularIOStats
		idle                  sim.Time
	)
	err := exp.Go(
		func() (err error) { on, err = o.simulateCfg(platform.BG2, o.Cfg, "amazon", simTimeline); return },
		func() (err error) { off, err = o.simulateCfg(platform.BG2, pipeOff, "amazon", simTimeline); return },
		func() (err error) { con, err = o.simulateCfg(platform.BG2, coalOn, "reddit", simTimeline); return },
		func() (err error) { coff, err = o.simulateCfg(platform.BG2, coalOff, "reddit", simTimeline); return },
		func() (err error) { z, err = o.simulateCfg(platform.BG2, zipf, "amazon", simTimeline); return },
		func() error {
			inst, err := o.instance("amazon")
			if err != nil {
				return err
			}
			eng.Throttle(func() {
				sweep, err = array.Sweep(platform.BG2, o.Cfg, array.Config{P2PBandwidth: 4e9}, inst, o.Batches, 8)
			})
			return err
		},
		func() error {
			inst, err := o.instance("amazon")
			if err != nil {
				return err
			}
			eng.Throttle(func() {
				cons, err = platform.SimulateConstruction(o.Cfg, inst)
			})
			return err
		},
		func() error {
			inst, err := o.instance("amazon")
			if err != nil {
				return err
			}
			eng.Throttle(func() {
				var s *platform.System
				s, err = platform.NewSystem(platform.BG2, o.Cfg, inst, 0)
				if err != nil {
					return
				}
				_, ioStats, err = s.RunWithRegularIO(o.Batches)
			})
			return err
		},
		func() (err error) {
			eng.Throttle(func() { idle, err = platform.RegularIOBaseline(o.Cfg) })
			return
		},
	)
	if err != nil {
		return err
	}

	// Ablation: mini-batch pipelining (§VI-D).
	fmt.Fprintf(w, "ablation: prep/compute pipelining (§VI-D)  on %.0f t/s, off %.0f t/s → %.2f× gain\n",
		on.Throughput, off.Throughput, on.Throughput/off.Throughput)

	// Ablation: secondary-command coalescing (§V-A) on a high-degree graph.
	fmt.Fprintf(w, "ablation: secondary coalescing (§V-A)      reads %d → %d without (%.2f× amplification)\n",
		con.FlashReads, coff.FlashReads, float64(coff.FlashReads)/float64(con.FlashReads))

	// Scale-out array (§VIII).
	fmt.Fprintln(w, "scale-out array (§VIII), BG-2 on amazon, 4 GB/s P2P links:")
	fmt.Fprintf(w, "  %-8s %10s %12s %14s %8s\n", "devices", "speedup", "capacity", "P2P demand", "bound")
	for _, r := range sweep {
		bound := "—"
		if r.FabricBound {
			bound = "fabric"
		}
		fmt.Fprintf(w, "  %-8d %9.2f× %9.0f GB %11.2f GB/s %8s\n",
			r.Devices, r.Speedup, float64(r.CapacityBytes)/1e9, r.P2PDemand/1e9, bound)
	}

	// DirectGraph construction (§VI-B).
	fmt.Fprintf(w, "DirectGraph flush (§VI-B): %d pages in %v → %.0f MB/s\n",
		cons.Pages, cons.Elapsed, cons.Bandwidth/1e6)

	// Regular-I/O interference (§VI-G).
	fmt.Fprintf(w, "regular I/O (§VI-G): idle-device read %v; in acceleration mode %v mean (deferral %v)\n",
		idle, ioStats.MeanLatency, ioStats.MeanDeferral)

	// Skewed (hot-node) targets.
	fmt.Fprintf(w, "hot-node targets (Zipf 1.4): %.0f t/s vs %.0f uniform (%.0f%%), mean dies %.1f vs %.1f\n",
		z.Throughput, on.Throughput, z.Throughput/on.Throughput*100, z.MeanDies, on.MeanDies)
	return nil
}
