package core

import (
	"fmt"
	"io"

	"beacongnn/internal/array"
	"beacongnn/internal/platform"
)

// RunExtensions reports the beyond-the-paper studies (DESIGN.md §5):
// design ablations, the Section VIII scale-out array, DirectGraph
// construction throughput (§VI-B), and regular-I/O interference in
// acceleration mode (§VI-G).
func RunExtensions(o *Options, w io.Writer) error {
	o.fill()

	// Ablation: mini-batch pipelining (§VI-D).
	inst, err := o.instance("amazon")
	if err != nil {
		return err
	}
	on, err := platform.Simulate(platform.BG2, o.Cfg, inst, o.Batches, 0)
	if err != nil {
		return err
	}
	cfg := o.Cfg
	cfg.Ablation.NoPipeline = true
	off, err := platform.Simulate(platform.BG2, cfg, inst, o.Batches, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "ablation: prep/compute pipelining (§VI-D)  on %.0f t/s, off %.0f t/s → %.2f× gain\n",
		on.Throughput, off.Throughput, on.Throughput/off.Throughput)

	// Ablation: secondary-command coalescing (§V-A) on a high-degree graph.
	rinst, err := o.instance("reddit")
	if err != nil {
		return err
	}
	ccfg := o.Cfg
	ccfg.GNN.Fanout = 6
	con, err := platform.Simulate(platform.BG2, ccfg, rinst, o.Batches, 0)
	if err != nil {
		return err
	}
	ccfg.Ablation.NoCoalesce = true
	coff, err := platform.Simulate(platform.BG2, ccfg, rinst, o.Batches, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "ablation: secondary coalescing (§V-A)      reads %d → %d without (%.2f× amplification)\n",
		con.FlashReads, coff.FlashReads, float64(coff.FlashReads)/float64(con.FlashReads))

	// Scale-out array (§VIII).
	fmt.Fprintln(w, "scale-out array (§VIII), BG-2 on amazon, 4 GB/s P2P links:")
	fmt.Fprintf(w, "  %-8s %10s %12s %14s %8s\n", "devices", "speedup", "capacity", "P2P demand", "bound")
	sweep, err := array.Sweep(platform.BG2, o.Cfg, array.Config{P2PBandwidth: 4e9}, inst, o.Batches, 8)
	if err != nil {
		return err
	}
	for _, r := range sweep {
		bound := "—"
		if r.FabricBound {
			bound = "fabric"
		}
		fmt.Fprintf(w, "  %-8d %9.2f× %9.0f GB %11.2f GB/s %8s\n",
			r.Devices, r.Speedup, float64(r.CapacityBytes)/1e9, r.P2PDemand/1e9, bound)
	}

	// DirectGraph construction (§VI-B).
	cons, err := platform.SimulateConstruction(o.Cfg, inst)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "DirectGraph flush (§VI-B): %d pages in %v → %.0f MB/s\n",
		cons.Pages, cons.Elapsed, cons.Bandwidth/1e6)

	// Regular-I/O interference (§VI-G).
	s, err := platform.NewSystem(platform.BG2, o.Cfg, inst, 0)
	if err != nil {
		return err
	}
	_, ioStats, err := s.RunWithRegularIO(o.Batches)
	if err != nil {
		return err
	}
	idle, err := platform.RegularIOBaseline(o.Cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "regular I/O (§VI-G): idle-device read %v; in acceleration mode %v mean (deferral %v)\n",
		idle, ioStats.MeanLatency, ioStats.MeanDeferral)

	// Skewed (hot-node) targets.
	zcfg := o.Cfg
	zcfg.GNN.TargetSkew = 1.4
	z, err := platform.Simulate(platform.BG2, zcfg, inst, o.Batches, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "hot-node targets (Zipf 1.4): %.0f t/s vs %.0f uniform (%.0f%%), mean dies %.1f vs %.1f\n",
		z.Throughput, on.Throughput, z.Throughput/on.Throughput*100, z.MeanDies, on.MeanDies)
	return nil
}
