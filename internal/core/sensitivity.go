package core

import (
	"fmt"
	"io"

	"beacongnn/internal/config"
	"beacongnn/internal/exp"
	"beacongnn/internal/platform"
	"beacongnn/internal/viz"
)

// Sweep is one Figure-18 sensitivity axis: it mutates the configuration
// per point and reports each BG-X platform's throughput, normalized to
// the sweep's lowest value per platform (the paper's presentation).
type Sweep struct {
	Name   string
	Points []SweepPoint
}

// SweepPoint is one x-axis value of a sweep.
type SweepPoint struct {
	Label string
	Apply func(c *config.Config)
}

// Fig18Sweeps returns the six sensitivity sweeps of Figure 18.
func Fig18Sweeps(quick bool) []Sweep {
	batch := []int{32, 64, 128, 256}
	chanBW := []float64{333e6, 800e6, 1600e6, 2400e6}
	cores := []int{1, 2, 4, 8}
	channels := []int{4, 8, 16, 32}
	dies := []int{2, 4, 8, 16}
	pages := []int{2048, 4096, 8192, 16384}
	if quick {
		batch = []int{32, 128}
		chanBW = []float64{333e6, 1600e6}
		cores = []int{1, 8}
		channels = []int{4, 16}
		dies = []int{2, 8}
		pages = []int{2048, 8192}
	}
	var sweeps []Sweep

	s := Sweep{Name: "batch size"}
	for _, b := range batch {
		b := b
		s.Points = append(s.Points, SweepPoint{fmt.Sprintf("%d", b), func(c *config.Config) { c.GNN.BatchSize = b }})
	}
	sweeps = append(sweeps, s)

	s = Sweep{Name: "channel bandwidth (MB/s)"}
	for _, bw := range chanBW {
		bw := bw
		s.Points = append(s.Points, SweepPoint{fmt.Sprintf("%.0f", bw/1e6), func(c *config.Config) { c.Flash.ChannelBW = bw }})
	}
	sweeps = append(sweeps, s)

	s = Sweep{Name: "controller cores"}
	for _, n := range cores {
		n := n
		s.Points = append(s.Points, SweepPoint{fmt.Sprintf("%d", n), func(c *config.Config) { c.Firmware.Cores = n }})
	}
	sweeps = append(sweeps, s)

	s = Sweep{Name: "flash channels"}
	for _, n := range channels {
		n := n
		s.Points = append(s.Points, SweepPoint{fmt.Sprintf("%d", n), func(c *config.Config) { c.Flash.Channels = n }})
	}
	sweeps = append(sweeps, s)

	s = Sweep{Name: "dies per channel"}
	for _, n := range dies {
		n := n
		s.Points = append(s.Points, SweepPoint{fmt.Sprintf("%d", n), func(c *config.Config) { c.Flash.DiesPerChannel = n }})
	}
	sweeps = append(sweeps, s)

	s = Sweep{Name: "flash page size (B)"}
	for _, p := range pages {
		p := p
		s.Points = append(s.Points, SweepPoint{fmt.Sprintf("%d", p), func(c *config.Config) { c.Flash.PageSize = p }})
	}
	sweeps = append(sweeps, s)

	return sweeps
}

// RunSweep executes one sweep on the amazon workload (the paper's
// representative dataset) and returns throughput per platform per point.
// Every (point, platform) cell runs in parallel; page-size points get
// their own DirectGraph build through the shared instance cache, so a
// rebuild happens at most once per page size.
func RunSweep(o *Options, s Sweep) (map[string][]float64, error) {
	o.fill()
	kinds := platform.BGOnly()
	type cell struct {
		pt int
		k  int
	}
	var cells []cell
	for pi := range s.Points {
		for ki := range kinds {
			cells = append(cells, cell{pi, ki})
		}
	}
	flat, err := exp.Map(cells, func(c cell) (*platform.Result, error) {
		cfg := o.Cfg
		s.Points[c.pt].Apply(&cfg)
		r, err := o.simulateCfg(kinds[c.k], cfg, "amazon", simTimeline)
		if err != nil {
			return nil, fmt.Errorf("%s %s=%s: %w", kinds[c.k], s.Name, s.Points[c.pt].Label, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	out := map[string][]float64{}
	for i, c := range cells {
		k := kinds[c.k].String()
		out[k] = append(out[k], flat[i].Throughput)
	}
	return out, nil
}

// RunFig18 executes all six sweeps — concurrently, every (sweep, point,
// platform) cell an independent simulation — and prints each platform's
// series normalized to its own minimum (the paper's normalization).
func RunFig18(o *Options, w io.Writer) error {
	o.fill()
	sweeps := Fig18Sweeps(o.Quick)
	all, err := exp.Map(sweeps, func(s Sweep) (map[string][]float64, error) {
		return RunSweep(o, s)
	})
	if err != nil {
		return err
	}
	for si, s := range sweeps {
		res := all[si]
		fmt.Fprintf(w, "-- %s\n", s.Name)
		fmt.Fprintf(w, "   %-9s", "")
		for _, pt := range s.Points {
			fmt.Fprintf(w, "%10s", pt.Label)
		}
		fmt.Fprintln(w)
		var plotted []viz.Series
		var labels []string
		for _, pt := range s.Points {
			labels = append(labels, pt.Label)
		}
		for _, k := range platform.BGOnly() {
			series := res[k.String()]
			min := series[0]
			for _, v := range series {
				if v < min {
					min = v
				}
			}
			fmt.Fprintf(w, "   %-9s", k)
			norm := make([]float64, len(series))
			for i, v := range series {
				norm[i] = v / min
				fmt.Fprintf(w, "%10.2f", norm[i])
			}
			fmt.Fprintln(w)
			plotted = append(plotted, viz.Series{Name: k.String(), Values: norm})
		}
		fmt.Fprint(w, viz.LinePlot("", labels, plotted, 8))
	}
	fmt.Fprintln(w, "paper: BG-2 scales best with batch; BG-1/BG-DG track channel BW; BG-SP/BG-DGSP track cores;")
	fmt.Fprintln(w, "       BG-2 saturates ≥800 MB/s and is core-count-insensitive; page size barely moves BG-2")
	return nil
}
