package core

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"

	"beacongnn/internal/exp"
	"beacongnn/internal/loadgen"
	"beacongnn/internal/platform"
	"beacongnn/internal/sim"
	"beacongnn/internal/trace"
)

// The capacity study answers the north-star serving question — how much
// offered load fits on this box before the tail diverges — with an
// open-loop sweep: seeded arrival schedules (Poisson and bursty MMPP,
// Zipf-skewed across query classes) replayed in virtual time against
// two modeled platforms, the raw BG-2 device and a beaconserved-shaped
// server (memo cache fast path + bounded admission queue). Latency is
// measured from each request's intended start, so saturation shows up
// as the unbounded intended-start tail an open queue really has, not
// the flattened send-time tail a closed-loop driver would report.

// capWorkers is the virtual service-center width. Fixed — never
// Options.Workers — so the curves are byte-identical at any -parallel
// setting: host parallelism fans grid points out, it must not leak into
// the modeled system.
const capWorkers = 4

// capDataset is the workload every curve serves.
const capDataset = "amazon"

// capClasses are the query-class service multipliers (in quarters of
// the calibrated base service time): class 0 is the flagship query, the
// rest model progressively heavier neighborhoods. Zipf selection makes
// class 0 the hottest, which is what gives the cache fast path its
// leverage.
var capClassQuarters = []sim.Time{4, 5, 6, 8}

// capSeed derives a grid point's schedule seed from the run seed and
// the point's coordinates, so every step draws decorrelated arrivals
// but each is individually reproducible.
func capSeed(base uint64, platform, arrival string, step int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d", platform, arrival, step)
	return base ^ h.Sum64()
}

// capPlatform is one modeled serving stack.
type capPlatform struct {
	name    string
	backend loadgen.VirtualBackend // Service filled at calibration
}

// capPlatforms returns the two stacks the sweep compares. The
// beaconserved model adds the memo LRU (hits serve at a PCIe-ish 200µs
// without a worker) and the admission queue bound that turns overload
// into shed 429s instead of unbounded queueing.
func capPlatforms(classes []sim.Time) []capPlatform {
	return []capPlatform{
		{name: "BG-2", backend: loadgen.VirtualBackend{
			Workers: capWorkers, Service: classes,
		}},
		{name: "beaconserved", backend: loadgen.VirtualBackend{
			Workers: capWorkers, Service: classes,
			CacheCap: 2, CacheHit: 200 * sim.Microsecond, Queue: 16,
		}},
	}
}

// capArrivals returns the swept arrival processes at the given rate.
// The MMPP dwell is short relative to even a quick step's span so every
// run sees many modulation cycles and the realized rate stays near the
// grid's nominal rate.
func capArrivals(rate float64) []loadgen.Spec {
	return []loadgen.Spec{
		{Kind: loadgen.ArrivalPoisson, Rate: rate},
		{Kind: loadgen.ArrivalMMPP, Rate: rate, Burst: 1.7, Dwell: 20 * sim.Millisecond},
	}
}

// capFractions are the offered-load grid, as fractions of the nominal
// capacity W/s̄ — straddling 1.0 so the knee lands inside the sweep.
func capFractions(quick bool) []float64 {
	if quick {
		return []float64{0.5, 0.8, 1.1}
	}
	return []float64{0.4, 0.6, 0.8, 0.9, 1.0, 1.1, 1.25}
}

// CapacityCurve is one (platform, arrival) load sweep with its detected
// knee: KneeIndex/KneeQPS name the last step still inside capacity
// (-1/0 when even the lightest step violates the rule), Saturated
// whether the sweep actually crossed the knee.
type CapacityCurve struct {
	Platform  string               `json:"platform"`
	Arrival   string               `json:"arrival"`
	Steps     []loadgen.StepResult `json:"steps"`
	KneeIndex int                  `json:"knee_index"`
	KneeQPS   float64              `json:"knee_qps"`
	Saturated bool                 `json:"saturated"`
}

// CapacityReport is the machine-readable capacity study
// (`beaconbench -exp capacity -json`).
type CapacityReport struct {
	Dataset  string          `json:"dataset"`
	Workers  int             `json:"workers"`
	Classes  int             `json:"classes"`
	Requests int             `json:"requests_per_step"`
	Curves   []CapacityCurve `json:"capacity_curves"`
}

// capRow is one grid point's outcome plus its span breakdown, merged
// per curve for the trace table.
type capRow struct {
	step loadgen.StepResult
	bd   []trace.ResourceStats
}

// capCalibrate derives the per-class service times from the memoized
// flagship simulation: class 0 is the measured BG-2 batch time on the
// dataset, heavier classes scale it by fixed quarters.
func capCalibrate(o *Options) ([]sim.Time, error) {
	base, err := o.simulate(platform.BG2, capDataset, simTimeline)
	if err != nil {
		return nil, err
	}
	classes := make([]sim.Time, len(capClassQuarters))
	for i, q := range capClassQuarters {
		classes[i] = base.Elapsed * q / 4
	}
	return classes, nil
}

// BuildCapacityReport runs the full sweep grid concurrently and
// reassembles it into per-(platform, arrival) curves with knees.
func BuildCapacityReport(o *Options) (*CapacityReport, []string, error) {
	o.fill()
	classes, err := capCalibrate(o)
	if err != nil {
		return nil, nil, err
	}
	var mean sim.Time
	for _, c := range classes {
		mean += c
	}
	mean /= sim.Time(len(classes))
	nominal := float64(capWorkers) / mean.Seconds() // qps at 100% load

	plats := capPlatforms(classes)
	fractions := capFractions(o.Quick)
	requests := 2400
	if o.Quick {
		requests = 600
	}

	type point struct{ p, a, s int }
	var grid []point
	arrivalNames := []string{loadgen.ArrivalPoisson, loadgen.ArrivalMMPP}
	for pi := range plats {
		for ai := range arrivalNames {
			for si := range fractions {
				grid = append(grid, point{pi, ai, si})
			}
		}
	}
	rows, err := exp.Map(grid, func(pt point) (capRow, error) {
		spec := capArrivals(nominal * fractions[pt.s])[pt.a]
		sched, err := loadgen.Build(loadgen.ScheduleSpec{
			Seed:     capSeed(o.Cfg.Seed, plats[pt.p].name, spec.Kind, pt.s),
			Arrival:  spec,
			Requests: requests,
			Classes:  len(classes),
			Skew:     1.0,
		})
		if err != nil {
			return capRow{}, fmt.Errorf("capacity %s/%s step %d: %w", plats[pt.p].name, spec.Kind, pt.s, err)
		}
		rec := trace.NewRecorder()
		b := plats[pt.p].backend
		b.Tracer = rec
		step, err := loadgen.RunVirtual(sched, b)
		if err != nil {
			return capRow{}, fmt.Errorf("capacity %s/%s step %d: %w", plats[pt.p].name, spec.Kind, pt.s, err)
		}
		// Offered load is defined by the grid, not back-derived from
		// the sampled schedule span, so curves line up across
		// platforms; goodput is completions per second of the run's
		// true extent — the makespan, floored by the offered window so
		// a bursty schedule that happens to realize early can never
		// report goodput above what was offered.
		step.OfferedQPS = nominal * fractions[pt.s]
		window := float64(requests) / step.OfferedQPS // offered span, seconds
		if ms := sim.Time(step.MakespanNs).Seconds(); ms > window {
			window = ms
		}
		step.GoodputQPS = float64(step.OK) / window
		return capRow{step: step, bd: rec.Breakdown()}, nil
	})
	if err != nil {
		return nil, nil, err
	}

	rep := &CapacityReport{
		Dataset: capDataset, Workers: capWorkers,
		Classes: len(classes), Requests: requests,
	}
	var traceCells []string
	i := 0
	for _, p := range plats {
		for _, arr := range arrivalNames {
			curve := CapacityCurve{Platform: p.name, Arrival: arr}
			var groups [][]trace.ResourceStats
			for range fractions {
				curve.Steps = append(curve.Steps, rows[i].step)
				groups = append(groups, rows[i].bd)
				i++
			}
			curve.KneeIndex, curve.Saturated = loadgen.Knee(curve.Steps, loadgen.DefaultKneeRule())
			if curve.KneeIndex >= 0 {
				curve.KneeQPS = curve.Steps[curve.KneeIndex].OfferedQPS
			}
			rep.Curves = append(rep.Curves, curve)
			cell := "-"
			for _, st := range trace.MergeResourceStats(groups...) {
				if st.Resource == "loadgen.backend" {
					cell = fmt.Sprintf("wait %v/%v service %v/%v",
						st.Wait.Quantile(0.5), st.Wait.Quantile(0.99),
						st.Service.Quantile(0.5), st.Service.Quantile(0.99))
				}
			}
			traceCells = append(traceCells, cell)
		}
	}
	return rep, traceCells, nil
}

// WriteJSON emits the report as indented JSON.
func (r *CapacityReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// checkCapacity enforces the sweep's structural invariants.
func checkCapacity(rep *CapacityReport) error {
	for _, c := range rep.Curves {
		prev := 0.0
		for i, s := range c.Steps {
			if s.OK+s.Shed+s.Failed != s.Requests {
				return fmt.Errorf("capacity %s/%s step %d: outcomes do not partition requests", c.Platform, c.Arrival, i)
			}
			if s.OfferedQPS <= prev {
				return fmt.Errorf("capacity %s/%s step %d: offered load not increasing", c.Platform, c.Arrival, i)
			}
			prev = s.OfferedQPS
			if s.GoodputQPS > 1.10*s.OfferedQPS {
				return fmt.Errorf("capacity %s/%s step %d: goodput %.1f exceeds offered %.1f", c.Platform, c.Arrival, i, s.GoodputQPS, s.OfferedQPS)
			}
		}
		if c.Saturated && c.KneeIndex >= len(c.Steps)-1 {
			return fmt.Errorf("capacity %s/%s: saturated curve with knee at the last step", c.Platform, c.Arrival)
		}
	}
	return nil
}

// RunCapacity executes the capacity study: per-(platform, arrival)
// offered-load sweeps with coordinated-omission-safe tails, detected
// knees, and the merged backend span quantiles.
func RunCapacity(o *Options, w io.Writer) error {
	o.fill()
	rep, traceCells, err := BuildCapacityReport(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "-- open-loop capacity curves (%s; %d requests/step, %d virtual workers, %d Zipf classes)\n",
		rep.Dataset, rep.Requests, rep.Workers, rep.Classes)
	for _, c := range rep.Curves {
		fmt.Fprintf(w, "   %s / %s\n", c.Platform, c.Arrival)
		fmt.Fprintf(w, "   %10s %9s %6s %6s %10s %10s %10s %10s\n",
			"offered", "goodput", "ok", "shed", "p50", "p99", "p99.9", "max")
		for _, s := range c.Steps {
			fmt.Fprintf(w, "   %8.1f/s %7.1f/s %6d %6d %10v %10v %10v %10v\n",
				s.OfferedQPS, s.GoodputQPS, s.OK, s.Shed,
				sim.Time(s.P50Ns), sim.Time(s.P99Ns), sim.Time(s.P999Ns), sim.Time(s.MaxNs))
		}
		switch {
		case c.KneeIndex < 0:
			fmt.Fprintf(w, "   knee: below the sweep (lightest step already violates the SLO rule)\n")
		case c.Saturated:
			fmt.Fprintf(w, "   knee: %.1f qps (step %d of %d — saturation observed within the sweep)\n",
				c.KneeQPS, c.KneeIndex+1, len(c.Steps))
		default:
			fmt.Fprintf(w, "   knee: >= %.1f qps (sweep never saturated; lower bound)\n", c.KneeQPS)
		}
	}
	fmt.Fprintf(w, "-- loadgen.backend spans per curve (merged across steps; wait p50/p99, service p50/p99)\n")
	for i, c := range rep.Curves {
		fmt.Fprintf(w, "   %-14s %-8s %s\n", c.Platform, c.Arrival, traceCells[i])
	}
	fmt.Fprintln(w, "expect: latency measured from intended start (coordinated-omission-safe), so past the knee")
	fmt.Fprintln(w, "        the BG-2 tail diverges with queue depth while beaconserved sheds to a bounded tail;")
	fmt.Fprintln(w, "        the memo fast path buys beaconserved extra goodput on the Zipf-hot classes;")
	fmt.Fprintln(w, "        the same seed reproduces these curves bit-for-bit at any -parallel width")
	if o.Check {
		if err := checkCapacity(rep); err != nil {
			return err
		}
	}
	return nil
}
