package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSchedDeterministicAcrossWorkers: the scheduler-comparison sweep
// fans (platform, policy) cells over the worker pool; its rendered
// output must be byte-identical for any worker count.
func TestSchedDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) string {
		var b bytes.Buffer
		if err := RunSched(optsWithWorkers(workers), &b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	seq := render(1)
	if seq == "" {
		t.Fatal("empty sched output")
	}
	if par := render(8); par != seq {
		t.Fatalf("workers=8 output differs from sequential:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
	for _, want := range []string{"fifo", "sjf", "edf", "totalfit"} {
		if !strings.Contains(seq, want) {
			t.Fatalf("sched output missing policy %q:\n%s", want, seq)
		}
	}
}

// TestSchedReportJSON: the machine-readable report covers the full
// (platform, policy) grid with live numbers.
func TestSchedReportJSON(t *testing.T) {
	rep, err := BuildSchedReport(optsWithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	kinds, policies := len(schedKinds()), len(schedPolicies())
	if len(rep.Cells) != kinds*policies {
		t.Fatalf("cells = %d, want %d platforms x %d policies", len(rep.Cells), kinds, policies)
	}
	seen := map[string]bool{}
	for _, c := range rep.Cells {
		seen[c.Policy] = true
		if c.Throughput <= 0 || c.CmdLifetime <= 0 || c.Commands == 0 {
			t.Fatalf("degenerate cell %+v", c)
		}
	}
	for _, p := range schedPolicies() {
		if !seen[p] {
			t.Fatalf("policy %q missing from report", p)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round SchedReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if len(round.Cells) != len(rep.Cells) {
		t.Fatalf("round-trip lost cells: %d vs %d", len(round.Cells), len(rep.Cells))
	}
}
