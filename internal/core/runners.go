package core

import (
	"fmt"
	"io"

	"beacongnn/internal/dataset"
	"beacongnn/internal/directgraph"
	"beacongnn/internal/exp"
	"beacongnn/internal/flash"
	"beacongnn/internal/metrics"
	"beacongnn/internal/platform"
	"beacongnn/internal/sim"
	"beacongnn/internal/viz"
)

// RunTable2 prints the platform configuration (the reconstructed
// Table II; see DESIGN.md §1 for the derivation).
func RunTable2(o *Options, w io.Writer) error {
	o.fill()
	c := o.Cfg
	fmt.Fprintf(w, "SSD backend     %d channels × %d dies (%d total), %d B pages, %d pages/block, %d blocks/die (%.0f GB)\n",
		c.Flash.Channels, c.Flash.DiesPerChannel, c.Flash.TotalDies(),
		c.Flash.PageSize, c.Flash.PagesPerBlock, c.Flash.BlocksPerDie,
		float64(c.Flash.TotalBytes())/1e9)
	fmt.Fprintf(w, "Flash timing    read %v, program %v, erase %v; channel %.0f MB/s\n",
		c.Flash.ReadLatency, c.Flash.ProgramLatency, c.Flash.EraseLatency, c.Flash.ChannelBW/1e6)
	fmt.Fprintf(w, "Controller      %d embedded cores; flash-cmd %v, parse %v, FTL lookup %v\n",
		c.Firmware.Cores, c.Firmware.FlashCmdCost, c.Firmware.ResultParseCost, c.Firmware.TranslateCost)
	fmt.Fprintf(w, "SSD DRAM        %.1f GB/s, %v latency\n", c.DRAM.Bandwidth/1e9, c.DRAM.Latency)
	fmt.Fprintf(w, "PCIe            %.2f GB/s (Gen4 ×4), %v latency\n", c.PCIe.Bandwidth/1e9, c.PCIe.Latency)
	fmt.Fprintf(w, "SSD accelerator %d×%d systolic + %d-lane vector @ %.1f GHz, %d KB SRAM\n",
		c.SSDAccel.Rows, c.SSDAccel.Cols, c.SSDAccel.VectorLanes, c.SSDAccel.ClockHz/1e9, c.SSDAccel.SRAMBytes/1024)
	fmt.Fprintf(w, "Discrete accel  %d×%d systolic @ %.2f GHz (server-scale TPU)\n",
		c.TPU.Rows, c.TPU.Cols, c.TPU.ClockHz/1e9)
	fmt.Fprintf(w, "GNN task        %d hops × fanout %d (%d-node subgraphs), hidden %d, batch %d\n",
		c.GNN.Hops, c.GNN.Fanout, c.GNN.SubgraphNodes(), c.GNN.HiddenDim, c.GNN.BatchSize)
	return nil
}

// RunTable3 prints the dataset descriptors.
func RunTable3(o *Options, w io.Writer) error {
	fmt.Fprintf(w, "%-10s %12s %10s %8s %10s %10s\n", "dataset", "nodes(full)", "avg deg", "dim", "raw GB", "power law")
	for _, d := range dataset.All() {
		fmt.Fprintf(w, "%-10s %12d %10.0f %8d %10.1f %10.1f\n",
			d.Name, d.FullNodes, d.AvgDegree, d.FeatureDim, d.RawGB, d.PowerLaw)
	}
	return nil
}

// RunFig7 reproduces Figure 7a: throughput and latency as active ULL
// dies on one channel grow from 1 to 8.
func RunFig7(o *Options, w io.Writer) error {
	o.fill()
	counts := make([]int, o.Cfg.Flash.DiesPerChannel)
	for i := range counts {
		counts[i] = i + 1
	}
	eng := o.engine()
	points, err := exp.Map(counts, func(n int) (flash.ContentionResult, error) {
		var res flash.ContentionResult
		var err error
		eng.Throttle(func() {
			res, err = flash.RunChannelContention(o.Cfg.Flash, n, 2*sim.Millisecond)
		})
		return res, err
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%6s %16s %14s %12s\n", "dies", "pages/s", "avg latency", "bus util")
	for i, res := range points {
		n := counts[i]
		fmt.Fprintf(w, "%6d %16.0f %14v %11.0f%%\n", n, res.Throughput, res.AvgLatency, res.ChannelBusFrac*100)
		if n == o.Cfg.Flash.DiesPerChannel {
			first := points[0]
			fmt.Fprintf(w, "1→%d dies: throughput +%.0f%%, latency ×%.1f (paper: +49%%, ×7.7)\n",
				n, (res.Throughput/first.Throughput-1)*100,
				float64(res.AvgLatency)/float64(first.AvgLatency))
		}
	}
	return nil
}

// RunFig14 reproduces Figure 14: throughput of all eight platforms on
// all five datasets, normalized to CC per dataset, plus the averages.
// The 40 simulations fan out across the engine; formatting happens
// afterwards from the ordered grid, so output is worker-count-invariant.
func RunFig14(o *Options, w io.Writer) error {
	o.fill()
	grid, err := o.simulateGrid(o.Cfg, datasetNames(), platform.All(), simTimeline)
	if err != nil {
		return err
	}
	avg := map[string]float64{}
	fmt.Fprintf(w, "%-11s", "dataset")
	for _, k := range platform.All() {
		fmt.Fprintf(w, "%10s", k)
	}
	fmt.Fprintln(w)
	for di, d := range dataset.All() {
		tput := map[string]float64{}
		for ki, k := range platform.All() {
			tput[k.String()] = grid[di][ki].Throughput
		}
		norm := normalizeTo(tput, platform.CC.String())
		fmt.Fprintf(w, "%-11s", d.Name)
		for _, k := range platform.All() {
			fmt.Fprintf(w, "%10.2f", norm[k.String()])
			avg[k.String()] += norm[k.String()] / float64(len(dataset.All()))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-11s", "average")
	for _, k := range platform.All() {
		fmt.Fprintf(w, "%10.2f", avg[k.String()])
	}
	fmt.Fprintln(w)
	var bars []viz.Bar
	for _, k := range platform.All() {
		bars = append(bars, viz.Bar{Label: k.String(), Value: avg[k.String()]})
	}
	fmt.Fprint(w, viz.BarChart("average speedup vs CC", bars, 48))
	fmt.Fprintln(w, "paper avgs: CC 1.00, SmartSage 2.11, GList 1.42, BG-1 2.35, BG-SP ≈12.9, BG-DGSP ≈15.4, BG-2 ≈21.7")
	return nil
}

// RunFig15 reproduces Figure 15a–e: active channel/die counts over time
// for the die-sampling platforms on every dataset, plus mean utilization.
func RunFig15(o *Options, w io.Writer) error {
	o.fill()
	kinds := []platform.Kind{platform.BGSP, platform.BGDGSP, platform.BG2}
	grid, err := o.simulateGrid(o.Cfg, datasetNames(), kinds, simTimeline)
	if err != nil {
		return err
	}
	var rows []string
	dieCells := [][]float64{}
	chCells := [][]float64{}
	for di, d := range dataset.All() {
		fmt.Fprintf(w, "-- %s\n", d.Name)
		dieRow := []float64{}
		chRow := []float64{}
		for ki, k := range kinds {
			r := grid[di][ki]
			fmt.Fprintf(w, "  %-8s mean dies %6.1f/%d  mean channels %5.2f/%d  hop overlap %.2f\n",
				r.Platform, r.MeanDies, o.Cfg.Flash.TotalDies(),
				r.MeanChannels, o.Cfg.Flash.Channels, r.HopOverlap)
			if d.Name == "amazon" && k == platform.BG2 {
				fmt.Fprint(w, sparkline("   dies", r.DieTimeline, o.Cfg.Flash.TotalDies()))
			}
			dieRow = append(dieRow, r.MeanDies)
			chRow = append(chRow, r.MeanChannels)
		}
		rows = append(rows, d.Name)
		dieCells = append(dieCells, dieRow)
		chCells = append(chCells, chRow)
	}
	cols := []string{}
	for _, k := range kinds {
		cols = append(cols, k.String())
	}
	fmt.Fprint(w, viz.Heat("mean active dies (of 128)", rows, cols, dieCells))
	fmt.Fprint(w, viz.Heat("mean active channels (of 16)", rows, cols, chCells))
	fmt.Fprintln(w, "paper: BG-SP shows per-hop valleys; BG-2 raises utilization ~76% over BG-SP;")
	fmt.Fprintln(w, "       reddit/PPI stay channel-bound (low die util), movielens/OGBN die-bound (low channel util)")
	return nil
}

// sparkline renders a utilization timeline as a coarse text strip.
func sparkline(label string, pts []sim.UtilPoint, max int) string {
	if len(pts) == 0 {
		return ""
	}
	const buckets = 60
	end := pts[len(pts)-1].At
	if end == 0 {
		return ""
	}
	levels := []rune(" .:-=+*#%@")
	out := make([]rune, buckets)
	for i := range out {
		out[i] = ' '
	}
	for _, p := range pts {
		b := int(int64(p.At) * int64(buckets-1) / int64(end))
		l := p.Active * (len(levels) - 1) / max
		if l >= len(levels) {
			l = len(levels) - 1
		}
		if levels[l] > out[b] {
			out[b] = levels[l]
		}
	}
	return fmt.Sprintf("%s [%s]\n", label, string(out))
}

// RunFig15f reproduces Figure 15f: the end-to-end latency breakdown on
// amazon for every platform. Accumulated busy time per phase is divided
// by the resource's parallel width (16 channels can each carry a page at
// once; one PCIe link cannot), which is what makes the serial PCIe link
// dominate CC's end-to-end latency exactly as the paper describes.
func RunFig15f(o *Options, w io.Writer) error {
	o.fill()
	phases := []metrics.Phase{
		metrics.PhaseHost, metrics.PhasePCIe, metrics.PhaseFirmware,
		metrics.PhaseFlash, metrics.PhaseChannel, metrics.PhaseDRAM, metrics.PhaseAccel,
	}
	width := map[metrics.Phase]float64{
		metrics.PhaseHost:     float64(o.Cfg.Host.Cores),
		metrics.PhasePCIe:     1,
		metrics.PhaseFirmware: float64(o.Cfg.Firmware.Cores),
		metrics.PhaseFlash:    float64(o.Cfg.Flash.TotalDies()),
		metrics.PhaseChannel:  float64(o.Cfg.Flash.Channels),
		metrics.PhaseDRAM:     1,
		metrics.PhaseAccel:    1,
	}
	results, err := o.simulateOn(o.Cfg, "amazon", platform.All(), simTimeline)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s", "platform")
	for _, p := range phases {
		fmt.Fprintf(w, "%10s", p)
	}
	fmt.Fprintln(w)
	for _, r := range results {
		eff := map[metrics.Phase]float64{}
		total := 0.0
		for _, s := range r.Phases {
			v := float64(s.Time) / width[s.Phase]
			eff[s.Phase] = v
			total += v
		}
		fmt.Fprintf(w, "%-10s", r.Platform)
		for _, p := range phases {
			fmt.Fprintf(w, "%9.0f%%", eff[p]/total*100)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "paper: CC dominated by PCIe transfer; BG-1/BG-DG by flash I/O; host delay minor everywhere")
	fmt.Fprintln(w, "\nper-phase event latency (p50/p95/p99):")
	for _, r := range results {
		fmt.Fprintf(w, "\n%s\n%s", r.Platform, metrics.PhaseQuantileTable(r.PhaseLatency))
	}
	return nil
}

// RunFig16 reproduces Figure 16: per-hop activity spans on amazon.
func RunFig16(o *Options, w io.Writer) error {
	o.fill()
	results, err := o.simulateOn(o.Cfg, "amazon",
		[]platform.Kind{platform.BG1, platform.BGDG, platform.BGSP, platform.BGDGSP, platform.BG2}, simTimeline)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Fprintf(w, "%-8s overlap %.2f\n", r.Platform, r.HopOverlap)
		var spans []viz.Span
		for _, s := range r.HopSpans {
			spans = append(spans, viz.Span{
				Label: fmt.Sprintf("hop%d", s.Hop),
				Start: s.First.Micros(), End: s.Last.Micros(),
			})
		}
		fmt.Fprint(w, viz.Gantt("", spans, 64))
	}
	fmt.Fprintln(w, "paper: BG-1/BG-SP serialize hops with gaps; BG-DG/BG-DGSP/BG-2 overlap them, BG-2 the most")
	return nil
}

// RunFig17 reproduces Figure 17: mean per-command lifetime phases.
func RunFig17(o *Options, w io.Writer) error {
	o.fill()
	results, err := o.simulateOn(o.Cfg, "amazon", platform.All(), simTimeline)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %14s %12s %14s %12s %12s\n",
		"platform", "wait_before", "flash", "wait_after", "channel", "lifetime")
	for _, r := range results {
		bd := r.CmdBreakdown
		fmt.Fprintf(w, "%-10s %14v %12v %14v %12v %12v\n", r.Platform,
			bd[metrics.PhaseWaitBefore], bd[metrics.PhaseFlash],
			bd[metrics.PhaseWaitAfter], bd[metrics.PhaseChannel], r.CmdLifetime)
	}
	fmt.Fprintln(w, "paper: waiting dominates lifetimes; BG-SP cuts both waits sharply vs page-granular designs")
	return nil
}

// RunFig19 reproduces Figure 19: energy grouping and efficiency. One
// simulation pass feeds both the table and the bar chart — the old code
// re-simulated every platform a second time just to build the bars.
func RunFig19(o *Options, w io.Writer) error {
	o.fill()
	results, err := o.simulateOn(o.Cfg, "amazon", platform.All(), simTimeline)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %8s %10s %10s %8s %10s %12s %14s %10s\n",
		"platform", "flash", "transfer", "frontend", "accel", "external", "avg power", "targets/s/W", "vs CC")
	var ccEff float64
	for ki, k := range platform.All() {
		if k == platform.CC {
			ccEff = results[ki].Efficiency
		}
	}
	var bars []viz.Bar
	for ki, k := range platform.All() {
		r := results[ki]
		g := r.EnergyGroup
		fmt.Fprintf(w, "%-10s %7.0f%% %9.0f%% %9.0f%% %7.0f%% %9.0f%% %10.1fW %14.0f %10.2f\n",
			r.Platform, g["flash"]*100, g["transfer"]*100, g["frontend"]*100, g["accel"]*100, g["external"]*100,
			r.AvgPowerW, r.Efficiency, r.Efficiency/ccEff)
		bars = append(bars, viz.Bar{Label: k.String(), Value: r.Efficiency / ccEff})
	}
	fmt.Fprint(w, viz.BarChart("energy efficiency vs CC", bars, 48))
	fmt.Fprintln(w, "paper: CC spends 57% externally; BG-1 75% on page→DRAM transfer; BG-2 ≈9.86× CC and ≈4.25× BG-1 efficiency, ~13.4 W")
	return nil
}

// RunTraditional reproduces Section VII-E: the same comparison on a
// 20 µs-read conventional SSD.
func RunTraditional(o *Options, w io.Writer) error {
	o.fill()
	// A value-copied config keeps the experiment self-contained: nothing
	// mutates o.Cfg, so RunTraditional can run concurrently with every
	// other experiment under RunAll.
	cfg := o.Cfg
	cfg.Flash.ReadLatency = 20 * sim.Microsecond

	kinds := append([]platform.Kind{platform.CC}, platform.BGOnly()...)
	grid, err := o.simulateGrid(cfg, datasetNames(), kinds, simTimeline)
	if err != nil {
		return err
	}
	avg := map[string]float64{}
	for di := range dataset.All() {
		tput := map[string]float64{}
		for ki, k := range kinds {
			tput[k.String()] = grid[di][ki].Throughput
		}
		norm := normalizeTo(tput, platform.CC.String())
		for k, v := range norm {
			avg[k] += v / float64(len(dataset.All()))
		}
	}
	fmt.Fprintf(w, "average speedup vs CC on a 20 µs SSD:\n")
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-8s %6.2f\n", k, avg[k.String()])
	}
	fmt.Fprintln(w, "paper: 2.20 / 2.50 / 3.19 / 4.19 / 4.19 — BG-DGSP ≈ BG-2 (routing unnecessary at high read latency)")
	return nil
}

// RunTable4 reproduces Table IV: DirectGraph inflation per dataset at
// full-scale degree statistics.
func RunTable4(o *Options, w io.Writer) error {
	o.fill()
	sample := 200_000
	if o.Quick {
		sample = 40_000
	}
	paper := map[string]float64{"reddit": 2.8, "amazon": 4.1, "movielens": 3.5, "OGBN": 32.3, "PPI": 3.5}
	eng := o.engine()
	stats, err := exp.Map(dataset.All(), func(d dataset.Desc) (directgraph.Stats, error) {
		var st directgraph.Stats
		var err error
		eng.Throttle(func() {
			st, err = dataset.FullScaleInflation(d, o.Cfg.Flash.PageSize, sample, o.Cfg.Seed)
		})
		return st, err
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %10s %12s %12s\n", "dataset", "raw GB", "inflation", "paper")
	for i, d := range dataset.All() {
		fmt.Fprintf(w, "%-10s %10.1f %11.1f%% %11.1f%%\n", d.Name, d.RawGB, stats[i].InflationRatio()*100, paper[d.Name])
	}
	return nil
}
