package core

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestBuildReportStructure(t *testing.T) {
	rep, err := BuildReport(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Fig7) != 8 {
		t.Fatalf("fig7 points = %d", len(rep.Fig7))
	}
	if len(rep.Fig14) != 5 || len(rep.Fig14N) != 5 {
		t.Fatalf("fig14 rows = %d/%d", len(rep.Fig14), len(rep.Fig14N))
	}
	for _, row := range rep.Fig14N {
		if row.Values["CC"] != 1 {
			t.Fatalf("%s normalization broken: CC = %v", row.Dataset, row.Values["CC"])
		}
		if row.Values["BG-2"] <= row.Values["BG-1"] {
			t.Fatalf("%s: BG-2 ≤ BG-1 in report", row.Dataset)
		}
	}
	if len(rep.Fig18) != 6 {
		t.Fatalf("fig18 sweeps = %d", len(rep.Fig18))
	}
	for _, s := range rep.Fig18 {
		if len(s.Series) != 5 || len(s.Points) < 2 {
			t.Fatalf("sweep %s malformed", s.Name)
		}
	}
	if len(rep.Fig19) != 8 || len(rep.Table4) != 5 {
		t.Fatalf("fig19/table4 = %d/%d", len(rep.Fig19), len(rep.Table4))
	}
	if rep.Trad["BG-2"] <= 1 {
		t.Fatalf("traditional BG-2 speedup = %v", rep.Trad["BG-2"])
	}
	if len(rep.Util) != 8 {
		t.Fatalf("util summaries = %d", len(rep.Util))
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep, err := BuildReport(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Fig14) != len(rep.Fig14) || back.ScaleNodes != rep.ScaleNodes {
		t.Fatal("JSON round trip lost data")
	}
}
