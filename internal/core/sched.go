package core

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"beacongnn/internal/exp"
	"beacongnn/internal/platform"
	"beacongnn/internal/sim"
	"beacongnn/internal/trace"
)

// The scheduler study compares the flash-backend queueing policies
// (DESIGN.md §11) on the amazon workload: mean/median/tail command
// latency and throughput per policy, then a per-resource wait/service
// quantile table from a traced run of the flagship platform under each
// policy. BG-DG covers the page data path and BG-2 the die-sampler
// path, matching the reliability study's platform pair.

// schedKinds returns the platforms the scheduler study runs on.
func schedKinds() []platform.Kind {
	return []platform.Kind{platform.BGDG, platform.BG2}
}

// schedPolicies returns the swept policy names. "fifo" is the explicit
// spelling of the default; its results are byte-identical to a run with
// the policy field left empty.
func schedPolicies() []string {
	return []string{"fifo", "sjf", "edf", "totalfit"}
}

// SchedCell is one simulated (platform, policy) result of the scheduler
// comparison, in the shape the JSON report emits.
type SchedCell struct {
	Platform    string   `json:"platform"`
	Policy      string   `json:"policy"`
	Throughput  float64  `json:"throughput"`
	CmdLifetime sim.Time `json:"cmd_lifetime_ns"`
	CmdP50      sim.Time `json:"cmd_p50_ns"`
	CmdP99      sim.Time `json:"cmd_p99_ns"`
	Commands    uint64   `json:"commands"`
}

// SchedReport is the machine-readable scheduler comparison
// (`beaconbench -exp sched -json`).
type SchedReport struct {
	Dataset string      `json:"dataset"`
	Cells   []SchedCell `json:"cells"`
}

// BuildSchedReport simulates every (platform, policy) cell concurrently
// and returns them in (platform-major, policy-minor) order.
func BuildSchedReport(o *Options) (*SchedReport, error) {
	o.fill()
	kinds := schedKinds()
	pols := schedPolicies()
	type cell struct{ k, p int }
	var cells []cell
	for ki := range kinds {
		for pi := range pols {
			cells = append(cells, cell{ki, pi})
		}
	}
	flat, err := exp.Map(cells, func(c cell) (SchedCell, error) {
		cfg := o.Cfg
		cfg.Sched.Policy = pols[c.p]
		r, err := o.simulateCfg(kinds[c.k], cfg, "amazon", simTimeline)
		if err != nil {
			return SchedCell{}, fmt.Errorf("%s sched=%s: %w", kinds[c.k], pols[c.p], err)
		}
		return SchedCell{
			Platform: kinds[c.k].String(), Policy: pols[c.p],
			Throughput: r.Throughput, CmdLifetime: r.CmdLifetime,
			CmdP50: r.CmdP50, CmdP99: r.CmdP99, Commands: r.Commands,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &SchedReport{Dataset: "amazon", Cells: flat}, nil
}

// WriteJSON emits the report as indented JSON.
func (r *SchedReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// schedTraceTable runs one traced simulation of the platform under the
// policy and renders the wait/service quantiles of the scheduled flash
// resources (dies, per-die samplers, channel buses), aggregated across
// lanes. Traced runs attach the recorder to the system directly and so
// bypass the memoized engine, like RunTrace.
func schedTraceTable(o *Options, kind platform.Kind, policy string) (string, error) {
	inst, err := o.instance("amazon")
	if err != nil {
		return "", err
	}
	cfg := o.Cfg
	cfg.Sched.Policy = policy
	s, err := platform.NewSystem(kind, cfg, inst, 0)
	if err != nil {
		return "", err
	}
	rec := trace.NewRecorder()
	s.SetTracer(rec)
	if _, err := s.Run(o.Batches); err != nil {
		return "", err
	}
	var b strings.Builder
	for _, line := range strings.Split(rec.BreakdownTable(), "\n") {
		if strings.HasPrefix(line, "resource") || strings.HasPrefix(line, "flash.") {
			fmt.Fprintf(&b, "   %s\n", line)
		}
	}
	return b.String(), nil
}

// RunSched executes the scheduler comparison: the (platform, policy)
// latency/throughput grid, then per-policy flash wait/service quantile
// tables from traced runs of the flagship platform.
func RunSched(o *Options, w io.Writer) error {
	o.fill()
	rep, err := BuildSchedReport(o)
	if err != nil {
		return err
	}
	kinds := schedKinds()
	pols := schedPolicies()
	fmt.Fprintf(w, "-- policy comparison (%s)\n", rep.Dataset)
	for ki, k := range kinds {
		fmt.Fprintf(w, "   %s\n", k)
		fmt.Fprintf(w, "   %-9s %12s %14s %14s %14s %10s\n",
			"policy", "targets/s", "cmd-life", "cmd-p50", "cmd-p99", "commands")
		for pi := range pols {
			c := rep.Cells[ki*len(pols)+pi]
			fmt.Fprintf(w, "   %-9s %12.0f %14v %14v %14v %10d\n",
				c.Policy, c.Throughput, c.CmdLifetime, c.CmdP50, c.CmdP99, c.Commands)
		}
	}
	flagship := platform.BG2
	fmt.Fprintf(w, "-- flash wait/service quantiles per policy (%s, traced)\n", flagship)
	for _, pol := range pols {
		tbl, err := schedTraceTable(o, flagship, pol)
		if err != nil {
			return fmt.Errorf("sched trace %s: %w", pol, err)
		}
		fmt.Fprintf(w, "   policy=%s\n", pol)
		fmt.Fprint(w, tbl)
	}
	fmt.Fprintln(w, "expect: fifo matches the default run exactly; sjf/totalfit trade tail latency for")
	fmt.Fprintln(w, "        mean latency on contended die queues; edf bounds queueing by command age")
	return nil
}
