package core

import (
	"strings"
	"testing"
)

func quickOpts() *Options {
	return &Options{Quick: true, ScaleNodes: 2500, Batches: 2}
}

func TestRegistryComplete(t *testing.T) {
	exps := Experiments()
	want := []string{"table2", "table3", "fig7", "fig14", "fig15", "fig15f", "fig16", "fig17", "fig18", "fig19", "trad", "table4", "ext"}
	if len(exps) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(exps), len(want))
	}
	for i, id := range want {
		if exps[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, exps[i].ID, id)
		}
		if exps[i].Run == nil || exps[i].Title == "" {
			t.Errorf("experiment %s incomplete", id)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig14")
	if err != nil || e.ID != "fig14" {
		t.Fatalf("ByID: %v %v", e.ID, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestStaticExperimentsRender(t *testing.T) {
	// The cheap experiments must produce the expected anchors.
	cases := []struct {
		id   string
		want string
	}{
		{"table2", "16 channels"},
		{"table3", "movielens"},
		{"fig7", "paper: +49%"},
		{"table4", "OGBN"},
	}
	for _, c := range cases {
		e, err := ByID(c.id)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := e.Run(quickOpts(), &sb); err != nil {
			t.Fatalf("%s: %v", c.id, err)
		}
		if !strings.Contains(sb.String(), c.want) {
			t.Errorf("%s output missing %q:\n%s", c.id, c.want, sb.String())
		}
	}
}

func TestFig15fRenders(t *testing.T) {
	e, _ := ByID("fig15f")
	var sb strings.Builder
	if err := e.Run(quickOpts(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, plat := range []string{"CC", "BG-2", "pcie", "channel"} {
		if !strings.Contains(out, plat) {
			t.Errorf("fig15f missing %q", plat)
		}
	}
}

func TestFig16and17Render(t *testing.T) {
	for _, id := range []string{"fig16", "fig17"} {
		e, _ := ByID(id)
		var sb strings.Builder
		if err := e.Run(quickOpts(), &sb); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(sb.String(), "BG-2") {
			t.Errorf("%s output incomplete", id)
		}
	}
}

func TestFig18SweepsQuick(t *testing.T) {
	sweeps := Fig18Sweeps(true)
	if len(sweeps) != 6 {
		t.Fatalf("sweeps = %d, want 6 (Figure 18a–f)", len(sweeps))
	}
	// Each quick sweep has 2 points; full has 4.
	for _, s := range sweeps {
		if len(s.Points) != 2 {
			t.Errorf("quick sweep %s has %d points", s.Name, len(s.Points))
		}
	}
	full := Fig18Sweeps(false)
	for _, s := range full {
		if len(s.Points) != 4 {
			t.Errorf("full sweep %s has %d points", s.Name, len(s.Points))
		}
	}
}

func TestRunSweepReturnsSeries(t *testing.T) {
	o := quickOpts()
	s := Fig18Sweeps(true)[2] // controller cores — cheap
	res, err := RunSweep(o, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 { // five BG platforms
		t.Fatalf("platforms in sweep = %d", len(res))
	}
	for k, series := range res {
		if len(series) != len(s.Points) {
			t.Errorf("%s series has %d points", k, len(series))
		}
		for _, v := range series {
			if v <= 0 {
				t.Errorf("%s has non-positive throughput", k)
			}
		}
	}
}

func TestOptionsFillDefaults(t *testing.T) {
	o := &Options{}
	o.fill()
	if o.ScaleNodes == 0 || o.Batches == 0 || o.Cfg.Flash.Channels == 0 {
		t.Fatalf("fill left zeros: %+v", o)
	}
	q := &Options{Quick: true}
	q.fill()
	if q.ScaleNodes > 4000 || q.Batches > 3 {
		t.Fatalf("quick mode not reduced: %+v", q)
	}
}

func TestNormalizeTo(t *testing.T) {
	m := map[string]float64{"a": 2, "b": 6}
	n := normalizeTo(m, "a")
	if n["a"] != 1 || n["b"] != 3 {
		t.Fatalf("normalized = %v", n)
	}
	if keys := sortedKeys(m); keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys = %v", keys)
	}
}
