package core

import (
	"bytes"
	"reflect"
	"testing"

	"beacongnn/internal/config"
)

// optsWithWorkers returns small-scale Options pinned to a worker count.
func optsWithWorkers(workers int) *Options {
	return &Options{Quick: true, ScaleNodes: 2500, Batches: 2, Workers: workers}
}

// TestFig14DeterministicAcrossWorkers is the determinism regression
// test for the parallel engine: RunFig14's rendered output must be
// byte-identical run-to-run and across worker counts (sequential vs 8).
func TestFig14DeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) string {
		var b bytes.Buffer
		if err := RunFig14(optsWithWorkers(workers), &b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	seq := render(1)
	if seq == "" {
		t.Fatal("empty fig14 output")
	}
	for i := 0; i < 2; i++ {
		if par := render(8); par != seq {
			t.Fatalf("workers=8 output differs from sequential (run %d):\n--- seq ---\n%s\n--- par ---\n%s", i, seq, par)
		}
	}
}

// TestSweepDeterministicAcrossWorkers runs one Figure-18 sweep
// sequentially and with 8 workers; the numeric series must match
// exactly (same values, same order).
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	sweep := Fig18Sweeps(true)[2] // controller cores — the cheap axis
	run := func(workers int) map[string][]float64 {
		res, err := RunSweep(optsWithWorkers(workers), sweep)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	par := run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sweep series diverge:\nseq: %v\npar: %v", seq, par)
	}
}

// TestInstanceCacheKeyedBySeedAndScale is the regression test for the
// instCache bug: the global cache used to key only on (name, pageSize),
// so changing the seed or scale between Options values could silently
// return a stale instance.
func TestInstanceCacheKeyedBySeedAndScale(t *testing.T) {
	base := &Options{Quick: true, ScaleNodes: 2000, Batches: 2}
	i1, err := base.instance("PPI")
	if err != nil {
		t.Fatal(err)
	}

	// Different seed, same name/pageSize/scale → must re-materialize.
	seeded := &Options{Quick: true, ScaleNodes: 2000, Batches: 2}
	seeded.Cfg = config.Default()
	seeded.Cfg.Seed = 12345
	i2, err := seeded.instance("PPI")
	if err != nil {
		t.Fatal(err)
	}
	if i1 == i2 {
		t.Fatal("changing Cfg.Seed returned the cached instance of another seed")
	}

	// Different scale → different instance with the right node count.
	scaled := &Options{Quick: true, ScaleNodes: 1500, Batches: 2}
	i3, err := scaled.instance("PPI")
	if err != nil {
		t.Fatal(err)
	}
	if i3.Graph.NumNodes() != 1500 {
		t.Fatalf("scaled instance has %d nodes, want 1500", i3.Graph.NumNodes())
	}
	if i1 == i3 {
		t.Fatal("changing ScaleNodes returned the stale cached instance")
	}

	// Same key → cache hit.
	again, err := base.instance("PPI")
	if err != nil {
		t.Fatal(err)
	}
	if again != i1 {
		t.Fatal("identical (name, nodes, pageSize, seed) did not hit the cache")
	}
}

// TestRunAllDeterministicAcrossWorkers drives the whole experiment
// suite both ways at a reduced scale; the concatenated report must be
// byte-identical. Skipped in -short mode: it is the most expensive
// test in the package.
func TestRunAllDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll comparison is expensive; skipped in -short mode")
	}
	render := func(workers int) string {
		o := &Options{Quick: true, ScaleNodes: 1200, Batches: 2, Workers: workers}
		var b bytes.Buffer
		if err := RunAll(o, &b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		// Find the first diverging line for a readable failure.
		a, bLines := bytes.Split([]byte(seq), []byte("\n")), bytes.Split([]byte(par), []byte("\n"))
		for i := 0; i < len(a) && i < len(bLines); i++ {
			if !bytes.Equal(a[i], bLines[i]) {
				t.Fatalf("RunAll diverges at line %d:\nseq: %s\npar: %s", i+1, a[i], bLines[i])
			}
		}
		t.Fatalf("RunAll outputs differ in length: %d vs %d bytes", len(seq), len(par))
	}
}
