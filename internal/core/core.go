// Package core orchestrates the paper's experiments: it binds datasets,
// platform simulations, and formatting into one runner per table/figure
// of the evaluation section (Section VII). The beaconbench binary and
// the repository's benchmark suite are thin wrappers over this package.
package core

import (
	"fmt"
	"io"
	"sort"

	"beacongnn/internal/config"
	"beacongnn/internal/dataset"
	"beacongnn/internal/platform"
)

// Options tunes experiment execution. The zero value is completed by
// (*Options).fill: paper-base config, 10 000-node instances, 6 batches.
type Options struct {
	Cfg        config.Config
	ScaleNodes int  // materialized node count per dataset
	Batches    int  // mini-batches per simulation
	Quick      bool // shrink sweeps for CI-speed runs
	filled     bool
}

func (o *Options) fill() {
	if o.filled {
		return
	}
	if o.Cfg.Flash.Channels == 0 {
		o.Cfg = config.Default()
	}
	if o.ScaleNodes == 0 {
		o.ScaleNodes = 10_000
	}
	if o.Batches == 0 {
		o.Batches = 6
	}
	if o.Quick {
		if o.ScaleNodes > 4000 {
			o.ScaleNodes = 4000
		}
		o.Batches = 3
	}
	o.filled = true
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(o *Options, w io.Writer) error
}

// Experiments returns every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table2", "Table II: platform configuration", RunTable2},
		{"table3", "Table III: dataset statistics (reconstructed)", RunTable3},
		{"fig7", "Figure 7a: page-granular channel contention", RunFig7},
		{"fig14", "Figure 14: throughput across platforms and datasets", RunFig14},
		{"fig15", "Figure 15a-e: flash resource utilization", RunFig15},
		{"fig15f", "Figure 15f: overall latency breakdown (amazon)", RunFig15f},
		{"fig16", "Figure 16: hop timeline overlap (amazon)", RunFig16},
		{"fig17", "Figure 17: command latency breakdown (amazon)", RunFig17},
		{"fig18", "Figure 18: sensitivity sweeps (amazon)", RunFig18},
		{"fig19", "Figure 19: energy breakdown and efficiency (amazon)", RunFig19},
		{"trad", "Section VII-E: traditional (20 µs) SSD throughput", RunTraditional},
		{"table4", "Table IV: DirectGraph storage inflation", RunTable4},
		{"ext", "Extensions: ablations, scale-out, construction, interference", RunExtensions},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("core: unknown experiment %q (use one of %v)", id, ids())
}

func ids() []string {
	var out []string
	for _, e := range Experiments() {
		out = append(out, e.ID)
	}
	return out
}

// RunAll executes every experiment in order.
func RunAll(o *Options, w io.Writer) error {
	for _, e := range Experiments() {
		fmt.Fprintf(w, "\n===== %s — %s =====\n", e.ID, e.Title)
		if err := e.Run(o, w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// instance materializes one dataset at the options' scale, caching per
// (name, pageSize) within the Options value.
type instKey struct {
	name     string
	pageSize int
}

var instCache = map[instKey]*dataset.Instance{}

func (o *Options) instance(name string) (*dataset.Instance, error) {
	o.fill()
	d, err := dataset.ByName(name)
	if err != nil {
		return nil, err
	}
	key := instKey{name, o.Cfg.Flash.PageSize}
	if inst, ok := instCache[key]; ok && inst.Graph.NumNodes() == o.ScaleNodes {
		return inst, nil
	}
	inst, err := dataset.Materialize(d, o.ScaleNodes, o.Cfg.Flash.PageSize, o.Cfg.Seed)
	if err != nil {
		return nil, err
	}
	instCache[key] = inst
	return inst, nil
}

// simulate runs one platform on a named dataset.
func (o *Options) simulate(k platform.Kind, name string, timeline int) (*platform.Result, error) {
	o.fill()
	inst, err := o.instance(name)
	if err != nil {
		return nil, err
	}
	return platform.Simulate(k, o.Cfg, inst, o.Batches, timeline)
}

// normalizeTo divides every value by the base key's value.
func normalizeTo(m map[string]float64, base string) map[string]float64 {
	out := make(map[string]float64, len(m))
	b := m[base]
	for k, v := range m {
		if b > 0 {
			out[k] = v / b
		}
	}
	return out
}

// sortedKeys returns a map's keys in sorted order (deterministic output).
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
