// Package core orchestrates the paper's experiments: it binds datasets,
// platform simulations, and formatting into one runner per table/figure
// of the evaluation section (Section VII). The beaconbench binary and
// the repository's benchmark suite are thin wrappers over this package.
package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"

	"beacongnn/internal/config"
	"beacongnn/internal/dataset"
	"beacongnn/internal/exp"
	"beacongnn/internal/platform"
)

// Options tunes experiment execution. The zero value is completed by
// (*Options).fill: paper-base config, 10 000-node instances, 6 batches,
// one simulation worker per CPU core.
type Options struct {
	Cfg        config.Config
	ScaleNodes int  // materialized node count per dataset
	Batches    int  // mini-batches per simulation
	Quick      bool // shrink sweeps for CI-speed runs
	Workers    int  // concurrent simulations (0 = GOMAXPROCS, 1 = sequential)
	Check      bool // verify run invariants on every simulation (-check)

	// FullResim disables the engine's result memo and stage reuse
	// (precomputed frontiers), forcing every requested simulation to run
	// from scratch (-full-resim). Incremental and full runs are
	// byte-identical by construction; this switch exists to prove it.
	// Only applies to the private engine — a shared Engine is left as
	// its owner configured it.
	FullResim bool

	// Ctx, when set, bounds every simulation the runners request:
	// cancellation or deadline expiry aborts in-flight event loops and
	// fails the experiment with the context's error. Nil means
	// context.Background() — the CLI batch behaviour. The serving layer
	// sets it to the HTTP request context.
	Ctx context.Context

	// Engine, when set, is used instead of a private engine — the
	// serving layer shares one pool (and one memo) across all requests.
	Engine *exp.Engine

	filled bool
	eng    *exp.Engine
}

// context returns the Options' simulation context.
func (o *Options) context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o *Options) fill() {
	if o.filled {
		return
	}
	if o.Cfg.Flash.Channels == 0 {
		o.Cfg = config.Default()
	}
	if o.ScaleNodes == 0 {
		o.ScaleNodes = 10_000
	}
	if o.Batches == 0 {
		o.Batches = 6
	}
	if o.Quick {
		if o.ScaleNodes > 4000 {
			o.ScaleNodes = 4000
		}
		o.Batches = 3
	}
	if o.Engine != nil {
		o.eng = o.Engine
	} else {
		o.eng = exp.New(o.Workers)
		if o.Check {
			o.eng.EnableChecks()
		}
		if o.FullResim {
			o.eng.DisableMemo()
		}
	}
	o.filled = true
}

// engine returns the Options' parallel experiment engine, creating it on
// first use. Every simulation a runner requests goes through it, so a
// given (platform, dataset, config) triple is simulated at most once per
// Options value regardless of how many figures need it.
func (o *Options) engine() *exp.Engine {
	o.fill()
	return o.eng
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(o *Options, w io.Writer) error
}

// Experiments returns every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table2", "Table II: platform configuration", RunTable2},
		{"table3", "Table III: dataset statistics (reconstructed)", RunTable3},
		{"fig7", "Figure 7a: page-granular channel contention", RunFig7},
		{"fig14", "Figure 14: throughput across platforms and datasets", RunFig14},
		{"fig15", "Figure 15a-e: flash resource utilization", RunFig15},
		{"fig15f", "Figure 15f: overall latency breakdown (amazon)", RunFig15f},
		{"fig16", "Figure 16: hop timeline overlap (amazon)", RunFig16},
		{"fig17", "Figure 17: command latency breakdown (amazon)", RunFig17},
		{"fig18", "Figure 18: sensitivity sweeps (amazon)", RunFig18},
		{"fig19", "Figure 19: energy breakdown and efficiency (amazon)", RunFig19},
		{"trad", "Section VII-E: traditional (20 µs) SSD throughput", RunTraditional},
		{"table4", "Table IV: DirectGraph storage inflation", RunTable4},
		{"ext", "Extensions: ablations, scale-out, construction, interference", RunExtensions},
	}
}

// AllExperiments returns every runnable experiment: the paper set plus
// the studies that are not part of the default `all` reproduction run
// (the reliability sweep perturbs the fault model, not the paper's
// evaluation axes).
func AllExperiments() []Experiment {
	return append(Experiments(),
		Experiment{"reliab", "Reliability: throughput and latency vs wear, RBER, and outages", RunReliability},
		Experiment{"sched", "Scheduling: flash queueing policies (fifo/sjf/edf/totalfit)", RunSched},
		Experiment{"chaos", "Chaos: availability, goodput, and MTTR under injected faults", RunChaos},
		Experiment{"capacity", "Capacity: open-loop SLO capacity curves and saturation knees", RunCapacity},
		Experiment{"cluster", "Cluster: sharded multi-device scaling, cross-shard traffic, failure rebalance", RunCluster},
	)
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range AllExperiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("core: unknown experiment %q (use one of %v)", id, ids())
}

func ids() []string {
	var out []string
	for _, e := range AllExperiments() {
		out = append(out, e.ID)
	}
	return out
}

// RunAll executes every experiment. The experiments run concurrently —
// each into its own buffer, sharing the Options' simulation engine and
// caches — and the buffers are flushed to w in paper order, so the
// output is byte-identical to a sequential run.
func RunAll(o *Options, w io.Writer) error {
	o.fill()
	exps := Experiments()
	bufs, err := exp.Map(exps, func(e Experiment) (*bytes.Buffer, error) {
		var b bytes.Buffer
		fmt.Fprintf(&b, "\n===== %s — %s =====\n", e.ID, e.Title)
		if err := e.Run(o, &b); err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID, err)
		}
		return &b, nil
	})
	if err != nil {
		return err
	}
	for _, b := range bufs {
		if _, err := w.Write(b.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// instance materializes one dataset at a given scale, caching globally
// per (name, nodes, pageSize, seed) — everything Materialize depends on,
// so changing the seed or scale between Options values can never return
// a stale instance. The cache is safe under the parallel engine:
// concurrent requests for the same key materialize once, and distinct
// keys materialize concurrently (throttled by the caller's engine).
// Materialization is deterministic in its key, so the cache stays on
// even under FullResim.
type instKey struct {
	name     string
	nodes    int
	pageSize int
	seed     uint64
}

var instCache = exp.NewStageCache[instKey, *dataset.Instance]()

// instanceAt materializes (or fetches) a dataset instance for an
// explicit page size and seed — sweeps that mutate either get their own
// cache entries.
func (o *Options) instanceAt(name string, pageSize int, seed uint64) (*dataset.Instance, error) {
	o.fill()
	d, err := dataset.ByName(name)
	if err != nil {
		return nil, err
	}
	return instCache.Do(instKey{name, o.ScaleNodes, pageSize, seed}, func() (*dataset.Instance, error) {
		var inst *dataset.Instance
		var merr error
		o.engine().Throttle(func() {
			inst, merr = dataset.Materialize(d, o.ScaleNodes, pageSize, seed)
		})
		return inst, merr
	})
}

func (o *Options) instance(name string) (*dataset.Instance, error) {
	o.fill()
	return o.instanceAt(name, o.Cfg.Flash.PageSize, o.Cfg.Seed)
}

// simTimeline is the utilization-timeline resolution every runner
// requests. Timeline points only control how many utilization samples a
// run retains — they never alter event scheduling or any printed number
// (MeanDies/MeanChannels are exact integrals) — so a single shared
// resolution is output-invariant while letting every figure share one
// memo entry per (platform, dataset, config) instead of splitting the
// cache over timeline variants.
const simTimeline = 512

// simulate runs one platform on a named dataset under the Options'
// config, memoized and throttled by the engine.
func (o *Options) simulate(k platform.Kind, name string, timeline int) (*platform.Result, error) {
	o.fill()
	return o.simulateCfg(k, o.Cfg, name, timeline)
}

// simulateCfg is simulate with an explicit configuration, for runners
// that perturb the base config (sweeps, the traditional-SSD study).
func (o *Options) simulateCfg(k platform.Kind, cfg config.Config, name string, timeline int) (*platform.Result, error) {
	o.fill()
	inst, err := o.instanceAt(name, cfg.Flash.PageSize, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return o.engine().SimulateCtx(o.context(), k, cfg, inst, o.Batches, timeline)
}

// simulateGrid fans every (dataset, platform) pair out across the
// engine and returns results indexed [dataset][platform] in input
// order, ready for deterministic formatting.
func (o *Options) simulateGrid(cfg config.Config, datasets []string, kinds []platform.Kind, timeline int) ([][]*platform.Result, error) {
	o.fill()
	type cell struct{ d, k int }
	var cells []cell
	for di := range datasets {
		for ki := range kinds {
			cells = append(cells, cell{di, ki})
		}
	}
	flat, err := exp.Map(cells, func(c cell) (*platform.Result, error) {
		return o.simulateCfg(kinds[c.k], cfg, datasets[c.d], timeline)
	})
	if err != nil {
		return nil, err
	}
	grid := make([][]*platform.Result, len(datasets))
	for i, c := range cells {
		if grid[c.d] == nil {
			grid[c.d] = make([]*platform.Result, len(kinds))
		}
		grid[c.d][c.k] = flat[i]
	}
	return grid, nil
}

// simulateOn fans every platform in kinds out on one dataset and
// returns results in kinds order.
func (o *Options) simulateOn(cfg config.Config, name string, kinds []platform.Kind, timeline int) ([]*platform.Result, error) {
	grid, err := o.simulateGrid(cfg, []string{name}, kinds, timeline)
	if err != nil {
		return nil, err
	}
	return grid[0], nil
}

// datasetNames returns every benchmark dataset name in paper order.
func datasetNames() []string {
	var out []string
	for _, d := range dataset.All() {
		out = append(out, d.Name)
	}
	return out
}

// normalizeTo divides every value by the base key's value.
func normalizeTo(m map[string]float64, base string) map[string]float64 {
	out := make(map[string]float64, len(m))
	b := m[base]
	for k, v := range m {
		if b > 0 {
			out[k] = v / b
		}
	}
	return out
}

// sortedKeys returns a map's keys in sorted order (deterministic output).
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
