package core

import (
	"encoding/json"
	"io"

	"beacongnn/internal/dataset"
	"beacongnn/internal/directgraph"
	"beacongnn/internal/exp"
	"beacongnn/internal/flash"
	"beacongnn/internal/metrics"
	"beacongnn/internal/platform"
	"beacongnn/internal/sim"
)

// Report is the machine-readable form of the evaluation: every numeric
// series behind the figures, for downstream plotting. Built by
// BuildReport and emitted by `beaconbench -json`.
type Report struct {
	ScaleNodes int `json:"scale_nodes"`
	Batches    int `json:"batches"`

	Fig7   []Fig7Point            `json:"fig7"`
	Fig14  []Fig14Row             `json:"fig14"`
	Fig14N []Fig14Row             `json:"fig14_normalized"`
	Fig18  []SweepSeries          `json:"fig18"`
	Fig19  []EnergyRow            `json:"fig19"`
	Trad   map[string]float64     `json:"traditional_speedup"`
	Table4 []InflationRow         `json:"table4"`
	Util   map[string]UtilSummary `json:"fig15_util"`

	// LatencyQuantiles is each platform's per-phase p50/p95/p99 of
	// individual event durations on amazon.
	LatencyQuantiles map[string][]metrics.PhaseQuantile `json:"latency_quantiles"`
}

// Fig7Point is one die-count sample of the contention microbenchmark.
type Fig7Point struct {
	Dies       int     `json:"dies"`
	PagesPerS  float64 `json:"pages_per_s"`
	AvgLatency float64 `json:"avg_latency_us"`
	BusUtil    float64 `json:"bus_util"`
}

// Fig14Row is one dataset's throughput across platforms.
type Fig14Row struct {
	Dataset string             `json:"dataset"`
	Values  map[string]float64 `json:"values"`
}

// SweepSeries is one Figure-18 axis.
type SweepSeries struct {
	Name   string               `json:"name"`
	Points []string             `json:"points"`
	Series map[string][]float64 `json:"series"` // platform → throughput
}

// EnergyRow is one platform's Figure-19 numbers.
type EnergyRow struct {
	Platform   string             `json:"platform"`
	Groups     map[string]float64 `json:"groups"`
	PowerW     float64            `json:"power_w"`
	Efficiency float64            `json:"targets_per_s_per_w"`
}

// InflationRow is one Table-IV entry.
type InflationRow struct {
	Dataset   string  `json:"dataset"`
	RawGB     float64 `json:"raw_gb"`
	Inflation float64 `json:"inflation"`
}

// UtilSummary is one platform's mean utilization on amazon.
type UtilSummary struct {
	MeanDies     float64 `json:"mean_dies"`
	MeanChannels float64 `json:"mean_channels"`
	HopOverlap   float64 `json:"hop_overlap"`
}

// BuildReport runs the numeric experiments and assembles the report.
func BuildReport(o *Options) (*Report, error) {
	o.fill()
	rep := &Report{
		ScaleNodes:       o.ScaleNodes,
		Batches:          o.Batches,
		Trad:             map[string]float64{},
		Util:             map[string]UtilSummary{},
		LatencyQuantiles: map[string][]metrics.PhaseQuantile{},
	}

	eng := o.engine()
	err := exp.Go(
		// Fig 7.
		func() error {
			counts := make([]int, o.Cfg.Flash.DiesPerChannel)
			for i := range counts {
				counts[i] = i + 1
			}
			points, err := exp.Map(counts, func(n int) (flash.ContentionResult, error) {
				var res flash.ContentionResult
				var err error
				eng.Throttle(func() {
					res, err = flash.RunChannelContention(o.Cfg.Flash, n, 2*sim.Millisecond)
				})
				return res, err
			})
			if err != nil {
				return err
			}
			for i, res := range points {
				rep.Fig7 = append(rep.Fig7, Fig7Point{
					Dies: counts[i], PagesPerS: res.Throughput,
					AvgLatency: res.AvgLatency.Micros(), BusUtil: res.ChannelBusFrac,
				})
			}
			return nil
		},
		// Fig 14 (+ utilization summaries on amazon).
		func() error {
			grid, err := o.simulateGrid(o.Cfg, datasetNames(), platform.All(), simTimeline)
			if err != nil {
				return err
			}
			for di, d := range dataset.All() {
				row := Fig14Row{Dataset: d.Name, Values: map[string]float64{}}
				for ki, k := range platform.All() {
					r := grid[di][ki]
					row.Values[k.String()] = r.Throughput
					if d.Name == "amazon" {
						rep.Util[k.String()] = UtilSummary{
							MeanDies: r.MeanDies, MeanChannels: r.MeanChannels, HopOverlap: r.HopOverlap,
						}
						rep.LatencyQuantiles[k.String()] = r.PhaseLatency
					}
				}
				rep.Fig14 = append(rep.Fig14, row)
				rep.Fig14N = append(rep.Fig14N, Fig14Row{
					Dataset: d.Name,
					Values:  normalizeTo(row.Values, platform.CC.String()),
				})
			}
			return nil
		},
		// Fig 18 sweeps.
		func() error {
			sweeps := Fig18Sweeps(o.Quick)
			all, err := exp.Map(sweeps, func(s Sweep) (map[string][]float64, error) {
				return RunSweep(o, s)
			})
			if err != nil {
				return err
			}
			for si, s := range sweeps {
				ss := SweepSeries{Name: s.Name, Series: all[si]}
				for _, pt := range s.Points {
					ss.Points = append(ss.Points, pt.Label)
				}
				rep.Fig18 = append(rep.Fig18, ss)
			}
			return nil
		},
		// Fig 19.
		func() error {
			results, err := o.simulateOn(o.Cfg, "amazon", platform.All(), simTimeline)
			if err != nil {
				return err
			}
			for ki, k := range platform.All() {
				r := results[ki]
				rep.Fig19 = append(rep.Fig19, EnergyRow{
					Platform: k.String(), Groups: r.EnergyGroup,
					PowerW: r.AvgPowerW, Efficiency: r.Efficiency,
				})
			}
			return nil
		},
		// Traditional SSD.
		func() error {
			cfg := o.Cfg
			cfg.Flash.ReadLatency = 20 * sim.Microsecond
			kinds := append([]platform.Kind{platform.CC}, platform.BGOnly()...)
			grid, err := o.simulateGrid(cfg, datasetNames(), kinds, simTimeline)
			if err != nil {
				return err
			}
			for di := range dataset.All() {
				tput := map[string]float64{}
				for ki, k := range kinds {
					tput[k.String()] = grid[di][ki].Throughput
				}
				for k, v := range normalizeTo(tput, platform.CC.String()) {
					rep.Trad[k] += v / float64(len(dataset.All()))
				}
			}
			return nil
		},
		// Table IV.
		func() error {
			sample := 200_000
			if o.Quick {
				sample = 40_000
			}
			stats, err := exp.Map(dataset.All(), func(d dataset.Desc) (directgraph.Stats, error) {
				var st directgraph.Stats
				var err error
				eng.Throttle(func() {
					st, err = dataset.FullScaleInflation(d, o.Cfg.Flash.PageSize, sample, o.Cfg.Seed)
				})
				return st, err
			})
			if err != nil {
				return err
			}
			for i, d := range dataset.All() {
				rep.Table4 = append(rep.Table4, InflationRow{
					Dataset: d.Name, RawGB: d.RawGB, Inflation: stats[i].InflationRatio(),
				})
			}
			return nil
		},
	)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
