package core

import (
	"fmt"
	"hash/fnv"
	"io"

	"beacongnn/internal/chaos"
	"beacongnn/internal/exp"
	"beacongnn/internal/platform"
	"beacongnn/internal/sim"
	"beacongnn/internal/trace"
)

// The chaos availability sweep closes the loop between the PR-3 device
// fault model and the serving stack above it: each scenario derives
// real per-request service times from memoized BG-2 simulations
// (healthy and faulted), then drives an open-loop request stream
// through a virtual-time pipeline carrying the full resilience stack —
// retry budget, exponential backoff with deterministic jitter, hedged
// duplicates, and a circuit breaker with degraded fallback — and
// reports availability, goodput, error-budget burn, latency tails, and
// MTTR per fault shape.

// chaosWorkers is the virtual service-center width. Fixed — never
// Options.Workers — so the report is byte-identical at any -parallel
// setting: host parallelism fans scenarios out, it must not leak into
// the modeled system.
const chaosWorkers = 4

// chaosDataset is the workload every scenario serves.
const chaosDataset = "amazon"

// chaosRow is one scenario's outcome plus its chaos.attempt span
// quantiles.
type chaosRow struct {
	rep      chaos.Report
	waitCell string
	svcCell  string
}

// chaosSeed derives a scenario's decision-stream seed from the run
// seed and the scenario name, so scenarios are decorrelated but each
// is individually reproducible.
func chaosSeed(base uint64, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return base ^ h.Sum64()
}

// runChaosScenario simulates the scenario's device (healthy and, when
// the scenario carries a device mutation, faulted) to calibrate
// service times, then runs the availability pipeline.
func (o *Options) runChaosScenario(sc chaos.Scenario, requests int, healthy sim.Time) (chaosRow, error) {
	faulted := healthy
	if sc.Device != nil {
		cfg := o.Cfg
		sc.Device(&cfg)
		r, err := o.simulateCfg(platform.BG2, cfg, chaosDataset, simTimeline)
		if err != nil {
			return chaosRow{}, fmt.Errorf("chaos %s: %w", sc.Name, err)
		}
		faulted = r.Elapsed
	}
	span := sim.Time(requests-1) * (healthy * 10 / (chaosWorkers * 8))
	rec := trace.NewRecorder()
	cfg := chaos.PipelineConfig{
		Requests: requests,
		// Offered load at 80% of healthy capacity: W servers clear one
		// request per Service, so arrivals at Service/(W·0.8).
		Interval:     healthy * 10 / (chaosWorkers * 8),
		Workers:      chaosWorkers,
		Service:      healthy,
		Window:       [2]sim.Time{span / 4, 3 * span / 4},
		FaultService: faulted,
		FailRate:     sc.FailRate,
		StallRate:    sc.StallRate,
		StallFactor:  sc.StallFactor,
		DropRate:     sc.DropRate,
		MaxAttempts:  3,
		Backoff:      chaos.Backoff{Base: int64(healthy / 4), Max: int64(4 * healthy)},
		BudgetRatio:  0.2,
		HedgeAfter:   2 * healthy,
		Breaker:      chaos.BreakerConfig{Threshold: 5, Cooldown: int64(8 * healthy)},
		SLOTarget:    0.999,
		Seed:         chaosSeed(o.Cfg.Seed, sc.Name),
		Tracer:       rec,
	}
	row := chaosRow{rep: chaos.RunPipeline(cfg)}
	row.waitCell, row.svcCell = "-", "-"
	for _, st := range rec.Breakdown() {
		if st.Resource == "chaos.attempt" {
			row.waitCell = fmt.Sprintf("%v/%v", st.Wait.Quantile(0.5), st.Wait.Quantile(0.99))
			row.svcCell = fmt.Sprintf("%v/%v", st.Service.Quantile(0.5), st.Service.Quantile(0.99))
		}
	}
	return row, nil
}

// RunChaos executes the availability sweep across the fault catalog.
func RunChaos(o *Options, w io.Writer) error {
	o.fill()
	scs := chaos.Scenarios(o.Quick)
	requests := 600
	if o.Quick {
		requests = 200
	}
	base, err := o.simulate(platform.BG2, chaosDataset, simTimeline)
	if err != nil {
		return err
	}
	healthy := base.Elapsed
	rows, err := exp.Map(scs, func(sc chaos.Scenario) (chaosRow, error) {
		return o.runChaosScenario(sc, requests, healthy)
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "-- availability under fault (BG-2 on %s; %d requests, %d virtual workers, SLO 99.9%%)\n",
		chaosDataset, requests, chaosWorkers)
	fmt.Fprintf(w, "   %-12s %7s %9s %6s %10s %10s %10s %5s %5s %5s %5s %5s %5s\n",
		"scenario", "avail", "goodput", "burn", "p99", "p99.9", "MTTR", "ok", "deg", "drop", "rtry", "hdg", "trip")
	for i, sc := range scs {
		r := rows[i].rep
		mttr := "-"
		if r.MTTR > 0 {
			mttr = fmt.Sprintf("%v", r.MTTR)
		}
		fmt.Fprintf(w, "   %-12s %6.2f%% %8.1f/s %6.2f %10v %10v %10s %5d %5d %5d %5d %5d %5d\n",
			sc.Name, 100*r.Availability, r.Goodput, r.BudgetBurn, r.P99, r.P999, mttr,
			r.OK, r.Degraded, r.Dropped, r.Retries, r.Hedges, r.BreakerTrips)
	}
	fmt.Fprintf(w, "-- chaos.attempt spans (wait p50/p99, service p50/p99)\n")
	for i, sc := range scs {
		fmt.Fprintf(w, "   %-12s wait %-22s service %s\n", sc.Name, rows[i].waitCell, rows[i].svcCell)
	}
	fmt.Fprintln(w, "expect: baseline holds full availability; outages and storms inflate tails but stay served;")
	fmt.Fprintln(w, "        engine flaps trip the breaker and degrade instead of failing; hedges cap the stall tail;")
	fmt.Fprintln(w, "        the same seed reproduces this report bit-for-bit at any -parallel width")
	if o.Check {
		for i, sc := range scs {
			r := rows[i].rep
			if r.OK+r.Degraded+r.Failed+r.Dropped != r.Requests {
				return fmt.Errorf("chaos %s: outcomes do not partition requests", sc.Name)
			}
			if sc.Name == "baseline" && r.Availability != 1 {
				return fmt.Errorf("chaos baseline availability %.4f, want 1", r.Availability)
			}
		}
	}
	return nil
}
