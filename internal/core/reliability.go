package core

import (
	"fmt"
	"io"

	"beacongnn/internal/config"
	"beacongnn/internal/exp"
	"beacongnn/internal/fault"
	"beacongnn/internal/platform"
)

// The reliability study sweeps the NAND fault model on the amazon
// workload: throughput and command latency as wear (P/E cycles) and raw
// bit error rate climb, plus service under injected die and channel
// outages. One page-path platform (BG-DG) and the die-sampler flagship
// (BG-2) cover both data paths through the flash backend.

// reliabilityKinds returns the platforms the reliability study runs on.
func reliabilityKinds() []platform.Kind {
	return []platform.Kind{platform.BGDG, platform.BG2}
}

// relPoint is one x-axis value of a reliability sweep.
type relPoint struct {
	Label string
	Apply func(c *config.Config)
}

// relCell is one simulated (point, platform) result.
type relCell struct {
	res *platform.Result
	st  fault.Stats
}

// runRelSweep simulates every (point, platform) cell concurrently and
// returns results indexed [point][platform].
func runRelSweep(o *Options, name string, pts []relPoint, kinds []platform.Kind) ([][]relCell, error) {
	o.fill()
	type cell struct{ pt, k int }
	var cells []cell
	for pi := range pts {
		for ki := range kinds {
			cells = append(cells, cell{pi, ki})
		}
	}
	flat, err := exp.Map(cells, func(c cell) (relCell, error) {
		cfg := o.Cfg
		pts[c.pt].Apply(&cfg)
		r, err := o.simulateCfg(kinds[c.k], cfg, "amazon", simTimeline)
		if err != nil {
			return relCell{}, fmt.Errorf("%s %s=%s: %w", kinds[c.k], name, pts[c.pt].Label, err)
		}
		rc := relCell{res: r}
		if r.Faults != nil {
			rc.st = *r.Faults
		}
		return rc, nil
	})
	if err != nil {
		return nil, err
	}
	grid := make([][]relCell, len(pts))
	for i, c := range cells {
		if grid[c.pt] == nil {
			grid[c.pt] = make([]relCell, len(kinds))
		}
		grid[c.pt][c.k] = flat[i]
	}
	return grid, nil
}

// printRelSweep formats one sweep as a per-platform table: throughput,
// mean command lifetime, and the ECC/recovery event mix.
func printRelSweep(w io.Writer, name string, pts []relPoint, kinds []platform.Kind, grid [][]relCell) {
	fmt.Fprintf(w, "-- %s\n", name)
	for ki, k := range kinds {
		fmt.Fprintf(w, "   %s\n", k)
		fmt.Fprintf(w, "   %-8s %12s %14s %7s %7s %7s %9s %8s %7s %6s\n",
			name, "targets/s", "cmd-life", "retry%", "soft%", "uncorr", "degraded", "retired", "remap", "reloc")
		for pi, pt := range pts {
			c := grid[pi][ki]
			st := c.st
			pct := func(n uint64) float64 {
				if st.Reads == 0 {
					return 0
				}
				return 100 * float64(n) / float64(st.Reads)
			}
			fmt.Fprintf(w, "   %-8s %12.0f %14v %6.2f%% %6.2f%% %7d %9d %8d %7d %6d\n",
				pt.Label, c.res.Throughput, c.res.CmdLifetime,
				pct(st.RetryReads), pct(st.SoftReads),
				st.Uncorrectable, st.DegradedReads, st.RetiredBlocks, st.RemappedPages, st.Relocations)
		}
	}
}

// wearPoints returns the P/E-cycle sweep: a worn device's RBER grows
// linearly with program/erase count, walking reads from the hard-ECC
// regime through read-retry into soft-decode territory.
func wearPoints(quick bool) []relPoint {
	pes := []int{0, 2000, 4000, 6000, 8000}
	if quick {
		pes = []int{0, 4000, 8000}
	}
	var pts []relPoint
	for _, pe := range pes {
		pe := pe
		pts = append(pts, relPoint{fmt.Sprintf("%d", pe), func(c *config.Config) {
			c.Fault.Enabled = true
			c.Fault.BaseRBER = 1e-4
			c.Fault.WearRBERPerPE = 5e-7
			c.Fault.InitialPECycles = pe
		}})
	}
	return pts
}

// rberPoints returns the raw-bit-error-rate sweep at fixed wear; the
// top point pushes a fraction of reads past soft decode so the full
// retire → remap → relocate recovery chain exercises.
func rberPoints(quick bool) []relPoint {
	rbers := []float64{1e-7, 2e-3, 3e-3, 5e-3, 6e-3}
	if quick {
		rbers = []float64{1e-7, 3e-3, 6e-3}
	}
	var pts []relPoint
	for _, r := range rbers {
		r := r
		pts = append(pts, relPoint{fmt.Sprintf("%.0e", r), func(c *config.Config) {
			c.Fault.Enabled = true
			c.Fault.BaseRBER = r
			c.Fault.WearRBERPerPE = 0
		}})
	}
	return pts
}

// outagePoints returns the injected-outage scenarios: a healthy device,
// one dead die (its pages remap onto spares on healthy dies), and one
// dead channel (its traffic reroutes to the neighbor channel).
func outagePoints() []relPoint {
	base := func(c *config.Config) {
		c.Fault.Enabled = true
		c.Fault.BaseRBER = 1e-7
		c.Fault.WearRBERPerPE = 0
	}
	return []relPoint{
		{"healthy", base},
		{"die0", func(c *config.Config) { base(c); c.Fault.DeadDies = []int{0} }},
		{"chan0", func(c *config.Config) { base(c); c.Fault.DeadChannels = []int{0} }},
	}
}

// RunReliability executes the reliability study: wear and RBER sweeps
// plus the outage scenarios, each (point, platform) cell an independent
// memoized simulation.
func RunReliability(o *Options, w io.Writer) error {
	o.fill()
	kinds := reliabilityKinds()
	wear := wearPoints(o.Quick)
	rber := rberPoints(o.Quick)
	outage := outagePoints()

	type sweep struct {
		name string
		pts  []relPoint
	}
	sweeps := []sweep{
		{"P/E cycles", wear},
		{"base RBER", rber},
		{"outage", outage},
	}
	grids, err := exp.Map(sweeps, func(s sweep) ([][]relCell, error) {
		return runRelSweep(o, s.name, s.pts, kinds)
	})
	if err != nil {
		return err
	}
	for si, s := range sweeps {
		if s.name == "outage" {
			break
		}
		printRelSweep(w, s.name, s.pts, kinds, grids[si])
	}

	og := grids[len(sweeps)-1]
	fmt.Fprintf(w, "-- injected outages (dead die / dead channel)\n")
	for ki, k := range kinds {
		fmt.Fprintf(w, "   %s\n", k)
		fmt.Fprintf(w, "   %-8s %12s %14s %9s %9s %8s %7s\n",
			"scenario", "targets/s", "cmd-life", "dead-die", "reroutes", "degraded", "remap")
		for pi, pt := range outage {
			c := og[pi][ki]
			st := c.st
			fmt.Fprintf(w, "   %-8s %12.0f %14v %9d %9d %8d %7d\n",
				pt.Label, c.res.Throughput, c.res.CmdLifetime,
				st.DeadDieReads, st.ChannelReroutes, st.DegradedReads, st.RemappedPages)
		}
	}
	fmt.Fprintln(w, "expect: throughput degrades smoothly as wear/RBER push reads into retry and soft decode;")
	fmt.Fprintln(w, "        uncorrectable reads retire blocks and remap onto spares instead of failing the run;")
	fmt.Fprintln(w, "        a dead die or channel costs bandwidth but the device keeps serving")
	return nil
}
