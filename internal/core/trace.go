package core

import (
	"fmt"
	"io"

	"beacongnn/internal/platform"
	"beacongnn/internal/trace"
)

// RunTrace runs one request-traced simulation of a platform on a dataset
// and writes the spans as Chrome trace_event JSON to w (viewable in
// Perfetto or chrome://tracing). Traced runs attach the recorder to the
// system's resources directly, so they build their own System instead of
// going through the memoized engine; for a fixed config and seed the
// emitted JSON is byte-identical across runs.
func RunTrace(o *Options, platformName, datasetName string, w io.Writer) (*platform.Result, error) {
	o.fill()
	kind, err := platform.ByName(platformName)
	if err != nil {
		return nil, err
	}
	inst, err := o.instance(datasetName)
	if err != nil {
		return nil, err
	}
	s, err := platform.NewSystem(kind, o.Cfg, inst, 0)
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder()
	s.SetTracer(rec)
	res, err := s.Run(o.Batches)
	if err != nil {
		return nil, err
	}
	if err := rec.WriteChrome(w); err != nil {
		return nil, fmt.Errorf("core: writing trace: %w", err)
	}
	return res, nil
}
