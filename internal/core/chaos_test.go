package core

import (
	"bytes"
	"strings"
	"testing"
)

// TestChaosDeterministicAcrossWorkers is the acceptance bar for the
// availability sweep: the same seed renders a byte-identical report at
// any host parallelism, because the modeled pipeline runs in virtual
// time on a fixed virtual width.
func TestChaosDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) string {
		var b bytes.Buffer
		if err := RunChaos(optsWithWorkers(workers), &b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	seq := render(1)
	if seq == "" {
		t.Fatal("empty chaos output")
	}
	if par := render(8); par != seq {
		t.Fatalf("workers=8 output differs from sequential:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
	for _, want := range []string{
		"availability under fault",
		"chaos.attempt spans",
		"die-outage",
		"engine-flap",
		"stall-burst",
		"MTTR",
		"expect:",
	} {
		if !strings.Contains(seq, want) {
			t.Errorf("chaos report missing %q:\n%s", want, seq)
		}
	}
}

// TestChaosCheckInvariants runs the sweep under -check: outcome
// partition and the baseline availability ceiling are asserted inside
// RunChaos itself.
func TestChaosCheckInvariants(t *testing.T) {
	o := optsWithWorkers(4)
	o.Check = true
	var b bytes.Buffer
	if err := RunChaos(o, &b); err != nil {
		t.Fatal(err)
	}
}
