package core

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"

	"beacongnn/internal/cluster"
	"beacongnn/internal/exp"
	"beacongnn/internal/platform"
	"beacongnn/internal/sim"
)

// The cluster study scales the BG-2 model out: the DirectGraph is
// sharded across N simulated devices behind a scatter-gather
// coordinator, and the sweep reports speedup vs N, the cross-shard
// traffic each placement policy leaves on the fabric, and how serving
// availability behaves through a device failure and re-replication.
// Every grid point is one single-threaded kernel, so the report is
// byte-identical at any -parallel width.

// clusterDataset is the workload every scaling curve serves — the same
// dataset (and memoized instance) the fig14 baseline runs on, so the
// single-device column is directly comparable.
const clusterDataset = "amazon"

// clusterShardCounts returns the swept device counts.
func clusterShardCounts(quick bool) []int {
	if quick {
		return []int{1, 2, 4}
	}
	return []int{1, 2, 4, 8}
}

// clusterSeed derives a grid point's seed from the run seed and the
// point's coordinates. The workload draws are position-based, so points
// that share a seed sample the same frontier regardless of placement —
// the sweep uses one seed per (partitioner, N) only to decorrelate the
// failure drill from the scaling grid.
func clusterSeed(base uint64, part string, shards int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "cluster|%s|%d", part, shards)
	return base ^ h.Sum64()
}

// ClusterPoint is one grid point: the raw run plus its speedup over the
// same partitioner's single-device row.
type ClusterPoint struct {
	cluster.Result
	Speedup float64 `json:"speedup"`
}

// ClusterReport is the machine-readable cluster study
// (`beaconbench -exp cluster -json`).
type ClusterReport struct {
	Dataset            string          `json:"dataset"`
	Nodes              int             `json:"nodes"`
	Batches            int             `json:"batches"`
	BaselineElapsedNs  int64           `json:"baseline_elapsed_ns"`
	BaselineThroughput float64         `json:"baseline_throughput"`
	Scaling            []ClusterPoint  `json:"scaling"`
	Failure            *cluster.Result `json:"failure"`
}

// BuildClusterReport runs the scaling grid and the failure drill. The
// baseline row delegates to the exact memoized BG-2 simulation the
// paper figures use, so a cluster report never perturbs (and always
// agrees with) the single-device numbers.
func BuildClusterReport(o *Options) (*ClusterReport, error) {
	o.fill()
	base, err := o.simulate(platform.BG2, clusterDataset, simTimeline)
	if err != nil {
		return nil, err
	}
	inst, err := o.instance(clusterDataset)
	if err != nil {
		return nil, err
	}

	shardCounts := clusterShardCounts(o.Quick)
	parts := cluster.PartitionerNames()
	type point struct{ p, n int }
	var grid []point
	for pi := range parts {
		for ni := range shardCounts {
			grid = append(grid, point{pi, ni})
		}
	}
	rows, err := exp.Map(grid, func(pt point) (*cluster.Result, error) {
		c := cluster.Config{
			Shards:      shardCounts[pt.n],
			Partitioner: parts[pt.p],
			Cfg:         o.Cfg,
			Batches:     o.Batches,
			Seed:        clusterSeed(o.Cfg.Seed, "scale", 0),
		}
		var res *cluster.Result
		var rerr error
		if terr := o.engine().ThrottleCtx(o.context(), func() {
			res, rerr = cluster.Run(c, inst)
		}); terr != nil {
			return nil, terr
		}
		return res, rerr
	})
	if err != nil {
		return nil, err
	}

	rep := &ClusterReport{
		Dataset:            clusterDataset,
		Nodes:              inst.Graph.NumNodes(),
		Batches:            o.Batches,
		BaselineElapsedNs:  int64(base.Elapsed),
		BaselineThroughput: base.Throughput,
	}
	i := 0
	for range parts {
		var one *cluster.Result
		for range shardCounts {
			r := rows[i]
			i++
			if r.Shards == 1 {
				one = r
			}
			p := ClusterPoint{Result: *r}
			if one != nil && one.Throughput > 0 {
				p.Speedup = r.Throughput / one.Throughput
			}
			rep.Scaling = append(rep.Scaling, p)
		}
	}

	// Failure drill: the largest cluster loses a device halfway through.
	maxN := shardCounts[len(shardCounts)-1]
	fc := cluster.Config{
		Shards:         maxN,
		Partitioner:    cluster.PartitionHash,
		Cfg:            o.Cfg,
		Batches:        o.Batches,
		Seed:           clusterSeed(o.Cfg.Seed, "drill", maxN),
		Fail:           true,
		FailShard:      1,
		FailAfterBatch: o.Batches / 2,
	}
	var drillErr error
	if terr := o.engine().ThrottleCtx(o.context(), func() {
		rep.Failure, drillErr = cluster.Run(fc, inst)
	}); terr != nil {
		return nil, terr
	}
	if drillErr != nil {
		return nil, drillErr
	}
	return rep, nil
}

// WriteJSON emits the report as indented JSON.
func (r *ClusterReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// checkCluster enforces the sweep's conservation invariants on top of
// each run's own Check: the sampled workload must be identical at every
// grid point (placement may move traffic, never work), and the drill
// must actually have rebalanced.
func checkCluster(rep *ClusterReport) error {
	if len(rep.Scaling) == 0 {
		return fmt.Errorf("cluster: empty scaling grid")
	}
	first := rep.Scaling[0].Result
	for i := range rep.Scaling {
		r := &rep.Scaling[i].Result
		if err := r.Check(); err != nil {
			return fmt.Errorf("cluster %s/%d: %w", r.Partitioner, r.Shards, err)
		}
		if r.Fetches != first.Fetches || r.Samples != first.Samples {
			return fmt.Errorf("cluster %s/%d: workload moved with placement: %d/%d fetches, %d/%d samples",
				r.Partitioner, r.Shards, r.Fetches, first.Fetches, r.Samples, first.Samples)
		}
		if r.Shards == 1 && rep.Scaling[i].Speedup != 1 {
			return fmt.Errorf("cluster %s: single-device speedup %g != 1", r.Partitioner, rep.Scaling[i].Speedup)
		}
	}
	f := rep.Failure
	if f == nil {
		return fmt.Errorf("cluster: missing failure drill")
	}
	if err := f.Check(); err != nil {
		return fmt.Errorf("cluster drill: %w", err)
	}
	if !f.Failed || f.MovedBytes <= 0 || f.RebalanceNs <= 0 {
		return fmt.Errorf("cluster drill: no rebalance recorded: %+v", f)
	}
	return nil
}

// RunCluster executes the cluster study: scaling curves per placement
// policy plus the failure-rebalance drill.
func RunCluster(o *Options, w io.Writer) error {
	o.fill()
	rep, err := BuildClusterReport(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "-- cluster scaling (%s, %d nodes, %d batches; baseline BG-2 %v / %.1f targets/s)\n",
		rep.Dataset, rep.Nodes, rep.Batches, sim.Time(rep.BaselineElapsedNs), rep.BaselineThroughput)
	last := ""
	for _, p := range rep.Scaling {
		if p.Partitioner != last {
			last = p.Partitioner
			fmt.Fprintf(w, "   %s placement\n", p.Partitioner)
			fmt.Fprintf(w, "   %7s %12s %10s %8s %8s %8s %12s %10s\n",
				"devices", "elapsed", "targets/s", "speedup", "cross%", "intra%", "fabric", "imbalance")
		}
		fmt.Fprintf(w, "   %7d %12v %10.1f %8.2f %7.1f%% %7.1f%% %9.2f MB %10.2f\n",
			p.Shards, sim.Time(p.ElapsedNs), p.Throughput, p.Speedup,
			100*p.CrossFrac, 100*p.IntraEdgeFrac, float64(p.FabricBytes)/1e6, p.ReadImbalance)
	}
	f := rep.Failure
	fmt.Fprintf(w, "-- failure drill (%s, %d devices: shard %d dies at batch %d)\n",
		f.Partitioner, f.Shards, f.FailShard, rep.Batches/2)
	fmt.Fprintf(w, "   backup shard %d took ownership; moved %.2f MB in %v; %d of %d fetches degraded; availability %.4f\n",
		f.BackupShard, float64(f.MovedBytes)/1e6, sim.Time(f.RebalanceNs),
		f.DegradedFetches, f.Fetches, f.Availability)
	fmt.Fprintln(w, "expect: speedup grows with device count but sub-linearly — the per-hop coordinator")
	fmt.Fprintln(w, "        barrier and fabric round trips are the serial fraction; locality placement")
	fmt.Fprintln(w, "        trades read balance for co-residency; the drill serves every request through the failure,")
	fmt.Fprintln(w, "        dipping to degraded replica serves only while the re-replication stream drains;")
	fmt.Fprintln(w, "        identical output at any -parallel width")
	if o.Check {
		if err := checkCluster(rep); err != nil {
			return err
		}
	}
	return nil
}
