package core

import (
	"testing"

	"beacongnn/internal/platform"
)

// Golden-figure fidelity: the quick-mode evaluation must keep
// reproducing Figure 14's speedup table and Figure 19's energy
// breakdown, within documented tolerances.
//
// Two kinds of assertion, per the two ways a regression can matter:
//
//   - Ordering (zero tolerance): the paper's qualitative claims — every
//     BeaconGNN variant beats the baselines, BG-2 dominates everything,
//     CC burns its energy externally while BG-1 burns it on transfer —
//     must hold exactly. An inversion is a broken conclusion.
//   - Magnitude (25% relative tolerance): the speedup and efficiency
//     ratios recorded from the calibrated model at this commit. The
//     slack absorbs deliberate parameter recalibration (these are model
//     constants, not physics) while still catching an accidental
//     order-of-magnitude drift.
//
// Goldens were recorded with -quick (4000 nodes, 3 batches), the same
// configuration this test runs. Runs execute under the invariant
// checker, so a conservation violation fails here too.
const goldenTol = 0.25

// fig14Golden maps dataset → speedup over CC per platform, recorded
// from `beaconbench -exp fig14 -quick`.
var fig14Golden = map[string]map[platform.Kind]float64{
	"amazon": {
		platform.SmartSage: 2.19, platform.GList: 1.21,
		platform.BG1: 3.13, platform.BGDG: 3.58, platform.BGSP: 7.46,
		platform.BGDGSP: 10.90, platform.BG2: 17.17,
	},
	"reddit": {
		platform.SmartSage: 2.20, platform.GList: 1.20,
		platform.BG1: 3.03, platform.BGDG: 3.31, platform.BGSP: 5.63,
		platform.BGDGSP: 7.21, platform.BG2: 8.33,
	},
	"movielens": {
		platform.SmartSage: 2.40, platform.GList: 1.16,
		platform.BG1: 3.30, platform.BGDG: 3.78, platform.BGSP: 8.73,
		platform.BGDGSP: 13.39, platform.BG2: 29.36,
	},
}

// fig14Order is the required throughput ordering on every dataset,
// slowest first. Note GList lands *below* SmartSage here (and in the
// paper): in-storage sampling without DirectGraph still pays dependent
// page walks.
var fig14Order = []platform.Kind{
	platform.CC, platform.GList, platform.SmartSage,
	platform.BG1, platform.BGDG, platform.BGSP, platform.BGDGSP, platform.BG2,
}

func relClose(got, want, tol float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol*want
}

func TestGoldenFig14Speedups(t *testing.T) {
	datasets := []string{"amazon", "reddit", "movielens"}
	if testing.Short() {
		datasets = datasets[:2]
	}
	o := &Options{Quick: true, Check: true}
	o.fill()
	grid, err := o.simulateGrid(o.Cfg, datasets, platform.All(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for di, ds := range datasets {
		tput := map[platform.Kind]float64{}
		for ki, k := range platform.All() {
			tput[k] = grid[di][ki].Throughput
		}
		for i := 1; i < len(fig14Order); i++ {
			lo, hi := fig14Order[i-1], fig14Order[i]
			if tput[hi] <= tput[lo] {
				t.Errorf("%s: %s (%.0f targets/s) should outperform %s (%.0f) — Fig. 14 ordering broken",
					ds, hi, tput[hi], lo, tput[lo])
			}
		}
		for k, want := range fig14Golden[ds] {
			got := tput[k] / tput[platform.CC]
			if !relClose(got, want, goldenTol) {
				t.Errorf("%s: %s speedup over CC = %.2f, golden %.2f ± %.0f%%",
					ds, k, got, want, goldenTol*100)
			}
		}
	}
}

func TestGoldenFig19Energy(t *testing.T) {
	o := &Options{Quick: true, Check: true}
	o.fill()
	results, err := o.simulateOn(o.Cfg, "amazon", platform.All(), 0)
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[platform.Kind]*platform.Result{}
	for ki, k := range platform.All() {
		byKind[k] = results[ki]
	}

	// Dominant energy group per platform — the qualitative shape of
	// Fig. 19: host-centric CC is external-transfer bound, BG-1 moves
	// whole pages to SSD DRAM (transfer), BG-2 reduces everything but
	// the unavoidable senses (flash).
	for _, tc := range []struct {
		kind     platform.Kind
		dominant string
	}{
		{platform.CC, "external"},
		{platform.BG1, "transfer"},
		{platform.BG2, "flash"},
	} {
		g := byKind[tc.kind].EnergyGroup
		for name, f := range g {
			if name != tc.dominant && f >= g[tc.dominant] {
				t.Errorf("%s: group %s (%.0f%%) outweighs %s (%.0f%%) — Fig. 19 shape broken",
					tc.kind, name, f*100, tc.dominant, g[tc.dominant]*100)
			}
		}
	}

	// Efficiency (targets/s/W) ordering and golden ratios vs CC. Unlike
	// raw throughput, low-power GList edges out SmartSage here (its SSD
	// draws half the watts), so the two swap relative to fig14Order.
	effOrder := []platform.Kind{
		platform.CC, platform.SmartSage, platform.GList,
		platform.BG1, platform.BGDG, platform.BGSP, platform.BGDGSP, platform.BG2,
	}
	for i := 1; i < len(effOrder); i++ {
		lo, hi := effOrder[i-1], effOrder[i]
		if byKind[hi].Efficiency <= byKind[lo].Efficiency {
			t.Errorf("%s efficiency %.0f should exceed %s's %.0f",
				hi, byKind[hi].Efficiency, lo, byKind[lo].Efficiency)
		}
	}
	for k, want := range map[platform.Kind]float64{
		platform.BG1: 2.79, // golden ratios from `beaconbench -exp fig19 -quick`
		platform.BG2: 9.92, // (paper reports ≈9.86× for BG-2)
	} {
		got := byKind[k].Efficiency / byKind[platform.CC].Efficiency
		if !relClose(got, want, goldenTol) {
			t.Errorf("%s efficiency vs CC = %.2f, golden %.2f ± %.0f%%", k, got, want, goldenTol*100)
		}
	}
}
