package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestCapacityDeterministicAcrossWorkers is the acceptance bar for the
// capacity sweep: the same seed renders a byte-identical report at any
// host parallelism, because every grid point replays its schedule in
// virtual time on a fixed virtual width and the fan-out preserves
// order.
func TestCapacityDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) string {
		var b bytes.Buffer
		if err := RunCapacity(optsWithWorkers(workers), &b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	seq := render(1)
	if seq == "" {
		t.Fatal("empty capacity output")
	}
	if par := render(8); par != seq {
		t.Fatalf("workers=8 output differs from sequential:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
	for _, want := range []string{
		"open-loop capacity curves",
		"BG-2 / poisson",
		"BG-2 / mmpp",
		"beaconserved / poisson",
		"beaconserved / mmpp",
		"knee:",
		"loadgen.backend spans",
		"expect:",
	} {
		if !strings.Contains(seq, want) {
			t.Errorf("capacity report missing %q:\n%s", want, seq)
		}
	}
}

// TestCapacityJSONShape: the machine-readable report round-trips and
// carries the capacity_curves section with one curve per
// (platform, arrival) and a knee on every curve.
func TestCapacityJSONShape(t *testing.T) {
	rep, cells, err := BuildCapacityReport(optsWithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Curves) != 4 || len(cells) != 4 {
		t.Fatalf("curves/cells = %d/%d, want 4/4", len(rep.Curves), len(cells))
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if _, ok := decoded["capacity_curves"]; !ok {
		t.Fatalf("JSON missing capacity_curves section: %s", buf.String())
	}
	for _, c := range rep.Curves {
		if len(c.Steps) == 0 {
			t.Fatalf("curve %s/%s has no steps", c.Platform, c.Arrival)
		}
		if c.KneeIndex >= 0 && c.KneeQPS != c.Steps[c.KneeIndex].OfferedQPS {
			t.Fatalf("curve %s/%s knee qps %v does not match step %d", c.Platform, c.Arrival, c.KneeQPS, c.KneeIndex)
		}
	}
}

// TestCapacityCheckInvariants runs the sweep under -check: outcome
// partition, monotone offered load, and the goodput ceiling are
// asserted inside RunCapacity itself.
func TestCapacityCheckInvariants(t *testing.T) {
	o := optsWithWorkers(4)
	o.Check = true
	var b bytes.Buffer
	if err := RunCapacity(o, &b); err != nil {
		t.Fatal(err)
	}
}
