package core

import (
	"bytes"
	"testing"

	"beacongnn/internal/platform"
)

// TestSweepIncrementalMatchesFullResim is the referee for incremental
// sweeps: Figure 18 rendered with every cache enabled (result memo,
// precomputed frontiers, instance reuse) must be byte-identical to the
// same sweep with FullResim forcing every simulation from scratch. The
// incremental run must also demonstrably reuse work — otherwise the
// comparison proves nothing.
func TestSweepIncrementalMatchesFullResim(t *testing.T) {
	render := func(fullResim bool) (string, *Options) {
		o := &Options{Quick: true, ScaleNodes: 1500, Batches: 2, FullResim: fullResim}
		var b bytes.Buffer
		if err := RunFig18(o, &b); err != nil {
			t.Fatal(err)
		}
		return b.String(), o
	}

	inc, incOpts := render(false)
	full, _ := render(true)
	if inc == "" {
		t.Fatal("empty fig18 output")
	}
	if inc != full {
		a, b := bytes.Split([]byte(inc), []byte("\n")), bytes.Split([]byte(full), []byte("\n"))
		for i := 0; i < len(a) && i < len(b); i++ {
			if !bytes.Equal(a[i], b[i]) {
				t.Fatalf("incremental sweep diverges from full resim at line %d:\nincremental: %s\nfull resim:  %s", i+1, a[i], b[i])
			}
		}
		t.Fatalf("sweep outputs differ in length: %d vs %d bytes", len(inc), len(full))
	}

	// The sweep shares its base point across axes, so the memoized run
	// must have served at least one simulation from cache.
	runs, hits := incOpts.engine().Stats()
	if hits == 0 {
		t.Fatalf("incremental sweep recorded no memo hits (%d runs) — nothing was reused", runs)
	}
}

// TestFullResimDisablesMemo pins the -full-resim contract at the engine
// level: identical back-to-back simulations re-run instead of hitting
// the memo.
func TestFullResimDisablesMemo(t *testing.T) {
	o := &Options{Quick: true, ScaleNodes: 1200, Batches: 2, FullResim: true}
	for i := 0; i < 2; i++ {
		if _, err := o.simulate(platform.BG2, "PPI", simTimeline); err != nil {
			t.Fatal(err)
		}
	}
	runs, hits := o.engine().Stats()
	if hits != 0 || runs != 2 {
		t.Fatalf("FullResim engine stats = %d runs, %d hits; want 2 runs, 0 hits", runs, hits)
	}
}
