package ftl

import (
	"math"
	"testing"
)

func TestRetireBlockMarksAndCounts(t *testing.T) {
	f := newFTL()
	id := BlockID{Die: 3, Block: 10}
	if f.IsRetiredBlock(id) {
		t.Fatal("fresh block reported retired")
	}
	f.RetireBlock(id)
	if !f.IsRetiredBlock(id) {
		t.Fatal("retired block not reported")
	}
	if f.RetiredCount() != 1 {
		t.Fatalf("retired count = %d, want 1", f.RetiredCount())
	}
}

func TestPlanReclamationSkipsRetiredRows(t *testing.T) {
	f := newFTL()
	if _, _, err := f.ReserveForPages(10); err != nil {
		t.Fatal(err)
	}
	// Retire one block in each of the next two rows: the scan must skip
	// past both before pinning fresh rows.
	f.RetireBlock(BlockID{Die: 0, Block: f.reservedStart + f.reservedRows})
	f.RetireBlock(BlockID{Die: 5, Block: f.reservedStart + f.reservedRows + 1})
	wantStart := f.reservedStart + f.reservedRows + 2
	plan, err := f.PlanReclamation()
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.NewFirstPage / f.rowPages(); int(got) != wantStart {
		t.Fatalf("reclamation landed on row %d, want %d (past retired rows)", got, wantStart)
	}
}

func TestPlanReclamationStopsShortOfSpares(t *testing.T) {
	f := newFTL()
	if _, _, err := f.ReserveForPages(10); err != nil {
		t.Fatal(err)
	}
	if err := f.ReserveSpares(2); err != nil {
		t.Fatal(err)
	}
	// Retire a block in every remaining row below the spare region: no
	// clean destination is left, and the planner must say so rather than
	// move the image into the spares.
	for r := f.reservedStart + f.reservedRows; r < f.cfg.BlocksPerDie-f.spareRows; r++ {
		f.RetireBlock(BlockID{Die: 0, Block: r})
	}
	if _, err := f.PlanReclamation(); err == nil {
		t.Fatal("reclamation planned into retired/spare rows")
	}
}

func TestWearDiscrepancyFiniteAfterRetirement(t *testing.T) {
	f := newFTL()
	if _, _, err := f.ReserveForPages(10); err != nil {
		t.Fatal(err)
	}
	// A badly worn regular block retires; its frozen P/E total must drop
	// out of the statistics instead of pinning the gap high forever.
	hot := BlockID{Die: 0, Block: f.reservedStart + f.reservedRows + 3}
	for i := 0; i < 1000; i++ {
		f.RecordErase(hot)
	}
	before := f.WearDiscrepancy()
	if math.IsNaN(before) || math.IsInf(before, 0) || before <= 0 {
		t.Fatalf("pre-retirement discrepancy = %v", before)
	}
	f.RetireBlock(hot)
	after := f.WearDiscrepancy()
	if math.IsNaN(after) || math.IsInf(after, 0) {
		t.Fatalf("post-retirement discrepancy = %v", after)
	}
	if after >= before {
		t.Fatalf("retired block still skews wear gap: %v → %v", before, after)
	}
}

func TestRemapPageSkipsRetiredAndFilteredDies(t *testing.T) {
	f := newFTL()
	if err := f.ReserveSpares(2); err != nil {
		t.Fatal(err)
	}
	// The first spare block (die 0) is retired and die 1 is dead: the
	// cursor must land on die 2's spare block.
	first := f.blockOfPage(f.SpareFirstPage())
	f.RetireBlock(first)
	sp, err := f.RemapPage(1234, func(die int) bool { return die != 1 })
	if err != nil {
		t.Fatal(err)
	}
	id := f.blockOfPage(sp)
	if id.Die == 1 || f.IsRetiredBlock(id) {
		t.Fatalf("remap landed on die %d (retired=%v)", id.Die, f.IsRetiredBlock(id))
	}
	if sp < f.SpareFirstPage() {
		t.Fatalf("remap target %d below spare region %d", sp, f.SpareFirstPage())
	}
	if got := f.Resolve(1234); got != sp {
		t.Fatalf("Resolve(1234) = %d, want %d", got, sp)
	}
	// The cursor never reuses pages: a second remap gets a later page.
	sp2, err := f.RemapPage(99, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sp2 <= sp {
		t.Fatalf("spare cursor went backwards: %d after %d", sp2, sp)
	}
}

func TestRemapPageRequiresSpares(t *testing.T) {
	f := newFTL()
	if _, err := f.RemapPage(7, nil); err == nil {
		t.Fatal("remap without spare rows accepted")
	}
}

func TestResolveReplaysRelocationsThenRemap(t *testing.T) {
	f := newFTL()
	if err := f.ReserveSpares(1); err != nil {
		t.Fatal(err)
	}
	rp := f.rowPages()
	// Two stacked relocations: [0, rp) moved up one row, then the moved
	// range moved up another.
	f.RecordRelocation(0, rp, rp)
	f.RecordRelocation(rp, rp, rp)
	if got := f.Resolve(5); got != 5+2*rp {
		t.Fatalf("Resolve(5) = %d, want %d", got, 5+2*rp)
	}
	// A remap of the fully-resolved page applies after the replay.
	sp, err := f.RemapPage(5+2*rp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Resolve(5); got != sp {
		t.Fatalf("Resolve(5) = %d, want spare %d", got, sp)
	}
	// Pages outside the moved ranges resolve unchanged.
	out := 3 * rp
	if got := f.Resolve(out); got != out {
		t.Fatalf("Resolve(%d) = %d, want identity", out, got)
	}
}

func TestRemapsInRangeAndClear(t *testing.T) {
	f := newFTL()
	if err := f.ReserveSpares(1); err != nil {
		t.Fatal(err)
	}
	a, err := f.RemapPage(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.RemapPage(5000, nil); err != nil {
		t.Fatal(err)
	}
	got := f.RemapsInRange(0, 100)
	if len(got) != 1 || got[10] != a {
		t.Fatalf("RemapsInRange = %v", got)
	}
	f.ClearRemapsIn(0, 100)
	if f.Resolve(10) != 10 {
		t.Fatal("cleared remap still resolves")
	}
	if f.Resolve(5000) == 5000 {
		t.Fatal("out-of-range remap was cleared")
	}
}
