package ftl

import (
	"testing"

	"beacongnn/internal/config"
	"beacongnn/internal/dataset"
	"beacongnn/internal/directgraph"
	"beacongnn/internal/graph"
)

func newFTL() *FTL { return New(config.Default().Flash) }

func TestMapLookup(t *testing.T) {
	f := newFTL()
	// Reserve first so reserved region exists; map outside it.
	if _, _, err := f.ReserveForPages(100); err != nil {
		t.Fatal(err)
	}
	outside := f.rowPages() * 2 // beyond the single reserved row
	if err := f.Map(7, outside); err != nil {
		t.Fatal(err)
	}
	ppa, ok := f.Lookup(7)
	if !ok || ppa != outside {
		t.Fatalf("lookup = %d,%v", ppa, ok)
	}
	if _, ok := f.Lookup(8); ok {
		t.Fatal("unmapped LPA resolved")
	}
	if f.MappedCount() != 1 {
		t.Fatalf("mapped = %d", f.MappedCount())
	}
}

func TestMapIntoReservedRejected(t *testing.T) {
	f := newFTL()
	if _, _, err := f.ReserveForPages(10); err != nil {
		t.Fatal(err)
	}
	if err := f.Map(1, 0); err == nil {
		t.Fatal("mapping into reserved DirectGraph block accepted (isolation breach)")
	}
}

func TestReserveForPagesRowGranularity(t *testing.T) {
	f := newFTL()
	first, count, err := f.ReserveForPages(1)
	if err != nil {
		t.Fatal(err)
	}
	if first != 0 {
		t.Fatalf("first = %d", first)
	}
	if count != f.rowPages() { // rounded up to one full row
		t.Fatalf("count = %d, want %d", count, f.rowPages())
	}
	if !f.IsReserved(0) || !f.IsReserved(count-1) {
		t.Fatal("reserved range not marked")
	}
	if f.IsReserved(count) {
		t.Fatal("page beyond range marked reserved")
	}
	blocks := f.ReservedBlocks()
	if len(blocks) != config.Default().Flash.TotalDies() {
		t.Fatalf("reserved %d blocks, want one per die", len(blocks))
	}
}

func TestDoubleReserveRejected(t *testing.T) {
	f := newFTL()
	if _, _, err := f.ReserveForPages(5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.ReserveForPages(5); err == nil {
		t.Fatal("double reservation accepted")
	}
}

func TestReserveTooLarge(t *testing.T) {
	f := newFTL()
	cfg := config.Default().Flash
	if _, _, err := f.ReserveForPages(int(cfg.TotalBytes()/int64(cfg.PageSize)) + 1); err == nil {
		t.Fatal("oversized reservation accepted")
	}
}

func TestAllocatorDispensesReservedPages(t *testing.T) {
	f := newFTL()
	_, count, err := f.ReserveForPages(300)
	if err != nil {
		t.Fatal(err)
	}
	a := f.Allocator()
	for i := uint32(0); i < count; i++ {
		p, err := a.NextPage()
		if err != nil {
			t.Fatal(err)
		}
		if p != i {
			t.Fatalf("page %d, want %d", p, i)
		}
		if !f.IsReserved(p) {
			t.Fatalf("allocator handed out unreserved page %d", p)
		}
	}
	if _, err := a.NextPage(); err == nil {
		t.Fatal("allocator did not exhaust")
	}
}

func TestAllocatorFeedsDirectGraphBuild(t *testing.T) {
	f := newFTL()
	if _, _, err := f.ReserveForPages(40_000); err != nil {
		t.Fatal(err)
	}
	g, err := graph.Generate(graph.GenSpec{Nodes: 2000, AvgDegree: 20, FeatureDim: 16, PowerLaw: 2.0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := directgraph.BuildGraph(directgraph.Layout{PageSize: 4096, FeatureDim: 16}, g, f.Allocator())
	if err != nil {
		t.Fatal(err)
	}
	// Every DirectGraph page must be inside the reserved region — the
	// Section VI-E flush check.
	for pn := range b.PageNumbers() {
		if !f.IsReserved(pn) {
			t.Fatalf("DirectGraph page %d outside reserved blocks", pn)
		}
	}
}

func TestWearDiscrepancyAndReclamation(t *testing.T) {
	f := newFTL()
	_, count, err := f.ReserveForPages(10)
	if err != nil {
		t.Fatal(err)
	}
	// Hammer regular blocks with erases.
	regular := count + f.rowPages()*3
	id := BlockID{Die: f.geom.GlobalDie(regular), Block: f.geom.BlockOf(regular)}
	for i := 0; i < 50; i++ {
		f.RecordErase(id)
	}
	if f.EraseCount(id) != 50 {
		t.Fatalf("erase count = %d", f.EraseCount(id))
	}
	if !f.NeedsReclamation(40) {
		t.Fatalf("discrepancy %.1f should trigger at threshold 40", f.WearDiscrepancy())
	}
	if f.NeedsReclamation(60) {
		t.Fatal("threshold 60 should not trigger")
	}
	plan, err := f.PlanReclamation()
	if err != nil {
		t.Fatal(err)
	}
	if plan.PageDelta != f.rowPages() {
		t.Fatalf("delta = %d, want one row (%d)", plan.PageDelta, f.rowPages())
	}
	if f.IsReserved(plan.OldFirstPage) {
		t.Fatal("old region still reserved")
	}
	if !f.IsReserved(plan.NewFirstPage) {
		t.Fatal("new region not reserved")
	}
	// Old region becomes mappable again.
	if err := f.Map(1, plan.OldFirstPage); err != nil {
		t.Fatalf("old region not released: %v", err)
	}
}

func TestReclamationWithoutReservation(t *testing.T) {
	if _, err := newFTL().PlanReclamation(); err == nil {
		t.Fatal("reclamation with no DirectGraph accepted")
	}
}

func TestRelocatePatchesEmbeddedAddresses(t *testing.T) {
	// End-to-end: build, reclaim, relocate, verify decode at new pages.
	f := newFTL()
	if _, _, err := f.ReserveForPages(20_000); err != nil {
		t.Fatal(err)
	}
	inst, err := dataset.Materialize(dataset.Desc{
		Name: "t", AvgDegree: 15, MaxDegree: 200, FeatureDim: 8, PowerLaw: 2.0,
	}, 1000, 4096, 9)
	if err != nil {
		t.Fatal(err)
	}
	b := inst.Build
	plan, err := f.PlanReclamation()
	if err != nil {
		t.Fatal(err)
	}
	if err := directgraph.Relocate(b, plan.PageDelta); err != nil {
		t.Fatal(err)
	}
	// All sections must decode at their new addresses with intact links.
	if err := directgraph.Verify(b); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 50; v++ {
		sec, err := b.ReadSection(b.NodeAddr(graph.NodeID(v)))
		if err != nil {
			t.Fatalf("node %d after relocate: %v", v, err)
		}
		if sec.NodeID != uint32(v) {
			t.Fatalf("node %d decoded as %d", v, sec.NodeID)
		}
	}
}

func TestWearDiscrepancyUntouchedReserved(t *testing.T) {
	f := newFTL()
	if d := f.WearDiscrepancy(); d != 0 {
		t.Fatalf("pristine FTL discrepancy = %v, want 0", d)
	}
	if _, _, err := f.ReserveForPages(10); err != nil {
		t.Fatal(err)
	}
	// Reserved rows exist but none was ever erased, and no regular block
	// was touched either: still zero, not NaN.
	if d := f.WearDiscrepancy(); d != 0 {
		t.Fatalf("untouched discrepancy = %v, want 0", d)
	}
	// One regular block at 12 erases against completely untouched
	// reserved rows: the gap is exactly the regular mean.
	regular := f.rowPages() * uint32(f.reservedRows+3)
	id := BlockID{Die: f.geom.GlobalDie(regular), Block: f.geom.BlockOf(regular)}
	for i := 0; i < 12; i++ {
		f.RecordErase(id)
	}
	if d := f.WearDiscrepancy(); d != 12 {
		t.Fatalf("discrepancy = %v, want 12 (reserved blocks untouched)", d)
	}
	// Touching one reserved block averages over the whole reserved
	// population, not just the touched entries.
	f.RecordErase(BlockID{Die: 0, Block: f.reservedStart})
	want := 12 - 1/float64(f.reservedRows*f.cfg.TotalDies())
	if d := f.WearDiscrepancy(); d != want {
		t.Fatalf("discrepancy = %v, want %v", d, want)
	}
}
