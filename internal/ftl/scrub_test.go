package ftl

import (
	"testing"

	"beacongnn/internal/config"
	"beacongnn/internal/flash"
	"beacongnn/internal/sim"
)

func scrubFixture(t *testing.T, rber float64) (*sim.Kernel, *flash.Backend, *FTL, *Scrubber) {
	t.Helper()
	k := sim.New()
	cfg := config.Default().Flash
	// Keep the pass small: one row = TotalDies blocks × pages.
	cfg.PagesPerBlock = 4
	b, err := flash.New(k, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := New(cfg)
	if _, _, err := f.ReserveForPages(10); err != nil {
		t.Fatal(err)
	}
	s, err := NewScrubber(k, b, f, rber, 77)
	if err != nil {
		t.Fatal(err)
	}
	return k, b, f, s
}

func TestScrubberValidation(t *testing.T) {
	k := sim.New()
	b, _ := flash.New(k, config.Default().Flash, 0)
	f := New(config.Default().Flash)
	if _, err := NewScrubber(k, b, f, -0.1, 1); err == nil {
		t.Fatal("negative RBER accepted")
	}
	if _, err := NewScrubber(k, b, f, 1.0, 1); err == nil {
		t.Fatal("RBER=1 accepted")
	}
}

func TestCleanScrubPassFindsNothing(t *testing.T) {
	// RBER 0: every page scrubbed, zero errors, zero repairs.
	k, b, f, s := scrubFixture(t, 0)
	done := false
	s.ScrubPass(func() { done = true })
	k.Run()
	if !done {
		t.Fatal("pass never completed")
	}
	pages, errs, fixed := s.Stats()
	want := uint64(f.reservedRows) * uint64(f.rowPages())
	if pages != want {
		t.Fatalf("scrubbed %d pages, want %d", pages, want)
	}
	if errs != 0 || fixed != 0 {
		t.Fatalf("clean flash produced %d errors, %d repairs", errs, fixed)
	}
	if reads, _, erases := b.Counts(); reads != want || erases != 0 {
		t.Fatalf("backend saw %d reads, %d erases", reads, erases)
	}
}

func TestHighRBERTriggersRepairs(t *testing.T) {
	// Inject a high error rate: repairs must happen, and each repair
	// must erase + fully re-program a block, bumping P/E counts.
	k, b, f, s := scrubFixture(t, 1e-5) // per-page prob ≈ 28 %
	done := false
	s.ScrubPass(func() { done = true })
	k.Run()
	if !done {
		t.Fatal("pass never completed")
	}
	_, errs, fixed := s.Stats()
	if errs == 0 || fixed == 0 {
		t.Fatalf("no repairs at huge RBER (errs=%d fixed=%d)", errs, fixed)
	}
	if fixed != errs {
		t.Fatalf("errors %d != block repairs %d (one repair per erroring page in this model)", errs, fixed)
	}
	_, programs, erases := b.Counts()
	if erases != fixed {
		t.Fatalf("erases %d != repairs %d", erases, fixed)
	}
	if programs != fixed*uint64(b.Config().PagesPerBlock) {
		t.Fatalf("programs %d, want %d per repaired block", programs, fixed*uint64(b.Config().PagesPerBlock))
	}
	// Repairs count toward DirectGraph-block wear.
	worn := false
	for _, id := range f.ReservedBlocks() {
		if f.EraseCount(id) > 0 {
			worn = true
			break
		}
	}
	if !worn {
		t.Fatal("repairs did not record P/E cycles")
	}
}

func TestScrubDeterministic(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		k, _, _, s := scrubFixture(t, 1e-6)
		s.ScrubPass(nil)
		k.Run()
		return s.Stats()
	}
	p1, e1, f1 := run()
	p2, e2, f2 := run()
	if p1 != p2 || e1 != e2 || f1 != f2 {
		t.Fatal("scrub passes not deterministic")
	}
}

func TestScrubEmptyReservation(t *testing.T) {
	k := sim.New()
	cfg := config.Default().Flash
	b, _ := flash.New(k, cfg, 0)
	f := New(cfg) // nothing reserved
	s, err := NewScrubber(k, b, f, 1e-7, 1)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	s.ScrubPass(func() { done = true })
	k.Run()
	if !done {
		t.Fatal("empty pass must still complete")
	}
}

func TestScrubThenReclaimLifecycle(t *testing.T) {
	// End-to-end Section VI-F: scrub-driven repairs age the DirectGraph
	// blocks; a reclamation then moves the reservation cleanly.
	k, _, f, s := scrubFixture(t, 1e-5)
	s.ScrubPass(nil)
	k.Run()
	if _, err := f.PlanReclamation(); err != nil {
		t.Fatal(err)
	}
	if f.reservedStart == 0 {
		t.Fatal("reservation did not move")
	}
}
