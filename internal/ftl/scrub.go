package ftl

import (
	"fmt"
	"math"

	"beacongnn/internal/flash"
	"beacongnn/internal/sim"
	"beacongnn/internal/xrand"
)

// Scrubber implements Section VI-F's retention-error defence: during
// idle time the firmware walks the DirectGraph blocks, reads every page
// through the controller's ECC engine, and — because pages of a block
// share retention characteristics — erases and re-programs the whole
// block as soon as any page shows correctable errors.
//
// Error arrival is modelled per scrub pass: each page independently
// develops a correctable error since its last scrub with probability
// PageErrorProb (derived from the configured RBER and the page size;
// Z-NAND's RBER < 1e-7 makes these events rare, Section VI-F).
type Scrubber struct {
	k       *sim.Kernel
	backend *flash.Backend
	ftl     *FTL
	rng     *xrand.Source

	// PageErrorProb is the per-page error probability per scrub pass.
	PageErrorProb float64
	// ECCCheckTime is controller time to ECC-check one page.
	ECCCheckTime sim.Time

	pagesScrubbed uint64
	errorsFound   uint64
	blocksFixed   uint64
}

// NewScrubber builds a scrubber over the FTL's reserved blocks. rber is
// the raw bit error rate per bit per pass; the per-page probability is
// 1 − (1 − rber)^bits ≈ rber · bits for small rates.
func NewScrubber(k *sim.Kernel, backend *flash.Backend, f *FTL, rber float64, seed uint64) (*Scrubber, error) {
	if rber < 0 || rber >= 1 {
		return nil, fmt.Errorf("ftl: RBER %v out of range", rber)
	}
	bits := float64(backend.Config().PageSize * 8)
	return &Scrubber{
		k: k, backend: backend, ftl: f,
		rng:           xrand.New(seed),
		PageErrorProb: 1 - math.Pow(1-rber, bits),
		ECCCheckTime:  2 * sim.Microsecond,
	}, nil
}

// Stats reports (pagesScrubbed, errorsFound, blocksReprogrammed).
func (s *Scrubber) Stats() (uint64, uint64, uint64) {
	return s.pagesScrubbed, s.errorsFound, s.blocksFixed
}

// ScrubPass scans every reserved DirectGraph page once and repairs any
// block containing an error; done fires when the pass completes. The
// pass competes for the same dies/channels as regular work, so callers
// schedule it during idle windows (Section VI-F).
func (s *Scrubber) ScrubPass(done func()) {
	first := uint32(s.ftl.reservedStart) * s.ftl.rowPages()
	count := uint32(s.ftl.reservedRows) * s.ftl.rowPages()
	if count == 0 {
		if done != nil {
			done()
		}
		return
	}
	remaining := int(count)
	finishOne := func() {
		remaining--
		if remaining == 0 && done != nil {
			done()
		}
	}
	var scrubPage func(p uint32)
	scrubPage = func(p uint32) {
		s.backend.ReadPage(p, 0, nil, func() {
			// ECC check happens in the controller after a (full page)
			// transfer; charge the transfer and check time.
			s.backend.Transfer(p, s.backend.Config().PageSize, func() {
				s.k.After(s.ECCCheckTime, func() {
					s.pagesScrubbed++
					if s.rng.Float64() < s.PageErrorProb {
						s.errorsFound++
						s.repairBlock(p, finishOne)
						return
					}
					finishOne()
				})
			})
		})
	}
	for i := uint32(0); i < count; i++ {
		scrubPage(first + i)
	}
}

// repairBlock erases the page's block and re-programs every page with
// corrected content (the same-retention-characteristics policy).
func (s *Scrubber) repairBlock(page uint32, done func()) {
	s.blocksFixed++
	id := s.ftl.blockOfPage(page)
	s.ftl.RecordErase(id)
	s.backend.EraseBlock(page, func() {
		// Re-program the block's pages on this die. Page numbers within
		// the block stride by the die count under the stripe mapping.
		stride := uint32(s.ftl.cfg.TotalDies())
		base := page - (page/stride%uint32(s.ftl.cfg.PagesPerBlock))*stride
		remaining := s.ftl.cfg.PagesPerBlock
		for j := 0; j < s.ftl.cfg.PagesPerBlock; j++ {
			s.backend.ProgramPage(base+uint32(j)*stride, func() {
				remaining--
				if remaining == 0 {
					done()
				}
			})
		}
	})
}
