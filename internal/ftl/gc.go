package ftl

import (
	"fmt"
	"sort"
)

// Log-structured allocation and garbage collection for the regular
// (non-DirectGraph) portion of the device. Section VI-E promises that
// "host-side applications can continue their regular storage operations
// on the SSD"; this is that path's FTL half: writes append into an open
// block, overwrites invalidate the old page, and greedy GC reclaims the
// written block with the fewest valid pages when free space runs low.

// pageState tracks one physical page's content state.
type pageState uint8

const (
	pageValid pageState = iota + 1
	pageInvalid
)

// allocState is lazily initialized on first use.
type allocState struct {
	state    map[uint32]pageState // ppa → state (absent = free/erased)
	reverse  map[uint32]uint32    // valid ppa → lpa (for GC migration)
	validCnt map[int]int          // written block slot → valid pages

	freeSlots []int // erased blocks available for appending
	openSlot  int   // block currently receiving appends (-1 = none)
	openOff   int   // pages already appended into openSlot

	gcRuns  int
	gcMoved int
}

func (f *FTL) allocInit() *allocState {
	if f.al != nil {
		return f.al
	}
	a := &allocState{
		state:    make(map[uint32]pageState),
		reverse:  make(map[uint32]uint32),
		validCnt: make(map[int]int),
		openSlot: -1,
	}
	// Regular slots start after the reserved DirectGraph rows.
	first := (f.reservedStart + f.reservedRows) * f.cfg.TotalDies()
	total := f.cfg.BlocksPerDie * f.cfg.TotalDies()
	for s := first; s < total; s++ {
		a.freeSlots = append(a.freeSlots, s)
	}
	f.al = a
	return a
}

// blockSlot identifies a block by one integer in stripe order.
func (f *FTL) blockSlot(ppa uint32) int {
	return f.geom.BlockOf(ppa)*f.cfg.TotalDies() + f.geom.GlobalDie(ppa)
}

// pagesOfSlot lists the slot's global page numbers.
func (f *FTL) pagesOfSlot(slot int) []uint32 {
	dies := uint32(f.cfg.TotalDies())
	block := uint32(slot) / dies
	die := uint32(slot) % dies
	first := block*uint32(f.cfg.PagesPerBlock)*dies + die
	out := make([]uint32, f.cfg.PagesPerBlock)
	for j := range out {
		out[j] = first + uint32(j)*dies
	}
	return out
}

// FreeBlocks reports how many erased regular blocks remain.
func (f *FTL) FreeBlocks() int { return len(f.allocInit().freeSlots) }

// GCStats reports (gcRuns, pagesMigrated).
func (f *FTL) GCStats() (int, int) {
	a := f.allocInit()
	return a.gcRuns, a.gcMoved
}

// WriteLPA maps lpa to a freshly allocated physical page, invalidating
// any previous mapping, and returns the new PPA. It fails when the
// device has no erased block to append into (the caller should GC; see
// NeedsGC/CollectVictim/CommitVictim).
func (f *FTL) WriteLPA(lpa uint32) (uint32, error) {
	a := f.allocInit()
	ppa, err := f.allocatePage()
	if err != nil {
		return 0, err
	}
	if old, ok := f.mapping[lpa]; ok {
		a.state[old] = pageInvalid
		a.validCnt[f.blockSlot(old)]--
		delete(a.reverse, old)
	}
	f.mapping[lpa] = ppa
	a.state[ppa] = pageValid
	a.reverse[ppa] = lpa
	a.validCnt[f.blockSlot(ppa)]++
	f.block(BlockID{Die: f.geom.GlobalDie(ppa), Block: f.geom.BlockOf(ppa)}).allocated = true
	return ppa, nil
}

// allocatePage appends into the open block, opening a fresh one from
// the free pool when full.
func (f *FTL) allocatePage() (uint32, error) {
	a := f.allocInit()
	if a.openSlot < 0 || a.openOff >= f.cfg.PagesPerBlock {
		if len(a.freeSlots) == 0 {
			return 0, fmt.Errorf("ftl: no erased blocks left (run GC)")
		}
		a.openSlot = a.freeSlots[0]
		a.freeSlots = a.freeSlots[1:]
		a.openOff = 0
	}
	pages := f.pagesOfSlot(a.openSlot)
	ppa := pages[a.openOff]
	a.openOff++
	return ppa, nil
}

// NeedsGC reports whether free blocks dropped below the threshold.
func (f *FTL) NeedsGC(minFree int) bool { return len(f.allocInit().freeSlots) < minFree }

// Victim describes one GC step: the block slot to reclaim and the valid
// (ppa, lpa) pairs that must migrate before its erase.
type Victim struct {
	Slot      int
	FirstPage uint32
	Valid     []MigratePair
}

// MigratePair is one live page to move during GC.
type MigratePair struct {
	PPA uint32
	LPA uint32
}

// CollectVictim picks the written block with the fewest valid pages
// (greedy GC), excluding the open block. It returns an error when no
// reclaimable block exists.
func (f *FTL) CollectVictim() (*Victim, error) {
	a := f.allocInit()
	slots := make([]int, 0, len(a.validCnt))
	for s := range a.validCnt {
		slots = append(slots, s)
	}
	sort.Ints(slots) // determinism
	best, bestValid := -1, 1<<30
	for _, s := range slots {
		// Skip the open block only while it can still accept appends; a
		// fully-written open block is as reclaimable as any other.
		if s == a.openSlot && a.openOff < f.cfg.PagesPerBlock {
			continue
		}
		if v := a.validCnt[s]; v < bestValid {
			best, bestValid = s, v
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("ftl: no GC victim available")
	}
	v := &Victim{Slot: best, FirstPage: f.pagesOfSlot(best)[0]}
	for _, p := range f.pagesOfSlot(best) {
		if a.state[p] == pageValid {
			v.Valid = append(v.Valid, MigratePair{PPA: p, LPA: a.reverse[p]})
		}
	}
	return v, nil
}

// CommitVictim finalizes a GC step after the device migrated the
// victim's live pages (rewriting each LPA via WriteLPA) and erased the
// block: the slot rejoins the free pool and its P/E count advances.
func (f *FTL) CommitVictim(v *Victim) {
	a := f.allocInit()
	for _, p := range f.pagesOfSlot(v.Slot) {
		delete(a.state, p)
		delete(a.reverse, p)
	}
	delete(a.validCnt, v.Slot)
	a.freeSlots = append(a.freeSlots, v.Slot)
	a.gcRuns++
	a.gcMoved += len(v.Valid)
	f.RecordErase(BlockID{Die: v.Slot % f.cfg.TotalDies(), Block: v.Slot / f.cfg.TotalDies()})
}
