package ftl

import (
	"testing"
	"testing/quick"

	"beacongnn/internal/config"
	"beacongnn/internal/xrand"
)

func gcFTL() *FTL {
	cfg := config.Default().Flash
	cfg.Channels = 2
	cfg.DiesPerChannel = 2
	cfg.BlocksPerDie = 6
	cfg.PagesPerBlock = 4
	return New(cfg)
}

func TestWriteLPAAllocatesAndRemaps(t *testing.T) {
	f := gcFTL()
	p1, err := f.WriteLPA(5)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := f.Lookup(5); !ok || got != p1 {
		t.Fatalf("lookup = %d,%v", got, ok)
	}
	p2, err := f.WriteLPA(5) // overwrite
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p1 {
		t.Fatal("overwrite reused the same physical page")
	}
	if got, _ := f.Lookup(5); got != p2 {
		t.Fatal("mapping not updated")
	}
}

func TestAllocatorAppendsWithinBlock(t *testing.T) {
	f := gcFTL()
	slots := map[int]bool{}
	for i := 0; i < f.cfg.PagesPerBlock; i++ {
		ppa, err := f.WriteLPA(uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		slots[f.blockSlot(ppa)] = true
	}
	if len(slots) != 1 {
		t.Fatalf("first block's worth of writes spanned %d blocks", len(slots))
	}
}

func TestVictimSelectionPrefersInvalid(t *testing.T) {
	f := gcFTL()
	// Fill two blocks with distinct LPAs, then invalidate all of block 1
	// by overwriting its LPAs.
	ppb := f.cfg.PagesPerBlock
	for i := 0; i < 2*ppb; i++ {
		if _, err := f.WriteLPA(uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < ppb; i++ { // overwrite first block's LPAs
		if _, err := f.WriteLPA(uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	v, err := f.CollectVictim()
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Valid) != 0 {
		t.Fatalf("victim has %d valid pages; a fully-invalid block exists", len(v.Valid))
	}
	free := f.FreeBlocks()
	f.CommitVictim(v)
	if f.FreeBlocks() != free+1 {
		t.Fatal("commit did not return the block to the free pool")
	}
	runs, moved := f.GCStats()
	if runs != 1 || moved != 0 {
		t.Fatalf("gc stats = %d/%d", runs, moved)
	}
}

func TestCommittedBlockIsReusable(t *testing.T) {
	f := gcFTL()
	ppb := f.cfg.PagesPerBlock
	// Exhaust the device with overwrites + GC manually until the first
	// slot cycles back.
	for i := 0; i < ppb; i++ {
		if _, err := f.WriteLPA(0); err != nil {
			t.Fatal(err)
		}
	}
	// Block 0 is now all-invalid except the last write.
	v, err := f.CollectVictim()
	if err != nil {
		t.Fatal(err)
	}
	f.CommitVictim(v)
	// Keep writing until allocation reaches the recycled slot again.
	seen := false
	for i := 0; i < f.cfg.BlocksPerDie*f.cfg.TotalDies()*ppb; i++ {
		ppa, err := f.WriteLPA(uint32(i + 1000))
		if err != nil {
			break // device legitimately full of valid data eventually
		}
		if f.blockSlot(ppa) == v.Slot {
			seen = true
			break
		}
	}
	if !seen {
		t.Fatal("recycled block never reused")
	}
}

func TestGCInvariantsProperty(t *testing.T) {
	// Property: under random write/GC sequences, every mapped LPA
	// resolves, and the free pool plus written blocks never exceed the
	// device.
	f2 := func(seed uint64) bool {
		f := gcFTL()
		rng := xrand.New(seed)
		live := map[uint32]bool{}
		wedged := false
	ops:
		for op := 0; op < 300; op++ {
			// Proactive GC with headroom, as the device layer does: GC
			// must run while an erased block remains for migration.
			for f.NeedsGC(2) {
				v, verr := f.CollectVictim()
				if verr != nil || len(v.Valid) >= f.cfg.PagesPerBlock {
					break // nothing reclaimable right now
				}
				for _, pair := range v.Valid {
					if _, err := f.WriteLPA(pair.LPA); err != nil {
						// GC deadlock: reserves were spent while only
						// unreclaimable victims existed. A policy limit,
						// not a bookkeeping bug — stop writing; the
						// mapping invariants below must still hold.
						wedged = true
						break ops
					}
				}
				f.CommitVictim(v)
			}
			lpa := uint32(rng.Intn(12))
			if _, err := f.WriteLPA(lpa); err != nil {
				break // genuinely full of live data
			}
			live[lpa] = true
		}
		_ = wedged
		for lpa := range live {
			if _, ok := f.Lookup(lpa); !ok {
				return false
			}
		}
		total := f.cfg.BlocksPerDie * f.cfg.TotalDies()
		return f.FreeBlocks() >= 0 && f.FreeBlocks() <= total
	}
	if err := quick.Check(f2, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGCRespectsReservedRows(t *testing.T) {
	f := gcFTL()
	first, count, err := f.ReserveForPages(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		ppa, err := f.WriteLPA(uint32(i % 6))
		if err != nil {
			break
		}
		if ppa >= first && ppa < first+count {
			t.Fatalf("allocator handed out reserved page %d", ppa)
		}
	}
}
