// Package ftl models the flash translation layer and the firmware-side
// DirectGraph block management of Sections VI-A and VI-F: LPA→PPA
// mapping for regular I/O, reservation of physical blocks for host
// direct manipulation (bypassing the FTL), exemption of those blocks
// from garbage collection, and the wear-levelling reclamation that
// migrates DirectGraph when the P/E-count discrepancy grows too large.
//
// Reservation granularity is one block row: the same block index across
// every die. A row's pages are exactly a contiguous range of global page
// numbers under the stripe mapping, so DirectGraph built over reserved
// rows automatically spreads across all channels and dies, and
// reclamation moves it by a uniform page delta.
package ftl

import (
	"fmt"

	"beacongnn/internal/config"
	"beacongnn/internal/flash"
)

// BlockID identifies a physical block globally: die index and the block
// index within that die.
type BlockID struct {
	Die   int
	Block int
}

// blockState tracks one physical block.
type blockState struct {
	eraseCount int
	reserved   bool // pinned for DirectGraph, invisible to regular FTL
	allocated  bool // holds regular mapped data
	retired    bool // worn out or failed; never allocated or reserved again
}

// FTL is the translation-layer state. It is a functional model (no
// simulated time of its own); the timing cost of FTL work is charged to
// firmware cores by the firmware package.
type FTL struct {
	cfg  config.Flash
	geom flash.Geometry

	mapping map[uint32]uint32 // LPA → PPA for regular I/O
	blocks  map[BlockID]*blockState

	reservedStart int // first reserved row
	reservedRows  int // number of reserved rows (0 = none)

	spareStart int // first spare row (top of device), 0 rows = none
	spareRows  int
	spareNext  uint32 // remap cursor: next candidate spare page

	remap  map[uint32]uint32 // retired page → spare page (retire.go)
	relocs []relocation      // DirectGraph moves, in order (retire.go)

	al *allocState // regular-path log allocator + GC state (gc.go)
}

// New returns an FTL over the given flash geometry.
func New(cfg config.Flash) *FTL {
	return &FTL{
		cfg:     cfg,
		geom:    flash.NewGeometry(cfg),
		mapping: make(map[uint32]uint32),
		blocks:  make(map[BlockID]*blockState),
	}
}

func (f *FTL) block(id BlockID) *blockState {
	b, ok := f.blocks[id]
	if !ok {
		b = &blockState{}
		f.blocks[id] = b
	}
	return b
}

// rowPages is the number of global pages covered by one block row.
func (f *FTL) rowPages() uint32 {
	return uint32(f.cfg.TotalDies()) * uint32(f.cfg.PagesPerBlock)
}

// blockOfPage returns the physical block holding page p.
func (f *FTL) blockOfPage(p uint32) BlockID {
	return BlockID{Die: f.geom.GlobalDie(p), Block: f.geom.BlockOf(p)}
}

// Map records an LPA→PPA translation (regular write path). Mapping into
// a reserved block is the isolation violation of Section VI-E and is
// rejected.
func (f *FTL) Map(lpa, ppa uint32) error {
	id := f.blockOfPage(ppa)
	if f.rowReserved(id.Block) {
		return fmt.Errorf("ftl: PPA %d lies in reserved DirectGraph block %v", ppa, id)
	}
	f.block(id).allocated = true
	f.mapping[lpa] = ppa
	return nil
}

// Lookup translates an LPA, reporting whether it is mapped.
func (f *FTL) Lookup(lpa uint32) (uint32, bool) {
	ppa, ok := f.mapping[lpa]
	return ppa, ok
}

// MappedCount returns the number of live LPA mappings.
func (f *FTL) MappedCount() int { return len(f.mapping) }

func (f *FTL) rowReserved(row int) bool {
	return f.reservedRows > 0 && row >= f.reservedStart && row < f.reservedStart+f.reservedRows
}

// ReserveForPages pins enough block rows to hold pageCount DirectGraph
// pages (Section VI-A) and returns the contiguous global page range
// [first, first+count) the host may flush into. Reserving twice without
// reclamation is an error: one DirectGraph per device.
func (f *FTL) ReserveForPages(pageCount int) (first uint32, count uint32, err error) {
	if f.reservedRows > 0 {
		return 0, 0, fmt.Errorf("ftl: DirectGraph blocks already reserved")
	}
	if pageCount <= 0 {
		return 0, 0, fmt.Errorf("ftl: page count must be positive, got %d", pageCount)
	}
	rp := int(f.rowPages())
	rows := (pageCount + rp - 1) / rp
	if rows > f.cfg.BlocksPerDie {
		return 0, 0, fmt.Errorf("ftl: need %d rows, device has %d", rows, f.cfg.BlocksPerDie)
	}
	for r := 0; r < rows; r++ {
		for d := 0; d < f.cfg.TotalDies(); d++ {
			if f.block(BlockID{Die: d, Block: r}).allocated {
				return 0, 0, fmt.Errorf("ftl: block row %d holds regular data", r)
			}
		}
	}
	f.reservedStart, f.reservedRows = 0, rows
	return 0, uint32(rows) * f.rowPages(), nil
}

// ReservedBlocks returns all pinned DirectGraph blocks.
func (f *FTL) ReservedBlocks() []BlockID {
	out := make([]BlockID, 0, f.reservedRows*f.cfg.TotalDies())
	for r := f.reservedStart; r < f.reservedStart+f.reservedRows; r++ {
		for d := 0; d < f.cfg.TotalDies(); d++ {
			out = append(out, BlockID{Die: d, Block: r})
		}
	}
	return out
}

// IsReserved reports whether the page lies in a pinned block — the
// firmware's write-destination check of Section VI-E.
func (f *FTL) IsReserved(page uint32) bool {
	return f.rowReserved(f.geom.BlockOf(page))
}

// Allocator returns a directgraph.PageAllocator dispensing the reserved
// page range sequentially (striped across all dies by the geometry).
func (f *FTL) Allocator() *ReservedAllocator {
	start := uint32(f.reservedStart) * f.rowPages()
	return &ReservedAllocator{
		ftl:   f,
		next:  start,
		limit: start + uint32(f.reservedRows)*f.rowPages(),
	}
}

// ReservedAllocator walks the reserved rows' pages in stripe order.
type ReservedAllocator struct {
	ftl         *FTL
	next, limit uint32
}

// NextPage implements directgraph.PageAllocator.
func (a *ReservedAllocator) NextPage() (uint32, error) {
	if a.next >= a.limit {
		return 0, fmt.Errorf("ftl: reserved DirectGraph region exhausted at page %d", a.limit)
	}
	p := a.next
	a.next++
	return p, nil
}

// RecordErase bumps a block's P/E count.
func (f *FTL) RecordErase(id BlockID) { f.block(id).eraseCount++ }

// EraseCount returns a block's P/E count.
func (f *FTL) EraseCount(id BlockID) int { return f.block(id).eraseCount }

// WearDiscrepancy returns the gap between the mean P/E count of regular
// (touched) blocks and of reserved DirectGraph blocks — the trigger
// metric for Section VI-F's reclamation.
func (f *FTL) WearDiscrepancy() float64 {
	var regSum, regN, resSum float64
	for id, st := range f.blocks {
		if st.retired {
			// Retired blocks take no further wear; counting their frozen
			// P/E totals would skew the gap toward reclaiming forever.
			continue
		}
		if f.rowReserved(id.Block) {
			resSum += float64(st.eraseCount)
		} else if st.allocated || st.eraseCount > 0 {
			regSum += float64(st.eraseCount)
			regN++
		}
	}
	if regN == 0 {
		return 0
	}
	resMean := 0.0
	if n := f.reservedRows * f.cfg.TotalDies(); n > 0 {
		resMean = resSum / float64(n)
	}
	return regSum/regN - resMean
}

// NeedsReclamation reports whether the wear gap exceeds the threshold.
func (f *FTL) NeedsReclamation(threshold float64) bool {
	return f.WearDiscrepancy() >= threshold
}

// ReclaimPlan describes a DirectGraph migration (Section VI-F): old
// pinned rows rejoin regular FTL management, fresh rows are pinned, and
// every embedded page number shifts by PageDelta.
type ReclaimPlan struct {
	OldFirstPage uint32
	NewFirstPage uint32
	PageDelta    uint32 // new = old + PageDelta
	Rows         int
}

// PlanReclamation moves the reservation to the next free rows and
// returns the migration plan. The caller (firmware) is responsible for
// copying pages and patching embedded addresses; directgraph.Relocate
// does the patching.
func (f *FTL) PlanReclamation() (*ReclaimPlan, error) {
	if f.reservedRows == 0 {
		return nil, fmt.Errorf("ftl: nothing to reclaim")
	}
	rows := f.reservedRows
	// Scan forward for the first run of rows that are free of regular
	// data and retired blocks, stopping short of the spare region.
	limit := f.cfg.BlocksPerDie - f.spareRows
	newStart := f.reservedStart + rows
scan:
	for {
		if newStart+rows > limit {
			return nil, fmt.Errorf("ftl: out of block rows for reclamation")
		}
		for r := newStart; r < newStart+rows; r++ {
			for d := 0; d < f.cfg.TotalDies(); d++ {
				st := f.block(BlockID{Die: d, Block: r})
				if st.allocated || st.retired {
					newStart = r + 1
					continue scan
				}
			}
		}
		break
	}
	plan := &ReclaimPlan{
		OldFirstPage: uint32(f.reservedStart) * f.rowPages(),
		NewFirstPage: uint32(newStart) * f.rowPages(),
		Rows:         rows,
	}
	plan.PageDelta = plan.NewFirstPage - plan.OldFirstPage
	f.reservedStart = newStart
	return plan, nil
}
