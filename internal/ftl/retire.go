package ftl

import "fmt"

// Block retirement, spare-region remapping, and relocation bookkeeping:
// the FTL half of the reliability model's graceful degradation (the
// platform layer drives the policy; internal/fault draws the errors).
// An uncorrectable page retires its block, the page remaps into a spare
// row at the top of the device, and — once enough of the DirectGraph
// region has been lost — a reclamation relocates the whole image onto
// fresh rows. Resolve maps a possibly-stale page number (held by an
// in-flight command) through both mechanisms to where the data lives now.

// relocation records one DirectGraph move: pages in [first, first+count)
// at the time of the move now live delta pages higher.
type relocation struct {
	first, count, delta uint32
}

// ReserveSpares pins rows at the top of the device as remap targets for
// retired pages. Calling it again replaces the reservation (the platform
// calls it once at setup).
func (f *FTL) ReserveSpares(rows int) error {
	if rows < 0 || rows >= f.cfg.BlocksPerDie {
		return fmt.Errorf("ftl: spare rows %d outside [0, %d)", rows, f.cfg.BlocksPerDie)
	}
	f.spareRows = rows
	f.spareStart = f.cfg.BlocksPerDie - rows
	f.spareNext = uint32(f.spareStart) * f.rowPages()
	return nil
}

// SpareFirstPage returns the first global page of the spare region.
func (f *FTL) SpareFirstPage() uint32 { return uint32(f.spareStart) * f.rowPages() }

// RetireBlock marks a block bad: it is skipped by reclamation planning,
// excluded from wear statistics, and never used as a remap target.
func (f *FTL) RetireBlock(id BlockID) { f.block(id).retired = true }

// IsRetiredBlock reports whether the block has been retired.
func (f *FTL) IsRetiredBlock(id BlockID) bool {
	st, ok := f.blocks[id]
	return ok && st.retired
}

// RetiredCount returns how many blocks have been retired.
func (f *FTL) RetiredCount() int {
	n := 0
	for _, st := range f.blocks {
		if st.retired {
			n++
		}
	}
	return n
}

// RemapPage assigns the next usable spare page to a retired page and
// records the mapping. dieOK (optional) filters candidate dies, so pages
// lost to a dead die are not remapped onto the same dead die. The spare
// cursor only moves forward: spare pages are never reused.
func (f *FTL) RemapPage(old uint32, dieOK func(die int) bool) (uint32, error) {
	if f.spareRows == 0 {
		return 0, fmt.Errorf("ftl: no spare rows reserved")
	}
	if f.remap == nil {
		f.remap = make(map[uint32]uint32)
	}
	limit := uint32(f.cfg.BlocksPerDie) * f.rowPages() // one past the device's last page
	for f.spareNext < limit {
		p := f.spareNext
		f.spareNext++
		id := f.blockOfPage(p)
		if f.block(id).retired {
			continue
		}
		if dieOK != nil && !dieOK(id.Die) {
			continue
		}
		f.remap[old] = p
		return p, nil
	}
	return 0, fmt.Errorf("ftl: spare region exhausted remapping page %d", old)
}

// RecordRelocation notes that pages in [first, first+count) moved up by
// delta, so stale page numbers held by in-flight commands keep resolving.
func (f *FTL) RecordRelocation(first, count, delta uint32) {
	f.relocs = append(f.relocs, relocation{first: first, count: count, delta: delta})
}

// Resolve maps a possibly-stale page number to its current physical
// page: relocations are replayed in order, then the spare remap applies.
func (f *FTL) Resolve(page uint32) uint32 {
	for _, r := range f.relocs {
		if page >= r.first && page < r.first+r.count {
			page += r.delta
		}
	}
	if p, ok := f.remap[page]; ok {
		return p
	}
	return page
}

// RemapsInRange returns the retired→spare remap entries whose retired
// page lies in [first, first+count).
func (f *FTL) RemapsInRange(first, count uint32) map[uint32]uint32 {
	out := make(map[uint32]uint32)
	for old, sp := range f.remap {
		if old >= first && old < first+count {
			out[old] = sp
		}
	}
	return out
}

// ClearRemapsIn drops remap entries whose retired page lies in
// [first, first+count) — used when a relocation supersedes them (the
// relocated copy is whole, so the spare copies are obsolete).
func (f *FTL) ClearRemapsIn(first, count uint32) {
	for old := range f.remap {
		if old >= first && old < first+count {
			delete(f.remap, old)
		}
	}
}
