// Package router models the channel-level command router of Section V-B
// (Figure 12): per-die dispatch queues fed through a crossbar, a
// round-robin command issuer per channel, and a data-stream parser that
// extracts new sampling commands from completed results — all in
// hardware, with no embedded-core involvement. This is the component
// that turns BG-DGSP into BG-2.
package router

import (
	"fmt"

	"beacongnn/internal/config"
	"beacongnn/internal/directgraph"
	"beacongnn/internal/flash"
	"beacongnn/internal/sampler"
	"beacongnn/internal/sim"
)

// Stats counts router activity.
type Stats struct {
	Routed     uint64 // commands through the crossbar
	CrossHops  uint64 // commands whose source ≠ destination channel
	ParsedCmds uint64 // commands extracted by the data-stream parser
	MaxQueue   int    // deepest dispatch queue observed
}

// Router forwards sampling commands between channels. Execution of a
// command at a die is delegated to the Exec callback, so the router
// stays independent of what the die does with it.
type Router struct {
	k       *sim.Kernel
	backend *flash.Backend
	cfg     config.Flash

	crossbarLat sim.Time
	parseLat    sim.Time
	sectionBits uint

	// dispatch[die] queues commands waiting for that die; the per-die
	// queue + flash.Backend's die server model the paper's per-die
	// dispatch queues polled round-robin by the channel's issuer.
	dispatch [][]sampler.Command
	inFlight []int // routed commands currently executing on the die
	planes   int   // per-die concurrency (one command per plane)
	rrNext   []int // per-channel round-robin pointer over its dies

	stats Stats

	// Exec runs a command on its die. The callee must call release once
	// the die's sense completes (the cache register frees the array, so
	// the next command can start sensing while this result transfers),
	// and done with the result's follow-up commands when the transfer
	// finishes.
	Exec func(cmd sampler.Command, release func(), done func(next []sampler.Command))

	// OnRouted, when set, receives an energy event per routed command.
	OnRouted func()
}

// New returns a router over the backend. Crossbar and parse latencies
// default to 50 ns each when zero.
func New(k *sim.Kernel, backend *flash.Backend, crossbarLat, parseLat sim.Time) *Router {
	cfg := backend.Config()
	if crossbarLat == 0 {
		crossbarLat = 50 * sim.Nanosecond
	}
	if parseLat == 0 {
		parseLat = 50 * sim.Nanosecond
	}
	planes := cfg.PlanesPerDie
	if planes < 1 {
		planes = 1
	}
	r := &Router{
		k: k, backend: backend, cfg: cfg,
		crossbarLat: crossbarLat, parseLat: parseLat,
		sectionBits: directgraph.Layout{PageSize: cfg.PageSize}.SectionBits(),
		dispatch:    make([][]sampler.Command, cfg.TotalDies()),
		inFlight:    make([]int, cfg.TotalDies()),
		planes:      planes,
		rrNext:      make([]int, cfg.Channels),
	}
	return r
}

// Stats returns a copy of the activity counters.
func (r *Router) Stats() Stats { return r.stats }

func (r *Router) dieOf(cmd sampler.Command) int {
	// Section addresses embed the physical page; geometry maps it.
	return r.backend.Geometry().GlobalDie(r.pageOf(cmd))
}

func (r *Router) pageOf(cmd sampler.Command) uint32 {
	// Section addresses embed the page number in their high bits; the
	// hardware shifter is fixed by the page size (Section IV-A).
	return uint32(cmd.Addr) >> r.sectionBits
}

// Route injects a command into the crossbar from the given source
// channel (−1 for the initial injection from the frontend).
func (r *Router) Route(srcChannel int, cmd sampler.Command) {
	r.stats.Routed++
	if r.OnRouted != nil {
		r.OnRouted()
	}
	dst := r.backend.Geometry().Channel(r.pageOf(cmd))
	if srcChannel >= 0 && srcChannel != dst {
		r.stats.CrossHops++
	}
	r.k.After(r.crossbarLat, func() {
		die := r.dieOf(cmd)
		r.dispatch[die] = append(r.dispatch[die], cmd)
		if n := len(r.dispatch[die]); n > r.stats.MaxQueue {
			r.stats.MaxQueue = n
		}
		r.pump(dst)
	})
}

// pump is the channel's round-robin command issuer: it repeatedly scans
// the channel's dies from the last issue point, starting every queued
// command whose die is idle.
func (r *Router) pump(channel int) {
	d := r.cfg.DiesPerChannel
	base := channel * d
	for issued := true; issued; {
		issued = false
		for i := 0; i < d; i++ {
			idx := (r.rrNext[channel] + i) % d
			die := base + idx
			if r.inFlight[die] >= r.planes || len(r.dispatch[die]) == 0 {
				continue
			}
			cmd := r.dispatch[die][0]
			r.dispatch[die] = r.dispatch[die][1:]
			r.inFlight[die]++
			r.rrNext[channel] = (idx + 1) % d
			r.start(channel, die, cmd)
			issued = true
			break
		}
	}
}

// start issues one command to its die: command cycles on the channel,
// execution, then parse + crossbar forwarding of follow-up commands.
func (r *Router) start(channel, die int, cmd sampler.Command) {
	r.backend.IssueCommand(r.pageOf(cmd), func() {
		released := false
		release := func() {
			if released {
				return
			}
			released = true
			r.inFlight[die]--
			r.pump(channel)
		}
		r.Exec(cmd, release, func(next []sampler.Command) {
			// Data-stream parser: classify results, forward new
			// commands through the crossbar.
			r.k.After(r.parseLat, func() {
				release()
				for _, nc := range next {
					r.stats.ParsedCmds++
					r.Route(channel, nc)
				}
				r.pump(channel)
			})
		})
	})
}

// QueuedCommands returns the total commands waiting in dispatch queues.
func (r *Router) QueuedCommands() int {
	n := 0
	for _, q := range r.dispatch {
		n += len(q)
	}
	return n
}

// Validate cross-checks router geometry against the backend.
func (r *Router) Validate() error {
	if r.Exec == nil {
		return fmt.Errorf("router: Exec callback not set")
	}
	return nil
}
