package router

import (
	"testing"

	"beacongnn/internal/config"
	"beacongnn/internal/directgraph"
	"beacongnn/internal/flash"
	"beacongnn/internal/sampler"
	"beacongnn/internal/sim"
)

func setup(t *testing.T) (*sim.Kernel, *flash.Backend, *Router, directgraph.Layout) {
	t.Helper()
	k := sim.New()
	cfg := config.Default().Flash
	b, err := flash.New(k, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := New(k, b, 0, 0)
	l := directgraph.Layout{PageSize: cfg.PageSize, FeatureDim: 0}
	return k, b, r, l
}

func cmdFor(l directgraph.Layout, page uint32) sampler.Command {
	return sampler.Command{Addr: l.MakeAddr(page, 0)}
}

func TestValidateRequiresExec(t *testing.T) {
	_, _, r, _ := setup(t)
	if err := r.Validate(); err == nil {
		t.Fatal("missing Exec accepted")
	}
	r.Exec = func(sampler.Command, func(), func([]sampler.Command)) {}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRouteExecutesOnCorrectDie(t *testing.T) {
	k, b, r, l := setup(t)
	var got []uint32
	r.Exec = func(cmd sampler.Command, release func(), done func([]sampler.Command)) {
		got = append(got, uint32(cmd.Addr)>>l.SectionBits())
		done(nil)
	}
	r.Route(-1, cmdFor(l, 5))
	r.Route(-1, cmdFor(l, 21)) // same channel (5 % 16 == 21 % 16), different die
	k.Run()
	if len(got) != 2 || got[0] != 5 || got[1] != 21 {
		t.Fatalf("executed pages = %v", got)
	}
	if b.Geometry().Channel(5) != b.Geometry().Channel(21) {
		t.Fatal("test pages should share a channel")
	}
}

func TestFollowUpCommandsStream(t *testing.T) {
	// A command on page 0 spawns commands on pages 1 and 2 (different
	// channels); they must execute without any firmware involvement.
	k, _, r, l := setup(t)
	executed := map[uint32]bool{}
	r.Exec = func(cmd sampler.Command, release func(), done func([]sampler.Command)) {
		page := uint32(cmd.Addr) >> l.SectionBits()
		executed[page] = true
		if page == 0 {
			done([]sampler.Command{cmdFor(l, 1), cmdFor(l, 2)})
			return
		}
		done(nil)
	}
	r.Route(-1, cmdFor(l, 0))
	k.Run()
	for _, p := range []uint32{0, 1, 2} {
		if !executed[p] {
			t.Fatalf("page %d never executed", p)
		}
	}
	st := r.Stats()
	if st.Routed != 3 {
		t.Fatalf("routed = %d", st.Routed)
	}
	if st.ParsedCmds != 2 {
		t.Fatalf("parsed = %d", st.ParsedCmds)
	}
	if st.CrossHops != 2 {
		t.Fatalf("cross hops = %d (pages 1,2 are on other channels)", st.CrossHops)
	}
}

func TestSameDiePlaneLimit(t *testing.T) {
	// A two-plane die accepts two routed commands concurrently; a third
	// waits in the dispatch queue until a plane releases.
	k, b, r, l := setup(t)
	cfg := b.Config()                                   // PlanesPerDie = 2
	stride := uint32(cfg.Channels * cfg.DiesPerChannel) // same die, next page
	var ends []sim.Time
	r.Exec = func(cmd sampler.Command, release func(), done func([]sampler.Command)) {
		b.ReadPage(uint32(cmd.Addr)>>l.SectionBits(), 0, nil, func() {
			ends = append(ends, k.Now())
			release()
			done(nil)
		})
	}
	for i := uint32(0); i < 3; i++ {
		r.Route(-1, cmdFor(l, i*stride))
	}
	k.Run()
	if len(ends) != 3 {
		t.Fatalf("executed %d", len(ends))
	}
	// First two overlap (two planes); third runs a full sense later.
	if ends[1]-ends[0] >= 3*sim.Microsecond {
		t.Fatalf("planes did not overlap: %v", ends)
	}
	if ends[2]-ends[0] < 3*sim.Microsecond {
		t.Fatalf("third command did not wait for a plane: %v", ends)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// Two dies on one channel, many commands each: executions must
	// alternate rather than draining one queue first.
	k, _, r, l := setup(t)
	var order []uint32
	r.Exec = func(cmd sampler.Command, release func(), done func([]sampler.Command)) {
		order = append(order, uint32(cmd.Addr)>>l.SectionBits())
		done(nil)
	}
	// Pages 0 and 16 are channel 0, dies 0 and 1.
	for i := 0; i < 3; i++ {
		r.Route(-1, cmdFor(l, 0))
		r.Route(-1, cmdFor(l, 16))
	}
	k.Run()
	if len(order) != 6 {
		t.Fatalf("executed %d", len(order))
	}
	// Both dies must appear in the first two issues (RR, not FIFO-drain).
	if order[0] == order[1] {
		t.Fatalf("issuer not round-robin: %v", order)
	}
}

func TestQueuedCommandsDrains(t *testing.T) {
	k, _, r, l := setup(t)
	r.Exec = func(cmd sampler.Command, release func(), done func([]sampler.Command)) { done(nil) }
	for i := 0; i < 10; i++ {
		r.Route(-1, cmdFor(l, uint32(i)))
	}
	k.Run()
	if r.QueuedCommands() != 0 {
		t.Fatalf("queued = %d after drain", r.QueuedCommands())
	}
	if r.Stats().MaxQueue < 1 {
		t.Fatal("max queue never recorded")
	}
}

func TestOnRoutedHook(t *testing.T) {
	k, _, r, l := setup(t)
	n := 0
	r.OnRouted = func() { n++ }
	r.Exec = func(cmd sampler.Command, release func(), done func([]sampler.Command)) { done(nil) }
	r.Route(-1, cmdFor(l, 3))
	k.Run()
	if n != 1 {
		t.Fatalf("hook fired %d times", n)
	}
}
