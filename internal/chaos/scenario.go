package chaos

import (
	"beacongnn/internal/config"
	"beacongnn/internal/sim"
)

// Scenario is one named fault shape for the availability sweep: an
// optional device-boundary mutation (applied to the simulated platform
// config, driving the PR-3 reliability model) plus the
// engine/HTTP-boundary rates fed to the virtual pipeline.
type Scenario struct {
	Name string
	Desc string

	// Device mutates the faulted platform config; nil leaves the
	// device healthy (the scenario stresses only the serving layers).
	Device func(c *config.Config)

	FailRate    float64 // in-window attempt failure probability
	StallRate   float64 // in-window attempt stall probability
	StallFactor float64 // stalled service multiplier
	DropRate    float64 // in-window front-door drop probability
}

// deviceFaults switches the reliability model on with the repo's
// default tuning before applying an outage, so a scenario config
// validates regardless of the base config's fault section.
func deviceFaults(mutate func(f *config.Fault)) func(c *config.Config) {
	return func(c *config.Config) {
		f := config.DefaultFault()
		f.Enabled = true
		mutate(&f)
		c.Fault = f
	}
}

// Scenarios returns the availability sweep's fault catalog, ordered
// mild to severe. quick trims to the three that exercise one fault
// class per boundary, for CI smoke runs.
func Scenarios(quick bool) []Scenario {
	all := []Scenario{
		{
			Name: "baseline",
			Desc: "no injected faults; availability ceiling",
		},
		{
			Name:   "die-outage",
			Desc:   "one die dead from the start; device degrades, service inflates",
			Device: deviceFaults(func(f *config.Fault) { f.DeadDies = []int{0} }),
		},
		{
			Name:   "chan-outage",
			Desc:   "one channel dead; transfers reroute onto neighbors",
			Device: deviceFaults(func(f *config.Fault) { f.DeadChannels = []int{0} }),
		},
		{
			Name: "uncorr-storm",
			Desc: "mid-run RBER excursion drives the recovery ladder hard",
			Device: deviceFaults(func(f *config.Fault) {
				f.StormStart = 50 * sim.Microsecond
				f.StormEnd = 500 * sim.Microsecond
				f.StormRBER = 1.4e-5
			}),
		},
		{
			Name:     "engine-flap",
			Desc:     "half of in-window runs fail transiently; retries + breaker",
			FailRate: 0.5,
		},
		{
			Name:        "stall-burst",
			Desc:        "slow-worker tail; hedges reclaim the p99",
			StallRate:   0.25,
			StallFactor: 6,
		},
		{
			Name:     "drop-storm",
			Desc:     "front-door drops; availability floor under load shedding",
			DropRate: 0.2,
		},
	}
	if !quick {
		return all
	}
	return []Scenario{all[1], all[4], all[5]}
}
