package chaos

import "sync"

// BreakerState is the circuit breaker's position.
type BreakerState int32

const (
	// Closed: requests flow; consecutive failures are counted.
	Closed BreakerState = iota
	// Open: requests are refused until the cooldown elapses.
	Open
	// HalfOpen: one probe request is allowed through; its outcome
	// decides between Closed and Open.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "invalid"
	}
}

// BreakerConfig parameterizes a Breaker. Times are caller clock units
// (nanoseconds for the daemon, sim.Time ticks for the virtual
// pipeline).
type BreakerConfig struct {
	Threshold int   // consecutive failures that trip Closed -> Open (default 5)
	Cooldown  int64 // Open dwell before a HalfOpen probe is allowed (default 10e9)
}

func (c *BreakerConfig) withDefaults() BreakerConfig {
	out := *c
	if out.Threshold <= 0 {
		out.Threshold = 5
	}
	if out.Cooldown <= 0 {
		out.Cooldown = 10_000_000_000
	}
	return out
}

// Breaker is a clock-agnostic consecutive-failure circuit breaker:
// closed -> open after Threshold consecutive failures, open ->
// half-open after Cooldown, half-open admits exactly one probe whose
// success closes the circuit and whose failure reopens it. The caller
// supplies the clock (wall or virtual), which is what makes the same
// breaker drive both the live daemon and the deterministic
// availability pipeline. Safe for concurrent use.
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    BreakerState
	fails    int   // consecutive failures while Closed
	openedAt int64 // clock value of the last Closed/HalfOpen -> Open transition
	probing  bool  // a HalfOpen probe is in flight

	trips     uint64 // lifetime Closed/HalfOpen -> Open transitions
	openTotal int64  // summed clock time spent Open (through last close)
	closes    uint64 // Open/HalfOpen -> Closed recoveries

	onChange func(BreakerState)
}

// NewBreaker builds a breaker in the Closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// OnStateChange registers fn to be called (under the breaker lock, so
// keep it cheap — a gauge set) on every state transition.
func (b *Breaker) OnStateChange(fn func(BreakerState)) {
	b.mu.Lock()
	b.onChange = fn
	b.mu.Unlock()
}

func (b *Breaker) setState(s BreakerState) {
	if b.state == s {
		return
	}
	b.state = s
	if b.onChange != nil {
		b.onChange(s)
	}
}

// State returns the current position (Open is reported even if the
// cooldown has lapsed; the transition happens on the next Allow).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether a request may proceed at clock value now.
// Open flips to HalfOpen once the cooldown has elapsed, and HalfOpen
// admits exactly one concurrent probe — later callers are refused
// until that probe Records or cancels.
func (b *Breaker) Allow(now int64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if now-b.openedAt < b.cfg.Cooldown {
			return false
		}
		b.setState(HalfOpen)
		b.probing = true
		return true
	case HalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Record reports the outcome of an admitted request. A HalfOpen
// probe's success closes the circuit; its failure reopens it (with the
// cooldown restarting at now). While Closed, failures accumulate and
// trip the breaker at Threshold; any success resets the count.
func (b *Breaker) Record(now int64, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if ok {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.trip(now)
		}
	case HalfOpen:
		b.probing = false
		if ok {
			b.openTotal += now - b.openedAt
			b.closes++
			b.fails = 0
			b.setState(Closed)
		} else {
			b.trip(now)
		}
	case Open:
		// A late Record from a request admitted before the trip: only
		// successes matter, and only as evidence for the next probe —
		// ignore, the cooldown clock is already running.
	}
}

// CancelProbe releases the HalfOpen probe slot without recording an
// outcome — the probe was abandoned (client gone, drain) and says
// nothing about downstream health.
func (b *Breaker) CancelProbe() {
	b.mu.Lock()
	if b.state == HalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

// trip moves to Open at now. Caller holds the lock.
func (b *Breaker) trip(now int64) {
	b.fails = 0
	b.openedAt = now
	b.trips++
	b.probing = false
	b.setState(Open)
}

// BreakerStats is a snapshot of lifetime breaker activity.
type BreakerStats struct {
	State     BreakerState
	Trips     uint64
	Closes    uint64
	OpenTotal int64 // clock units spent Open, through the last close
}

// Stats snapshots the breaker. MTTR is OpenTotal/Closes when Closes >
// 0 — computed by the caller, which knows the clock units.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{State: b.state, Trips: b.trips, Closes: b.closes, OpenTotal: b.openTotal}
}
