package chaos

import (
	"fmt"

	"beacongnn/internal/metrics"
	"beacongnn/internal/sim"
)

// PipelineConfig parameterizes one availability run: an open-loop
// stream of requests against a W-way service center whose behaviour
// degrades inside a fault window, fronted by the full resilience stack
// (retry budget, exponential backoff with deterministic jitter,
// hedging, circuit breaker with degraded fallback).
type PipelineConfig struct {
	Requests int      // offered load: one request every Interval
	Interval sim.Time // inter-arrival gap
	Workers  int      // service-center width
	Service  sim.Time // healthy service time per attempt

	// Fault window: between Window[0] and Window[1] (attempt start
	// times), the rates below apply and service inflates to
	// FaultService when set.
	Window       [2]sim.Time
	FaultService sim.Time // in-window service time (0 = unchanged)
	FailRate     float64  // P(attempt fails) in-window
	StallRate    float64  // P(attempt stalls) in-window
	StallFactor  float64  // stalled service multiplier (default 6)
	DropRate     float64  // P(request dropped at the front door) in-window

	// Resilience stack.
	MaxAttempts int     // total tries per request incl. the first (default 3)
	Backoff     Backoff // retry delay, sim.Time units
	BudgetRatio float64 // retry-budget earn rate (0 disables retries)
	HedgeAfter  sim.Time
	Breaker     BreakerConfig // cooldown in sim.Time units
	SLOTarget   float64       // availability objective, e.g. 0.999

	Seed   uint64     // decision stream seed
	Tracer sim.Tracer // optional: receives chaos.attempt spans
}

func (c *PipelineConfig) withDefaults() PipelineConfig {
	out := *c
	if out.Workers <= 0 {
		out.Workers = 4
	}
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 3
	}
	if out.StallFactor <= 0 {
		out.StallFactor = 6
	}
	if out.SLOTarget <= 0 || out.SLOTarget >= 1 {
		out.SLOTarget = 0.999
	}
	return out
}

// Report is the outcome of one pipeline run. Counts partition
// Requests: OK + Degraded + Failed + Dropped == Requests.
type Report struct {
	Requests int
	OK       int // full successes
	Degraded int // served stale under an open breaker
	Failed   int // hard failures (no stale available or retries exhausted)
	Dropped  int // refused at the front door

	Retries   int
	Hedges    int
	HedgeWins int

	BreakerTrips uint64
	Availability float64  // (OK + Degraded) / Requests
	Goodput      float64  // OK per second of makespan
	BudgetBurn   float64  // observed failure rate / (1 - SLOTarget)
	P50, P99     sim.Time // full-success end-to-end latency
	P999         sim.Time
	MTTR         sim.Time // mean breaker open dwell per recovery (0 if never tripped)
	Makespan     sim.Time
}

// pipeReq is one logical request's mutable state in the event loop.
type pipeReq struct {
	id       uint64
	arrived  sim.Time
	attempt  int  // attempts launched so far
	settled  bool // a terminal outcome was recorded
	hedgeIdx int  // attempt index of the hedge launch (-1 = none)
	inflight int  // attempts currently in service
}

// RunPipeline executes the availability model in virtual time. The
// event loop is strictly single-threaded and every stochastic decision
// is a pure function of (Seed, site, request id, attempt), so the
// report is identical across processes and -parallel widths.
func RunPipeline(cfg PipelineConfig) Report {
	c := cfg.withDefaults()
	k := sim.New()
	srv := sim.NewServer(k, c.Workers)
	if c.Tracer != nil {
		srv.SetTracer(c.Tracer, "chaos.attempt", 0)
	}
	budget := NewRetryBudget(c.BudgetRatio, 0)
	breaker := NewBreaker(c.Breaker)

	rep := Report{Requests: c.Requests}
	lat := &metrics.Histogram{}
	staleReady := false // becomes true after the first full success

	// draw is the pipeline's decision stream: site ^ per-request key,
	// sequenced per pair like the injector's.
	seq := make(map[uint64]uint64)
	draw := func(site, key uint64) float64 {
		slot := splitmix64(site ^ key)
		n := seq[slot]
		seq[slot] = n + 1
		return float64(splitmix64(c.Seed^slot^(n*0xd6e8feb86659fd93))>>11) / (1 << 53)
	}

	inWindow := func(t sim.Time) bool {
		return c.Window[1] > c.Window[0] && t >= c.Window[0] && t < c.Window[1]
	}

	settle := func(r *pipeReq, outcome *int, ok bool) {
		if r.settled {
			return
		}
		r.settled = true
		*outcome++
		if ok {
			staleReady = true
			lat.Observe(k.Now() - r.arrived)
		}
	}

	var launch func(r *pipeReq)
	launch = func(r *pipeReq) {
		attempt := r.attempt
		r.attempt++
		r.inflight++
		service := c.Service
		faulted := inWindow(k.Now())
		if faulted && c.FaultService > 0 {
			service = c.FaultService
		}
		key := r.id*0x9e3779b97f4a7c15 ^ uint64(attempt)
		if faulted && c.StallRate > 0 && draw(siteEngineStall, key) < c.StallRate {
			service = sim.Time(float64(service) * c.StallFactor)
		}
		fails := faulted && c.FailRate > 0 && draw(siteEngineFail, key) < c.FailRate

		// Hedge the first attempt only: a straggler detector, not a
		// second retry ladder.
		if c.HedgeAfter > 0 && attempt == 0 {
			k.After(c.HedgeAfter, func() {
				if r.settled || r.hedgeIdx >= 0 || r.inflight == 0 {
					return
				}
				r.hedgeIdx = r.attempt
				rep.Hedges++
				launch(r)
			})
		}

		srv.Submit(service, func() {
			r.inflight--
			if r.settled {
				return // the other racer already won; this one is the cancelled loser
			}
			now := int64(k.Now())
			if !fails {
				breaker.Record(now, true)
				if attempt == r.hedgeIdx {
					rep.HedgeWins++ // the duplicate beat (or outlived) the primary
				}
				settle(r, &rep.OK, true)
				return
			}
			breaker.Record(now, false)
			if r.inflight > 0 {
				return // a hedge is still racing; let it decide
			}
			if r.attempt < c.MaxAttempts && budget.Spend() {
				rep.Retries++
				u := draw(siteHTTPLatency, key) // jitter stream, distinct site
				k.After(sim.Time(c.Backoff.Delay(r.attempt-1, u)), func() {
					if !breaker.Allow(int64(k.Now())) {
						finishRefused(r, &rep, settle, staleReady)
						return
					}
					launch(r)
				})
				return
			}
			if staleReady {
				settle(r, &rep.Degraded, false)
			} else {
				settle(r, &rep.Failed, false)
			}
		})
	}

	for i := 0; i < c.Requests; i++ {
		r := &pipeReq{id: uint64(i + 1), hedgeIdx: -1}
		k.At(sim.Time(i)*c.Interval, func() {
			r.arrived = k.Now()
			budget.Earn()
			if inWindow(r.arrived) && c.DropRate > 0 && draw(siteHTTPDrop, r.id) < c.DropRate {
				settle(r, &rep.Dropped, false)
				return
			}
			if !breaker.Allow(int64(r.arrived)) {
				finishRefused(r, &rep, settle, staleReady)
				return
			}
			launch(r)
		})
	}
	k.Run()

	rep.Makespan = k.Now()
	bs := breaker.Stats()
	rep.BreakerTrips = bs.Trips
	if bs.Closes > 0 {
		rep.MTTR = sim.Time(bs.OpenTotal / int64(bs.Closes))
	}
	if c.Requests > 0 {
		rep.Availability = float64(rep.OK+rep.Degraded) / float64(c.Requests)
		failRate := float64(rep.Failed+rep.Dropped) / float64(c.Requests)
		rep.BudgetBurn = failRate / (1 - c.SLOTarget)
	}
	if rep.Makespan > 0 {
		rep.Goodput = float64(rep.OK) / rep.Makespan.Seconds()
	}
	rep.P50 = lat.Quantile(0.5)
	rep.P99 = lat.Quantile(0.99)
	rep.P999 = lat.Quantile(0.999)
	if rep.OK+rep.Degraded+rep.Failed+rep.Dropped != rep.Requests {
		panic(fmt.Sprintf("chaos: pipeline outcome leak: ok=%d deg=%d fail=%d drop=%d of %d",
			rep.OK, rep.Degraded, rep.Failed, rep.Dropped, rep.Requests))
	}
	return rep
}

// finishRefused settles a request the breaker refused: degraded if a
// stale result exists to serve, otherwise a hard failure.
func finishRefused(r *pipeReq, rep *Report, settle func(*pipeReq, *int, bool), staleReady bool) {
	if staleReady {
		settle(r, &rep.Degraded, false)
	} else {
		settle(r, &rep.Failed, false)
	}
}
