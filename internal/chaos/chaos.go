// Package chaos is the deterministic fault-injection substrate: a
// seeded injector that perturbs the system at three boundaries —
// device (die/channel outages and uncorrectable storms, expressed
// through the existing config.Fault model), engine (worker stalls,
// memo eviction storms, transient run failures via exp.FaultHook), and
// HTTP (request drops, latency spikes, truncated bodies via
// middleware) — plus the resilience primitives the serving layer
// builds on top of it (Backoff, Breaker, RetryBudget) and a
// virtual-time availability pipeline used by the -exp chaos sweep.
//
// Determinism contract: every injection decision is a pure function of
// (injector seed, boundary site, request key, per-key attempt
// sequence). No wall clock, no shared mutable RNG stream — so the same
// seed yields byte-identical fault schedules at any -parallel width
// and across runs, which is what lets CI assert on chaos output. All
// injection is default-off: a nil or disabled Injector adds one atomic
// load per decision point and changes no output byte.
package chaos

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Injection sites. Each boundary draws from its own site constant so
// the decision streams are independent: turning the HTTP drop rate up
// never changes which engine runs fail.
const (
	siteEngineFail  uint64 = 0x45464149 // "EFAI"
	siteEngineStall uint64 = 0x4553544c
	siteEngineEvict uint64 = 0x45455649
	siteHTTPDrop    uint64 = 0x48445250
	siteHTTPLatency uint64 = 0x484c4154
	siteHTTPTrunc   uint64 = 0x48545243
)

// Config controls the injector. The zero value disables everything.
// Rates are probabilities in [0, 1] evaluated independently per
// decision point.
type Config struct {
	Enabled bool   // master switch; false short-circuits every site
	Seed    uint64 // injection schedule seed; same seed ⇒ same schedule

	// Engine boundary (exp.FaultHook).
	EngineFailRate  float64       // probability a leaf run fails with a transient error
	EngineFailAfter uint64        // grace period: first N runs are immune (lets priming succeed)
	EngineStallRate float64       // probability a leaf run stalls while holding its worker slot
	EngineStall     time.Duration // stall duration (wall clock; default 50ms)
	EvictRate       float64       // probability a leaf run triggers a memo eviction storm
	EvictBurst      int           // entries dropped per storm (default 4)

	// HTTP boundary (middleware).
	HTTPDropRate    float64       // probability a request is refused with 503 before handling
	HTTPLatencyRate float64       // probability a request is delayed before handling
	HTTPLatency     time.Duration // injected delay (default 100ms)
	HTTPTruncRate   float64       // probability a response body is cut mid-stream
}

// rate reports whether p is a valid probability.
func rate(name string, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("chaos: %s %g outside [0, 1]", name, p)
	}
	return nil
}

// Validate rejects malformed configurations and fills defaults for
// duration/burst fields left zero while their rate is set.
func (c *Config) Validate() error {
	for _, r := range []struct {
		name string
		p    float64
	}{
		{"engine-fail-rate", c.EngineFailRate},
		{"engine-stall-rate", c.EngineStallRate},
		{"evict-rate", c.EvictRate},
		{"http-drop-rate", c.HTTPDropRate},
		{"http-latency-rate", c.HTTPLatencyRate},
		{"http-trunc-rate", c.HTTPTruncRate},
	} {
		if err := rate(r.name, r.p); err != nil {
			return err
		}
	}
	if c.EngineStall < 0 || c.HTTPLatency < 0 {
		return fmt.Errorf("chaos: negative injected delay")
	}
	if c.EngineStall == 0 {
		c.EngineStall = 50 * time.Millisecond
	}
	if c.HTTPLatency == 0 {
		c.HTTPLatency = 100 * time.Millisecond
	}
	if c.EvictBurst <= 0 {
		c.EvictBurst = 4
	}
	return nil
}

// Active reports whether any injection can fire.
func (c *Config) Active() bool {
	return c.Enabled && (c.EngineFailRate > 0 || c.EngineStallRate > 0 ||
		c.EvictRate > 0 || c.HTTPDropRate > 0 || c.HTTPLatencyRate > 0 ||
		c.HTTPTruncRate > 0)
}

// Stats counts injections by class. Read with the accessor; fields are
// atomics so hot paths never take a lock.
type Stats struct {
	EngineFails  atomic.Uint64
	EngineStalls atomic.Uint64
	Evictions    atomic.Uint64
	HTTPDrops    atomic.Uint64
	HTTPDelays   atomic.Uint64
	HTTPTruncs   atomic.Uint64
}

// Injector draws deterministic injection decisions. Safe for
// concurrent use; a nil *Injector injects nothing.
type Injector struct {
	cfg   Config
	armed atomic.Bool
	runs  atomic.Uint64 // engine runs observed, for EngineFailAfter grace

	mu  sync.Mutex
	seq map[uint64]uint64 // per-(site^key) decision counter

	// sleep performs stall/latency injection; time.Sleep in production,
	// stubbed in tests so schedules can be asserted without waiting.
	sleep func(time.Duration)

	stats Stats
}

// New builds an injector from cfg (which must have been Validated).
// The injector starts armed iff cfg.Enabled.
func New(cfg Config) *Injector {
	in := &Injector{cfg: cfg, seq: make(map[uint64]uint64), sleep: time.Sleep}
	in.armed.Store(cfg.Enabled)
	return in
}

// SetSleep replaces the stall/latency sleep function — tests stub it
// to record injected delays instead of serving them.
func (in *Injector) SetSleep(fn func(time.Duration)) { in.sleep = fn }

// Disarm stops all future injections without tearing down wiring —
// tests use it to let a faulted system recover (breakers close, probes
// succeed) on demand.
func (in *Injector) Disarm() { in.armed.Store(false) }

// Rearm re-enables injection after Disarm (only if the config enables
// it at all).
func (in *Injector) Rearm() { in.armed.Store(in.cfg.Enabled) }

// Armed reports whether injections can currently fire.
func (in *Injector) Armed() bool { return in != nil && in.armed.Load() }

// Stats exposes the injection counters.
func (in *Injector) Stats() *Stats { return &in.stats }

// splitmix64 is the standard SplitMix64 finalizer: a bijective avalanche
// mix, so structured inputs (small sequence numbers, similar digests)
// still produce uniformly distributed draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// JitterU returns a deterministic jitter coordinate for (key, n): a
// uniform in [0, 1) that is a pure function of its arguments. The
// serving layer feeds it to Backoff.Delay so a request's retry
// schedule is reproducible while distinct keys decorrelate.
func JitterU(key, n uint64) float64 {
	h := splitmix64(key ^ n*0xd6e8feb86659fd93 ^ 0x4a495454)
	return float64(h>>11) / (1 << 53)
}

// draw returns a uniform in [0, 1) that depends only on (seed, site,
// key, n-th decision at this site/key). Concurrent callers for
// different keys never perturb each other's streams, which is the
// whole determinism story: an injection schedule is a property of the
// request, not of thread interleaving.
func (in *Injector) draw(site, key uint64) float64 {
	slot := splitmix64(site ^ key)
	in.mu.Lock()
	n := in.seq[slot]
	in.seq[slot] = n + 1
	in.mu.Unlock()
	h := splitmix64(in.cfg.Seed ^ slot ^ (n * 0xd6e8feb86659fd93))
	return float64(h>>11) / (1 << 53)
}
