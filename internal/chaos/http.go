package chaos

import (
	"hash/fnv"
	"net/http"
)

// truncWriter forwards at most limit body bytes, then reports how much
// it swallowed. Headers pass through untouched — truncation models a
// connection dying mid-response, not a corrupted status line.
type truncWriter struct {
	http.ResponseWriter
	remaining int
	truncated bool
}

func (t *truncWriter) Write(p []byte) (int, error) {
	if t.remaining <= 0 {
		t.truncated = true
		return len(p), nil // swallow; report success so the handler completes
	}
	if len(p) > t.remaining {
		n, err := t.ResponseWriter.Write(p[:t.remaining])
		t.remaining = 0
		t.truncated = true
		if err != nil {
			return n, err
		}
		return len(p), nil
	}
	n, err := t.ResponseWriter.Write(p)
	t.remaining -= n
	return n, err
}

// truncAfter is how many response bytes survive an injected
// truncation: enough for clients to see a plausible partial JSON body,
// small enough that any real response is visibly cut.
const truncAfter = 64

// WrapHTTP returns a middleware injecting the HTTP-boundary faults:
// request drops (503 with an X-Chaos-Injected marker, before the
// handler runs), latency spikes (injected sleep before handling), and
// truncated response bodies. Decisions key off the request path+query,
// so the schedule is a property of the request stream, not of handler
// timing. onInject, if non-nil, is called with the fault class name —
// the daemon uses it to count injections in its metrics registry.
func (in *Injector) WrapHTTP(next http.Handler, onInject func(class string)) http.Handler {
	if in == nil || !in.cfg.Active() {
		return next
	}
	note := func(class string) {
		if onInject != nil {
			onInject(class)
		}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !in.armed.Load() {
			next.ServeHTTP(w, r)
			return
		}
		h := fnv.New64a()
		_, _ = h.Write([]byte(r.URL.RequestURI()))
		key := h.Sum64()
		if in.cfg.HTTPDropRate > 0 && in.draw(siteHTTPDrop, key) < in.cfg.HTTPDropRate {
			in.stats.HTTPDrops.Add(1)
			note("drop")
			w.Header().Set("X-Chaos-Injected", "drop")
			http.Error(w, "chaos: injected request drop", http.StatusServiceUnavailable)
			return
		}
		if in.cfg.HTTPLatencyRate > 0 && in.draw(siteHTTPLatency, key) < in.cfg.HTTPLatencyRate {
			in.stats.HTTPDelays.Add(1)
			note("latency")
			in.sleep(in.cfg.HTTPLatency)
		}
		if in.cfg.HTTPTruncRate > 0 && in.draw(siteHTTPTrunc, key) < in.cfg.HTTPTruncRate {
			in.stats.HTTPTruncs.Add(1)
			note("truncate")
			w.Header().Set("X-Chaos-Injected", "truncate")
			tw := &truncWriter{ResponseWriter: w, remaining: truncAfter}
			next.ServeHTTP(tw, r)
			return
		}
		next.ServeHTTP(w, r)
	})
}
