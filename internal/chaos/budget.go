package chaos

import "sync"

// RetryBudget is a token bucket that bounds retries to a fraction of
// fresh request traffic — the standard defense against retry storms:
// when the backend is healthy the budget is never touched; when it is
// down, retries self-limit to Ratio of offered load instead of
// multiplying it by MaxAttempts. Safe for concurrent use.
type RetryBudget struct {
	mu     sync.Mutex
	ratio  float64 // tokens earned per fresh request
	burst  float64 // token cap
	tokens float64
	spent  uint64 // retries granted
	denied uint64 // retries refused
}

// NewRetryBudget builds a budget earning ratio tokens per fresh
// request, capped at burst (default 10 when <= 0). A ratio <= 0
// disables retries entirely. The bucket starts full so cold-start
// failures can still retry.
func NewRetryBudget(ratio float64, burst float64) *RetryBudget {
	if burst <= 0 {
		burst = 10
	}
	return &RetryBudget{ratio: ratio, burst: burst, tokens: burst}
}

// Earn credits the budget for one fresh (non-retry) request.
func (rb *RetryBudget) Earn() {
	rb.mu.Lock()
	rb.tokens += rb.ratio
	if rb.tokens > rb.burst {
		rb.tokens = rb.burst
	}
	rb.mu.Unlock()
}

// Spend consumes one retry token, reporting whether the retry is
// allowed.
func (rb *RetryBudget) Spend() bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.ratio <= 0 || rb.tokens < 1 {
		rb.denied++
		return false
	}
	rb.tokens--
	rb.spent++
	return true
}

// Stats returns lifetime granted and denied retry counts.
func (rb *RetryBudget) Stats() (spent, denied uint64) {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.spent, rb.denied
}
