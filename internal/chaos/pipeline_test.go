package chaos

import (
	"testing"

	"beacongnn/internal/config"
	"beacongnn/internal/sim"
)

func testPipelineConfig(seed uint64) PipelineConfig {
	return PipelineConfig{
		Requests:    400,
		Interval:    100 * sim.Microsecond,
		Workers:     4,
		Service:     300 * sim.Microsecond,
		Window:      [2]sim.Time{10 * sim.Millisecond, 30 * sim.Millisecond},
		FailRate:    0.5,
		StallRate:   0.2,
		StallFactor: 6,
		DropRate:    0.05,
		MaxAttempts: 3,
		Backoff:     Backoff{Base: int64(100 * sim.Microsecond), Max: int64(2 * sim.Millisecond)},
		BudgetRatio: 0.2,
		HedgeAfter:  600 * sim.Microsecond,
		Breaker:     BreakerConfig{Threshold: 5, Cooldown: int64(2 * sim.Millisecond)},
		SLOTarget:   0.999,
		Seed:        seed,
	}
}

// TestPipelineDeterministic is the harness's core promise: the report
// is a pure function of its config. Two runs in the same process must
// agree exactly — there is no wall clock, no shared RNG, and no
// scheduler dependence inside the virtual event loop.
func TestPipelineDeterministic(t *testing.T) {
	a := RunPipeline(testPipelineConfig(7))
	b := RunPipeline(testPipelineConfig(7))
	if a != b {
		t.Fatalf("same seed diverged:\n a=%+v\n b=%+v", a, b)
	}
	c := RunPipeline(testPipelineConfig(8))
	if a == c {
		t.Fatal("different seeds produced identical reports")
	}
}

func TestPipelineOutcomesPartitionAndResilience(t *testing.T) {
	rep := RunPipeline(testPipelineConfig(7))
	if rep.OK+rep.Degraded+rep.Failed+rep.Dropped != rep.Requests {
		t.Fatalf("outcomes leak: %+v", rep)
	}
	if rep.OK == 0 || rep.Retries == 0 || rep.Hedges == 0 {
		t.Fatalf("fault window exercised no resilience machinery: %+v", rep)
	}
	if rep.Availability <= 0 || rep.Availability > 1 {
		t.Fatalf("availability %g outside (0, 1]", rep.Availability)
	}
	if rep.P99 < rep.P50 || rep.P999 < rep.P99 {
		t.Fatalf("quantiles not monotone: %+v", rep)
	}

	// A clean config (no fault window) is the availability ceiling.
	clean := testPipelineConfig(7)
	clean.Window = [2]sim.Time{}
	clean.FailRate, clean.StallRate, clean.DropRate = 0, 0, 0
	crep := RunPipeline(clean)
	if crep.Availability != 1 || crep.OK != crep.Requests {
		t.Fatalf("clean run not fully available: %+v", crep)
	}
	if crep.Retries != 0 || crep.BreakerTrips != 0 {
		t.Fatalf("clean run burned resilience machinery: %+v", crep)
	}
	if crep.Goodput <= rep.Goodput {
		t.Fatalf("faults did not cost goodput: clean %g <= faulted %g", crep.Goodput, rep.Goodput)
	}
}

// TestPipelineBreakerDegrades drives a total in-window outage: the
// breaker must trip, and refused requests must settle degraded (a
// stale result exists from the pre-window successes), not failed.
func TestPipelineBreakerDegrades(t *testing.T) {
	cfg := testPipelineConfig(3)
	cfg.FailRate = 1
	cfg.StallRate, cfg.DropRate = 0, 0
	rep := RunPipeline(cfg)
	if rep.BreakerTrips == 0 {
		t.Fatalf("total outage never tripped the breaker: %+v", rep)
	}
	if rep.Degraded == 0 {
		t.Fatalf("no degraded serves during the outage: %+v", rep)
	}
	if rep.MTTR <= 0 {
		t.Fatalf("breaker recovered (post-window) but MTTR = %v", rep.MTTR)
	}
	// The window covers ~half the run; everything outside it succeeds.
	if rep.OK == 0 {
		t.Fatalf("no successes outside the outage window: %+v", rep)
	}
}

func TestScenariosValidate(t *testing.T) {
	all := Scenarios(false)
	if len(all) < 5 {
		t.Fatalf("catalog shrank to %d scenarios", len(all))
	}
	quick := Scenarios(true)
	if len(quick) >= len(all) {
		t.Fatalf("quick catalog (%d) not a strict subset of full (%d)", len(quick), len(all))
	}
	seen := map[string]bool{}
	for _, sc := range all {
		if sc.Name == "" || seen[sc.Name] {
			t.Fatalf("bad or duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if sc.Device == nil {
			continue
		}
		cfg := config.Default()
		sc.Device(&cfg)
		if err := cfg.Validate(); err != nil {
			t.Errorf("scenario %s produced an invalid config: %v", sc.Name, err)
		}
		if !cfg.Fault.Enabled {
			t.Errorf("scenario %s mutated the device without enabling the fault model", sc.Name)
		}
	}
}
