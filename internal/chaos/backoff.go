package chaos

// Backoff computes capped exponential retry delays in whatever clock
// units the caller uses (nanoseconds for wall time, sim.Time ticks for
// the virtual pipeline). The shift is clamped before it is applied, so
// arbitrarily large attempt counts saturate at Max instead of wrapping
// negative — the overflow class fixed in internal/platform's recovery
// ladder lives behind the same guard here.
type Backoff struct {
	Base int64 // delay for attempt 0; <= 0 disables (Delay returns 0)
	Max  int64 // saturation ceiling; <= 0 means 8*Base
}

// maxShift bounds the doubling exponent: 1<<40 base units is ~18
// minutes in nanoseconds, far past any deadline this system serves
// under, and keeps Base<<shift comfortably inside int64 for any sane
// Base.
const maxShift = 40

// Delay returns the backoff before retry number attempt (0-based),
// jittered into [d/2, d) by u, which the caller draws from its own
// deterministic stream (u in [0, 1)). Full-jitter-over-half keeps the
// ordering property tests rely on — larger attempt never waits less —
// while still decorrelating retry storms.
func (b Backoff) Delay(attempt int, u float64) int64 {
	if b.Base <= 0 {
		return 0
	}
	max := b.Max
	if max <= 0 {
		max = 8 * b.Base
		if max <= 0 { // 8×Base itself overflowed
			max = 1 << 62
		}
	}
	shift := attempt
	if shift < 0 {
		shift = 0
	}
	if shift > maxShift {
		shift = maxShift
	}
	d := b.Base << uint(shift)
	if d <= 0 || d > max {
		d = max
	}
	half := d / 2
	jittered := half + int64(u*float64(d-half))
	if jittered < 1 {
		jittered = 1
	}
	return jittered
}
