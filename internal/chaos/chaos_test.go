package chaos

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{EngineFailRate: -0.1},
		{EngineFailRate: 1.1},
		{HTTPDropRate: 2},
		{EngineStall: -time.Second},
		{HTTPLatency: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	c := Config{Enabled: true, EngineStallRate: 0.5}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.EngineStall != 50*time.Millisecond || c.HTTPLatency != 100*time.Millisecond || c.EvictBurst != 4 {
		t.Fatalf("defaults not filled: %+v", c)
	}
	if !c.Active() {
		t.Fatal("enabled config with a rate should be active")
	}
	if (&Config{Enabled: true}).Active() {
		t.Fatal("all-zero rates must not be active")
	}
}

// TestDrawDeterministicAndIndependent pins the determinism contract:
// the n-th decision for a (site, key) pair is the same no matter how
// many draws other pairs made in between, and a different seed moves
// every stream.
func TestDrawDeterministicAndIndependent(t *testing.T) {
	seq := func(in *Injector, site, key uint64, n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = in.draw(site, key)
		}
		return out
	}
	a := New(Config{Enabled: true, Seed: 7})
	want := seq(a, siteEngineFail, 42, 8)

	// Interleave heavy traffic on other sites and keys.
	b := New(Config{Enabled: true, Seed: 7})
	for i := 0; i < 1000; i++ {
		b.draw(siteHTTPDrop, uint64(i))
		b.draw(siteEngineFail, uint64(i)+1000)
	}
	if got := seq(b, siteEngineFail, 42, 8); !equalF(got, want) {
		t.Fatal("draw stream for (site, key) depends on other keys' traffic")
	}

	c := New(Config{Enabled: true, Seed: 8})
	if got := seq(c, siteEngineFail, 42, 8); equalF(got, want) {
		t.Fatal("different seeds produced the same stream")
	}
	for _, u := range want {
		if u < 0 || u >= 1 {
			t.Fatalf("draw %g outside [0, 1)", u)
		}
	}
}

func TestDrawConcurrencySafe(t *testing.T) {
	in := New(Config{Enabled: true, Seed: 1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				in.draw(siteEngineStall, uint64(g))
			}
		}(g)
	}
	wg.Wait()
	// Each goroutine's key advanced exactly 500 times; the next draw is
	// therefore the 501st of that stream regardless of interleaving.
	ref := New(Config{Enabled: true, Seed: 1})
	var want float64
	for i := 0; i <= 500; i++ {
		want = ref.draw(siteEngineStall, 3)
	}
	if got := in.draw(siteEngineStall, 3); got != want {
		t.Fatalf("concurrent interleaving perturbed a key's stream: %g != %g", got, want)
	}
}

func TestJitterUPureAndUniform(t *testing.T) {
	if JitterU(5, 2) != JitterU(5, 2) {
		t.Fatal("JitterU is not a pure function")
	}
	if JitterU(5, 2) == JitterU(5, 3) || JitterU(5, 2) == JitterU(6, 2) {
		t.Fatal("JitterU does not vary with its arguments")
	}
	var sum float64
	const n = 10_000
	for i := uint64(0); i < n; i++ {
		u := JitterU(i, i%7)
		if u < 0 || u >= 1 {
			t.Fatalf("JitterU = %g outside [0, 1)", u)
		}
		sum += u
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("JitterU mean %g far from 0.5", mean)
	}
}

// TestBackoffGoldenSchedule pins the exact retry schedule for a known
// base and jitter coordinate — this is what makes retry timing a
// reviewable artifact rather than an emergent behaviour.
func TestBackoffGoldenSchedule(t *testing.T) {
	b := Backoff{Base: 100, Max: 10_000}
	// u = 0 ⇒ delay is exactly half the exponential envelope.
	golden := []int64{50, 100, 200, 400, 800, 1600, 3200, 5000, 5000}
	for attempt, want := range golden {
		if got := b.Delay(attempt, 0); got != want {
			t.Errorf("Delay(%d, 0) = %d, want %d", attempt, got, want)
		}
	}
	// u → 1 approaches the full envelope (never reaching it).
	if got := b.Delay(2, 0.999999); got < 395 || got >= 400 {
		t.Errorf("Delay(2, ~1) = %d, want just under 400", got)
	}
}

func TestBackoffOverflowClamps(t *testing.T) {
	b := Backoff{Base: int64(time.Second), Max: 0} // Max defaults to 8×Base
	for attempt := 0; attempt < 128; attempt++ {
		d := b.Delay(attempt, 0.5)
		if d <= 0 || d > 8*int64(time.Second) {
			t.Fatalf("Delay(%d) = %d overflowed or exceeded the ceiling", attempt, d)
		}
	}
	if d := (Backoff{Base: 1 << 62}).Delay(64, 0.9); d <= 0 {
		t.Fatalf("huge-base delay %d went non-positive", d)
	}
}

func TestRetryBudget(t *testing.T) {
	b := NewRetryBudget(0.5, 2) // starts full at burst 2
	if !b.Spend() || !b.Spend() {
		t.Fatal("full budget refused its burst")
	}
	if b.Spend() {
		t.Fatal("empty budget allowed a retry")
	}
	b.Earn() // +0.5: still below one token
	if b.Spend() {
		t.Fatal("half a token spent as a whole one")
	}
	b.Earn() // +0.5: one token
	if !b.Spend() {
		t.Fatal("earned token not spendable")
	}
	spent, denied := b.Stats()
	if spent != 3 || denied != 2 {
		t.Fatalf("stats = %d spent / %d denied, want 3/2", spent, denied)
	}
	if NewRetryBudget(0, 2).Spend() {
		t.Fatal("zero ratio must disable retries")
	}
}

func TestBreakerStateMachine(t *testing.T) {
	var transitions []BreakerState
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: 100})
	b.OnStateChange(func(st BreakerState) { transitions = append(transitions, st) })

	now := int64(0)
	if b.State() != Closed || !b.Allow(now) {
		t.Fatal("new breaker must be closed and admitting")
	}
	// Failures below the threshold keep it closed; a success resets.
	b.Record(now, false)
	b.Record(now, false)
	b.Record(now, true)
	b.Record(now, false)
	b.Record(now, false)
	if b.State() != Closed {
		t.Fatal("success did not reset the consecutive-failure count")
	}
	b.Record(now, false) // third consecutive: trip
	if b.State() != Open {
		t.Fatal("threshold failures did not trip the breaker")
	}
	if b.Allow(now + 50) {
		t.Fatal("open breaker admitted inside the cooldown")
	}
	// Cooldown elapsed: exactly one probe passes.
	if !b.Allow(now + 100) {
		t.Fatal("cooldown elapsed but probe refused")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow(now + 101) {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe fails: re-open, fresh cooldown.
	b.Record(now+110, false)
	if b.State() != Open || b.Allow(now+150) {
		t.Fatal("failed probe did not re-open with a fresh cooldown")
	}
	// Next probe succeeds: closed, and MTTR accounting reflects the
	// total open dwell across both trips.
	if !b.Allow(now + 250) {
		t.Fatal("second probe refused")
	}
	b.Record(now+260, true)
	if b.State() != Closed || !b.Allow(now+261) {
		t.Fatal("successful probe did not close the breaker")
	}
	st := b.Stats()
	if st.Trips != 2 || st.Closes != 1 {
		t.Fatalf("trips=%d closes=%d, want 2/1", st.Trips, st.Closes)
	}
	// Dwell accrues from the most recent trip (t=110) to the close
	// (t=260): MTTR measures the final recovery, not the full flap.
	if st.OpenTotal != 150 {
		t.Fatalf("open dwell = %d, want 150", st.OpenTotal)
	}
	want := []BreakerState{Open, HalfOpen, Open, HalfOpen, Closed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions %v, want %v", transitions, want)
		}
	}
}

func TestBreakerCancelProbe(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: 10})
	b.Record(0, false)
	if !b.Allow(10) {
		t.Fatal("probe refused after cooldown")
	}
	// The probe's request was cancelled by its client — that says
	// nothing about downstream health, so the slot reopens for the next
	// caller instead of wedging half-open forever.
	b.CancelProbe()
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open retained", b.State())
	}
	if !b.Allow(11) {
		t.Fatal("probe slot not released after cancellation")
	}
}

func TestInjectorDisarm(t *testing.T) {
	in := New(Config{Enabled: true, Seed: 1, EngineFailRate: 1})
	if !in.Armed() {
		t.Fatal("enabled injector not armed")
	}
	in.Disarm()
	if in.Armed() {
		t.Fatal("disarm did not take")
	}
	in.Rearm()
	if !in.Armed() {
		t.Fatal("rearm did not take")
	}
	var nilInj *Injector
	if nilInj.Armed() {
		t.Fatal("nil injector reports armed")
	}
}

func equalF(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
