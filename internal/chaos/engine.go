package chaos

import (
	"fmt"

	"beacongnn/internal/exp"
)

// Attach installs the injector as eng's fault hook, wiring the engine
// boundary: per-leaf transient failures, worker stalls (the sleep
// holds the leaf's worker slot, exactly like a run that went slow),
// and memo eviction storms. Passing a nil injector (or one whose
// config is disabled) installs nothing, keeping the hot path at its
// uninstrumented cost.
func (in *Injector) Attach(eng *exp.Engine) {
	if in == nil || !in.cfg.Active() {
		return
	}
	eng.SetFaultHook(func(key exp.SimKey, attempt int) error {
		return in.engineFault(eng, key.Digest, attempt)
	})
}

// engineFault draws the engine-boundary decisions for one leaf attempt.
// The grace counter runs on attempt 0 only, so hedges and retries of an
// early request do not burn the priming window.
func (in *Injector) engineFault(eng *exp.Engine, digest uint64, attempt int) error {
	if !in.armed.Load() {
		return nil
	}
	if attempt == 0 && in.runs.Add(1) <= in.cfg.EngineFailAfter {
		return nil
	}
	key := digest ^ uint64(attempt)*0x9e3779b97f4a7c15
	if in.cfg.EvictRate > 0 && in.draw(siteEngineEvict, key) < in.cfg.EvictRate {
		in.stats.Evictions.Add(uint64(eng.EvictOldest(in.cfg.EvictBurst)))
	}
	if in.cfg.EngineStallRate > 0 && in.draw(siteEngineStall, key) < in.cfg.EngineStallRate {
		in.stats.EngineStalls.Add(1)
		in.sleep(in.cfg.EngineStall)
	}
	if in.cfg.EngineFailRate > 0 && in.draw(siteEngineFail, key) < in.cfg.EngineFailRate {
		in.stats.EngineFails.Add(1)
		return fmt.Errorf("chaos: injected engine fault (attempt %d): %w", attempt, exp.ErrTransient)
	}
	return nil
}
