package exp

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"beacongnn/internal/config"
	"beacongnn/internal/dataset"
	"beacongnn/internal/graph"
	"beacongnn/internal/platform"
)

func TestIsTransient(t *testing.T) {
	if !IsTransient(ErrTransient) {
		t.Fatal("ErrTransient not transient")
	}
	if !IsTransient(fmt.Errorf("chaos: injected (attempt 2): %w", ErrTransient)) {
		t.Fatal("wrapped transient not recognized")
	}
	if IsTransient(errors.New("deterministic failure")) || IsTransient(nil) {
		t.Fatal("non-transient misclassified")
	}
}

// TestFaultHookTransientDoesNotPoisonMemo is the no-poisoning law: a
// transient injected failure must be returned to its caller but NOT
// cached, so the next request for the same key re-runs and succeeds.
// Deterministic errors stay cached (retrying cannot change them).
func TestFaultHookTransientDoesNotPoisonMemo(t *testing.T) {
	e := New(2)
	inst := testInstance(t)
	cfg := config.Default()
	e.simFn = func(context.Context, platform.Kind, config.Config, *dataset.Instance, int, int, [][]graph.NodeID) (*platform.Result, error) {
		return &platform.Result{Platform: "ok"}, nil
	}
	calls := 0
	e.SetFaultHook(func(key SimKey, attempt int) error {
		calls++
		if calls == 1 {
			return fmt.Errorf("chaos: injected: %w", ErrTransient)
		}
		return nil
	})

	if _, err := e.SimulateCtx(context.Background(), platform.BG2, cfg, inst, 2, 0); !IsTransient(err) {
		t.Fatalf("first call err = %v, want injected transient", err)
	}
	r, err := e.SimulateCtx(context.Background(), platform.BG2, cfg, inst, 2, 0)
	if err != nil || r == nil || r.Platform != "ok" {
		t.Fatalf("retry after transient: r=%+v err=%v (memo poisoned?)", r, err)
	}
	if calls != 2 {
		t.Fatalf("hook ran %d times, want 2 (transient entry must have been deleted)", calls)
	}
}

func TestFaultHookDeterministicErrorStaysCached(t *testing.T) {
	e := New(2)
	inst := testInstance(t)
	cfg := config.Default()
	hard := errors.New("deterministic simulation failure")
	leafCalls := 0
	e.simFn = func(context.Context, platform.Kind, config.Config, *dataset.Instance, int, int, [][]graph.NodeID) (*platform.Result, error) {
		leafCalls++
		return nil, hard
	}
	for i := 0; i < 2; i++ {
		if _, err := e.SimulateCtx(context.Background(), platform.BG2, cfg, inst, 2, 0); !errors.Is(err, hard) {
			t.Fatalf("call %d err = %v, want the deterministic error", i, err)
		}
	}
	if leafCalls != 1 {
		t.Fatalf("leaf ran %d times, want 1 (hard errors are memoized)", leafCalls)
	}
}

// TestSimulateFreshCtxBypassesMemo: hedged duplicates must not dedupe
// into the very in-flight entry they are racing — a fresh run always
// executes the leaf, yet yields the same deterministic result.
func TestSimulateFreshCtxBypassesMemo(t *testing.T) {
	e := New(2)
	inst := testInstance(t)
	cfg := config.Default()

	r1, err := e.SimulateCtx(context.Background(), platform.BG2, cfg, inst, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	runsBefore, _ := e.Stats()
	r2, err := e.SimulateFreshCtx(context.Background(), platform.BG2, cfg, inst, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	runsAfter, _ := e.Stats()
	if runsAfter != runsBefore+1 {
		t.Fatalf("fresh run deduped into the memo (runs %d -> %d)", runsBefore, runsAfter)
	}
	if r1 == r2 {
		t.Fatal("fresh run returned the cached pointer")
	}
	if r1.Elapsed != r2.Elapsed || r1.FlashReads != r2.FlashReads {
		t.Fatalf("fresh rerun diverged from the memoized run: %v/%v vs %v/%v",
			r1.Elapsed, r1.FlashReads, r2.Elapsed, r2.FlashReads)
	}
	// The hook sees the hedge's attempt number, letting injectors key
	// decisions off it.
	var sawAttempt int
	e.SetFaultHook(func(_ SimKey, attempt int) error {
		sawAttempt = attempt
		return nil
	})
	if _, err := e.SimulateFreshCtx(context.Background(), platform.BG1, cfg, inst, 2, 0, 3); err != nil {
		t.Fatal(err)
	}
	if sawAttempt != 3 {
		t.Fatalf("hook saw attempt %d, want 3", sawAttempt)
	}
}

func TestEvictOldest(t *testing.T) {
	e := New(2)
	e.SetMemoCap(16)
	inst := testInstance(t)
	cfg := config.Default()
	e.simFn = func(_ context.Context, k platform.Kind, _ config.Config, _ *dataset.Instance, _, _ int, _ [][]graph.NodeID) (*platform.Result, error) {
		return &platform.Result{Platform: k.String()}, nil
	}
	kinds := []platform.Kind{platform.CC, platform.BG1, platform.BG2, platform.BGSP}
	for _, k := range kinds {
		if _, err := e.Simulate(k, cfg, inst, 2, 0); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.EvictOldest(2); n != 2 {
		t.Fatalf("EvictOldest(2) = %d", n)
	}
	// LRU order: CC and BG1 (oldest) are gone, BG2 and BGSP survive.
	if e.Cached(Key(platform.CC, cfg, inst, 2, 0)) || e.Cached(Key(platform.BG1, cfg, inst, 2, 0)) {
		t.Fatal("oldest entries survived the eviction storm")
	}
	if !e.Cached(Key(platform.BG2, cfg, inst, 2, 0)) || !e.Cached(Key(platform.BGSP, cfg, inst, 2, 0)) {
		t.Fatal("newest entries were evicted")
	}
	// Asking for more than resident drops what's there and stops.
	if n := e.EvictOldest(10); n != 2 {
		t.Fatalf("EvictOldest(10) with 2 resident = %d", n)
	}
	// Unbounded memo (no cap): eviction storms are a no-op by design —
	// batch runs must never lose results to chaos wiring.
	u := New(2)
	u.simFn = e.simFn
	if _, err := u.Simulate(platform.CC, cfg, inst, 2, 0); err != nil {
		t.Fatal(err)
	}
	if n := u.EvictOldest(5); n != 0 {
		t.Fatalf("uncapped engine evicted %d entries", n)
	}
}
