// Package exp is the parallel experiment engine: it fans independent
// platform simulations out across CPU cores while keeping every
// experiment's rendered output byte-identical to a sequential run.
//
// The design exploits the simulation methodology this repository
// inherits from SimpleSSD-style simulators: each platform.Simulate call
// is a self-contained, deterministic event loop over private state (its
// own sim.Kernel, RNGs, meters) that only reads the shared dataset
// instance. The full evaluation is therefore embarrassingly parallel
// across runs even though each kernel is strictly serial inside.
//
// Two mechanisms compose:
//
//   - a worker-limited scheduler (Throttle / Simulate): heavy leaf work
//     holds one of W slots, where W defaults to runtime.GOMAXPROCS(0).
//     Structured fan-out (Map) deliberately does NOT hold a slot, so
//     nested fan-outs — RunAll over experiments, an experiment over its
//     simulations — never deadlock and only leaves compete for cores;
//   - a memoized simulation cache keyed by (platform kind, dataset name,
//     materialized node count, config digest, batches, timeline points),
//     so each distinct simulation executes at most once per engine, no
//     matter how many figures ask for it. Determinism makes the cached
//     result indistinguishable from a re-run.
//
// Determinism contract: callers collect results first (Map preserves
// input order) and format afterwards; with that discipline, output is
// byte-identical for any worker count, including 1.
package exp

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"

	"beacongnn/internal/config"
	"beacongnn/internal/dataset"
	"beacongnn/internal/platform"
)

// Engine schedules simulations across a bounded worker pool and memoizes
// their results. It is safe for concurrent use. The zero value is not
// usable; call New.
type Engine struct {
	sem chan struct{} // one token per concurrently running leaf

	// simFn is the simulation leaf; platform.Simulate in production,
	// replaceable in tests (e.g. to exercise panic recovery).
	simFn func(platform.Kind, config.Config, *dataset.Instance, int, int) (*platform.Result, error)

	mu   sync.Mutex
	memo map[SimKey]*memoEntry
	hits uint64
	runs uint64
}

// New returns an engine running at most workers leaves concurrently.
// workers <= 0 selects runtime.GOMAXPROCS(0).
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		sem:   make(chan struct{}, workers),
		simFn: platform.Simulate,
		memo:  make(map[SimKey]*memoEntry),
	}
}

// Workers returns the configured parallel width.
func (e *Engine) Workers() int { return cap(e.sem) }

// EnableChecks routes every subsequent simulation through the invariant
// checker (platform.SimulateChecked): each leaf run is verified against
// the conservation and sanity invariants and fails with a
// named-invariant diagnostic if any breaks. Checked results are
// identical to unchecked ones — checking only observes — so the memo
// key is unchanged. Call before the first Simulate.
func (e *Engine) EnableChecks() { e.simFn = platform.SimulateChecked }

// Stats returns the number of simulations executed and the number served
// from the memo cache.
func (e *Engine) Stats() (runs, hits uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runs, e.hits
}

// Throttle runs fn while holding one worker slot. Use it around heavy
// leaf work that is not a platform simulation (dataset materialization,
// contention microbenchmarks, inflation sampling) so the pool bounds
// total CPU oversubscription. Do not wrap calls that themselves wait on
// other throttled work — waiting must never hold a slot.
func (e *Engine) Throttle(fn func()) {
	e.sem <- struct{}{}
	defer func() { <-e.sem }()
	fn()
}

// SimKey identifies one memoizable simulation.
type SimKey struct {
	Kind     platform.Kind
	Dataset  string
	Nodes    int    // materialized node count of the instance
	Digest   uint64 // ConfigDigest of the full config
	Batches  int
	Timeline int
}

type memoEntry struct {
	done chan struct{} // closed when res/err are valid
	res  *platform.Result
	err  error
}

// ConfigDigest returns a stable digest of every field of the config.
// Config is a tree of scalar value types, so its Go-syntax representation
// is a canonical encoding; FNV-64a over it gives a cheap, deterministic
// key component. Any config change — seed, ablations, timing, geometry —
// changes the digest and therefore misses the cache.
func ConfigDigest(cfg config.Config) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v", cfg)
	return h.Sum64()
}

// Key builds the cache key for a simulation request.
func Key(kind platform.Kind, cfg config.Config, inst *dataset.Instance, batches, timeline int) SimKey {
	return SimKey{
		Kind:     kind,
		Dataset:  inst.Desc.Name,
		Nodes:    inst.Graph.NumNodes(),
		Digest:   ConfigDigest(cfg),
		Batches:  batches,
		Timeline: timeline,
	}
}

// Simulate runs (or returns the memoized result of) one platform
// simulation, holding a worker slot only while actually simulating.
// Concurrent requests for the same key deduplicate: one caller runs, the
// rest wait on its completion without consuming slots. The returned
// Result is shared between all callers and must be treated as read-only.
func (e *Engine) Simulate(kind platform.Kind, cfg config.Config, inst *dataset.Instance, batches, timeline int) (*platform.Result, error) {
	if inst == nil {
		return nil, fmt.Errorf("exp: nil dataset instance")
	}
	key := Key(kind, cfg, inst, batches, timeline)
	e.mu.Lock()
	ent, ok := e.memo[key]
	if ok {
		e.hits++
		e.mu.Unlock()
		<-ent.done
		return ent.res, ent.err
	}
	ent = &memoEntry{done: make(chan struct{})}
	e.memo[key] = ent
	e.runs++
	e.mu.Unlock()

	e.Throttle(func() {
		// The channel must close even if the leaf panics: deduped waiters
		// block on it, and a skipped close would strand every caller of
		// this key forever. The panic is converted into the entry's error
		// so waiters and the runner observe the same failure.
		defer func() {
			if rec := recover(); rec != nil {
				ent.res = nil
				ent.err = fmt.Errorf("exp: simulation %v on %s panicked: %v", kind, inst.Desc.Name, rec)
			}
			close(ent.done)
		}()
		ent.res, ent.err = e.simFn(kind, cfg, inst, batches, timeline)
	})
	return ent.res, ent.err
}

// Map applies f to every item concurrently and returns the results in
// input order, which is what makes downstream formatting deterministic.
// Map itself is unbounded — parallelism is limited where the work is,
// inside Simulate/Throttle leaves — so Maps nest freely. If any call
// fails, the error of the lowest-indexed failure is returned (again for
// determinism); the result slice is still fully populated with whatever
// succeeded.
func Map[T, R any](items []T, f func(T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	errs := make([]error, len(items))
	var wg sync.WaitGroup
	wg.Add(len(items))
	for i := range items {
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = f(items[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Go runs every job concurrently and waits for all of them, returning
// the lowest-indexed error. Like Map, it does not hold worker slots.
func Go(jobs ...func() error) error {
	_, err := Map(jobs, func(j func() error) (struct{}, error) {
		return struct{}{}, j()
	})
	return err
}
