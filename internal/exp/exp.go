// Package exp is the parallel experiment engine: it fans independent
// platform simulations out across CPU cores while keeping every
// experiment's rendered output byte-identical to a sequential run.
//
// The design exploits the simulation methodology this repository
// inherits from SimpleSSD-style simulators: each platform.Simulate call
// is a self-contained, deterministic event loop over private state (its
// own sim.Kernel, RNGs, meters) that only reads the shared dataset
// instance. The full evaluation is therefore embarrassingly parallel
// across runs even though each kernel is strictly serial inside.
//
// Two mechanisms compose:
//
//   - a worker-limited scheduler (Throttle / Simulate): heavy leaf work
//     holds one of W slots, where W defaults to runtime.GOMAXPROCS(0).
//     Structured fan-out (Map) deliberately does NOT hold a slot, so
//     nested fan-outs — RunAll over experiments, an experiment over its
//     simulations — never deadlock and only leaves compete for cores;
//   - a memoized simulation cache keyed by (platform kind, dataset name,
//     materialized node count, config digest, batches, timeline points),
//     so each distinct simulation executes at most once per engine, no
//     matter how many figures ask for it. Determinism makes the cached
//     result indistinguishable from a re-run.
//
// Determinism contract: callers collect results first (Map preserves
// input order) and format afterwards; with that discipline, output is
// byte-identical for any worker count, including 1.
package exp

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"

	"beacongnn/internal/config"
	"beacongnn/internal/dataset"
	"beacongnn/internal/graph"
	"beacongnn/internal/platform"
)

// ErrTransient marks failures that say nothing about the simulation
// itself — injected chaos faults, stub outages in tests. The engine
// never memoizes an error carrying it (the key is released and deduped
// waiters retry, exactly like a cancellation), and the serving layer's
// retry machinery treats it as retryable where a deterministic
// simulation error is not.
var ErrTransient = errors.New("transient failure")

// IsTransient reports whether err is (or wraps) a transient failure.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// FaultHook is the engine-boundary chaos surface: it is consulted once
// per leaf attempt, while the attempt holds its worker slot, just
// before the simulation runs. A hook may stall (worker-stall
// injection), evict memo entries (eviction storms), or return an error
// — wrap ErrTransient to keep the failure out of the memo. attempt is 0
// for the primary run and >0 for hedged or retried duplicates.
type FaultHook func(key SimKey, attempt int) error

// Engine schedules simulations across a bounded worker pool and memoizes
// their results. It is safe for concurrent use. The zero value is not
// usable; call New.
type Engine struct {
	sem chan struct{} // one token per concurrently running leaf

	// hook, when set, injects engine-boundary faults (see FaultHook).
	hook FaultHook

	// simFn is the simulation leaf; platform.SimulateTargetsCtx in
	// production, replaceable in tests (e.g. to exercise panic
	// recovery). targets is a precomputed frontier to inject, or nil for
	// self-drawn targets — one entry point so stage reuse and stubbing
	// cannot diverge.
	simFn func(context.Context, platform.Kind, config.Config, *dataset.Instance, int, int, [][]graph.NodeID) (*platform.Result, error)

	// frontiers caches precomputed target frontiers across simulations:
	// every sweep point that keeps (kind, dataset, seed, GNN batch
	// shape, batch count) fixed reuses the same drawn targets instead of
	// re-deriving them inside each run.
	frontiers *StageCache[FrontierKey, [][]graph.NodeID]

	mu      sync.Mutex
	memo    map[SimKey]*memoEntry
	lru     list.List // completed keys, most recent at front; used iff memoCap > 0
	memoCap int       // max completed entries kept (0 = unbounded)
	noMemo  bool      // bypass result memo and stage reuse (forced full resimulation)
	hits    uint64
	runs    uint64
	evicted uint64
}

// New returns an engine running at most workers leaves concurrently.
// workers <= 0 selects runtime.GOMAXPROCS(0).
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		sem:       make(chan struct{}, workers),
		simFn:     platform.SimulateTargetsCtx,
		frontiers: NewStageCache[FrontierKey, [][]graph.NodeID](),
		memo:      make(map[SimKey]*memoEntry),
	}
}

// SetMemoCap bounds the memo to the n most recently used completed
// results, evicting least-recently-used entries past the cap — what a
// long-lived daemon needs where a batch run wants the unbounded
// default. In-flight entries are never evicted (waiters are parked on
// them). n <= 0 restores unbounded. Call before the first Simulate.
func (e *Engine) SetMemoCap(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.memoCap = n
}

// Workers returns the configured parallel width.
func (e *Engine) Workers() int { return cap(e.sem) }

// SetFaultHook installs (or clears, with nil) the engine-boundary fault
// hook; the chaos harness uses it to inject worker stalls, eviction
// storms, and transient failures. Call before the first Simulate.
func (e *Engine) SetFaultHook(h FaultHook) { e.hook = h }

// EvictOldest drops up to n least-recently-used completed memo entries
// and reports how many were dropped. It is a no-op on an unbounded memo
// (batch runs depend on every result staying resident) and never
// touches in-flight entries, which keep their map slot until finish.
// The chaos harness uses it to model eviction storms against a capped
// daemon memo.
func (e *Engine) EvictOldest(n int) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.memoCap <= 0 {
		return 0
	}
	dropped := 0
	for dropped < n {
		back := e.lru.Back()
		if back == nil {
			break
		}
		delete(e.memo, back.Value.(SimKey))
		e.lru.Remove(back)
		e.evicted++
		dropped++
	}
	return dropped
}

// EnableChecks routes every subsequent simulation through the invariant
// checker (platform.SimulateChecked): each leaf run is verified against
// the conservation and sanity invariants and fails with a
// named-invariant diagnostic if any breaks. Checked results are
// identical to unchecked ones — checking only observes — so the memo
// key is unchanged. Call before the first Simulate.
func (e *Engine) EnableChecks() { e.simFn = platform.SimulateTargetsCheckedCtx }

// DisableMemo forces every Simulate call to run a fresh simulation,
// bypassing both the result memo and stage reuse (precomputed
// frontiers). This is the -full-resim escape hatch: incremental sweeps
// are byte-identical to full resimulation by construction, and this
// switch lets a dedicated test (and a suspicious user) prove it. Call
// before the first Simulate.
func (e *Engine) DisableMemo() { e.noMemo = true }

// Stats returns the number of simulations executed and the number served
// from the memo cache.
func (e *Engine) Stats() (runs, hits uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runs, e.hits
}

// Evictions returns how many completed memo entries the LRU cap has
// dropped (always 0 with the unbounded default).
func (e *Engine) Evictions() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.evicted
}

// Cached reports whether key's result is already completed in the memo,
// i.e. a Simulate for it would return without running or waiting. A
// serving layer uses it to label responses as cache hits.
func (e *Engine) Cached(key SimKey) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	ent, ok := e.memo[key]
	if !ok {
		return false
	}
	select {
	case <-ent.done:
		return !ent.abandoned
	default:
		return false
	}
}

// Throttle runs fn while holding one worker slot. Use it around heavy
// leaf work that is not a platform simulation (dataset materialization,
// contention microbenchmarks, inflation sampling) so the pool bounds
// total CPU oversubscription. Do not wrap calls that themselves wait on
// other throttled work — waiting must never hold a slot.
func (e *Engine) Throttle(fn func()) {
	e.sem <- struct{}{}
	defer func() { <-e.sem }()
	fn()
}

// ThrottleCtx is Throttle with a cancellable slot wait: if ctx expires
// before a worker slot frees up, fn never runs and ctx.Err() is
// returned. Once fn starts it runs to completion — pass ctx into fn
// itself if the work can be abandoned midway.
func (e *Engine) ThrottleCtx(ctx context.Context, fn func()) error {
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-e.sem }()
	fn()
	return nil
}

// SimKey identifies one memoizable simulation.
type SimKey struct {
	Kind     platform.Kind
	Dataset  string
	Nodes    int    // materialized node count of the instance
	Digest   uint64 // ConfigDigest of the full config
	Batches  int
	Timeline int
}

// FrontierKey identifies one precomputable target-frontier stage: it
// captures exactly the config inputs that feed target selection (seed,
// batch shape, skew) plus the graph they index into, so sweep points
// that vary anything else — timing, geometry, ablations — share the
// stage while anything frontier-relevant misses it.
type FrontierKey struct {
	Kind      platform.Kind
	Dataset   string
	Nodes     int
	Seed      uint64
	BatchSize int
	Skew      float64
	Batches   int
}

// frontier returns the precomputed target frontier for this simulation,
// or nil when the platform draws targets mid-run (page-granular kinds)
// or stage reuse is disabled. Cached frontiers are shared read-only
// across all simulations with the same key.
func (e *Engine) frontier(kind platform.Kind, cfg config.Config, inst *dataset.Instance, batches int) [][]graph.NodeID {
	if e.noMemo || !platform.FrontierPrecomputable(kind) {
		return nil
	}
	key := FrontierKey{
		Kind:      kind,
		Dataset:   inst.Desc.Name,
		Nodes:     inst.Graph.NumNodes(),
		Seed:      cfg.Seed,
		BatchSize: cfg.GNN.BatchSize,
		Skew:      cfg.GNN.TargetSkew,
		Batches:   batches,
	}
	targets, _ := e.frontiers.Do(key, func() ([][]graph.NodeID, error) {
		return platform.Frontiers(kind, cfg, inst, batches), nil
	})
	return targets
}

type memoEntry struct {
	done chan struct{} // closed when res/err (or abandoned) are valid
	res  *platform.Result
	err  error

	// abandoned marks an entry whose runner was cancelled before
	// producing a result. It is removed from the memo (set strictly
	// before close(done)), and deduped waiters that observe it retry the
	// key instead of inheriting a cancellation that was not theirs.
	abandoned bool

	elem *list.Element // position in the LRU list; nil when unbounded
}

// ConfigDigest returns a stable digest of every field of the config.
// Config is a tree of scalar value types, so its Go-syntax representation
// is a canonical encoding; FNV-64a over it gives a cheap, deterministic
// key component. Any config change — seed, ablations, timing, geometry —
// changes the digest and therefore misses the cache.
func ConfigDigest(cfg config.Config) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v", cfg)
	return h.Sum64()
}

// Key builds the cache key for a simulation request.
func Key(kind platform.Kind, cfg config.Config, inst *dataset.Instance, batches, timeline int) SimKey {
	return SimKey{
		Kind:     kind,
		Dataset:  inst.Desc.Name,
		Nodes:    inst.Graph.NumNodes(),
		Digest:   ConfigDigest(cfg),
		Batches:  batches,
		Timeline: timeline,
	}
}

// Simulate runs (or returns the memoized result of) one platform
// simulation, holding a worker slot only while actually simulating.
// Concurrent requests for the same key deduplicate: one caller runs, the
// rest wait on its completion without consuming slots. The returned
// Result is shared between all callers and must be treated as read-only.
func (e *Engine) Simulate(kind platform.Kind, cfg config.Config, inst *dataset.Instance, batches, timeline int) (*platform.Result, error) {
	return e.SimulateCtx(context.Background(), kind, cfg, inst, batches, timeline)
}

// SimulateCtx is Simulate bound to ctx. Cancellation is observed at
// every blocking point: waiting for a worker slot, waiting on a deduped
// in-flight run, and inside the simulation's own event loop (via
// platform.SimulateCtx) — so an abandoned request frees its pool slot
// instead of running to completion. A cancelled run is removed from the
// memo rather than cached: deduped waiters with live contexts re-run
// the key, and future requests are unaffected.
func (e *Engine) SimulateCtx(ctx context.Context, kind platform.Kind, cfg config.Config, inst *dataset.Instance, batches, timeline int) (*platform.Result, error) {
	if inst == nil {
		return nil, fmt.Errorf("exp: nil dataset instance")
	}
	if e.noMemo {
		select {
		case e.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		defer func() { <-e.sem }()
		e.mu.Lock()
		e.runs++
		e.mu.Unlock()
		return e.simFn(ctx, kind, cfg, inst, batches, timeline, nil)
	}
	key := Key(kind, cfg, inst, batches, timeline)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		e.mu.Lock()
		if ent, ok := e.memo[key]; ok {
			e.hits++
			if ent.elem != nil {
				e.lru.MoveToFront(ent.elem)
			}
			e.mu.Unlock()
			select {
			case <-ent.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if ent.abandoned {
				continue // runner was cancelled; the key is free again — retry
			}
			return ent.res, ent.err
		}
		ent := &memoEntry{done: make(chan struct{})}
		e.memo[key] = ent
		e.mu.Unlock()

		select {
		case e.sem <- struct{}{}:
		case <-ctx.Done():
			e.abandon(key, ent)
			return nil, ctx.Err()
		}
		func() {
			defer func() { <-e.sem }()
			// The channel must close even if the leaf panics: deduped
			// waiters block on it, and a skipped close would strand every
			// caller of this key forever. The panic is converted into the
			// entry's error so waiters and the runner observe the same
			// failure.
			defer func() {
				if rec := recover(); rec != nil {
					ent.res = nil
					ent.err = fmt.Errorf("exp: simulation %v on %s panicked: %v", kind, inst.Desc.Name, rec)
				}
				e.finish(key, ent)
			}()
			if e.hook != nil {
				if herr := e.hook(key, 0); herr != nil {
					ent.err = herr
					return
				}
			}
			e.mu.Lock()
			e.runs++
			e.mu.Unlock()
			ent.res, ent.err = e.simFn(ctx, kind, cfg, inst, batches, timeline,
				e.frontier(kind, cfg, inst, batches))
		}()
		return ent.res, ent.err
	}
}

// SimulateFreshCtx runs one simulation without consulting or updating
// the result memo, while still reusing precomputed frontiers and
// holding a worker slot. It exists for hedged duplicates: a hedge of an
// in-flight key must not dedupe into the very attempt it is racing, and
// its result must not fight the primary's over the memo slot. attempt
// is forwarded to the fault hook so injection schedules can tell
// primaries from hedges.
func (e *Engine) SimulateFreshCtx(ctx context.Context, kind platform.Kind, cfg config.Config, inst *dataset.Instance, batches, timeline, attempt int) (*platform.Result, error) {
	if inst == nil {
		return nil, fmt.Errorf("exp: nil dataset instance")
	}
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-e.sem }()
	if e.hook != nil {
		if err := e.hook(Key(kind, cfg, inst, batches, timeline), attempt); err != nil {
			return nil, err
		}
	}
	e.mu.Lock()
	e.runs++
	e.mu.Unlock()
	var frontier [][]graph.NodeID
	if !e.noMemo {
		frontier = e.frontier(kind, cfg, inst, batches)
	}
	return e.simFn(ctx, kind, cfg, inst, batches, timeline, frontier)
}

// abandon releases a never-run entry whose caller was cancelled while
// waiting for a worker slot.
func (e *Engine) abandon(key SimKey, ent *memoEntry) {
	e.mu.Lock()
	delete(e.memo, key)
	e.mu.Unlock()
	ent.abandoned = true
	close(ent.done)
}

// finish publishes a completed entry: cancelled and transient-failed
// runs are removed from the memo (waiters retry — a chaos-injected
// fault must never poison the cache), everything else — results and
// real errors alike — is cached and enters the LRU when a cap is set.
func (e *Engine) finish(key SimKey, ent *memoEntry) {
	e.mu.Lock()
	if ent.err != nil && (errors.Is(ent.err, context.Canceled) || errors.Is(ent.err, context.DeadlineExceeded) || IsTransient(ent.err)) {
		delete(e.memo, key)
		ent.abandoned = true
	} else if e.memoCap > 0 {
		ent.elem = e.lru.PushFront(key)
		for e.lru.Len() > e.memoCap {
			back := e.lru.Back()
			delete(e.memo, back.Value.(SimKey))
			e.lru.Remove(back)
			e.evicted++
		}
	}
	e.mu.Unlock()
	close(ent.done)
}

// Map applies f to every item concurrently and returns the results in
// input order, which is what makes downstream formatting deterministic.
// Map itself is unbounded — parallelism is limited where the work is,
// inside Simulate/Throttle leaves — so Maps nest freely. If any call
// fails, the error of the lowest-indexed failure is returned (again for
// determinism); the result slice is still fully populated with whatever
// succeeded.
func Map[T, R any](items []T, f func(T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	errs := make([]error, len(items))
	var wg sync.WaitGroup
	wg.Add(len(items))
	for i := range items {
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = f(items[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Go runs every job concurrently and waits for all of them, returning
// the lowest-indexed error. Like Map, it does not hold worker slots.
func Go(jobs ...func() error) error {
	_, err := Map(jobs, func(j func() error) (struct{}, error) {
		return struct{}{}, j()
	})
	return err
}
