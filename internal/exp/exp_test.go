package exp

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"beacongnn/internal/config"
	"beacongnn/internal/dataset"
	"beacongnn/internal/graph"
	"beacongnn/internal/platform"
)

func testInstance(t testing.TB) *dataset.Instance {
	t.Helper()
	d, err := dataset.ByName("amazon")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	inst, err := dataset.Materialize(d, 2000, cfg.Flash.PageSize, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestConfigDigestDistinguishesFields(t *testing.T) {
	base := config.Default()
	mutants := []func(*config.Config){
		func(c *config.Config) { c.Seed++ },
		func(c *config.Config) { c.Flash.PageSize *= 2 },
		func(c *config.Config) { c.Flash.ReadLatency *= 2 },
		func(c *config.Config) { c.GNN.BatchSize++ },
		func(c *config.Config) { c.Ablation.NoPipeline = true },
		func(c *config.Config) { c.Firmware.Cores++ },
		func(c *config.Config) { c.Fault.Enabled = true },
		func(c *config.Config) { c.Fault.BaseRBER *= 10 },
		func(c *config.Config) { c.Fault.InitialPECycles += 1000 },
		func(c *config.Config) { c.Fault.DeadDies = []int{0} },
		func(c *config.Config) { c.Fault.DeadChannels = []int{1} },
	}
	d0 := ConfigDigest(base)
	if d0 != ConfigDigest(base) {
		t.Fatal("digest not stable")
	}
	for i, m := range mutants {
		c := base
		m(&c)
		if ConfigDigest(c) == d0 {
			t.Errorf("mutant %d did not change the digest", i)
		}
	}
}

func TestSimulateMemoizes(t *testing.T) {
	e := New(4)
	inst := testInstance(t)
	cfg := config.Default()

	r1, err := e.Simulate(platform.BG2, cfg, inst, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Simulate(platform.BG2, cfg, inst, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("second identical request was not served from the cache")
	}
	runs, hits := e.Stats()
	if runs != 1 || hits != 1 {
		t.Fatalf("runs=%d hits=%d, want 1/1", runs, hits)
	}
	// A different key must miss.
	if _, err := e.Simulate(platform.BG1, cfg, inst, 2, 0); err != nil {
		t.Fatal(err)
	}
	cfg.Seed++
	if _, err := e.Simulate(platform.BG2, cfg, inst, 2, 0); err != nil {
		t.Fatal(err)
	}
	runs, _ = e.Stats()
	if runs != 3 {
		t.Fatalf("runs=%d, want 3 distinct simulations", runs)
	}
}

func TestSimulateConcurrentDedup(t *testing.T) {
	e := New(8)
	inst := testInstance(t)
	cfg := config.Default()
	const callers = 16
	results := make([]*platform.Result, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			r, err := e.Simulate(platform.BGSP, cfg, inst, 2, 0)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	runs, hits := e.Stats()
	if runs != 1 {
		t.Fatalf("runs=%d, want 1 (concurrent requests must dedupe)", runs)
	}
	if hits != callers-1 {
		t.Fatalf("hits=%d, want %d", hits, callers-1)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent callers got different result pointers")
		}
	}
}

func TestSimulatePanicUnblocksDedupedWaiters(t *testing.T) {
	// Regression: a panic in the simulation leaf skipped close(ent.done),
	// deadlocking every deduped waiter on the same key forever. The close
	// now runs in a defer and the panic becomes the entry's error.
	e := New(2)
	started := make(chan struct{})
	release := make(chan struct{})
	e.simFn = func(context.Context, platform.Kind, config.Config, *dataset.Instance, int, int, [][]graph.NodeID) (*platform.Result, error) {
		close(started)
		<-release // hold the leaf until a waiter has deduped onto the key
		panic("boom in leaf")
	}
	inst := testInstance(t)
	cfg := config.Default()

	runnerErr := make(chan error, 1)
	go func() {
		_, err := e.Simulate(platform.BG2, cfg, inst, 2, 0)
		runnerErr <- err
	}()
	<-started

	waiterErr := make(chan error, 1)
	go func() {
		_, err := e.Simulate(platform.BG2, cfg, inst, 2, 0)
		waiterErr <- err
	}()
	// Let the waiter reach the memo before the leaf panics. Stats() holds
	// the engine lock, so once hits reflects the waiter it is parked on
	// ent.done.
	for {
		if _, hits := e.Stats(); hits == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	timeout := time.After(5 * time.Second)
	for _, ch := range []chan error{runnerErr, waiterErr} {
		select {
		case err := <-ch:
			if err == nil || !strings.Contains(err.Error(), "panicked") {
				t.Fatalf("err = %v, want stored panic error", err)
			}
		case <-timeout:
			t.Fatal("caller deadlocked after a panicking simulation leaf")
		}
	}
	// The worker slot must have been released too: the engine stays usable.
	done := make(chan struct{})
	go func() {
		e.Throttle(func() {})
		e.Throttle(func() {})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("worker slot leaked by the panicking leaf")
	}
}

func TestThrottleBoundsConcurrency(t *testing.T) {
	const width = 3
	e := New(width)
	var active, peak, over int32
	err := Go(func() error {
		_, err := Map(make([]int, 64), func(int) (struct{}, error) {
			e.Throttle(func() {
				n := atomic.AddInt32(&active, 1)
				for {
					p := atomic.LoadInt32(&peak)
					if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
						break
					}
				}
				if n > width {
					atomic.AddInt32(&over, 1)
				}
				atomic.AddInt32(&active, -1)
			})
			return struct{}{}, nil
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if over != 0 {
		t.Fatalf("observed %d over-width executions (peak %d > %d)", over, peak, width)
	}
}

func TestMapPreservesOrderAndLowestError(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	out, err := Map(items, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	e3 := errors.New("three")
	e5 := errors.New("five")
	_, err = Map(items, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, e3
		case 5:
			return 0, e5
		}
		return i, nil
	})
	if !errors.Is(err, e3) {
		t.Fatalf("err = %v, want lowest-indexed failure %v", err, e3)
	}
}

func TestSimulateCtxCancelStopsRunningLeaf(t *testing.T) {
	// Regression for the pre-context engine: a cancelled request kept its
	// worker slot busy until the simulation ran to completion. Now the
	// kernel's cancel poll aborts the event loop mid-run, the slot frees
	// promptly, and the entry is NOT cached — a later request re-runs.
	e := New(1)
	inst := testInstance(t)
	cfg := config.Default()

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		// Large enough that the run is comfortably in flight when cancel
		// lands (a full run takes well over the test's poll interval).
		_, err := e.SimulateCtx(ctx, platform.BG2, cfg, inst, 64, 0)
		errCh <- err
	}()
	// Wait until the leaf has actually started (runs counts executions).
	for {
		if runs, _ := e.Stats(); runs == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled simulation did not return; leaf ran to completion holding the slot")
	}
	// The abandoned key must not be cached: a fresh request re-runs it.
	if _, err := e.Simulate(platform.BG2, cfg, inst, 64, 0); err != nil {
		t.Fatal(err)
	}
	if runs, _ := e.Stats(); runs != 2 {
		t.Fatalf("runs = %d, want 2 (cancelled run must not populate the memo)", runs)
	}
}

func TestSimulateCtxCancelWhileWaitingForSlot(t *testing.T) {
	e := New(1)
	inst := testInstance(t)
	cfg := config.Default()
	block := make(chan struct{})
	started := make(chan struct{}, 4)
	e.simFn = func(_ context.Context, kind platform.Kind, _ config.Config, _ *dataset.Instance, _, _ int, _ [][]graph.NodeID) (*platform.Result, error) {
		started <- struct{}{}
		if kind == platform.BG2 {
			<-block
		}
		return &platform.Result{}, nil
	}
	go e.Simulate(platform.BG2, cfg, inst, 2, 0) // occupies the only slot
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := e.SimulateCtx(ctx, platform.BG1, cfg, inst, 2, 0)
		errCh <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the second request park on the slot
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("slot wait ignored cancellation")
	}
	close(block)
	// The abandoned key must be claimable again.
	if _, err := e.Simulate(platform.BG1, cfg, inst, 2, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateCtxWaiterOutlivesCancelledRunner(t *testing.T) {
	// A deduped waiter with a live context must not inherit the runner's
	// cancellation: it retries the key and succeeds.
	e := New(2)
	inst := testInstance(t)
	cfg := config.Default()
	var calls atomic.Int32
	started := make(chan struct{}, 2)
	runnerCtx, cancelRunner := context.WithCancel(context.Background())
	e.simFn = func(ctx context.Context, _ platform.Kind, _ config.Config, _ *dataset.Instance, _, _ int, _ [][]graph.NodeID) (*platform.Result, error) {
		started <- struct{}{}
		if calls.Add(1) == 1 {
			<-ctx.Done() // first runner parks until cancelled
			return nil, ctx.Err()
		}
		return &platform.Result{Platform: "retry"}, nil
	}

	go e.SimulateCtx(runnerCtx, platform.BG2, cfg, inst, 2, 0)
	<-started
	resCh := make(chan *platform.Result, 1)
	errCh := make(chan error, 1)
	go func() {
		r, err := e.SimulateCtx(context.Background(), platform.BG2, cfg, inst, 2, 0)
		resCh <- r
		errCh <- err
	}()
	// Park the waiter on the in-flight entry, then kill the runner.
	for {
		if _, hits := e.Stats(); hits >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancelRunner()
	select {
	case r := <-resCh:
		if err := <-errCh; err != nil {
			t.Fatalf("waiter err = %v, want retried success", err)
		}
		if r == nil || r.Platform != "retry" {
			t.Fatalf("waiter result = %+v, want the retried run's result", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter hung after its runner was cancelled")
	}
}

func TestSetMemoCapEvictsLRU(t *testing.T) {
	e := New(2)
	e.SetMemoCap(2)
	inst := testInstance(t)
	cfg := config.Default()
	var calls atomic.Int32
	e.simFn = func(_ context.Context, k platform.Kind, _ config.Config, _ *dataset.Instance, _, _ int, _ [][]graph.NodeID) (*platform.Result, error) {
		calls.Add(1)
		return &platform.Result{Platform: k.String()}, nil
	}
	run := func(k platform.Kind) {
		t.Helper()
		if _, err := e.Simulate(k, cfg, inst, 2, 0); err != nil {
			t.Fatal(err)
		}
	}
	run(platform.CC)  // cache: [CC]
	run(platform.BG1) // cache: [BG1 CC]
	run(platform.CC)  // touch CC -> [CC BG1]
	run(platform.BG2) // evicts BG1 -> [BG2 CC]
	if got := calls.Load(); got != 3 {
		t.Fatalf("calls = %d, want 3", got)
	}
	if !e.Cached(Key(platform.CC, cfg, inst, 2, 0)) {
		t.Fatal("recently-used CC entry was evicted")
	}
	if e.Cached(Key(platform.BG1, cfg, inst, 2, 0)) {
		t.Fatal("LRU entry BG1 survived past the cap")
	}
	run(platform.BG1) // must re-run after eviction
	if got := calls.Load(); got != 4 {
		t.Fatalf("calls = %d, want 4 (evicted key must re-run)", got)
	}
	if n := e.Evictions(); n != 2 {
		t.Fatalf("evictions = %d, want 2", n)
	}
}

func TestThrottleCtx(t *testing.T) {
	e := New(1)
	release := make(chan struct{})
	started := make(chan struct{})
	go e.Throttle(func() { close(started); <-release })
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := e.ThrottleCtx(ctx, func() { ran = true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("fn ran despite cancelled slot wait")
	}
	close(release)
	if err := e.ThrottleCtx(context.Background(), func() { ran = true }); err != nil || !ran {
		t.Fatalf("err = %v ran = %v, want nil/true", err, ran)
	}
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if w := New(0).Workers(); w <= 0 {
		t.Fatalf("Workers = %d", w)
	}
	if w := New(5).Workers(); w != 5 {
		t.Fatalf("Workers = %d, want 5", w)
	}
}
