package exp

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"beacongnn/internal/config"
	"beacongnn/internal/dataset"
	"beacongnn/internal/platform"
)

func testInstance(t testing.TB) *dataset.Instance {
	t.Helper()
	d, err := dataset.ByName("amazon")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	inst, err := dataset.Materialize(d, 2000, cfg.Flash.PageSize, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestConfigDigestDistinguishesFields(t *testing.T) {
	base := config.Default()
	mutants := []func(*config.Config){
		func(c *config.Config) { c.Seed++ },
		func(c *config.Config) { c.Flash.PageSize *= 2 },
		func(c *config.Config) { c.Flash.ReadLatency *= 2 },
		func(c *config.Config) { c.GNN.BatchSize++ },
		func(c *config.Config) { c.Ablation.NoPipeline = true },
		func(c *config.Config) { c.Firmware.Cores++ },
		func(c *config.Config) { c.Fault.Enabled = true },
		func(c *config.Config) { c.Fault.BaseRBER *= 10 },
		func(c *config.Config) { c.Fault.InitialPECycles += 1000 },
		func(c *config.Config) { c.Fault.DeadDies = []int{0} },
		func(c *config.Config) { c.Fault.DeadChannels = []int{1} },
	}
	d0 := ConfigDigest(base)
	if d0 != ConfigDigest(base) {
		t.Fatal("digest not stable")
	}
	for i, m := range mutants {
		c := base
		m(&c)
		if ConfigDigest(c) == d0 {
			t.Errorf("mutant %d did not change the digest", i)
		}
	}
}

func TestSimulateMemoizes(t *testing.T) {
	e := New(4)
	inst := testInstance(t)
	cfg := config.Default()

	r1, err := e.Simulate(platform.BG2, cfg, inst, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Simulate(platform.BG2, cfg, inst, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("second identical request was not served from the cache")
	}
	runs, hits := e.Stats()
	if runs != 1 || hits != 1 {
		t.Fatalf("runs=%d hits=%d, want 1/1", runs, hits)
	}
	// A different key must miss.
	if _, err := e.Simulate(platform.BG1, cfg, inst, 2, 0); err != nil {
		t.Fatal(err)
	}
	cfg.Seed++
	if _, err := e.Simulate(platform.BG2, cfg, inst, 2, 0); err != nil {
		t.Fatal(err)
	}
	runs, _ = e.Stats()
	if runs != 3 {
		t.Fatalf("runs=%d, want 3 distinct simulations", runs)
	}
}

func TestSimulateConcurrentDedup(t *testing.T) {
	e := New(8)
	inst := testInstance(t)
	cfg := config.Default()
	const callers = 16
	results := make([]*platform.Result, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			r, err := e.Simulate(platform.BGSP, cfg, inst, 2, 0)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	runs, hits := e.Stats()
	if runs != 1 {
		t.Fatalf("runs=%d, want 1 (concurrent requests must dedupe)", runs)
	}
	if hits != callers-1 {
		t.Fatalf("hits=%d, want %d", hits, callers-1)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent callers got different result pointers")
		}
	}
}

func TestSimulatePanicUnblocksDedupedWaiters(t *testing.T) {
	// Regression: a panic in the simulation leaf skipped close(ent.done),
	// deadlocking every deduped waiter on the same key forever. The close
	// now runs in a defer and the panic becomes the entry's error.
	e := New(2)
	started := make(chan struct{})
	release := make(chan struct{})
	e.simFn = func(platform.Kind, config.Config, *dataset.Instance, int, int) (*platform.Result, error) {
		close(started)
		<-release // hold the leaf until a waiter has deduped onto the key
		panic("boom in leaf")
	}
	inst := testInstance(t)
	cfg := config.Default()

	runnerErr := make(chan error, 1)
	go func() {
		_, err := e.Simulate(platform.BG2, cfg, inst, 2, 0)
		runnerErr <- err
	}()
	<-started

	waiterErr := make(chan error, 1)
	go func() {
		_, err := e.Simulate(platform.BG2, cfg, inst, 2, 0)
		waiterErr <- err
	}()
	// Let the waiter reach the memo before the leaf panics. Stats() holds
	// the engine lock, so once hits reflects the waiter it is parked on
	// ent.done.
	for {
		if _, hits := e.Stats(); hits == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	timeout := time.After(5 * time.Second)
	for _, ch := range []chan error{runnerErr, waiterErr} {
		select {
		case err := <-ch:
			if err == nil || !strings.Contains(err.Error(), "panicked") {
				t.Fatalf("err = %v, want stored panic error", err)
			}
		case <-timeout:
			t.Fatal("caller deadlocked after a panicking simulation leaf")
		}
	}
	// The worker slot must have been released too: the engine stays usable.
	done := make(chan struct{})
	go func() {
		e.Throttle(func() {})
		e.Throttle(func() {})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("worker slot leaked by the panicking leaf")
	}
}

func TestThrottleBoundsConcurrency(t *testing.T) {
	const width = 3
	e := New(width)
	var active, peak, over int32
	err := Go(func() error {
		_, err := Map(make([]int, 64), func(int) (struct{}, error) {
			e.Throttle(func() {
				n := atomic.AddInt32(&active, 1)
				for {
					p := atomic.LoadInt32(&peak)
					if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
						break
					}
				}
				if n > width {
					atomic.AddInt32(&over, 1)
				}
				atomic.AddInt32(&active, -1)
			})
			return struct{}{}, nil
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if over != 0 {
		t.Fatalf("observed %d over-width executions (peak %d > %d)", over, peak, width)
	}
}

func TestMapPreservesOrderAndLowestError(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	out, err := Map(items, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	e3 := errors.New("three")
	e5 := errors.New("five")
	_, err = Map(items, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, e3
		case 5:
			return 0, e5
		}
		return i, nil
	})
	if !errors.Is(err, e3) {
		t.Fatalf("err = %v, want lowest-indexed failure %v", err, e3)
	}
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if w := New(0).Workers(); w <= 0 {
		t.Fatalf("Workers = %d", w)
	}
	if w := New(5).Workers(); w != 5 {
		t.Fatalf("Workers = %d, want 5", w)
	}
}
