package exp

import (
	"fmt"
	"sync"
)

// StageCache memoizes one pipeline stage of an experiment — dataset
// materialization, precomputed target frontiers, any expensive pure
// function of a key. Concurrent Do calls for the same key deduplicate:
// the first caller computes, the rest park on its completion. Results
// (including errors) are cached forever; keys must therefore capture
// every input the stage depends on.
type StageCache[K comparable, V any] struct {
	mu   sync.Mutex
	m    map[K]*stageEntry[V]
	hits uint64
	runs uint64
}

type stageEntry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewStageCache returns an empty cache.
func NewStageCache[K comparable, V any]() *StageCache[K, V] {
	return &StageCache[K, V]{m: make(map[K]*stageEntry[V])}
}

// Do returns the cached value for key, computing it with fn on first
// use. fn runs at most once per key across all goroutines; a panic in
// fn is converted into the entry's error (so parked waiters unblock)
// and then re-raised in the computing goroutine.
func (c *StageCache[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if ent, ok := c.m[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-ent.done
		return ent.val, ent.err
	}
	ent := &stageEntry[V]{done: make(chan struct{})}
	c.m[key] = ent
	c.runs++
	c.mu.Unlock()

	defer func() {
		if rec := recover(); rec != nil {
			ent.err = fmt.Errorf("exp: stage panicked: %v", rec)
			close(ent.done)
			panic(rec)
		}
		close(ent.done)
	}()
	ent.val, ent.err = fn()
	return ent.val, ent.err
}

// Stats returns how many stages were computed and how many calls were
// served from (or deduplicated onto) existing entries.
func (c *StageCache[K, V]) Stats() (runs, hits uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs, c.hits
}
