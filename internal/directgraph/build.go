package directgraph

import (
	"fmt"

	"beacongnn/internal/graph"
)

// PageAllocator hands out physical page numbers for DirectGraph pages.
// In the full system the FTL reserves physical blocks and exposes their
// pages here (Section VI-A); tests may use a simple counter.
type PageAllocator interface {
	// NextPage returns the next free physical page number.
	NextPage() (uint32, error)
}

// SeqAllocator allocates pages sequentially from Next. Because the
// flash geometry stripes consecutive page numbers across dies, this is
// also what spreads DirectGraph across the whole backend.
type SeqAllocator struct {
	Next  uint32
	Limit uint32 // exclusive; 0 = unlimited within uint32 range
}

// NextPage implements PageAllocator.
func (a *SeqAllocator) NextPage() (uint32, error) {
	if a.Limit != 0 && a.Next >= a.Limit {
		return 0, fmt.Errorf("directgraph: page allocator exhausted at %d", a.Limit)
	}
	p := a.Next
	a.Next++
	return p, nil
}

// Stats summarizes a build for Table IV.
type Stats struct {
	Nodes          int
	Edges          int64
	PrimaryPages   int
	SecondaryPages int
	UsedBytes      int64 // bytes actually occupied by sections
	TotalBytes     int64 // pages × page size
	RawBytes       int64 // neighbor lists (4 B/edge) + features (2 B/dim)
}

// InflationRatio returns (DirectGraph size − raw size) / raw size,
// the paper's Table IV metric.
func (s Stats) InflationRatio() float64 {
	if s.RawBytes == 0 {
		return 0
	}
	return float64(s.TotalBytes-s.RawBytes) / float64(s.RawBytes)
}

// Build is a constructed DirectGraph: the per-node plans/addresses plus,
// in materialized mode, the page images the simulated flash serves.
type Build struct {
	Layout Layout
	Plans  []NodePlan // indexed by node id
	Stats  Stats
	Pages  map[uint32][]byte // nil in layout-only mode
}

// NodeAddr returns node v's primary section address.
func (b *Build) NodeAddr(v graph.NodeID) Addr { return b.Plans[v].Primary }

// Clone deep-copies the build: plans (including their address slices)
// and page bytes. Relocation and fault-recovery remapping mutate a build
// in place; systems that share one materialized instance clone it first
// so concurrent experiments stay independent.
func (b *Build) Clone() *Build {
	c := &Build{Layout: b.Layout, Stats: b.Stats}
	c.Plans = make([]NodePlan, len(b.Plans))
	for i := range b.Plans {
		p := b.Plans[i]
		if p.Secondaries != nil {
			p.Secondaries = append([]Addr(nil), p.Secondaries...)
		}
		if p.SecOffsets != nil {
			p.SecOffsets = append([]int(nil), p.SecOffsets...)
		}
		c.Plans[i] = p
	}
	if b.Pages != nil {
		c.Pages = make(map[uint32][]byte, len(b.Pages))
		for pn, page := range b.Pages {
			c.Pages[pn] = append([]byte(nil), page...)
		}
	}
	return c
}

// PageNumbers returns the set of allocated physical pages, usable for
// the Section VI-E security verification.
func (b *Build) PageNumbers() map[uint32]bool {
	set := make(map[uint32]bool, len(b.Pages))
	for i := range b.Plans {
		p := &b.Plans[i]
		set[b.Layout.Page(p.Primary)] = true
		for _, s := range p.Secondaries {
			set[b.Layout.Page(s)] = true
		}
	}
	return set
}

// openPage tracks the shared page currently being filled.
type openPage struct {
	num      uint32
	used     int
	sections int
	valid    bool
}

func (op *openPage) gap(pageSize int) int { return pageSize - op.used }

type builder struct {
	layout Layout
	alloc  PageAllocator
	plans  []NodePlan
	stats  Stats

	openPrimary   openPage
	openSecondary openPage
}

func (b *builder) newPage(primary bool) (uint32, error) {
	n, err := b.alloc.NextPage()
	if err != nil {
		return 0, err
	}
	if primary {
		b.stats.PrimaryPages++
	} else {
		b.stats.SecondaryPages++
	}
	return n, nil
}

// placeShared reserves size bytes in the open shared page of the given
// kind, opening a fresh page if needed, and returns the section address
// plus byte offset.
func (b *builder) placeShared(size int, primary bool) (Addr, int, error) {
	op := &b.openPrimary
	if !primary {
		op = &b.openSecondary
	}
	if !op.valid || op.gap(b.layout.PageSize) < size || op.sections >= b.layout.MaxSectionsPerPage() {
		n, err := b.newPage(primary)
		if err != nil {
			return 0, 0, err
		}
		*op = openPage{num: n, valid: true}
	}
	addr := b.layout.MakeAddr(op.num, op.sections)
	off := op.used
	op.used += size
	op.sections++
	return addr, off, nil
}

// planBudget sizes a node's primary section under a byte budget,
// spilling neighbors that do not fit into secondary sections. It
// implements the paper's "a section grows until it fulfills its page"
// policy generalized to shared pages: the primary consumes as much of
// the budget as 4-byte alignment allows. ok is false when even an
// inline-free primary (header + secondary pointers + feature) exceeds
// the budget.
func (l Layout) planBudget(degree, budget int) (p NodePlan, ok bool) {
	p = NodePlan{Degree: degree, FullSecCount: l.SecondaryCapacity()}
	flat := primaryHeaderLen + l.FeatureBytes() + degree*addrLen
	if flat <= budget {
		p.InlineCount = degree
		p.PrimarySize = flat
		return p, true
	}
	cs := l.SecondaryCapacity()
	for s := 1; ; s++ {
		fixed := primaryHeaderLen + s*addrLen + l.FeatureBytes()
		if fixed > budget {
			return p, false
		}
		ci := (budget - fixed) / addrLen
		rem := degree - ci
		if rem > s*cs {
			continue
		}
		if rem <= 0 {
			// Minimal s guarantees a non-empty final section (the flat
			// case above catches rem ≤ 0 at s = 0).
			return p, false
		}
		p.InlineCount = ci
		p.SecCount = s
		p.PrimarySize = fixed + ci*addrLen
		p.LastSecCount = rem - (s-1)*cs
		return p, true
	}
}

// assign runs the metadata pass of Algorithm 1 over a degree sequence,
// deciding every section's size and physical placement.
func (b *builder) assign(degrees []int) error {
	l := b.layout
	b.plans = make([]NodePlan, len(degrees))
	for v, deg := range degrees {
		var plan NodePlan
		flat := primaryHeaderLen + l.FeatureBytes() + deg*addrLen
		switch {
		case flat > l.PageSize:
			// Dedicated full primary page with spill to secondaries.
			var ok bool
			plan, ok = l.planBudget(deg, l.PageSize)
			if !ok {
				return fmt.Errorf("directgraph: node %d degree %d overflows a %d B page's secondary address list", v, deg, l.PageSize)
			}
			n, err := b.newPage(true)
			if err != nil {
				return err
			}
			plan.Primary = l.MakeAddr(n, 0)
			plan.PrimaryOffset = 0
			plan.DedicatedPage = true
		default:
			// Shared page: place whole if it fits the open page's gap;
			// otherwise trim the section to fill the gap exactly and
			// spill the remainder (keeps primary pages ~100 % utilized,
			// which is how Table IV's low inflation arises).
			op := &b.openPrimary
			gap := op.gap(l.PageSize)
			if !op.valid || op.sections >= l.MaxSectionsPerPage() {
				gap = 0
			}
			if flat <= gap {
				plan, _ = l.planBudget(deg, flat)
			} else if trimmed, ok := l.planBudget(deg, gap); ok && gap > 0 {
				plan = trimmed
			} else {
				// Start a fresh page; the whole section fits there.
				n, err := b.newPage(true)
				if err != nil {
					return err
				}
				*op = openPage{num: n, valid: true}
				plan, _ = l.planBudget(deg, flat)
			}
			var err error
			plan.Primary, plan.PrimaryOffset, err = b.placeSharedPrimary(plan.PrimarySize)
			if err != nil {
				return err
			}
		}
		b.stats.UsedBytes += int64(plan.PrimarySize)

		// Secondary sections: all but the last fill dedicated pages; the
		// final partial section shares secondary pages first-fit.
		if plan.SecCount > 0 {
			plan.Secondaries = make([]Addr, plan.SecCount)
			plan.SecOffsets = make([]int, plan.SecCount)
			for s := 0; s < plan.SecCount; s++ {
				count := plan.FullSecCount
				if s == plan.SecCount-1 {
					count = plan.LastSecCount
				}
				size := secondaryHeaderLen + count*addrLen
				if s < plan.SecCount-1 || size == l.PageSize {
					n, err := b.newPage(false)
					if err != nil {
						return err
					}
					plan.Secondaries[s] = l.MakeAddr(n, 0)
					plan.SecOffsets[s] = 0
				} else {
					var err error
					plan.Secondaries[s], plan.SecOffsets[s], err = b.placeShared(size, false)
					if err != nil {
						return err
					}
				}
				b.stats.UsedBytes += int64(size)
			}
		}
		b.plans[v] = plan
		b.stats.Edges += int64(deg)
	}
	b.stats.Nodes = len(degrees)
	pages := b.stats.PrimaryPages + b.stats.SecondaryPages
	b.stats.TotalBytes = int64(pages) * int64(b.layout.PageSize)
	b.stats.RawBytes = b.stats.Edges*4 + int64(b.stats.Nodes)*int64(b.layout.FeatureBytes())
	return nil
}

// placeSharedPrimary places an already-sized primary section in the open
// primary page (assign has ensured it fits).
func (b *builder) placeSharedPrimary(size int) (Addr, int, error) {
	return b.placeShared(size, true)
}

// BuildLayout runs only Algorithm 1's metadata pass over a degree
// sequence — enough to compute addresses and Table IV inflation at full
// dataset scale without materializing page bytes.
func BuildLayout(l Layout, degrees []int, alloc PageAllocator) (*Build, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	b := &builder{layout: l, alloc: alloc}
	if err := b.assign(degrees); err != nil {
		return nil, err
	}
	return &Build{Layout: l, Plans: b.plans, Stats: b.stats}, nil
}

// BuildGraph runs the full Algorithm 1: metadata pass, then section
// serialization into page images (the host-buffer construction of
// Section VI-B). The returned Build's Pages hold what the flushed flash
// blocks would contain.
func BuildGraph(l Layout, g *graph.Graph, alloc PageAllocator) (*Build, error) {
	if l.FeatureDim != g.FeatureDim() {
		return nil, fmt.Errorf("directgraph: layout dim %d != graph dim %d", l.FeatureDim, g.FeatureDim())
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	degrees := make([]int, g.NumNodes())
	for v := range degrees {
		degrees[v] = g.Degree(graph.NodeID(v))
	}
	b := &builder{layout: l, alloc: alloc}
	if err := b.assign(degrees); err != nil {
		return nil, err
	}
	build := &Build{Layout: l, Plans: b.plans, Stats: b.stats, Pages: make(map[uint32][]byte)}

	page := func(n uint32) []byte {
		p, ok := build.Pages[n]
		if !ok {
			p = make([]byte, l.PageSize)
			build.Pages[n] = p
		}
		return p
	}
	write := func(a Addr, off int, data []byte) error {
		p := page(l.Page(a))
		if off+len(data) > l.PageSize {
			return fmt.Errorf("directgraph: page %d overflow at offset %d", l.Page(a), off)
		}
		copy(p[off:], data)
		return nil
	}

	for v := 0; v < g.NumNodes(); v++ {
		plan := &b.plans[v]
		nbrs := g.Neighbors(graph.NodeID(v))
		// Primary section.
		buf := make([]byte, plan.PrimarySize)
		buf[0] = SectionTypePrimary
		putU16(buf, 2, plan.PrimarySize)
		putU32(buf, 4, uint32(v))
		putU32(buf, 8, uint32(plan.Degree))
		putU16(buf, 12, plan.InlineCount)
		putU16(buf, 14, plan.SecCount)
		off := primaryHeaderLen
		for _, sa := range plan.Secondaries {
			putU32(buf, off, uint32(sa))
			off += addrLen
		}
		for _, fb := range g.FeatureBits(graph.NodeID(v)) {
			putU16(buf, off, int(fb))
			off += 2
		}
		for i := 0; i < plan.InlineCount; i++ {
			putU32(buf, off, uint32(b.plans[nbrs[i]].Primary))
			off += addrLen
		}
		if err := write(plan.Primary, plan.PrimaryOffset, buf); err != nil {
			return nil, err
		}
		// Secondary sections.
		base := plan.InlineCount
		for s := 0; s < plan.SecCount; s++ {
			count := plan.FullSecCount
			if s == plan.SecCount-1 {
				count = plan.LastSecCount
			}
			sec := make([]byte, secondaryHeaderLen+count*addrLen)
			sec[0] = SectionTypeSecondary
			putU16(sec, 2, len(sec))
			putU32(sec, 4, uint32(v))
			putU32(sec, 8, uint32(base))
			putU16(sec, 12, count)
			so := secondaryHeaderLen
			for i := 0; i < count; i++ {
				putU32(sec, so, uint32(b.plans[nbrs[base+i]].Primary))
				so += addrLen
			}
			if err := write(plan.Secondaries[s], plan.SecOffsets[s], sec); err != nil {
				return nil, err
			}
			base += count
		}
	}
	return build, nil
}
