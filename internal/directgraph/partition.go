package directgraph

import (
	"fmt"

	"beacongnn/internal/graph"
)

// Shard is one device's slice of a partitioned DirectGraph: a
// layout-only Build over the nodes the shard owns, plus the mapping
// from global node id to the shard-local plan index. Page numbers are
// shard-local — each device allocates its own flash address space.
type Shard struct {
	Build *Build
	Nodes []graph.NodeID // owned nodes, ascending global id
}

// Partitioned is a DirectGraph split across N shards by an ownership
// function. LocalIndex[v] is node v's plan index inside its owner's
// Build; Owner[v] names the shard.
type Partitioned struct {
	Shards     []Shard
	Owner      []int32
	LocalIndex []int32
}

// LocalPlan returns node v's placement plan on its owning shard.
func (p *Partitioned) LocalPlan(v graph.NodeID) *NodePlan {
	return &p.Shards[p.Owner[v]].Build.Plans[p.LocalIndex[v]]
}

// ShardBytes returns shard s's on-flash footprint (pages × page size) —
// the volume a failure has to re-replicate onto survivors.
func (p *Partitioned) ShardBytes(s int) int64 { return p.Shards[s].Build.Stats.TotalBytes }

// BuildPartitioned splits a degree sequence across shards by the owner
// function and runs the layout-only builder once per shard, preserving
// ascending node order inside each shard so builds are deterministic in
// (degrees, owner, shards). Owner must return a value in [0, shards)
// for every node; each node lands on exactly one shard by construction.
func BuildPartitioned(l Layout, degrees []int, shards int, owner func(graph.NodeID) int) (*Partitioned, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("directgraph: shard count %d must be positive", shards)
	}
	p := &Partitioned{
		Shards:     make([]Shard, shards),
		Owner:      make([]int32, len(degrees)),
		LocalIndex: make([]int32, len(degrees)),
	}
	perShard := make([][]int, shards)
	for v, deg := range degrees {
		s := owner(graph.NodeID(v))
		if s < 0 || s >= shards {
			return nil, fmt.Errorf("directgraph: owner(%d) = %d outside [0, %d)", v, s, shards)
		}
		p.Owner[v] = int32(s)
		p.LocalIndex[v] = int32(len(perShard[s]))
		perShard[s] = append(perShard[s], deg)
		p.Shards[s].Nodes = append(p.Shards[s].Nodes, graph.NodeID(v))
	}
	for s := range p.Shards {
		b, err := BuildLayout(l, perShard[s], &SeqAllocator{})
		if err != nil {
			return nil, fmt.Errorf("directgraph: shard %d: %w", s, err)
		}
		p.Shards[s].Build = b
	}
	return p, nil
}
