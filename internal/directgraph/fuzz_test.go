package directgraph

import (
	"testing"

	"beacongnn/internal/graph"
)

// FuzzFindSection hardens the page decoder — the exact code path the
// on-die sampler runs against whatever bytes sit in the cache register.
// It must reject arbitrary corruption with an error, never a panic or
// an out-of-bounds read (Section VI-E's "stop immediately" behaviour).
func FuzzFindSection(f *testing.F) {
	l := Layout{PageSize: 1024, FeatureDim: 4}
	g, err := graph.Generate(graph.GenSpec{Nodes: 60, AvgDegree: 8, FeatureDim: 4, PowerLaw: 2.0, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	b, err := BuildGraph(l, g, &SeqAllocator{})
	if err != nil {
		f.Fatal(err)
	}
	for pn := range b.Pages {
		f.Add(b.Pages[pn], 0)
		break
	}
	f.Add(make([]byte, 1024), 3)
	f.Fuzz(func(t *testing.T, page []byte, idx int) {
		if len(page) != l.PageSize {
			// Wrong-size pages must be rejected cleanly too.
			if _, err := FindSection(l, page, idx&0xF); err == nil {
				t.Fatal("wrong-size page accepted")
			}
			return
		}
		sec, err := FindSection(l, page, idx&0xF)
		if err != nil {
			return
		}
		// Anything accepted must be internally consistent.
		if sec.Length < commonHeaderLen || sec.StartOffset+sec.Length > l.PageSize {
			t.Fatalf("accepted section with bad bounds: %+v", sec)
		}
		switch sec.Type {
		case SectionTypePrimary:
			if len(sec.Inline) != sec.InlineCount || len(sec.FeatureBits) != l.FeatureDim {
				t.Fatalf("inconsistent primary decode: %+v", sec)
			}
		case SectionTypeSecondary:
			if len(sec.Entries) != sec.Count {
				t.Fatalf("inconsistent secondary decode: %+v", sec)
			}
		default:
			t.Fatalf("accepted unknown type %d", sec.Type)
		}
	})
}

// FuzzRelocate round-trips mutated pages through the wear-levelling
// address patcher. Relocation runs inside firmware against whatever
// bytes flash returns, so it must reject corruption with an error (never
// a panic or out-of-bounds write), and on pages it does accept it must
// preserve the section count and keep every section decodable at the
// shifted location.
func FuzzRelocate(f *testing.F) {
	l := Layout{PageSize: 1024, FeatureDim: 4}
	g, err := graph.Generate(graph.GenSpec{Nodes: 60, AvgDegree: 8, FeatureDim: 4, PowerLaw: 2.0, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	b, err := BuildGraph(l, g, &SeqAllocator{})
	if err != nil {
		f.Fatal(err)
	}
	for pn := range b.Pages {
		f.Add(b.Pages[pn], uint32(64))
		break
	}
	f.Add(make([]byte, 1024), uint32(1))
	f.Fuzz(func(t *testing.T, page []byte, delta uint32) {
		delta %= 1 << 20 // keep page<<SectionBits from wrapping uint32
		cp := append([]byte(nil), page...)
		fb := &Build{Layout: l, Pages: map[uint32][]byte{7: cp}}
		before, beforeErr := SectionsInPage(l, cp)
		if err := Relocate(fb, delta); err != nil {
			return // rejected cleanly: fine, whatever the corruption was
		}
		moved, ok := fb.Pages[7+delta]
		if !ok {
			t.Fatalf("relocated page missing from key %d", 7+delta)
		}
		if beforeErr == nil {
			after, err := SectionsInPage(l, moved)
			if err != nil {
				t.Fatalf("accepted page undecodable after relocation: %v", err)
			}
			if after != before {
				t.Fatalf("section count changed %d -> %d", before, after)
			}
			for i := 0; i < after; i++ {
				if _, err := FindSection(l, moved, i); err != nil {
					t.Fatalf("section %d undecodable after relocation: %v", i, err)
				}
			}
		}
	})
}

// FuzzSectionsInPage must likewise never panic on corrupt pages.
func FuzzSectionsInPage(f *testing.F) {
	l := Layout{PageSize: 512, FeatureDim: 2}
	f.Add(make([]byte, 512))
	f.Fuzz(func(t *testing.T, page []byte) {
		if len(page) != l.PageSize {
			return
		}
		n, _ := SectionsInPage(l, page)
		if n < 0 || n > l.PageSize/commonHeaderLen {
			t.Fatalf("implausible section count %d", n)
		}
	})
}
