package directgraph

import (
	"testing"

	"beacongnn/internal/graph"
)

func partLayout() Layout { return Layout{PageSize: 4096, FeatureDim: 64} }

func TestBuildPartitionedCoversEveryNodeOnce(t *testing.T) {
	degrees := []int{3, 0, 250, 12, 7, 1, 90, 4, 4, 33}
	const shards = 3
	p, err := BuildPartitioned(partLayout(), degrees, shards, func(v graph.NodeID) int {
		return int(v) % shards
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]int, len(degrees))
	for s := range p.Shards {
		for i, v := range p.Shards[s].Nodes {
			seen[v]++
			if p.Owner[v] != int32(s) {
				t.Fatalf("node %d listed on shard %d but Owner says %d", v, s, p.Owner[v])
			}
			if p.LocalIndex[v] != int32(i) {
				t.Fatalf("node %d local index %d, want %d", v, p.LocalIndex[v], i)
			}
		}
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("node %d appears on %d shards", v, n)
		}
	}
	for v, deg := range degrees {
		if got := p.LocalPlan(graph.NodeID(v)).Degree; got != deg {
			t.Fatalf("node %d local plan degree %d, want %d", v, got, deg)
		}
	}
}

// A shard that owns nothing must still build (empty layout), not error —
// hash placement on tiny graphs leaves shards empty.
func TestBuildPartitionedEmptyShard(t *testing.T) {
	degrees := []int{5, 5}
	p, err := BuildPartitioned(partLayout(), degrees, 4, func(v graph.NodeID) int { return int(v) })
	if err != nil {
		t.Fatal(err)
	}
	for s := 2; s < 4; s++ {
		if n := len(p.Shards[s].Nodes); n != 0 {
			t.Fatalf("shard %d should be empty, owns %d nodes", s, n)
		}
		if p.ShardBytes(s) != 0 {
			t.Fatalf("empty shard %d reports %d bytes", s, p.ShardBytes(s))
		}
	}
}

func TestBuildPartitionedRejectsBadOwner(t *testing.T) {
	degrees := []int{1, 2, 3}
	if _, err := BuildPartitioned(partLayout(), degrees, 2, func(graph.NodeID) int { return 2 }); err == nil {
		t.Fatal("out-of-range owner accepted")
	}
	if _, err := BuildPartitioned(partLayout(), degrees, 0, func(graph.NodeID) int { return 0 }); err == nil {
		t.Fatal("zero shards accepted")
	}
}

// The per-shard layouts must account for exactly the same nodes and
// edges as one monolithic layout over the same degree sequence.
func TestBuildPartitionedConservesStats(t *testing.T) {
	degrees := make([]int, 300)
	for i := range degrees {
		degrees[i] = (i * 7) % 97
	}
	whole, err := BuildLayout(partLayout(), degrees, &SeqAllocator{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildPartitioned(partLayout(), degrees, 5, func(v graph.NodeID) int { return int(v) % 5 })
	if err != nil {
		t.Fatal(err)
	}
	var nodes int
	var edges int64
	for s := range p.Shards {
		nodes += p.Shards[s].Build.Stats.Nodes
		edges += p.Shards[s].Build.Stats.Edges
	}
	if nodes != whole.Stats.Nodes || edges != whole.Stats.Edges {
		t.Fatalf("partitioned stats %d nodes/%d edges, monolithic %d/%d",
			nodes, edges, whole.Stats.Nodes, whole.Stats.Edges)
	}
}
