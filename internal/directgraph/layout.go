// Package directgraph implements the DirectGraph GNN storage format of
// Section IV-A: graph structure and feature table serialized into flash
// pages and indexed directly by flash physical addresses, so neighbor
// sampling needs no host-side or FTL address translation.
//
// Layout (documented here because the paper gives fields, not byte
// offsets):
//
//	Section address (4 bytes): high bits = physical page number, low
//	bits = in-page section index. For a 1 TB SSD with 4 KB pages that is
//	28 + 4 bits, exactly as Section IV-A describes; the split scales
//	with page size (log2(pageSize) − 8 section bits).
//
//	Every section starts with an 8-byte common header:
//	    [0]   type (1 = primary, 2 = secondary, 0 = end of page)
//	    [1]   reserved
//	    [2:4] section length in bytes, little endian, incl. header
//	    [4:8] node id (uint32)
//
//	Primary section body:
//	    [8:12]  total neighbor count of the node
//	    [12:14] inline neighbor count (stored in this section)
//	    [14:16] secondary section count S
//	    S × 4   secondary section addresses
//	    dim × 2 FP16 feature vector
//	    CI × 4  inline neighbor primary-section addresses
//
//	Secondary section body:
//	    [8:12]  base index: global neighbor index of the first entry
//	    [12:14] entry count
//	    [14:16] reserved
//	    n × 4   neighbor primary-section addresses
//
// All secondary sections of a node except the last hold exactly the
// full-page capacity, so the die-level sampler can locate the section
// covering a sampled global index with one division — no per-section
// range table is needed in the primary section.
package directgraph

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Addr is a DirectGraph section address: page number plus in-page
// section index, packed as Section IV-A describes.
type Addr uint32

// InvalidAddr marks an unset address.
const InvalidAddr Addr = 0xFFFFFFFF

// Header sizes in bytes.
const (
	commonHeaderLen    = 8
	primaryHeaderLen   = 16 // common + count/inline/secCount fields
	secondaryHeaderLen = 16 // common + base/count/reserved fields
	addrLen            = 4
	// SectionTypePrimary and friends are the header type codes.
	SectionTypeEnd       = 0
	SectionTypePrimary   = 1
	SectionTypeSecondary = 2
)

// Layout fixes the geometry-dependent constants of a DirectGraph.
type Layout struct {
	PageSize   int // flash page size in bytes
	FeatureDim int // FP16 feature vector length
}

// SectionBits returns the number of address bits used for in-page
// section indexing: 4 for 4 KB pages, scaling with page size.
func (l Layout) SectionBits() uint {
	return uint(bits.Len(uint(l.PageSize))) - 1 - 8 // log2(pageSize) - 8
}

// MaxSectionsPerPage returns how many sections one page may hold.
func (l Layout) MaxSectionsPerPage() int { return 1 << l.SectionBits() }

// MakeAddr packs a page number and section index.
func (l Layout) MakeAddr(page uint32, section int) Addr {
	return Addr(page<<l.SectionBits() | uint32(section))
}

// Page extracts the physical page number from an address.
func (l Layout) Page(a Addr) uint32 { return uint32(a) >> l.SectionBits() }

// Section extracts the in-page section index from an address.
func (l Layout) Section(a Addr) int {
	return int(uint32(a) & (1<<l.SectionBits() - 1))
}

// FeatureBytes returns the serialized feature vector size.
func (l Layout) FeatureBytes() int { return l.FeatureDim * 2 }

// SecondaryCapacity returns how many neighbor addresses a full-page
// secondary section holds.
func (l Layout) SecondaryCapacity() int {
	return (l.PageSize - secondaryHeaderLen) / addrLen
}

// Validate reports whether the layout is usable.
func (l Layout) Validate() error {
	switch {
	case l.PageSize < 512 || l.PageSize&(l.PageSize-1) != 0:
		return fmt.Errorf("directgraph: page size %d must be a power of two ≥ 512", l.PageSize)
	case l.FeatureDim < 0:
		return fmt.Errorf("directgraph: negative feature dim %d", l.FeatureDim)
	case primaryHeaderLen+l.FeatureBytes() >= l.PageSize:
		return fmt.Errorf("directgraph: feature vector (%d B) cannot fit a %d B page", l.FeatureBytes(), l.PageSize)
	}
	return nil
}

// NodePlan is the per-node result of Algorithm 1's metadata pass: how a
// node's primary and secondary sections are sized and addressed.
type NodePlan struct {
	Degree        int
	InlineCount   int  // neighbors stored in the primary section
	SecCount      int  // number of secondary sections
	Primary       Addr // primary section address
	PrimaryOffset int  // byte offset of the primary section in its page
	Secondaries   []Addr
	SecOffsets    []int
	PrimarySize   int // bytes
	LastSecCount  int // entries in the final (possibly partial) secondary
	FullSecCount  int // entries in each non-final secondary (= SecondaryCapacity)
	DedicatedPage bool
}

// SecondaryIndexFor returns which secondary section (0-based) covers the
// sampled global neighbor index, given the node's plan. The caller must
// ensure idx ≥ InlineCount.
func (p *NodePlan) SecondaryIndexFor(idx int) int {
	return (idx - p.InlineCount) / p.FullSecCount
}

func putU16(b []byte, off int, v int)    { binary.LittleEndian.PutUint16(b[off:], uint16(v)) }
func putU32(b []byte, off int, v uint32) { binary.LittleEndian.PutUint32(b[off:], v) }
func getU16(b []byte, off int) int       { return int(binary.LittleEndian.Uint16(b[off:])) }
func getU32(b []byte, off int) uint32    { return binary.LittleEndian.Uint32(b[off:]) }
