package directgraph

import (
	"errors"
	"fmt"
)

// Errors returned by the decoder; the on-die sampler maps these to the
// "stop immediately and return control to SSD firmware" behaviour of
// Section VI-E.
var (
	ErrSectionNotFound = errors.New("directgraph: section not found in page")
	ErrBadSectionType  = errors.New("directgraph: unexpected section type")
	ErrCorruptSection  = errors.New("directgraph: corrupt section encoding")
)

// Section is a decoded page section. For primary sections the neighbor
// addresses cover only the inline part; secondary addresses and the
// total count allow the sampler to reach the remainder.
type Section struct {
	Type        byte
	Length      int
	NodeID      uint32
	StartOffset int // byte offset inside the page

	// Primary fields.
	NeighborCount int
	InlineCount   int
	Secondaries   []Addr
	FeatureBits   []uint16 // aliases nothing; copied out
	Inline        []Addr

	// Secondary fields.
	BaseIndex int
	Count     int
	Entries   []Addr
}

// FindSection walks the page's section chain to the idx-th section and
// decodes it — exactly what the die-level sampler's section iterator does
// (Fig. 11). It validates headers as it goes (Section VI-E runtime check).
func FindSection(l Layout, page []byte, idx int) (*Section, error) {
	if len(page) != l.PageSize {
		return nil, fmt.Errorf("%w: page length %d != %d", ErrCorruptSection, len(page), l.PageSize)
	}
	off := 0
	for i := 0; ; i++ {
		if off+commonHeaderLen > l.PageSize {
			return nil, ErrSectionNotFound
		}
		typ := page[off]
		if typ == SectionTypeEnd {
			return nil, ErrSectionNotFound
		}
		if typ != SectionTypePrimary && typ != SectionTypeSecondary {
			return nil, fmt.Errorf("%w: type byte %#x at offset %d", ErrBadSectionType, typ, off)
		}
		length := getU16(page, off+2)
		if length < commonHeaderLen || off+length > l.PageSize {
			return nil, fmt.Errorf("%w: length %d at offset %d", ErrCorruptSection, length, off)
		}
		if i == idx {
			return decodeSection(l, page, off, typ, length)
		}
		off += length
	}
}

func decodeSection(l Layout, page []byte, off int, typ byte, length int) (*Section, error) {
	s := &Section{Type: typ, Length: length, NodeID: getU32(page, off+4), StartOffset: off}
	switch typ {
	case SectionTypePrimary:
		if length < primaryHeaderLen {
			return nil, fmt.Errorf("%w: primary too short (%d)", ErrCorruptSection, length)
		}
		s.NeighborCount = int(getU32(page, off+8))
		s.InlineCount = getU16(page, off+12)
		secCount := getU16(page, off+14)
		need := primaryHeaderLen + secCount*addrLen + l.FeatureBytes() + s.InlineCount*addrLen
		if need != length {
			return nil, fmt.Errorf("%w: primary length %d, computed %d", ErrCorruptSection, length, need)
		}
		p := off + primaryHeaderLen
		s.Secondaries = make([]Addr, secCount)
		for i := range s.Secondaries {
			s.Secondaries[i] = Addr(getU32(page, p))
			p += addrLen
		}
		s.FeatureBits = make([]uint16, l.FeatureDim)
		for i := range s.FeatureBits {
			s.FeatureBits[i] = uint16(getU16(page, p))
			p += 2
		}
		s.Inline = make([]Addr, s.InlineCount)
		for i := range s.Inline {
			s.Inline[i] = Addr(getU32(page, p))
			p += addrLen
		}
	case SectionTypeSecondary:
		if length < secondaryHeaderLen {
			return nil, fmt.Errorf("%w: secondary too short (%d)", ErrCorruptSection, length)
		}
		s.BaseIndex = int(getU32(page, off+8))
		s.Count = getU16(page, off+12)
		if secondaryHeaderLen+s.Count*addrLen != length {
			return nil, fmt.Errorf("%w: secondary length %d, count %d", ErrCorruptSection, length, s.Count)
		}
		p := off + secondaryHeaderLen
		s.Entries = make([]Addr, s.Count)
		for i := range s.Entries {
			s.Entries[i] = Addr(getU32(page, p))
			p += addrLen
		}
	}
	return s, nil
}

// DecodeAll walks the page's section chain once and decodes every
// section, in chain order. Pages are immutable between relocations, so
// simulators cache this result instead of re-walking the chain on every
// sampler invocation (FindSection decodes afresh each call).
func DecodeAll(l Layout, page []byte) ([]*Section, error) {
	if len(page) != l.PageSize {
		return nil, fmt.Errorf("%w: page length %d != %d", ErrCorruptSection, len(page), l.PageSize)
	}
	var out []*Section
	off := 0
	for off+commonHeaderLen <= l.PageSize {
		typ := page[off]
		if typ == SectionTypeEnd {
			break
		}
		if typ != SectionTypePrimary && typ != SectionTypeSecondary {
			return nil, fmt.Errorf("%w: type byte %#x at offset %d", ErrBadSectionType, typ, off)
		}
		length := getU16(page, off+2)
		if length < commonHeaderLen || off+length > l.PageSize {
			return nil, fmt.Errorf("%w: length %d at offset %d", ErrCorruptSection, length, off)
		}
		s, err := decodeSection(l, page, off, typ, length)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		off += length
	}
	return out, nil
}

// SectionsInPage counts the valid sections in a page.
func SectionsInPage(l Layout, page []byte) (int, error) {
	if len(page) != l.PageSize {
		return 0, fmt.Errorf("%w: page length %d != %d", ErrCorruptSection, len(page), l.PageSize)
	}
	n := 0
	off := 0
	for off+commonHeaderLen <= l.PageSize {
		typ := page[off]
		if typ == SectionTypeEnd {
			break
		}
		if typ != SectionTypePrimary && typ != SectionTypeSecondary {
			return n, fmt.Errorf("%w: type %#x", ErrBadSectionType, typ)
		}
		length := getU16(page, off+2)
		if length < commonHeaderLen || off+length > l.PageSize {
			return n, fmt.Errorf("%w: length %d", ErrCorruptSection, length)
		}
		n++
		off += length
	}
	return n, nil
}

// Verify performs the firmware's security validation of Section VI-E on
// a materialized build: every embedded section address (inline neighbors,
// secondary pointers) must land inside the set of pages allocated to this
// DirectGraph, and every referenced section must decode as the expected
// type. It returns the first violation found.
func Verify(b *Build) error {
	if b.Pages == nil {
		return errors.New("directgraph: Verify requires a materialized build")
	}
	allowed := b.PageNumbers()
	check := func(a Addr, wantType byte) error {
		pn := b.Layout.Page(a)
		if !allowed[pn] {
			return fmt.Errorf("directgraph: address %#x escapes allocated blocks (page %d)", uint32(a), pn)
		}
		page, ok := b.Pages[pn]
		if !ok {
			return fmt.Errorf("directgraph: address %#x points to unwritten page %d", uint32(a), pn)
		}
		sec, err := FindSection(b.Layout, page, b.Layout.Section(a))
		if err != nil {
			return fmt.Errorf("directgraph: address %#x: %w", uint32(a), err)
		}
		if sec.Type != wantType {
			return fmt.Errorf("directgraph: address %#x has type %d, want %d", uint32(a), sec.Type, wantType)
		}
		return nil
	}
	for v := range b.Plans {
		plan := &b.Plans[v]
		sec, err := b.section(plan.Primary)
		if err != nil {
			return fmt.Errorf("node %d primary: %w", v, err)
		}
		for _, a := range sec.Inline {
			if err := check(a, SectionTypePrimary); err != nil {
				return fmt.Errorf("node %d inline: %w", v, err)
			}
		}
		for _, sa := range sec.Secondaries {
			if err := check(sa, SectionTypeSecondary); err != nil {
				return fmt.Errorf("node %d secondary ptr: %w", v, err)
			}
			ss, err := b.section(sa)
			if err != nil {
				return err
			}
			for _, a := range ss.Entries {
				if err := check(a, SectionTypePrimary); err != nil {
					return fmt.Errorf("node %d secondary entry: %w", v, err)
				}
			}
		}
	}
	return nil
}

// section decodes the section at address a from the build's pages.
func (b *Build) section(a Addr) (*Section, error) {
	page, ok := b.Pages[b.Layout.Page(a)]
	if !ok {
		return nil, fmt.Errorf("directgraph: page %d not materialized", b.Layout.Page(a))
	}
	return FindSection(b.Layout, page, b.Layout.Section(a))
}

// ReadSection is the exported accessor used by the simulated samplers.
func (b *Build) ReadSection(a Addr) (*Section, error) { return b.section(a) }
