package directgraph

import (
	"strings"
	"testing"
	"testing/quick"

	"beacongnn/internal/graph"
)

func layout4k(dim int) Layout { return Layout{PageSize: 4096, FeatureDim: dim} }

func TestSectionBitsMatchPaper(t *testing.T) {
	// Section IV-A: 1 TB SSD with 4 KB pages → 28 page bits + 4 section
	// bits; larger pages get more section bits.
	cases := []struct {
		pageSize int
		bits     uint
	}{{2048, 3}, {4096, 4}, {8192, 5}, {16384, 6}}
	for _, c := range cases {
		l := Layout{PageSize: c.pageSize, FeatureDim: 8}
		if got := l.SectionBits(); got != c.bits {
			t.Errorf("page %d: section bits = %d, want %d", c.pageSize, got, c.bits)
		}
	}
}

func TestAddrPacking(t *testing.T) {
	l := layout4k(8)
	a := l.MakeAddr(123456, 9)
	if l.Page(a) != 123456 || l.Section(a) != 9 {
		t.Fatalf("round trip: page=%d section=%d", l.Page(a), l.Section(a))
	}
}

func TestAddrPackingProperty(t *testing.T) {
	l := Layout{PageSize: 8192, FeatureDim: 4}
	f := func(page uint32, secRaw uint8) bool {
		page &= (1 << 27) - 1 // stay in range for 5 section bits
		sec := int(secRaw) % l.MaxSectionsPerPage()
		a := l.MakeAddr(page, sec)
		return l.Page(a) == page && l.Section(a) == sec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutValidate(t *testing.T) {
	if err := (Layout{PageSize: 4096, FeatureDim: 128}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Layout{
		{PageSize: 1000, FeatureDim: 4},    // not power of two
		{PageSize: 256, FeatureDim: 4},     // too small
		{PageSize: 4096, FeatureDim: -1},   // negative dim
		{PageSize: 4096, FeatureDim: 3000}, // feature larger than page
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("layout %+v validated", l)
		}
	}
}

func TestPlanBudgetAllInline(t *testing.T) {
	l := layout4k(16) // feature 32 B; header 16; page 4096
	p, ok := l.planBudget(100, l.PageSize)
	if !ok {
		t.Fatal("planBudget rejected a small node")
	}
	if p.SecCount != 0 || p.InlineCount != 100 {
		t.Fatalf("plan = %+v, want all inline", p)
	}
	if p.PrimarySize != 16+32+400 {
		t.Fatalf("primary size = %d", p.PrimarySize)
	}
}

func TestPlanBudgetWithSecondaries(t *testing.T) {
	l := layout4k(16)
	deg := 5000 // 20000 B of neighbors: needs secondaries
	p, ok := l.planBudget(deg, l.PageSize)
	if !ok {
		t.Fatal("planBudget rejected")
	}
	if p.SecCount == 0 {
		t.Fatalf("plan = %+v, want secondaries", p)
	}
	total := p.InlineCount + (p.SecCount-1)*p.FullSecCount + p.LastSecCount
	if total != deg {
		t.Fatalf("neighbors accounted %d, want %d", total, deg)
	}
	if p.LastSecCount <= 0 || p.LastSecCount > p.FullSecCount {
		t.Fatalf("last section count %d out of range", p.LastSecCount)
	}
	if p.PrimarySize > l.PageSize {
		t.Fatalf("primary size %d exceeds budget", p.PrimarySize)
	}
}

func TestPlanBudgetCoverage(t *testing.T) {
	// Sweep degrees and budgets across boundaries; coverage must be
	// exact and the final secondary section non-empty.
	l := layout4k(64)
	for deg := 1; deg < 30000; deg += 7 {
		for _, budget := range []int{512, 1333, 4096} {
			p, ok := l.planBudget(deg, budget)
			if !ok {
				continue
			}
			got := p.InlineCount
			if p.SecCount > 0 {
				got += (p.SecCount-1)*p.FullSecCount + p.LastSecCount
				if p.LastSecCount <= 0 {
					t.Fatalf("deg %d budget %d: empty final section", deg, budget)
				}
			}
			if got != deg {
				t.Fatalf("deg %d budget %d: covered %d", deg, budget, got)
			}
			if p.PrimarySize > budget {
				t.Fatalf("deg %d budget %d: size %d over budget", deg, budget, p.PrimarySize)
			}
		}
	}
}

func TestPlanBudgetDegreeOverflow(t *testing.T) {
	l := layout4k(1024) // feature 2048 B: little room for secondary ptrs
	if _, ok := l.planBudget(10_000_000, l.PageSize); ok {
		t.Fatal("absurd degree accepted")
	}
	g, err := graph.Generate(graph.GenSpec{Nodes: 20, AvgDegree: 2, FeatureDim: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	// BuildLayout surfaces the overflow as an error.
	degs := []int{10_000_000}
	if _, err := BuildLayout(Layout{PageSize: 4096, FeatureDim: 1024}, degs, &SeqAllocator{}); err == nil ||
		!strings.Contains(err.Error(), "overflow") {
		t.Fatalf("err = %v, want overflow", err)
	}
}

func TestTrimToFillKeepsPagesDense(t *testing.T) {
	// Primary pages (other than possibly the last open one) must be
	// nearly full under the trim-to-fill policy.
	g, err := graph.Generate(graph.GenSpec{Nodes: 2000, AvgDegree: 300, MaxDegree: 1500, FeatureDim: 100, PowerLaw: 2.0, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildGraph(Layout{PageSize: 4096, FeatureDim: 100}, g, &SeqAllocator{})
	if err != nil {
		t.Fatal(err)
	}
	if r := b.Stats.InflationRatio(); r > 0.10 {
		t.Fatalf("inflation %.3f for large-section graph; trim-to-fill should keep it below 10%%", r)
	}
}

func TestSecondaryIndexFor(t *testing.T) {
	p := NodePlan{InlineCount: 10, FullSecCount: 100, SecCount: 3}
	cases := []struct{ idx, want int }{{10, 0}, {109, 0}, {110, 1}, {210, 2}}
	for _, c := range cases {
		if got := p.SecondaryIndexFor(c.idx); got != c.want {
			t.Errorf("idx %d → sec %d, want %d", c.idx, got, c.want)
		}
	}
}

func buildSmall(t *testing.T, nodes int, avgDeg float64, dim int, seed uint64) (*graph.Graph, *Build) {
	t.Helper()
	g, err := graph.Generate(graph.GenSpec{
		Nodes: nodes, AvgDegree: avgDeg, FeatureDim: dim, PowerLaw: 2.0, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildGraph(Layout{PageSize: 4096, FeatureDim: dim}, g, &SeqAllocator{})
	if err != nil {
		t.Fatal(err)
	}
	return g, b
}

func TestBuildGraphRoundTrip(t *testing.T) {
	g, b := buildSmall(t, 500, 20, 16, 11)
	for v := 0; v < g.NumNodes(); v++ {
		sec, err := b.ReadSection(b.NodeAddr(graph.NodeID(v)))
		if err != nil {
			t.Fatalf("node %d: %v", v, err)
		}
		if sec.Type != SectionTypePrimary || sec.NodeID != uint32(v) {
			t.Fatalf("node %d: decoded type=%d id=%d", v, sec.Type, sec.NodeID)
		}
		if sec.NeighborCount != g.Degree(graph.NodeID(v)) {
			t.Fatalf("node %d: count %d, want %d", v, sec.NeighborCount, g.Degree(graph.NodeID(v)))
		}
		// Features round-trip bit-exactly.
		want := g.FeatureBits(graph.NodeID(v))
		for i, fb := range sec.FeatureBits {
			if fb != want[i] {
				t.Fatalf("node %d: feature bit %d mismatch", v, i)
			}
		}
		// Every inline neighbor address resolves to the right node.
		nbrs := g.Neighbors(graph.NodeID(v))
		for i, a := range sec.Inline {
			ns, err := b.ReadSection(a)
			if err != nil {
				t.Fatalf("node %d inline %d: %v", v, i, err)
			}
			if ns.NodeID != uint32(nbrs[i]) {
				t.Fatalf("node %d inline %d: got node %d, want %d", v, i, ns.NodeID, nbrs[i])
			}
		}
	}
}

func TestBuildGraphSecondariesRoundTrip(t *testing.T) {
	// Force secondaries: high degree, big features.
	g, err := graph.Generate(graph.GenSpec{
		Nodes: 60, AvgDegree: 50, MaxDegree: 59, FeatureDim: 400, PowerLaw: 0, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 400-dim fp16 = 800 B features; degree ~50 → 200 B: fits inline in 4 KB.
	// Use a small page instead to force secondaries.
	l := Layout{PageSize: 512, FeatureDim: 0}
	g2, err := graph.Generate(graph.GenSpec{Nodes: 300, AvgDegree: 150, MaxDegree: 299, FeatureDim: 0, PowerLaw: 0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildGraph(l, g2, &SeqAllocator{})
	if err != nil {
		t.Fatal(err)
	}
	sawSecondary := false
	for v := 0; v < g2.NumNodes(); v++ {
		sec, err := b.ReadSection(b.NodeAddr(graph.NodeID(v)))
		if err != nil {
			t.Fatalf("node %d: %v", v, err)
		}
		nbrs := g2.Neighbors(graph.NodeID(v))
		idx := sec.InlineCount
		for _, sa := range sec.Secondaries {
			sawSecondary = true
			ss, err := b.ReadSection(sa)
			if err != nil {
				t.Fatalf("node %d sec: %v", v, err)
			}
			if ss.Type != SectionTypeSecondary || ss.NodeID != uint32(v) {
				t.Fatalf("node %d: bad secondary header %+v", v, ss)
			}
			if ss.BaseIndex != idx {
				t.Fatalf("node %d: base %d, want %d", v, ss.BaseIndex, idx)
			}
			for i, a := range ss.Entries {
				ns, err := b.ReadSection(a)
				if err != nil {
					t.Fatal(err)
				}
				if ns.NodeID != uint32(nbrs[idx+i]) {
					t.Fatalf("node %d sec entry %d: node %d, want %d", v, i, ns.NodeID, nbrs[idx+i])
				}
			}
			idx += ss.Count
		}
		if idx != len(nbrs) {
			t.Fatalf("node %d: sections cover %d of %d neighbors", v, idx, len(nbrs))
		}
	}
	if !sawSecondary {
		t.Fatal("test graph produced no secondary sections; tighten parameters")
	}
	_ = g
}

func TestBuildVerifyCleanGraph(t *testing.T) {
	_, b := buildSmall(t, 300, 15, 8, 5)
	if err := Verify(b); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesTampering(t *testing.T) {
	// Section VI-E: addresses outside allocated blocks must be rejected.
	_, b := buildSmall(t, 100, 10, 8, 6)
	// Corrupt one inline neighbor address to point far outside the build.
	addr := b.NodeAddr(0)
	page := b.Pages[b.Layout.Page(addr)]
	sec, err := FindSection(b.Layout, page, b.Layout.Section(addr))
	if err != nil {
		t.Fatal(err)
	}
	if sec.InlineCount == 0 {
		t.Skip("node 0 has no inline neighbors")
	}
	// Inline addrs start after header + secondaries + feature.
	off := sec.StartOffset + primaryHeaderLen + len(sec.Secondaries)*addrLen + b.Layout.FeatureBytes()
	putU32(page, off, uint32(b.Layout.MakeAddr(0x0FFFFFF, 0)))
	if err := Verify(b); err == nil {
		t.Fatal("Verify accepted an escaped address")
	}
}

func TestVerifyCatchesTypeConfusion(t *testing.T) {
	_, b := buildSmall(t, 100, 10, 8, 7)
	addr := b.NodeAddr(1)
	page := b.Pages[b.Layout.Page(addr)]
	sec, _ := FindSection(b.Layout, page, b.Layout.Section(addr))
	page[sec.StartOffset] = SectionTypeSecondary // flip type byte
	if err := Verify(b); err == nil {
		t.Fatal("Verify accepted a type-confused section")
	}
}

func TestFindSectionErrors(t *testing.T) {
	l := layout4k(4)
	page := make([]byte, 4096)
	if _, err := FindSection(l, page, 0); err != ErrSectionNotFound {
		t.Fatalf("empty page: err = %v", err)
	}
	page[0] = 0x7F
	if _, err := FindSection(l, page, 0); err == nil {
		t.Fatal("bad type accepted")
	}
	page[0] = SectionTypePrimary
	putU16(page, 2, 2) // absurd length
	if _, err := FindSection(l, page, 0); err == nil {
		t.Fatal("short length accepted")
	}
	if _, err := FindSection(l, make([]byte, 100), 0); err == nil {
		t.Fatal("wrong page size accepted")
	}
}

func TestSectionsInPage(t *testing.T) {
	_, b := buildSmall(t, 200, 5, 4, 8)
	total := 0
	for _, page := range b.Pages {
		n, err := SectionsInPage(b.Layout, page)
		if err != nil {
			t.Fatal(err)
		}
		if n < 1 || n > b.Layout.MaxSectionsPerPage() {
			t.Fatalf("page holds %d sections", n)
		}
		total += n
	}
	// Every node has exactly one primary; secondaries add more.
	if total < 200 {
		t.Fatalf("found %d sections, want ≥ 200", total)
	}
}

func TestStatsConsistency(t *testing.T) {
	g, b := buildSmall(t, 400, 25, 32, 9)
	s := b.Stats
	if s.Nodes != 400 || s.Edges != g.NumEdges() {
		t.Fatalf("stats nodes/edges = %d/%d", s.Nodes, s.Edges)
	}
	if s.TotalBytes != int64(s.PrimaryPages+s.SecondaryPages)*4096 {
		t.Fatal("TotalBytes inconsistent with page counts")
	}
	if s.UsedBytes > s.TotalBytes {
		t.Fatal("used more bytes than allocated")
	}
	if s.RawBytes != s.Edges*4+int64(s.Nodes)*64 {
		t.Fatalf("raw bytes = %d", s.RawBytes)
	}
	if s.InflationRatio() < 0 {
		// DirectGraph stores addresses (4 B) where raw stores ids (4 B),
		// plus headers — inflation must be non-negative in practice.
		t.Fatalf("negative inflation %v", s.InflationRatio())
	}
	if len(b.Pages) != s.PrimaryPages+s.SecondaryPages {
		t.Fatalf("materialized %d pages, stats say %d", len(b.Pages), s.PrimaryPages+s.SecondaryPages)
	}
}

func TestLayoutOnlyMatchesMaterialized(t *testing.T) {
	g, b := buildSmall(t, 350, 18, 16, 10)
	degs := make([]int, g.NumNodes())
	for v := range degs {
		degs[v] = g.Degree(graph.NodeID(v))
	}
	lb, err := BuildLayout(Layout{PageSize: 4096, FeatureDim: 16}, degs, &SeqAllocator{})
	if err != nil {
		t.Fatal(err)
	}
	if lb.Stats != b.Stats {
		t.Fatalf("layout-only stats %+v != materialized %+v", lb.Stats, b.Stats)
	}
	for v := range degs {
		if lb.Plans[v].Primary != b.Plans[v].Primary {
			t.Fatalf("node %d address differs between modes", v)
		}
	}
	if lb.Pages != nil {
		t.Fatal("layout-only build materialized pages")
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	g, err := graph.Generate(graph.GenSpec{Nodes: 1000, AvgDegree: 30, FeatureDim: 64, PowerLaw: 2.0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = BuildGraph(Layout{PageSize: 4096, FeatureDim: 64}, g, &SeqAllocator{Limit: 3})
	if err == nil {
		t.Fatal("exhausted allocator did not error")
	}
}

func TestBuildGraphDimMismatch(t *testing.T) {
	g, _ := graph.Generate(graph.GenSpec{Nodes: 10, AvgDegree: 2, FeatureDim: 4, Seed: 1})
	if _, err := BuildGraph(Layout{PageSize: 4096, FeatureDim: 8}, g, &SeqAllocator{}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestBuildPropertyNeighborCoverage(t *testing.T) {
	// Property: for random small graphs, DirectGraph exactly covers every
	// node's neighbor multiset in order.
	f := func(seed uint64) bool {
		g, err := graph.Generate(graph.GenSpec{
			Nodes: 120, AvgDegree: 12, FeatureDim: 8, PowerLaw: 1.9, Seed: seed,
		})
		if err != nil {
			return false
		}
		b, err := BuildGraph(Layout{PageSize: 1024, FeatureDim: 8}, g, &SeqAllocator{})
		if err != nil {
			return false
		}
		for v := 0; v < g.NumNodes(); v++ {
			sec, err := b.ReadSection(b.NodeAddr(graph.NodeID(v)))
			if err != nil {
				return false
			}
			nbrs := g.Neighbors(graph.NodeID(v))
			got := make([]Addr, 0, len(nbrs))
			got = append(got, sec.Inline...)
			for _, sa := range sec.Secondaries {
				ss, err := b.ReadSection(sa)
				if err != nil {
					return false
				}
				got = append(got, ss.Entries...)
			}
			if len(got) != len(nbrs) {
				return false
			}
			for i, a := range got {
				if a != b.NodeAddr(nbrs[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
