package directgraph

import "fmt"

// Relocate shifts every physical page number in the build by delta —
// the address-patching half of Section VI-F's wear-levelling
// reclamation, where DirectGraph migrates to clean blocks "while
// updating the embedded physical addresses to these new locations".
// Plans, the page map, and all addresses embedded in page bytes are
// rewritten in place.
func Relocate(b *Build, delta uint32) error {
	l := b.Layout
	shift := func(a Addr) Addr {
		return l.MakeAddr(l.Page(a)+delta, l.Section(a))
	}
	for i := range b.Plans {
		p := &b.Plans[i]
		p.Primary = shift(p.Primary)
		for j := range p.Secondaries {
			p.Secondaries[j] = shift(p.Secondaries[j])
		}
	}
	if b.Pages == nil {
		return nil
	}
	moved := make(map[uint32][]byte, len(b.Pages))
	for pn, page := range b.Pages {
		if len(page) != l.PageSize {
			return fmt.Errorf("%w: page %d length %d != %d during relocation",
				ErrCorruptSection, pn, len(page), l.PageSize)
		}
		// Patch embedded addresses section by section.
		off := 0
		for off+commonHeaderLen <= l.PageSize {
			typ := page[off]
			if typ == SectionTypeEnd {
				break
			}
			length := getU16(page, off+2)
			if length < commonHeaderLen || off+length > l.PageSize {
				return fmt.Errorf("%w: length %d during relocation (page %d offset %d)",
					ErrCorruptSection, length, pn, off)
			}
			switch typ {
			case SectionTypePrimary:
				inline := getU16(page, off+12)
				secCount := getU16(page, off+14)
				// Check the declared counts against the section length
				// before patching: a corrupt header must produce an
				// error, never an out-of-bounds write.
				if length < primaryHeaderLen ||
					primaryHeaderLen+secCount*addrLen+l.FeatureBytes()+inline*addrLen != length {
					return fmt.Errorf("%w: primary counts %d/%d overflow length %d during relocation (page %d offset %d)",
						ErrCorruptSection, secCount, inline, length, pn, off)
				}
				p := off + primaryHeaderLen
				for i := 0; i < secCount; i++ {
					putU32(page, p, uint32(shift(Addr(getU32(page, p)))))
					p += addrLen
				}
				p += l.FeatureBytes()
				for i := 0; i < inline; i++ {
					putU32(page, p, uint32(shift(Addr(getU32(page, p)))))
					p += addrLen
				}
			case SectionTypeSecondary:
				count := getU16(page, off+12)
				if length < secondaryHeaderLen || secondaryHeaderLen+count*addrLen != length {
					return fmt.Errorf("%w: secondary count %d overflows length %d during relocation (page %d offset %d)",
						ErrCorruptSection, count, length, pn, off)
				}
				p := off + secondaryHeaderLen
				for i := 0; i < count; i++ {
					putU32(page, p, uint32(shift(Addr(getU32(page, p)))))
					p += addrLen
				}
			default:
				return fmt.Errorf("%w: type %#x during relocation", ErrBadSectionType, typ)
			}
			off += length
		}
		moved[pn+delta] = page
	}
	b.Pages = moved
	return nil
}
