package directgraph

import (
	"errors"
	"fmt"
	"sort"
)

// Image validation: walk a materialized DirectGraph page by page,
// decode every section, and chase every secondary address. This is the
// offline integrity check behind `dgtool validate`, exercising the same
// ErrCorruptSection paths the on-die sampler hits at runtime.

// ValidationIssue is one problem found in a DirectGraph image.
type ValidationIssue struct {
	Page    uint32
	Section int // section index within the page, -1 for page-level issues
	Err     error
}

func (i ValidationIssue) String() string {
	return fmt.Sprintf("page %d section %d: %v", i.Page, i.Section, i.Err)
}

// ValidationReport summarizes a full image walk.
type ValidationReport struct {
	Pages           int // pages visited
	Sections        int // sections decoded successfully
	CorruptSections int // sections that failed to decode
	DanglingAddrs   int // secondary addrs pointing at missing/non-secondary targets
	Issues          []ValidationIssue
}

// OK reports whether the image validated cleanly.
func (r *ValidationReport) OK() bool {
	return r.CorruptSections == 0 && r.DanglingAddrs == 0 && len(r.Issues) == 0
}

func (r *ValidationReport) add(page uint32, section int, err error) {
	r.Issues = append(r.Issues, ValidationIssue{Page: page, Section: section, Err: err})
}

// Validate decodes every section of every page in the build and verifies
// that each embedded secondary address lands on an existing page and
// decodes as a secondary section. Unlike the sampler it does not stop at
// the first error: all issues are collected, in deterministic (sorted
// page) order. Layout-only builds (nil Pages) validate trivially.
func Validate(b *Build) *ValidationReport {
	r := &ValidationReport{}
	if b.Pages == nil {
		return r
	}
	l := b.Layout
	pages := make([]uint32, 0, len(b.Pages))
	for pn := range b.Pages {
		pages = append(pages, pn)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })

	// checkTarget verifies one embedded secondary address.
	checkTarget := func(from uint32, fromSec int, a Addr) {
		target, ok := b.Pages[l.Page(a)]
		if !ok {
			r.DanglingAddrs++
			r.add(from, fromSec, fmt.Errorf("secondary addr %#x targets missing page %d", uint32(a), l.Page(a)))
			return
		}
		s, err := FindSection(l, target, l.Section(a))
		if err != nil {
			r.DanglingAddrs++
			r.add(from, fromSec, fmt.Errorf("secondary addr %#x: %w", uint32(a), err))
			return
		}
		if s.Type != SectionTypeSecondary {
			r.DanglingAddrs++
			r.add(from, fromSec, fmt.Errorf("secondary addr %#x targets type %d section", uint32(a), s.Type))
		}
	}

	for _, pn := range pages {
		page := b.Pages[pn]
		r.Pages++
		if len(page) != l.PageSize {
			r.CorruptSections++
			r.add(pn, -1, fmt.Errorf("%w: page length %d != %d", ErrCorruptSection, len(page), l.PageSize))
			continue
		}
		for idx := 0; ; idx++ {
			s, err := FindSection(l, page, idx)
			if errors.Is(err, ErrSectionNotFound) {
				break
			}
			if err != nil {
				r.CorruptSections++
				r.add(pn, idx, err)
				break // the section chain is unwalkable past a bad header
			}
			r.Sections++
			if s.Type == SectionTypePrimary {
				for _, sa := range s.Secondaries {
					checkTarget(pn, idx, sa)
				}
			}
		}
	}
	return r
}
