// Package dram models the SSD-internal DRAM as a shared
// bandwidth-limited port. In BeaconGNN the DRAM buffers data between
// the flash backend and the spatial accelerator; the paper's Section
// VIII notes it becomes the bottleneck once flash throughput is high
// enough (reproduced in the Fig. 18d channel-count sensitivity sweep).
package dram

import (
	"fmt"

	"beacongnn/internal/config"
	"beacongnn/internal/sim"
)

// DRAM is a single shared read/write port.
type DRAM struct {
	pipe   *sim.Pipe
	reads  uint64
	writes uint64

	// OnBytes, when set, receives every transfer's size for energy
	// accounting.
	OnBytes func(n int)
}

// New returns a DRAM port with the configured bandwidth and latency.
func New(k *sim.Kernel, link config.Link) (*DRAM, error) {
	if link.Bandwidth <= 0 {
		return nil, fmt.Errorf("dram: bandwidth must be positive")
	}
	return &DRAM{pipe: sim.NewPipe(k, link.Bandwidth, link.Latency)}, nil
}

// Write moves n bytes into DRAM; done fires when the port releases them.
func (d *DRAM) Write(n int, done func()) {
	d.writes += uint64(n)
	if d.OnBytes != nil {
		d.OnBytes(n)
	}
	d.pipe.Transfer(n, done)
}

// Read moves n bytes out of DRAM.
func (d *DRAM) Read(n int, done func()) {
	d.reads += uint64(n)
	if d.OnBytes != nil {
		d.OnBytes(n)
	}
	d.pipe.Transfer(n, done)
}

// Traffic returns (bytesRead, bytesWritten).
func (d *DRAM) Traffic() (uint64, uint64) { return d.reads, d.writes }

// Occupancy reports (in-service, queued) transfers on the port — both
// zero once a run has drained.
func (d *DRAM) Occupancy() (busy, queued int) { return d.pipe.Occupancy() }

// SetUtilization attaches a utilization tracker to the port.
func (d *DRAM) SetUtilization(u *sim.Utilization) { d.pipe.SetUtilization(u) }

// SetTracer attaches a request tracer to the port.
func (d *DRAM) SetTracer(t sim.Tracer) { d.pipe.SetTracer(t, "dram.port", 0) }
