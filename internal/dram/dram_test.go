package dram

import (
	"testing"

	"beacongnn/internal/config"
	"beacongnn/internal/sim"
)

func TestReadWriteAccounting(t *testing.T) {
	k := sim.New()
	d, err := New(k, config.Link{Bandwidth: 1e9, Latency: 0})
	if err != nil {
		t.Fatal(err)
	}
	var wEnd, rEnd sim.Time
	d.Write(1000, func() { wEnd = k.Now() })
	d.Read(500, func() { rEnd = k.Now() })
	k.Run()
	// 1 GB/s → 1 byte/ns: write 1000 ns, read queued after → 1500 ns.
	if wEnd != 1000 || rEnd != 1500 {
		t.Fatalf("wEnd=%v rEnd=%v", wEnd, rEnd)
	}
	r, w := d.Traffic()
	if r != 500 || w != 1000 {
		t.Fatalf("traffic = %d/%d", r, w)
	}
}

func TestEnergyHook(t *testing.T) {
	k := sim.New()
	d, _ := New(k, config.Link{Bandwidth: 1e9})
	total := 0
	d.OnBytes = func(n int) { total += n }
	d.Write(10, nil)
	d.Read(20, nil)
	k.Run()
	if total != 30 {
		t.Fatalf("hook total = %d", total)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(sim.New(), config.Link{Bandwidth: 0}); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}

func TestUtilizationAttaches(t *testing.T) {
	k := sim.New()
	d, _ := New(k, config.Link{Bandwidth: 1e9})
	u := sim.NewUtilization(4)
	d.SetUtilization(u)
	d.Write(100, nil)
	k.Run()
	if u.Peak() != 1 {
		t.Fatalf("peak = %d", u.Peak())
	}
}
