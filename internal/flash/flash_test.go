package flash

import (
	"testing"
	"testing/quick"

	"beacongnn/internal/config"
	"beacongnn/internal/sim"
)

func testCfg() config.Flash { return config.Default().Flash }

func TestGeometryStriping(t *testing.T) {
	g := NewGeometry(testCfg()) // 16 channels × 8 dies
	if g.Channel(0) != 0 || g.Channel(1) != 1 || g.Channel(16) != 0 {
		t.Fatal("channel striping wrong")
	}
	if g.DieInChannel(0) != 0 || g.DieInChannel(16) != 1 {
		t.Fatal("die striping wrong")
	}
	if g.GlobalDie(0) == g.GlobalDie(16) {
		t.Fatal("pages 0 and 16 should hit different dies")
	}
}

func TestGeometryCoversAllDies(t *testing.T) {
	g := NewGeometry(testCfg())
	seen := map[int]bool{}
	for p := uint32(0); p < 128; p++ {
		d := g.GlobalDie(p)
		if d < 0 || d >= 128 {
			t.Fatalf("die %d out of range", d)
		}
		seen[d] = true
	}
	if len(seen) != 128 {
		t.Fatalf("first 128 pages hit %d dies, want all 128", len(seen))
	}
}

func TestGeometryBlockOf(t *testing.T) {
	cfg := testCfg() // 256 pages/block, 128 dies
	g := NewGeometry(cfg)
	if g.BlockOf(0) != 0 {
		t.Fatal("page 0 should be block 0")
	}
	// Page index within die = page / 128; block = that / 256.
	p := uint32(128 * 256) // first page of block 1 on die 0
	if g.BlockOf(p) != 1 {
		t.Fatalf("BlockOf = %d, want 1", g.BlockOf(p))
	}
}

func TestGeometryPropertyDieInRange(t *testing.T) {
	g := NewGeometry(testCfg())
	f := func(p uint32) bool {
		d := g.GlobalDie(p)
		return d >= 0 && d < 128 && g.Channel(p) == d/8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadPageTiming(t *testing.T) {
	k := sim.New()
	b, err := New(k, testCfg(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var senseAt, doneAt sim.Time
	b.ReadPage(0, 500*sim.Nanosecond, func(at sim.Time) { senseAt = at }, func() { doneAt = k.Now() })
	k.Run()
	if senseAt != 0 {
		t.Fatalf("sense started at %v", senseAt)
	}
	if doneAt != 3*sim.Microsecond+500*sim.Nanosecond {
		t.Fatalf("done at %v, want 3.5µs", doneAt)
	}
	if b.Reads() != 1 {
		t.Fatalf("reads = %d", b.Reads())
	}
}

func TestSameDiePlaneParallelism(t *testing.T) {
	// Fig. 10: a two-plane die senses two pages concurrently; a third
	// queues behind a plane.
	k := sim.New()
	b, _ := New(k, testCfg(), 0) // PlanesPerDie = 2
	var done []sim.Time
	g := b.Geometry()
	if g.GlobalDie(0) != g.GlobalDie(2048) || g.GlobalDie(0) != g.GlobalDie(4096) {
		t.Fatal("test pages not on same die")
	}
	for _, p := range []uint32{0, 2048, 4096} {
		b.ReadPage(p, 0, nil, func() { done = append(done, k.Now()) })
	}
	k.Run()
	if done[0] != 3*sim.Microsecond || done[1] != 3*sim.Microsecond {
		t.Fatalf("planes did not sense in parallel: %v", done)
	}
	if done[2] != 6*sim.Microsecond {
		t.Fatalf("third read should queue: %v", done)
	}
	if b.WaitStats.Max() != 3*sim.Microsecond {
		t.Fatalf("max wait = %v", b.WaitStats.Max())
	}
}

func TestSharedSamplerSerializes(t *testing.T) {
	// The two planes share one sampler: concurrent senses complete
	// together, but their on-die processing serializes.
	k := sim.New()
	b, _ := New(k, testCfg(), 0)
	var done []sim.Time
	const extra = 1 * sim.Microsecond
	b.ReadPage(0, extra, nil, func() { done = append(done, k.Now()) })
	b.ReadPage(2048, extra, nil, func() { done = append(done, k.Now()) })
	k.Run()
	// Sense both at [0,3µs]; sampler runs 3→4 then 4→5.
	if done[0] != 4*sim.Microsecond || done[1] != 5*sim.Microsecond {
		t.Fatalf("sampler did not serialize: %v", done)
	}
}

func TestDifferentDiesParallel(t *testing.T) {
	k := sim.New()
	b, _ := New(k, testCfg(), 0)
	var done []sim.Time
	b.ReadPage(0, 0, nil, func() { done = append(done, k.Now()) })
	b.ReadPage(1, 0, nil, func() { done = append(done, k.Now()) })
	k.Run()
	if done[0] != 3*sim.Microsecond || done[1] != 3*sim.Microsecond {
		t.Fatalf("parallel dies: done = %v", done)
	}
}

func TestTransferOccupiesChannel(t *testing.T) {
	cfg := testCfg()
	k := sim.New()
	b, _ := New(k, cfg, 0)
	var ends []sim.Time
	b.Transfer(0, 4096, func() { ends = append(ends, k.Now()) })
	b.Transfer(0, 4096, func() { ends = append(ends, k.Now()) })
	k.Run()
	per := cfg.TransferTime(4096)
	if ends[0] != per || ends[1] != 2*per {
		t.Fatalf("ends = %v, want %v and %v", ends, per, 2*per)
	}
	if b.BusBytes() != 8192 {
		t.Fatalf("bus bytes = %d", b.BusBytes())
	}
}

func TestProgramAndErase(t *testing.T) {
	cfg := testCfg()
	k := sim.New()
	b, _ := New(k, cfg, 0)
	var progDone, eraseDone sim.Time
	b.ProgramPage(0, func() { progDone = k.Now() })
	k.Run()
	want := cfg.TransferTime(cfg.PageSize) + cfg.ProgramLatency
	if progDone != want {
		t.Fatalf("program done %v, want %v", progDone, want)
	}
	b.EraseBlock(0, func() { eraseDone = k.Now() })
	k.Run()
	if eraseDone != progDone+cfg.EraseLatency {
		t.Fatalf("erase done %v", eraseDone)
	}
	_, p, e := b.Counts()
	if p != 1 || e != 1 {
		t.Fatalf("counts: programs=%d erases=%d", p, e)
	}
}

func TestEnergyHooks(t *testing.T) {
	k := sim.New()
	b, _ := New(k, testCfg(), 0)
	reads, bytes := 0, 0
	b.OnRead = func() { reads++ }
	b.OnTransfer = func(n int) { bytes += n }
	b.ReadPage(0, 0, nil, nil)
	b.Transfer(0, 100, nil)
	k.Run()
	if reads != 1 || bytes != 100 {
		t.Fatalf("hooks: reads=%d bytes=%d", reads, bytes)
	}
}

func TestFig7ChannelContentionShape(t *testing.T) {
	// Figure 7a: moving from 1 to 8 active ULL dies on one channel gains
	// only ~49 % throughput while average latency rises ~7.7×.
	cfg := testCfg()
	one, err := RunChannelContention(cfg, 1, 2*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := RunChannelContention(cfg, 8, 2*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	gain := eight.Throughput/one.Throughput - 1
	latRatio := float64(eight.AvgLatency) / float64(one.AvgLatency)
	if gain < 0.2 || gain > 1.2 {
		t.Errorf("throughput gain 1→8 dies = %.2f, paper ≈ 0.49", gain)
	}
	if latRatio < 4 || latRatio > 12 {
		t.Errorf("latency ratio 1→8 dies = %.2f, paper ≈ 7.7", latRatio)
	}
	if eight.ChannelBusFrac < 0.95 {
		t.Errorf("8 dies should saturate the channel bus, util = %.2f", eight.ChannelBusFrac)
	}
}

func TestContentionValidation(t *testing.T) {
	if _, err := RunChannelContention(testCfg(), 0, sim.Millisecond); err == nil {
		t.Fatal("0 dies accepted")
	}
	if _, err := RunChannelContention(testCfg(), 99, sim.Millisecond); err == nil {
		t.Fatal("too many dies accepted")
	}
}

func TestUtilizationTracksDies(t *testing.T) {
	k := sim.New()
	b, _ := New(k, testCfg(), 64)
	for p := uint32(0); p < 16; p++ {
		b.ReadPage(p, 0, nil, nil)
	}
	k.Run()
	if b.DieUtil.Peak() != 16 {
		t.Fatalf("die peak = %d, want 16", b.DieUtil.Peak())
	}
	if len(b.DieUtil.Timeline()) == 0 {
		t.Fatal("timeline empty")
	}
}

func TestMultiPlaneSamplerSerializesAcrossWaves(t *testing.T) {
	// Three same-die reads on a two-plane die: senses run two at a time,
	// but every on-die sampler invocation serializes on the shared unit —
	// including across sense waves.
	cfg := testCfg()
	if cfg.PlanesPerDie != 2 {
		t.Fatalf("test assumes 2 planes, config has %d", cfg.PlanesPerDie)
	}
	k := sim.New()
	b, _ := New(k, cfg, 0)
	const extra = 1 * sim.Microsecond
	var done []sim.Time
	// Pages 0, 2048, 4096 all map to die 0 (page/16 is a multiple of 8).
	for _, p := range []uint32{0, 2048, 4096} {
		b.ReadPage(p, extra, nil, func() { done = append(done, k.Now()) })
	}
	k.Run()
	// Senses: both planes [0,3µs], third read [3µs,6µs].
	// Sampler: 3→4, 4→5, then 6→7 after the third sense lands.
	want := []sim.Time{4 * sim.Microsecond, 5 * sim.Microsecond, 7 * sim.Microsecond}
	if len(done) != 3 || done[0] != want[0] || done[1] != want[1] || done[2] != want[2] {
		t.Fatalf("completions = %v, want %v", done, want)
	}
}
