// Package flash models the SSD's flash backend: channels, dies, and
// their timing (Section II-B). Dies and channel buses are contended
// resources; a page read occupies its die for the sense latency (3 µs
// ULL / 20 µs traditional) and the channel for the transfer time of
// whatever is moved off the die — a full page on conventional paths, or
// only sampled results when die-level samplers are present (Section V).
//
// The package also provides the Figure 7a microbenchmark showing why
// page-granular channel transfer throttles ULL flash.
package flash

import (
	"fmt"

	"beacongnn/internal/config"
	"beacongnn/internal/fault"
	"beacongnn/internal/pool"
	"beacongnn/internal/sim"
)

// Geometry maps physical page numbers onto channels and dies.
// Consecutive pages stripe across channels first, then dies within a
// channel, maximizing parallelism for sequential allocations.
type Geometry struct {
	cfg config.Flash
}

// NewGeometry returns the mapping for the given flash config.
func NewGeometry(cfg config.Flash) Geometry { return Geometry{cfg: cfg} }

// Config returns the underlying flash configuration.
func (g Geometry) Config() config.Flash { return g.cfg }

// Channel returns the channel a page lives on.
func (g Geometry) Channel(page uint32) int { return int(page) % g.cfg.Channels }

// DieInChannel returns the die index within the page's channel.
func (g Geometry) DieInChannel(page uint32) int {
	return (int(page) / g.cfg.Channels) % g.cfg.DiesPerChannel
}

// GlobalDie returns the page's die index in [0, TotalDies).
func (g Geometry) GlobalDie(page uint32) int {
	return g.Channel(page)*g.cfg.DiesPerChannel + g.DieInChannel(page)
}

// BlockOf returns the page's block index within its die.
func (g Geometry) BlockOf(page uint32) int {
	perDie := int(page) / (g.cfg.Channels * g.cfg.DiesPerChannel)
	return perDie / g.cfg.PagesPerBlock
}

// Backend is the simulated flash array. Each die exposes PlanesPerDie
// parallel sense units (Fig. 10: a two-plane die senses both planes
// concurrently) behind one shared sampler/control unit — sensing
// parallelizes within a die, on-die sampling does not. Each channel bus
// is a width-1 server.
type Backend struct {
	k        *sim.Kernel
	cfg      config.Flash
	geom     Geometry
	dies     []*sim.Server // width = PlanesPerDie: the plane sense units
	samplers []*sim.Server // width = 1: the shared per-die control logic
	channels []*sim.Server
	DieUtil  *sim.Utilization
	ChanUtil *sim.Utilization

	reads     uint64
	programs  uint64
	erases    uint64
	busBytes  uint64
	WaitStats sim.WaitStats // queueing before dies (wait_before_flash)

	// OnRead and OnTransfer, when set, receive energy-accounting events.
	OnRead     func()
	OnTransfer func(bytes int)

	// FaultInjector, when set, classifies every sense (clean / retry /
	// soft-decode / uncorrectable) and reroutes dead channels. Nil (the
	// default) keeps the backend's event sequence bit-for-bit identical
	// to a build without the fault model.
	FaultInjector *fault.Injector
	// OnRetrySense receives the extra Vref-shift sense count of each
	// non-clean read, for energy accounting.
	OnRetrySense func(senses int)

	tracer sim.Tracer
}

// New builds a backend on the kernel. timelinePoints bounds the
// utilization timelines kept for Figure 15 (0 disables them).
func New(k *sim.Kernel, cfg config.Flash, timelinePoints int) (*Backend, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &Backend{
		k: k, cfg: cfg, geom: NewGeometry(cfg),
		DieUtil:  sim.NewUtilization(timelinePoints),
		ChanUtil: sim.NewUtilization(timelinePoints),
	}
	planes := cfg.PlanesPerDie
	if planes < 1 {
		planes = 1
	}
	b.dies = make([]*sim.Server, cfg.TotalDies())
	b.samplers = make([]*sim.Server, cfg.TotalDies())
	for i := range b.dies {
		b.dies[i] = sim.NewServer(k, planes)
		b.dies[i].SetUtilization(b.DieUtil)
		b.samplers[i] = sim.NewServer(k, 1)
	}
	b.channels = make([]*sim.Server, cfg.Channels)
	for i := range b.channels {
		b.channels[i] = sim.NewServer(k, 1)
		b.channels[i].SetUtilization(b.ChanUtil)
	}
	return b, nil
}

// SetTracer attaches a request tracer to every die, per-die sampler, and
// channel bus; spans are attributed as flash.die / flash.sampler /
// flash.channel with the resource index as the lane. Pass nil to detach.
func (b *Backend) SetTracer(t sim.Tracer) {
	b.tracer = t
	for i, d := range b.dies {
		d.SetTracer(t, "flash.die", i)
	}
	for i, s := range b.samplers {
		s.SetTracer(t, "flash.sampler", i)
	}
	for i, c := range b.channels {
		c.SetTracer(t, "flash.channel", i)
	}
}

// SetSchedulers attaches a fresh queueing policy from mk to every die,
// per-die sampler, and channel bus (each server needs its own instance —
// policies hold per-queue state). Call before any traffic is submitted;
// nil-returning constructors restore the FIFO default. See sim/sched.go.
func (b *Backend) SetSchedulers(mk func() sim.Scheduler) {
	for _, d := range b.dies {
		d.SetScheduler(mk())
	}
	for _, s := range b.samplers {
		s.SetScheduler(mk())
	}
	for _, c := range b.channels {
		c.SetScheduler(mk())
	}
}

// Occupancy reports in-service and queued request counts summed over all
// dies, per-die samplers, and channel buses. Both are zero once a run
// has drained; the invariant checker polls this at completion.
func (b *Backend) Occupancy() (busy, queued int) {
	for _, s := range b.dies {
		busy += s.Busy()
		queued += s.QueueLen()
	}
	for _, s := range b.samplers {
		busy += s.Busy()
		queued += s.QueueLen()
	}
	for _, s := range b.channels {
		busy += s.Busy()
		queued += s.QueueLen()
	}
	return busy, queued
}

// Geometry returns the page-to-die mapping.
func (b *Backend) Geometry() Geometry { return b.geom }

// Config returns the flash configuration.
func (b *Backend) Config() config.Flash { return b.cfg }

// Reads returns the number of page senses performed.
func (b *Backend) Reads() uint64 { return b.reads }

// BusBytes returns total bytes moved over all channel buses.
func (b *Backend) BusBytes() uint64 { return b.busBytes }

// ReadPage senses the page on one of its die's planes. dieExtra adds
// on-die processing time (the die-level sampler), which runs on the
// die's single shared sampler after the sense — two planes can sense in
// parallel, but their sampler invocations serialize (Fig. 10).
// senseStart fires when a plane begins the sense (for wait-time
// accounting), done when the result is ready in the data register.
// Neither transfers anything over the channel; use Transfer for that.
func (b *Backend) ReadPage(page uint32, dieExtra sim.Time, senseStart func(sim.Time), done func()) {
	b.SensePage(page, dieExtra, senseStart, func(fault.Outcome) {
		if done != nil {
			done()
		}
	})
}

// SensePage is ReadPage with the fault model exposed: done receives the
// sense's ECC outcome so callers can run the firmware recovery ladder.
// With no FaultInjector the outcome is always zero (Clean) and the event
// sequence matches ReadPage exactly. Extra Vref-shift senses extend the
// die occupancy of this request; they are reported as a flash.retry span
// to the tracer.
func (b *Backend) SensePage(page uint32, dieExtra sim.Time, senseStart func(sim.Time), done func(fault.Outcome)) {
	b.SensePageDeadline(page, dieExtra, 0, senseStart, done)
}

// SensePageDeadline is SensePage carrying an EDF completion target for
// the die (and, when dieExtra > 0, the sampler). Only a deadline-aware
// scheduler reads it; zero means "no deadline".
func (b *Backend) SensePageDeadline(page uint32, dieExtra, deadline sim.Time, senseStart func(sim.Time), done func(fault.Outcome)) {
	die := b.geom.GlobalDie(page)
	b.reads++
	if b.OnRead != nil {
		b.OnRead()
	}
	var out fault.Outcome
	service := b.cfg.ReadLatency
	if b.FaultInjector != nil {
		out = b.FaultInjector.ClassifyAt(die, b.geom.BlockOf(page), b.k.Now())
		service += out.ExtraDieTime
		if out.RetrySenses > 0 && b.OnRetrySense != nil {
			b.OnRetrySense(out.RetrySenses)
		}
	}
	op := sensePool.Get()
	op.b, op.die, op.dieExtra, op.out = b, die, dieExtra, out
	op.deadline = deadline
	op.arrived = b.k.Now()
	op.senseStart, op.done = senseStart, done
	if deadline != 0 {
		b.dies[die].SubmitDeadline(service, deadline, op.fnStart, op.fnDone)
		return
	}
	b.dies[die].SubmitFull(service, op.fnStart, op.fnDone)
}

// senseOp is the pooled per-sense state machine: it replaces the closure
// ladder SensePage allocated per request (service start/done plus the
// sampler hand-off) with continuations bound once per pooled object.
type senseOp struct {
	b          *Backend
	die        int
	dieExtra   sim.Time
	deadline   sim.Time
	arrived    sim.Time
	out        fault.Outcome
	senseStart func(sim.Time)
	done       func(fault.Outcome)

	fnStart   func(sim.Time)
	fnDone    func()
	fnSampler func()
}

// sensePool is wired in init: the constructor references senseOp methods
// whose release path references the pool back, which a package-level
// initializer expression would reject as an initialization cycle.
var sensePool *pool.Pool[senseOp]

func init() {
	sensePool = pool.New(func() *senseOp {
		op := &senseOp{}
		op.fnStart = op.onStart
		op.fnDone = op.onDone
		op.fnSampler = op.onSampler
		return op
	})
}

func (op *senseOp) release() {
	op.b = nil
	op.senseStart = nil
	op.done = nil
	sensePool.Put(op)
}

func (op *senseOp) onStart(start sim.Time) {
	op.b.WaitStats.Observe(start - op.arrived)
	if op.senseStart != nil {
		op.senseStart(start)
	}
}

func (op *senseOp) onDone() {
	b := op.b
	if op.out.ExtraDieTime > 0 && b.tracer != nil {
		end := b.k.Now()
		b.tracer.ServerSpan("flash.retry", op.die, end-op.out.ExtraDieTime, end-op.out.ExtraDieTime, end)
	}
	if op.dieExtra <= 0 {
		done, out := op.done, op.out
		op.release()
		if done != nil {
			done(out)
		}
		return
	}
	if op.done == nil {
		if op.deadline != 0 {
			b.samplers[op.die].SubmitDeadline(op.dieExtra, op.deadline, nil, nil)
		} else {
			b.samplers[op.die].Submit(op.dieExtra, nil)
		}
		op.release()
		return
	}
	if op.deadline != 0 {
		b.samplers[op.die].SubmitDeadline(op.dieExtra, op.deadline, nil, op.fnSampler)
		return
	}
	b.samplers[op.die].Submit(op.dieExtra, op.fnSampler)
}

func (op *senseOp) onSampler() {
	done, out := op.done, op.out
	op.release()
	done(out)
}

// Transfer moves n bytes over the page's channel bus (plus the fixed
// command overhead) and calls done when the bus releases the data.
func (b *Backend) Transfer(page uint32, n int, done func()) {
	b.TransferOnChannel(b.geom.Channel(page), n, done)
}

// TransferDeadline is Transfer carrying an EDF completion target for the
// channel bus; zero means "no deadline".
func (b *Backend) TransferDeadline(page uint32, n int, deadline sim.Time, done func()) {
	b.transferOn(b.geom.Channel(page), n, deadline, done)
}

// TransferOnChannel is Transfer with an explicit channel index. Dead
// channels (injected outages) reroute deterministically to the next
// healthy bus, whose queue widens to absorb the displaced traffic.
func (b *Backend) TransferOnChannel(ch, n int, done func()) {
	b.transferOn(ch, n, 0, done)
}

func (b *Backend) transferOn(ch, n int, deadline sim.Time, done func()) {
	b.busBytes += uint64(n)
	if b.OnTransfer != nil {
		b.OnTransfer(n)
	}
	if b.FaultInjector != nil {
		ch = b.FaultInjector.RouteChannel(ch)
	}
	if deadline != 0 {
		b.channels[ch].SubmitDeadline(b.cfg.TransferTime(n), deadline, nil, done)
		return
	}
	b.channels[ch].Submit(b.cfg.TransferTime(n), done)
}

// IssueCommand occupies the page's channel bus for the command/address
// cycles of one flash command (how sampling commands reach dies).
func (b *Backend) IssueCommand(page uint32, done func()) {
	ch := b.geom.Channel(page)
	if b.FaultInjector != nil {
		ch = b.FaultInjector.RouteChannel(ch)
	}
	b.channels[ch].Submit(b.cfg.CmdOverhead, done)
}

// ProgramPage writes a page: channel transfer of the full page followed
// by the program latency on the die.
func (b *Backend) ProgramPage(page uint32, done func()) {
	b.programs++
	die := b.geom.GlobalDie(page)
	b.TransferOnChannel(b.geom.Channel(page), b.cfg.PageSize, func() {
		b.dies[die].Submit(b.cfg.ProgramLatency, done)
	})
}

// EraseBlock erases the block containing the page.
func (b *Backend) EraseBlock(page uint32, done func()) {
	b.erases++
	b.dies[b.geom.GlobalDie(page)].Submit(b.cfg.EraseLatency, done)
}

// Counts reports (reads, programs, erases).
func (b *Backend) Counts() (reads, programs, erases uint64) {
	return b.reads, b.programs, b.erases
}

// DieQueueLen returns queued requests for the page's die (used by the
// round-robin command issuer to find idle dies).
func (b *Backend) DieQueueLen(page uint32) int {
	d := b.dies[b.geom.GlobalDie(page)]
	return d.Busy() + d.QueueLen()
}

// ContentionResult is the outcome of the Figure 7a microbenchmark.
type ContentionResult struct {
	ActiveDies     int
	Throughput     float64  // page reads per second
	AvgLatency     sim.Time // mean read completion latency
	ChannelBusFrac float64  // channel bus utilization
}

// RunChannelContention reproduces Figure 7a: n dies on one channel read
// full pages back-to-back for the given simulated duration. With ULL
// sense latency far below the page transfer time, adding dies quickly
// saturates the bus: throughput gains flatten while per-read latency
// balloons.
func RunChannelContention(cfg config.Flash, activeDies int, duration sim.Time) (ContentionResult, error) {
	if activeDies < 1 || activeDies > cfg.DiesPerChannel {
		return ContentionResult{}, fmt.Errorf("flash: active dies %d outside [1,%d]", activeDies, cfg.DiesPerChannel)
	}
	k := sim.New()
	b, err := New(k, cfg, 0)
	if err != nil {
		return ContentionResult{}, err
	}
	var completed uint64
	var totalLat sim.Time
	// Use one page per die on channel 0; page p maps to channel p%C, so
	// channel-0 pages are multiples of C with die index (p/C)%D.
	var issue func(die int)
	issue = func(die int) {
		page := uint32(die * cfg.Channels)
		start := k.Now()
		b.ReadPage(page, 0, nil, func() {
			b.Transfer(page, cfg.PageSize, func() {
				completed++
				totalLat += k.Now() - start
				if k.Now() < duration {
					issue(die)
				}
			})
		})
	}
	for d := 0; d < activeDies; d++ {
		issue(d)
	}
	k.Run()
	end := k.Now()
	res := ContentionResult{ActiveDies: activeDies}
	if completed > 0 {
		res.Throughput = float64(completed) / end.Seconds()
		res.AvgLatency = totalLat / sim.Time(completed)
	}
	res.ChannelBusFrac = b.ChanUtil.Mean(end)
	return res, nil
}
