package array

import (
	"testing"

	"beacongnn/internal/config"
	"beacongnn/internal/dataset"
	"beacongnn/internal/platform"
)

func arrayFixture(t *testing.T) (*dataset.Instance, config.Config) {
	t.Helper()
	cfg := config.Default()
	cfg.GNN.BatchSize = 32
	d, err := dataset.ByName("amazon")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := dataset.Materialize(d, 3000, cfg.Flash.PageSize, 5)
	if err != nil {
		t.Fatal(err)
	}
	return inst, cfg
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Devices: 0, P2PBandwidth: 1e9},
		{Devices: 2, P2PBandwidth: 0},
		{Devices: 2, P2PBandwidth: 1e9, RemoteFraction: 1.5},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestDefaultRemoteFraction(t *testing.T) {
	if DefaultRemoteFraction(1) != 0 {
		t.Fatal("single device should have no remote traffic")
	}
	if got := DefaultRemoteFraction(4); got != 0.75 {
		t.Fatalf("4-way fraction = %v", got)
	}
}

func TestSingleDeviceIsBaseline(t *testing.T) {
	inst, cfg := arrayFixture(t)
	r, err := Run(platform.BG2, cfg, Config{Devices: 1, P2PBandwidth: 8e9}, inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup != 1 || r.FabricBound {
		t.Fatalf("single device: speedup=%v fabricBound=%v", r.Speedup, r.FabricBound)
	}
	if r.AggregateThroughput != r.PerDevice.Throughput {
		t.Fatal("aggregate != per-device for one SSD")
	}
}

func TestLinearScalingWithFatLinks(t *testing.T) {
	// Section VIII's claim: with adequate P2P bandwidth, capacity and
	// throughput grow linearly with device count.
	inst, cfg := arrayFixture(t)
	r, err := Run(platform.BG2, cfg, Config{
		Devices: 8, P2PBandwidth: 1e12, RemoteFraction: DefaultRemoteFraction(8),
	}, inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.FabricBound {
		t.Fatal("terabyte links should not saturate")
	}
	if r.Speedup != 8 {
		t.Fatalf("speedup = %v, want 8", r.Speedup)
	}
	if r.CapacityBytes != 8*cfg.Flash.TotalBytes() {
		t.Fatal("capacity not linear")
	}
}

func TestFabricSaturationCapsScaling(t *testing.T) {
	inst, cfg := arrayFixture(t)
	thin, err := Run(platform.BG2, cfg, Config{
		Devices: 8, P2PBandwidth: 10e6, RemoteFraction: DefaultRemoteFraction(8),
	}, inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !thin.FabricBound {
		t.Fatal("10 MB/s links must saturate")
	}
	if thin.Speedup >= 8 {
		t.Fatalf("speedup = %v under saturated fabric", thin.Speedup)
	}
	if thin.P2PDemand <= thin.P2PCapacity {
		t.Fatal("demand accounting inconsistent with saturation flag")
	}
}

func TestLocalityReducesDemand(t *testing.T) {
	// A partition-aware layout (low remote fraction) must need less
	// fabric bandwidth than naive hashing.
	inst, cfg := arrayFixture(t)
	naive, err := Run(platform.BG2, cfg, Config{Devices: 4, P2PBandwidth: 1e12, RemoteFraction: 0.75}, inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	smart, err := Run(platform.BG2, cfg, Config{Devices: 4, P2PBandwidth: 1e12, RemoteFraction: 0.1}, inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	if smart.P2PDemand >= naive.P2PDemand {
		t.Fatalf("locality did not reduce demand: %v vs %v", smart.P2PDemand, naive.P2PDemand)
	}
}

func TestSweepShape(t *testing.T) {
	inst, cfg := arrayFixture(t)
	results, err := Sweep(platform.BG2, cfg, Config{P2PBandwidth: 8e9}, inst, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 { // 1, 2, 4, 8
		t.Fatalf("sweep lengths = %d", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].AggregateThroughput < results[i-1].AggregateThroughput {
			t.Fatal("aggregate throughput decreased with more devices")
		}
	}
}
