// Package array models Section VIII's scale-out vision: multiple
// BeaconGNN SSDs forming a computational storage array, communicating
// over direct P2P links. The graph is hash-partitioned across devices;
// each device samples and computes its own shard, and sampling commands
// whose child lives on another device cross the P2P fabric.
//
// The model composes a full event-driven single-device simulation with
// an analytic fabric model: per-device throughput comes from the
// platform simulator, remote traffic from the measured command/feature
// volumes and the partition's remote fraction, and the array's
// aggregate throughput is the device sum unless the fabric saturates.
// This is deliberately a first-order model of a future-work paragraph;
// its value is exposing when the paper's "linear scaling" claim holds
// (low remote fractions or fat links) and when it breaks.
package array

import (
	"fmt"

	"beacongnn/internal/config"
	"beacongnn/internal/dataset"
	"beacongnn/internal/platform"
	"beacongnn/internal/sampler"
)

// Config describes the array fabric.
type Config struct {
	Devices        int     // BeaconGNN SSDs in the array
	P2PBandwidth   float64 // per-device P2P link bandwidth, bytes/s
	RemoteFraction float64 // fraction of sampled children on another device
}

// Validate reports whether the array configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Devices < 1:
		return fmt.Errorf("array: need at least one device, got %d", c.Devices)
	case c.P2PBandwidth <= 0:
		return fmt.Errorf("array: P2P bandwidth must be positive")
	case c.RemoteFraction < 0 || c.RemoteFraction > 1:
		return fmt.Errorf("array: remote fraction %v outside [0,1]", c.RemoteFraction)
	}
	return nil
}

// DefaultRemoteFraction returns the expected remote fraction of an
// n-way hash partition with no locality optimization: (n−1)/n of
// uniformly-chosen children live elsewhere. Partition-aware layouts
// (METIS-style) push this far lower; pass your own value to model them.
func DefaultRemoteFraction(devices int) float64 {
	if devices <= 1 {
		return 0
	}
	return float64(devices-1) / float64(devices)
}

// Result describes the array's composed performance.
type Result struct {
	Devices     int
	PerDevice   *platform.Result
	RemoteFrac  float64
	P2PDemand   float64 // bytes/s each device must push over its link
	P2PCapacity float64
	FabricBound bool

	// AggregateThroughput is the array's total targets/s.
	AggregateThroughput float64
	// Speedup is aggregate throughput over a single device's.
	Speedup float64
	// CapacityBytes is the array's total flash capacity.
	CapacityBytes int64
}

// Run simulates one shard and composes the array result. The instance
// represents one device's partition (the paper's linear-capacity claim:
// each extra SSD brings its own shard).
func Run(kind platform.Kind, cfg config.Config, acfg Config, inst *dataset.Instance, batches int) (*Result, error) {
	if err := acfg.Validate(); err != nil {
		return nil, err
	}
	dev, err := platform.Simulate(kind, cfg, inst, batches, 0)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Devices:       acfg.Devices,
		PerDevice:     dev,
		RemoteFrac:    acfg.RemoteFraction,
		P2PCapacity:   acfg.P2PBandwidth,
		CapacityBytes: int64(acfg.Devices) * cfg.Flash.TotalBytes(),
	}
	// Remote traffic per target: each remote child costs a command out
	// (EncodedBytes) and its result back (feature + header + child
	// commands), approximated by the measured mean result size.
	cmdsPerTarget := float64(dev.Commands) / float64(dev.Targets)
	meanResult := float64(dev.BusBytes) / float64(dev.Commands)
	remotePerTarget := acfg.RemoteFraction * cmdsPerTarget * (sampler.EncodedBytes + meanResult)
	res.P2PDemand = dev.Throughput * remotePerTarget

	scale := 1.0
	if res.P2PDemand > res.P2PCapacity {
		scale = res.P2PCapacity / res.P2PDemand
		res.FabricBound = true
	}
	res.AggregateThroughput = float64(acfg.Devices) * dev.Throughput * scale
	res.Speedup = res.AggregateThroughput / dev.Throughput
	return res, nil
}

// Sweep runs the array at 1..maxDevices and returns per-size results,
// convenient for plotting the scaling curve.
func Sweep(kind platform.Kind, cfg config.Config, base Config, inst *dataset.Instance, batches, maxDevices int) ([]*Result, error) {
	var out []*Result
	for n := 1; n <= maxDevices; n *= 2 {
		acfg := base
		acfg.Devices = n
		if acfg.RemoteFraction == 0 && n > 1 {
			acfg.RemoteFraction = DefaultRemoteFraction(n)
		}
		r, err := Run(kind, cfg, acfg, inst, batches)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
