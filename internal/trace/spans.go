package trace

// This file is the request-tracing half of the package: a sim.Tracer
// implementation that records one span per serviced request at every
// instrumented resource (flash dies and channels, firmware cores, the
// DRAM port, the PCIe link, host CPU, accelerator queue) and renders
// them as a Chrome trace_event JSON file — viewable in Perfetto or
// chrome://tracing — plus an in-memory wait/service latency breakdown
// with p50/p95/p99 per resource.
//
// Recording is strictly append-order: the simulation kernel is
// single-threaded and deterministic, so for a fixed seed the recorded
// span sequence — and therefore the emitted JSON — is byte-identical
// across runs.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"beacongnn/internal/metrics"
	"beacongnn/internal/sim"
)

// Span is one serviced request at one resource: it waited from Arrived
// to Start and was in service from Start to End.
type Span struct {
	Resource string
	Lane     int
	Arrived  sim.Time
	Start    sim.Time
	End      sim.Time
}

// Wait returns the span's queueing delay.
func (s Span) Wait() sim.Time { return s.Start - s.Arrived }

// Service returns the span's service time.
func (s Span) Service() sim.Time { return s.End - s.Start }

// Recorder collects request spans. It implements sim.Tracer; attach it
// with (*platform.System).SetTracer or any resource's SetTracer. Not
// safe for concurrent use — one recorder per simulation kernel.
type Recorder struct {
	spans []Span
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// ServerSpan implements sim.Tracer.
func (r *Recorder) ServerSpan(resource string, lane int, arrived, start, end sim.Time) {
	r.spans = append(r.spans, Span{Resource: resource, Lane: lane, Arrived: arrived, Start: start, End: end})
}

// Spans returns every recorded span in completion order.
func (r *Recorder) Spans() []Span { return r.spans }

// Reset forgets every recorded span but keeps the backing storage, so a
// long-lived recorder (a daemon tracing request after request) reuses
// one grown buffer instead of reallocating the span log per run. Spans
// are plain values — truncation leaks nothing.
func (r *Recorder) Reset() { r.spans = r.spans[:0] }

// prefixTracer namespaces another tracer's resource names, so several
// systems (e.g. one per platform) can share a recorder without their
// identically-named resources colliding in the output.
type prefixTracer struct {
	inner  sim.Tracer
	prefix string
}

func (p prefixTracer) ServerSpan(resource string, lane int, arrived, start, end sim.Time) {
	p.inner.ServerSpan(p.prefix+resource, lane, arrived, start, end)
}

// WithPrefix returns a tracer that records into r with every resource
// name prefixed (e.g. "BG-2/").
func (r *Recorder) WithPrefix(prefix string) sim.Tracer {
	return prefixTracer{inner: r, prefix: prefix}
}

// chromeEvent is one entry of the Chrome trace_event format. Complete
// events ("X") carry a start timestamp and duration in microseconds;
// metadata events ("M") name processes and threads.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func micros(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }

// WriteChrome emits the spans as Chrome trace_event JSON. Each resource
// name becomes a process, each lane a thread; service occupancy appears
// as a "service" slice and queueing (when nonzero) as a "wait" slice
// ending where service begins. Output is deterministic: processes are
// numbered in order of first appearance.
func (r *Recorder) WriteChrome(w io.Writer) error {
	pidOf := map[string]int{}
	var events []chromeEvent
	for _, s := range r.spans {
		pid, ok := pidOf[s.Resource]
		if !ok {
			pid = len(pidOf) + 1
			pidOf[s.Resource] = pid
			events = append(events, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": s.Resource},
			})
		}
		if wait := s.Wait(); wait > 0 {
			events = append(events, chromeEvent{
				Name: "wait", Cat: "queue", Ph: "X",
				Ts: micros(s.Arrived), Dur: micros(wait),
				Pid: pid, Tid: s.Lane,
			})
		}
		events = append(events, chromeEvent{
			Name: "service", Cat: "service", Ph: "X",
			Ts: micros(s.Start), Dur: micros(s.Service()),
			Pid: pid, Tid: s.Lane,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: events, DisplayTimeUnit: "ns"})
}

// ResourceStats is the aggregated latency breakdown of one resource.
type ResourceStats struct {
	Resource string
	Count    uint64
	Wait     *metrics.Histogram
	Service  *metrics.Histogram
}

// Breakdown aggregates the spans per resource, sorted by resource name.
func (r *Recorder) Breakdown() []ResourceStats {
	byName := map[string]*ResourceStats{}
	for _, s := range r.spans {
		st, ok := byName[s.Resource]
		if !ok {
			st = &ResourceStats{Resource: s.Resource, Wait: &metrics.Histogram{}, Service: &metrics.Histogram{}}
			byName[s.Resource] = st
		}
		st.Count++
		st.Wait.Observe(s.Wait())
		st.Service.Observe(s.Service())
	}
	out := make([]ResourceStats, 0, len(byName))
	for _, st := range byName {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Resource < out[j].Resource })
	return out
}

// MergeResourceStats folds several per-run breakdowns (each as returned
// by Breakdown) into one, summing counts and merging the wait/service
// histograms per resource name so the merged quantiles equal those of
// one recorder that saw every span. The capacity sweeper uses it to
// combine the per-load-step breakdowns of a sweep into a single table.
// The inputs are not modified; the result is sorted by resource name.
func MergeResourceStats(groups ...[]ResourceStats) []ResourceStats {
	byName := map[string]*ResourceStats{}
	for _, g := range groups {
		for _, src := range g {
			st, ok := byName[src.Resource]
			if !ok {
				st = &ResourceStats{Resource: src.Resource, Wait: &metrics.Histogram{}, Service: &metrics.Histogram{}}
				byName[src.Resource] = st
			}
			st.Count += src.Count
			st.Wait.Merge(src.Wait)
			st.Service.Merge(src.Service)
		}
	}
	out := make([]ResourceStats, 0, len(byName))
	for _, st := range byName {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Resource < out[j].Resource })
	return out
}

// BreakdownTable renders the per-resource wait/service percentiles as a
// fixed-width text table.
func (r *Recorder) BreakdownTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %9s %36s %36s\n", "resource", "requests", "wait p50/p95/p99", "service p50/p95/p99")
	for _, st := range r.Breakdown() {
		fmt.Fprintf(&b, "%-22s %9d %36s %36s\n",
			st.Resource, st.Count, quantileCell(st.Wait), quantileCell(st.Service))
	}
	return b.String()
}

func quantileCell(h *metrics.Histogram) string {
	if h.Empty() {
		return "- / - / -"
	}
	return fmt.Sprintf("%v / %v / %v", h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99))
}
