// Package trace provides the simulator's two tracing facilities:
//
//   - workload traces (this file): recorded mini-batch target sequences
//     that make cross-platform comparisons exactly workload-identical
//     and let users feed captured production query streams into the
//     simulator instead of synthetic target selection;
//   - request traces (spans.go): a sim.Tracer implementation recording
//     per-request wait/service spans at every instrumented resource,
//     emitted as Chrome trace_event JSON (Perfetto-viewable) and as a
//     per-resource latency percentile table.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"beacongnn/internal/graph"
	"beacongnn/internal/xrand"
)

// Trace is a sequence of mini-batches of target node ids.
type Trace struct {
	Dataset   string    `json:"dataset"`
	Nodes     int       `json:"nodes"` // node-id domain (targets < Nodes)
	BatchSize int       `json:"batch_size"`
	Seed      uint64    `json:"seed,omitempty"`
	Skew      float64   `json:"skew,omitempty"`
	Batches   [][]int32 `json:"batches"`
}

// Validate checks structural invariants.
func (t *Trace) Validate() error {
	switch {
	case t.Nodes <= 0:
		return fmt.Errorf("trace: node domain must be positive, got %d", t.Nodes)
	case t.BatchSize <= 0:
		return fmt.Errorf("trace: batch size must be positive, got %d", t.BatchSize)
	case len(t.Batches) == 0:
		return fmt.Errorf("trace: no batches")
	}
	for i, b := range t.Batches {
		if len(b) != t.BatchSize {
			return fmt.Errorf("trace: batch %d has %d targets, want %d", i, len(b), t.BatchSize)
		}
		for _, v := range b {
			if v < 0 || int(v) >= t.Nodes {
				return fmt.Errorf("trace: batch %d target %d outside [0,%d)", i, v, t.Nodes)
			}
		}
	}
	return nil
}

// Generate synthesizes a trace with the same selection procedure the
// platform uses: uniform targets, or Zipf-skewed when skew > 0.
func Generate(dataset string, nodes, batchSize, batches int, skew float64, seed uint64) (*Trace, error) {
	t := &Trace{
		Dataset: dataset, Nodes: nodes, BatchSize: batchSize,
		Seed: seed, Skew: skew,
		Batches: make([][]int32, batches),
	}
	rng := xrand.New(seed)
	for i := range t.Batches {
		b := make([]int32, batchSize)
		for j := range b {
			if skew > 0 {
				b[j] = int32(rng.Zipf(nodes, skew))
			} else {
				b[j] = int32(rng.Intn(nodes))
			}
		}
		t.Batches[i] = b
	}
	return t, t.Validate()
}

// Targets returns batch i's targets as graph node ids, wrapping around
// when more batches are requested than recorded (steady-state runs).
func (t *Trace) Targets(i int) []graph.NodeID {
	b := t.Batches[i%len(t.Batches)]
	out := make([]graph.NodeID, len(b))
	for j, v := range b {
		out[j] = graph.NodeID(v)
	}
	return out
}

// Save writes the trace as JSON.
func (t *Trace) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// Load reads and validates a JSON trace.
func Load(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// HotSet returns the smallest set of distinct targets covering the
// given fraction of all occurrences — a skewness diagnostic (uniform
// traces need ~frac of the domain; hot traces need far fewer).
func (t *Trace) HotSet(frac float64) int {
	counts := map[int32]int{}
	total := 0
	for _, b := range t.Batches {
		for _, v := range b {
			counts[v]++
			total++
		}
	}
	// Selection-sort style extraction is fine at trace scale.
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	// Sort descending.
	for i := 0; i < len(freqs); i++ {
		for j := i + 1; j < len(freqs); j++ {
			if freqs[j] > freqs[i] {
				freqs[i], freqs[j] = freqs[j], freqs[i]
			}
		}
	}
	need := int(frac * float64(total))
	covered, n := 0, 0
	for _, f := range freqs {
		if covered >= need {
			break
		}
		covered += f
		n++
	}
	return n
}
