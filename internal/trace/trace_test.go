package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"beacongnn/internal/config"
	"beacongnn/internal/dataset"
	"beacongnn/internal/platform"
)

func TestGenerateAndValidate(t *testing.T) {
	tr, err := Generate("amazon", 1000, 32, 5, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Batches) != 5 || len(tr.Batches[0]) != 32 {
		t.Fatalf("shape = %d×%d", len(tr.Batches), len(tr.Batches[0]))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr, _ := Generate("x", 100, 8, 2, 0, 1)
	tr.Batches[1][3] = 100 // out of domain
	if err := tr.Validate(); err == nil {
		t.Fatal("out-of-domain target accepted")
	}
	tr2, _ := Generate("x", 100, 8, 2, 0, 1)
	tr2.Batches[0] = tr2.Batches[0][:4]
	if err := tr2.Validate(); err == nil {
		t.Fatal("short batch accepted")
	}
	if err := (&Trace{Nodes: 10, BatchSize: 4}).Validate(); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr, _ := Generate("reddit", 500, 16, 4, 1.2, 9)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dataset != tr.Dataset || got.Skew != tr.Skew || len(got.Batches) != len(tr.Batches) {
		t.Fatalf("metadata lost: %+v", got)
	}
	for i := range tr.Batches {
		for j := range tr.Batches[i] {
			if got.Batches[i][j] != tr.Batches[i][j] {
				t.Fatalf("batch %d target %d differs", i, j)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"nodes":0,"batch_size":4,"batches":[[1,2,3,4]]}`)); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

func TestTargetsWrapAround(t *testing.T) {
	tr, _ := Generate("x", 100, 4, 2, 0, 3)
	a := tr.Targets(0)
	b := tr.Targets(2) // wraps to batch 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("wrap-around broken")
		}
	}
}

func TestHotSetDetectsSkew(t *testing.T) {
	uniform, _ := Generate("x", 10_000, 64, 20, 0, 5)
	skewed, _ := Generate("x", 10_000, 64, 20, 1.4, 5)
	u, s := uniform.HotSet(0.8), skewed.HotSet(0.8)
	if s >= u {
		t.Fatalf("skewed hot set (%d) not smaller than uniform (%d)", s, u)
	}
}

func TestGeneratePropertyInDomain(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%2000) + 10
		tr, err := Generate("p", n, 8, 3, 0.9, seed)
		return err == nil && tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayMakesRunsWorkloadIdentical(t *testing.T) {
	// Two platforms replaying the same trace must read the same number
	// of root targets, and replaying twice on one platform must be
	// byte-identical in time.
	cfg := config.Default()
	cfg.GNN.BatchSize = 16
	d, err := dataset.ByName("amazon")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := dataset.Materialize(d, 2000, cfg.Flash.PageSize, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Generate("amazon", inst.Graph.NumNodes(), cfg.GNN.BatchSize, 2, 0, 123)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *platform.Result {
		s, err := platform.NewSystem(platform.BG2, cfg, inst, 0)
		if err != nil {
			t.Fatal(err)
		}
		s.SetTargetSource(tr.Targets)
		r, err := s.Run(2)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Elapsed != b.Elapsed || a.FlashReads != b.FlashReads {
		t.Fatal("trace replay not deterministic")
	}
}
