package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"beacongnn/internal/sim"
)

func recordSample(r *Recorder) {
	// die lane 0: waited 0, served [0,3µs]; lane 1: waited 1µs, served [1µs,4µs]
	r.ServerSpan("flash.die", 0, 0, 0, 3*sim.Microsecond)
	r.ServerSpan("flash.die", 1, 0, 1*sim.Microsecond, 4*sim.Microsecond)
	r.ServerSpan("dram.port", 0, 2*sim.Microsecond, 2*sim.Microsecond, 5*sim.Microsecond)
}

func TestRecorderSpans(t *testing.T) {
	r := NewRecorder()
	recordSample(r)
	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	if spans[1].Wait() != 1*sim.Microsecond || spans[1].Service() != 3*sim.Microsecond {
		t.Fatalf("span[1] wait/service = %v/%v", spans[1].Wait(), spans[1].Service())
	}
}

func TestWriteChromeIsValidTraceEventJSON(t *testing.T) {
	r := NewRecorder()
	recordSample(r)
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// 2 process_name metadata + 3 service + 1 wait (only span[1] queued).
	meta, svc, wait := 0, 0, 0
	names := map[string]bool{}
	for _, e := range file.TraceEvents {
		switch {
		case e.Ph == "M":
			meta++
			names[e.Args["name"].(string)] = true
		case e.Ph == "X" && e.Name == "service":
			svc++
		case e.Ph == "X" && e.Name == "wait":
			wait++
		default:
			t.Fatalf("unexpected event %+v", e)
		}
	}
	if meta != 2 || svc != 3 || wait != 1 {
		t.Fatalf("meta/service/wait = %d/%d/%d, want 2/3/1", meta, svc, wait)
	}
	if !names["flash.die"] || !names["dram.port"] {
		t.Fatalf("process names = %v", names)
	}
	// The queued span's wait slice must end exactly where service begins.
	for _, e := range file.TraceEvents {
		if e.Name == "wait" {
			if e.Ts != 0 || e.Dur != 1 || e.Tid != 1 {
				t.Fatalf("wait slice = %+v, want ts 0 dur 1µs on tid 1", e)
			}
		}
	}
}

func TestWriteChromeDeterministic(t *testing.T) {
	render := func() []byte {
		r := NewRecorder()
		recordSample(r)
		var buf bytes.Buffer
		if err := r.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatal("identical span sequences rendered different bytes")
	}
}

func TestWithPrefixNamespacesResources(t *testing.T) {
	r := NewRecorder()
	tr := r.WithPrefix("BG-2/")
	tr.ServerSpan("flash.die", 0, 0, 0, 10)
	if got := r.Spans()[0].Resource; got != "BG-2/flash.die" {
		t.Fatalf("resource = %q", got)
	}
}

func TestBreakdownAggregatesPerResource(t *testing.T) {
	r := NewRecorder()
	recordSample(r)
	stats := r.Breakdown()
	if len(stats) != 2 {
		t.Fatalf("resources = %d, want 2", len(stats))
	}
	// Sorted by name: dram.port first.
	if stats[0].Resource != "dram.port" || stats[1].Resource != "flash.die" {
		t.Fatalf("order = %s, %s", stats[0].Resource, stats[1].Resource)
	}
	die := stats[1]
	if die.Count != 2 {
		t.Fatalf("die count = %d", die.Count)
	}
	if die.Wait.Max() != 1*sim.Microsecond || die.Service.Max() != 3*sim.Microsecond {
		t.Fatalf("die wait/service max = %v/%v", die.Wait.Max(), die.Service.Max())
	}
	table := r.BreakdownTable()
	if !strings.Contains(table, "flash.die") || !strings.Contains(table, "dram.port") {
		t.Fatalf("table missing resources:\n%s", table)
	}
}

// TestMergeResourceStatsEqualsUnion: merging per-run breakdowns must be
// indistinguishable from one recorder that saw every span — counts,
// extremes, and quantiles all match, and the sources stay intact.
func TestMergeResourceStatsEqualsUnion(t *testing.T) {
	a, b, union := NewRecorder(), NewRecorder(), NewRecorder()
	emit := func(rs ...*Recorder) func(res string, arrived, start, end sim.Time) {
		return func(res string, arrived, start, end sim.Time) {
			for _, r := range rs {
				r.ServerSpan(res, 0, arrived, start, end)
			}
		}
	}
	ea, eb := emit(a, union), emit(b, union)
	for i := sim.Time(1); i <= 50; i++ {
		ea("flash.die", 0, i, i+3*sim.Microsecond)
		eb("flash.die", 0, 2*i, 2*i+5*sim.Microsecond)
		ea("dram.port", i, 2*i, 3*i)
	}
	eb("pcie.lane", 0, 0, 9*sim.Microsecond) // only in b

	got := MergeResourceStats(a.Breakdown(), b.Breakdown())
	want := union.Breakdown()
	if len(got) != len(want) {
		t.Fatalf("resources = %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Resource != w.Resource || g.Count != w.Count {
			t.Fatalf("stats[%d] = %s/%d, want %s/%d", i, g.Resource, g.Count, w.Resource, w.Count)
		}
		for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
			if g.Wait.Quantile(q) != w.Wait.Quantile(q) || g.Service.Quantile(q) != w.Service.Quantile(q) {
				t.Fatalf("%s: merged quantile(%v) diverges from union", g.Resource, q)
			}
		}
	}
	// Source breakdowns untouched.
	if ab := a.Breakdown(); ab[1].Count != 50 {
		t.Fatalf("source breakdown mutated: %d", ab[1].Count)
	}
}

func TestMergeResourceStatsEmpty(t *testing.T) {
	if got := MergeResourceStats(); len(got) != 0 {
		t.Fatalf("merge of nothing = %d resources", len(got))
	}
	if got := MergeResourceStats(nil, []ResourceStats{}); len(got) != 0 {
		t.Fatalf("merge of empties = %d resources", len(got))
	}
}
