// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a priority queue of events.
// Components schedule callbacks at absolute or relative simulated times;
// Run drains the queue in (time, insertion-order) order, so simulations
// are fully deterministic for a given seed and schedule.
//
// The package also provides the queueing building blocks shared by every
// device model in the repository: Server (an N-way FIFO service center)
// and Pipe (a bandwidth-limited byte mover), plus utilization trackers
// used to regenerate the paper's resource-utilization figures.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in simulated time, in nanoseconds.
type Time int64

// Common durations, in simulated nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Duration converts a standard library duration to simulated time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds returns t expressed in seconds as a float.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t expressed in microseconds as a float.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	// Pick the unit by magnitude so negative durations format like their
	// positive counterparts (-5µs is "-5.000µs", not "-5000ns").
	m := t
	sign := ""
	if m < 0 {
		m = -m
		sign = "-"
	}
	switch {
	case m >= Second:
		return fmt.Sprintf("%s%.3fs", sign, m.Seconds())
	case m >= Millisecond:
		return fmt.Sprintf("%s%.3fms", sign, float64(m)/float64(Millisecond))
	case m >= Microsecond:
		return fmt.Sprintf("%s%.3fµs", sign, m.Micros())
	default:
		return fmt.Sprintf("%s%dns", sign, int64(m))
	}
}

// event is a scheduled callback. The common case carries a closure in
// fn; Server completions instead carry the (srv, slot) pair of the
// in-service request, so the hot request path schedules zero closures —
// step dispatches srv.complete(slot) directly.
type event struct {
	at   Time
	seq  uint64 // tiebreaker: FIFO among equal times
	fn   func()
	srv  *Server
	slot int32
}

// before orders events by (time, insertion sequence).
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventQueue is a slice-backed 4-ary min-heap of events. A concrete heap
// avoids container/heap's per-operation interface boxing (one allocation
// per Push/Pop), and the 4-ary shape halves the tree depth, so sift-downs
// touch fewer cache lines than a binary heap on the simulator's typical
// queue depths.
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !q.ev[i].before(q.ev[p]) {
			break
		}
		q.ev[i], q.ev[p] = q.ev[p], q.ev[i]
		i = p
	}
}

func (q *eventQueue) pop() event {
	top := q.ev[0]
	n := len(q.ev) - 1
	q.ev[0] = q.ev[n]
	q.ev[n] = event{} // drop the fn reference so closures can be collected
	q.ev = q.ev[:n]
	if n > 1 {
		q.siftDown(0)
	}
	return top
}

func (q *eventQueue) siftDown(i int) {
	n := len(q.ev)
	for {
		best := i
		first := 4*i + 1
		last := first + 4
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if q.ev[c].before(q.ev[best]) {
				best = c
			}
		}
		if best == i {
			return
		}
		q.ev[i], q.ev[best] = q.ev[best], q.ev[i]
		i = best
	}
}

func (q *eventQueue) peek() (Time, bool) { // earliest event time
	if len(q.ev) == 0 {
		return 0, false
	}
	return q.ev[0].at, true
}

// Kernel is the discrete-event engine. The zero value is ready to use.
type Kernel struct {
	now      Time
	seq      uint64
	events   eventQueue
	steps    uint64
	stopped  bool
	canceled bool
	probe    func(at Time)
	cancel   func() bool
	// cancelEvery overrides cancelStride when non-zero (SetCancelStride).
	cancelEvery uint64
}

// cancelStride is how many events run between cancellation polls. The
// hot loop stays branch-cheap (one mask + nil check per event) while a
// cancelled simulation still stops within microseconds of wall time.
const cancelStride = 1024

// New returns a fresh kernel with the clock at zero.
func New() *Kernel { return &Kernel{} }

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Steps returns the number of events executed so far.
func (k *Kernel) Steps() uint64 { return k.steps }

// Pending returns the number of events waiting in the queue.
func (k *Kernel) Pending() int { return k.events.len() }

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past panics: it would silently reorder causality.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, k.now))
	}
	k.seq++
	k.events.push(event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now. Negative delays panic.
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	k.At(k.now+d, fn)
}

// afterServer schedules a Server completion d from now without a
// closure: the event carries the (server, slot) pair and step dispatches
// it directly. Service times are validated non-negative at Submit.
func (k *Kernel) afterServer(d Time, s *Server, slot int32) {
	k.seq++
	k.events.push(event{at: k.now + d, seq: k.seq, srv: s, slot: slot})
}

// SetProbe installs a per-event observer: it runs before each event's
// callback with the event's scheduled time. The invariant checker uses
// it to verify the clock never moves backwards. A nil probe (the
// default) costs a single pointer check per event and no allocations,
// keeping the hot loop identical to an unobserved kernel.
func (k *Kernel) SetProbe(p func(at Time)) { k.probe = p }

// Stop halts the event loop: Run and RunUntil return after the current
// event's callback. Queued events stay queued. Components use it to
// abort a simulation on an unrecoverable device error instead of
// panicking out of the event loop.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// SetCancel installs an external-abandonment poll (typically a closure
// over ctx.Err). It is checked every cancelStride events (see
// SetCancelStride); when it returns true the loop stops exactly like
// Stop, and Canceled reports true so callers can tell abandonment from
// a normal early Stop. A nil poll (the default) adds one pointer check
// per event.
func (k *Kernel) SetCancel(poll func() bool) { k.cancel = poll }

// SetCancelStride overrides how many events run between cancellation
// polls (n <= 0 restores the cancelStride default). Fault-heavy
// schedules stretch per-event wall cost (recovery ladders, storms), so
// abandonment-sensitive callers — hedged duplicates, draining daemons —
// poll finer. Polling only observes: results are identical at any
// stride.
func (k *Kernel) SetCancelStride(n int) {
	if n <= 0 {
		k.cancelEvery = 0
		return
	}
	k.cancelEvery = uint64(n)
}

// Canceled reports whether the cancel poll stopped the loop.
func (k *Kernel) Canceled() bool { return k.canceled }

func (k *Kernel) pollCancel() bool {
	if k.cancel == nil {
		return false
	}
	stride := k.cancelEvery
	if stride == 0 {
		stride = cancelStride
	}
	if k.steps%stride == 0 && k.cancel() {
		k.canceled = true
		k.stopped = true
		return true
	}
	return false
}

// Run executes events until the queue is empty, Stop is called, or the
// cancel poll fires.
func (k *Kernel) Run() {
	for k.events.len() > 0 && !k.stopped {
		if k.pollCancel() {
			return
		}
		k.step()
	}
}

// RunUntil executes events with time ≤ limit and then advances the
// clock to limit (never backwards), so callers can schedule relative to
// the window's end. Events scheduled after limit remain queued. It
// reports whether the queue drained.
func (k *Kernel) RunUntil(limit Time) bool {
	for {
		at, ok := k.events.peek()
		if k.stopped || k.pollCancel() {
			return !ok
		}
		if !ok || at > limit {
			if limit > k.now {
				k.now = limit
			}
			return !ok
		}
		k.step()
	}
}

func (k *Kernel) step() {
	e := k.events.pop()
	k.now = e.at
	k.steps++
	if k.probe != nil {
		k.probe(e.at)
	}
	if e.srv != nil {
		e.srv.complete(e.slot)
		return
	}
	e.fn()
}

// Tracer observes per-request spans at traced resources. One call is
// made per completed service with the request's arrival, service-start,
// and completion times; wait time is start−arrived, service time is
// end−start. The hook runs inline on the event loop, so implementations
// must be cheap and must not schedule events. A nil tracer costs a
// single pointer check per completion and adds no allocations.
type Tracer interface {
	ServerSpan(resource string, lane int, arrived, start, end Time)
}

// teeTracer fans one span out to two tracers, letting a request recorder
// and the invariant checker observe the same resources simultaneously.
type teeTracer struct{ a, b Tracer }

func (t teeTracer) ServerSpan(resource string, lane int, arrived, start, end Time) {
	t.a.ServerSpan(resource, lane, arrived, start, end)
	t.b.ServerSpan(resource, lane, arrived, start, end)
}

// TeeTracer returns a tracer delivering every span to both arguments.
// A nil argument collapses to the other, so callers can compose
// optional tracers without nil checks.
func TeeTracer(a, b Tracer) Tracer {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return teeTracer{a: a, b: b}
}

// Server is an N-way FIFO service center: up to Width requests are in
// service simultaneously; the rest wait in arrival order. It is the
// building block for flash dies (width 1), channel buses (width 1),
// embedded-core pools (width = cores), and similar contended resources.
type Server struct {
	k     *Kernel
	width int
	busy  int
	// The FIFO is a head-indexed slice: popping advances head instead of
	// reslicing (queue = queue[1:]), so the backing array is reused when
	// the queue drains and pops never leak the popped prefix.
	queue  []serverReq
	head   int
	util   *Utilization
	wait   *WaitStats
	tracer Tracer
	tname  string
	tlane  int
	// In-service requests live in a slot table rather than being captured
	// by completion closures; free lists the reusable slot indices. Both
	// stop growing once the table reaches the high-water in-service count,
	// so steady-state request processing allocates nothing.
	slots []inService
	free  []int32
	// sched, when non-nil, replaces the FIFO above for waiting requests
	// (see sched.go). subSeq numbers submissions for deterministic
	// tie-breaking inside policies; it only advances on the scheduled
	// path, so the default FIFO behaviour is bit-for-bit unchanged.
	sched  Scheduler
	subSeq uint64
}

type serverReq struct {
	service Time
	start   func(start Time) // optional: called when service begins
	done    func()
	arrived Time
	// doneDelay defers done by a fixed post-service latency (Pipe
	// transfers) without a wrapper closure.
	doneDelay Time
	// deadline is the EDF completion target (0 = none; the policy
	// derives one from arrival). Ignored by every other policy.
	deadline Time
	// seq is the submission sequence number, assigned only when a
	// scheduler is attached; policies use it as the FIFO tiebreaker.
	seq uint64
}

// inService is the slot-table record of one request in service.
type inService struct {
	done      func()
	arrived   Time
	startAt   Time
	doneDelay Time
}

// NewServer returns a service center with the given parallel width.
func NewServer(k *Kernel, width int) *Server {
	if width <= 0 {
		panic("sim: server width must be positive")
	}
	return &Server{k: k, width: width}
}

// SetUtilization attaches a utilization tracker (may be nil).
func (s *Server) SetUtilization(u *Utilization) { s.util = u }

// SetWaitStats attaches a queueing-delay tracker (may be nil).
func (s *Server) SetWaitStats(w *WaitStats) { s.wait = w }

// SetTracer attaches a request tracer (may be nil) reporting spans under
// the given resource name and lane.
func (s *Server) SetTracer(t Tracer, resource string, lane int) {
	s.tracer, s.tname, s.tlane = t, resource, lane
}

// SetScheduler attaches a queueing policy (see sched.go); nil restores
// the default FIFO. It must be called while the server is quiescent —
// switching policies with requests waiting would strand them in the
// previous queue structure.
func (s *Server) SetScheduler(sc Scheduler) {
	if s.QueueLen() > 0 {
		panic("sim: SetScheduler with requests waiting")
	}
	s.sched = sc
}

// Scheduler returns the attached policy (nil = FIFO).
func (s *Server) Scheduler() Scheduler { return s.sched }

// Width returns the number of parallel servers.
func (s *Server) Width() int { return s.width }

// Busy returns how many servers are currently occupied.
func (s *Server) Busy() int { return s.busy }

// QueueLen returns the number of waiting (not yet started) requests.
func (s *Server) QueueLen() int {
	if s.sched != nil {
		return s.sched.size()
	}
	return len(s.queue) - s.head
}

// popFront removes and returns the oldest waiting request.
func (s *Server) popFront() serverReq {
	r := s.queue[s.head]
	s.queue[s.head] = serverReq{} // release callback references
	s.head++
	switch {
	case s.head == len(s.queue):
		// Drained: rewind to reuse the backing array.
		s.queue = s.queue[:0]
		s.head = 0
	case s.head > 32 && s.head > len(s.queue)/2:
		// Mostly-consumed prefix: compact so the array cannot grow
		// without bound under a persistent backlog.
		n := copy(s.queue, s.queue[s.head:])
		for i := n; i < len(s.queue); i++ {
			s.queue[i] = serverReq{}
		}
		s.queue = s.queue[:n]
		s.head = 0
	}
	return r
}

// Submit enqueues a request needing the given service time. done runs when
// service completes; it may be nil.
func (s *Server) Submit(service Time, done func()) {
	s.SubmitFull(service, nil, done)
}

// SubmitFull enqueues a request; start (optional) runs when service begins,
// receiving the start time, and done (optional) when it completes.
func (s *Server) SubmitFull(service Time, start func(Time), done func()) {
	s.submit(serverReq{service: service, start: start, done: done})
}

// SubmitDelayed enqueues a request whose done callback runs extra time
// after service completes — the fixed post-service latency of a Pipe —
// without the wrapper closure Submit would need.
func (s *Server) SubmitDelayed(service, extra Time, done func()) {
	s.submit(serverReq{service: service, done: done, doneDelay: extra})
}

// SubmitDeadline enqueues a request carrying an EDF completion target.
// Only a deadline-aware scheduler reads it; under every other policy
// (including the FIFO default) this is identical to SubmitFull.
func (s *Server) SubmitDeadline(service, deadline Time, start func(Time), done func()) {
	s.submit(serverReq{service: service, start: start, done: done, deadline: deadline})
}

func (s *Server) submit(r serverReq) {
	if r.service < 0 {
		panic("sim: negative service time")
	}
	r.arrived = s.k.Now()
	if s.busy < s.width {
		s.begin(r)
		return
	}
	if s.sched != nil {
		s.subSeq++
		r.seq = s.subSeq
		s.sched.push(r)
		return
	}
	s.queue = append(s.queue, r)
}

func (s *Server) begin(r serverReq) {
	s.busy++
	startAt := s.k.Now()
	if s.util != nil {
		s.util.Add(startAt, +1)
	}
	if s.wait != nil {
		s.wait.Observe(startAt - r.arrived)
	}
	if r.start != nil {
		r.start(startAt)
	}
	var slot int32
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		slot = int32(len(s.slots))
		s.slots = append(s.slots, inService{})
	}
	s.slots[slot] = inService{done: r.done, arrived: r.arrived, startAt: startAt, doneDelay: r.doneDelay}
	s.k.afterServer(r.service, s, slot)
}

// complete finishes the request in the given slot. Dispatched directly
// from the kernel's event loop (see event).
func (s *Server) complete(slot int32) {
	r := s.slots[slot]
	s.slots[slot] = inService{} // release the callback reference
	s.free = append(s.free, slot)
	s.busy--
	if s.util != nil {
		s.util.Add(s.k.Now(), -1)
	}
	if s.tracer != nil {
		s.tracer.ServerSpan(s.tname, s.tlane, r.arrived, r.startAt, s.k.Now())
	}
	// Hand the freed slot to the chosen waiter before running done:
	// a Submit issued synchronously from the completion callback
	// would otherwise see busy < width and begin service at once,
	// jumping ahead of requests that arrived earlier.
	if s.sched != nil {
		if s.busy < s.width {
			if w, ok := s.sched.pop(); ok {
				s.begin(w)
			}
		}
	} else if s.QueueLen() > 0 && s.busy < s.width {
		s.begin(s.popFront())
	}
	switch {
	case r.done == nil:
	case r.doneDelay > 0:
		s.k.After(r.doneDelay, r.done)
	default:
		r.done()
	}
}

// Pipe is a bandwidth-limited byte mover with fixed per-transfer latency:
// a transfer of n bytes occupies the pipe for n/bandwidth and completes
// latency later. It models DRAM ports, PCIe links, and channel buses when
// byte-granular accounting is wanted.
type Pipe struct {
	srv         *Server
	bytesPerSec float64
	latency     Time
	moved       uint64
}

// NewPipe returns a pipe with the given bandwidth (bytes/second) and fixed
// latency added to every transfer.
func NewPipe(k *Kernel, bytesPerSec float64, latency Time) *Pipe {
	if bytesPerSec <= 0 {
		panic("sim: pipe bandwidth must be positive")
	}
	return &Pipe{srv: NewServer(k, 1), bytesPerSec: bytesPerSec, latency: latency}
}

// SetUtilization attaches a utilization tracker to the underlying server.
func (p *Pipe) SetUtilization(u *Utilization) { p.srv.SetUtilization(u) }

// SetTracer attaches a request tracer to the underlying server.
func (p *Pipe) SetTracer(t Tracer, resource string, lane int) {
	p.srv.SetTracer(t, resource, lane)
}

// OccupancyFor returns the bus-occupancy time for n bytes.
func (p *Pipe) OccupancyFor(n int) Time {
	return Time(math.Ceil(float64(n) / p.bytesPerSec * float64(Second)))
}

// Transfer moves n bytes through the pipe and runs done on completion.
func (p *Pipe) Transfer(n int, done func()) {
	if n < 0 {
		panic("sim: negative transfer size")
	}
	p.moved += uint64(n)
	p.srv.SubmitDelayed(p.OccupancyFor(n), p.latency, done)
}

// BytesMoved returns the total bytes accepted by the pipe.
func (p *Pipe) BytesMoved() uint64 { return p.moved }

// Occupancy reports (in-service, queued) transfers on the pipe — both
// zero once a run has drained.
func (p *Pipe) Occupancy() (busy, queued int) { return p.srv.Busy(), p.srv.QueueLen() }

// Bandwidth returns the pipe bandwidth in bytes per second.
func (p *Pipe) Bandwidth() float64 { return p.bytesPerSec }

// Utilization tracks how many units of a resource pool are active over
// time, producing both a time-weighted mean and a downsampled timeline
// (used for the paper's Figure 15 active-channels/dies plots).
type Utilization struct {
	active   int
	last     Time
	weighted float64 // ∫ active dt
	peak     int
	points   []UtilPoint
	maxPts   int
}

// UtilPoint is one sample of the active-unit count.
type UtilPoint struct {
	At     Time
	Active int
}

// NewUtilization returns a tracker keeping at most maxPoints timeline
// samples (0 means keep none, only aggregate statistics).
func NewUtilization(maxPoints int) *Utilization {
	return &Utilization{maxPts: maxPoints}
}

// Add records a change of delta active units at time t.
func (u *Utilization) Add(t Time, delta int) {
	if t > u.last {
		u.weighted += float64(u.active) * float64(t-u.last)
		u.last = t
	}
	u.active += delta
	if u.active < 0 {
		panic("sim: utilization went negative")
	}
	if u.active > u.peak {
		u.peak = u.active
	}
	if u.maxPts > 0 {
		if len(u.points) == u.maxPts {
			// Halve resolution: keep every other point.
			kept := u.points[:0]
			for i := 0; i < len(u.points); i += 2 {
				kept = append(kept, u.points[i])
			}
			u.points = kept
		}
		u.points = append(u.points, UtilPoint{At: t, Active: u.active})
	}
}

// Mean returns the time-weighted average active count over [0, end].
func (u *Utilization) Mean(end Time) float64 {
	if end <= 0 {
		return 0
	}
	w := u.weighted
	if end > u.last {
		w += float64(u.active) * float64(end-u.last)
	}
	return w / float64(end)
}

// Peak returns the maximum simultaneous active count observed.
func (u *Utilization) Peak() int { return u.peak }

// Timeline returns the recorded (time, active) samples.
func (u *Utilization) Timeline() []UtilPoint { return u.points }

// WaitStats accumulates queueing-delay statistics.
type WaitStats struct {
	n     uint64
	total Time
	max   Time
}

// Observe records one queueing delay.
func (w *WaitStats) Observe(d Time) {
	w.n++
	w.total += d
	if d > w.max {
		w.max = d
	}
}

// Count returns the number of observations.
func (w *WaitStats) Count() uint64 { return w.n }

// Mean returns the average delay (0 if none observed).
func (w *WaitStats) Mean() Time {
	if w.n == 0 {
		return 0
	}
	return w.total / Time(w.n)
}

// Max returns the largest delay observed.
func (w *WaitStats) Max() Time { return w.max }

// Total returns the summed delay.
func (w *WaitStats) Total() Time { return w.total }
