package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestKernelOrdering(t *testing.T) {
	k := New()
	var got []int
	k.After(30, func() { got = append(got, 3) })
	k.After(10, func() { got = append(got, 1) })
	k.After(20, func() { got = append(got, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30 {
		t.Fatalf("Now = %v, want 30", k.Now())
	}
}

func TestKernelFIFOTiebreak(t *testing.T) {
	k := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	k.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events ran out of insertion order: %v", got)
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := New()
	var times []Time
	k.After(10, func() {
		times = append(times, k.Now())
		k.After(5, func() { times = append(times, k.Now()) })
	})
	k.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("times = %v, want [10 15]", times)
	}
}

func TestKernelPastSchedulingPanics(t *testing.T) {
	k := New()
	k.After(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	k.Run()
}

func TestKernelNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	New().After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	k := New()
	ran := 0
	k.After(10, func() { ran++ })
	k.After(20, func() { ran++ })
	k.After(30, func() { ran++ })
	if drained := k.RunUntil(20); drained {
		t.Fatal("RunUntil(20) reported drained with an event pending")
	}
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	if !k.RunUntil(100) {
		t.Fatal("RunUntil(100) should drain")
	}
	if ran != 3 {
		t.Fatalf("ran = %d, want 3", ran)
	}
}

func TestDurationConversion(t *testing.T) {
	if Duration(3*time.Microsecond) != 3*Microsecond {
		t.Fatal("Duration conversion wrong")
	}
	if got := (1500 * Microsecond).String(); got != "1.500ms" {
		t.Fatalf("String = %q", got)
	}
}

func TestTimeStringByMagnitude(t *testing.T) {
	// Regression: unit selection must use the magnitude, so negative
	// durations pick the same unit as their positive counterparts
	// (-5µs used to fall through every >= threshold and print "-5000ns").
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{Microsecond, "1.000µs"},
		{5 * Microsecond, "5.000µs"},
		{Millisecond, "1.000ms"},
		{1500 * Microsecond, "1.500ms"},
		{Second, "1.000s"},
		{-999, "-999ns"},
		{-Microsecond, "-1.000µs"},
		{-5 * Microsecond, "-5.000µs"},
		{-Millisecond, "-1.000ms"},
		{-1500 * Microsecond, "-1.500ms"},
		{-Second, "-1.000s"},
		{-2*Second - 500*Millisecond, "-2.500s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestRunUntilAdvancesClockOnDrain(t *testing.T) {
	// Regression: RunUntil used to leave the clock at the last executed
	// event instead of advancing it to the limit.
	k := New()
	ran := false
	k.After(10, func() { ran = true })
	if !k.RunUntil(50) {
		t.Fatal("RunUntil(50) should drain")
	}
	if !ran {
		t.Fatal("event at 10 did not run")
	}
	if k.Now() != 50 {
		t.Fatalf("Now = %v, want 50", k.Now())
	}
	// The advanced clock is real: scheduling before it must panic ...
	func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling at 40 after RunUntil(50) did not panic")
			}
		}()
		k.At(40, func() {})
	}()
	// ... and relative delays measure from the limit.
	var at Time
	k.After(5, func() { at = k.Now() })
	k.Run()
	if at != 55 {
		t.Fatalf("After(5) ran at %v, want 55", at)
	}
}

func TestRunUntilAdvancesClockOnEarlyStop(t *testing.T) {
	k := New()
	ran := 0
	k.After(10, func() { ran++ })
	k.After(100, func() { ran++ })
	if k.RunUntil(50) {
		t.Fatal("RunUntil(50) reported drained with an event pending")
	}
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if k.Now() != 50 {
		t.Fatalf("Now = %v, want 50", k.Now())
	}
	// The pending event past the limit still runs on the next window.
	if !k.RunUntil(100) {
		t.Fatal("RunUntil(100) should drain")
	}
	if ran != 2 || k.Now() != 100 {
		t.Fatalf("ran = %d at %v, want 2 at 100", ran, k.Now())
	}
}

func TestRunUntilNeverRewindsClock(t *testing.T) {
	k := New()
	k.After(30, func() {})
	k.Run()
	if k.RunUntil(10) != true {
		t.Fatal("empty queue should drain")
	}
	if k.Now() != 30 {
		t.Fatalf("RunUntil must not rewind the clock: Now = %v", k.Now())
	}
}

func TestKernelRandomOrderProperty(t *testing.T) {
	// Property: regardless of scheduling order, callbacks execute in
	// nondecreasing time order.
	f := func(delays []uint16) bool {
		k := New()
		var seen []Time
		for _, d := range delays {
			k.After(Time(d), func() { seen = append(seen, k.Now()) })
		}
		k.Run()
		return sort.SliceIsSorted(seen, func(i, j int) bool { return seen[i] < seen[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestServerSequential(t *testing.T) {
	k := New()
	s := NewServer(k, 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		s.Submit(10, func() { ends = append(ends, k.Now()) })
	}
	k.Run()
	want := []Time{10, 20, 30}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestServerParallelWidth(t *testing.T) {
	k := New()
	s := NewServer(k, 2)
	var ends []Time
	for i := 0; i < 4; i++ {
		s.Submit(10, func() { ends = append(ends, k.Now()) })
	}
	k.Run()
	// Two start immediately (end at 10), next two queue (end at 20).
	want := []Time{10, 10, 20, 20}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestServerWaitStats(t *testing.T) {
	k := New()
	s := NewServer(k, 1)
	var ws WaitStats
	s.SetWaitStats(&ws)
	s.Submit(10, nil)
	s.Submit(10, nil)
	s.Submit(10, nil)
	k.Run()
	if ws.Count() != 3 {
		t.Fatalf("count = %d", ws.Count())
	}
	if ws.Mean() != 10 { // waits 0, 10, 20 → mean 10
		t.Fatalf("mean wait = %v, want 10", ws.Mean())
	}
	if ws.Max() != 20 {
		t.Fatalf("max wait = %v, want 20", ws.Max())
	}
}

func TestServerStartCallback(t *testing.T) {
	k := New()
	s := NewServer(k, 1)
	var starts []Time
	for i := 0; i < 2; i++ {
		s.SubmitFull(7, func(at Time) { starts = append(starts, at) }, nil)
	}
	k.Run()
	if starts[0] != 0 || starts[1] != 7 {
		t.Fatalf("starts = %v, want [0 7]", starts)
	}
}

func TestServerLittlesLawProperty(t *testing.T) {
	// Property (conservation): for an M/D/1-style run, the server's busy
	// fraction equals offered load when underloaded, and all work completes.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := New()
		s := NewServer(k, 1)
		u := NewUtilization(0)
		s.SetUtilization(u)
		const n = 100
		done := 0
		var at Time
		for i := 0; i < n; i++ {
			at += Time(rng.Intn(20)) // arrivals spaced 0..19
			k.At(at, func() { s.Submit(5, func() { done++ }) })
		}
		k.Run()
		if done != n {
			return false
		}
		// total busy time must be exactly n * service.
		busy := u.Mean(k.Now()) * float64(k.Now())
		return int64(busy+0.5) == int64(n*5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPipeBandwidthAndLatency(t *testing.T) {
	k := New()
	// 1000 bytes/sec → 1 byte per millisecond.
	p := NewPipe(k, 1000, 5)
	var end Time
	p.Transfer(10, func() { end = k.Now() })
	k.Run()
	// 10 bytes → 10 ms occupancy + 5 ns latency.
	want := 10*Millisecond + 5
	if end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
	if p.BytesMoved() != 10 {
		t.Fatalf("moved = %d", p.BytesMoved())
	}
}

func TestPipeSerializesTransfers(t *testing.T) {
	k := New()
	p := NewPipe(k, 1000, 0)
	var ends []Time
	p.Transfer(10, func() { ends = append(ends, k.Now()) })
	p.Transfer(10, func() { ends = append(ends, k.Now()) })
	k.Run()
	if ends[0] != 10*Millisecond || ends[1] != 20*Millisecond {
		t.Fatalf("ends = %v", ends)
	}
}

func TestUtilizationMeanAndPeak(t *testing.T) {
	u := NewUtilization(16)
	u.Add(0, +1)
	u.Add(10, +1)
	u.Add(20, -1)
	u.Add(30, -1)
	// active: 1 over [0,10), 2 over [10,20), 1 over [20,30) → mean 4/3 over 30.
	got := u.Mean(30)
	if got < 1.33 || got > 1.34 {
		t.Fatalf("mean = %v", got)
	}
	if u.Peak() != 2 {
		t.Fatalf("peak = %d", u.Peak())
	}
	if len(u.Timeline()) != 4 {
		t.Fatalf("timeline len = %d", len(u.Timeline()))
	}
}

func TestUtilizationDownsamples(t *testing.T) {
	u := NewUtilization(8)
	for i := 0; i < 100; i++ {
		u.Add(Time(i), +1)
	}
	if len(u.Timeline()) > 8 {
		t.Fatalf("timeline grew beyond cap: %d", len(u.Timeline()))
	}
	if u.Peak() != 100 {
		t.Fatalf("peak = %d", u.Peak())
	}
}

func TestUtilizationNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative active count did not panic")
		}
	}()
	u := NewUtilization(0)
	u.Add(0, -1)
}

func TestEventQueueHeapProperty(t *testing.T) {
	// Property: the 4-ary heap drains in (time, seq) order for arbitrary
	// interleavings of pushes and pops.
	f := func(delays []uint16) bool {
		var q eventQueue
		var seq uint64
		for i, d := range delays {
			seq++
			q.push(event{at: Time(d), seq: seq})
			if i%3 == 2 && q.len() > 0 {
				q.pop() // exercise mid-stream pops too
			}
		}
		var prev event
		first := true
		for q.len() > 0 {
			e := q.pop()
			if !first && e.before(prev) {
				return false
			}
			prev, first = e, false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestServerRingReusesBacklog(t *testing.T) {
	// A long backlog through a width-1 server must complete in strict
	// arrival order and leave the ring fully drained.
	k := New()
	s := NewServer(k, 1)
	const n = 500
	var order []int
	for i := 0; i < n; i++ {
		i := i
		s.Submit(3, func() { order = append(order, i) })
	}
	if got := s.QueueLen(); got != n-1 {
		t.Fatalf("QueueLen = %d, want %d", got, n-1)
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("completion order broken at %d: %v", i, v)
		}
	}
	if s.QueueLen() != 0 || s.head != 0 || len(s.queue) != 0 {
		t.Fatalf("ring not drained: head=%d len=%d", s.head, len(s.queue))
	}
}

func TestServerDoneSubmitDoesNotJumpQueue(t *testing.T) {
	// Regression: the completion closure decremented busy before running
	// done, so a Submit issued synchronously from a done callback saw a
	// free slot and began service immediately — ahead of older queued
	// requests. The freed slot must go to the oldest waiter first.
	k := New()
	s := NewServer(k, 1)
	var order []string
	s.Submit(10, func() {
		order = append(order, "A")
		// Chained from A's completion: must queue behind B.
		s.Submit(10, func() { order = append(order, "C") })
	})
	s.Submit(10, func() { order = append(order, "B") })
	k.Run()
	want := []string{"A", "B", "C"}
	if len(order) != len(want) {
		t.Fatalf("completions = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order = %v, want %v (chained submit jumped the queue)", order, want)
		}
	}
}

func TestServerChainedSubmitsPreserveFIFO(t *testing.T) {
	// A deeper chain: every completion enqueues a successor while a
	// standing backlog exists. Arrival order must win every time.
	k := New()
	s := NewServer(k, 2)
	var order []int
	next := 10
	var chain func(id int) func()
	chain = func(id int) func() {
		return func() {
			order = append(order, id)
			if next < 16 {
				id := next
				next++
				s.Submit(5, chain(id))
			}
		}
	}
	for i := 0; i < 10; i++ {
		s.Submit(5, chain(i))
	}
	k.Run()
	if len(order) != 16 {
		t.Fatalf("completed %d, want 16", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("completion order broken at %d: %v", i, order)
		}
	}
}

// spanRec collects tracer callbacks for tests.
type spanRec struct {
	got []spanRecEntry
}

type spanRecEntry struct {
	name                string
	lane                int
	arrived, start, end Time
}

func (r *spanRec) ServerSpan(name string, lane int, arrived, start, end Time) {
	r.got = append(r.got, spanRecEntry{name, lane, arrived, start, end})
}

func TestServerTracerSpans(t *testing.T) {
	k := New()
	s := NewServer(k, 1)
	rec := &spanRec{}
	s.SetTracer(rec, "die", 3)
	s.Submit(10, nil)
	s.Submit(10, nil)
	k.Run()
	if len(rec.got) != 2 {
		t.Fatalf("spans = %d, want 2", len(rec.got))
	}
	first, second := rec.got[0], rec.got[1]
	if first.name != "die" || first.lane != 3 {
		t.Fatalf("span identity = %q/%d", first.name, first.lane)
	}
	if first.arrived != 0 || first.start != 0 || first.end != 10 {
		t.Fatalf("first span = %+v", first)
	}
	if second.arrived != 0 || second.start != 10 || second.end != 20 {
		t.Fatalf("second span (queued) = %+v, want wait 10 service 10", second)
	}
}

func TestPipeTracerSpans(t *testing.T) {
	k := New()
	p := NewPipe(k, 1000, 0) // 1 byte per ms
	rec := &spanRec{}
	p.SetTracer(rec, "bus", 0)
	p.Transfer(10, nil)
	k.Run()
	if len(rec.got) != 1 {
		t.Fatalf("spans = %d, want 1", len(rec.got))
	}
	if got := rec.got[0]; got.end-got.start != 10*Millisecond {
		t.Fatalf("occupancy span = %+v", got)
	}
}

func TestServerNoTracerAddsNoAllocs(t *testing.T) {
	// The tracing hook must be free when disabled: steady-state submit +
	// complete through a backlogged server allocates exactly one closure
	// per request, tracer or not. Guard the disabled path here; the
	// traced path is exercised by TestServerTracerSpans.
	k := New()
	s := NewServer(k, 1)
	// Warm up ring and heap capacity.
	for i := 0; i < 64; i++ {
		s.Submit(1, nil)
	}
	k.Run()
	avg := testing.AllocsPerRun(50, func() {
		for i := 0; i < 8; i++ {
			s.Submit(1, nil)
		}
		k.Run()
	})
	// 8 submits → 8 completion closures; anything above that is a
	// regression on the no-tracer hot path.
	if avg > 8 {
		t.Fatalf("allocs per 8 requests = %.1f, want ≤ 8", avg)
	}
}

func TestServerInterleavedArrivals(t *testing.T) {
	// Arrivals interleaved with completions exercise the ring compaction
	// path; order and count must be preserved.
	k := New()
	s := NewServer(k, 2)
	var order []int
	next := 0
	var feed func()
	feed = func() {
		if next >= 300 {
			return
		}
		i := next
		next++
		s.Submit(Time(5+i%3), func() { order = append(order, i) })
		k.After(2, feed)
	}
	k.At(0, feed)
	k.At(0, feed)
	k.Run()
	if len(order) != 300 {
		t.Fatalf("completed %d, want 300", len(order))
	}
}

func TestKernelCancelPollStopsRun(t *testing.T) {
	k := New()
	executed := 0
	var self func()
	self = func() {
		executed++
		k.After(1, self) // self-sustaining: without cancel, Run never drains
	}
	k.At(0, self)
	canceled := false
	k.SetCancel(func() bool { return canceled })
	// Let a few strides pass, then cancel from inside an event.
	k.After(5*cancelStride, func() { canceled = true })
	done := make(chan struct{})
	go func() { k.Run(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop after the cancel poll fired")
	}
	if !k.Canceled() {
		t.Fatal("Canceled() = false after a cancel-poll stop")
	}
	if !k.Stopped() {
		t.Fatal("Stopped() = false after a cancel-poll stop")
	}
	// The poll runs every cancelStride events, so at most one extra
	// stride of events executed after the flag flipped.
	if executed > 7*cancelStride {
		t.Fatalf("executed %d events after cancellation, want prompt stop", executed)
	}
}

func TestKernelNilCancelUnchanged(t *testing.T) {
	k := New()
	n := 0
	for i := 0; i < 10; i++ {
		k.After(Time(i), func() { n++ })
	}
	k.Run()
	if n != 10 || k.Canceled() {
		t.Fatalf("n=%d canceled=%v, want 10/false", n, k.Canceled())
	}
}
