package sim

// Microbenchmarks for the event kernel and the FIFO service center.
// Run with -benchmem: the slice-backed 4-ary heap schedules events with
// zero per-event interface allocations (container/heap boxed every
// Push/Pop through `any`), and the head-indexed Server ring pops without
// reslicing the backlog.

import "testing"

// BenchmarkEventKernel measures raw schedule+dispatch throughput: a
// chain of self-rescheduling events interleaved with a fan-out burst,
// which keeps the heap at a realistic mixed depth.
func BenchmarkEventKernel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := New()
		n := 0
		var spin func()
		spin = func() {
			n++
			if n < 4096 {
				k.After(Time(7+n%13), spin)
			}
		}
		// A standing burst so the heap works at depth, not as a queue.
		for j := 0; j < 64; j++ {
			k.At(Time(j*3), func() {})
		}
		k.After(1, spin)
		k.Run()
	}
}

// BenchmarkKernelDeep measures scheduling against a deep standing queue,
// the regime where heap arity and boxing dominate.
func BenchmarkKernelDeep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := New()
		for j := 0; j < 10_000; j++ {
			k.At(Time((j*2654435761)%100_000), func() {})
		}
		k.Run()
	}
}

// BenchmarkServer measures the FIFO hot path under persistent backlog:
// every completion pops the ring head and begins the next request.
func BenchmarkServer(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := New()
		s := NewServer(k, 4)
		done := 0
		// One shared callback: the benchmark measures the server's
		// request path, not per-submit closure construction.
		cb := func() { done++ }
		for j := 0; j < 4096; j++ {
			s.Submit(10, cb)
		}
		k.Run()
		if done != 4096 {
			b.Fatalf("done = %d", done)
		}
	}
}

// BenchmarkServerSched is BenchmarkServer with an SJF policy attached:
// the heap push/pop replaces the ring pop, with varied service times so
// the heap actually reorders.
func BenchmarkServerSched(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := New()
		s := NewServer(k, 4)
		s.SetScheduler(NewSJF())
		done := 0
		cb := func() { done++ }
		for j := 0; j < 4096; j++ {
			s.Submit(Time(j%13+1), cb)
		}
		k.Run()
		if done != 4096 {
			b.Fatalf("done = %d", done)
		}
	}
}

// nullTracer is the cheapest possible Tracer — the benchmark below
// isolates the cost of the hook dispatch itself.
type nullTracer struct{ spans int }

func (t *nullTracer) ServerSpan(string, int, Time, Time, Time) { t.spans++ }

// BenchmarkServerTraced is BenchmarkServer with a tracer attached, for
// comparing the enabled-tracing overhead against the nil-check baseline.
func BenchmarkServerTraced(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := New()
		s := NewServer(k, 4)
		tr := &nullTracer{}
		s.SetTracer(tr, "bench", 0)
		done := 0
		cb := func() { done++ }
		for j := 0; j < 4096; j++ {
			s.Submit(10, cb)
		}
		k.Run()
		if done != 4096 || tr.spans != 4096 {
			b.Fatalf("done = %d spans = %d", done, tr.spans)
		}
	}
}
