package sim

// Fabric models the PCIe/NVMe-oF interconnect of a multi-device
// cluster: every endpoint (device or coordinator) owns a width-1 egress
// port and a width-1 ingress port, each a bandwidth-limited Pipe, so a
// chatty sender and a hot receiver both queue independently — the
// store-and-forward shape of a switched fabric. The wire latency is
// charged once, on the egress leg.
//
// Like every service center in this package, a Fabric is owned by one
// single-threaded Kernel: byte counters need no synchronization and
// message completion order is deterministic.
type Fabric struct {
	egress  []*Pipe
	ingress []*Pipe
	sentBy  []uint64 // bytes accepted per source endpoint
	msgs    uint64
}

// NewFabric builds a fabric with the given per-port bandwidth
// (bytes/second) and per-message wire latency.
func NewFabric(k *Kernel, endpoints int, bytesPerSec float64, latency Time) *Fabric {
	if endpoints <= 0 {
		panic("sim: fabric needs at least one endpoint")
	}
	f := &Fabric{
		egress:  make([]*Pipe, endpoints),
		ingress: make([]*Pipe, endpoints),
		sentBy:  make([]uint64, endpoints),
	}
	for i := range f.egress {
		f.egress[i] = NewPipe(k, bytesPerSec, latency)
		f.ingress[i] = NewPipe(k, bytesPerSec, 0)
	}
	return f
}

// Endpoints returns how many ports the fabric was built with.
func (f *Fabric) Endpoints() int { return len(f.egress) }

// Send moves n bytes from src to dst and runs done when the message has
// cleared both ports. A loopback send (src == dst) completes without
// touching the fabric — co-resident traffic is free, which is exactly
// the asymmetry partitioning exists to exploit.
func (f *Fabric) Send(src, dst, n int, done func()) {
	if n < 0 {
		panic("sim: negative fabric message size")
	}
	if src == dst {
		done()
		return
	}
	f.msgs++
	f.sentBy[src] += uint64(n)
	in := f.ingress[dst]
	f.egress[src].Transfer(n, func() {
		in.Transfer(n, done)
	})
}

// BytesFrom returns the bytes endpoint i has pushed onto the fabric.
func (f *Fabric) BytesFrom(i int) uint64 { return f.sentBy[i] }

// BytesTotal returns all bytes moved across the fabric.
func (f *Fabric) BytesTotal() uint64 {
	var t uint64
	for _, b := range f.sentBy {
		t += b
	}
	return t
}

// Messages returns how many non-loopback sends the fabric accepted.
func (f *Fabric) Messages() uint64 { return f.msgs }

// OccupancyFor returns the single-port occupancy time for n bytes.
func (f *Fabric) OccupancyFor(n int) Time { return f.egress[0].OccupancyFor(n) }

// Quiesced reports whether every port has drained — true between
// batches and at end of run, a cheap conservation check.
func (f *Fabric) Quiesced() bool {
	for i := range f.egress {
		if b, q := f.egress[i].Occupancy(); b+q > 0 {
			return false
		}
		if b, q := f.ingress[i].Occupancy(); b+q > 0 {
			return false
		}
	}
	return true
}
