package sim

import (
	"reflect"
	"testing"
)

// schedScenario submits a long blocker and then, while the server is
// busy, the given waiter services (ids 0..n-1 in submission order).
// It returns the waiter completion order under the scheduler.
func schedScenario(sc Scheduler, services []Time, deadlines []Time) []int {
	k := New()
	s := NewServer(k, 1)
	s.SetScheduler(sc)
	s.Submit(1000, nil) // blocker: every waiter below queues behind it
	var order []int
	for i, svc := range services {
		i := i
		dl := Time(0)
		if deadlines != nil {
			dl = deadlines[i]
		}
		s.SubmitDeadline(svc, dl, nil, func() { order = append(order, i) })
	}
	k.Run()
	return order
}

func TestSJFServesShortestFirst(t *testing.T) {
	got := schedScenario(NewSJF(), []Time{30, 10, 20}, nil)
	want := []int{1, 2, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SJF order = %v, want %v", got, want)
	}
}

func TestSJFTieBreaksByArrival(t *testing.T) {
	got := schedScenario(NewSJF(), []Time{10, 10, 10, 10}, nil)
	want := []int{0, 1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SJF tie order = %v, want arrival order %v", got, want)
	}
}

func TestEDFServesEarliestDeadline(t *testing.T) {
	got := schedScenario(NewEDF(1_000_000),
		[]Time{10, 10, 10},
		[]Time{3000, 1000, 2000})
	want := []int{1, 2, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("EDF order = %v, want %v", got, want)
	}
}

// TestEDFDefaultDeadlineIsSeniority: requests without an explicit
// deadline get arrived+budget, so among them age decides — and an old
// default-deadline request outranks a newer one with a later explicit
// deadline.
func TestEDFDefaultDeadlineIsSeniority(t *testing.T) {
	got := schedScenario(NewEDF(500),
		[]Time{10, 10, 10},
		[]Time{0, 2000, 0}) // defaults resolve to 0+500
	want := []int{0, 2, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("EDF default-deadline order = %v, want %v", got, want)
	}
}

// TestEDFStarvationBound: under a sustained stream of later arrivals
// with no explicit deadlines, seniority converts to urgency — the
// oldest waiter is served first the moment a slot frees, so no request
// waits behind traffic that arrived after it.
func TestEDFStarvationBound(t *testing.T) {
	k := New()
	s := NewServer(k, 1)
	s.SetScheduler(NewEDF(100))
	s.Submit(1000, nil)
	victimDone := Time(-1)
	laterBefore := 0
	s.SubmitDeadline(50, 0, nil, func() { victimDone = k.Now() })
	// 20 later arrivals, staggered while the blocker still runs.
	for i := 0; i < 20; i++ {
		at := Time(10 * (i + 1))
		k.After(at, func() {
			s.SubmitDeadline(5, 0, nil, func() {
				if victimDone < 0 {
					laterBefore++
				}
			})
		})
	}
	k.Run()
	if victimDone < 0 {
		t.Fatal("victim never completed")
	}
	if laterBefore != 0 {
		t.Fatalf("%d later arrivals served before the senior request", laterBefore)
	}
}

// TestTotalFitReordersWithinBatch: with zero break penalty the DP forms
// one batch over the window and serves it shortest-first.
func TestTotalFitReordersWithinBatch(t *testing.T) {
	got := schedScenario(NewTotalFit(8, 0), []Time{50, 10, 30}, nil)
	want := []int{1, 2, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("total-fit order = %v, want shortest-first %v", got, want)
	}
}

// TestTotalFitLargePenaltyIsFIFO: a break penalty dwarfing any possible
// stall saving makes singleton batches optimal — pure arrival order.
func TestTotalFitLargePenaltyIsFIFO(t *testing.T) {
	got := schedScenario(NewTotalFit(8, 1<<40), []Time{50, 10, 30}, nil)
	want := []int{0, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("total-fit order = %v, want FIFO %v", got, want)
	}
}

// TestTotalFitStarvationBound: batches stay in arrival order, so a long
// request can be overtaken only by requests planned into its own batch —
// at most maxBatch-1 of them, however many shorter requests keep arriving.
func TestTotalFitStarvationBound(t *testing.T) {
	const maxBatch = 4
	k := New()
	s := NewServer(k, 1)
	s.SetScheduler(NewTotalFit(maxBatch, 0))
	s.Submit(1000, nil)
	victimDone := Time(-1)
	overtakes := 0
	s.SubmitDeadline(500, 0, nil, func() { victimDone = k.Now() })
	for i := 0; i < 30; i++ {
		at := Time(10 * (i + 1))
		k.After(at, func() {
			s.Submit(1, func() {
				if victimDone < 0 {
					overtakes++
				}
			})
		})
	}
	k.Run()
	if victimDone < 0 {
		t.Fatal("victim never completed")
	}
	if overtakes > maxBatch-1 {
		t.Fatalf("victim overtaken by %d later arrivals, bound is %d", overtakes, maxBatch-1)
	}
}

// TestSchedulerDeterministic: identical submission schedules produce
// identical completion orders, run after run, for every policy.
func TestSchedulerDeterministic(t *testing.T) {
	mks := map[string]func() Scheduler{
		"sjf":      NewSJF,
		"edf":      func() Scheduler { return NewEDF(300) },
		"totalfit": func() Scheduler { return NewTotalFit(4, 20) },
	}
	services := make([]Time, 64)
	r := uint64(99)
	for i := range services {
		r = r*6364136223846793005 + 1442695040888963407
		services[i] = Time(r%97 + 1)
	}
	for name, mk := range mks {
		first := schedScenario(mk(), services, nil)
		if len(first) != len(services) {
			t.Fatalf("%s: %d of %d completed", name, len(first), len(services))
		}
		for run := 0; run < 3; run++ {
			if again := schedScenario(mk(), services, nil); !reflect.DeepEqual(again, first) {
				t.Fatalf("%s: completion order diverged between runs:\n%v\n%v", name, first, again)
			}
		}
	}
}

// TestSchedulerDrainsAndCounts: QueueLen reflects the policy queue and
// every request completes (conservation across the scheduled path).
func TestSchedulerDrainsAndCounts(t *testing.T) {
	for _, mk := range []func() Scheduler{
		NewSJF,
		func() Scheduler { return NewEDF(100) },
		func() Scheduler { return NewTotalFit(3, 10) },
	} {
		k := New()
		s := NewServer(k, 2)
		s.SetScheduler(mk())
		done := 0
		for i := 0; i < 100; i++ {
			s.Submit(Time(i%11+1), func() { done++ })
		}
		if got := s.QueueLen(); got != 98 {
			t.Fatalf("%s: QueueLen = %d, want 98 (2 in service)", s.Scheduler().name(), got)
		}
		k.Run()
		if done != 100 {
			t.Fatalf("%s: %d of 100 completed", s.Scheduler().name(), done)
		}
		if s.QueueLen() != 0 || s.Busy() != 0 {
			t.Fatalf("%s: not drained", s.Scheduler().name())
		}
	}
}

func TestSetSchedulerPanicsWithWaiters(t *testing.T) {
	k := New()
	s := NewServer(k, 1)
	s.Submit(10, nil)
	s.Submit(10, nil) // waits
	defer func() {
		if recover() == nil {
			t.Fatal("SetScheduler with waiting requests did not panic")
		}
	}()
	s.SetScheduler(NewSJF())
}

// TestSchedulerWaitStatsTracer: the tracer and wait accounting see
// scheduled requests exactly as FIFO ones (arrived/start/end spans).
func TestSchedulerWaitStatsTracer(t *testing.T) {
	k := New()
	s := NewServer(k, 1)
	s.SetScheduler(NewSJF())
	tr := &nullTracer{}
	s.SetTracer(tr, "t", 0)
	for i := 0; i < 10; i++ {
		s.Submit(5, nil)
	}
	k.Run()
	if tr.spans != 10 {
		t.Fatalf("spans = %d, want 10", tr.spans)
	}
}
