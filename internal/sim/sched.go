package sim

// This file makes the Server's dequeue decision a pluggable policy.
// A Server with no scheduler attached (the default) serves its waiting
// requests in strict arrival order through the head-indexed FIFO slice
// in sim.go — that path is untouched and remains the zero-cost common
// case. Attaching a Scheduler redirects every waiting request into the
// policy's own queue structure; the policy then chooses which waiter
// receives each freed slot.
//
// Three policies are provided:
//
//   - SJF (shortest job first): a min-heap on service time. Minimizes
//     mean wait on a single server when service times vary; ties break
//     by arrival sequence so the order stays deterministic.
//   - EDF (earliest deadline first): a min-heap on per-request
//     deadlines. Requests submitted without an explicit deadline
//     (SubmitDeadline with deadline 0, or any plain Submit) get
//     arrived+budget, so seniority converts into urgency and no
//     request starves under sustained load.
//   - TotalFit: a Knuth-Plass-style batch planner. Waiting requests
//     are kept in arrival order; when the policy needs a new batch it
//     runs a dynamic program over the batch-break candidates of the
//     queue's leading window, choosing boundaries that minimize total
//     badness = within-batch stall (the summed waiting time a
//     shortest-first service order leaves inside the batch) plus a
//     quadratic penalty on batch length (the seniority inversion a
//     long reordered batch inflicts on its oldest members). Requests
//     are reordered shortest-first only inside a batch; batches
//     themselves stay in arrival order, so the delay any request can
//     suffer from later arrivals is bounded by one planning window.
//
// Every policy breaks ties by arrival sequence, so a scheduled server
// remains fully deterministic for a given submission schedule.

// Scheduler orders a Server's waiting requests. Implementations live in
// this package (the methods traffic in the unexported request record);
// construct them with NewSJF, NewEDF, or NewTotalFit and attach with
// (*Server).SetScheduler. A scheduler instance must not be shared
// between servers — each holds per-server queue state.
type Scheduler interface {
	// push adds a waiting request (called only when all slots are busy).
	push(r serverReq)
	// pop removes and returns the next request to serve.
	pop() (serverReq, bool)
	// size returns the number of waiting requests.
	size() int
	// name returns the policy's short identifier.
	name() string
}

// schedEntry is one queued request plus its ordering key. seq is the
// server's submission counter, the deterministic FIFO tiebreaker.
type schedEntry struct {
	r   serverReq
	key Time
	seq uint64
}

func (e schedEntry) before(o schedEntry) bool {
	if e.key != o.key {
		return e.key < o.key
	}
	return e.seq < o.seq
}

// entryHeap is a slice-backed binary min-heap of schedEntry, ordered by
// (key, seq). Policies on contended die/channel servers see queue
// depths in the tens, where a binary heap's constant factor wins.
type entryHeap []schedEntry

func (h *entryHeap) push(e schedEntry) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q[i].before(q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (h *entryHeap) pop() schedEntry {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = schedEntry{} // release callback references
	*h = q[:n]
	q = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && q[l].before(q[best]) {
			best = l
		}
		if r < n && q[r].before(q[best]) {
			best = r
		}
		if best == i {
			return top
		}
		q[i], q[best] = q[best], q[i]
		i = best
	}
}

// sjfSched serves the waiting request with the shortest service time.
type sjfSched struct{ h entryHeap }

// NewSJF returns a shortest-job-first scheduler.
func NewSJF() Scheduler { return &sjfSched{} }

func (s *sjfSched) push(r serverReq) {
	s.h.push(schedEntry{r: r, key: r.service, seq: r.seq})
}

func (s *sjfSched) pop() (serverReq, bool) {
	if len(s.h) == 0 {
		return serverReq{}, false
	}
	return s.h.pop().r, true
}

func (s *sjfSched) size() int    { return len(s.h) }
func (s *sjfSched) name() string { return "sjf" }

// edfSched serves the waiting request with the earliest deadline.
type edfSched struct {
	h      entryHeap
	budget Time
}

// NewEDF returns an earliest-deadline-first scheduler. Requests
// carrying no explicit deadline are assigned arrival time + budget, so
// a request's urgency grows with its seniority and none starves.
func NewEDF(budget Time) Scheduler {
	if budget <= 0 {
		panic("sim: EDF budget must be positive")
	}
	return &edfSched{budget: budget}
}

func (s *edfSched) push(r serverReq) {
	dl := r.deadline
	if dl == 0 {
		dl = r.arrived + s.budget
	}
	s.h.push(schedEntry{r: r, key: dl, seq: r.seq})
}

func (s *edfSched) pop() (serverReq, bool) {
	if len(s.h) == 0 {
		return serverReq{}, false
	}
	return s.h.pop().r, true
}

func (s *edfSched) size() int    { return len(s.h) }
func (s *edfSched) name() string { return "edf" }

// totalFitSched is the Knuth-Plass-style batch planner described at the
// top of the file. pending holds waiting requests in arrival order
// (head-indexed like the Server's own FIFO); batch holds the currently
// planned batch, shortest-first.
type totalFitSched struct {
	pending []schedEntry
	head    int
	batch   []schedEntry
	bhead   int

	maxBatch int
	penalty  Time

	// Planning scratch, reused across plans.
	best    []Time // best[i]: minimal badness of splitting window[i:]
	firstBk []int  // firstBk[i]: first break of that optimal split
	sorted  []Time // running sorted services while scanning a segment
}

// NewTotalFit returns the DP batch planner. maxBatch caps the size of
// one batch (and the window the DP scans); penalty is the per-request²
// badness of extending a batch — 0 collapses to windowed SJF, large
// values collapse to FIFO.
func NewTotalFit(maxBatch int, penalty Time) Scheduler {
	if maxBatch < 1 {
		panic("sim: total-fit batch cap must be positive")
	}
	if penalty < 0 {
		panic("sim: total-fit penalty must be non-negative")
	}
	return &totalFitSched{maxBatch: maxBatch, penalty: penalty}
}

func (s *totalFitSched) push(r serverReq) {
	s.pending = append(s.pending, schedEntry{r: r, seq: r.seq})
}

func (s *totalFitSched) pop() (serverReq, bool) {
	if s.bhead == len(s.batch) {
		s.plan()
	}
	if s.bhead == len(s.batch) {
		return serverReq{}, false
	}
	e := s.batch[s.bhead]
	s.batch[s.bhead] = schedEntry{}
	s.bhead++
	return e.r, true
}

func (s *totalFitSched) size() int {
	return (len(s.pending) - s.head) + (len(s.batch) - s.bhead)
}

func (s *totalFitSched) name() string { return "totalfit" }

// plan chooses the next batch: a DP over break positions of the
// pending queue's leading window picks the boundary sequence with
// minimal total badness, and the first segment becomes the batch,
// re-sorted shortest-first. Only the first segment is consumed — the
// rest of the queue replans once it drains, folding in new arrivals.
func (s *totalFitSched) plan() {
	n := len(s.pending) - s.head
	if n == 0 {
		return
	}
	// The DP window: one batch plus what could form the next few. A
	// bounded window keeps planning O(window²) per batch regardless of
	// backlog depth; requests beyond it keep strict arrival order.
	window := 4 * s.maxBatch
	if n < window {
		window = n
	}
	w := s.pending[s.head : s.head+window]

	s.best = resizeTimes(s.best, window+1)
	s.firstBk = resizeInts(s.firstBk, window+1)
	s.best[window] = 0
	for i := window - 1; i >= 0; i-- {
		s.sorted = s.sorted[:0]
		var stall Time // within-batch waiting under shortest-first order
		var svc Time   // the batch's total service time
		bestCost := Time(-1)
		bestK := 1
		for k := 1; i+k <= window && k <= s.maxBatch; k++ {
			stall += s.insertService(w[i+k-1].r.service)
			svc += w[i+k-1].r.service
			span := Time(k - 1)
			// Total waiting this batch induces: stall inside it, plus its
			// whole service delaying every later request in the window.
			// Without the cross-batch term, splitting would look free and
			// the DP would degenerate to singleton batches (pure FIFO).
			badness := stall + svc*Time(window-i-k) + s.penalty*span*span
			cost := badness + s.best[i+k]
			if bestCost < 0 || cost < bestCost {
				bestCost = cost
				bestK = k
			}
		}
		s.best[i] = bestCost
		s.firstBk[i] = bestK
	}

	k := s.firstBk[0]
	s.batch = s.batch[:0]
	s.bhead = 0
	s.batch = append(s.batch, s.pending[s.head:s.head+k]...)
	for i := s.head; i < s.head+k; i++ {
		s.pending[i] = schedEntry{}
	}
	s.head += k
	if s.head == len(s.pending) {
		s.pending = s.pending[:0]
		s.head = 0
	} else if s.head > 32 && s.head > len(s.pending)/2 {
		m := copy(s.pending, s.pending[s.head:])
		for i := m; i < len(s.pending); i++ {
			s.pending[i] = schedEntry{}
		}
		s.pending = s.pending[:m]
		s.head = 0
	}
	// Shortest-first inside the batch (insertion sort: batches are
	// small and nearly sorted workloads are common).
	for i := 1; i < len(s.batch); i++ {
		e := s.batch[i]
		j := i - 1
		for j >= 0 && (s.batch[j].r.service > e.r.service ||
			(s.batch[j].r.service == e.r.service && s.batch[j].seq > e.seq)) {
			s.batch[j+1] = s.batch[j]
			j--
		}
		s.batch[j+1] = e
	}
}

// insertService adds one service time to the running sorted segment and
// returns the marginal within-batch stall: pairing the new request
// against every request already in the segment, the shorter of each
// pair waits for the longer to be chosen first under shortest-first
// order — shorter existing entries delay the newcomer, and the
// newcomer delays longer existing ones.
func (s *totalFitSched) insertService(v Time) Time {
	var below Time // sum of services strictly shorter than v
	var above int  // count of services >= v
	pos := len(s.sorted)
	for i, u := range s.sorted {
		if u < v {
			below += u
		} else {
			above = len(s.sorted) - i
			pos = i
			break
		}
	}
	s.sorted = append(s.sorted, 0)
	copy(s.sorted[pos+1:], s.sorted[pos:])
	s.sorted[pos] = v
	return below + v*Time(above)
}

func resizeTimes(s []Time, n int) []Time {
	if cap(s) < n {
		return make([]Time, n)
	}
	return s[:n]
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
