package sim

import "testing"

func TestFabricLoopbackIsFree(t *testing.T) {
	k := New()
	f := NewFabric(k, 2, 1e9, Microsecond)
	fired := false
	k.At(0, func() { f.Send(1, 1, 4096, func() { fired = true }) })
	k.Run()
	if !fired {
		t.Fatal("loopback send never completed")
	}
	if k.Now() != 0 {
		t.Fatalf("loopback send advanced time to %v", k.Now())
	}
	if f.BytesTotal() != 0 || f.Messages() != 0 {
		t.Fatalf("loopback counted as fabric traffic: %d bytes, %d msgs", f.BytesTotal(), f.Messages())
	}
}

func TestFabricChargesBothPortsOnce(t *testing.T) {
	k := New()
	// 1 GB/s, 1 µs wire latency: 4096 B occupies each port ~4.096 µs.
	f := NewFabric(k, 3, 1e9, Microsecond)
	var doneAt Time
	k.At(0, func() { f.Send(0, 2, 4096, func() { doneAt = k.Now() }) })
	k.Run()
	// egress occupancy + wire latency + ingress occupancy.
	want := f.OccupancyFor(4096)*2 + Microsecond
	if doneAt != want {
		t.Fatalf("message completed at %v, want %v", doneAt, want)
	}
	if f.BytesFrom(0) != 4096 || f.BytesTotal() != 4096 {
		t.Fatalf("byte accounting wrong: from0=%d total=%d", f.BytesFrom(0), f.BytesTotal())
	}
	if !f.Quiesced() {
		t.Fatal("fabric not quiesced after drain")
	}
}

func TestFabricSenderAndReceiverQueueIndependently(t *testing.T) {
	k := New()
	f := NewFabric(k, 3, 1e9, 0)
	per := f.OccupancyFor(1000)
	var secondFrom0, fromOther Time
	k.At(0, func() {
		f.Send(0, 1, 1000, func() {})
		f.Send(0, 2, 1000, func() { secondFrom0 = k.Now() })
		f.Send(1, 2, 1000, func() { fromOther = k.Now() })
	})
	k.Run()
	// The two sends from endpoint 0 serialize on its egress port.
	if secondFrom0 < 2*per {
		t.Fatalf("second send from 0 finished at %v, want >= %v (egress serialization)", secondFrom0, 2*per)
	}
	// Endpoint 1's send does not wait behind endpoint 0's egress queue.
	if fromOther > 2*per {
		t.Fatalf("send from endpoint 1 finished at %v — it queued behind another sender's egress", fromOther)
	}
}

func TestFabricDeterministic(t *testing.T) {
	run := func() (Time, uint64) {
		k := New()
		f := NewFabric(k, 4, 2e9, 500*Nanosecond)
		var last Time
		k.At(0, func() {
			for i := 0; i < 32; i++ {
				src, dst := i%4, (i+1)%4
				f.Send(src, dst, 512*(i+1), func() { last = k.Now() })
			}
		})
		k.Run()
		return last, f.BytesTotal()
	}
	t1, b1 := run()
	t2, b2 := run()
	if t1 != t2 || b1 != b2 {
		t.Fatalf("fabric run not deterministic: (%v,%d) vs (%v,%d)", t1, b1, t2, b2)
	}
}
