package config

import (
	"testing"

	"beacongnn/internal/sim"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Traditional().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultMatchesPaperAnchors(t *testing.T) {
	c := Default()
	if c.Flash.Channels != 16 || c.Flash.DiesPerChannel != 8 {
		t.Fatalf("geometry %d×%d; Fig. 15 states 16 channels, 128 dies", c.Flash.Channels, c.Flash.DiesPerChannel)
	}
	if c.Flash.ReadLatency != 3*sim.Microsecond {
		t.Fatalf("ULL read latency = %v; §I states 3 µs", c.Flash.ReadLatency)
	}
	if c.Flash.ChannelBW != 800e6 {
		t.Fatalf("channel BW = %v; Fig. 18b centers on 800 MB/s", c.Flash.ChannelBW)
	}
	if c.Flash.PageSize != 4096 {
		t.Fatalf("page size = %d; §IV-A uses 4 KB", c.Flash.PageSize)
	}
	if c.GNN.Hops != 3 || c.GNN.Fanout != 3 || c.GNN.SubgraphNodes() != 40 {
		t.Fatalf("GNN task %+v; §VII-A uses 3 hops × 3 → 40 nodes", c.GNN)
	}
	if c.GNN.HiddenDim != 128 || c.GNN.BatchSize != 64 {
		t.Fatalf("GNN dims %+v", c.GNN)
	}
}

func TestTraditionalIs20Microseconds(t *testing.T) {
	if Traditional().Flash.ReadLatency != 20*sim.Microsecond {
		t.Fatalf("traditional read = %v; §VII-E uses 20 µs", Traditional().Flash.ReadLatency)
	}
}

func TestCapacityIsComfortable(t *testing.T) {
	c := Default().Flash
	// The modelled device needs tens of GB — enough that any simulated
	// dataset's pages fit with room for regular data.
	if c.TotalBytes() < 32<<30 {
		t.Fatalf("capacity = %d bytes, too small", c.TotalBytes())
	}
}

func TestTransferTimes(t *testing.T) {
	c := Default().Flash
	page := c.PageTransferTime()
	if page < 5*sim.Microsecond || page > 6*sim.Microsecond {
		t.Fatalf("4 KB @ 800 MB/s = %v, want ≈5.12 µs", page)
	}
	small := c.TransferTime(400)
	if small >= page {
		t.Fatal("result-granular transfer not cheaper than a page")
	}
	if small <= c.CmdOverhead {
		t.Fatal("transfer time missing payload component")
	}
}

func TestValidationCatchesBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Flash.Channels = 0 },
		func(c *Config) { c.Flash.PageSize = 100 },
		func(c *Config) { c.Flash.ChannelBW = 0 },
		func(c *Config) { c.Flash.ReadLatency = 0 },
		func(c *Config) { c.Flash.BlocksPerDie = 0 },
		func(c *Config) { c.Firmware.Cores = 0 },
		func(c *Config) { c.DRAM.Bandwidth = 0 },
		func(c *Config) { c.PCIe.Bandwidth = 0 },
		func(c *Config) { c.GNN.Hops = 0 },
		func(c *Config) { c.GNN.BatchSize = 0 },
		func(c *Config) { c.SSDAccel.Rows = 0 },
	}
	for i, mut := range mutations {
		c := Default()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}
