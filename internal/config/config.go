// Package config centralizes every tunable of the BeaconGNN simulation:
// SSD geometry and timing (the paper's Table II), firmware and host
// processing costs, accelerator shapes, GNN task parameters, and energy
// constants. Exact Table II cell values are not present in the provided
// paper text; the defaults below are chosen to satisfy every quantitative
// anchor the text does give (see DESIGN.md §1) and are printed by
// `beaconbench -exp table2`.
package config

import (
	"fmt"

	"beacongnn/internal/sim"
)

// Flash describes the SSD backend geometry and timing.
type Flash struct {
	Channels       int      // flash channels (paper base: 16)
	DiesPerChannel int      // dies per channel (paper base: 8 → 128 dies)
	PlanesPerDie   int      // planes sharing one die's sampler
	BlocksPerDie   int      // physical blocks per die
	PagesPerBlock  int      // pages per block
	PageSize       int      // bytes (paper base: 4 KB)
	ChannelBW      float64  // channel bus bandwidth, bytes/s (base: 800 MB/s)
	ReadLatency    sim.Time // sense latency: 3 µs ULL, 20 µs traditional
	ProgramLatency sim.Time
	EraseLatency   sim.Time
	CmdOverhead    sim.Time // per-command channel protocol overhead
}

// TotalDies returns the die count across all channels.
func (f Flash) TotalDies() int { return f.Channels * f.DiesPerChannel }

// PagesPerDie returns the page count of one die.
func (f Flash) PagesPerDie() int { return f.BlocksPerDie * f.PagesPerBlock }

// TotalBytes returns the raw capacity in bytes.
func (f Flash) TotalBytes() int64 {
	return int64(f.TotalDies()) * int64(f.PagesPerDie()) * int64(f.PageSize)
}

// PageTransferTime returns the channel-bus occupancy of one full page.
func (f Flash) PageTransferTime() sim.Time {
	return sim.Time(float64(f.PageSize) / f.ChannelBW * float64(sim.Second))
}

// TransferTime returns the channel-bus occupancy of n bytes plus the
// fixed command overhead.
func (f Flash) TransferTime(n int) sim.Time {
	return f.CmdOverhead + sim.Time(float64(n)/f.ChannelBW*float64(sim.Second))
}

// Validate reports whether the flash geometry is usable.
func (f Flash) Validate() error {
	switch {
	case f.Channels <= 0 || f.DiesPerChannel <= 0:
		return fmt.Errorf("config: channels/dies must be positive (%d×%d)", f.Channels, f.DiesPerChannel)
	case f.PageSize < 512:
		return fmt.Errorf("config: page size %d too small", f.PageSize)
	case f.BlocksPerDie <= 0 || f.PagesPerBlock <= 0:
		return fmt.Errorf("config: blocks/pages must be positive")
	case f.ChannelBW <= 0:
		return fmt.Errorf("config: channel bandwidth must be positive")
	case f.ReadLatency <= 0:
		return fmt.Errorf("config: read latency must be positive")
	}
	return nil
}

// Firmware describes the SSD embedded-processor model. Every cost is the
// core-occupancy time of one operation; the cores are a shared pool, so
// these costs are what make firmware the bottleneck in BG-SP/BG-DGSP.
type Firmware struct {
	Cores             int      // embedded cores (base: 4, swept 1–8 in Fig. 18c)
	PollCost          sim.Time // I/O poller: fetch/complete one host request
	TranslateCost     sim.Time // FTL LPA→PPA lookup for one request
	FlashCmdCost      sim.Time // flash scheduler: queue mgmt + DMA config + status poll per flash command
	ResultParseCost   sim.Time // classify one sampling result arriving in DRAM
	SampleCostPerNode sim.Time // firmware-based neighbor sampling, per sampled neighbor (BG-1/BG-DG)
	SampleCostFixed   sim.Time // firmware-based sampling, fixed per parent node
}

// Host describes host-side costs for platforms that keep the host on the
// control path (CC, SmartSage, GList, BG-1, and hop barriers generally).
type Host struct {
	Cores          int      // host CPU threads devoted to the GNN task
	IOStackCost    sim.Time // filesystem + NVMe driver software per dependent I/O
	BatchedIOCost  sim.Time // per-I/O cost when many independent reads batch (io_uring-style)
	TranslateCost  sim.Time // node-index → LPA metadata lookup, per node
	HopRoundTrip   sim.Time // fixed host↔SSD latency per hop barrier
	SampleCostNode sim.Time // host CPU sampling cost per sampled neighbor (CC)
}

// DieSampler describes the on-die sampler's processing time (Section
// V-A) and the channel router's hardware latencies (Section V-B).
type DieSampler struct {
	Fixed       sim.Time // section iterate + setup per command
	PerDraw     sim.Time // per sampled neighbor
	CrossbarLat sim.Time // router crossbar hop
	ParseLat    sim.Time // data-stream parser per result
}

// Link is a bandwidth/latency description of DRAM or PCIe.
type Link struct {
	Bandwidth float64 // bytes/s
	Latency   sim.Time
}

// Accel describes a systolic-array accelerator (ScaleSim-style).
type Accel struct {
	Rows, Cols  int     // systolic array shape
	VectorLanes int     // 1-D array width for aggregation
	ClockHz     float64 // core clock
	SRAMBytes   int     // on-chip buffer
}

// MACs returns the array's multiply-accumulate count.
func (a Accel) MACs() int { return a.Rows * a.Cols }

// GNN describes the task (Section VII-A).
type GNN struct {
	Hops      int // sampling hops (base: 3)
	Fanout    int // neighbors per hop (base: 3)
	HiddenDim int // intermediate embedding dim (base: 128)
	BatchSize int // mini-batch targets (base: 64, swept 32–256)
	Layers    int // message-passing iterations (= Hops)

	// TargetSkew selects mini-batch targets from a Zipf distribution
	// with this exponent (0 = uniform, the paper's setting). Skewed
	// selection models hot-node inference workloads, where repeated
	// targets concentrate load on a few dies.
	TargetSkew float64

	// Training adds the backward pass (input- and weight-gradient GEMMs
	// plus gradient scatter) to each mini-batch's compute stage.
	Training bool
}

// SubgraphNodes returns nodes per target subgraph (paper: 40).
func (g GNN) SubgraphNodes() int {
	total, layer := 1, 1
	for h := 0; h < g.Hops; h++ {
		layer *= g.Fanout
		total += layer
	}
	return total
}

// Energy holds the per-event energy constants used for Figure 19. Units
// are joules. They are calibrated so component shares match the paper's
// reported breakdown (see EXPERIMENTS.md), standing in for the authors'
// McPAT/DRAMPower/CACTI toolchain.
type Energy struct {
	FlashReadPage    float64 // J per page sense
	FlashRetrySense  float64 // J per extra Vref-shift read-retry sense
	FlashSampleOp    float64 // J per on-die sampler invocation
	ChannelPerByte   float64 // J per byte moved on a flash channel
	DRAMPerByte      float64 // J per byte read or written in SSD DRAM
	PCIePerByte      float64 // J per byte over PCIe (incl. host DMA)
	HostDRAMPerByte  float64 // J per byte through host memory
	CorePerSecond    float64 // W drawn by one busy embedded core
	HostCPUPerSecond float64 // W drawn by host CPU while processing GNN ops
	AccelPerMAC      float64 // J per multiply-accumulate
	AccelSRAMPerByte float64 // J per SRAM access byte
	RouterPerCmd     float64 // J per routed sampling command
	StaticWatts      float64 // SSD controller + DRAM background power
}

// Ablation switches off individual BeaconGNN design elements, for the
// ablation benchmarks that quantify each one's contribution.
type Ablation struct {
	NoPipeline bool // disable mini-batch prep/compute overlap (§VI-D)
	NoCoalesce bool // disable secondary-section command coalescing (§V-A)
}

// Fault configures the NAND reliability model (internal/fault): per-die
// RBER as a function of P/E cycles plus a retention term, ECC tiers
// (hard decode → read-retry → firmware soft decode → uncorrectable),
// the firmware recovery policy for uncorrectable pages, and injected
// die/channel outages. Enabled=false (the default) bypasses the model
// entirely: simulations are byte-identical to a build without it.
type Fault struct {
	Enabled bool

	// RBER curve: rber(block) = BaseRBER + WearRBERPerPE·PE + RetentionRBER.
	BaseRBER      float64 // raw bit error rate of a fresh block
	WearRBERPerPE float64 // added RBER per program/erase cycle
	RetentionRBER float64 // added RBER from retention age

	// ECC tiers, in correctable raw bit errors per page. A read whose
	// drawn error count is ≤ HardECCBits decodes on the fly; ≤ RetryECCBits
	// after extra Vref-shift senses; ≤ SoftECCBits after firmware soft
	// decode; beyond that the page is uncorrectable.
	HardECCBits  int
	RetryECCBits int
	SoftECCBits  int

	MaxRetrySenses int      // Vref-shift senses before falling to soft decode
	RetrySenseTime sim.Time // extra die-occupancy time per retry sense
	SoftDecodeTime sim.Time // firmware core time per soft-decoded page

	// Uncorrectable-page recovery policy (graceful degradation).
	MaxRecoveryAttempts int      // bounded re-sense attempts before retirement
	RetryBackoff        sim.Time // base backoff, doubled per attempt
	CmdDeadline         sim.Time // per-command recovery deadline (0 = none)
	RelocateAfterRetire int      // reserved-region retirements that trigger a
	// DirectGraph relocation (0 disables relocation; remap-only)

	// Injected wear and outages.
	InitialPECycles int   // pre-existing P/E cycles on every block
	DeadDies        []int // die indexes failed from the start
	DeadChannels    []int // channel indexes failed from the start

	// Uncorrectable storm: between StormStart and StormEnd (simulated
	// time), StormRBER is added to every block's RBER — a transient
	// device-wide degradation (temperature excursion, read-disturb
	// burst) the chaos harness uses to drive the recovery ladder hard
	// for a bounded window. StormRBER = 0 (the default) disables the
	// window entirely.
	StormStart sim.Time
	StormEnd   sim.Time
	StormRBER  float64

	// SpareRows is how many block rows at the top of the device are held
	// back as remap targets for retired pages.
	SpareRows int
}

// DefaultFault returns the reliability model's default tuning with the
// model itself switched off. The ECC tiers approximate a 4 KB-page
// LDPC pipeline; BaseRBER matches ULL NAND (< 1e-7 per Section VI-F).
func DefaultFault() Fault {
	return Fault{
		Enabled:             false,
		BaseRBER:            1e-7,
		WearRBERPerPE:       5e-10,
		RetentionRBER:       0,
		HardECCBits:         72,
		RetryECCBits:        120,
		SoftECCBits:         200,
		MaxRetrySenses:      5,
		RetrySenseTime:      1500 * sim.Nanosecond,
		SoftDecodeTime:      10 * sim.Microsecond,
		MaxRecoveryAttempts: 3,
		RetryBackoff:        2 * sim.Microsecond,
		CmdDeadline:         2 * sim.Millisecond,
		RelocateAfterRetire: 1,
		SpareRows:           2,
	}
}

// Validate checks the fault section against the flash geometry.
func (f Fault) Validate(fl Flash) error {
	if !f.Enabled {
		return nil
	}
	switch {
	case f.BaseRBER < 0 || f.BaseRBER >= 0.5:
		return fmt.Errorf("config: base RBER %v out of range [0, 0.5)", f.BaseRBER)
	case f.WearRBERPerPE < 0 || f.RetentionRBER < 0:
		return fmt.Errorf("config: RBER terms must be non-negative")
	case f.HardECCBits <= 0 || f.RetryECCBits < f.HardECCBits || f.SoftECCBits < f.RetryECCBits:
		return fmt.Errorf("config: ECC tiers must be positive and ascending (%d/%d/%d)",
			f.HardECCBits, f.RetryECCBits, f.SoftECCBits)
	case f.MaxRetrySenses <= 0 || f.RetrySenseTime < 0:
		return fmt.Errorf("config: retry senses must be positive")
	case f.SoftDecodeTime < 0 || f.RetryBackoff < 0 || f.CmdDeadline < 0:
		return fmt.Errorf("config: fault timing costs must be non-negative")
	case f.MaxRecoveryAttempts < 0 || f.RelocateAfterRetire < 0:
		return fmt.Errorf("config: recovery policy counts must be non-negative")
	case f.InitialPECycles < 0:
		return fmt.Errorf("config: initial P/E cycles must be non-negative")
	case f.SpareRows < 0 || f.SpareRows >= fl.BlocksPerDie:
		return fmt.Errorf("config: spare rows %d outside [0, %d)", f.SpareRows, fl.BlocksPerDie)
	case f.StormRBER < 0 || f.StormRBER >= 0.5:
		return fmt.Errorf("config: storm RBER %v out of range [0, 0.5)", f.StormRBER)
	case f.StormRBER > 0 && (f.StormStart < 0 || f.StormEnd <= f.StormStart):
		return fmt.Errorf("config: storm window [%v, %v) is empty", f.StormStart, f.StormEnd)
	}
	for _, d := range f.DeadDies {
		if d < 0 || d >= fl.TotalDies() {
			return fmt.Errorf("config: dead die %d outside [0, %d)", d, fl.TotalDies())
		}
	}
	dead := 0
	for _, c := range f.DeadChannels {
		if c < 0 || c >= fl.Channels {
			return fmt.Errorf("config: dead channel %d outside [0, %d)", c, fl.Channels)
		}
		dead++
	}
	if dead >= fl.Channels {
		return fmt.Errorf("config: all %d channels dead", fl.Channels)
	}
	return nil
}

// Sched selects the I/O scheduling policy the flash backend applies to
// its die, sampler, and channel servers (DESIGN.md §11). The empty
// policy (and "fifo") keeps the default strict-FIFO service — the
// simulated event sequence is then byte-identical to a build without
// the scheduling layer.
type Sched struct {
	// Policy: "" or "fifo" (default FIFO), "sjf" (shortest job first),
	// "edf" (earliest deadline first), "totalfit" (DP batch planner).
	Policy string

	// DeadlineBudget is the EDF completion target per command, measured
	// from command creation at the platform layer (firmware issue time);
	// requests reaching a server without an explicit deadline fall back
	// to arrival + budget.
	DeadlineBudget sim.Time

	// MaxBatch caps one total-fit batch; BreakPenalty is the quadratic
	// per-batch-length badness term (0 = windowed SJF, large = FIFO).
	MaxBatch     int
	BreakPenalty sim.Time
}

// SchedPolicies lists the accepted policy names.
func SchedPolicies() []string { return []string{"fifo", "sjf", "edf", "totalfit"} }

// DefaultSched returns the scheduling defaults: FIFO policy with tuned
// parameters ready for the non-FIFO policies when one is selected. The
// EDF budget sits near the p99 command lifetime of the base platforms;
// the total-fit defaults keep planning cheap on die-depth queues.
func DefaultSched() Sched {
	return Sched{
		Policy:         "",
		DeadlineBudget: 50 * sim.Microsecond,
		MaxBatch:       16,
		BreakPenalty:   200 * sim.Nanosecond,
	}
}

// Enabled reports whether a non-FIFO policy is selected.
func (s Sched) Enabled() bool {
	return s.Policy != "" && s.Policy != "fifo"
}

// Validate checks the scheduling section.
func (s Sched) Validate() error {
	switch s.Policy {
	case "", "fifo", "sjf", "totalfit":
	case "edf":
		if s.DeadlineBudget <= 0 {
			return fmt.Errorf("config: EDF deadline budget must be positive, got %v", s.DeadlineBudget)
		}
	default:
		return fmt.Errorf("config: unknown sched policy %q (use one of %v)", s.Policy, SchedPolicies())
	}
	if s.Policy == "totalfit" {
		if s.MaxBatch < 1 {
			return fmt.Errorf("config: total-fit max batch must be positive, got %d", s.MaxBatch)
		}
		if s.BreakPenalty < 0 {
			return fmt.Errorf("config: total-fit break penalty must be non-negative, got %v", s.BreakPenalty)
		}
	}
	return nil
}

// Config is the complete platform configuration.
type Config struct {
	Flash      Flash
	Firmware   Firmware
	Host       Host
	DieSampler DieSampler
	DRAM       Link // SSD-internal DRAM
	PCIe       Link
	SSDAccel   Accel // bus-attached spatial accelerator
	TPU        Accel // discrete server-scale accelerator (CC baseline)
	GNN        GNN
	Energy     Energy
	Ablation   Ablation
	Fault      Fault
	Sched      Sched
	Seed       uint64
}

// Default returns the paper's base configuration (Table II as
// reconstructed in DESIGN.md).
func Default() Config {
	return Config{
		Flash: Flash{
			Channels:       16,
			DiesPerChannel: 8,
			PlanesPerDie:   2,
			BlocksPerDie:   512,
			PagesPerBlock:  256,
			PageSize:       4096,
			ChannelBW:      800e6,
			ReadLatency:    3 * sim.Microsecond, // ULL Z-NAND
			ProgramLatency: 100 * sim.Microsecond,
			EraseLatency:   1 * sim.Millisecond,
			CmdOverhead:    200 * sim.Nanosecond,
		},
		Firmware: Firmware{
			Cores:             4,
			PollCost:          500 * sim.Nanosecond,
			TranslateCost:     50 * sim.Nanosecond,
			FlashCmdCost:      320 * sim.Nanosecond,
			ResultParseCost:   100 * sim.Nanosecond,
			SampleCostPerNode: 150 * sim.Nanosecond,
			SampleCostFixed:   400 * sim.Nanosecond,
		},
		Host: Host{
			Cores:          2,
			IOStackCost:    6 * sim.Microsecond,
			BatchedIOCost:  1500 * sim.Nanosecond,
			TranslateCost:  80 * sim.Nanosecond,
			HopRoundTrip:   10 * sim.Microsecond,
			SampleCostNode: 120 * sim.Nanosecond,
		},
		DieSampler: DieSampler{
			Fixed:       300 * sim.Nanosecond,
			PerDraw:     20 * sim.Nanosecond,
			CrossbarLat: 50 * sim.Nanosecond,
			ParseLat:    50 * sim.Nanosecond,
		},
		DRAM: Link{Bandwidth: 12.8e9, Latency: 120 * sim.Nanosecond},
		PCIe: Link{Bandwidth: 7.88e9, Latency: 900 * sim.Nanosecond}, // Gen4 ×4
		SSDAccel: Accel{
			Rows: 32, Cols: 32, VectorLanes: 128,
			ClockHz: 1e9, SRAMBytes: 4 << 20,
		},
		TPU: Accel{
			Rows: 128, Cols: 128, VectorLanes: 1024,
			ClockHz: 940e6, SRAMBytes: 24 << 20,
		},
		GNN:   GNN{Hops: 3, Fanout: 3, HiddenDim: 128, BatchSize: 64, Layers: 3},
		Fault: DefaultFault(),
		Sched: DefaultSched(),
		// Energy constants calibrated to Figure 19's component shares
		// (see EXPERIMENTS.md). Host CPU compute energy is excluded
		// from the device-plus-link accounting, matching the paper's
		// "transfer data outside storage" framing; set HostCPUPerSecond
		// to include it.
		Energy: Energy{
			FlashReadPage:    0.4e-6,
			FlashRetrySense:  0.3e-6,
			FlashSampleOp:    0.02e-6,
			ChannelPerByte:   200e-12,
			DRAMPerByte:      120e-12,
			PCIePerByte:      500e-12,
			HostDRAMPerByte:  150e-12,
			CorePerSecond:    0.45,
			HostCPUPerSecond: 0,
			AccelPerMAC:      1.2e-12,
			AccelSRAMPerByte: 2.0e-12,
			RouterPerCmd:     0.002e-6,
			StaticWatts:      1.0,
		},
		Seed: 0xBEAC0,
	}
}

// Traditional returns the default config with a conventional (20 µs read)
// SSD backend, used for Section VII-E.
func Traditional() Config {
	c := Default()
	c.Flash.ReadLatency = 20 * sim.Microsecond
	return c
}

// Validate checks the whole configuration.
func (c Config) Validate() error {
	if err := c.Flash.Validate(); err != nil {
		return err
	}
	switch {
	case c.Firmware.Cores <= 0:
		return fmt.Errorf("config: firmware cores must be positive")
	case c.DRAM.Bandwidth <= 0 || c.PCIe.Bandwidth <= 0:
		return fmt.Errorf("config: link bandwidth must be positive")
	case c.GNN.Hops <= 0 || c.GNN.Fanout <= 0 || c.GNN.BatchSize <= 0:
		return fmt.Errorf("config: GNN parameters must be positive")
	case c.SSDAccel.Rows <= 0 || c.SSDAccel.Cols <= 0 || c.SSDAccel.ClockHz <= 0:
		return fmt.Errorf("config: accelerator shape must be positive")
	}
	if err := c.Sched.Validate(); err != nil {
		return err
	}
	return c.Fault.Validate(c.Flash)
}
