// Package viz renders the evaluation's figures as plain-text charts —
// horizontal bar charts (Fig. 14/19), multi-series line plots (Fig. 18),
// and Gantt-style span timelines (Fig. 16) — so beaconbench reports are
// readable without leaving the terminal. Stdlib only, deterministic
// output, fully testable.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one labeled value of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders a horizontal bar chart scaled to width characters.
// Values must be non-negative; the longest bar spans the full width.
func BarChart(title string, bars []Bar, width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	maxVal := 0.0
	maxLabel := 0
	for _, bar := range bars {
		if bar.Value > maxVal {
			maxVal = bar.Value
		}
		if len(bar.Label) > maxLabel {
			maxLabel = len(bar.Label)
		}
	}
	for _, bar := range bars {
		n := 0
		if maxVal > 0 {
			n = int(bar.Value / maxVal * float64(width))
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "  %-*s %s%s %.2f\n", maxLabel, bar.Label,
			strings.Repeat("█", n), strings.Repeat("·", width-n), bar.Value)
	}
	return b.String()
}

// Series is one named line of a line plot.
type Series struct {
	Name   string
	Values []float64
}

// LinePlot renders multiple series over shared x labels as a character
// grid: rows are value levels (top = max), columns are x positions, and
// each series draws with its own glyph.
func LinePlot(title string, xLabels []string, series []Series, height int) string {
	if height < 4 {
		height = 4
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) || hi == lo {
		hi, lo = lo+1, lo-1
	}
	cols := len(xLabels)
	colW := 8
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols*colW))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for x, v := range s.Values {
			if x >= cols {
				break
			}
			row := int((hi - v) / (hi - lo) * float64(height-1))
			grid[row][x*colW+colW/2] = g
		}
	}
	for r, row := range grid {
		level := hi - (hi-lo)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%10.2f |%s\n", level, string(row))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", cols*colW))
	fmt.Fprintf(&b, "%10s  ", "")
	for _, xl := range xLabels {
		fmt.Fprintf(&b, "%-*s", colW, center(xl, colW))
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "%10s  ", "")
	for si, s := range series {
		fmt.Fprintf(&b, "%c=%s  ", glyphs[si%len(glyphs)], s.Name)
	}
	fmt.Fprintln(&b)
	return b.String()
}

func center(s string, w int) string {
	if len(s) >= w {
		return s[:w]
	}
	pad := (w - len(s)) / 2
	return strings.Repeat(" ", pad) + s
}

// Span is one labeled interval of a Gantt chart.
type Span struct {
	Label      string
	Start, End float64
}

// Gantt renders spans on a shared time axis of the given width. Spans
// sharing time render on their own rows, making hop overlap visible at
// a glance (Fig. 16).
func Gantt(title string, spans []Span, width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	maxLabel := 0
	for _, s := range spans {
		lo = math.Min(lo, s.Start)
		hi = math.Max(hi, s.End)
		if len(s.Label) > maxLabel {
			maxLabel = len(s.Label)
		}
	}
	if math.IsInf(lo, 1) || hi <= lo {
		return b.String()
	}
	scale := float64(width) / (hi - lo)
	for _, s := range spans {
		a := int((s.Start - lo) * scale)
		z := int((s.End - lo) * scale)
		if z <= a {
			z = a + 1
		}
		if z > width {
			z = width
		}
		fmt.Fprintf(&b, "  %-*s |%s%s%s|\n", maxLabel, s.Label,
			strings.Repeat(" ", a), strings.Repeat("█", z-a), strings.Repeat(" ", width-z))
	}
	return b.String()
}

// Heat renders a labeled matrix as shaded cells (light→dark with
// magnitude), normalized over the whole matrix.
func Heat(title string, rowLabels, colLabels []string, values [][]float64) string {
	shades := []rune(" ░▒▓█")
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	maxVal := 0.0
	maxLabel := 0
	for _, row := range values {
		for _, v := range row {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	for _, rl := range rowLabels {
		if len(rl) > maxLabel {
			maxLabel = len(rl)
		}
	}
	const cellW = 10
	fmt.Fprintf(&b, "  %-*s", maxLabel, "")
	for _, cl := range colLabels {
		fmt.Fprintf(&b, "%*s", cellW, cl)
	}
	fmt.Fprintln(&b)
	for i, row := range values {
		label := ""
		if i < len(rowLabels) {
			label = rowLabels[i]
		}
		fmt.Fprintf(&b, "  %-*s", maxLabel, label)
		for _, v := range row {
			idx := 0
			if maxVal > 0 {
				idx = int(v / maxVal * float64(len(shades)-1))
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			cell := fmt.Sprintf("%s%.1f", string(shades[idx]), v)
			fmt.Fprintf(&b, "%*s", cellW, cell)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
