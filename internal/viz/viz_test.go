package viz

import (
	"strings"
	"testing"
)

func TestBarChartScaling(t *testing.T) {
	out := BarChart("title", []Bar{
		{Label: "a", Value: 10},
		{Label: "bb", Value: 5},
		{Label: "c", Value: 0},
	}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "title" || len(lines) != 4 {
		t.Fatalf("output:\n%s", out)
	}
	// The max bar is full width; half value → half width; zero → none.
	if strings.Count(lines[1], "█") != 20 {
		t.Fatalf("max bar wrong: %q", lines[1])
	}
	if strings.Count(lines[2], "█") != 10 {
		t.Fatalf("half bar wrong: %q", lines[2])
	}
	if strings.Count(lines[3], "█") != 0 {
		t.Fatalf("zero bar wrong: %q", lines[3])
	}
	// Labels align.
	if !strings.Contains(lines[1], "a ") || !strings.Contains(lines[2], "bb") {
		t.Fatal("labels missing")
	}
}

func TestBarChartAllZero(t *testing.T) {
	out := BarChart("", []Bar{{Label: "x", Value: 0}}, 10)
	if strings.Contains(out, "█") {
		t.Fatal("zero chart drew bars")
	}
}

func TestLinePlotContainsSeries(t *testing.T) {
	out := LinePlot("plot", []string{"1", "2", "4"}, []Series{
		{Name: "up", Values: []float64{1, 2, 4}},
		{Name: "flat", Values: []float64{2, 2, 2}},
	}, 6)
	if !strings.Contains(out, "plot") || !strings.Contains(out, "*=up") || !strings.Contains(out, "o=flat") {
		t.Fatalf("legend missing:\n%s", out)
	}
	// Rising series: its glyph appears on distinct rows.
	rows := strings.Split(out, "\n")
	starRows := 0
	for _, r := range rows {
		if strings.Contains(r, "*") && strings.Contains(r, "|") {
			starRows++
		}
	}
	if starRows < 2 {
		t.Fatalf("rising series flat in plot:\n%s", out)
	}
}

func TestLinePlotDegenerate(t *testing.T) {
	// Constant values and empty series must not panic or divide by zero.
	out := LinePlot("", []string{"a"}, []Series{{Name: "s", Values: []float64{5}}}, 4)
	if len(out) == 0 {
		t.Fatal("empty render")
	}
	_ = LinePlot("", nil, nil, 4)
}

func TestGanttOverlapVisible(t *testing.T) {
	out := Gantt("hops", []Span{
		{Label: "hop0", Start: 0, End: 10},
		{Label: "hop1", Start: 5, End: 15},
		{Label: "hop2", Start: 14, End: 20},
	}, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("output:\n%s", out)
	}
	// hop0 starts at column 0; hop1 starts mid-axis.
	h0 := lines[1][strings.Index(lines[1], "|")+1:]
	h1 := lines[2][strings.Index(lines[2], "|")+1:]
	if !strings.HasPrefix(h0, "█") {
		t.Fatalf("hop0 should start at t=0: %q", h0)
	}
	if strings.HasPrefix(h1, "█") {
		t.Fatalf("hop1 should start later: %q", h1)
	}
}

func TestGanttEmpty(t *testing.T) {
	if out := Gantt("t", nil, 20); strings.Contains(out, "█") {
		t.Fatal("empty gantt drew spans")
	}
}

func TestHeatShades(t *testing.T) {
	out := Heat("h", []string{"r1", "r2"}, []string{"c1", "c2"},
		[][]float64{{0, 1}, {2, 4}})
	if !strings.Contains(out, "c1") || !strings.Contains(out, "r2") {
		t.Fatalf("labels missing:\n%s", out)
	}
	if !strings.Contains(out, "█4.0") {
		t.Fatalf("max cell not darkest:\n%s", out)
	}
}
