// Package pool provides sync.Pool-backed free lists with an off switch.
//
// The simulator's request path reuses per-request state objects whose
// continuation funcs are bound once at construction, so steady-state
// request processing allocates nothing. Correctness of the reset
// discipline is testable: Disable turns every pool into a plain
// allocator, and the determinism tests compare pooled and fresh-alloc
// runs byte for byte.
package pool

import "sync"

// disabled switches every Pool to fresh allocation. It is written only
// by tests, before any simulation starts — never concurrently with use.
var disabled bool

// Disable turns pooling off (true) or back on (false). Test-only; must
// not be called while simulations are running.
func Disable(d bool) { disabled = d }

// Disabled reports whether pooling is off.
func Disabled() bool { return disabled }

// Pool is a typed sync.Pool. The constructor runs once per fresh object
// (or on every Get while disabled), which is where pooled state machines
// bind their continuation funcs.
type Pool[T any] struct {
	p    sync.Pool
	cons func() *T
}

// New returns a pool allocating with cons.
func New[T any](cons func() *T) *Pool[T] {
	return &Pool[T]{cons: cons}
}

// Get returns a pooled object, constructing one when the pool is empty
// or disabled. The caller owns it until Put.
func (p *Pool[T]) Get() *T {
	if disabled {
		return p.cons()
	}
	if v := p.p.Get(); v != nil {
		return v.(*T)
	}
	return p.cons()
}

// Put returns an object to the pool. Callers must clear every reference
// field first (the reset discipline); while disabled it is a no-op and
// the object is garbage.
func (p *Pool[T]) Put(v *T) {
	if disabled {
		return
	}
	p.p.Put(v)
}
