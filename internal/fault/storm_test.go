package fault

import (
	"testing"

	"beacongnn/internal/sim"
)

// TestStormWindowShiftsClassification: inside [StormStart, StormEnd)
// the RBER excursion must push senses off the clean path; outside the
// window classification is indistinguishable from a storm-free config.
func TestStormWindowShiftsClassification(t *testing.T) {
	fc := testFault()
	fc.Enabled = true
	fc.StormStart = 100 * sim.Microsecond
	fc.StormEnd = 200 * sim.Microsecond
	fc.StormRBER = 2e-2 // λ ≈ 655 ≫ soft ECC: every in-storm sense is uncorrectable
	in := NewInjector(fc, testGeometry(), 1)

	if in.stormActive(0) || in.stormActive(99*sim.Microsecond) {
		t.Fatal("storm active before its window")
	}
	if !in.stormActive(100*sim.Microsecond) || !in.stormActive(199*sim.Microsecond) {
		t.Fatal("storm inactive inside its window")
	}
	if in.stormActive(200 * sim.Microsecond) {
		t.Fatal("storm window end not exclusive")
	}

	const n = 500
	inWindow := 0
	for i := 0; i < n; i++ {
		if in.ClassifyAt(0, 0, 150*sim.Microsecond).Class != Clean {
			inWindow++
		}
	}
	if inWindow != n {
		t.Fatalf("only %d/%d in-storm senses left the clean path at RBER %g", inWindow, n, fc.StormRBER)
	}
	outside := 0
	for i := 0; i < n; i++ {
		if in.ClassifyAt(0, 0, 300*sim.Microsecond).Class != Clean {
			outside++
		}
	}
	// At the default base RBER, λ is far below the hard-ECC floor: the
	// post-storm stream must be clean again.
	if outside != 0 {
		t.Fatalf("%d/%d post-storm senses still degraded", outside, n)
	}
}

// TestStormStreamAlignment: enabling a storm must not consume extra
// RNG draws — the per-die decision stream stays aligned with a
// storm-free injector, so adding a storm window perturbs only the
// window, not every subsequent draw in the run.
func TestStormStreamAlignment(t *testing.T) {
	base := testFault()
	base.Enabled = true
	withStorm := base
	withStorm.StormStart = 10 * sim.Microsecond
	withStorm.StormEnd = 20 * sim.Microsecond
	withStorm.StormRBER = 1e-2

	a := NewInjector(base, testGeometry(), 7)
	b := NewInjector(withStorm, testGeometry(), 7)
	for i := 0; i < 2000; i++ {
		// Both classify outside b's storm window: identical configs as
		// far as this draw is concerned, so identical outcomes.
		oa := a.ClassifyAt(1, 0, sim.Time(0))
		ob := b.ClassifyAt(1, 0, 100*sim.Microsecond)
		if oa.Class != ob.Class {
			t.Fatalf("draw %d diverged: %v vs %v — storm config consumed extra RNG draws", i, oa.Class, ob.Class)
		}
	}
}
