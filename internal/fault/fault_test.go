package fault

import (
	"math"
	"testing"

	"beacongnn/internal/config"
	"beacongnn/internal/sim"
)

// testGeometry is a small flash config: 4 channels × 2 dies, 4 KB pages
// (32768 page bits, so λ = RBER × 32768).
func testGeometry() config.Flash {
	fl := config.Default().Flash
	fl.Channels = 4
	fl.DiesPerChannel = 2
	return fl
}

func testFault() config.Fault {
	return config.DefaultFault()
}

// drawMany classifies n senses on one die and returns the class counts.
func drawMany(in *Injector, die, n int) map[Class]int {
	out := map[Class]int{}
	for i := 0; i < n; i++ {
		out[in.Classify(die, 0).Class]++
	}
	return out
}

// The Poisson CDF must be a proper distribution function: 1 at λ=0,
// nondecreasing in k, nonincreasing in λ, and inside [0, 1] even for
// the huge λ of a badly worn block (the log-space computation exists
// exactly so that case cannot underflow into garbage).
func TestPoissonCDF(t *testing.T) {
	if got := poissonCDF(0, 10); got != 1 {
		t.Fatalf("poissonCDF(0, 10) = %g, want 1", got)
	}
	for _, lambda := range []float64{0.01, 1, 50, 150, 16384} {
		prev := -1.0
		for _, k := range []int{0, 10, 72, 120, 200} {
			p := poissonCDF(lambda, k)
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("poissonCDF(%g, %d) = %g outside [0, 1]", lambda, k, p)
			}
			if p < prev {
				t.Fatalf("poissonCDF(%g, ·) decreased at k=%d: %g < %g", lambda, k, p, prev)
			}
			prev = p
		}
	}
	for _, k := range []int{72, 200} {
		prev := 2.0
		for _, lambda := range []float64{0.1, 10, 100, 1000} {
			p := poissonCDF(lambda, k)
			// 1e-12 absorbs summation ulps when both values are ≈1.
			if p > prev+1e-12 {
				t.Fatalf("poissonCDF(·, %d) increased at λ=%g", k, lambda)
			}
			prev = p
		}
	}
}

// The RBER curve is Base + Wear·PE + Retention, capped at 0.5; class
// boundaries derived from it must be ordered clean ≤ retry ≤ soft.
func TestRBERAndBoundaries(t *testing.T) {
	fc := testFault()
	fc.BaseRBER = 1e-4
	fc.WearRBERPerPE = 1e-6
	fc.RetentionRBER = 5e-5
	in := NewInjector(fc, testGeometry(), 1)

	// Mirror the implementation's addition order: the compiler folds
	// literal sums in arbitrary precision, which differs at the ulp.
	if got, want := in.rber(0, false), fc.BaseRBER+fc.WearRBERPerPE*0+fc.RetentionRBER; got != want {
		t.Fatalf("rber(0) = %g, want %g", got, want)
	}
	if got, want := in.rber(100, false), fc.BaseRBER+fc.WearRBERPerPE*100+fc.RetentionRBER; got != want {
		t.Fatalf("rber(100) = %g, want %g", got, want)
	}
	if got := in.rber(1<<30, false); got != 0.5 {
		t.Fatalf("rber cap: got %g, want 0.5", got)
	}
	for _, pe := range []int{0, 1000, 100000} {
		p := in.boundaries(pe, false)
		if !(p.clean >= 0 && p.clean <= p.retry && p.retry <= p.soft && p.soft <= 1) {
			t.Fatalf("boundaries(%d) unordered: %+v", pe, p)
		}
	}
	// More wear → lower clean probability.
	if in.boundaries(200000, false).clean >= in.boundaries(0, false).clean {
		t.Fatalf("wear did not reduce the clean probability")
	}
}

// Classification thresholds at the three λ regimes: λ ≪ HardECCBits is
// always clean, λ between the hard and retry thresholds is dominated by
// retries, and λ ≫ SoftECCBits is always uncorrectable. The page is
// 32768 bits, so λ = RBER × 32768 against ECC tiers 72/120/200.
func TestClassifyThresholds(t *testing.T) {
	const n = 2000
	cases := []struct {
		name string
		rber float64
		want func(t *testing.T, got map[Class]int)
	}{
		{"fresh-block-all-clean", 1e-7, func(t *testing.T, got map[Class]int) {
			if got[Clean] != n {
				t.Errorf("λ≈0.003: %v, want all %d clean", got, n)
			}
		}},
		{"retry-band", 100.0 / 32768, func(t *testing.T, got map[Class]int) {
			if got[Retry] < n/2 {
				t.Errorf("λ=100: %v, want retry-dominated", got)
			}
			if got[Clean] == n {
				t.Errorf("λ=100 produced no ECC events")
			}
		}},
		{"soft-band", 150.0 / 32768, func(t *testing.T, got map[Class]int) {
			if got[SoftDecode] < n/2 {
				t.Errorf("λ=150: %v, want soft-decode-dominated", got)
			}
		}},
		{"worn-out-all-uncorrectable", 0.4, func(t *testing.T, got map[Class]int) {
			if got[Uncorrectable] != n {
				t.Errorf("λ≈13107: %v, want all %d uncorrectable", got, n)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fc := testFault()
			fc.BaseRBER = tc.rber
			in := NewInjector(fc, testGeometry(), 7)
			got := drawMany(in, 0, n)
			tc.want(t, got)
			st := in.Stats()
			if st.Reads != n || st.CleanReads+st.RetryReads+st.SoftReads+st.Uncorrectable != n {
				t.Errorf("class counters don't partition reads: %+v", st)
			}
		})
	}
}

// Retry outcomes must charge between 1 and MaxRetrySenses extra senses
// and the matching die time; soft decode always pays the full ladder
// plus firmware time.
func TestOutcomeCosts(t *testing.T) {
	fc := testFault()
	fc.BaseRBER = 100.0 / 32768
	in := NewInjector(fc, testGeometry(), 3)
	for i := 0; i < 1000; i++ {
		o := in.Classify(0, 0)
		switch o.Class {
		case Clean:
			if o.RetrySenses != 0 || o.ExtraDieTime != 0 || o.FirmwareTime != 0 {
				t.Fatalf("clean outcome carries costs: %+v", o)
			}
		case Retry:
			if o.RetrySenses < 1 || o.RetrySenses > fc.MaxRetrySenses {
				t.Fatalf("retry senses %d outside [1, %d]", o.RetrySenses, fc.MaxRetrySenses)
			}
			if o.ExtraDieTime != sim.Time(o.RetrySenses)*fc.RetrySenseTime {
				t.Fatalf("retry die time %v for %d senses", o.ExtraDieTime, o.RetrySenses)
			}
		case SoftDecode:
			if o.RetrySenses != fc.MaxRetrySenses || o.FirmwareTime != fc.SoftDecodeTime {
				t.Fatalf("soft-decode costs wrong: %+v", o)
			}
		}
	}
}

// Per-die seeding: same (seed, config) must classify identically, die
// streams must be independent (reading die 0 never perturbs die 1's
// sequence), and a different seed must diverge.
func TestPerDieSeedingDeterminism(t *testing.T) {
	fc := testFault()
	fc.BaseRBER = 100.0 / 32768 // mixed classes so sequences are informative
	geom := testGeometry()

	a := NewInjector(fc, geom, 42)
	b := NewInjector(fc, geom, 42)
	// a reads die 1 only; b interleaves heavy die-0 traffic. Die 1's
	// outcome sequence must be identical anyway.
	for i := 0; i < 500; i++ {
		for j := 0; j < 3; j++ {
			b.Classify(0, 0)
		}
		oa, ob := a.Classify(1, 0), b.Classify(1, 0)
		if oa != ob {
			t.Fatalf("die-1 sequence diverged at %d: %+v vs %+v", i, oa, ob)
		}
	}

	c := NewInjector(fc, geom, 43)
	same := 0
	for i := 0; i < 500; i++ {
		if a.Classify(2, 0) == c.Classify(2, 0) {
			same++
		}
	}
	if same == 500 {
		t.Fatalf("seeds 42 and 43 produced identical die-2 sequences")
	}
}

// Wear source: blocks with more P/E cycles must fail more. The wear
// callback receives the (die, block) being read.
func TestSetWearSource(t *testing.T) {
	fc := testFault()
	fc.BaseRBER = 60.0 / 32768 // fresh blocks mostly clean
	fc.WearRBERPerPE = 1e-6    // 200k P/E → λ ≈ 6600, far past the soft tier
	in := NewInjector(fc, testGeometry(), 9)
	var gotDie, gotBlock int
	in.SetWearSource(func(die, block int) int {
		gotDie, gotBlock = die, block
		if block == 1 {
			return 200000 // worn: pushes λ far past the soft tier
		}
		return 0
	})
	fresh, worn := 0, 0
	for i := 0; i < 500; i++ {
		if in.Classify(0, 0).Class == Clean {
			fresh++
		}
		if o := in.Classify(0, 1); o.Class == SoftDecode || o.Class == Uncorrectable {
			worn++
		}
	}
	if gotDie != 0 || gotBlock != 1 {
		t.Fatalf("wear source saw (%d, %d), want (0, 1)", gotDie, gotBlock)
	}
	if fresh < 400 {
		t.Fatalf("fresh block only %d/500 clean", fresh)
	}
	if worn < 400 {
		t.Fatalf("worn block only %d/500 degraded", worn)
	}
}

// Outage sampling: a dead die classifies every sense uncorrectable with
// the DieDead marker, still consumes exactly one draw (so healthy dies
// stay aligned with a no-outage run), and dead channels route to the
// next healthy channel deterministically.
func TestOutageSampling(t *testing.T) {
	fc := testFault()
	fc.BaseRBER = 100.0 / 32768
	fc.DeadDies = []int{3}
	geom := testGeometry()
	in := NewInjector(fc, geom, 11)
	clean := NewInjector(testFaultWithRBER(fc.BaseRBER), geom, 11)

	if !in.DieDead(3) || in.DieDead(0) {
		t.Fatalf("DieDead map wrong: die3=%v die0=%v", in.DieDead(3), in.DieDead(0))
	}
	for i := 0; i < 100; i++ {
		o := in.Classify(3, 0)
		if o.Class != Uncorrectable || !o.DieDead {
			t.Fatalf("dead-die sense %d classified %+v", i, o)
		}
		// Healthy dies must be unaffected by the die-3 outage.
		if oa, ob := in.Classify(0, 0), clean.Classify(0, 0); oa != ob {
			t.Fatalf("die-0 sequence diverged from no-outage run at %d: %+v vs %+v", i, oa, ob)
		}
	}
	st := in.Stats()
	if st.DeadDieReads != 100 || st.Uncorrectable < 100 {
		t.Fatalf("outage counters wrong: %+v", st)
	}
}

func testFaultWithRBER(r float64) config.Fault {
	fc := config.DefaultFault()
	fc.BaseRBER = r
	return fc
}

func TestRouteChannel(t *testing.T) {
	fc := testFault()
	fc.DeadChannels = []int{1, 2}
	in := NewInjector(fc, testGeometry(), 5) // 4 channels
	if got := in.RouteChannel(0); got != 0 {
		t.Fatalf("healthy channel rerouted to %d", got)
	}
	if got := in.RouteChannel(1); got != 3 {
		t.Fatalf("channel 1 routed to %d, want 3 (skip dead 2)", got)
	}
	if got := in.RouteChannel(2); got != 3 {
		t.Fatalf("channel 2 routed to %d, want 3", got)
	}
	if !in.ChannelDead(1) || in.ChannelDead(0) {
		t.Fatalf("ChannelDead map wrong")
	}
	if st := in.Stats(); st.ChannelReroutes != 2 {
		t.Fatalf("ChannelReroutes = %d, want 2", st.ChannelReroutes)
	}
}

// The recovery notification counters are simple but load-bearing for
// the reliability report; pin them.
func TestRecoveryNotes(t *testing.T) {
	in := NewInjector(testFault(), testGeometry(), 1)
	in.NoteDegraded()
	in.NoteRetiredBlock()
	in.NoteRetiredBlock()
	in.NoteRemappedPage()
	in.NoteRelocation()
	st := in.Stats()
	if st.DegradedReads != 1 || st.RetiredBlocks != 2 || st.RemappedPages != 1 || st.Relocations != 1 {
		t.Fatalf("recovery counters wrong: %+v", st)
	}
}
