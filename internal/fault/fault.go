// Package fault is the seeded NAND reliability model: it classifies
// every page sense as clean, read-retry, soft-decode, or uncorrectable
// from a per-die pseudo-random stream and a wear-dependent raw bit
// error rate, and tracks injected die/channel outages plus the recovery
// statistics (retirements, remaps, relocations, degraded reads) the
// platform layer reports.
//
// The error-count model: a page of B bits read at raw bit error rate r
// sees a Poisson(λ = r·B) number of raw bit errors. The controller's
// ECC pipeline corrects up to HardECCBits on the fly; up to RetryECCBits
// after extra Vref-shift senses; up to SoftECCBits after a firmware
// soft-decode pass; anything beyond is uncorrectable. One uniform draw
// per sense against the Poisson tail probabilities picks the class, so
// a simulation's outcome sequence is a pure function of the seed, the
// fault configuration, and the (deterministic) per-die read order.
package fault

import (
	"math"

	"beacongnn/internal/config"
	"beacongnn/internal/sim"
	"beacongnn/internal/xrand"
)

// Class is the ECC outcome of one page sense.
type Class int

// Sense outcomes, from cheapest to most severe.
const (
	Clean Class = iota
	Retry
	SoftDecode
	Uncorrectable
)

func (c Class) String() string {
	switch c {
	case Clean:
		return "clean"
	case Retry:
		return "retry"
	case SoftDecode:
		return "soft_decode"
	case Uncorrectable:
		return "uncorrectable"
	}
	return "unknown"
}

// Outcome describes one classified sense: the class, how many extra
// Vref-shift senses the die performed, the resulting extra die-occupancy
// time, and the firmware-charged soft-decode time.
type Outcome struct {
	Class        Class
	RetrySenses  int
	ExtraDieTime sim.Time
	FirmwareTime sim.Time
	DieDead      bool // sense targeted an injected-dead die
}

// Stats counts reliability events over a run. The classification
// counters are maintained by Classify; the recovery counters are bumped
// by the platform layer through the Note* methods as it retires blocks,
// remaps pages, and relocates the DirectGraph.
type Stats struct {
	Reads         uint64 // classified senses
	CleanReads    uint64
	RetryReads    uint64
	SoftReads     uint64
	Uncorrectable uint64
	RetrySenses   uint64 // total extra Vref-shift senses

	DegradedReads   uint64 // reads completed without full correction
	RetiredBlocks   uint64
	RemappedPages   uint64
	Relocations     uint64
	DeadDieReads    uint64
	ChannelReroutes uint64
}

// classProbs are the cumulative class boundaries for one P/E count:
// u < clean → Clean, u < retry → Retry, u < soft → SoftDecode,
// otherwise Uncorrectable.
type classProbs struct {
	clean, retry, soft float64
}

// Injector is the per-device fault model instance. It is not safe for
// concurrent use; each simulated system owns one.
type Injector struct {
	cfg      config.Fault
	pageBits float64
	streams  []*xrand.Source // one per die
	wear     func(die, block int) int
	deadDie  []bool
	deadChan []bool
	probs    map[int]classProbs // P/E count → class boundaries
	// stormProbs caches the in-storm boundaries separately: the storm
	// adds StormRBER to every block, shifting the whole curve, and the
	// two caches must not mix or a post-storm read would reuse storm
	// odds.
	stormProbs map[int]classProbs
	stats      Stats
}

// NewInjector builds an injector for the flash geometry. The per-die
// streams fork deterministically from the seed, so two injectors with
// the same seed and configuration classify identical read sequences
// identically.
func NewInjector(fc config.Fault, fl config.Flash, seed uint64) *Injector {
	in := &Injector{
		cfg:        fc,
		pageBits:   float64(fl.PageSize) * 8,
		streams:    make([]*xrand.Source, fl.TotalDies()),
		deadDie:    make([]bool, fl.TotalDies()),
		deadChan:   make([]bool, fl.Channels),
		probs:      make(map[int]classProbs),
		stormProbs: make(map[int]classProbs),
	}
	master := xrand.New(seed ^ 0xFA017FA017)
	for i := range in.streams {
		in.streams[i] = master.Fork()
	}
	for _, d := range fc.DeadDies {
		in.deadDie[d] = true
	}
	for _, c := range fc.DeadChannels {
		in.deadChan[c] = true
	}
	return in
}

// SetWearSource installs the per-block P/E count callback (typically
// backed by ftl.EraseCount). Without one, only InitialPECycles wear
// applies.
func (in *Injector) SetWearSource(f func(die, block int) int) { in.wear = f }

// DieDead reports whether the die is injected as failed.
func (in *Injector) DieDead(die int) bool { return in.deadDie[die] }

// ChannelDead reports whether the channel is injected as failed.
func (in *Injector) ChannelDead(ch int) bool { return in.deadChan[ch] }

// RouteChannel returns the channel a transfer for ch should actually
// use: ch itself when healthy, otherwise the next healthy channel
// (deterministically), counting the reroute. The queueing this piles
// onto the neighbor channel is the "widened queue" cost of the outage.
func (in *Injector) RouteChannel(ch int) int {
	if !in.deadChan[ch] {
		return ch
	}
	n := len(in.deadChan)
	for i := 1; i < n; i++ {
		c := (ch + i) % n
		if !in.deadChan[c] {
			in.stats.ChannelReroutes++
			return c
		}
	}
	return ch // unreachable: config validation rejects all-dead
}

// rber returns the raw bit error rate of a block at the given P/E
// count, with the storm excursion added while one is active.
func (in *Injector) rber(pe int, storm bool) float64 {
	r := in.cfg.BaseRBER + in.cfg.WearRBERPerPE*float64(pe) + in.cfg.RetentionRBER
	if storm {
		r += in.cfg.StormRBER
	}
	if r > 0.5 {
		r = 0.5
	}
	return r
}

// stormActive reports whether the uncorrectable-storm window covers
// simulated time now.
func (in *Injector) stormActive(now sim.Time) bool {
	return in.cfg.StormRBER > 0 && now >= in.cfg.StormStart && now < in.cfg.StormEnd
}

// boundaries returns (and caches) the cumulative class probabilities
// for one P/E count, from the in-storm cache when a storm is active.
func (in *Injector) boundaries(pe int, storm bool) classProbs {
	cache := in.probs
	if storm {
		cache = in.stormProbs
	}
	if p, ok := cache[pe]; ok {
		return p
	}
	lambda := in.rber(pe, storm) * in.pageBits
	p := classProbs{
		clean: poissonCDF(lambda, in.cfg.HardECCBits),
		retry: poissonCDF(lambda, in.cfg.RetryECCBits),
		soft:  poissonCDF(lambda, in.cfg.SoftECCBits),
	}
	cache[pe] = p
	return p
}

// poissonCDF returns P(X ≤ k) for X ~ Poisson(lambda), computed in log
// space so large λ (badly worn blocks) cannot underflow to garbage.
func poissonCDF(lambda float64, k int) float64 {
	if lambda <= 0 {
		return 1
	}
	logLambda := math.Log(lambda)
	sum := 0.0
	for i := 0; i <= k; i++ {
		lg, _ := math.Lgamma(float64(i + 1))
		sum += math.Exp(-lambda + float64(i)*logLambda - lg)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// Classify draws one sense outcome for a page on (die, block), with no
// storm applied (time-independent callers: tests, tools).
func (in *Injector) Classify(die, block int) Outcome {
	return in.ClassifyAt(die, block, 0)
}

// ClassifyAt draws one sense outcome for a page on (die, block) at
// simulated time now, applying the uncorrectable-storm excursion when
// now falls inside the configured window. Exactly one value is consumed
// from the die's stream per call — dead die, storm, or not — so outcome
// sequences stay aligned across configurations that differ only in
// outage or storm injection.
func (in *Injector) ClassifyAt(die, block int, now sim.Time) Outcome {
	u := in.streams[die].Float64()
	in.stats.Reads++
	if in.deadDie[die] {
		in.stats.DeadDieReads++
		in.stats.Uncorrectable++
		return Outcome{
			Class:        Uncorrectable,
			RetrySenses:  in.cfg.MaxRetrySenses,
			ExtraDieTime: sim.Time(in.cfg.MaxRetrySenses) * in.cfg.RetrySenseTime,
			DieDead:      true,
		}
	}
	pe := in.cfg.InitialPECycles
	if in.wear != nil {
		pe += in.wear(die, block)
	}
	p := in.boundaries(pe, in.stormActive(now))
	switch {
	case u < p.clean:
		in.stats.CleanReads++
		return Outcome{Class: Clean}
	case u < p.retry:
		// Deeper into the retry band → more Vref shifts were needed.
		frac := (u - p.clean) / (p.retry - p.clean)
		senses := 1 + int(frac*float64(in.cfg.MaxRetrySenses))
		if senses > in.cfg.MaxRetrySenses {
			senses = in.cfg.MaxRetrySenses
		}
		in.stats.RetryReads++
		in.stats.RetrySenses += uint64(senses)
		return Outcome{
			Class:        Retry,
			RetrySenses:  senses,
			ExtraDieTime: sim.Time(senses) * in.cfg.RetrySenseTime,
		}
	case u < p.soft:
		// Soft decode runs after the full retry ladder failed.
		in.stats.SoftReads++
		in.stats.RetrySenses += uint64(in.cfg.MaxRetrySenses)
		return Outcome{
			Class:        SoftDecode,
			RetrySenses:  in.cfg.MaxRetrySenses,
			ExtraDieTime: sim.Time(in.cfg.MaxRetrySenses) * in.cfg.RetrySenseTime,
			FirmwareTime: in.cfg.SoftDecodeTime,
		}
	default:
		in.stats.Uncorrectable++
		in.stats.RetrySenses += uint64(in.cfg.MaxRetrySenses)
		return Outcome{
			Class:        Uncorrectable,
			RetrySenses:  in.cfg.MaxRetrySenses,
			ExtraDieTime: sim.Time(in.cfg.MaxRetrySenses) * in.cfg.RetrySenseTime,
		}
	}
}

// Recovery-event notifications from the platform layer.

// NoteDegraded counts a read that completed without full correction.
func (in *Injector) NoteDegraded() { in.stats.DegradedReads++ }

// NoteRetiredBlock counts a block retirement.
func (in *Injector) NoteRetiredBlock() { in.stats.RetiredBlocks++ }

// NoteRemappedPage counts a page remapped into the spare region.
func (in *Injector) NoteRemappedPage() { in.stats.RemappedPages++ }

// NoteRelocation counts a whole-DirectGraph relocation.
func (in *Injector) NoteRelocation() { in.stats.Relocations++ }

// Stats returns a snapshot of the counters.
func (in *Injector) Stats() Stats { return in.stats }
