package gnn

import (
	"fmt"

	"beacongnn/internal/accel"
	"beacongnn/internal/graph"
)

// Training support. The paper's experiments run GNN training
// (Section VII-A "we only focus on GNN training" in the query
// discussion), so the compute stage includes the backward pass: for
// each mini-batch the accelerator executes forward aggregation +
// update, then output-gradient propagation and weight-gradient GEMMs.
// This file provides both the timing workload (for the accelerator
// model) and a reference implementation with exact gradients, verified
// by finite differences in the tests.

// TrainingWorkload returns the accelerator workload of one training
// step on a mini-batch: the forward pass plus, per layer, the input-
// gradient GEMM (dagg = dz · Wᵀ, same MACs as forward) and the
// weight-gradient GEMM (dW = aggᵀ · dz), plus the backward aggregation
// scatter on the vector array.
func (m Model) TrainingWorkload(batchSize int) accel.Workload {
	w := m.BatchWorkload(batchSize)
	fwdGEMMs := len(w.GEMMs)
	for i := 0; i < fwdGEMMs; i++ {
		g := w.GEMMs[i]
		// dagg: (M×N)·(N×K) — identical MAC count, transposed flow.
		w.GEMMs = append(w.GEMMs, accel.GEMM{M: g.M, K: g.N, N: g.K})
		// dW: (K×M)·(M×N).
		w.GEMMs = append(w.GEMMs, accel.GEMM{M: g.K, K: g.M, N: g.N})
	}
	// Gradient scatter mirrors the forward aggregation traffic.
	w.VectorElem *= 2
	return w
}

// Gradients holds per-layer weight gradients, shaped like Weights.
type Gradients struct {
	Layers [][]float32
}

// scale multiplies every gradient entry (used by SGD).
func (g *Gradients) scale(f float32) {
	for _, l := range g.Layers {
		for i := range l {
			l[i] *= f
		}
	}
}

// LossAndGradients runs the forward pass, computes the squared-error
// loss ½‖h_target − y‖² against the target label vector y (length
// HiddenDim), and back-propagates exact gradients through the ReLU
// perceptron layers and the vector_sum aggregation tree.
func LossAndGradients(g *graph.Graph, sg *graph.Subgraph, w *Weights, y []float32) (float32, *Gradients, error) {
	m := w.model
	if err := m.Validate(); err != nil {
		return 0, nil, err
	}
	if len(y) != m.HiddenDim {
		return 0, nil, fmt.Errorf("gnn: label dim %d != hidden %d", len(y), m.HiddenDim)
	}
	if g.FeatureDim() != m.InputDim {
		return 0, nil, fmt.Errorf("gnn: graph dim %d != model input dim %d", g.FeatureDim(), m.InputDim)
	}
	n := sg.NumNodes()
	children := make([][]int32, n)
	for i := 1; i < n; i++ {
		children[sg.Parents[i]] = append(children[sg.Parents[i]], int32(i))
	}

	// Forward, storing per-layer activations for the backward pass.
	type layerState struct {
		agg map[int][]float32 // node → aggregated input
		z   map[int][]float32 // node → pre-ReLU output
	}
	states := make([]layerState, m.Hops)
	h := make([][]float32, n)
	for i := 0; i < n; i++ {
		h[i] = g.Feature(sg.Nodes[i])
	}
	dimIn := m.InputDim
	for k := 0; k < m.Hops; k++ {
		st := layerState{agg: map[int][]float32{}, z: map[int][]float32{}}
		next := make([][]float32, n)
		for i := 0; i < n; i++ {
			if int(sg.Hop[i]) > m.Hops-k-1 {
				continue
			}
			agg := make([]float32, dimIn)
			copy(agg, h[i])
			for _, c := range children[i] {
				hc := h[c]
				for j := range agg {
					agg[j] += hc[j]
				}
			}
			z := make([]float32, m.HiddenDim)
			wk := w.Layers[k]
			for o := 0; o < m.HiddenDim; o++ {
				var s float32
				for j := 0; j < dimIn; j++ {
					s += agg[j] * wk[j*m.HiddenDim+o]
				}
				z[o] = s
			}
			out := make([]float32, m.HiddenDim)
			for o, v := range z {
				if v > 0 {
					out[o] = v
				}
			}
			st.agg[i] = agg
			st.z[i] = z
			next[i] = out
		}
		states[k] = st
		h = next
		dimIn = m.HiddenDim
	}
	if h[0] == nil {
		return 0, nil, fmt.Errorf("gnn: no target output")
	}

	// Loss and its gradient at the target.
	var loss float32
	dh := make([][]float32, n)
	dh[0] = make([]float32, m.HiddenDim)
	for o := range y {
		d := h[0][o] - y[o]
		loss += 0.5 * d * d
		dh[0][o] = d
	}

	// Backward through the layers.
	grads := &Gradients{Layers: make([][]float32, m.Hops)}
	for k := m.Hops - 1; k >= 0; k-- {
		dimIn = m.HiddenDim
		if k == 0 {
			dimIn = m.InputDim
		}
		grads.Layers[k] = make([]float32, dimIn*m.HiddenDim)
		st := states[k]
		wk := w.Layers[k]
		prevDh := make([][]float32, n)
		for i := 0; i < n; i++ {
			if dh[i] == nil || st.z[i] == nil {
				continue
			}
			// ReLU gate.
			dz := make([]float32, m.HiddenDim)
			for o := range dz {
				if st.z[i][o] > 0 {
					dz[o] = dh[i][o]
				}
			}
			agg := st.agg[i]
			// Weight gradient: dW[j,o] += agg[j]·dz[o].
			for j := 0; j < dimIn; j++ {
				base := j * m.HiddenDim
				aj := agg[j]
				for o := 0; o < m.HiddenDim; o++ {
					grads.Layers[k][base+o] += aj * dz[o]
				}
			}
			// Input gradient: dagg[j] = Σ_o W[j,o]·dz[o].
			dagg := make([]float32, dimIn)
			for j := 0; j < dimIn; j++ {
				base := j * m.HiddenDim
				var s float32
				for o := 0; o < m.HiddenDim; o++ {
					s += wk[base+o] * dz[o]
				}
				dagg[j] = s
			}
			// Scatter through the sum aggregation: self + children.
			addInto := func(idx int32) {
				if prevDh[idx] == nil {
					prevDh[idx] = make([]float32, dimIn)
				}
				for j := range dagg {
					prevDh[idx][j] += dagg[j]
				}
			}
			addInto(int32(i))
			for _, c := range children[i] {
				addInto(c)
			}
		}
		dh = prevDh
	}
	return loss, grads, nil
}

// SGDStep applies one stochastic-gradient step: W ← W − lr·∇W.
func SGDStep(w *Weights, grads *Gradients, lr float32) error {
	if len(grads.Layers) != len(w.Layers) {
		return fmt.Errorf("gnn: gradient layer count %d != %d", len(grads.Layers), len(w.Layers))
	}
	for k, gl := range grads.Layers {
		if len(gl) != len(w.Layers[k]) {
			return fmt.Errorf("gnn: layer %d gradient size %d != %d", k, len(gl), len(w.Layers[k]))
		}
		for i, gv := range gl {
			w.Layers[k][i] -= lr * gv
		}
	}
	return nil
}
