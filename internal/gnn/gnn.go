// Package gnn defines the GNN task of Section VII-A — GraphSage-style
// k-hop sampled subgraphs, vector_sum aggregation, and perceptron
// embedding updates — as both (a) a compute-workload description for
// the accelerator timing model and (b) a reference float32 forward pass
// used to validate end-to-end functional behaviour.
package gnn

import (
	"fmt"

	"beacongnn/internal/accel"
	"beacongnn/internal/graph"
	"beacongnn/internal/xrand"
)

// Model is the GNN configuration: K message-passing layers over k-hop
// subgraphs with the given fanout. InputDim is the dataset feature
// dimension; HiddenDim the intermediate embedding width (paper: 128).
type Model struct {
	Hops      int
	Fanout    int
	InputDim  int
	HiddenDim int
}

// Validate reports whether the model is usable.
func (m Model) Validate() error {
	if m.Hops <= 0 || m.Fanout <= 0 || m.InputDim <= 0 || m.HiddenDim <= 0 {
		return fmt.Errorf("gnn: all model dims must be positive: %+v", m)
	}
	return nil
}

// nodesAtDepth returns the node count at each depth of a full sample
// tree: 1, f, f², ...
func (m Model) nodesAtDepth() []int {
	out := make([]int, m.Hops+1)
	out[0] = 1
	for d := 1; d <= m.Hops; d++ {
		out[d] = out[d-1] * m.Fanout
	}
	return out
}

// SubgraphNodes returns total nodes per target (paper: 40).
func (m Model) SubgraphNodes() int {
	n := 0
	for _, c := range m.nodesAtDepth() {
		n += c
	}
	return n
}

// BatchWorkload returns the accelerator workload of one mini-batch of
// batchSize targets. Layer k (1-based) aggregates embeddings into nodes
// at depths 0..Hops−k and applies the perceptron update; per-layer node
// activations across the batch are batched into a single GEMM, which is
// how a spatial accelerator would tile them.
func (m Model) BatchWorkload(batchSize int) accel.Workload {
	depths := m.nodesAtDepth()
	var w accel.Workload
	dimIn := m.InputDim
	for k := 1; k <= m.Hops; k++ {
		active := 0 // nodes updated by this layer
		for d := 0; d <= m.Hops-k; d++ {
			active += depths[d]
		}
		// Aggregation: each active node sums Fanout+1 embeddings of dimIn.
		w.VectorElem += int64(batchSize) * int64(active) * int64(m.Fanout+1) * int64(dimIn)
		// Update: GEMM (batch·active × dimIn) · (dimIn × HiddenDim).
		w.GEMMs = append(w.GEMMs, accel.GEMM{
			M: batchSize * active,
			K: dimIn,
			N: m.HiddenDim,
		})
		dimIn = m.HiddenDim
	}
	return w
}

// FeatureBytes returns the FP16 bytes of raw features consumed per
// target subgraph (what data preparation must deliver).
func (m Model) FeatureBytes() int {
	return m.SubgraphNodes() * m.InputDim * 2
}

// Weights holds per-layer perceptron weights for the reference forward.
type Weights struct {
	Layers [][]float32 // layer k: dimIn×HiddenDim row-major
	model  Model
}

// NewWeights generates deterministic pseudo-random weights.
func NewWeights(m Model, seed uint64) *Weights {
	rng := xrand.New(seed)
	w := &Weights{model: m}
	dimIn := m.InputDim
	for k := 0; k < m.Hops; k++ {
		layer := make([]float32, dimIn*m.HiddenDim)
		scale := 1.0 / float32(dimIn)
		for i := range layer {
			layer[i] = (float32(rng.Float64()) - 0.5) * scale
		}
		w.Layers = append(w.Layers, layer)
		dimIn = m.HiddenDim
	}
	return w
}

// Forward runs the reference message passing over a sampled subgraph:
// h⁰ = features; hᵏ⁺¹(u) = ReLU(Wᵏ · Σ_{v∈children(u)∪{u}} hᵏ(v)).
// It returns the target's final embedding. The subgraph must have been
// sampled with the model's hops/fanout (ragged trees from zero-degree
// nodes are fine).
func Forward(g *graph.Graph, sg *graph.Subgraph, w *Weights) ([]float32, error) {
	m := w.model
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if g.FeatureDim() != m.InputDim {
		return nil, fmt.Errorf("gnn: graph dim %d != model input dim %d", g.FeatureDim(), m.InputDim)
	}
	n := sg.NumNodes()
	// children[i] lists subgraph indices whose parent is i.
	children := make([][]int32, n)
	for i := 1; i < n; i++ {
		p := sg.Parents[i]
		children[p] = append(children[p], int32(i))
	}
	// h holds the current embedding of every subgraph node.
	h := make([][]float32, n)
	for i := 0; i < n; i++ {
		h[i] = g.Feature(sg.Nodes[i])
	}
	dimIn := m.InputDim
	for k := 0; k < m.Hops; k++ {
		next := make([][]float32, n)
		for i := 0; i < n; i++ {
			if int(sg.Hop[i]) > m.Hops-k-1 {
				continue // this node is no longer needed at deeper layers
			}
			// vector_sum aggregation over self + children.
			agg := make([]float32, dimIn)
			copy(agg, h[i])
			for _, c := range children[i] {
				hc := h[c]
				for j := range agg {
					agg[j] += hc[j]
				}
			}
			// Perceptron update with ReLU.
			out := make([]float32, m.HiddenDim)
			wk := w.Layers[k]
			for o := 0; o < m.HiddenDim; o++ {
				var s float32
				for j := 0; j < dimIn; j++ {
					s += agg[j] * wk[j*m.HiddenDim+o]
				}
				if s < 0 {
					s = 0
				}
				out[o] = s
			}
			next[i] = out
		}
		h = next
		dimIn = m.HiddenDim
	}
	if h[0] == nil {
		return nil, fmt.Errorf("gnn: forward produced no target embedding")
	}
	return h[0], nil
}
