package gnn

import (
	"math"
	"testing"

	"beacongnn/internal/graph"
	"beacongnn/internal/xrand"
)

func trainFixture(t *testing.T) (*graph.Graph, *graph.Subgraph, *Weights, []float32, Model) {
	t.Helper()
	g, err := graph.Generate(graph.GenSpec{Nodes: 120, AvgDegree: 6, FeatureDim: 5, PowerLaw: 2.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := Model{Hops: 2, Fanout: 2, InputDim: 5, HiddenDim: 4}
	w := NewWeights(m, 11)
	sg, err := graph.SampleSubgraph(g, 9, graph.SampleSpec{Hops: 2, Fanout: 2}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// Labels derived from the model's own initial output keep every
	// output unit gradient-connected (a ReLU head cannot reach negative
	// or far-off targets, which would freeze coordinates at ∂L=0).
	out, err := Forward(g, sg, w)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float32, m.HiddenDim)
	for o := range y {
		y[o] = 2*out[o] + 0.02
	}
	return g, sg, w, y, m
}

func TestLossMatchesForward(t *testing.T) {
	g, sg, w, y, _ := trainFixture(t)
	out, err := Forward(g, sg, w)
	if err != nil {
		t.Fatal(err)
	}
	loss, _, err := LossAndGradients(g, sg, w, y)
	if err != nil {
		t.Fatal(err)
	}
	var want float32
	for o := range y {
		d := out[o] - y[o]
		want += 0.5 * d * d
	}
	if math.Abs(float64(loss-want)) > 1e-5 {
		t.Fatalf("loss = %v, forward recomputation says %v", loss, want)
	}
}

func TestGradientsMatchFiniteDifferences(t *testing.T) {
	// The decisive correctness test: analytic gradients must agree with
	// central finite differences at sampled weight coordinates.
	g, sg, w, y, m := trainFixture(t)
	_, grads, err := LossAndGradients(g, sg, w, y)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-3
	rng := xrand.New(99)
	checked := 0
	for k := range w.Layers {
		for trial := 0; trial < 8; trial++ {
			i := rng.Intn(len(w.Layers[k]))
			orig := w.Layers[k][i]
			w.Layers[k][i] = orig + eps
			lp, _, err := LossAndGradients(g, sg, w, y)
			if err != nil {
				t.Fatal(err)
			}
			w.Layers[k][i] = orig - eps
			lm, _, err := LossAndGradients(g, sg, w, y)
			if err != nil {
				t.Fatal(err)
			}
			w.Layers[k][i] = orig
			numeric := float64(lp-lm) / (2 * eps)
			analytic := float64(grads.Layers[k][i])
			// Absolute-plus-relative tolerance; ReLU kinks can make a
			// coordinate non-smooth, so allow a small floor.
			diff := math.Abs(numeric - analytic)
			tol := 1e-3 + 0.02*math.Max(math.Abs(numeric), math.Abs(analytic))
			if diff > tol {
				t.Fatalf("layer %d weight %d: analytic %v vs numeric %v", k, i, analytic, numeric)
			}
			checked++
		}
	}
	if checked < 16 {
		t.Fatal("too few coordinates checked")
	}
	_ = m
}

func TestSGDStepReducesLoss(t *testing.T) {
	g, sg, w, y, _ := trainFixture(t)
	loss0, grads, err := LossAndGradients(g, sg, w, y)
	if err != nil {
		t.Fatal(err)
	}
	if err := SGDStep(w, grads, 0.01); err != nil {
		t.Fatal(err)
	}
	loss1, _, err := LossAndGradients(g, sg, w, y)
	if err != nil {
		t.Fatal(err)
	}
	if loss1 >= loss0 {
		t.Fatalf("SGD did not reduce loss: %v → %v", loss0, loss1)
	}
}

func TestTrainingConvergesOnFixedSubgraph(t *testing.T) {
	g, sg, w, y, _ := trainFixture(t)
	var first, last float32
	for step := 0; step < 600; step++ {
		loss, grads, err := LossAndGradients(g, sg, w, y)
		if err != nil {
			t.Fatal(err)
		}
		if step == 0 {
			first = loss
		}
		last = loss
		if err := SGDStep(w, grads, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	if last > first/5 {
		t.Fatalf("training stalled: loss %v → %v", first, last)
	}
}

func TestTrainingWorkloadShape(t *testing.T) {
	m := Model{Hops: 3, Fanout: 3, InputDim: 100, HiddenDim: 128}
	fwd := m.BatchWorkload(64)
	trn := m.TrainingWorkload(64)
	if len(trn.GEMMs) != 3*len(fwd.GEMMs) {
		t.Fatalf("training GEMMs = %d, want 3× forward (%d)", len(trn.GEMMs), len(fwd.GEMMs))
	}
	if trn.VectorElem != 2*fwd.VectorElem {
		t.Fatalf("training vector elems = %d, want 2× forward", trn.VectorElem)
	}
	// MAC count roughly triples (dagg + dW have the same MACs as forward).
	if trn.MACs() != 3*fwd.MACs() {
		t.Fatalf("training MACs = %d, want %d", trn.MACs(), 3*fwd.MACs())
	}
}

func TestLossValidation(t *testing.T) {
	g, sg, w, _, _ := trainFixture(t)
	if _, _, err := LossAndGradients(g, sg, w, []float32{1}); err == nil {
		t.Fatal("bad label dim accepted")
	}
}
