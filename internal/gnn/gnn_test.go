package gnn

import (
	"math"
	"testing"

	"beacongnn/internal/graph"
	"beacongnn/internal/xrand"
)

func paperModel(inputDim int) Model {
	return Model{Hops: 3, Fanout: 3, InputDim: inputDim, HiddenDim: 128}
}

func TestModelValidate(t *testing.T) {
	if err := paperModel(64).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Model{Hops: 0, Fanout: 3, InputDim: 4, HiddenDim: 4}).Validate(); err == nil {
		t.Fatal("zero hops accepted")
	}
}

func TestSubgraphNodesMatchesPaper(t *testing.T) {
	if n := paperModel(64).SubgraphNodes(); n != 40 {
		t.Fatalf("subgraph nodes = %d, want 40 (§VII-A)", n)
	}
}

func TestBatchWorkloadShape(t *testing.T) {
	m := paperModel(100)
	w := m.BatchWorkload(64)
	if len(w.GEMMs) != 3 {
		t.Fatalf("layers = %d", len(w.GEMMs))
	}
	// Layer 1 updates depths 0..2 → 13 nodes; K = input dim.
	if w.GEMMs[0].M != 64*13 || w.GEMMs[0].K != 100 || w.GEMMs[0].N != 128 {
		t.Fatalf("layer 1 GEMM = %+v", w.GEMMs[0])
	}
	// Layer 2 updates depths 0..1 → 4 nodes; K = hidden.
	if w.GEMMs[1].M != 64*4 || w.GEMMs[1].K != 128 {
		t.Fatalf("layer 2 GEMM = %+v", w.GEMMs[1])
	}
	// Layer 3 updates only the target.
	if w.GEMMs[2].M != 64 {
		t.Fatalf("layer 3 GEMM = %+v", w.GEMMs[2])
	}
	// Aggregation elements: 64·(13·4·100 + 4·4·128 + 1·4·128).
	want := int64(64) * (13*4*100 + 4*4*128 + 1*4*128)
	if w.VectorElem != want {
		t.Fatalf("vector elems = %d, want %d", w.VectorElem, want)
	}
}

func TestFeatureBytes(t *testing.T) {
	if got := paperModel(100).FeatureBytes(); got != 40*100*2 {
		t.Fatalf("feature bytes = %d", got)
	}
}

func TestForwardDeterministic(t *testing.T) {
	g, err := graph.Generate(graph.GenSpec{Nodes: 500, AvgDegree: 10, FeatureDim: 16, PowerLaw: 2.0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := Model{Hops: 2, Fanout: 3, InputDim: 16, HiddenDim: 8}
	w := NewWeights(m, 42)
	sg, err := graph.SampleSubgraph(g, 7, graph.SampleSpec{Hops: 2, Fanout: 3}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Forward(g, sg, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Forward(g, sg, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 8 {
		t.Fatalf("embedding dim = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("forward not deterministic")
		}
	}
	// ReLU output must be non-negative and not all zero.
	nonzero := false
	for _, v := range a {
		if v < 0 {
			t.Fatalf("negative post-ReLU value %v", v)
		}
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("embedding all zeros")
	}
}

func TestForwardAggregatesNeighbors(t *testing.T) {
	// A 2-node path: target 0 with neighbor 1. One layer, identity-ish
	// check: output depends on both features.
	b := graph.NewBuilder(2, 2)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.SetFeature(0, []float32{1, 0})
	b.SetFeature(1, []float32{0, 1})
	g := b.Build()
	m := Model{Hops: 1, Fanout: 1, InputDim: 2, HiddenDim: 2}
	w := &Weights{model: m, Layers: [][]float32{{1, 0, 0, 1}}} // identity
	sg, err := graph.SampleSubgraph(g, 0, graph.SampleSpec{Hops: 1, Fanout: 1}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Forward(g, sg, w)
	if err != nil {
		t.Fatal(err)
	}
	// agg = feat(0) + feat(1) = (1,1); identity weights + ReLU → (1,1).
	if math.Abs(float64(out[0]-1)) > 1e-6 || math.Abs(float64(out[1]-1)) > 1e-6 {
		t.Fatalf("out = %v, want [1 1]", out)
	}
}

func TestForwardDimMismatch(t *testing.T) {
	g, _ := graph.Generate(graph.GenSpec{Nodes: 10, AvgDegree: 2, FeatureDim: 4, Seed: 1})
	m := Model{Hops: 1, Fanout: 1, InputDim: 8, HiddenDim: 4}
	sg, _ := graph.SampleSubgraph(g, 0, graph.SampleSpec{Hops: 1, Fanout: 1}, xrand.New(1))
	if _, err := Forward(g, sg, NewWeights(m, 1)); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestForwardZeroDegreeTarget(t *testing.T) {
	// Target with no neighbors: forward should still produce h(target).
	b := graph.NewBuilder(1, 3)
	b.SetFeature(0, []float32{1, 2, 3})
	g := b.Build()
	m := Model{Hops: 2, Fanout: 2, InputDim: 3, HiddenDim: 4}
	sg, err := graph.SampleSubgraph(g, 0, graph.SampleSpec{Hops: 2, Fanout: 2}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Forward(g, sg, NewWeights(m, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("dim = %d", len(out))
	}
}

func TestWeightsShapes(t *testing.T) {
	m := paperModel(50)
	w := NewWeights(m, 3)
	if len(w.Layers) != 3 {
		t.Fatalf("layers = %d", len(w.Layers))
	}
	if len(w.Layers[0]) != 50*128 || len(w.Layers[1]) != 128*128 {
		t.Fatal("layer shapes wrong")
	}
}
