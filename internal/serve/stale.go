package serve

import (
	"container/list"
	"sync"

	"beacongnn/internal/platform"
)

// family groups simulate requests by what makes their results mutually
// substitutable for degraded serving: the platform kind and dataset.
// Seed, scale, and timing overrides vary within a family — a stale
// result for a sibling config is still a representative answer when
// the alternative is a 503.
type family struct {
	kind    platform.Kind
	dataset string
}

// staleRecord is the last-known-good result of one family, plus the
// shape it was computed at (reported back so a degraded client knows
// what it is actually looking at).
type staleRecord struct {
	res     *platform.Result
	nodes   int
	batches int
	elem    *list.Element
}

// staleCache is a small LRU of last-known-good results per family,
// feeding degraded mode: while a family's breaker is open the daemon
// answers from here — explicitly marked — instead of 500ing. Updates
// happen in place on the hot path (no allocation once a family is
// resident).
type staleCache struct {
	mu  sync.Mutex
	cap int
	m   map[family]*staleRecord
	lru list.List
}

func newStaleCache(cap int) *staleCache {
	return &staleCache{cap: cap, m: make(map[family]*staleRecord)}
}

// put records a fresh success for the family.
func (c *staleCache) put(f family, res *platform.Result, nodes, batches int) {
	c.mu.Lock()
	if rec, ok := c.m[f]; ok {
		rec.res, rec.nodes, rec.batches = res, nodes, batches
		c.lru.MoveToFront(rec.elem)
		c.mu.Unlock()
		return
	}
	rec := &staleRecord{res: res, nodes: nodes, batches: batches}
	rec.elem = c.lru.PushFront(f)
	c.m[f] = rec
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		delete(c.m, back.Value.(family))
		c.lru.Remove(back)
	}
	c.mu.Unlock()
}

// get returns the family's last-known-good record, if any.
func (c *staleCache) get(f family) (staleRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.m[f]
	if !ok {
		return staleRecord{}, false
	}
	c.lru.MoveToFront(rec.elem)
	return *rec, true
}
