package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"beacongnn/internal/config"
	"beacongnn/internal/dataset"
	"beacongnn/internal/platform"
	"beacongnn/internal/sim"
)

// SimRequest is the JSON body of POST /v1/simulate. Zero-valued fields
// take the same defaults as the beaconsim CLI, so an empty override set
// here and a bare CLI run produce byte-identical results.
type SimRequest struct {
	Platform  string `json:"platform"`
	Dataset   string `json:"dataset"`
	Nodes     int    `json:"nodes,omitempty"`      // materialized graph nodes (default 10000)
	Batches   int    `json:"batches,omitempty"`    // mini-batches (default 6)
	BatchSize int    `json:"batch_size,omitempty"` // targets per batch (default: paper's 64)
	Seed      uint64 `json:"seed,omitempty"`

	ReadLatencyNS int64 `json:"read_latency_ns,omitempty"` // flash read latency override
	Channels      int   `json:"channels,omitempty"`
	Dies          int   `json:"dies,omitempty"` // dies per channel
	Cores         int   `json:"cores,omitempty"`

	Fault *FaultRequest `json:"fault,omitempty"`

	// TimeoutMS is this request's deadline; 0 uses the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// FaultRequest switches on the NAND reliability model with optional
// overrides, mirroring beaconsim's -fault* flags.
type FaultRequest struct {
	BaseRBER        float64 `json:"base_rber,omitempty"`
	InitialPECycles int     `json:"initial_pe_cycles,omitempty"`
	DeadDies        []int   `json:"dead_dies,omitempty"`
	DeadChannels    []int   `json:"dead_channels,omitempty"`
}

// simTimelinePoints matches beaconsim's resource-timeline resolution so
// served results stay byte-identical to the CLI's.
const simTimelinePoints = 1024

// simJob is a validated SimRequest, ready to run.
type simJob struct {
	kind    platform.Kind
	desc    dataset.Desc
	nodes   int
	batches int
	cfg     config.Config
	timeout time.Duration
}

// badRequestError marks validation failures that map to 400.
type badRequestError struct{ msg string }

func (e badRequestError) Error() string { return e.msg }

func badf(format string, a ...any) error {
	return badRequestError{fmt.Sprintf(format, a...)}
}

// decodeJSON strictly decodes one JSON object from r into v: unknown
// fields, malformed bodies, and trailing garbage are all 400s — a typo
// in an override must never silently simulate the default instead.
func decodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badf("bad request body: %v", err)
	}
	if dec.More() {
		return badf("bad request body: trailing data after the JSON object")
	}
	return nil
}

// validate resolves a SimRequest against the server's limits.
func (s *Server) validate(req *SimRequest) (*simJob, error) {
	if req.Platform == "" {
		return nil, badf("missing required field \"platform\"")
	}
	kind, err := platform.ByName(req.Platform)
	if err != nil {
		return nil, badf("%v", err)
	}
	if req.Dataset == "" {
		return nil, badf("missing required field \"dataset\"")
	}
	desc, err := dataset.ByName(req.Dataset)
	if err != nil {
		return nil, badf("%v", err)
	}
	job := &simJob{kind: kind, desc: desc, nodes: 10_000, batches: 6}
	if req.Nodes != 0 {
		if req.Nodes < 0 || req.Nodes > s.cfg.MaxNodes {
			return nil, badf("nodes %d outside [1, %d]", req.Nodes, s.cfg.MaxNodes)
		}
		job.nodes = req.Nodes
	}
	if req.Batches != 0 {
		if req.Batches < 0 || req.Batches > s.cfg.MaxBatches {
			return nil, badf("batches %d outside [1, %d]", req.Batches, s.cfg.MaxBatches)
		}
		job.batches = req.Batches
	}
	if req.BatchSize < 0 || req.ReadLatencyNS < 0 || req.Channels < 0 || req.Dies < 0 || req.Cores < 0 {
		return nil, badf("overrides must be non-negative")
	}

	cfg := config.Default()
	if req.BatchSize > 0 {
		cfg.GNN.BatchSize = req.BatchSize
	}
	if req.ReadLatencyNS > 0 {
		cfg.Flash.ReadLatency = sim.Time(req.ReadLatencyNS)
	}
	if req.Channels > 0 {
		cfg.Flash.Channels = req.Channels
	}
	if req.Dies > 0 {
		cfg.Flash.DiesPerChannel = req.Dies
	}
	if req.Cores > 0 {
		cfg.Firmware.Cores = req.Cores
	}
	if req.Seed != 0 {
		cfg.Seed = req.Seed
	}
	if f := req.Fault; f != nil {
		cfg.Fault.Enabled = true
		if f.BaseRBER > 0 {
			cfg.Fault.BaseRBER = f.BaseRBER
		}
		if f.InitialPECycles > 0 {
			cfg.Fault.InitialPECycles = f.InitialPECycles
		}
		cfg.Fault.DeadDies = f.DeadDies
		cfg.Fault.DeadChannels = f.DeadChannels
	}
	if err := cfg.Validate(); err != nil {
		return nil, badf("%v", err)
	}
	job.cfg = cfg

	job.timeout = s.cfg.DefaultTimeout
	if req.TimeoutMS != 0 {
		if req.TimeoutMS < 0 {
			return nil, badf("timeout_ms must be non-negative")
		}
		job.timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if job.timeout > s.cfg.MaxTimeout {
			job.timeout = s.cfg.MaxTimeout
		}
	}
	return job, nil
}

// SimResponse is the JSON reply of POST /v1/simulate.
type SimResponse struct {
	Platform string `json:"platform"`
	Dataset  string `json:"dataset"`
	Nodes    int    `json:"nodes"`
	Batches  int    `json:"batches"`
	// Cached reports whether the result was served from the LRU memo
	// without re-simulating (also surfaced as the X-Cache header).
	Cached bool `json:"cached"`
	// Degraded marks a stale last-known-good result served because the
	// family's circuit breaker was open (also X-Degraded/Warning
	// headers). Omitted on fresh results, keeping healthy responses
	// byte-identical to a build without degraded mode.
	Degraded bool `json:"degraded,omitempty"`
	// WallMS is handler wall time — near zero on cache hits.
	WallMS float64 `json:"wall_ms"`
	// Result is the full measurement set, identical to what the
	// equivalent beaconsim run computes.
	Result *platform.Result `json:"result"`
}

// ExpRequest is the JSON body of POST /v1/experiment: reproduce one
// paper table/figure (see GET /v1/experiments for ids).
type ExpRequest struct {
	ID        string `json:"id"`
	Quick     bool   `json:"quick,omitempty"`
	Nodes     int    `json:"nodes,omitempty"`
	Batches   int    `json:"batches,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// ExpResponse carries the experiment's rendered report.
type ExpResponse struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	WallMS float64 `json:"wall_ms"`
	Output string  `json:"output"`
}

// errorResponse is every non-2xx JSON body.
type errorResponse struct {
	Error string `json:"error"`
}
