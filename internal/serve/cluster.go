package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"beacongnn/internal/chaos"
	"beacongnn/internal/metrics"
)

// Cluster runs N in-process beaconserved replicas behind consistent-hash
// request routing: the same simulation request always lands on the same
// replica, so each replica's memo LRU stays hot for its slice of the key
// space (cache-aware placement). A replica marked dead is skipped by a
// per-replica circuit breaker — once the breaker opens, the dead replica
// is contacted at most once per half-open interval, never hammered by a
// probe storm — with traffic falling through the hash ring to the next
// live replica.
type Cluster struct {
	replicas []*replica
	ring     []ringEntry
	reg      *metrics.Registry
	draining atomic.Bool

	requests    []*metrics.Counter // routed per replica
	deadProbes  []*metrics.Counter // contacts that found the replica dead
	fallbacks   *metrics.Counter
	unavailable *metrics.Counter

	brkCfg chaos.BreakerConfig // shared by all replica breakers
}

// replica is one in-process Server plus its routing health state. The
// mutex makes the route decision (breaker admit + liveness check +
// outcome record) atomic against kill/recover.
type replica struct {
	id  int
	srv *Server

	mu     sync.Mutex
	killed bool
	brk    *chaos.Breaker
}

type ringEntry struct {
	hash uint64
	id   int
}

// vnodesPerReplica is the consistent-hash ring density. 64 virtual
// nodes per replica keeps the key-space split within a few percent of
// even while adding/removing a replica only remaps its own arcs.
const vnodesPerReplica = 64

// NewCluster builds n replicas sharing one Config. An explicit worker
// budget is divided across replicas (floor 1); 0 keeps the per-replica
// default (all cores) — acceptable for simulation workloads where
// replicas are rarely busy simultaneously.
func NewCluster(n int, cfg Config) *Cluster {
	if n < 1 {
		n = 1
	}
	if cfg.Workers > 0 {
		w := cfg.Workers / n
		if w < 1 {
			w = 1
		}
		cfg.Workers = w
	}
	full := cfg.withDefaults()
	c := &Cluster{
		replicas:   make([]*replica, n),
		reg:        metrics.NewRegistry(),
		requests:   make([]*metrics.Counter, n),
		deadProbes: make([]*metrics.Counter, n),
		brkCfg: chaos.BreakerConfig{
			Threshold: full.BreakerThreshold,
			Cooldown:  int64(full.BreakerCooldown),
		},
	}
	c.fallbacks = c.reg.Counter("beaconserved_router_fallback_total")
	c.unavailable = c.reg.Counter("beaconserved_router_unavailable_total")
	for i := 0; i < n; i++ {
		c.replicas[i] = &replica{
			id:  i,
			srv: New(cfg),
			brk: chaos.NewBreaker(c.brkCfg),
		}
		c.requests[i] = c.reg.Counter(fmt.Sprintf(`beaconserved_replica_requests_total{replica="%d"}`, i))
		c.deadProbes[i] = c.reg.Counter(fmt.Sprintf(`beaconserved_replica_dead_probe_total{replica="%d"}`, i))
		for v := 0; v < vnodesPerReplica; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "replica-%d-vnode-%d", i, v)
			c.ring = append(c.ring, ringEntry{hash: h.Sum64(), id: i})
		}
	}
	sort.Slice(c.ring, func(a, b int) bool {
		if c.ring[a].hash != c.ring[b].hash {
			return c.ring[a].hash < c.ring[b].hash
		}
		return c.ring[a].id < c.ring[b].id
	})
	return c
}

// Replicas returns the replica count.
func (c *Cluster) Replicas() int { return len(c.replicas) }

// Replica returns replica i's Server (tests and stats).
func (c *Cluster) Replica(i int) *Server { return c.replicas[i].srv }

// BeginDrain flips every replica (and the router's /healthz) into
// lame-duck mode.
func (c *Cluster) BeginDrain() {
	c.draining.Store(true)
	for _, r := range c.replicas {
		r.srv.BeginDrain()
	}
}

// Draining reports lame-duck state.
func (c *Cluster) Draining() bool { return c.draining.Load() }

// CancelInflight cancels stragglers on every replica and returns the
// total cancelled.
func (c *Cluster) CancelInflight() int {
	n := 0
	for _, r := range c.replicas {
		n += r.srv.CancelInflight()
	}
	return n
}

// Stats aggregates engine stats across replicas.
func (c *Cluster) Stats() (runs, hits uint64) {
	for _, r := range c.replicas {
		rr, hh := r.srv.Engine().Stats()
		runs += rr
		hits += hh
	}
	return runs, hits
}

// DeadProbes returns how many times routing contacted replica i while
// it was dead — the quantity the breaker clamps to at most one per
// half-open interval.
func (c *Cluster) DeadProbes(i int) uint64 { return c.deadProbes[i].Value() }

// RoutedRequests returns how many requests replica i has served.
func (c *Cluster) RoutedRequests(i int) uint64 { return c.requests[i].Value() }

// Kill marks replica i dead (admin drill; no process actually exits —
// the replica simply refuses to serve, like a crashed backend behind a
// proxy).
func (c *Cluster) Kill(i int) {
	r := c.replicas[i]
	r.mu.Lock()
	r.killed = true
	r.mu.Unlock()
}

// Recover brings replica i back. The breaker is replaced so recovery is
// observed on the next request instead of after a full open dwell.
func (c *Cluster) Recover(i int) {
	r := c.replicas[i]
	r.mu.Lock()
	r.killed = false
	r.brk = chaos.NewBreaker(c.brkCfg)
	r.mu.Unlock()
}

// routeKey derives the placement key for a request. Simulation and
// experiment bodies hash their decoded (lenient) request structs, so
// formatting differences in the JSON never split a SimKey across
// replicas; the body is restored for the replica's own strict decoder.
func (c *Cluster) routeKey(r *http.Request) (uint64, bool) {
	if r.Method != http.MethodPost {
		return 0, false
	}
	if r.URL.Path != "/v1/simulate" && r.URL.Path != "/v1/experiment" {
		return 0, false
	}
	const bodyCap = 1 << 20 // matches the replicas' strict decoder limit
	body, err := io.ReadAll(io.LimitReader(r.Body, bodyCap+1))
	r.Body.Close()
	r.Body = io.NopCloser(bytes.NewReader(body))
	if err != nil || len(body) > bodyCap {
		return 0, false
	}
	h := fnv.New64a()
	if r.URL.Path == "/v1/simulate" {
		var req SimRequest
		if json.Unmarshal(body, &req) != nil {
			return 0, false
		}
		// SimKey-determining fields only: the deadline never moves a
		// request off its cache-warm replica, and the Fault block is
		// hashed by value, not by pointer.
		fmt.Fprintf(h, "sim|%s|%s|%d|%d|%d|%d|%d|%d|%d|%d",
			req.Platform, req.Dataset, req.Nodes, req.Batches, req.BatchSize,
			req.Seed, req.ReadLatencyNS, req.Channels, req.Dies, req.Cores)
		if req.Fault != nil {
			fmt.Fprintf(h, "|fault|%g|%d|%v|%v",
				req.Fault.BaseRBER, req.Fault.InitialPECycles,
				req.Fault.DeadDies, req.Fault.DeadChannels)
		}
	} else {
		var req ExpRequest
		if json.Unmarshal(body, &req) != nil {
			return 0, false
		}
		fmt.Fprintf(h, "exp|%s|%t|%d|%d", req.ID, req.Quick, req.Nodes, req.Batches)
	}
	return h.Sum64(), true
}

// candidates returns replica ids in ring order starting at the first
// vnode at or after key, deduplicated — the primary choice first, then
// the fallback sequence a dead primary falls through.
func (c *Cluster) candidates(key uint64) []int {
	n := len(c.replicas)
	out := make([]int, 0, n)
	seen := make([]bool, n)
	start := sort.Search(len(c.ring), func(i int) bool { return c.ring[i].hash >= key })
	for i := 0; len(out) < n && i < len(c.ring); i++ {
		e := c.ring[(start+i)%len(c.ring)]
		if !seen[e.id] {
			seen[e.id] = true
			out = append(out, e.id)
		}
	}
	return out
}

// admit asks replica r to take a request. The breaker gates contact:
// closed admits freely, open admits nothing (zero contact with the dead
// backend), half-open admits exactly one probe per cooldown.
func (c *Cluster) admit(r *replica, now int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.brk.Allow(now) {
		return false
	}
	if r.killed {
		c.deadProbes[r.id].Inc()
		r.brk.Record(now, false)
		return false
	}
	r.brk.Record(now, true)
	return true
}

// ServeHTTP routes to the owning replica, falling through the ring past
// dead replicas. Router-level admin and observability endpoints are
// handled here; everything else reaches a replica's own handler stack.
func (c *Cluster) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/healthz":
		c.handleHealthz(w, r)
		return
	case r.Method == http.MethodGet && r.URL.Path == "/metrics":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.reg.WriteText(w)
		return
	case r.Method == http.MethodGet && r.URL.Path == "/v1/replicas":
		c.handleReplicaList(w, r)
		return
	}
	if id, action, ok := replicaAdminPath(r); ok {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
			return
		}
		if id < 0 || id >= len(c.replicas) {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no replica %d", id)})
			return
		}
		switch action {
		case "kill":
			c.Kill(id)
		case "recover":
			c.Recover(id)
		}
		writeJSON(w, http.StatusOK, map[string]any{"replica": id, "action": action})
		return
	}

	key, hasKey := c.routeKey(r)
	order := c.candidates(key)
	now := time.Now().UnixNano()
	for rank, id := range order {
		rep := c.replicas[id]
		if !c.admit(rep, now) {
			continue
		}
		if rank > 0 && hasKey {
			c.fallbacks.Inc()
			w.Header().Set("X-Replica-Fallback", "1")
		}
		w.Header().Set("X-Replica", strconv.Itoa(id))
		c.requests[id].Inc()
		rep.srv.ServeHTTP(w, r)
		return
	}
	c.unavailable.Inc()
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "no live replica available"})
}

// replicaAdminPath parses /v1/replicas/{id}/{kill|recover}.
func replicaAdminPath(r *http.Request) (id int, action string, ok bool) {
	const prefix = "/v1/replicas/"
	p := r.URL.Path
	if len(p) <= len(prefix) || p[:len(prefix)] != prefix {
		return 0, "", false
	}
	rest := p[len(prefix):]
	slash := -1
	for i := range rest {
		if rest[i] == '/' {
			slash = i
			break
		}
	}
	if slash <= 0 {
		return 0, "", false
	}
	id, err := strconv.Atoi(rest[:slash])
	if err != nil {
		return 0, "", false
	}
	action = rest[slash+1:]
	if action != "kill" && action != "recover" {
		return 0, "", false
	}
	return id, action, true
}

type replicaStatus struct {
	ID       int    `json:"id"`
	Killed   bool   `json:"killed"`
	Breaker  string `json:"breaker"`
	Requests uint64 `json:"requests"`
}

func (c *Cluster) handleReplicaList(w http.ResponseWriter, _ *http.Request) {
	out := make([]replicaStatus, len(c.replicas))
	for i, r := range c.replicas {
		r.mu.Lock()
		out[i] = replicaStatus{
			ID:       i,
			Killed:   r.killed,
			Breaker:  r.brk.State().String(),
			Requests: c.requests[i].Value(),
		}
		r.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, map[string]any{"replicas": out})
}

func (c *Cluster) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	live := 0
	for _, r := range c.replicas {
		r.mu.Lock()
		if !r.killed {
			live++
		}
		r.mu.Unlock()
	}
	status := http.StatusOK
	state := "ok"
	switch {
	case c.Draining():
		status, state = http.StatusServiceUnavailable, "draining"
	case live == 0:
		status, state = http.StatusServiceUnavailable, "no live replicas"
	case live < len(c.replicas):
		state = "degraded"
	}
	writeJSON(w, status, map[string]any{
		"status": state, "live": live, "replicas": len(c.replicas),
	})
}
