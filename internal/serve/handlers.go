package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"beacongnn/internal/chaos"
	"beacongnn/internal/core"
	"beacongnn/internal/exp"
	"beacongnn/internal/platform"
)

// writeJSON writes v with status code; encode failures after the header
// are connection problems, not server state, so they are dropped.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, code int, format string, a ...any) {
	s.reg.Counter(fmt.Sprintf("beaconserved_responses_total{code=%q}", strconv.Itoa(code))).Inc()
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, a...)})
}

func (s *Server) writeOK(w http.ResponseWriter, v any) {
	s.reg.Counter(`beaconserved_responses_total{code="200"}`).Inc()
	writeJSON(w, http.StatusOK, v)
}

// admit runs the shared front half of both heavy endpoints: drain
// refusal and queue-depth shedding. It returns a release func, or ok =
// false with the response already written.
func (s *Server) admit(w http.ResponseWriter) (release func(), ok bool) {
	if s.Draining() {
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return nil, false
	}
	if !s.adm.tryAcquire() {
		s.reg.Counter("beaconserved_shed_total").Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		s.writeError(w, http.StatusTooManyRequests,
			"queue full (%d requests admitted, cap %d); retry later", s.adm.inflight(), s.cfg.QueueDepth)
		return nil, false
	}
	if !s.adm.allowRate(time.Now()) {
		// Sustained load above the measured capacity knee: shed by rate
		// before the queue absorbs work it cannot finish inside the SLO.
		s.adm.release()
		s.reg.Counter("beaconserved_shed_total").Inc()
		s.reg.Counter("beaconserved_capacity_shed_total").Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.capacityRetryAfterSeconds()))
		s.writeError(w, http.StatusTooManyRequests,
			"offered load above the configured capacity knee (%g qps); retry later", s.cfg.CapacityQPS)
		return nil, false
	}
	g := s.reg.Gauge("beaconserved_inflight")
	g.Add(1)
	return func() { g.Add(-1); s.adm.release() }, true
}

// Simulate latencies are tracked per cache outcome: memo hits return in
// microseconds and would drag the median far below the cost of the
// simulations a shed client is actually queueing behind.
const (
	simulateMissSummary = `beaconserved_request_seconds{endpoint="simulate",cache="miss"}`
	simulateHitSummary  = `beaconserved_request_seconds{endpoint="simulate",cache="hit"}`
)

// retryAfterSeconds estimates when a shed client should come back: the
// time for one pool turn to drain at the observed median cache-miss
// request latency, floored at 1s and capped at RetryAfterCeiling — one
// pathological slow miss in the summary must not tell clients to come
// back in hours. With no miss history it answers 1.
func (s *Server) retryAfterSeconds() int {
	count, _, qs := s.reg.Summary(simulateMissSummary).Snapshot(0.5)
	if count == 0 {
		return 1
	}
	turns := float64(s.adm.inflight()) / float64(s.cfg.Workers)
	est := int(math.Ceil(qs[0].Seconds() * turns))
	if est < 1 {
		return 1
	}
	if ceil := int(s.cfg.RetryAfterCeiling.Seconds()); est > ceil {
		return ceil
	}
	return est
}

// capacityRetryAfterSeconds estimates the comeback time from the
// configured knee instead of the observed p50: the bucket refills at
// CapacityQPS, so draining the admitted backlog plus this request takes
// (inflight+1)/qps seconds. Same 1s floor and ceiling as the p50 path.
func (s *Server) capacityRetryAfterSeconds() int {
	est := int(math.Ceil(float64(s.adm.inflight()+1) / s.cfg.CapacityQPS))
	if est < 1 {
		est = 1
	}
	if ceil := int(s.cfg.RetryAfterCeiling.Seconds()); est > ceil {
		est = ceil
	}
	return est
}

// finishErr maps a failed run to a response. Client disconnects get no
// body (nobody is listening); deadline expiry is a 504 so the caller
// can distinguish "too slow" from "invalid".
func (s *Server) finishErr(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.Canceled) && r.Context().Err() != nil:
		s.reg.Counter("beaconserved_client_gone_total").Inc()
	case errors.Is(err, context.Canceled) && s.draining.Load():
		// The drain deadline cancelled this straggler mid-run: 503 tells
		// the client to go elsewhere, not that its request was invalid.
		s.writeError(w, http.StatusServiceUnavailable, "server is draining; request cancelled")
	case errors.Is(err, context.DeadlineExceeded):
		s.writeError(w, http.StatusGatewayTimeout, "deadline exceeded: %v", err)
	default:
		s.writeError(w, http.StatusInternalServerError, "simulation failed: %v", err)
	}
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req SimRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job, err := s.validate(&req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	// Requests that fail before the cache lookup still did miss-side work
	// (instance build), so the label defaults to miss.
	latency := simulateMissSummary
	defer func() {
		s.reg.Summary(latency).Observe(time.Since(start))
	}()

	fam := family{kind: job.kind, dataset: job.desc.Name}
	bk := s.breakers.get(fam)
	if !bk.Allow(time.Now().UnixNano()) {
		s.serveDegraded(w, job, fam, start, "circuit open")
		return
	}
	s.budget.Earn()

	ctx, cancel := context.WithTimeout(r.Context(), job.timeout)
	defer cancel()
	untrack := s.inflight.track(cancel)
	defer untrack()

	inst, err := s.insts.get(ctx, instKey{
		name:     job.desc.Name,
		nodes:    job.nodes,
		pageSize: job.cfg.Flash.PageSize,
		seed:     job.cfg.Seed,
	})
	if err != nil {
		bk.CancelProbe() // materialization says nothing about engine health
		s.finishErr(w, r, err)
		return
	}
	key := exp.Key(job.kind, job.cfg, inst, job.batches, simTimelinePoints)
	hit := s.eng.Cached(key)
	var res *platform.Result
	if hit {
		latency = simulateHitSummary
		s.reg.Counter("beaconserved_cache_hits_total").Inc()
		// Memo hits bypass the retry/hedge machinery entirely: the hot
		// path stays at its uninstrumented allocation budget.
		res, err = s.eng.SimulateCtx(ctx, job.kind, job.cfg, inst, job.batches, simTimelinePoints)
		if err == nil {
			bk.Record(time.Now().UnixNano(), true)
		} else if ctx.Err() != nil {
			bk.CancelProbe()
		} else {
			bk.Record(time.Now().UnixNano(), false)
		}
	} else {
		s.reg.Counter("beaconserved_cache_misses_total").Inc()
		res, err = s.runResilient(ctx, bk, job, inst, key)
	}
	if err != nil {
		// Transient exhaustion with the breaker now open degrades
		// instead of surfacing a 5xx the client can do nothing about.
		if ctx.Err() == nil && exp.IsTransient(err) && bk.State() == chaos.Open {
			s.serveDegraded(w, job, fam, start, "retries exhausted; circuit open")
			return
		}
		s.finishErr(w, r, err)
		return
	}
	s.stale.put(fam, res, job.nodes, job.batches)
	cacheHeader := "miss"
	if hit {
		cacheHeader = "hit"
	}
	w.Header().Set("X-Cache", cacheHeader)
	s.writeOK(w, SimResponse{
		Platform: res.Platform,
		Dataset:  res.Dataset,
		Nodes:    job.nodes,
		Batches:  job.batches,
		Cached:   hit,
		WallMS:   float64(time.Since(start).Microseconds()) / 1e3,
		Result:   res,
	})
}

// serveDegraded answers under an open breaker: the family's
// last-known-good result with explicit staleness marking (200 with
// X-Degraded/Warning — a deliberate choice over a 5xx the client can
// only blind-retry into the same open circuit), or 503 + Retry-After
// when no stale result exists yet.
func (s *Server) serveDegraded(w http.ResponseWriter, job *simJob, fam family, start time.Time, reason string) {
	rec, ok := s.stale.get(fam)
	if !ok {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		s.writeError(w, http.StatusServiceUnavailable,
			"circuit open for %v/%s and no stale result to serve: %s", job.kind, job.desc.Name, reason)
		return
	}
	s.reg.Counter("beaconserved_degraded_total").Inc()
	w.Header().Set("X-Degraded", "true")
	w.Header().Set("X-Cache", "stale")
	w.Header().Set("Warning", `110 beaconserved "stale result: `+reason+`"`)
	s.writeOK(w, SimResponse{
		Platform: rec.res.Platform,
		Dataset:  rec.res.Dataset,
		Nodes:    rec.nodes,
		Batches:  rec.batches,
		Cached:   true,
		Degraded: true,
		WallMS:   float64(time.Since(start).Microseconds()) / 1e3,
		Result:   rec.res,
	})
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req ExpRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, err := core.ByID(req.ID)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Nodes < 0 || req.Nodes > s.cfg.MaxNodes {
		s.writeError(w, http.StatusBadRequest, "nodes %d outside [0, %d]", req.Nodes, s.cfg.MaxNodes)
		return
	}
	if req.Batches < 0 || req.Batches > s.cfg.MaxBatches {
		s.writeError(w, http.StatusBadRequest, "batches %d outside [0, %d]", req.Batches, s.cfg.MaxBatches)
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS < 0 {
		s.writeError(w, http.StatusBadRequest, "timeout_ms must be non-negative")
		return
	}
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	defer func() {
		s.reg.Summary(`beaconserved_request_seconds{endpoint="experiment"}`).Observe(time.Since(start))
	}()

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	opts := &core.Options{
		ScaleNodes: req.Nodes,
		Batches:    req.Batches,
		Quick:      req.Quick,
		Ctx:        ctx,
		Engine:     s.eng, // shared pool and result memo across requests
	}
	var buf bytes.Buffer
	if err := e.Run(opts, &buf); err != nil {
		s.finishErr(w, r, err)
		return
	}
	s.writeOK(w, ExpResponse{
		ID:     e.ID,
		Title:  e.Title,
		WallMS: float64(time.Since(start).Microseconds()) / 1e3,
		Output: buf.String(),
	})
}

func (s *Server) handleExperimentList(w http.ResponseWriter, _ *http.Request) {
	type item struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	var out []item
	for _, e := range core.AllExperiments() {
		out = append(out, item{e.ID, e.Title})
	}
	s.writeOK(w, out)
}

// healthzResponse is the GET /healthz body.
type healthzResponse struct {
	Status        string  `json:"status"` // "ok" or "draining"
	UptimeSeconds float64 `json:"uptime_seconds"`
	Inflight      int64   `json:"inflight"`
	QueueCap      int     `json:"queue_cap"`
	Workers       int     `json:"workers"`
	SimRuns       uint64  `json:"sim_runs"`
	MemoHits      uint64  `json:"memo_hits"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	runs, hits := s.eng.Stats()
	resp := healthzResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Inflight:      s.adm.inflight(),
		QueueCap:      s.cfg.QueueDepth,
		Workers:       s.cfg.Workers,
		SimRuns:       runs,
		MemoHits:      hits,
	}
	code := http.StatusOK
	if s.Draining() {
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WriteText(w)
}
