package serve

import "sync/atomic"

// admission is the load shedder: a hard cap on simultaneously admitted
// heavy requests (queued on the pool plus running). Past the cap the
// caller sheds with 429 instead of letting the queue — and every
// queued request's latency — grow without bound. The cap is
// intentionally a simple atomic counter, not a queue: ordering fairness
// comes from the engine's semaphore underneath.
type admission struct {
	cap int64
	cur atomic.Int64
}

func newAdmission(depth int) *admission {
	return &admission{cap: int64(depth)}
}

// tryAcquire admits one request, reporting false (and admitting
// nothing) when the cap is reached.
func (a *admission) tryAcquire() bool {
	if a.cur.Add(1) > a.cap {
		a.cur.Add(-1)
		return false
	}
	return true
}

// release returns one admitted slot.
func (a *admission) release() { a.cur.Add(-1) }

// inflight returns the currently admitted count.
func (a *admission) inflight() int64 { return a.cur.Load() }
