package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// admission is the load shedder: a hard cap on simultaneously admitted
// heavy requests (queued on the pool plus running). Past the cap the
// caller sheds with 429 instead of letting the queue — and every
// queued request's latency — grow without bound. The cap is
// intentionally a simple atomic counter, not a queue: ordering fairness
// comes from the engine's semaphore underneath.
type admission struct {
	cap int64
	cur atomic.Int64

	// rate is the measured-knee limiter (nil when CapacityQPS is not
	// configured, keeping the legacy queue-depth-only behaviour and a
	// zero-cost admit path).
	rate *tokenBucket
}

func newAdmission(depth int, capacityQPS float64) *admission {
	a := &admission{cap: int64(depth)}
	if capacityQPS > 0 {
		a.rate = newTokenBucket(capacityQPS)
	}
	return a
}

// tokenBucket paces admissions at the capacity knee measured by the
// `-exp capacity` sweep: tokens refill at the knee rate and burst
// absorbs up to one second of it, so short arrival bursts inside
// capacity pass while sustained load above the knee sheds — before it
// ever reaches the queue whose growth the knee was chosen to prevent.
type tokenBucket struct {
	mu     sync.Mutex
	qps    float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(qps float64) *tokenBucket {
	burst := qps // one second of knee capacity
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{qps: qps, burst: burst, tokens: burst}
}

// take spends one token, refilling by elapsed wall time first.
func (b *tokenBucket) take(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.qps
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// allowRate reports whether the knee limiter admits one more request
// now. Always true when no capacity knee is configured.
func (a *admission) allowRate(now time.Time) bool {
	return a.rate == nil || a.rate.take(now)
}

// tryAcquire admits one request, reporting false (and admitting
// nothing) when the cap is reached.
func (a *admission) tryAcquire() bool {
	if a.cur.Add(1) > a.cap {
		a.cur.Add(-1)
		return false
	}
	return true
}

// release returns one admitted slot.
func (a *admission) release() { a.cur.Add(-1) }

// inflight returns the currently admitted count.
func (a *admission) inflight() int64 { return a.cur.Load() }
