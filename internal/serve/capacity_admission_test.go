package serve

import (
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestTokenBucketRefill drives the bucket with synthetic clocks: burst
// caps the balance, refill is proportional to elapsed time, and an
// empty bucket refuses.
func TestTokenBucketRefill(t *testing.T) {
	b := newTokenBucket(2) // burst 2, starts full
	t0 := time.Unix(1000, 0)
	if !b.take(t0) || !b.take(t0) {
		t.Fatal("full bucket refused its burst")
	}
	if b.take(t0) {
		t.Fatal("empty bucket admitted")
	}
	// 500ms refills one token at 2 qps.
	if !b.take(t0.Add(500 * time.Millisecond)) {
		t.Fatal("refilled token refused")
	}
	if b.take(t0.Add(500 * time.Millisecond)) {
		t.Fatal("token granted twice")
	}
	// A long idle period must cap at burst, not accumulate unboundedly.
	t1 := t0.Add(time.Hour)
	if !b.take(t1) || !b.take(t1) {
		t.Fatal("burst not available after idle")
	}
	if b.take(t1) {
		t.Fatal("burst cap exceeded after idle")
	}
}

// TestTokenBucketSubUnitRate: qps < 1 keeps a one-request burst floor so
// the first request always fits.
func TestTokenBucketSubUnitRate(t *testing.T) {
	b := newTokenBucket(0.5)
	t0 := time.Unix(2000, 0)
	if !b.take(t0) {
		t.Fatal("first request refused at sub-unit rate")
	}
	if b.take(t0.Add(time.Second)) {
		t.Fatal("admitted after 1s at 0.5 qps (needs 2s per token)")
	}
	if !b.take(t0.Add(2100 * time.Millisecond)) {
		t.Fatal("refused after a full token period")
	}
}

// TestCapacityKneeSheds is the satellite acceptance test: with
// -capacity-qps configured, load beyond the knee sheds with 429 derived
// from the knee rate — not from the p50 drain estimate the legacy path
// uses (which would answer 1s here, since the only observed miss is
// milliseconds).
func TestCapacityKneeSheds(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, CapacityQPS: 0.5})
	first := post(t, s, "/v1/simulate", simBody("BG-2", ""))
	if first.Code != http.StatusOK {
		t.Fatalf("first request: code %d body %.200s", first.Code, first.Body)
	}
	// The 0.5 qps bucket held exactly one token; the immediate second
	// request is above the knee.
	w := post(t, s, "/v1/simulate", simBody("BG-1", ""))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("code = %d body %s, want 429 from the knee limiter", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "capacity knee") {
		t.Fatalf("shed body %s, want the knee cause (not queue full)", w.Body)
	}
	ra, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || ra < 2 {
		t.Fatalf("Retry-After = %q, want >= 2s (one token at 0.5 qps); the p50 path would say 1",
			w.Header().Get("Retry-After"))
	}
	if got := s.reg.Counter("beaconserved_capacity_shed_total").Value(); got != 1 {
		t.Fatalf("capacity_shed_total = %d, want 1", got)
	}
	if got := s.reg.Counter("beaconserved_shed_total").Value(); got != 1 {
		t.Fatalf("shed_total = %d, want the knee shed counted in the overall total", got)
	}
}

// TestCapacityDisabledKeepsLegacyAdmission: CapacityQPS = 0 must leave
// the request path exactly as before — no limiter allocated, back-to-
// back requests all admitted, no capacity sheds counted.
func TestCapacityDisabledKeepsLegacyAdmission(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	if s.adm.rate != nil {
		t.Fatal("knee limiter allocated with CapacityQPS unset")
	}
	for i := 0; i < 5; i++ {
		if w := post(t, s, "/v1/simulate", simBody("BG-2", "")); w.Code != http.StatusOK {
			t.Fatalf("request %d: code %d body %.200s", i, w.Code, w.Body)
		}
	}
	if got := s.reg.Counter("beaconserved_capacity_shed_total").Value(); got != 0 {
		t.Fatalf("capacity_shed_total = %d with the limiter disabled", got)
	}
}
