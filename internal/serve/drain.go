package serve

import (
	"context"
	"sync"
)

// drainSet tracks the cancel funcs of in-flight heavy requests so the
// drain hard-deadline can abort stragglers, and so drain progress is
// observable (beaconserved_inflight_requests gauge).
type drainSet struct {
	mu   sync.Mutex
	next uint64
	m    map[uint64]context.CancelFunc
}

func newDrainSet() *drainSet {
	return &drainSet{m: make(map[uint64]context.CancelFunc)}
}

// track registers cancel and returns an unregister func. The request
// path calls unregister on completion; cancelAll may race it — both
// are idempotent on the map.
func (d *drainSet) track(cancel context.CancelFunc) func() {
	d.mu.Lock()
	d.next++
	id := d.next
	d.m[id] = cancel
	d.mu.Unlock()
	return func() {
		d.mu.Lock()
		delete(d.m, id)
		d.mu.Unlock()
	}
}

func (d *drainSet) len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.m)
}

// cancelAll fires every tracked cancellation, returning the count.
func (d *drainSet) cancelAll() int {
	d.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(d.m))
	for _, c := range d.m {
		cancels = append(cancels, c)
	}
	d.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	return len(cancels)
}
