package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// benchPost drives one request through the full handler stack —
// decode, validation, admission, engine, JSON encode — exactly as an
// HTTP client would, minus the network.
func benchPost(b *testing.B, s http.Handler, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	return w
}

// BenchmarkRequestPath measures one simulate request end to end through
// the serving layer, in both regimes that matter for a daemon:
//
//   - cold: every request has a distinct config digest (a different
//     read-latency override), so each op pays a full simulation on a
//     warm dataset instance — the request path's allocation budget is
//     on top of the simulation itself;
//   - memo-hit: the same request repeatedly, so each op is decode +
//     validation + memo lookup + JSON encode. This is the latency a
//     client sees for a repeated query and must stay microseconds.
func BenchmarkRequestPath(b *testing.B) {
	s := New(Config{Workers: 1, MaxNodes: 50_000})
	base := `{"platform":"BG-2","dataset":"amazon","nodes":2000,"batches":2`

	// Warm the instance cache so cold ops measure simulation + request
	// path, not dataset materialization.
	benchPost(b, s, base+`}`)

	// Monotonic across the benchmark's b.N calibration rounds — the same
	// i must never produce the same config digest twice.
	latency := 3000
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// A unique flash read latency per op forces a config-digest
			// miss while reusing the materialized instance.
			latency++
			body := fmt.Sprintf(`%s,"read_latency_ns":%d}`, base, latency)
			w := benchPost(b, s, body)
			if w.Header().Get("X-Cache") != "miss" {
				b.Fatal("cold op unexpectedly hit the memo")
			}
		}
	})

	b.Run("memo-hit", func(b *testing.B) {
		body := base + `}`
		benchPost(b, s, body) // ensure the key is resident
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w := benchPost(b, s, body)
			if w.Header().Get("X-Cache") != "hit" {
				b.Fatal("memo-hit op missed the cache")
			}
		}
	})
}
