// Package serve is the simulation-as-a-service layer: a long-lived HTTP
// daemon (cmd/beaconserved) over the batch experiment engine. It turns
// the repository's one-shot CLI entry points into something that can
// hold heavy concurrent traffic:
//
//   - requests run on the bounded worker pool of one shared exp.Engine,
//     so N clients never oversubscribe the machine;
//   - results are memoized in an LRU keyed by the engine's SimKey (the
//     config digest plus platform/dataset/scale), so repeated requests
//     are served without re-simulating;
//   - admission control sheds load past a queue-depth cap with 429 and
//     a Retry-After estimate instead of queueing unboundedly;
//   - every request carries a deadline, threaded as a context through
//     the engine into the simulation event loop, so abandoned work
//     frees its pool slot mid-run;
//   - shutdown is graceful: /healthz flips to draining, new work is
//     refused, and in-flight runs complete before the process exits.
package serve

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"beacongnn/internal/exp"
	"beacongnn/internal/metrics"
)

// Config tunes the daemon. The zero value is completed by New with the
// documented defaults.
type Config struct {
	// Workers bounds concurrently running simulations (0 = GOMAXPROCS).
	Workers int
	// QueueDepth caps admitted (queued + running) heavy requests; past
	// it the server sheds with 429. 0 = 4× workers.
	QueueDepth int
	// CacheResults is the LRU cap on memoized simulation results
	// (0 = 512). Each entry is one platform.Result — a few tens of KB.
	CacheResults int
	// CacheInstances is the LRU cap on materialized dataset instances
	// (0 = 8). Instances are the big allocation: cap × MaxNodes bounds
	// resident graph memory.
	CacheInstances int
	// DefaultTimeout applies when a request does not set timeout_ms
	// (0 = 120s); MaxTimeout (0 = 10min) caps what clients may ask for.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxNodes / MaxBatches bound per-request simulation size at
	// admission (0 = 200 000 nodes, 64 batches).
	MaxNodes   int
	MaxBatches int
	// Check routes every simulation through the invariant checker.
	Check bool
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheResults <= 0 {
		c.CacheResults = 512
	}
	if c.CacheInstances <= 0 {
		c.CacheInstances = 8
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 120 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 200_000
	}
	if c.MaxBatches <= 0 {
		c.MaxBatches = 64
	}
	return c
}

// Server is the HTTP serving layer. Create with New; it is an
// http.Handler ready to mount on any http.Server or test harness.
type Server struct {
	cfg   Config
	eng   *exp.Engine
	reg   *metrics.Registry
	insts *instCache
	adm   *admission
	mux   *http.ServeMux
	start time.Time

	draining atomic.Bool
}

// New builds a server: one shared engine (pool + LRU result memo), one
// instance cache, one metrics registry.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	eng := exp.New(cfg.Workers)
	if cfg.Check {
		eng.EnableChecks()
	}
	eng.SetMemoCap(cfg.CacheResults)
	s := &Server{
		cfg:   cfg,
		eng:   eng,
		reg:   metrics.NewRegistry(),
		insts: newInstCache(cfg.CacheInstances, eng),
		adm:   newAdmission(cfg.QueueDepth),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.reg.GaugeFunc("beaconserved_uptime_seconds", func() float64 {
		return time.Since(s.start).Seconds()
	})
	s.reg.GaugeFunc("beaconserved_sim_runs_total", func() float64 {
		runs, _ := eng.Stats()
		return float64(runs)
	})
	s.reg.GaugeFunc("beaconserved_sim_memo_hits_total", func() float64 {
		_, hits := eng.Stats()
		return float64(hits)
	})
	s.reg.GaugeFunc("beaconserved_cache_evictions_total", func() float64 {
		return float64(eng.Evictions())
	})
	s.reg.GaugeFunc("beaconserved_workers", func() float64 {
		return float64(cfg.Workers)
	})
	s.routes()
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/experiment", s.handleExperiment)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// ServeHTTP dispatches to the mux, counting every request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("beaconserved_requests_total").Inc()
	s.mux.ServeHTTP(w, r)
}

// Engine exposes the shared experiment engine (tests compare its stats).
func (s *Server) Engine() *exp.Engine { return s.eng }

// BeginDrain flips the server into draining: /healthz turns 503 so load
// balancers stop routing here, and new heavy work is refused with 503
// while in-flight requests run to completion. The HTTP layer
// (http.Server.Shutdown) then waits for active connections.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }
