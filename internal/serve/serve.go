// Package serve is the simulation-as-a-service layer: a long-lived HTTP
// daemon (cmd/beaconserved) over the batch experiment engine. It turns
// the repository's one-shot CLI entry points into something that can
// hold heavy concurrent traffic:
//
//   - requests run on the bounded worker pool of one shared exp.Engine,
//     so N clients never oversubscribe the machine;
//   - results are memoized in an LRU keyed by the engine's SimKey (the
//     config digest plus platform/dataset/scale), so repeated requests
//     are served without re-simulating;
//   - admission control sheds load past a queue-depth cap with 429 and
//     a Retry-After estimate instead of queueing unboundedly;
//   - every request carries a deadline, threaded as a context through
//     the engine into the simulation event loop, so abandoned work
//     frees its pool slot mid-run;
//   - shutdown is graceful: /healthz flips to draining, new work is
//     refused, and in-flight runs complete before the process exits.
package serve

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"beacongnn/internal/chaos"
	"beacongnn/internal/exp"
	"beacongnn/internal/metrics"
)

// Config tunes the daemon. The zero value is completed by New with the
// documented defaults.
type Config struct {
	// Workers bounds concurrently running simulations (0 = GOMAXPROCS).
	Workers int
	// QueueDepth caps admitted (queued + running) heavy requests; past
	// it the server sheds with 429. 0 = 4× workers.
	QueueDepth int
	// CacheResults is the LRU cap on memoized simulation results
	// (0 = 512). Each entry is one platform.Result — a few tens of KB.
	CacheResults int
	// CacheInstances is the LRU cap on materialized dataset instances
	// (0 = 8). Instances are the big allocation: cap × MaxNodes bounds
	// resident graph memory.
	CacheInstances int
	// DefaultTimeout applies when a request does not set timeout_ms
	// (0 = 120s); MaxTimeout (0 = 10min) caps what clients may ask for.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxNodes / MaxBatches bound per-request simulation size at
	// admission (0 = 200 000 nodes, 64 batches).
	MaxNodes   int
	MaxBatches int
	// Check routes every simulation through the invariant checker.
	Check bool
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool

	// MaxAttempts is the total tries a simulate request gets against
	// transient engine faults, including the first (0 = 3; 1 disables
	// retries). Deterministic simulation errors never retry.
	MaxAttempts int
	// RetryBudgetRatio is the retry-budget earn rate: tokens credited
	// per fresh request, spent one per retry, so retries self-limit to
	// this fraction of offered load under sustained failure (0 = 0.2;
	// negative disables retries entirely).
	RetryBudgetRatio float64
	// RetryBackoffBase/Max bound the exponential retry delay
	// (0 = 50ms base, 2s max); jitter is deterministic per SimKey.
	RetryBackoffBase time.Duration
	RetryBackoffMax  time.Duration
	// HedgeAfter launches a duplicate simulation when the primary has
	// not answered within this long, first result winning and the loser
	// cancelled mid-kernel (0 = hedging off).
	HedgeAfter time.Duration
	// BreakerThreshold consecutive engine failures trip a per-
	// (platform, dataset) circuit breaker (0 = 5); BreakerCooldown is
	// its open dwell before a half-open probe (0 = 10s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// StaleCap bounds the degraded-mode cache of last-known-good
	// results served under an open breaker (0 = 64).
	StaleCap int
	// RetryAfterCeiling caps the Retry-After estimate handed to shed
	// clients (0 = 60s); the floor stays 1s.
	RetryAfterCeiling time.Duration
	// CapacityQPS is the measured saturation knee from the `-exp
	// capacity` sweep (knee_qps in its JSON report). When > 0, a token
	// bucket refilling at this rate (burst: one second of it) sheds
	// sustained load above the knee with 429 before it reaches the
	// queue, and Retry-After is derived from the knee rate instead of
	// the observed p50 drain estimate. 0 keeps the legacy
	// queue-depth-only admission.
	CapacityQPS float64
	// DrainTimeout is the hard drain deadline: this long after
	// BeginDrain, CancelInflight aborts stragglers via per-request
	// cancellation (0 = 30s). Enforced by the cmd layer.
	DrainTimeout time.Duration

	// Chaos configures fault injection (default off: zero overhead and
	// byte-identical behaviour).
	Chaos chaos.Config
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheResults <= 0 {
		c.CacheResults = 512
	}
	if c.CacheInstances <= 0 {
		c.CacheInstances = 8
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 120 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 200_000
	}
	if c.MaxBatches <= 0 {
		c.MaxBatches = 64
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBudgetRatio == 0 {
		c.RetryBudgetRatio = 0.2
	}
	if c.RetryBackoffBase <= 0 {
		c.RetryBackoffBase = 50 * time.Millisecond
	}
	if c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = 2 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.StaleCap <= 0 {
		c.StaleCap = 64
	}
	if c.RetryAfterCeiling <= 0 {
		c.RetryAfterCeiling = 60 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	return c
}

// Server is the HTTP serving layer. Create with New; it is an
// http.Handler ready to mount on any http.Server or test harness.
type Server struct {
	cfg     Config
	eng     *exp.Engine
	reg     *metrics.Registry
	insts   *instCache
	adm     *admission
	mux     *http.ServeMux
	handler http.Handler // mux, or chaos middleware around it
	start   time.Time

	budget   *chaos.RetryBudget
	breakers *breakerSet
	stale    *staleCache
	inflight *drainSet
	injector *chaos.Injector // nil unless chaos is enabled

	draining atomic.Bool
}

// New builds a server: one shared engine (pool + LRU result memo), one
// instance cache, one metrics registry.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	eng := exp.New(cfg.Workers)
	if cfg.Check {
		eng.EnableChecks()
	}
	eng.SetMemoCap(cfg.CacheResults)
	s := &Server{
		cfg:      cfg,
		eng:      eng,
		reg:      metrics.NewRegistry(),
		insts:    newInstCache(cfg.CacheInstances, eng),
		adm:      newAdmission(cfg.QueueDepth, cfg.CapacityQPS),
		mux:      http.NewServeMux(),
		start:    time.Now(),
		budget:   chaos.NewRetryBudget(cfg.RetryBudgetRatio, 0),
		stale:    newStaleCache(cfg.StaleCap),
		inflight: newDrainSet(),
	}
	s.breakers = newBreakerSet(chaos.BreakerConfig{
		Threshold: cfg.BreakerThreshold,
		Cooldown:  cfg.BreakerCooldown.Nanoseconds(),
	}, s.reg)
	s.reg.GaugeFunc("beaconserved_uptime_seconds", func() float64 {
		return time.Since(s.start).Seconds()
	})
	if cfg.CapacityQPS > 0 {
		s.reg.GaugeFunc("beaconserved_capacity_qps", func() float64 {
			return cfg.CapacityQPS
		})
	}
	s.reg.GaugeFunc("beaconserved_sim_runs_total", func() float64 {
		runs, _ := eng.Stats()
		return float64(runs)
	})
	s.reg.GaugeFunc("beaconserved_sim_memo_hits_total", func() float64 {
		_, hits := eng.Stats()
		return float64(hits)
	})
	s.reg.GaugeFunc("beaconserved_cache_evictions_total", func() float64 {
		return float64(eng.Evictions())
	})
	s.reg.GaugeFunc("beaconserved_workers", func() float64 {
		return float64(cfg.Workers)
	})
	s.reg.GaugeFunc("beaconserved_inflight_requests", func() float64 {
		return float64(s.inflight.len())
	})
	s.routes()
	s.handler = s.mux
	if cfg.Chaos.Active() {
		in := chaos.New(cfg.Chaos)
		in.Attach(eng)
		s.injector = in
		s.handler = in.WrapHTTP(s.mux, func(class string) {
			s.reg.Counter(`beaconserved_chaos_injected_total{class="` + class + `"}`).Inc()
		})
	}
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/experiment", s.handleExperiment)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// ServeHTTP dispatches to the handler chain (chaos middleware when
// enabled, else the bare mux), counting every request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("beaconserved_requests_total").Inc()
	s.handler.ServeHTTP(w, r)
}

// Engine exposes the shared experiment engine (tests compare its stats).
func (s *Server) Engine() *exp.Engine { return s.eng }

// Injector exposes the chaos injector (nil when chaos is off); tests
// disarm it to let a faulted server recover on cue.
func (s *Server) Injector() *chaos.Injector { return s.injector }

// BeginDrain flips the server into draining: /healthz turns 503 so load
// balancers stop routing here, and new heavy work is refused with 503
// while in-flight requests run to completion. The HTTP layer
// (http.Server.Shutdown) then waits for active connections; if they
// outlive Config.DrainTimeout the cmd layer calls CancelInflight.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// CancelInflight aborts every tracked in-flight heavy request through
// its per-request cancellation — the same path a disconnected client
// takes, observed mid-kernel — and returns how many were cancelled.
// This is the drain hard-deadline: stragglers stop burning CPU and
// their connections close, unblocking http.Server.Shutdown.
func (s *Server) CancelInflight() int { return s.inflight.cancelAll() }
