package serve

import (
	"container/list"
	"context"
	"sync"

	"beacongnn/internal/dataset"
	"beacongnn/internal/exp"
)

// instKey identifies one materialized dataset instance — every input
// Materialize depends on, so distinct scales/seeds/page sizes can never
// alias.
type instKey struct {
	name     string
	nodes    int
	pageSize int
	seed     uint64
}

type instEntry struct {
	done      chan struct{} // closed when inst/err (or abandoned) are valid
	inst      *dataset.Instance
	err       error
	abandoned bool // cancelled before materializing; waiters retry
	elem      *list.Element
}

// instCache is a bounded LRU of materialized dataset instances with
// in-flight deduplication: concurrent requests for the same instance
// materialize once, and materialization holds an engine worker slot so
// it competes with simulations for CPU rather than alongside them.
// Instances dominate the daemon's memory (features + graph + pages),
// which is why they get their own small cap, separate from the result
// memo.
type instCache struct {
	mu  sync.Mutex
	cap int
	m   map[instKey]*instEntry
	lru list.List
	eng *exp.Engine
}

func newInstCache(cap int, eng *exp.Engine) *instCache {
	return &instCache{cap: cap, m: make(map[instKey]*instEntry), eng: eng}
}

// get returns the cached instance for key, materializing it (throttled,
// cancellable while queued) on a miss. Errors are not cached: a failed
// or abandoned materialization frees the key for the next request.
func (c *instCache) get(ctx context.Context, key instKey) (*dataset.Instance, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c.mu.Lock()
		if ent, ok := c.m[key]; ok {
			if ent.elem != nil {
				c.lru.MoveToFront(ent.elem)
			}
			c.mu.Unlock()
			select {
			case <-ent.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if ent.abandoned {
				continue
			}
			return ent.inst, ent.err
		}
		ent := &instEntry{done: make(chan struct{})}
		c.m[key] = ent
		c.mu.Unlock()

		d, err := dataset.ByName(key.name)
		if err == nil {
			// The slot wait is cancellable; Materialize itself runs to
			// completion once started (it is bounded by MaxNodes).
			err = c.eng.ThrottleCtx(ctx, func() {
				ent.inst, ent.err = dataset.Materialize(d, key.nodes, key.pageSize, key.seed)
			})
		}
		if err != nil && ent.err == nil {
			ent.err = err
		}
		c.finish(key, ent, ctx)
		return ent.inst, ent.err
	}
}

func (c *instCache) finish(key instKey, ent *instEntry, ctx context.Context) {
	c.mu.Lock()
	switch {
	case ent.err != nil:
		// Do not cache failures — and if the failure was our own
		// cancellation, let deduped waiters retry rather than inherit it.
		delete(c.m, key)
		ent.abandoned = ctx.Err() != nil && ent.inst == nil && ent.err == ctx.Err()
	default:
		ent.elem = c.lru.PushFront(key)
		for c.lru.Len() > c.cap {
			back := c.lru.Back()
			delete(c.m, back.Value.(instKey))
			c.lru.Remove(back)
		}
	}
	c.mu.Unlock()
	close(ent.done)
}

// len returns the number of completed cached instances.
func (c *instCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
