package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"beacongnn/internal/chaos"
	"beacongnn/internal/dataset"
	"beacongnn/internal/exp"
	"beacongnn/internal/metrics"
	"beacongnn/internal/platform"
)

// breakerSet owns one circuit breaker per (platform, dataset) family.
// Lookup is a struct-keyed map read under RWMutex — no allocation on
// the request hot path; the labeled state gauge is built once, when a
// family's breaker is first created.
type breakerSet struct {
	mu  sync.RWMutex
	cfg chaos.BreakerConfig
	m   map[family]*chaos.Breaker
	reg *metrics.Registry
}

func newBreakerSet(cfg chaos.BreakerConfig, reg *metrics.Registry) *breakerSet {
	return &breakerSet{cfg: cfg, m: make(map[family]*chaos.Breaker), reg: reg}
}

// get returns (creating on first use) the family's breaker.
func (bs *breakerSet) get(f family) *chaos.Breaker {
	bs.mu.RLock()
	b, ok := bs.m[f]
	bs.mu.RUnlock()
	if ok {
		return b
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if b, ok = bs.m[f]; ok {
		return b
	}
	b = chaos.NewBreaker(bs.cfg)
	gauge := bs.reg.Gauge(fmt.Sprintf(
		"beaconserved_breaker_state{platform=%q,dataset=%q}", f.kind, f.dataset))
	gauge.Set(int64(chaos.Closed))
	b.OnStateChange(func(st chaos.BreakerState) { gauge.Set(int64(st)) })
	bs.m[f] = b
	return b
}

// runResilient executes the simulate job with the full resilience
// stack: per-attempt breaker accounting, bounded retries against
// transient faults under the retry budget, exponential backoff with
// deterministic per-key jitter, and hedged duplicates for stragglers.
// The memo-hit path never comes here — the caller dispatches hits
// straight to SimulateCtx so the hot path cost is unchanged.
func (s *Server) runResilient(ctx context.Context, bk *chaos.Breaker, job *simJob, inst *dataset.Instance, key exp.SimKey) (*platform.Result, error) {
	backoff := chaos.Backoff{
		Base: s.cfg.RetryBackoffBase.Nanoseconds(),
		Max:  s.cfg.RetryBackoffMax.Nanoseconds(),
	}
	for attempt := 0; ; attempt++ {
		res, err := s.simulateHedged(ctx, job, inst, attempt)
		if err == nil {
			bk.Record(time.Now().UnixNano(), true)
			return res, nil
		}
		if ctx.Err() != nil {
			// Our own cancellation (client gone, deadline, drain) says
			// nothing about downstream health: release the probe slot
			// and do not count a failure.
			bk.CancelProbe()
			return nil, err
		}
		bk.Record(time.Now().UnixNano(), false)
		if !exp.IsTransient(err) {
			return nil, err // deterministic simulation failure; retrying cannot help
		}
		if attempt+1 >= s.cfg.MaxAttempts || bk.State() == chaos.Open || !s.budget.Spend() {
			return nil, err
		}
		s.reg.Counter("beaconserved_retries_total").Inc()
		// Jitter is a pure function of (key digest, attempt): the retry
		// schedule for a request is reproducible, yet distinct keys
		// decorrelate.
		u := chaos.JitterU(key.Digest, uint64(attempt))
		select {
		case <-time.After(time.Duration(backoff.Delay(attempt, u))):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// simulateHedged runs one attempt, racing a hedged duplicate against
// the primary when the primary stalls past HedgeAfter. The duplicate
// bypasses the memo (SimulateFreshCtx) so it cannot dedupe into the
// very in-flight entry it is racing; the loser's context is cancelled
// and the abandonment is observed mid-kernel.
func (s *Server) simulateHedged(ctx context.Context, job *simJob, inst *dataset.Instance, attempt int) (*platform.Result, error) {
	if s.cfg.HedgeAfter <= 0 {
		return s.eng.SimulateCtx(ctx, job.kind, job.cfg, inst, job.batches, simTimelinePoints)
	}
	type outcome struct {
		res   *platform.Result
		err   error
		hedge bool
	}
	raceCtx, cancelRace := context.WithCancel(ctx)
	defer cancelRace()
	ch := make(chan outcome, 2)
	go func() {
		res, err := s.eng.SimulateCtx(raceCtx, job.kind, job.cfg, inst, job.batches, simTimelinePoints)
		ch <- outcome{res, err, false}
	}()
	timer := time.NewTimer(s.cfg.HedgeAfter)
	defer timer.Stop()
	launched := false
	pending := 1
	var firstErr error
	for {
		select {
		case <-timer.C:
			if !launched {
				launched = true
				pending++
				s.reg.Counter("beaconserved_hedges_total").Inc()
				go func() {
					res, err := s.eng.SimulateFreshCtx(raceCtx, job.kind, job.cfg, inst, job.batches, simTimelinePoints, attempt+1)
					ch <- outcome{res, err, true}
				}()
			}
		case out := <-ch:
			pending--
			if out.err == nil {
				if out.hedge {
					s.reg.Counter("beaconserved_hedge_wins_total").Inc()
				}
				cancelRace() // the loser abandons mid-kernel; its memo entry is released, not poisoned
				return out.res, nil
			}
			if firstErr == nil {
				firstErr = out.err
			}
			if pending == 0 {
				return nil, firstErr
			}
			// One racer failed; the other may still succeed. Stop the
			// hedge timer from launching a second duplicate of a run
			// that already demonstrated failure.
		case <-ctx.Done():
			// Drain both racers' sends (buffered channel) via cancel;
			// return promptly with the caller's error.
			cancelRace()
			return nil, ctx.Err()
		}
	}
}
