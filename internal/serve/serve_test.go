package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"beacongnn/internal/config"
	"beacongnn/internal/dataset"
	"beacongnn/internal/platform"
)

// testNodes keeps served simulations small enough for CI while still
// exercising the full platform stack.
const testNodes = 2000

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.MaxNodes == 0 {
		cfg.MaxNodes = 50_000
	}
	return New(cfg)
}

func post(t *testing.T, s http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, s http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func simBody(platformName string, extra string) string {
	b := fmt.Sprintf(`{"platform":%q,"dataset":"amazon","nodes":%d,"batches":2`, platformName, testNodes)
	if extra != "" {
		b += "," + extra
	}
	return b + "}"
}

func TestHandlerValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	tests := []struct {
		name     string
		path     string
		body     string
		wantCode int
		wantErr  string // substring of the error field
	}{
		{"bad JSON", "/v1/simulate", `{"platform":`, http.StatusBadRequest, "bad request body"},
		{"trailing garbage", "/v1/simulate", simBody("BG-2", "") + "x", http.StatusBadRequest, "trailing data"},
		{"unknown field", "/v1/simulate", `{"platform":"BG-2","dataset":"amazon","nodez":5}`, http.StatusBadRequest, "nodez"},
		{"missing platform", "/v1/simulate", `{"dataset":"amazon"}`, http.StatusBadRequest, `"platform"`},
		{"unknown platform", "/v1/simulate", `{"platform":"BG-99","dataset":"amazon"}`, http.StatusBadRequest, "BG-99"},
		{"unknown dataset", "/v1/simulate", `{"platform":"BG-2","dataset":"nope"}`, http.StatusBadRequest, "nope"},
		{"nodes over cap", "/v1/simulate", `{"platform":"BG-2","dataset":"amazon","nodes":999999999}`, http.StatusBadRequest, "nodes"},
		{"negative batches", "/v1/simulate", `{"platform":"BG-2","dataset":"amazon","batches":-1}`, http.StatusBadRequest, "batches"},
		{"negative timeout", "/v1/simulate", simBody("BG-2", `"timeout_ms":-5`), http.StatusBadRequest, "timeout_ms"},
		{"invalid fault config", "/v1/simulate", simBody("BG-2", `"fault":{"dead_dies":[4096]}`), http.StatusBadRequest, "dead die"},
		{"unknown experiment", "/v1/experiment", `{"id":"fig99"}`, http.StatusBadRequest, "fig99"},
		{"experiment bad JSON", "/v1/experiment", `nope`, http.StatusBadRequest, "bad request body"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			w := post(t, s, tt.path, tt.body)
			if w.Code != tt.wantCode {
				t.Fatalf("code = %d, want %d (body %s)", w.Code, tt.wantCode, w.Body)
			}
			var e errorResponse
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
				t.Fatalf("non-JSON error body: %s", w.Body)
			}
			if !strings.Contains(e.Error, tt.wantErr) {
				t.Fatalf("error %q does not mention %q", e.Error, tt.wantErr)
			}
		})
	}
	// Wrong method on a POST route.
	if w := get(t, s, "/v1/simulate"); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/simulate = %d, want 405", w.Code)
	}
}

func TestSimulateMatchesDirectRunAndCaches(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})

	w := post(t, s, "/v1/simulate", simBody("BG-2", ""))
	if w.Code != http.StatusOK {
		t.Fatalf("first request: code %d body %s", w.Code, w.Body)
	}
	if h := w.Header().Get("X-Cache"); h != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", h)
	}
	var resp struct {
		Cached bool            `json:"cached"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("first request reported cached=true")
	}

	// Byte-identical to the same simulation run directly (what the
	// beaconsim CLI executes for these arguments).
	d, err := dataset.ByName("amazon")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	inst, err := dataset.Materialize(d, testNodes, cfg.Flash.PageSize, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := platform.Simulate(platform.BG2, cfg, inst, 2, simTimelinePoints)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Result) != string(want) {
		t.Fatalf("served result differs from direct simulation:\nserved: %.200s\ndirect: %.200s", resp.Result, want)
	}

	// Second identical request: cache hit, no new simulation.
	runsBefore, _ := s.Engine().Stats()
	w2 := post(t, s, "/v1/simulate", simBody("BG-2", ""))
	if w2.Code != http.StatusOK {
		t.Fatalf("second request: code %d body %s", w2.Code, w2.Body)
	}
	if h := w2.Header().Get("X-Cache"); h != "hit" {
		t.Fatalf("second request X-Cache = %q, want hit", h)
	}
	var resp2 struct {
		Cached bool            `json:"cached"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(w2.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached {
		t.Fatal("second request reported cached=false")
	}
	if string(resp2.Result) != string(resp.Result) {
		t.Fatal("cache hit returned a different result")
	}
	runsAfter, _ := s.Engine().Stats()
	if runsAfter != runsBefore {
		t.Fatalf("cache hit re-simulated (runs %d -> %d)", runsBefore, runsAfter)
	}
}

func TestSimulateDeadlineExceeded(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	// 1 ms cannot materialize + simulate 2000 nodes; the deadline fires
	// inside the pipeline and must surface as 504, not 500 or a hang.
	w := post(t, s, "/v1/simulate", simBody("BG-2", `"timeout_ms":1`))
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("code = %d body %s, want 504", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "deadline") {
		t.Fatalf("body %s does not mention the deadline", w.Body)
	}
}

func TestExperimentEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	w := post(t, s, "/v1/experiment", `{"id":"table2","quick":true}`)
	if w.Code != http.StatusOK {
		t.Fatalf("code = %d body %s", w.Code, w.Body)
	}
	var resp ExpResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != "table2" || !strings.Contains(resp.Output, "SSD backend") {
		t.Fatalf("unexpected experiment response: id=%q output=%.120q", resp.ID, resp.Output)
	}

	lw := get(t, s, "/v1/experiments")
	if lw.Code != http.StatusOK || !strings.Contains(lw.Body.String(), "table2") {
		t.Fatalf("experiment list: code %d body %.200s", lw.Code, lw.Body)
	}
}

func TestSheddingReturns429WithRetryAfter(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	// Occupy the engine's only worker slot so the admitted request parks.
	block := make(chan struct{})
	holding := make(chan struct{})
	go s.Engine().Throttle(func() { close(holding); <-block })
	<-holding

	admitted := make(chan *httptest.ResponseRecorder, 1)
	go func() { admitted <- post(t, s, "/v1/simulate", simBody("BG-2", "")) }()
	// Wait until the request holds the single admission slot.
	for s.adm.inflight() != 1 {
		time.Sleep(time.Millisecond)
	}

	w := post(t, s, "/v1/simulate", simBody("BG-1", ""))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("code = %d body %s, want 429", w.Code, w.Body)
	}
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	} else if n, err := time.ParseDuration(ra + "s"); err != nil || n < time.Second {
		t.Fatalf("Retry-After %q is not a positive integer seconds value", ra)
	}
	if !strings.Contains(w.Body.String(), "queue full") {
		t.Fatalf("shed body %s", w.Body)
	}

	close(block)
	if w := <-admitted; w.Code != http.StatusOK {
		t.Fatalf("admitted request: code %d body %.200s", w.Code, w.Body)
	}
}

// TestRetryAfterIgnoresCacheHits pins the shed-estimate fix: near-instant
// cache hits must not drag the Retry-After median below the cost of the
// real simulations a shed client queues behind.
func TestRetryAfterIgnoresCacheHits(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	for i := 0; i < 50; i++ {
		s.reg.Summary(simulateHitSummary).Observe(2 * time.Millisecond)
	}
	s.reg.Summary(simulateMissSummary).Observe(4 * time.Second)
	if !s.adm.tryAcquire() {
		t.Fatal("could not acquire admission slot")
	}
	defer s.adm.release()
	if got := s.retryAfterSeconds(); got < 4 {
		t.Fatalf("retryAfterSeconds = %d, want >= 4 (miss median 4s, 1 worker, 1 inflight)", got)
	}

	// Hit-only history gives no signal about simulation cost: fall back
	// to the no-history default instead of the hits' microsecond median.
	s2 := newTestServer(t, Config{Workers: 1})
	for i := 0; i < 50; i++ {
		s2.reg.Summary(simulateHitSummary).Observe(2 * time.Millisecond)
	}
	if got := s2.retryAfterSeconds(); got != 1 {
		t.Fatalf("retryAfterSeconds with hit-only history = %d, want 1", got)
	}
}

func TestDrainRefusesNewWorkAndFlipsHealthz(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	if w := get(t, s, "/healthz"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"ok"`) {
		t.Fatalf("healthz before drain: %d %s", w.Code, w.Body)
	}
	s.BeginDrain()
	if w := get(t, s, "/healthz"); w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "draining") {
		t.Fatalf("healthz during drain: %d %s", w.Code, w.Body)
	}
	if w := post(t, s, "/v1/simulate", simBody("BG-2", "")); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("simulate during drain: %d, want 503", w.Code)
	}
	if w := post(t, s, "/v1/experiment", `{"id":"table2"}`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("experiment during drain: %d, want 503", w.Code)
	}
}

func TestMetricsExposition(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	if w := post(t, s, "/v1/simulate", simBody("BG-2", "")); w.Code != http.StatusOK {
		t.Fatalf("simulate: %d %s", w.Code, w.Body)
	}
	post(t, s, "/v1/simulate", simBody("BG-2", "")) // one hit
	w := get(t, s, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		"# TYPE beaconserved_requests_total counter",
		`beaconserved_responses_total{code="200"} 2`,
		"beaconserved_cache_hits_total 1",
		"beaconserved_cache_misses_total 1",
		"beaconserved_uptime_seconds",
		"# TYPE beaconserved_request_seconds summary",
		`beaconserved_request_seconds_count{endpoint="simulate",cache="miss"} 1`,
		`beaconserved_request_seconds_count{endpoint="simulate",cache="hit"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestConcurrentHammerRaceFree drives the full stack — admission,
// dedup, cache, pool — from many goroutines while a drain lands midway.
// Run under -race (tier-1 does) it proves shedding and shutdown are
// race-free; functionally it asserts every response is one of
// 200/429/503 and all 200s for one key carry identical results.
func TestConcurrentHammerRaceFree(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 3})
	body := simBody("BG-2", "")
	const clients = 24
	var ok200, shed429, drain503 atomic.Int64
	results := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := post(t, s, "/v1/simulate", body)
			switch w.Code {
			case http.StatusOK:
				ok200.Add(1)
				var resp struct {
					Result json.RawMessage `json:"result"`
				}
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err == nil {
					results[i] = string(resp.Result)
				}
			case http.StatusTooManyRequests:
				shed429.Add(1)
				if w.Header().Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
			case http.StatusServiceUnavailable:
				drain503.Add(1)
			default:
				t.Errorf("unexpected status %d: %.200s", w.Code, w.Body)
			}
		}(i)
	}
	// Land a drain while traffic is in flight.
	time.Sleep(10 * time.Millisecond)
	s.BeginDrain()
	wg.Wait()

	if ok200.Load() == 0 {
		t.Fatal("no request succeeded before the drain")
	}
	var first string
	for _, r := range results {
		if r == "" {
			continue
		}
		if first == "" {
			first = r
		} else if r != first {
			t.Fatal("two 200 responses for the same key differ")
		}
	}
	t.Logf("hammer: %d ok, %d shed, %d drained", ok200.Load(), shed429.Load(), drain503.Load())
}
