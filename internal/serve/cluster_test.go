package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testCluster(t *testing.T, n int, cfg Config) *Cluster {
	t.Helper()
	c := NewCluster(n, cfg)
	t.Cleanup(func() { c.CancelInflight() })
	return c
}

// routeBody returns a quick-failing /v1/simulate body (unknown dataset →
// 400 at the replica) whose routing key still varies with seed — routing
// happens before replica-side validation, so these exercise the ring
// without running simulations.
func routeBody(seed int) string {
	return fmt.Sprintf(`{"platform":"BG-2","dataset":"no-such-dataset","seed":%d}`, seed)
}

func postSim(c *Cluster, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, req)
	return rec
}

func TestClusterPlacementIsStableAndSpreads(t *testing.T) {
	c := testCluster(t, 3, Config{})
	// Same body always lands on the same replica (cache affinity).
	first := postSim(c, routeBody(42)).Header().Get("X-Replica")
	if first == "" {
		t.Fatal("no X-Replica header")
	}
	for i := 0; i < 5; i++ {
		if got := postSim(c, routeBody(42)).Header().Get("X-Replica"); got != first {
			t.Fatalf("same request moved replicas: %s then %s", first, got)
		}
	}
	// Distinct keys spread across more than one replica.
	seen := map[string]bool{}
	for seed := 0; seed < 32; seed++ {
		seen[postSim(c, routeBody(seed)).Header().Get("X-Replica")] = true
	}
	if len(seen) < 2 {
		t.Fatalf("32 distinct keys all routed to one replica: %v", seen)
	}
}

func TestClusterTimeoutDoesNotMovePlacement(t *testing.T) {
	c := testCluster(t, 3, Config{})
	a := postSim(c, `{"platform":"BG-2","dataset":"x","seed":9}`).Header().Get("X-Replica")
	b := postSim(c, `{"platform":"BG-2","dataset":"x","seed":9,"timeout_ms":5000}`).Header().Get("X-Replica")
	if a != b {
		t.Fatalf("timeout_ms moved placement: %s vs %s", a, b)
	}
}

func TestClusterKillFallsThroughAndRecovers(t *testing.T) {
	c := testCluster(t, 2, Config{BreakerThreshold: 1, BreakerCooldown: time.Hour})
	body := routeBody(7)
	primary := postSim(c, body).Header().Get("X-Replica")
	var pid int
	fmt.Sscanf(primary, "%d", &pid)

	c.Kill(pid)
	rec := postSim(c, body)
	got := rec.Header().Get("X-Replica")
	if got == primary {
		t.Fatalf("request still routed to killed replica %s", primary)
	}
	if rec.Header().Get("X-Replica-Fallback") != "1" {
		t.Fatal("fallback serve not marked")
	}

	c.Recover(pid)
	if got := postSim(c, body).Header().Get("X-Replica"); got != primary {
		t.Fatalf("recovered replica not restored as primary: %s vs %s", got, primary)
	}
}

// Regression: a dead replica on a 1-survivor cluster must not be
// re-probed more often than the breaker half-open interval. Before the
// breaker guarded routing, every request contacted the dead replica
// first — a probe storm that doubled tail latency for the survivor's
// whole key range.
func TestClusterDeadReplicaProbeClamped(t *testing.T) {
	c := testCluster(t, 2, Config{BreakerThreshold: 1, BreakerCooldown: time.Hour})
	body := routeBody(7)
	primary := postSim(c, body).Header().Get("X-Replica")
	var pid int
	fmt.Sscanf(primary, "%d", &pid)
	survivor := 1 - pid

	c.Kill(pid)
	const hammer = 50
	for i := 0; i < hammer; i++ {
		rec := postSim(c, body)
		if got := rec.Header().Get("X-Replica"); got != fmt.Sprint(survivor) {
			t.Fatalf("request %d not served by survivor: %q", i, got)
		}
	}
	// Threshold 1 → exactly one contact trips the breaker Open; with an
	// hour's cooldown the hammer must never touch the dead replica
	// again.
	if probes := c.DeadProbes(pid); probes > 1 {
		t.Fatalf("dead replica probed %d times during hammer; breaker should clamp to 1", probes)
	}
	if got := c.RoutedRequests(survivor); got < hammer {
		t.Fatalf("survivor served %d of %d hammer requests", got, hammer)
	}
}

func TestClusterHealthzStates(t *testing.T) {
	c := testCluster(t, 2, Config{})
	get := func() (int, map[string]any) {
		rec := httptest.NewRecorder()
		c.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		var m map[string]any
		json.Unmarshal(rec.Body.Bytes(), &m)
		return rec.Code, m
	}
	if code, m := get(); code != http.StatusOK || m["status"] != "ok" {
		t.Fatalf("healthy cluster: %d %v", code, m)
	}
	c.Kill(0)
	if code, m := get(); code != http.StatusOK || m["status"] != "degraded" {
		t.Fatalf("one-dead cluster: %d %v", code, m)
	}
	c.Kill(1)
	if code, _ := get(); code != http.StatusServiceUnavailable {
		t.Fatalf("all-dead cluster healthz %d, want 503", code)
	}
	c.Recover(0)
	c.Recover(1)
	c.BeginDrain()
	if code, m := get(); code != http.StatusServiceUnavailable || m["status"] != "draining" {
		t.Fatalf("draining cluster: %d %v", code, m)
	}
}

func TestClusterAllDeadSheds(t *testing.T) {
	c := testCluster(t, 2, Config{BreakerThreshold: 1, BreakerCooldown: time.Hour})
	c.Kill(0)
	c.Kill(1)
	rec := postSim(c, routeBody(3))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("all-dead cluster returned %d, want 503", rec.Code)
	}
}

func TestClusterAdminEndpoints(t *testing.T) {
	c := testCluster(t, 2, Config{})
	do := func(method, path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		c.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
		return rec
	}
	if rec := do(http.MethodPost, "/v1/replicas/1/kill"); rec.Code != http.StatusOK {
		t.Fatalf("kill: %d %s", rec.Code, rec.Body)
	}
	if rec := do(http.MethodGet, "/v1/replicas"); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), `"killed":true`) {
		t.Fatalf("replica list after kill: %d %s", rec.Code, rec.Body)
	}
	if rec := do(http.MethodPost, "/v1/replicas/1/recover"); rec.Code != http.StatusOK {
		t.Fatalf("recover: %d %s", rec.Code, rec.Body)
	}
	if rec := do(http.MethodPost, "/v1/replicas/9/kill"); rec.Code != http.StatusNotFound {
		t.Fatalf("bad replica id: %d", rec.Code)
	}
	if rec := do(http.MethodGet, "/v1/replicas/1/kill"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET kill: %d", rec.Code)
	}
}

func TestClusterForwardsExperimentList(t *testing.T) {
	c := testCluster(t, 2, Config{})
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/experiments", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "fig14") {
		t.Fatalf("experiment list: %d %s", rec.Code, rec.Body)
	}
}
