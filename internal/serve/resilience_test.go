package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"beacongnn/internal/chaos"
)

// chaosConfig arms deterministic engine faults: every run past the
// grace period fails transiently.
func chaosConfig(failRate float64, failAfter uint64) chaos.Config {
	return chaos.Config{
		Enabled:         true,
		Seed:            7,
		EngineFailRate:  failRate,
		EngineFailAfter: failAfter,
	}
}

// TestDegradedModeEndToEnd walks the full resilience arc: prime a
// last-known-good result, break the engine, watch the breaker trip and
// the server degrade to stale 200s instead of 500s, then heal the
// engine and watch a half-open probe close the circuit.
func TestDegradedModeEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:          2,
		MaxAttempts:      1, // no retries: the first transient failure surfaces
		BreakerThreshold: 1,
		BreakerCooldown:  30 * time.Millisecond,
		Chaos:            chaosConfig(1, 1), // run 1 immune, everything after fails
	})

	// Prime: the grace period lets the first simulation through, which
	// both fills the memo and seeds the stale cache for the family.
	w := post(t, s, "/v1/simulate", simBody("BG-2", ""))
	if w.Code != http.StatusOK || w.Header().Get("X-Degraded") != "" {
		t.Fatalf("prime: code %d degraded %q", w.Code, w.Header().Get("X-Degraded"))
	}

	// A different key in the same family now hits the armed injector:
	// transient failure, breaker (threshold 1) trips, and the response
	// is the stale prime — 200 + X-Degraded, not a 5xx.
	w = post(t, s, "/v1/simulate", simBody("BG-2", `"seed":2`))
	if w.Code != http.StatusOK {
		t.Fatalf("during outage: code %d body %.300s, want degraded 200", w.Code, w.Body)
	}
	if w.Header().Get("X-Degraded") != "true" || w.Header().Get("X-Cache") != "stale" {
		t.Fatalf("degraded headers missing: X-Degraded=%q X-Cache=%q",
			w.Header().Get("X-Degraded"), w.Header().Get("X-Cache"))
	}
	if warn := w.Header().Get("Warning"); !strings.Contains(warn, "110") || !strings.Contains(warn, "stale") {
		t.Fatalf("Warning header %q, want 110 stale marking", warn)
	}
	var resp SimResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || !resp.Cached || resp.Result == nil {
		t.Fatalf("degraded body: degraded=%v cached=%v result=%v", resp.Degraded, resp.Cached, resp.Result != nil)
	}

	// While open, requests are refused at the door and served stale
	// without touching the engine.
	runsBefore, _ := s.Engine().Stats()
	w = post(t, s, "/v1/simulate", simBody("BG-2", `"seed":3`))
	if w.Code != http.StatusOK || w.Header().Get("X-Degraded") != "true" {
		t.Fatalf("open-circuit request: code %d degraded %q", w.Code, w.Header().Get("X-Degraded"))
	}
	if runsAfter, _ := s.Engine().Stats(); runsAfter != runsBefore {
		t.Fatal("open breaker still dispatched a simulation")
	}

	// Heal: disarm the injector, wait out the cooldown, and the next
	// request is the half-open probe — it succeeds fresh and closes the
	// circuit for everyone after it.
	s.Injector().Disarm()
	time.Sleep(40 * time.Millisecond)
	w = post(t, s, "/v1/simulate", simBody("BG-2", `"seed":2`))
	if w.Code != http.StatusOK || w.Header().Get("X-Degraded") != "" {
		t.Fatalf("probe after heal: code %d degraded %q body %.200s", w.Code, w.Header().Get("X-Degraded"), w.Body)
	}
	w = post(t, s, "/v1/simulate", simBody("BG-2", `"seed":4`))
	if w.Code != http.StatusOK || w.Header().Get("X-Degraded") != "" {
		t.Fatalf("post-recovery request: code %d degraded %q", w.Code, w.Header().Get("X-Degraded"))
	}

	// The metrics surface recorded the arc.
	m := get(t, s, "/metrics").Body.String()
	for _, want := range []string{
		"beaconserved_degraded_total",
		`beaconserved_breaker_state{platform="BG-2",dataset="amazon"} 0`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestDegradedWithoutStaleIs503: an open circuit with nothing to serve
// sheds with 503 + Retry-After instead of inventing a result.
func TestDegradedWithoutStaleIs503(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:          2,
		MaxAttempts:      1,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute,
		Chaos:            chaosConfig(1, 0), // no grace: every run fails
	})
	w := post(t, s, "/v1/simulate", simBody("BG-2", ""))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("code %d body %.300s, want 503", w.Code, w.Body)
	}
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Fatal("degraded 503 without Retry-After")
	}
	if !strings.Contains(w.Body.String(), "no stale result") {
		t.Fatalf("body %.300s does not explain the missing stale result", w.Body)
	}
}

// TestRetriesRecoverTransientFaults: with the budget and attempts to
// spare, a transiently failing run is retried to success inside one
// request — the client never sees the fault.
func TestRetriesRecoverTransientFaults(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:          2,
		MaxAttempts:      3,
		RetryBackoffBase: time.Millisecond,
		RetryBackoffMax:  4 * time.Millisecond,
		BreakerThreshold: 10, // stay closed through the retries
		Chaos: chaos.Config{
			Enabled:         true,
			Seed:            7,
			EngineFailRate:  0.5,
			EngineFailAfter: 0,
		},
	})
	// Drive distinct keys; each request retries internally as its draws
	// dictate. With rate 0.5 and 3 attempts, P(all fail) per key is
	// 12.5% — some may still fail, but most must succeed, and every
	// failure must be a 5xx-free degraded/503, never a raw 500 with the
	// breaker open.
	ok := 0
	for i := 0; i < 6; i++ {
		w := post(t, s, "/v1/simulate", simBody("BG-2", `"seed":`+strconv.Itoa(i+1)))
		if w.Code == http.StatusOK && w.Header().Get("X-Degraded") == "" {
			ok++
		}
	}
	if ok == 0 {
		t.Fatal("no request survived a 50% transient fault rate with 3 attempts")
	}
	m := get(t, s, "/metrics").Body.String()
	if !strings.Contains(m, "beaconserved_retries_total") {
		t.Error("retries left no metric trace")
	}
}

// TestChaosHammerNoPoisonNo500 is the -race drill: concurrent clients
// against an armed injector with a flapping breaker. Laws: no request
// ever sees a raw 500 (degraded mode absorbs transient exhaustion),
// and after disarming, every key simulates cleanly — transient
// failures never poisoned the memo.
func TestChaosHammerNoPoisonNo500(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:          4,
		MaxAttempts:      2,
		RetryBackoffBase: time.Millisecond,
		RetryBackoffMax:  2 * time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  5 * time.Millisecond,
		HedgeAfter:       20 * time.Millisecond,
		Chaos:            chaosConfig(0.5, 1),
	})
	// Prime the stale cache so degraded mode always has an answer.
	if w := post(t, s, "/v1/simulate", simBody("BG-2", "")); w.Code != http.StatusOK {
		t.Fatalf("prime failed: %d %.200s", w.Code, w.Body)
	}

	const clients = 16
	var codes [clients]int
	var wg sync.WaitGroup
	var raw500 atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := post(t, s, "/v1/simulate", simBody("BG-2", `"seed":`+strconv.Itoa(i%4+1)))
			codes[i] = w.Code
			switch w.Code {
			case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
			case http.StatusInternalServerError:
				raw500.Add(1)
				t.Errorf("client %d got a raw 500: %.200s", i, w.Body)
			default:
				t.Errorf("client %d got unexpected code %d: %.200s", i, w.Code, w.Body)
			}
		}(i)
	}
	wg.Wait()
	if raw500.Load() > 0 {
		t.Fatalf("%d raw 500s leaked through degraded mode", raw500.Load())
	}

	// Heal and verify no key was poisoned: every seed now serves fresh.
	s.Injector().Disarm()
	time.Sleep(10 * time.Millisecond) // let the cooldown lapse for a probe
	for seed := 1; seed <= 4; seed++ {
		var w = post(t, s, "/v1/simulate", simBody("BG-2", `"seed":`+strconv.Itoa(seed)))
		if w.Code != http.StatusOK || w.Header().Get("X-Degraded") != "" {
			t.Fatalf("seed %d after heal: code %d degraded %q body %.200s (memo poisoned?)",
				seed, w.Code, w.Header().Get("X-Degraded"), w.Body)
		}
	}
}

// TestRetryAfterCeilingClamps pins satellite 2: a pathological miss
// median must not tell clients to come back in ten minutes.
func TestRetryAfterCeilingClamps(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, RetryAfterCeiling: 5 * time.Second})
	s.reg.Summary(simulateMissSummary).Observe(10 * time.Minute)
	if !s.adm.tryAcquire() {
		t.Fatal("could not acquire admission slot")
	}
	defer s.adm.release()
	if got := s.retryAfterSeconds(); got != 5 {
		t.Fatalf("retryAfterSeconds = %d, want ceiling 5", got)
	}
	// Floor stays 1s with no history.
	s2 := newTestServer(t, Config{Workers: 1, RetryAfterCeiling: 5 * time.Second})
	if got := s2.retryAfterSeconds(); got < 1 {
		t.Fatalf("retryAfterSeconds = %d, want >= 1", got)
	}
}

// TestCancelInflightAbortsStragglers pins satellite 3: the drain hard
// deadline cancels in-flight requests through their per-request
// contexts, and the straggler's response is a drain 503, not a 500.
func TestCancelInflightAbortsStragglers(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	done := make(chan int, 1)
	go func() {
		// Big enough to be comfortably in flight when the cancel lands.
		w := post(t, s, "/v1/simulate", `{"platform":"BG-2","dataset":"amazon","nodes":20000,"batches":24}`)
		done <- w.Code
	}()
	// Wait until the request is tracked (it registers before simulating).
	deadline := time.After(10 * time.Second)
	for s.inflight.len() == 0 {
		select {
		case <-deadline:
			t.Fatal("request never registered as in-flight")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	s.BeginDrain()
	if n := s.CancelInflight(); n != 1 {
		t.Fatalf("CancelInflight = %d, want 1", n)
	}
	select {
	case code := <-done:
		if code != http.StatusServiceUnavailable {
			t.Fatalf("cancelled straggler got %d, want 503", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled request did not return promptly")
	}
	if s.inflight.len() != 0 {
		t.Fatalf("inflight set not empty after drain: %d", s.inflight.len())
	}
}

// TestChaosHTTPBoundary exercises the middleware injections end to
// end: drops return marked 503s, and truncation cuts the body.
func TestChaosHTTPBoundary(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 2,
		Chaos: chaos.Config{
			Enabled:      true,
			Seed:         3,
			HTTPDropRate: 1,
		},
	})
	w := get(t, s, "/healthz")
	if w.Code != http.StatusServiceUnavailable || w.Header().Get("X-Chaos-Injected") != "drop" {
		t.Fatalf("drop injection: code %d header %q", w.Code, w.Header().Get("X-Chaos-Injected"))
	}
	s.Injector().Disarm()
	if w := get(t, s, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("disarmed injector still dropping: %d", w.Code)
	}

	st := newTestServer(t, Config{
		Workers: 2,
		Chaos: chaos.Config{
			Enabled:       true,
			Seed:          3,
			HTTPTruncRate: 1,
		},
	})
	w = get(t, st, "/v1/experiments")
	if w.Header().Get("X-Chaos-Injected") != "truncate" {
		t.Fatalf("truncation not marked: %q", w.Header().Get("X-Chaos-Injected"))
	}
	if w.Body.Len() > 64 {
		t.Fatalf("truncated body still %d bytes", w.Body.Len())
	}
	var v any
	if err := json.Unmarshal(w.Body.Bytes(), &v); err == nil {
		t.Fatal("truncated body still parsed as JSON; truncation is not observable")
	}
}

// TestChaosDisabledIsFreeAndIdentical: with the zero chaos config the
// server has no injector, no middleware wrapper, and responses carry
// none of the resilience surface (no Degraded field bytes).
func TestChaosDisabledIsFreeAndIdentical(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	if s.Injector() != nil {
		t.Fatal("disabled chaos still built an injector")
	}
	if s.handler != s.mux {
		t.Fatal("disabled chaos still wrapped the mux")
	}
	w := post(t, s, "/v1/simulate", simBody("BG-2", ""))
	if w.Code != http.StatusOK {
		t.Fatalf("simulate: %d", w.Code)
	}
	if strings.Contains(w.Body.String(), "degraded") {
		t.Fatal("healthy response leaked the degraded field (omitempty broken)")
	}
	for _, h := range []string{"X-Degraded", "X-Chaos-Injected", "Warning"} {
		if w.Header().Get(h) != "" {
			t.Fatalf("healthy response carries %s", h)
		}
	}
}
