package platform

import (
	"context"

	"beacongnn/internal/config"
	"beacongnn/internal/dataset"
	"beacongnn/internal/invariant"
)

// Invariant-checker integration. EnableChecks attaches a checker to the
// same zero-overhead hooks the tracer and energy meter use; with no
// checker attached every hook is a nil pointer check and the event
// sequence is bit-for-bit identical to an unchecked run. Checks cover
// Run (the GNN workload); the side microbenchmarks (Fig. 7, regular-IO
// mode) have their own kernels and are not checked.

// EnableChecks attaches an invariant checker to every observable seam
// of the system: the kernel clock probe, all contended resources (as a
// tracer), the energy meter's deposit stream, the flash sense ledger,
// and completion-time drain probes. Must be called before Run; any
// tracer set via SetTracer afterwards is teed with the checker.
func (s *System) EnableChecks(c *invariant.Checker) {
	s.chk = c
	s.k.SetProbe(c.KernelStep)
	s.meter.OnAdd = c.EnergyEvent

	// Service widths, for the span-nesting and busy ≤ wall × width
	// checks. These mirror the server constructions in NewSystem and
	// flash.New; a width mismatch here would surface as a span.nested
	// violation on a healthy run.
	planes := s.cfg.Flash.PlanesPerDie
	if planes < 1 {
		planes = 1
	}
	for i := 0; i < s.cfg.Flash.TotalDies(); i++ {
		c.RegisterResource("flash.die", i, planes)
		c.RegisterResource("flash.sampler", i, 1)
	}
	for i := 0; i < s.cfg.Flash.Channels; i++ {
		c.RegisterResource("flash.channel", i, 1)
	}
	c.RegisterResource("firmware.cores", 0, s.cfg.Firmware.Cores)
	c.RegisterResource("dram.port", 0, 1)
	c.RegisterResource("nvme.pcie", 0, 1)
	c.RegisterResource("host.cpu", 0, s.host.Width())
	c.RegisterResource("accel.queue", 0, s.accelQ.Width())

	// Queues that must be empty once the run completes.
	c.RegisterDrain("flash", s.backend.Occupancy)
	c.RegisterDrain("firmware.cores", s.fw.Occupancy)
	c.RegisterDrain("dram.port", s.mem.Occupancy)
	c.RegisterDrain("nvme", s.qp.Occupancy)
	c.RegisterDrain("host.cpu", func() (int, int) { return s.host.Busy(), s.host.QueueLen() })
	c.RegisterDrain("accel.queue", func() (int, int) { return s.accelQ.Busy(), s.accelQ.QueueLen() })

	// Observe every resource's service spans (tees with later tracers).
	s.SetTracer(nil)
}

// runChecks runs the completion-time invariants against a finished
// run's result and returns an error naming each violated invariant.
func (s *System) runChecks(res *Result) error {
	c := s.chk
	c.Assert("queues.drained", s.k.Pending() == 0,
		"kernel has %d events pending after Run", s.k.Pending())
	c.CheckFlashConservation(s.backend.Reads())
	req, _ := c.SenseLedger()
	c.Assert("result.commands", res.Commands == req,
		"%d command lifetimes recorded vs %d sense requests", res.Commands, req)

	c.Finish(res.Elapsed)

	// Result-level sanity: the derived aggregates must agree with the
	// raw counters they were computed from.
	c.Assert("result.batches", res.Targets == res.Batches*s.cfg.GNN.BatchSize,
		"%d targets completed over %d batches × %d", res.Targets, res.Batches, s.cfg.GNN.BatchSize)
	if res.Elapsed > 0 {
		c.AssertNear("result.throughput", res.Throughput,
			float64(res.Targets)/res.Elapsed.Seconds(), 1e-9, "throughput vs targets/elapsed")
	}
	// DieUtil counts busy plane sense units (a two-plane die senses both
	// planes concurrently), so the capacity bound is dies × planes.
	planes := s.cfg.Flash.PlanesPerDie
	if planes < 1 {
		planes = 1
	}
	dieSlots := s.cfg.Flash.TotalDies() * planes
	c.Assert("result.utilization",
		res.MeanDies >= 0 && res.MeanDies <= float64(dieSlots)*(1+1e-9),
		"mean active die planes %.3f outside [0, %d]", res.MeanDies, dieSlots)
	c.Assert("result.utilization",
		res.MeanChannels >= 0 && res.MeanChannels <= float64(s.cfg.Flash.Channels)*(1+1e-9),
		"mean active channels %.3f outside [0, %d]", res.MeanChannels, s.cfg.Flash.Channels)

	// Energy: reported total == shadow ledger of per-event charges,
	// every bucket non-negative, shares and groups sum to one, every
	// component maps to a named Fig. 19 group.
	c.AssertNear("energy.ledger", res.EnergyJ, c.EnergyTotal(), 1e-9,
		"reported energy vs sum of per-event charges")
	var shareSum float64
	for _, sh := range res.EnergyByCmp {
		shareSum += sh.Fraction
		c.Assert("energy.nonnegative", sh.Joules >= 0,
			"component %s has %g J", sh.Component, sh.Joules)
	}
	if res.EnergyJ > 0 {
		c.AssertNear("energy.breakdown", shareSum, 1, 1e-9, "energy share sum")
		var groupSum float64
		for g, f := range res.EnergyGroup {
			groupSum += f
			c.Assert("energy.groups", g != "",
				"a component is missing from the Fig. 19 group map (%.3f of total)", f)
		}
		c.AssertNear("energy.breakdown", groupSum, 1, 1e-9, "energy group sum")
	}

	// Latency distributions must be ordered, and every phase share
	// non-negative.
	for _, q := range res.PhaseLatency {
		c.Assert("result.quantiles", q.P50 <= q.P95 && q.P95 <= q.P99,
			"phase %s: p50 %v, p95 %v, p99 %v out of order", q.Phase, q.P50, q.P95, q.P99)
	}
	for _, ph := range res.Phases {
		c.Assert("result.phases", ph.Time >= 0, "phase %s accumulated %v", ph.Phase, ph.Time)
	}
	for p, t := range res.CmdBreakdown {
		c.Assert("result.phases", t >= 0, "command phase %s mean %v", p, t)
	}
	var sum int64
	for _, t := range res.CmdBreakdown {
		sum += int64(t)
	}
	// Each phase mean truncates independently, so the sum may undershoot
	// the lifetime mean by up to one unit per phase.
	c.Assert("result.lifetime", int64(res.CmdLifetime)-sum >= 0 && int64(res.CmdLifetime)-sum <= int64(len(res.CmdBreakdown)),
		"command lifetime %v vs phase-mean sum %d", res.CmdLifetime, sum)

	// Hop spans: ordered windows within the run.
	for i, h := range res.HopSpans {
		c.Assert("result.hops", h.First >= 0 && h.First <= h.Last && h.Last <= res.Elapsed,
			"hop %d window [%v, %v] outside run [0, %v]", h.Hop, h.First, h.Last, res.Elapsed)
		if i > 0 {
			c.Assert("result.hops", h.First >= res.HopSpans[i-1].First,
				"hop %d started at %v before hop %d at %v", h.Hop, h.First, res.HopSpans[i-1].Hop, res.HopSpans[i-1].First)
		}
	}
	return c.Err()
}

// SimulateChecked is Simulate with a fresh invariant checker attached:
// the run fails with a named-invariant diagnostic if any conservation
// or sanity law breaks. Results are identical to Simulate — checking
// only observes.
func SimulateChecked(kind Kind, cfg config.Config, inst *dataset.Instance, numBatches, timelinePoints int) (*Result, error) {
	return SimulateCheckedCtx(context.Background(), kind, cfg, inst, numBatches, timelinePoints)
}

// SimulateCheckedCtx is SimulateChecked bound to ctx; see SimulateCtx.
func SimulateCheckedCtx(ctx context.Context, kind Kind, cfg config.Config, inst *dataset.Instance, numBatches, timelinePoints int) (*Result, error) {
	s, err := NewSystem(kind, cfg, inst, timelinePoints)
	if err != nil {
		return nil, err
	}
	s.EnableChecks(invariant.New())
	s.BindContext(ctx)
	return s.Run(numBatches)
}
