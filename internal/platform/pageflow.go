package platform

import (
	"beacongnn/internal/graph"
	"beacongnn/internal/metrics"
	"beacongnn/internal/sim"
)

// nodeRead is one unit of page-granular data preparation on the
// platforms without die-level samplers (CC, SmartSage, GList, BG-1,
// BG-DG): read a node's neighbor-list and/or feature pages and, for
// sampling reads, run the sampler in firmware or on the host.
type nodeRead struct {
	node    graph.NodeID
	hop     int  // depth of the node
	sample  bool // read neighbor list and sample children
	feature bool // read the feature vector
	created sim.Time

	// secondary marks a BG-DG DirectGraph secondary-section read whose
	// sampled children were already drawn; they release on completion.
	secondary   bool
	secPage     uint32
	secChildren []graph.NodeID
}

func (r nodeRead) step() int { return r.hop }

// recordBytes returns the raw-format footprint a read must fetch: the
// node record (neighbor list + feature vector, co-located as GList-style
// layouts do) for sampling reads, or just the feature vector.
func (s *System) recordBytes(v graph.NodeID, sample bool) int {
	feat := s.inst.Desc.FeatureDim * 2
	if !sample {
		return feat
	}
	return 4*s.inst.Graph.Degree(v) + feat
}

// pagesFor returns how many physical pages a read touches, and the page
// numbers. Raw-format data is addressed at the node's DirectGraph
// primary page (the striping is equivalent); multi-page reads use
// consecutive page numbers, which stripe across channels.
func (s *System) pagesFor(v graph.NodeID, bytes int) []uint32 {
	ps := s.cfg.Flash.PageSize
	n := (bytes + ps - 1) / ps
	if n < 1 {
		n = 1
	}
	base := s.layout.Page(s.build.NodeAddr(v))
	pages := make([]uint32, n)
	for i := range pages {
		pages[i] = base + uint32(i)
	}
	return pages
}

// registerChildPage mirrors registerChildDie for page-flow children.
func (b *batchState) registerChildPage(r nodeRead) (dispatchNow bool) {
	b.addWork(r.step())
	if r.secondary || b.sys.caps.OutOfOrder {
		return true
	}
	b.pendPage[r.step()] = append(b.pendPage[r.step()], r)
	return false
}

// dispatchPage routes one node read down the platform's page path.
func (b *batchState) dispatchPage(r nodeRead) {
	s := b.sys
	if r.created == 0 {
		r.created = s.k.Now()
	}
	switch {
	case r.secondary:
		b.fwSecondaryRead(r)
	case s.caps.Sampler == SampleInFirmware:
		b.fwRead(r)
	case r.feature && !r.sample && s.caps.InternalFT:
		// GList: feature lookups are offloaded even though sampling is
		// host-driven.
		b.fwRead(r)
	default:
		b.hostRead(r)
	}
}

// flashPageRead performs one full-page read with lifetime accounting:
// sense, full-page channel transfer, DRAM landing.
func (s *System) flashPageRead(page uint32, created sim.Time, step int, record bool, done func()) {
	var senseStart, senseEnd sim.Time
	s.senseManaged(page, 0, func(at sim.Time) {
		senseStart = at
		if record {
			// Hop timelines (Fig. 16) track batch 0 only.
			s.coll.HopStart(step, at)
		}
	}, func(final uint32) {
		senseEnd = s.k.Now()
		ps := s.cfg.Flash.PageSize
		s.backend.Transfer(final, ps, func() {
			xfer := s.cfg.Flash.TransferTime(ps)
			waitAfter := s.k.Now() - senseEnd - xfer
			if waitAfter < 0 {
				waitAfter = 0
			}
			wb := senseStart - created
			fl := senseEnd - senseStart
			s.coll.CommandLifetime(wb, fl, waitAfter, xfer)
			s.coll.AddPhase(metrics.PhaseFlash, fl)
			s.coll.AddPhase(metrics.PhaseChannel, xfer)
			s.dramWrite(ps, done)
		})
	})
}

// readAllPages reads every page of the list through the firmware path
// (translate without DirectGraph + flash scheduling per page). When
// hostBytes > 0, that many sector-rounded bytes per page continue on to
// host memory over PCIe.
func (b *batchState) readAllPages(pages []uint32, created sim.Time, step int, hostBytes int, done func()) {
	s := b.sys
	remaining := len(pages)
	for _, p := range pages {
		p := p
		start := func() {
			s.backend.IssueCommand(p, func() {
				s.flashPageRead(p, created, step, b.id == 0, func() {
					if hostBytes > 0 {
						s.dramRead(hostBytes, func() {
							s.pcieData(hostBytes, func() {
								remaining--
								if remaining == 0 {
									done()
								}
							})
						})
						return
					}
					remaining--
					if remaining == 0 {
						done()
					}
				})
			})
		}
		cost := s.cfg.Firmware.FlashCmdCost
		if !s.caps.DirectGraph {
			cost += s.cfg.Firmware.TranslateCost
		}
		s.fwPhase(cost)
		s.fw.Do(cost, start)
	}
}

// fwRead executes a node read with firmware-driven control (SmartSage,
// BG-1, BG-DG, and GList's feature path).
func (b *batchState) fwRead(r nodeRead) {
	s := b.sys
	var pages []uint32
	if s.caps.DirectGraph {
		// One primary page holds feature + inline neighbors.
		pages = []uint32{s.layout.Page(s.build.NodeAddr(r.node))}
	} else {
		pages = s.pagesFor(r.node, s.recordBytes(r.node, r.sample))
	}
	// SmartSage ships feature pages onward to the host via the block
	// interface; sampling data stays inside. (InternalFT platforms keep
	// everything in DRAM.)
	hostBytes := 0
	if !s.caps.InternalFT && !r.sample {
		hostBytes = s.cfg.Flash.PageSize
	}
	b.readAllPages(pages, r.created, r.step(), hostBytes, func() {
		if r.feature {
			b.featBytes += int64(s.inst.Desc.FeatureDim * 2)
		}
		if !r.sample {
			if b.id == 0 {
				s.coll.HopEnd(r.step(), s.k.Now())
			}
			b.stepDone(r.step())
			return
		}
		// Firmware neighbor sampling.
		s.fwPhase(s.cfg.Firmware.SampleCostFixed + sim.Time(s.cfg.GNN.Fanout)*s.cfg.Firmware.SampleCostPerNode)
		s.fw.SampleNodes(s.cfg.GNN.Fanout, func() {
			children := b.drawChildren(r)
			if b.id == 0 {
				s.coll.HopEnd(r.step(), s.k.Now())
			}
			for _, c := range children {
				if b.registerChildPage(c) {
					b.dispatchPage(c)
				}
			}
			b.stepDone(r.step())
		})
	})
}

// fwSecondaryRead reads one BG-DG secondary page whose children were
// drawn during the parent's sampling; they release when it lands.
func (b *batchState) fwSecondaryRead(r nodeRead) {
	s := b.sys
	b.readAllPages([]uint32{r.secPage}, r.created, r.step(), 0, func() {
		s.fwPhase(s.cfg.Firmware.ResultParseCost)
		s.fw.ParseResult(func() {
			if b.id == 0 {
				s.coll.HopEnd(r.step(), s.k.Now())
			}
			for _, child := range r.secChildren {
				for _, c := range b.childReads(child, r.hop+1) {
					if b.registerChildPage(c) {
						b.dispatchPage(c)
					}
				}
			}
			b.stepDone(r.step())
		})
	})
}

// hostRead executes a node read under host control (CC always; GList's
// sampling reads): every page is a full NVMe I/O crossing PCIe, and
// sampling runs on the host CPU.
func (b *batchState) hostRead(r nodeRead) {
	s := b.sys
	bytes := s.recordBytes(r.node, r.sample)
	pages := s.pagesFor(r.node, bytes)
	// Block-interface reads are page-granular end to end: the whole
	// page crosses DRAM and PCIe (Challenge 2's read amplification).
	perPage := s.cfg.Flash.PageSize
	// Dependent (sampling) reads pay the full software stack; bulk
	// feature fetches batch through io_uring-style submission.
	stack := s.cfg.Host.IOStackCost
	if r.feature && !r.sample {
		stack = s.cfg.Host.BatchedIOCost
	}
	remaining := len(pages)
	for _, p := range pages {
		p := p
		s.hostDo(stack, func() {
			s.pcieData(64, func() {
				cost := s.cfg.Firmware.PollCost + s.cfg.Firmware.TranslateCost + s.cfg.Firmware.FlashCmdCost
				s.fwPhase(cost)
				s.fw.Do(cost, func() {
					s.backend.IssueCommand(p, func() {
						s.flashPageRead(p, r.created, r.step(), b.id == 0, func() {
							s.dramRead(perPage, func() {
								s.pcieData(perPage, func() {
									remaining--
									if remaining == 0 {
										b.hostPagesArrived(r)
									}
								})
							})
						})
					})
				})
			})
		})
	}
}

// hostPagesArrived finishes a host-controlled read: feature reads are
// done; sampling reads run the host sampler and spawn children.
func (b *batchState) hostPagesArrived(r nodeRead) {
	s := b.sys
	if r.feature && !r.sample {
		b.featBytes += int64(s.inst.Desc.FeatureDim * 2)
		if b.id == 0 {
			s.coll.HopEnd(r.step(), s.k.Now())
		}
		b.stepDone(r.step())
		return
	}
	cost := sim.Time(s.cfg.GNN.Fanout) * s.cfg.Host.SampleCostNode
	s.hostDo(cost, func() {
		children := b.drawChildren(r)
		if b.id == 0 {
			s.coll.HopEnd(r.step(), s.k.Now())
		}
		for _, c := range children {
			if b.registerChildPage(c) {
				b.dispatchPage(c)
			}
		}
		b.stepDone(r.step())
	})
}

// drawChildren samples the node's children and expands them into the
// next hop's reads. Raw-format platforms have the full neighbor list in
// hand; BG-DG draws global indices over the DirectGraph plan, turning
// out-of-page draws into coalesced secondary reads.
func (b *batchState) drawChildren(r nodeRead) []nodeRead {
	s := b.sys
	g := s.inst.Graph
	deg := g.Degree(r.node)
	if deg == 0 || r.hop >= s.cfg.GNN.Hops {
		return nil
	}
	now := s.k.Now()
	var out []nodeRead
	if !s.caps.DirectGraph {
		for i := 0; i < s.cfg.GNN.Fanout; i++ {
			child := g.Neighbor(r.node, s.rng.Intn(deg))
			out = append(out, b.childReads(child, r.hop+1)...)
		}
		return out
	}
	// BG-DG: DirectGraph-aware drawing with secondary coalescing.
	plan := &s.build.Plans[r.node]
	coalesce := map[int][]graph.NodeID{}
	for i := 0; i < s.cfg.GNN.Fanout; i++ {
		idx := s.rng.Intn(deg)
		child := g.Neighbor(r.node, idx)
		if idx < plan.InlineCount {
			out = append(out, b.childReads(child, r.hop+1)...)
			continue
		}
		si := plan.SecondaryIndexFor(idx)
		coalesce[si] = append(coalesce[si], child)
	}
	for si := 0; si < plan.SecCount; si++ {
		kids := coalesce[si]
		if len(kids) == 0 {
			continue
		}
		out = append(out, nodeRead{
			node: r.node, hop: r.hop, secondary: true,
			secPage:     s.layout.Page(plan.Secondaries[si]),
			secChildren: kids,
			created:     now,
		})
	}
	return out
}

// childReads expands one sampled child node into its reads at the given
// depth: a sampling read (plus a raw-format feature read) below the
// final hop, or a feature-only read at the final hop.
func (b *batchState) childReads(child graph.NodeID, hop int) []nodeRead {
	s := b.sys
	now := s.k.Now()
	if hop >= s.cfg.GNN.Hops {
		return []nodeRead{{node: child, hop: hop, feature: true, created: now}}
	}
	// One read covers sampling and feature: DirectGraph primaries hold
	// both by construction, and raw layouts co-locate the node record.
	return []nodeRead{{node: child, hop: hop, sample: true, feature: true, created: now}}
}
