package platform

import (
	"beacongnn/internal/graph"
	"beacongnn/internal/metrics"
	"beacongnn/internal/sim"
)

// nodeRead is one unit of page-granular data preparation on the
// platforms without die-level samplers (CC, SmartSage, GList, BG-1,
// BG-DG): read a node's neighbor-list and/or feature pages and, for
// sampling reads, run the sampler in firmware or on the host.
type nodeRead struct {
	node    graph.NodeID
	hop     int  // depth of the node
	sample  bool // read neighbor list and sample children
	feature bool // read the feature vector
	created sim.Time

	// secondary marks a BG-DG DirectGraph secondary-section read whose
	// sampled children were already drawn; they release on completion.
	secondary   bool
	secPage     uint32
	secChildren []graph.NodeID
}

func (r nodeRead) step() int { return r.hop }

// recordBytes returns the raw-format footprint a read must fetch: the
// node record (neighbor list + feature vector, co-located as GList-style
// layouts do) for sampling reads, or just the feature vector.
func (s *System) recordBytes(v graph.NodeID, sample bool) int {
	feat := s.inst.Desc.FeatureDim * 2
	if !sample {
		return feat
	}
	return 4*s.inst.Graph.Degree(v) + feat
}

// appendPages appends the physical pages a read touches to dst and
// returns it. Raw-format data is addressed at the node's DirectGraph
// primary page (the striping is equivalent); multi-page reads use
// consecutive page numbers, which stripe across channels. Callers pass
// the batch's pageScratch: readAllPages/hostRead consume the list
// synchronously, so the buffer is free again when they return.
func (s *System) appendPages(dst []uint32, v graph.NodeID, bytes int) []uint32 {
	ps := s.cfg.Flash.PageSize
	n := (bytes + ps - 1) / ps
	if n < 1 {
		n = 1
	}
	base := s.layout.Page(s.build.NodeAddr(v))
	for i := 0; i < n; i++ {
		dst = append(dst, base+uint32(i))
	}
	return dst
}

// registerChildPage mirrors registerChildDie for page-flow children.
func (b *batchState) registerChildPage(r nodeRead) (dispatchNow bool) {
	b.addWork(r.step())
	if r.secondary || b.sys.caps.OutOfOrder {
		return true
	}
	b.pendPage[r.step()] = append(b.pendPage[r.step()], r)
	return false
}

// dispatchPage routes one node read down the platform's page path.
func (b *batchState) dispatchPage(r nodeRead) {
	s := b.sys
	if r.created == 0 {
		r.created = s.k.Now()
	}
	switch {
	case r.secondary:
		b.fwSecondaryRead(r)
	case s.caps.Sampler == SampleInFirmware:
		b.fwRead(r)
	case r.feature && !r.sample && s.caps.InternalFT:
		// GList: feature lookups are offloaded even though sampling is
		// host-driven.
		b.fwRead(r)
	default:
		b.hostRead(r)
	}
}

// flashPageRead performs one full-page read with lifetime accounting:
// sense, full-page channel transfer, DRAM landing. Per-read state lives
// in a pooled pageOp (pools.go).
func (s *System) flashPageRead(page uint32, created sim.Time, step int, record bool, done func()) {
	op := pageOpPool.Get()
	op.s, op.created, op.step, op.record, op.done = s, created, step, record, done
	s.senseManaged(page, 0, s.ioDeadline(created), op.fnSenseStart, op.fnSenseDone)
}

func (op *pageOp) onSenseStart(at sim.Time) {
	op.senseStart = at
	if op.record {
		// Hop timelines (Fig. 16) track batch 0 only.
		op.s.coll.HopStart(op.step, at)
	}
}

func (op *pageOp) onSenseDone(final uint32) {
	s := op.s
	op.senseEnd = s.k.Now()
	s.backend.TransferDeadline(final, s.cfg.Flash.PageSize, s.ioDeadline(op.created), op.fnXferDone)
}

func (op *pageOp) onXferDone() {
	s := op.s
	ps := s.cfg.Flash.PageSize
	xfer := s.cfg.Flash.TransferTime(ps)
	waitAfter := s.k.Now() - op.senseEnd - xfer
	if waitAfter < 0 {
		waitAfter = 0
	}
	wb := op.senseStart - op.created
	fl := op.senseEnd - op.senseStart
	s.coll.CommandLifetime(wb, fl, waitAfter, xfer)
	s.coll.AddPhase(metrics.PhaseFlash, fl)
	s.coll.AddPhase(metrics.PhaseChannel, xfer)
	done := op.done
	op.release()
	s.dramWrite(ps, done)
}

// readAllPages reads every page of the list through the firmware path
// (translate without DirectGraph + flash scheduling per page). When
// hostBytes > 0, that many sector-rounded bytes per page continue on to
// host memory over PCIe. The pages slice is consumed before returning;
// the per-page chains run on pooled rapOps under one rapGroup.
func (b *batchState) readAllPages(pages []uint32, created sim.Time, step int, hostBytes int, done func()) {
	s := b.sys
	g := rapGroupPool.Get()
	g.b, g.remaining, g.hostBytes = b, len(pages), hostBytes
	g.created, g.step, g.done = created, step, done
	for _, p := range pages {
		op := rapOpPool.Get()
		op.g, op.page = g, p
		cost := s.cfg.Firmware.FlashCmdCost
		if !s.caps.DirectGraph {
			cost += s.cfg.Firmware.TranslateCost
		}
		s.fwPhase(cost)
		s.fw.Do(cost, op.fnStart)
	}
}

func (op *rapOp) onStart() {
	op.g.b.sys.backend.IssueCommand(op.page, op.fnIssued)
}

func (op *rapOp) onIssued() {
	g := op.g
	g.b.sys.flashPageRead(op.page, g.created, g.step, g.b.id == 0, op.fnPageDone)
}

func (op *rapOp) onPageDone() {
	g := op.g
	if g.hostBytes > 0 {
		g.b.sys.dramRead(g.hostBytes, op.fnDramDone)
		return
	}
	op.release()
	g.pageDone()
}

func (op *rapOp) onDramDone() {
	g := op.g
	g.b.sys.pcieData(g.hostBytes, op.fnPcieDone)
}

func (op *rapOp) onPcieDone() {
	g := op.g
	op.release()
	g.pageDone()
}

func (g *rapGroup) pageDone() {
	g.remaining--
	if g.remaining == 0 {
		done := g.done
		g.release()
		done()
	}
}

// fwRead executes a node read with firmware-driven control (SmartSage,
// BG-1, BG-DG, and GList's feature path). Per-read state lives in a
// pooled fwReadOp (pools.go).
func (b *batchState) fwRead(r nodeRead) {
	s := b.sys
	b.pageScratch = b.pageScratch[:0]
	if s.caps.DirectGraph {
		// One primary page holds feature + inline neighbors.
		b.pageScratch = append(b.pageScratch, s.layout.Page(s.build.NodeAddr(r.node)))
	} else {
		b.pageScratch = s.appendPages(b.pageScratch, r.node, s.recordBytes(r.node, r.sample))
	}
	// SmartSage ships feature pages onward to the host via the block
	// interface; sampling data stays inside. (InternalFT platforms keep
	// everything in DRAM.)
	hostBytes := 0
	if !s.caps.InternalFT && !r.sample {
		hostBytes = s.cfg.Flash.PageSize
	}
	op := fwReadOpPool.Get()
	op.b, op.r = b, r
	b.readAllPages(b.pageScratch, r.created, r.step(), hostBytes, op.fnPagesDone)
}

func (op *fwReadOp) onPagesDone() {
	b, s := op.b, op.b.sys
	r := op.r
	if r.feature {
		b.featBytes += int64(s.inst.Desc.FeatureDim * 2)
	}
	if !r.sample {
		op.release()
		if b.id == 0 {
			s.coll.HopEnd(r.step(), s.k.Now())
		}
		b.stepDone(r.step())
		return
	}
	// Firmware neighbor sampling.
	s.fwPhase(s.cfg.Firmware.SampleCostFixed + sim.Time(s.cfg.GNN.Fanout)*s.cfg.Firmware.SampleCostPerNode)
	s.fw.SampleNodes(s.cfg.GNN.Fanout, op.fnSampled)
}

func (op *fwReadOp) onSampled() {
	b, r := op.b, op.r
	op.release()
	s := b.sys
	children := b.drawChildren(r)
	if b.id == 0 {
		s.coll.HopEnd(r.step(), s.k.Now())
	}
	for _, c := range children {
		if b.registerChildPage(c) {
			b.dispatchPage(c)
		}
	}
	b.stepDone(r.step())
}

// fwSecondaryRead reads one BG-DG secondary page whose children were
// drawn during the parent's sampling; they release when it lands.
func (b *batchState) fwSecondaryRead(r nodeRead) {
	op := fwSecOpPool.Get()
	op.b, op.r = b, r
	b.pageScratch = append(b.pageScratch[:0], r.secPage)
	b.readAllPages(b.pageScratch, r.created, r.step(), 0, op.fnPagesDone)
}

func (op *fwSecOp) onPagesDone() {
	s := op.b.sys
	s.fwPhase(s.cfg.Firmware.ResultParseCost)
	s.fw.ParseResult(op.fnParsed)
}

func (op *fwSecOp) onParsed() {
	b, r := op.b, op.r
	op.release()
	s := b.sys
	if b.id == 0 {
		s.coll.HopEnd(r.step(), s.k.Now())
	}
	for _, child := range r.secChildren {
		c := b.childRead(child, r.hop+1)
		if b.registerChildPage(c) {
			b.dispatchPage(c)
		}
	}
	b.stepDone(r.step())
}

// hostRead executes a node read under host control (CC always; GList's
// sampling reads): every page is a full NVMe I/O crossing PCIe, and
// sampling runs on the host CPU. The per-page chains run on pooled
// hostOps under one hostGroup (pools.go).
func (b *batchState) hostRead(r nodeRead) {
	s := b.sys
	bytes := s.recordBytes(r.node, r.sample)
	b.pageScratch = s.appendPages(b.pageScratch[:0], r.node, bytes)
	// Dependent (sampling) reads pay the full software stack; bulk
	// feature fetches batch through io_uring-style submission.
	stack := s.cfg.Host.IOStackCost
	if r.feature && !r.sample {
		stack = s.cfg.Host.BatchedIOCost
	}
	g := hostGroupPool.Get()
	g.b, g.r, g.remaining = b, r, len(b.pageScratch)
	for _, p := range b.pageScratch {
		op := hostOpPool.Get()
		op.g, op.page = g, p
		s.hostDo(stack, op.fnHostDone)
	}
}

func (op *hostOp) onHostDone() {
	op.g.b.sys.pcieData(64, op.fnPcie64)
}

func (op *hostOp) onPcie64() {
	s := op.g.b.sys
	cost := s.cfg.Firmware.PollCost + s.cfg.Firmware.TranslateCost + s.cfg.Firmware.FlashCmdCost
	s.fwPhase(cost)
	s.fw.Do(cost, op.fnFwDone)
}

func (op *hostOp) onFwDone() {
	op.g.b.sys.backend.IssueCommand(op.page, op.fnIssued)
}

func (op *hostOp) onIssued() {
	g := op.g
	g.b.sys.flashPageRead(op.page, g.r.created, g.r.step(), g.b.id == 0, op.fnPageDone)
}

// Block-interface reads are page-granular end to end: the whole page
// crosses DRAM and PCIe (Challenge 2's read amplification).
func (op *hostOp) onPageDone() {
	s := op.g.b.sys
	s.dramRead(s.cfg.Flash.PageSize, op.fnDramDone)
}

func (op *hostOp) onDramDone() {
	s := op.g.b.sys
	s.pcieData(s.cfg.Flash.PageSize, op.fnPcieDone)
}

func (op *hostOp) onPcieDone() {
	g := op.g
	op.release()
	g.remaining--
	if g.remaining == 0 {
		g.b.hostPagesArrived(g)
	}
}

// hostPagesArrived finishes a host-controlled read: feature reads are
// done; sampling reads run the host sampler and spawn children. The
// group carries the read across the host-sampling hand-off.
func (b *batchState) hostPagesArrived(g *hostGroup) {
	s := b.sys
	r := g.r
	if r.feature && !r.sample {
		g.release()
		b.featBytes += int64(s.inst.Desc.FeatureDim * 2)
		if b.id == 0 {
			s.coll.HopEnd(r.step(), s.k.Now())
		}
		b.stepDone(r.step())
		return
	}
	cost := sim.Time(s.cfg.GNN.Fanout) * s.cfg.Host.SampleCostNode
	s.hostDo(cost, g.fnSampled)
}

func (g *hostGroup) onSampled() {
	b, r := g.b, g.r
	g.release()
	s := b.sys
	children := b.drawChildren(r)
	if b.id == 0 {
		s.coll.HopEnd(r.step(), s.k.Now())
	}
	for _, c := range children {
		if b.registerChildPage(c) {
			b.dispatchPage(c)
		}
	}
	b.stepDone(r.step())
}

// drawChildren samples the node's children and expands them into the
// next hop's reads. Raw-format platforms have the full neighbor list in
// hand; BG-DG draws global indices over the DirectGraph plan, turning
// out-of-page draws into coalesced secondary reads. The returned slice
// is the batch's childScratch — callers consume it before the next
// drawChildren call (dispatch copies the values out).
func (b *batchState) drawChildren(r nodeRead) []nodeRead {
	s := b.sys
	g := s.inst.Graph
	deg := g.Degree(r.node)
	if deg == 0 || r.hop >= s.cfg.GNN.Hops {
		return nil
	}
	now := s.k.Now()
	out := b.childScratch[:0]
	if !s.caps.DirectGraph {
		for i := 0; i < s.cfg.GNN.Fanout; i++ {
			child := g.Neighbor(r.node, s.rng.Intn(deg))
			out = append(out, b.childRead(child, r.hop+1))
		}
		b.childScratch = out
		return out
	}
	// BG-DG: DirectGraph-aware drawing with secondary coalescing. The
	// per-index buckets reuse the batch's coalesce table; bucket
	// contents are handed off to the secondary reads, so used entries
	// reset to nil and reallocate on the next draw.
	plan := &s.build.Plans[r.node]
	if cap(b.coalesce) < plan.SecCount {
		b.coalesce = make([][]graph.NodeID, plan.SecCount)
	}
	co := b.coalesce[:plan.SecCount]
	for i := range co {
		co[i] = nil
	}
	b.coalesce = co
	for i := 0; i < s.cfg.GNN.Fanout; i++ {
		idx := s.rng.Intn(deg)
		child := g.Neighbor(r.node, idx)
		if idx < plan.InlineCount {
			out = append(out, b.childRead(child, r.hop+1))
			continue
		}
		si := plan.SecondaryIndexFor(idx)
		co[si] = append(co[si], child)
	}
	for si := 0; si < plan.SecCount; si++ {
		kids := co[si]
		if len(kids) == 0 {
			continue
		}
		co[si] = nil
		out = append(out, nodeRead{
			node: r.node, hop: r.hop, secondary: true,
			secPage:     s.layout.Page(plan.Secondaries[si]),
			secChildren: kids,
			created:     now,
		})
	}
	b.childScratch = out
	return out
}

// childRead expands one sampled child node into its read at the given
// depth: a sampling read (plus a raw-format feature read) below the
// final hop, or a feature-only read at the final hop.
func (b *batchState) childRead(child graph.NodeID, hop int) nodeRead {
	s := b.sys
	now := s.k.Now()
	if hop >= s.cfg.GNN.Hops {
		return nodeRead{node: child, hop: hop, feature: true, created: now}
	}
	// One read covers sampling and feature: DirectGraph primaries hold
	// both by construction, and raw layouts co-locate the node record.
	return nodeRead{node: child, hop: hop, sample: true, feature: true, created: now}
}
