package platform

import (
	"beacongnn/internal/config"
	"beacongnn/internal/sim"
)

// DeviceSampleExtra is the die-side occupancy a BG-2 device adds on top
// of the flash sense for one in-storage sampling command: the die
// sampler's fixed section setup, the per-draw cost for fanout draws, and
// one crossbar hop to route the command. The cluster coordinator charges
// this per frontier entry so scaled-out devices price sampling exactly
// like the single-device BG-2 model.
func DeviceSampleExtra(cfg config.Config, fanout int) sim.Time {
	ds := cfg.DieSampler
	return ds.Fixed + sim.Time(fanout)*ds.PerDraw + ds.CrossbarLat
}

// DeviceFeatureExtra is the die-side occupancy for a terminal-hop
// feature fetch: section setup plus the stream parser emitting the
// feature vector, with the crossbar hop to route it.
func DeviceFeatureExtra(cfg config.Config) sim.Time {
	ds := cfg.DieSampler
	return ds.Fixed + ds.ParseLat + ds.CrossbarLat
}
